// Package wire is the public API of the WIRE reproduction: a
// resource-efficient auto-scaler for DAG-based workflows on IaaS clouds
// with online prediction (Xie et al., IEEE CLUSTER 2021).
//
// The package re-exports the stable surface of the internal packages so a
// downstream user needs a single import:
//
//	wf := wire.NewWorkflowBuilder("my-flow")
//	... add stages and tasks ...
//	res, err := wire.Run(wf.MustBuild(), wire.NewController(wire.ControllerConfig{}), wire.RunConfig{
//	    Cloud: wire.CloudConfig{SlotsPerInstance: 4, LagTime: 180, ChargingUnit: 3600, MaxInstances: 12},
//	})
//
// See examples/ for runnable programs and internal/experiments for the
// paper's evaluation harness.
package wire

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/dax"
	"repro/internal/dot"
	"repro/internal/exec"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Workflow model.
type (
	// Workflow is an immutable task DAG.
	Workflow = dag.Workflow
	// Task is one schedulable unit.
	Task = dag.Task
	// Stage groups peer tasks sharing an executable and dependencies.
	Stage = dag.Stage
	// TaskID identifies a task within a workflow.
	TaskID = dag.TaskID
	// StageID identifies a stage within a workflow.
	StageID = dag.StageID
	// WorkflowBuilder assembles workflows incrementally.
	WorkflowBuilder = dag.Builder
)

// NewWorkflowBuilder returns a builder for a named workflow.
func NewWorkflowBuilder(name string) *WorkflowBuilder { return dag.NewBuilder(name) }

// Cloud and execution simulation.
type (
	// CloudConfig describes the simulated IaaS site.
	CloudConfig = cloud.Config
	// RunConfig parameterizes one simulated execution.
	RunConfig = sim.Config
	// RunResult summarizes a completed execution.
	RunResult = sim.Result
	// Controller plans the worker pool once per MAPE interval.
	Controller = sim.Controller
	// Decision is a controller's pool-change order set.
	Decision = sim.Decision
)

// Run executes a workflow under a controller on the simulated site.
func Run(wf *Workflow, ctrl Controller, cfg RunConfig) (*RunResult, error) {
	return sim.Run(wf, ctrl, cfg)
}

// Monitoring surface, for writing custom controllers.
type (
	// Snapshot is the monitoring view a controller receives each MAPE
	// interval.
	Snapshot = monitor.Snapshot
	// TaskRecord is the monitoring view of one task.
	TaskRecord = monitor.TaskRecord
	// InstanceRecord is the monitoring view of one worker instance.
	InstanceRecord = monitor.InstanceRecord
	// TaskState is a task lifecycle state.
	TaskState = monitor.TaskState
	// ReleaseOrder asks for one instance release.
	ReleaseOrder = sim.ReleaseOrder
	// InstanceID identifies a worker instance.
	InstanceID = cloud.InstanceID
)

// Task lifecycle states.
const (
	TaskBlocked   = monitor.Blocked
	TaskReady     = monitor.Ready
	TaskRunning   = monitor.Running
	TaskCompleted = monitor.Completed
)

// The WIRE controller and its comparators.
type (
	// ControllerConfig tunes the WIRE controller; the zero value
	// reproduces the paper's settings.
	ControllerConfig = core.Config
	// WireController is the MAPE-loop auto-scaler of the paper.
	WireController = core.Controller
	// PredictorConfig tunes the online prediction policies.
	PredictorConfig = predict.Config
)

// NewController returns a WIRE controller.
func NewController(cfg ControllerConfig) *WireController { return core.New(cfg) }

// Deadline extension: minimize cost subject to a completion target.
type (
	// DeadlineConfig tunes the deadline controller.
	DeadlineConfig = core.DeadlineConfig
	// DeadlineController buys the cheapest pool expected to finish by
	// the target, reusing WIRE's online prediction and DAG lookahead.
	DeadlineController = core.DeadlineController
)

// NewDeadlineController returns a deadline controller.
func NewDeadlineController(cfg DeadlineConfig) *DeadlineController { return core.NewDeadline(cfg) }

// Baseline policies (§IV-C3).
var (
	// FullSite is the static full-site comparator; pair with
	// RunConfig.InitialInstances = CloudConfig.MaxInstances.
	FullSite Controller = baseline.Static{}
	// PureReactive sizes the pool to the instantaneous active load.
	PureReactive Controller = baseline.PureReactive{}
)

// NewReactiveConserving returns the reactive-conserving comparator (it is
// stateful, so each run needs a fresh instance).
func NewReactiveConserving() Controller { return &baseline.ReactiveConserving{} }

// History-based comparison (§II-B, Observation 2).
type (
	// StageProfile records per-stage task statistics from a previous run.
	StageProfile = baseline.StageProfile
	// HistoryBasedController steers from a frozen previous-run profile —
	// the Jockey/Apollo-style planner the paper contrasts.
	HistoryBasedController = baseline.HistoryBased
)

// ProfileFromResult extracts a stage profile from a completed run.
func ProfileFromResult(res *RunResult) StageProfile { return baseline.ProfileFromResult(res) }

// NewHistoryBased returns a controller planning from a recorded profile.
func NewHistoryBased(profile StageProfile) *HistoryBasedController {
	return baseline.NewHistoryBased(profile)
}

// Workload catalogue (Table I) and serialization.
type (
	// CatalogRun is one workflow × dataset pair from the paper's
	// Table I.
	CatalogRun = workloads.Run
	// WorkflowSpec declares a synthetic workflow.
	WorkflowSpec = workloads.Spec
)

// Catalog returns the eight Table I runs.
func Catalog() []CatalogRun { return workloads.Catalog() }

// CatalogByKey finds a catalogued run ("genome-s", "tpch1-l", ...).
func CatalogByKey(key string) (CatalogRun, bool) { return workloads.ByKey(key) }

// LinearWorkflow returns the single-stage workflow of the §IV-A study: n
// independent tasks of r seconds each.
func LinearWorkflow(n int, r float64) *Workflow { return workloads.Linear(n, r) }

// ReadWorkflow and WriteWorkflow (de)serialize workflows as JSON.
var (
	ReadWorkflow  = dagio.Read
	WriteWorkflow = dagio.Write
)

// DAXOptions tunes Pegasus DAX imports.
type DAXOptions = dax.Options

// ReadDAX and WriteDAX (de)serialize workflows as Pegasus DAX XML.
var (
	ReadDAX  = dax.Read
	WriteDAX = dax.Write
)

// Controller-as-a-service: host controllers behind wire-serve's JSON API
// and plan over HTTP.
type (
	// ServiceConfig tunes the wire-serve daemon.
	ServiceConfig = service.Config
	// ServiceServer hosts concurrent controller sessions over HTTP.
	ServiceServer = service.Server
	// ServiceClient is the typed client for a wire-serve daemon.
	ServiceClient = service.Client
	// RemoteController plans through a wire-serve session; it satisfies
	// Controller so Run can execute against a daemon.
	RemoteController = service.RemoteController
	// CreateSessionRequest opens a controller session on a daemon.
	CreateSessionRequest = service.CreateSessionRequest
	// ControllerSpec carries per-session controller tuning over the API.
	ControllerSpec = service.ControllerSpec
)

// NewServiceServer returns an unstarted wire-serve daemon; mount
// Handler() on any listener or drive it with Serve. Set
// ServiceConfig.JournalDir to enable the crash-recovery journal.
func NewServiceServer(cfg ServiceConfig) *ServiceServer { return service.New(cfg) }

// NewServiceClient returns a client for the daemon at baseURL. Options tune
// timeouts, transports, and retries (see WithServiceRetry).
func NewServiceClient(baseURL string, opts ...ServiceClientOption) *ServiceClient {
	return service.NewClient(baseURL, opts...)
}

// NewRemoteController opens a session on a daemon and returns a Controller
// that plans through it; ctx bounds the session's whole lifetime.
func NewRemoteController(ctx context.Context, c *ServiceClient, req CreateSessionRequest) (*RemoteController, error) {
	return service.NewRemoteController(ctx, c, req)
}

// Fault injection and fault tolerance.
type (
	// ChaosPlan is the seeded deterministic fault-injection plan: network
	// faults for the service client, cloud faults for RunConfig.Faults.
	ChaosPlan = chaos.Plan
	// FaultInjector perturbs the cloud side of a simulated run
	// (RunConfig.Faults); ChaosPlan.CloudFaults builds one.
	FaultInjector = sim.FaultInjector
	// ServiceClientOption customizes NewServiceClient.
	ServiceClientOption = service.ClientOption
	// ServiceRetryPolicy bounds the client's exponential-backoff retries.
	ServiceRetryPolicy = service.RetryPolicy
)

// Service client options.
var (
	// WithServiceTimeout replaces the client's whole-request timeout.
	WithServiceTimeout = service.WithTimeout
	// WithServiceTransport wraps the HTTP transport (chaos injection).
	WithServiceTransport = service.WithTransport
	// WithServiceRetry enables retries with exponential backoff and full
	// jitter; paired with plan sequence numbers, retried planning stays
	// exactly-once.
	WithServiceRetry = service.WithRetry
)

// NewPolicyController builds a controller by policy name ("wire",
// "deadline", "full-site", "pure-reactive", "reactive-conserving") — the
// same registry wire-serve uses server-side.
func NewPolicyController(policy string, spec *ControllerSpec) (Controller, error) {
	return service.NewPolicyController(policy, spec)
}

// EncodeWorkflow converts a workflow to its JSON document form, as
// CreateSessionRequest.Workflow expects.
var EncodeWorkflow = dagio.Encode

// Live execution plane: wire-agent workers leasing emulated tasks from a
// dispatcher that closes the MAPE loop on wall-clock measurements.
type (
	// LiveClient is the typed client for the daemon's /v1/live API; both
	// run drivers and agents use it.
	LiveClient = exec.LiveClient
	// LiveAgentConfig tunes one worker agent (RunAgent / cmd/wire-agent).
	LiveAgentConfig = exec.AgentConfig
	// LiveRunRequest creates a live run on a daemon.
	LiveRunRequest = exec.CreateRunRequest
	// LiveRunStatus is the run status document, including the lease
	// counters that certify zero lost leases.
	LiveRunStatus = exec.RunStatusResponse
	// LiveResult summarizes a finished live run in the same cost/makespan
	// vocabulary as RunResult.
	LiveResult = exec.LiveResult
	// PlanRecord pairs the snapshot a live controller saw with the
	// decision it made; TwinVerify replays these for the parity check.
	PlanRecord = exec.PlanRecord
)

// NewLiveClient returns a live-plane client for the daemon at baseURL.
func NewLiveClient(baseURL string) *LiveClient { return exec.NewLiveClient(baseURL, nil) }

// RunLiveAgent runs a worker agent against a live run until the run
// completes or ctx is canceled — the library form of cmd/wire-agent.
func RunLiveAgent(ctx context.Context, cfg LiveAgentConfig) error { return exec.RunAgent(ctx, cfg) }

// TwinVerify replays a live run's recorded snapshots through a fresh
// controller and errors unless the decision stream is byte-identical: the
// live-vs-sim parity certificate.
func TwinVerify(records []PlanRecord, twin Controller) error { return exec.TwinVerify(records, twin) }

// Tracing and visualization.
type (
	// TraceRecorder hooks into RunConfig.Observer and records every
	// lifecycle event of a run.
	TraceRecorder = trace.Recorder
	// SimEvent is one observer notification.
	SimEvent = sim.Event
	// DOTOptions tunes Graphviz exports.
	DOTOptions = dot.Options
)

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Gantt renders per-instance slot occupancy as a text chart.
func Gantt(res *RunResult, width int) string { return trace.Gantt(res, width) }

// WriteDOT renders a workflow as a Graphviz DOT document.
var WriteDOT = dot.Write

// Sharded control plane: a stateless router consistent-hashes sessions onto
// a fleet of shard daemons and fails dead shards over by journal handoff.
type (
	// ClusterShard is one session-shard daemon in the static shard map.
	ClusterShard = cluster.Shard
	// ClusterRouterConfig tunes the routing front end (`wire-serve route`).
	ClusterRouterConfig = cluster.RouterConfig
	// ClusterRouter is the stateless routing front end; run its heartbeat
	// loop with Run and mount Handler on a listener.
	ClusterRouter = cluster.Router
	// ShardCertConfig drives the cluster certificate
	// (`wire-serve loadgen -shards N -kill-shard`).
	ShardCertConfig = cluster.ShardCertConfig
)

// NewClusterRouter builds a router over a static shard map.
func NewClusterRouter(cfg ClusterRouterConfig) (*ClusterRouter, error) {
	return cluster.NewRouter(cfg)
}

// ShardCertify hosts an N-shard cluster in-process, kills one shard mid-run,
// and certifies zero dropped sessions with twin-identical decision streams.
func ShardCertify(ctx context.Context, cfg ShardCertConfig) (*cluster.ShardCertResult, error) {
	return cluster.ShardCertify(ctx, cfg)
}
