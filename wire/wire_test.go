package wire_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/wire"
)

func smallWorkflow() *wire.Workflow {
	b := wire.NewWorkflowBuilder("facade")
	s0 := b.AddStage("split")
	s1 := b.AddStage("work")
	root := b.AddTask(s0, "split", 10, 1, 100)
	for i := 0; i < 6; i++ {
		b.AddTask(s1, "w", 60, 1, 50, root)
	}
	return b.MustBuild()
}

func cloudCfg() wire.CloudConfig {
	return wire.CloudConfig{SlotsPerInstance: 2, LagTime: 30, ChargingUnit: 120, MaxInstances: 6}
}

func TestRunUnderEveryBundledPolicy(t *testing.T) {
	ctrls := map[string]func() wire.Controller{
		"wire":                func() wire.Controller { return wire.NewController(wire.ControllerConfig{}) },
		"full-site":           func() wire.Controller { return wire.FullSite },
		"pure-reactive":       func() wire.Controller { return wire.PureReactive },
		"reactive-conserving": wire.NewReactiveConserving,
	}
	for name, mk := range ctrls {
		cfg := wire.RunConfig{Cloud: cloudCfg()}
		if name == "full-site" {
			cfg.InitialInstances = cfg.Cloud.MaxInstances
		}
		res, err := wire.Run(smallWorkflow(), mk(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.TaskRuns) != 7 {
			t.Fatalf("%s: %d task runs", name, len(res.TaskRuns))
		}
	}
}

func TestCatalog(t *testing.T) {
	if got := len(wire.Catalog()); got != 8 {
		t.Fatalf("catalog size = %d", got)
	}
	run, ok := wire.CatalogByKey("pagerank-l")
	if !ok {
		t.Fatal("pagerank-l missing")
	}
	wf := run.Generate(1)
	if wf.NumTasks() != 313 {
		t.Fatalf("tasks = %d", wf.NumTasks())
	}
}

func TestLinearWorkflow(t *testing.T) {
	wf := wire.LinearWorkflow(5, 30)
	if wf.NumTasks() != 5 || wf.NumStages() != 1 {
		t.Fatalf("shape = %d/%d", wf.NumTasks(), wf.NumStages())
	}
}

func TestWorkflowSerialization(t *testing.T) {
	wf := smallWorkflow()
	var buf bytes.Buffer
	if err := wire.WriteWorkflow(&buf, wf); err != nil {
		t.Fatal(err)
	}
	back, err := wire.ReadWorkflow(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != wf.NumTasks() {
		t.Fatal("round trip lost tasks")
	}
}

// countingController demonstrates (and pins) the custom-controller surface.
type countingController struct{ ticks int }

func (c *countingController) Name() string { return "counting" }

func (c *countingController) Plan(snap *wire.Snapshot) wire.Decision {
	c.ticks++
	if snap.ActiveLoad() > 0 && len(snap.NonDrainingInstances()) == 0 {
		return wire.Decision{Launch: 1}
	}
	return wire.Decision{}
}

func TestCustomControllerSurface(t *testing.T) {
	ctrl := &countingController{}
	res, err := wire.Run(smallWorkflow(), ctrl, wire.RunConfig{Cloud: cloudCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.ticks == 0 || res.Decisions != ctrl.ticks {
		t.Fatalf("ticks=%d decisions=%d", ctrl.ticks, res.Decisions)
	}
}

func ExampleRun() {
	b := wire.NewWorkflowBuilder("example")
	stage := b.AddStage("work")
	for i := 0; i < 4; i++ {
		b.AddTask(stage, "task", 50, 0, 10)
	}
	wf := b.MustBuild()

	res, err := wire.Run(wf, wire.NewController(wire.ControllerConfig{}), wire.RunConfig{
		Cloud: wire.CloudConfig{SlotsPerInstance: 1, LagTime: 10, ChargingUnit: 60, MaxInstances: 4},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks completed:", len(res.TaskRuns))
	// Output: tasks completed: 4
}

func TestExtensionSurface(t *testing.T) {
	wf := smallWorkflow()

	// Deadline controller through the facade.
	dres, err := wire.Run(wf, wire.NewDeadlineController(wire.DeadlineConfig{Deadline: 2000}),
		wire.RunConfig{Cloud: cloudCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.TaskRuns) != 7 {
		t.Fatal("deadline run incomplete")
	}

	// History-based controller from a recorded profile.
	profile := wire.ProfileFromResult(dres)
	hres, err := wire.Run(smallWorkflow(), wire.NewHistoryBased(profile),
		wire.RunConfig{Cloud: cloudCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if len(hres.TaskRuns) != 7 {
		t.Fatal("history run incomplete")
	}

	// Tracing and charts.
	rec := wire.NewTraceRecorder()
	cfg := wire.RunConfig{Cloud: cloudCfg()}
	cfg.Observer = rec.Hook()
	tres, err := wire.Run(smallWorkflow(), wire.NewController(wire.ControllerConfig{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) == 0 {
		t.Fatal("trace recorder empty")
	}
	if g := wire.Gantt(tres, 40); g == "" {
		t.Fatal("gantt empty")
	}

	// DOT and DAX exports.
	var dotBuf, daxBuf bytes.Buffer
	if err := wire.WriteDOT(&dotBuf, wf, wire.DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteDAX(&daxBuf, wf); err != nil {
		t.Fatal(err)
	}
	back, err := wire.ReadDAX(&daxBuf, wire.DAXOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != wf.NumTasks() {
		t.Fatal("DAX round trip lost tasks")
	}
}
