// Package repro's root benchmark harness: one benchmark per table/figure of
// the paper plus micro-benchmarks of the hot paths. Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableX/BenchmarkFigureX regenerates the corresponding paper
// artifact on a reduced grid per iteration (the full-scale regeneration is
// `go run ./cmd/wire-bench`); reported metrics include the domain-level
// outputs via b.ReportMetric so the shape is visible in benchmark output.
package repro

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/lookahead"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/steer"
	"repro/internal/workloads"
)

// benchCfg is the reduced grid shared by the per-figure benchmarks.
func benchCfg() experiments.Config {
	cfg := experiments.Defaults()
	cfg.Reps = 1
	cfg.Orders = 1
	cfg.Units = []simtime.Duration{1 * simtime.Minute, 30 * simtime.Minute}
	cfg.RunKeys = []string{"genome-s", "tpch6-s"}
	cfg.LinearNs = []int{10, 100}
	cfg.LinearRatios = []float64{2, 10, 100}
	return cfg
}

// BenchmarkTable1 regenerates the workload characterization (Table I).
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.Defaults()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(cfg)
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure2 regenerates the R > U linear study (Figure 2).
func BenchmarkFigure2(b *testing.B) {
	cfg := benchCfg()
	var last []experiments.LinearPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.LinearSweep(cfg, experiments.RGreaterU)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	reportWorst(b, last)
}

// BenchmarkFigure3 regenerates the R <= U linear study (Figure 3).
func BenchmarkFigure3(b *testing.B) {
	cfg := benchCfg()
	var last []experiments.LinearPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.LinearSweep(cfg, experiments.RLessEqualU)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	reportWorst(b, last)
}

func reportWorst(b *testing.B, pts []experiments.LinearPoint) {
	b.Helper()
	worstCost, worstTime := 0.0, 0.0
	for _, p := range pts {
		if p.CostRatio > worstCost {
			worstCost = p.CostRatio
		}
		if p.TimeRatio > worstTime {
			worstTime = p.TimeRatio
		}
	}
	b.ReportMetric(worstCost, "worst-cost/opt")
	b.ReportMetric(worstTime, "worst-time/opt")
}

// BenchmarkFigure4 regenerates the prediction-accuracy study (Figure 4).
func BenchmarkFigure4(b *testing.B) {
	cfg := benchCfg()
	var runs []experiments.PredictionRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = experiments.PredictionExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := 0
	for _, r := range runs {
		n += len(r.Samples)
	}
	b.ReportMetric(float64(n), "samples")
}

// BenchmarkFigure5 regenerates the resource-cost grid (Figure 5); Figure 6
// shares the same grid.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchCfg()
	var res *experiments.CostResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.CostExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	h := res.Headline()
	b.ReportMetric(h.FullSiteOverWireHi, "fullsite/wire-max")
	b.ReportMetric(h.WireSlowdownHi, "wire-slowdown-max")
}

// BenchmarkFigure6 recomputes the relative-execution-time view from the
// cost grid (the expensive part is shared with Figure 5; this isolates the
// normalization and reporting path).
func BenchmarkFigure6(b *testing.B) {
	cfg := benchCfg()
	res, err := experiments.CostExperiment(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := res.Figure6Report()
		if len(tbl.Rows) == 0 {
			b.Fatal("empty figure 6")
		}
	}
}

// BenchmarkOverhead regenerates the §IV-F controller-overhead study.
func BenchmarkOverhead(b *testing.B) {
	cfg := benchCfg()
	var rows []experiments.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.OverheadExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if r.Fraction > worst {
			worst = r.Fraction
		}
	}
	b.ReportMetric(worst*100, "overhead-%")
}

// BenchmarkExecutionSim measures raw simulator throughput: one full
// Genome S run under the static full-site policy.
func BenchmarkExecutionSim(b *testing.B) {
	run, _ := workloads.ByKey("genome-s")
	wf := run.Generate(1)
	cfg := sim.Config{
		Cloud:            cloud.Config{SlotsPerInstance: 4, LagTime: 180, ChargingUnit: 900, MaxInstances: 12},
		InitialInstances: 12,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(wf, staticCtrl{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(wf.NumTasks()), "tasks/run")
}

// BenchmarkWireRun measures one full Genome S run under the WIRE
// controller (MAPE loop + lookahead + steering included).
func BenchmarkWireRun(b *testing.B) {
	run, _ := workloads.ByKey("genome-s")
	wf := run.Generate(1)
	cfg := sim.Config{
		Cloud: cloud.Config{SlotsPerInstance: 4, LagTime: 180, ChargingUnit: 900, MaxInstances: 12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(wf, core.New(core.Config{}), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMAPEIteration measures a single controller Plan call on a
// mid-run Genome L snapshot — the §IV-F per-iteration cost.
func BenchmarkMAPEIteration(b *testing.B) {
	run, _ := workloads.ByKey("genome-l")
	wf := run.Generate(1)
	snap := midRunSnapshot(b, wf)
	ctrl := core.New(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctrl.Plan(snap)
	}
}

// BenchmarkLookahead isolates the online workflow simulator on Genome L.
func BenchmarkLookahead(b *testing.B) {
	run, _ := workloads.ByKey("genome-l")
	wf := run.Generate(1)
	snap := midRunSnapshot(b, wf)
	pred := predict.New(predict.Config{})
	pred.Update(snap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if load := lookahead.Project(snap, pred); load == nil {
			b.Fatal("nil load")
		}
	}
}

// BenchmarkResizePool isolates Algorithm 3 on a 4005-entry load.
func BenchmarkResizePool(b *testing.B) {
	remaining := make([]float64, 4005)
	for i := range remaining {
		remaining[i] = float64(1 + i%60)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := steer.ResizePool(remaining, 900, 4, 0.2); p <= 0 {
			b.Fatal("bad p")
		}
	}
}

// staticCtrl is a no-op controller for the raw-simulator benchmark.
type staticCtrl struct{}

func (staticCtrl) Name() string                        { return "bench-static" }
func (staticCtrl) Plan(*monitor.Snapshot) sim.Decision { return sim.Decision{} }

// snapGrabber wraps a controller and keeps every snapshot it sees, so
// benchmarks can replay a realistic mid-run monitoring state.
type snapGrabber struct {
	inner sim.Controller
	snaps []*monitor.Snapshot
}

func (g *snapGrabber) Name() string { return g.inner.Name() }

func (g *snapGrabber) Plan(s *monitor.Snapshot) sim.Decision {
	g.snaps = append(g.snaps, s)
	return g.inner.Plan(s)
}

// midRunSnapshot executes the workflow once under WIRE and returns the
// middle monitoring snapshot of the run.
func midRunSnapshot(b *testing.B, wf *workloadsWorkflow) *monitor.Snapshot {
	g := &snapGrabber{inner: core.New(core.Config{})}
	cfg := sim.Config{
		Cloud: cloud.Config{SlotsPerInstance: 4, LagTime: 180, ChargingUnit: 900, MaxInstances: 12},
	}
	if _, err := sim.Run(wf, g, cfg); err != nil {
		b.Fatal(err)
	}
	if len(g.snaps) == 0 {
		b.Fatal("no snapshots captured")
	}
	return g.snaps[len(g.snaps)/2]
}

// workloadsWorkflow aliases the DAG type to keep the helper signature short.
type workloadsWorkflow = dag.Workflow
