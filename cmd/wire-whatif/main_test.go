package main

import "testing"

func TestParseUnits(t *testing.T) {
	units, err := parseUnits("1m, 15m,1h")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{60, 900, 3600}
	if len(units) != len(want) {
		t.Fatalf("units = %v", units)
	}
	for i := range want {
		if units[i] != want[i] {
			t.Fatalf("units = %v, want %v", units, want)
		}
	}
}

func TestParseUnitsErrors(t *testing.T) {
	for _, bad := range []string{"", "fast", "-1m", "0s", "1m,,2m"} {
		if _, err := parseUnits(bad); err == nil {
			t.Errorf("parseUnits(%q) accepted", bad)
		}
	}
}

func TestLoadWorkflowCatalogue(t *testing.T) {
	wf, err := load("", "tpch6-s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if wf.NumTasks() != 33 {
		t.Fatalf("tasks = %d", wf.NumTasks())
	}
	if _, err := load("", "bogus", 1); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := load("/nonexistent.xml", "", 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
