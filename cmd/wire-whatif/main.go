// Command wire-whatif answers capacity-planning questions before renting
// anything: for a given workflow it sweeps charging units × policies on the
// simulator and prints the cost/time frontier, plus the cheapest setting
// that stays within a chosen slowdown budget.
//
// Usage:
//
//	wire-whatif -workflow genome-l
//	wire-whatif -dax flow.xml -budget 2.0 -units 1m,5m,15m,1h
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dax"
	"repro/internal/dist"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

func main() {
	workflow := flag.String("workflow", "genome-s", "catalogued run key (see wire-workflows)")
	daxFile := flag.String("dax", "", "Pegasus DAX XML file (overrides -workflow)")
	unitsFlag := flag.String("units", "1m,5m,15m,30m,1h", "comma-separated charging units to sweep")
	budget := flag.Float64("budget", 2.0, "acceptable slowdown vs the fastest observed setting")
	lag := flag.Duration("lag", 3*time.Minute, "instantiation lag = MAPE interval")
	slots := flag.Int("slots", 4, "task slots per worker instance")
	maxInst := flag.Int("max-instances", 12, "site instance cap")
	seed := flag.Int64("seed", 1, "generation/interference seed")
	flag.Parse()

	wf, err := load(*daxFile, *workflow, *seed)
	if err != nil {
		fail(err)
	}
	units, err := parseUnits(*unitsFlag)
	if err != nil {
		fail(err)
	}

	type cell struct {
		policy string
		unit   simtime.Duration
		cost   int
		span   simtime.Duration
	}
	var cells []cell
	fastest := 0.0
	for _, unit := range units {
		for _, policy := range []string{"full-site", "pure-reactive", "reactive-conserving", "wire"} {
			cfg := sim.Config{
				Cloud: cloud.Config{
					SlotsPerInstance: *slots,
					LagTime:          lag.Seconds(),
					ChargingUnit:     unit,
					MaxInstances:     *maxInst,
				},
				Seed:         *seed,
				Interference: dist.NewLognormalFromMean(1, 0.05),
			}
			var ctrl sim.Controller
			switch policy {
			case "full-site":
				ctrl = baseline.Static{}
				cfg.InitialInstances = *maxInst
			case "pure-reactive":
				ctrl = baseline.PureReactive{}
			case "reactive-conserving":
				ctrl = &baseline.ReactiveConserving{}
			case "wire":
				ctrl = core.New(core.Config{})
			}
			res, err := sim.Run(wf, ctrl, cfg)
			if err != nil {
				fail(fmt.Errorf("%s/u=%v: %w", policy, unit, err))
			}
			cells = append(cells, cell{policy, unit, res.UnitsCharged, res.Makespan})
			if fastest == 0 || res.Makespan < fastest {
				fastest = res.Makespan
			}
		}
	}

	t := &report.Table{
		Title:   fmt.Sprintf("What-if frontier — %s (%d tasks, %d stages)", wf.Name, wf.NumTasks(), wf.NumStages()),
		Headers: []string{"unit", "policy", "cost (units)", "paid time", "makespan", "slowdown"},
	}
	bestCost := -1
	var best cell
	for _, c := range cells {
		slow := c.span / fastest
		t.AddRow(
			simtime.FormatDuration(c.unit), c.policy, c.cost,
			simtime.FormatDuration(float64(c.cost)*c.unit),
			simtime.FormatDuration(c.span),
			report.Ratio(slow),
		)
		// Cheapest paid time within the slowdown budget.
		paid := float64(c.cost) * c.unit
		if slow <= *budget && (bestCost < 0 || paid < float64(bestCost)) {
			bestCost = int(paid)
			best = c
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
	if bestCost >= 0 {
		fmt.Printf("\ncheapest setting within %.2fx of the fastest run: %s at u=%s "+
			"(%d units, makespan %s)\n",
			*budget, best.policy, simtime.FormatDuration(best.unit), best.cost,
			simtime.FormatDuration(best.span))
	} else {
		fmt.Printf("\nno setting stayed within %.2fx of the fastest run\n", *budget)
	}
}

func load(daxFile, key string, seed int64) (*dag.Workflow, error) {
	if daxFile != "" {
		f, err := os.Open(daxFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dax.Read(f, dax.Options{})
	}
	run, ok := workloads.ByKey(key)
	if !ok {
		return nil, fmt.Errorf("unknown workflow %q; known keys: %v", key, workloads.Keys())
	}
	return run.Generate(seed), nil
}

func parseUnits(s string) ([]simtime.Duration, error) {
	var out []simtime.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad unit %q: %w", part, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("non-positive unit %q", part)
		}
		out = append(out, d.Seconds())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no units given")
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wire-whatif:", err)
	os.Exit(1)
}
