// Command wire-benchgate is the benchmark regression gate: it parses
// `go test -bench -benchmem` output, writes the measurements as a
// BENCH_<n>.json trajectory document, and fails (exit 1) when a gated
// benchmark regressed more than the tolerance against the checked-in
// baseline.
//
// Usage (how CI invokes it):
//
//	go test -run xxx -bench . -benchmem . ./internal/exec/ ./internal/service/ |
//	    wire-benchgate -baseline BENCH_baseline.json -out BENCH_6.json
//
//	wire-benchgate -in bench.txt ...   # read from a file instead of stdin
//	wire-benchgate -gate Bench1,Bench2 -tolerance 0.10
//
// Only ns/op and allocs/op of the -gate benchmarks are gated; everything
// parsed is recorded in -out regardless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/stats"
)

// defaultGate covers the plan-step hot path (BenchmarkTable1 runs the full
// MAPE loop over the paper's Table I workloads) and the live dispatcher's
// lease protocol benches.
const defaultGate = "BenchmarkTable1,BenchmarkLeaseProtocol,BenchmarkRunStatus,BenchmarkJournalReplay"

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "baseline document to gate against")
	out := flag.String("out", "", "write the parsed measurements as a BENCH_<n>.json document")
	in := flag.String("in", "", "bench output file (default: stdin)")
	gate := flag.String("gate", defaultGate, "comma-separated benchmarks to gate")
	tol := flag.Float64("tolerance", 0.15, "allowed ns/op and allocs/op growth (0.15 = +15%)")
	desc := flag.String("desc", "", "description recorded in -out")
	flag.Parse()

	if err := run(*baseline, *out, *in, *gate, *tol, *desc); err != nil {
		fmt.Fprintln(os.Stderr, "wire-benchgate:", err)
		os.Exit(1)
	}
}

func run(baseline, out, in, gate string, tol float64, desc string) error {
	var src io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	// Tee the bench output through so the run stays readable in CI logs.
	results, env, err := stats.ParseBenchOutput(io.TeeReader(src, os.Stdout))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	if out != "" {
		if desc == "" {
			desc = "Benchmark trajectory document, written by wire-benchgate. Regenerate with: go test -run xxx -bench . -benchmem . ./internal/exec/ ./internal/service/ | wire-benchgate -out " + out
		}
		doc := stats.BenchDoc{
			Description: desc,
			Date:        time.Now().UTC().Format("2006-01-02"),
			Environment: env,
			Benchmarks:  results,
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := writeDoc(f, &doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wire-benchgate: wrote %d benchmarks to %s\n", len(results), out)
	}

	bf, err := os.Open(baseline)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := stats.LoadBenchDoc(bf)
	if err != nil {
		return err
	}

	names := strings.Split(gate, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	regs := stats.CompareBench(base.Benchmarks, results, names, tol)
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "wire-benchgate: REGRESSION:", r)
		}
		return fmt.Errorf("%d gated benchmark(s) regressed beyond +%.0f%% of %s", len(regs), tol*100, baseline)
	}
	fmt.Fprintf(os.Stderr, "wire-benchgate: %d gated benchmarks within +%.0f%% of %s\n", len(names), tol*100, baseline)
	return nil
}

// writeDoc formats like the hand-maintained BENCH_baseline.json
// (two-space indent, trailing newline).
func writeDoc(w io.Writer, doc *stats.BenchDoc) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
