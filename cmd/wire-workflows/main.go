// Command wire-workflows prints the Table I workload characterization
// (generated vs paper), exports catalogued workflows, and drives the
// multi-tenant arrival-stream subsystem (internal/tenancy).
//
// Usage:
//
//	wire-workflows [-seed N] [-csv]     # Table I, generated vs paper
//	wire-workflows -stages KEY          # per-stage breakdown of one run
//	wire-workflows -export KEY          # workflow as JSON to stdout
//	wire-workflows -dot KEY             # workflow as Graphviz DOT to stdout
//	wire-workflows -stream              # generate an arrival stream as CSV
//	wire-workflows -replay FILE         # replay a stream CSV through the
//	                                    # multi-run simulator per policy
//	wire-workflows -sweep               # arrival-rate x policy sweep table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cloud"
	"repro/internal/dagio"
	"repro/internal/dot"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/tenancy"
	"repro/internal/workloads"
)

func main() {
	seed := flag.Int64("seed", 1, "workload generation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	export := flag.String("export", "", "export one catalogued workflow (by key, e.g. genome-s) as JSON to stdout")
	stages := flag.String("stages", "", "print the per-stage breakdown of one catalogued workflow")
	dotKey := flag.String("dot", "", "render one catalogued workflow as Graphviz DOT to stdout")
	stream := flag.Bool("stream", false, "generate a multi-tenant arrival stream and emit it as a trace CSV")
	replay := flag.String("replay", "", "replay a stream CSV (path, or - for stdin) through the multi-run simulator")
	sweep := flag.Bool("sweep", false, "run the arrival-rate x arbiter-policy sweep")
	n := flag.Int("n", 51, "arrivals per stream (-stream/-sweep)")
	tenants := flag.Int("tenants", 3, "tenants per stream (-stream/-sweep)")
	arrivals := flag.String("arrivals", tenancy.Poisson, "arrival process: "+strings.Join(tenancy.Processes(), "|"))
	rate := flag.Float64("rate", 24, "per-tenant arrival rate per hour (-stream)")
	rates := flag.String("rates", "12,24,48", "comma-separated per-tenant rates (-sweep)")
	keys := flag.String("keys", "tpch6-s,tpch1-s,pagerank-s", "comma-separated workflow keys drawn by the stream")
	policies := flag.String("policies", "", "comma-separated arbiter policies (default "+strings.Join(tenancy.Policies(), ",")+")")
	capN := flag.Int("cap", 6, "shared site cap in instances (-replay/-sweep)")
	budget := flag.Int("budget", 0, "shared budget in charging units; 0 derives it from the stream's draws")
	workers := flag.Int("workers", 0, "sweep worker pool (0 = GOMAXPROCS)")
	flag.Parse()

	if *dotKey != "" {
		run, ok := workloads.ByKey(*dotKey)
		if !ok {
			fmt.Fprintf(os.Stderr, "wire-workflows: unknown run %q; known keys: %v\n", *dotKey, workloads.Keys())
			os.Exit(1)
		}
		if err := dot.Write(os.Stdout, run.Generate(*seed), dot.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "wire-workflows:", err)
			os.Exit(1)
		}
		return
	}

	if *stages != "" {
		if err := printStages(*stages, *seed, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "wire-workflows:", err)
			os.Exit(1)
		}
		return
	}

	if *export != "" {
		run, ok := workloads.ByKey(*export)
		if !ok {
			fmt.Fprintf(os.Stderr, "wire-workflows: unknown run %q; known keys: %v\n", *export, workloads.Keys())
			os.Exit(1)
		}
		if err := dagio.Write(os.Stdout, run.Generate(*seed)); err != nil {
			fmt.Fprintln(os.Stderr, "wire-workflows:", err)
			os.Exit(1)
		}
		return
	}

	if *stream || *replay != "" || *sweep {
		err := runStreamMode(streamOpts{
			stream: *stream, replay: *replay, sweep: *sweep, csv: *csv,
			seed: *seed, n: *n, tenants: *tenants, process: *arrivals,
			rate: *rate, rates: *rates, keys: splitList(*keys),
			policies: splitList(*policies), cap_: *capN, budget: *budget,
			workers: *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wire-workflows:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Defaults()
	cfg.Seed = *seed
	tbl := experiments.Table1Report(experiments.Table1(cfg))
	var err error
	if *csv {
		err = tbl.WriteCSV(os.Stdout)
	} else {
		err = tbl.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-workflows:", err)
		os.Exit(1)
	}
}

// streamOpts carries the tenancy-mode flag values.
type streamOpts struct {
	stream   bool
	replay   string
	sweep    bool
	csv      bool
	seed     int64
	n        int
	tenants  int
	process  string
	rate     float64
	rates    string
	keys     []string
	policies []string
	cap_     int
	budget   int
	workers  int
}

// streamSite is the shared-site template the stream modes simulate against:
// small instances and a tight cap, so the cross-run arbiter has something to
// arbitrate even at modest arrival counts.
func streamSite() cloud.Config {
	return cloud.Config{
		SlotsPerInstance: 2,
		LagTime:          3 * simtime.Minute,
		ChargingUnit:     15 * simtime.Minute,
		MaxInstances:     6,
	}
}

// runStreamMode dispatches the tenancy modes: -stream (generate + export),
// -replay (trace import through the multi-run simulator), -sweep.
func runStreamMode(o streamOpts) error {
	site := streamSite()
	switch {
	case o.stream:
		s, err := tenancy.Generate(tenancy.StreamConfig{
			Seed:          o.seed,
			Process:       o.process,
			N:             o.n,
			Tenants:       o.tenants,
			RatePerHour:   o.rate,
			Keys:          o.keys,
			Slots:         site.SlotsPerInstance,
			LagS:          float64(site.LagTime),
			ChargingUnitS: float64(site.ChargingUnit),
		})
		if err != nil {
			return err
		}
		return tenancy.WriteStreamCSV(os.Stdout, s)

	case o.replay != "":
		var in io.Reader = os.Stdin
		if o.replay != "-" {
			f, err := os.Open(o.replay)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		s, err := tenancy.ReadStreamCSV(in)
		if err != nil {
			return err
		}
		return replayStream(s, o, site)

	default: // -sweep
		var rateList []float64
		for _, part := range splitList(o.rates) {
			r, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return fmt.Errorf("bad -rates entry %q: %w", part, err)
			}
			rateList = append(rateList, r)
		}
		_, tbl, err := tenancy.Sweep(tenancy.SweepConfig{
			Seed:         o.seed,
			Process:      o.process,
			RatesPerHour: rateList,
			Policies:     o.policies,
			N:            o.n,
			Tenants:      o.tenants,
			Keys:         o.keys,
			Cloud:        site,
			Cap:          o.cap_,
			BudgetUnits:  o.budget,
			Workers:      o.workers,
		})
		if err != nil {
			return err
		}
		if o.csv {
			return tbl.WriteCSV(os.Stdout)
		}
		return tbl.Render(os.Stdout)
	}
}

// replayStream runs an imported trace under each requested arbiter policy
// and renders the per-policy comparison — the paired design on one stream.
func replayStream(s *tenancy.Stream, o streamOpts, site cloud.Config) error {
	policies := o.policies
	if len(policies) == 0 {
		policies = tenancy.Policies()
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("Trace replay: %d arrivals x %d tenants, cap %d (sim seed %d)",
			len(s.Arrivals), len(s.Tenants()), o.cap_, o.seed),
		Headers: []string{"policy", "budget_u", "misses", "miss_rate", "units",
			"peak_held", "throttled", "q_delay_s", "makespan_s"},
	}
	for _, policy := range policies {
		budget := o.budget
		if budget <= 0 {
			budget = s.TotalBudget()
		}
		if policy == tenancy.FCFS {
			budget = 0 // the no-arbiter baseline ignores the budget
		}
		res, err := tenancy.RunStream(s, tenancy.MultiConfig{
			Cloud: site,
			Arbiter: tenancy.ArbiterConfig{
				Policy:      policy,
				Cap:         o.cap_,
				BudgetUnits: budget,
			},
			SimSeed: o.seed,
		})
		if err != nil {
			return fmt.Errorf("policy %s: %w", policy, err)
		}
		tbl.AddRow(policy, budget, res.Misses, report.F(res.MissRate(), 3),
			res.TotalUnits, res.PeakHeld, res.ThrottledAdmissions,
			report.F(res.QueueDelayMeanS, 1), report.F(res.MakespanS, 0))
	}
	if o.csv {
		return tbl.WriteCSV(os.Stdout)
	}
	return tbl.Render(os.Stdout)
}

// splitList splits a comma-separated flag into trimmed non-empty parts.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// printStages renders the per-stage breakdown of one catalogued run.
func printStages(key string, seed int64, csv bool) error {
	run, ok := workloads.ByKey(key)
	if !ok {
		return fmt.Errorf("unknown run %q; known keys: %v", key, workloads.Keys())
	}
	wf := run.Generate(seed)
	t := &report.Table{
		Title:   fmt.Sprintf("Stages of %s (seed %d)", run.Display, seed),
		Headers: []string{"stage", "name", "tasks", "mean exec (s)", "fan-in", "input sizes (MB)"},
	}
	for _, st := range wf.Stages {
		sizes := map[float64]bool{}
		maxFanIn := 0
		for _, tid := range st.Tasks {
			task := wf.Task(tid)
			sizes[task.InputSize] = true
			if len(task.Deps) > maxFanIn {
				maxFanIn = len(task.Deps)
			}
		}
		var sizeList []float64
		for s := range sizes {
			sizeList = append(sizeList, s)
		}
		sort.Float64s(sizeList)
		var sizeStrs []string
		for _, s := range sizeList {
			sizeStrs = append(sizeStrs, report.F(s, 2))
		}
		t.AddRow(int(st.ID), st.Name, len(st.Tasks),
			report.F(wf.StageMeanExecTime(st.ID), 2), maxFanIn, strings.Join(sizeStrs, " "))
	}
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}
