// Command wire-workflows prints the Table I workload characterization
// (generated vs paper) and can export any catalogued workflow as JSON.
//
// Usage:
//
//	wire-workflows [-seed N] [-csv]     # Table I, generated vs paper
//	wire-workflows -stages KEY          # per-stage breakdown of one run
//	wire-workflows -export KEY          # workflow as JSON to stdout
//	wire-workflows -dot KEY             # workflow as Graphviz DOT to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/dagio"
	"repro/internal/dot"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	seed := flag.Int64("seed", 1, "workload generation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	export := flag.String("export", "", "export one catalogued workflow (by key, e.g. genome-s) as JSON to stdout")
	stages := flag.String("stages", "", "print the per-stage breakdown of one catalogued workflow")
	dotKey := flag.String("dot", "", "render one catalogued workflow as Graphviz DOT to stdout")
	flag.Parse()

	if *dotKey != "" {
		run, ok := workloads.ByKey(*dotKey)
		if !ok {
			fmt.Fprintf(os.Stderr, "wire-workflows: unknown run %q; known keys: %v\n", *dotKey, workloads.Keys())
			os.Exit(1)
		}
		if err := dot.Write(os.Stdout, run.Generate(*seed), dot.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "wire-workflows:", err)
			os.Exit(1)
		}
		return
	}

	if *stages != "" {
		if err := printStages(*stages, *seed, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "wire-workflows:", err)
			os.Exit(1)
		}
		return
	}

	if *export != "" {
		run, ok := workloads.ByKey(*export)
		if !ok {
			fmt.Fprintf(os.Stderr, "wire-workflows: unknown run %q; known keys: %v\n", *export, workloads.Keys())
			os.Exit(1)
		}
		if err := dagio.Write(os.Stdout, run.Generate(*seed)); err != nil {
			fmt.Fprintln(os.Stderr, "wire-workflows:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Defaults()
	cfg.Seed = *seed
	tbl := experiments.Table1Report(experiments.Table1(cfg))
	var err error
	if *csv {
		err = tbl.WriteCSV(os.Stdout)
	} else {
		err = tbl.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-workflows:", err)
		os.Exit(1)
	}
}

// printStages renders the per-stage breakdown of one catalogued run.
func printStages(key string, seed int64, csv bool) error {
	run, ok := workloads.ByKey(key)
	if !ok {
		return fmt.Errorf("unknown run %q; known keys: %v", key, workloads.Keys())
	}
	wf := run.Generate(seed)
	t := &report.Table{
		Title:   fmt.Sprintf("Stages of %s (seed %d)", run.Display, seed),
		Headers: []string{"stage", "name", "tasks", "mean exec (s)", "fan-in", "input sizes (MB)"},
	}
	for _, st := range wf.Stages {
		sizes := map[float64]bool{}
		maxFanIn := 0
		for _, tid := range st.Tasks {
			task := wf.Task(tid)
			sizes[task.InputSize] = true
			if len(task.Deps) > maxFanIn {
				maxFanIn = len(task.Deps)
			}
		}
		var sizeList []float64
		for s := range sizes {
			sizeList = append(sizeList, s)
		}
		sort.Float64s(sizeList)
		var sizeStrs []string
		for _, s := range sizeList {
			sizeStrs = append(sizeStrs, report.F(s, 2))
		}
		t.AddRow(int(st.ID), st.Name, len(st.Tasks),
			report.F(wf.StageMeanExecTime(st.ID), 2), maxFanIn, strings.Join(sizeStrs, " "))
	}
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}
