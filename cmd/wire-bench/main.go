// Command wire-bench regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated substrate.
//
// Usage:
//
//	wire-bench                 # everything, paper-scale settings
//	wire-bench -quick          # reduced grid for a fast look
//	wire-bench -only fig5,fig6 # subset: table1, fig2, fig3, fig4, fig5, fig6, overhead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid (fewer reps/units/workloads)")
	only := flag.String("only", "", "comma-separated subset: table1,fig2,fig3,fig4,fig5,fig6,overhead,ablation,history")
	seed := flag.Int64("seed", 1, "base seed")
	svgDir := flag.String("svg", "", "also write every figure as SVG into this directory")
	flag.Parse()

	cfg := experiments.Defaults()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	start := time.Now()

	if selected("table1") {
		section(experiments.Table1Report(experiments.Table1(cfg)))
	}
	if selected("fig2") {
		points, err := experiments.LinearSweep(cfg, experiments.RGreaterU)
		exitIf(err)
		section(experiments.LinearReport(points))
	}
	if selected("fig3") {
		points, err := experiments.LinearSweep(cfg, experiments.RLessEqualU)
		exitIf(err)
		section(experiments.LinearReport(points))
	}
	if selected("fig4") {
		runs, err := experiments.PredictionExperiment(cfg)
		exitIf(err)
		section(experiments.PredictionReport(runs))
	}
	var cost *experiments.CostResult
	if selected("fig5") || selected("fig6") {
		var err error
		cost, err = experiments.CostExperiment(cfg)
		exitIf(err)
	}
	if selected("fig5") {
		section(cost.Figure5Report())
	}
	if selected("fig6") {
		section(cost.Figure6Report())
		h := cost.Headline()
		fmt.Printf("headline: other/wire cost %.2fx-%.2fx | full-site/wire %.2fx-%.2fx | "+
			"wire slowdown %.2fx-%.2fx | wire within 2x of best in %.1f%% of settings | wire cheapest in %.1f%%\n\n",
			h.OtherOverWireCostLo, h.OtherOverWireCostHi,
			h.FullSiteOverWireLo, h.FullSiteOverWireHi,
			h.WireSlowdownLo, h.WireSlowdownHi,
			h.WireWithin2x*100, h.WireCheapestShare*100)
	}
	if selected("overhead") {
		rows, err := experiments.OverheadExperiment(cfg)
		exitIf(err)
		section(experiments.OverheadReport(rows))
	}
	if selected("ablation") {
		rows, err := experiments.AblationExperiment(cfg)
		exitIf(err)
		section(experiments.AblationReport(rows))
	}
	if selected("history") {
		rows, err := experiments.HistoryExperiment(cfg)
		exitIf(err)
		section(experiments.HistoryReport(rows))
	}

	if *svgDir != "" {
		files, err := experiments.WriteFigureSVGs(cfg, *svgDir)
		exitIf(err)
		fmt.Printf("wrote %d SVG figures to %s\n", len(files), *svgDir)
	}

	fmt.Printf("wire-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func section(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		exitIf(err)
	}
	fmt.Println()
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-bench:", err)
		os.Exit(1)
	}
}
