// Command wire-bench regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated substrate.
//
// Usage:
//
//	wire-bench                 # everything, paper-scale settings
//	wire-bench -quick          # reduced grid for a fast look
//	wire-bench -workers 8      # size the shared experiment worker pool
//	wire-bench -only fig5,fig6 # subset; sectionKeys below (and the -only
//	                           # flag help) list the valid keys
//
// Result tables go to stdout and are byte-identical at any -workers
// setting; progress and per-section timing lines go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// sectionKeys is the single source of truth for -only: the flag help, the
// key validation, and the package documentation all refer to it.
var sectionKeys = []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "overhead", "ablation", "history"}

func main() {
	quick := flag.Bool("quick", false, "reduced grid (fewer reps/units/workloads)")
	only := flag.String("only", "", "comma-separated subset: "+strings.Join(sectionKeys, ","))
	seed := flag.Int64("seed", 1, "base seed")
	workers := flag.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS)")
	svgDir := flag.String("svg", "", "also write every figure as SVG into this directory")
	flag.Parse()

	cfg := experiments.Defaults()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	want := map[string]bool{}
	if *only != "" {
		known := map[string]bool{}
		for _, k := range sectionKeys {
			known[k] = true
		}
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if !known[k] {
				fmt.Fprintf(os.Stderr, "wire-bench: unknown -only key %q (valid: %s)\n",
					k, strings.Join(sectionKeys, ", "))
				os.Exit(2)
			}
			want[k] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	start := time.Now()

	// timed runs one section's computation on the shared pool, streaming
	// cell progress to stderr and closing with a per-section timing line.
	// Only stderr carries timing, so stdout stays reproducible. Live
	// progress needs \r rewriting, so it is limited to terminals.
	liveProgress := false
	if st, err := os.Stderr.Stat(); err == nil {
		liveProgress = st.Mode()&os.ModeCharDevice != 0
	}
	timed := func(name string, f func() error) {
		t0 := time.Now()
		if liveProgress {
			cfg.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rwire-bench: %-8s %d/%d", name, done, total)
			}
		}
		err := f()
		cfg.Progress = nil
		exitIf(err)
		cr := ""
		if liveProgress {
			cr = "\r"
		}
		fmt.Fprintf(os.Stderr, "%swire-bench: %-8s done in %v\n", cr, name, time.Since(t0).Round(time.Millisecond))
	}

	if selected("table1") {
		var rows []experiments.Table1Row
		timed("table1", func() error { rows = experiments.Table1(cfg); return nil })
		section(experiments.Table1Report(rows))
	}
	if selected("fig2") {
		var points []experiments.LinearPoint
		timed("fig2", func() (err error) {
			points, err = experiments.LinearSweep(cfg, experiments.RGreaterU)
			return err
		})
		section(experiments.LinearReport(points))
	}
	if selected("fig3") {
		var points []experiments.LinearPoint
		timed("fig3", func() (err error) {
			points, err = experiments.LinearSweep(cfg, experiments.RLessEqualU)
			return err
		})
		section(experiments.LinearReport(points))
	}
	if selected("fig4") {
		var runs []experiments.PredictionRun
		timed("fig4", func() (err error) {
			runs, err = experiments.PredictionExperiment(cfg)
			return err
		})
		section(experiments.PredictionReport(runs))
	}
	var cost *experiments.CostResult
	if selected("fig5") || selected("fig6") {
		timed("fig5/6", func() (err error) {
			cost, err = experiments.CostExperiment(cfg)
			return err
		})
	}
	if selected("fig5") {
		section(cost.Figure5Report())
	}
	if selected("fig6") {
		section(cost.Figure6Report())
		h := cost.Headline()
		fmt.Printf("headline: other/wire cost %.2fx-%.2fx | full-site/wire %.2fx-%.2fx | "+
			"wire slowdown %.2fx-%.2fx | wire within 2x of best in %.1f%% of settings | wire cheapest in %.1f%%\n\n",
			h.OtherOverWireCostLo, h.OtherOverWireCostHi,
			h.FullSiteOverWireLo, h.FullSiteOverWireHi,
			h.WireSlowdownLo, h.WireSlowdownHi,
			h.WireWithin2x*100, h.WireCheapestShare*100)
	}
	if selected("overhead") {
		var rows []experiments.OverheadRow
		timed("overhead", func() (err error) {
			rows, err = experiments.OverheadExperiment(cfg)
			return err
		})
		section(experiments.OverheadReport(rows))
	}
	if selected("ablation") {
		var rows []experiments.AblationRow
		timed("ablation", func() (err error) {
			rows, err = experiments.AblationExperiment(cfg)
			return err
		})
		section(experiments.AblationReport(rows))
	}
	if selected("history") {
		var rows []experiments.HistoryRow
		timed("history", func() (err error) {
			rows, err = experiments.HistoryExperiment(cfg)
			return err
		})
		section(experiments.HistoryReport(rows))
	}

	if *svgDir != "" {
		var files []string
		timed("svg", func() (err error) {
			files, err = experiments.WriteFigureSVGs(cfg, *svgDir)
			return err
		})
		fmt.Fprintf(os.Stderr, "wire-bench: wrote %d SVG figures to %s\n", len(files), *svgDir)
	}

	fmt.Fprintf(os.Stderr, "wire-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func section(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		exitIf(err)
	}
	fmt.Println()
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-bench:", err)
		os.Exit(1)
	}
}
