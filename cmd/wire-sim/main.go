// Command wire-sim executes one workflow under one resource-management
// policy on the simulated cloud site and prints the run report.
//
// Usage:
//
//	wire-sim -workflow genome-s -policy wire -unit 15m
//	wire-sim -dag flow.json -policy pure-reactive -unit 1m -seed 7
//	wire-sim -workflow genome-s -server http://127.0.0.1:8080
//
// The workflow comes either from the Table I catalogue (-workflow) or from
// a JSON file produced by wire-workflows -export / dagio (-dag).
//
// With -server, planning is delegated to a running wire-serve daemon: the
// simulator executes locally but every MAPE iteration becomes a POST to
// /v1/sessions/{id}/plan, exercising the same client code as the loadgen.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/dax"
	"repro/internal/dist"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workloads"
)

func main() {
	workflow := flag.String("workflow", "genome-s", "catalogued run key (see wire-workflows)")
	dagFile := flag.String("dag", "", "JSON workflow file (overrides -workflow)")
	daxFile := flag.String("dax", "", "Pegasus DAX XML file (overrides -workflow)")
	policy := flag.String("policy", "wire", "wire | deadline | full-site | pure-reactive | reactive-conserving")
	deadline := flag.Duration("deadline", 0, "completion target for -policy deadline")
	server := flag.String("server", "", "wire-serve base URL; delegates planning to the daemon")
	unit := flag.Duration("unit", 15*time.Minute, "charging unit")
	lag := flag.Duration("lag", 3*time.Minute, "instantiation lag = MAPE interval")
	slots := flag.Int("slots", 4, "task slots per worker instance")
	maxInst := flag.Int("max-instances", 12, "site instance cap")
	seed := flag.Int64("seed", 1, "generation/interference seed")
	noise := flag.Float64("noise", 0.08, "lognormal sigma of per-attempt occupancy noise (0 = none)")
	mtbf := flag.Duration("mtbf", 0, "mean time between instance failures (0 = no failures)")
	flag.Parse()

	wf, err := loadWorkflow(*dagFile, *daxFile, *workflow, *seed)
	if err != nil {
		fail(err)
	}
	var spec *service.ControllerSpec
	if *deadline > 0 {
		spec = &service.ControllerSpec{Deadline: deadline.Seconds()}
	}
	var ctrl sim.Controller
	if *server != "" {
		rc, err := service.NewRemoteController(context.Background(), service.NewClient(*server), service.CreateSessionRequest{
			Workflow:   dagio.Encode(wf),
			Policy:     *policy,
			Controller: spec,
		})
		if err != nil {
			fail(err)
		}
		defer rc.Close()
		ctrl = rc
		defer func() {
			if err := rc.Err(); err != nil {
				fail(fmt.Errorf("remote planning: %w", err))
			}
		}()
	} else {
		ctrl, err = service.NewPolicyController(*policy, spec)
		if err != nil {
			fail(err)
		}
	}
	cfg := sim.Config{
		Cloud: cloud.Config{
			SlotsPerInstance: *slots,
			LagTime:          lag.Seconds(),
			ChargingUnit:     unit.Seconds(),
			MaxInstances:     *maxInst,
		},
		Seed: *seed,
		MTBF: mtbf.Seconds(),
	}
	if *noise > 0 {
		cfg.Interference = dist.NewLognormalFromMean(1, *noise)
	}
	if *policy == "full-site" {
		cfg.InitialInstances = *maxInst
	}

	res, err := sim.Run(wf, ctrl, cfg)
	if err != nil {
		fail(err)
	}
	printResult(wf, res)
}

func loadWorkflow(dagFile, daxFile, key string, seed int64) (*dag.Workflow, error) {
	switch {
	case dagFile != "":
		f, err := os.Open(dagFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dagio.Read(f)
	case daxFile != "":
		f, err := os.Open(daxFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dax.Read(f, dax.Options{})
	}
	run, ok := workloads.ByKey(key)
	if !ok {
		return nil, fmt.Errorf("unknown workflow %q; known keys: %v", key, workloads.Keys())
	}
	return run.Generate(seed), nil
}

func printResult(wf *dag.Workflow, res *sim.Result) {
	t := &report.Table{Title: fmt.Sprintf("Run report — %s under %s", res.Workflow, res.Policy),
		Headers: []string{"metric", "value"}}
	t.AddRow("tasks", len(res.TaskRuns))
	t.AddRow("stages", wf.NumStages())
	t.AddRow("makespan", simtime.FormatDuration(res.Makespan))
	t.AddRow("charging units", res.UnitsCharged)
	t.AddRow("charged time", simtime.FormatDuration(res.ChargedSeconds))
	t.AddRow("utilization", report.F(res.Utilization*100, 1)+"%")
	t.AddRow("peak pool", res.PeakPool)
	t.AddRow("launches", res.Launches)
	t.AddRow("task restarts", res.Restarts)
	t.AddRow("instance failures", res.Failures)
	if res.OrdersLost+res.OrdersDuplicated+res.DeadOnArrival > 0 {
		t.AddRow("orders lost", res.OrdersLost)
		t.AddRow("orders duplicated", res.OrdersDuplicated)
		t.AddRow("dead on arrival", res.DeadOnArrival)
	}
	t.AddRow("MAPE iterations", res.Decisions)
	t.AddRow("controller wall", res.ControllerWall.Round(time.Microsecond))
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}

	fmt.Println()
	pool := &report.Table{Title: "Pool timeline (changes only)", Headers: []string{"t", "held", "usable"}}
	for _, s := range res.Pool {
		pool.AddRow(simtime.FormatDuration(s.Time), s.Held, s.Usable)
	}
	if err := pool.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wire-sim:", err)
	os.Exit(1)
}
