// Command wire-agent is a live execution worker: it registers with a
// wire-serve daemon, advertises task slots, long-polls for leased tasks, and
// runs each lease through the busy/sleep task emulator, reporting measured
// execution and transfer times back to the dispatcher.
//
//	wire-serve serve -addr 127.0.0.1:8080 &
//	curl -s -X POST http://127.0.0.1:8080/v1/live/runs -d '{"workflow_key":"genome-s", ...}'
//	wire-agent -server http://127.0.0.1:8080 -run live-<id> -slots 4
//
// Chaos flags make the agent an unreliable worker for reclaim testing:
// -chaos-drop injects random request drops into its transport,
// -partition-after severs it from the dispatcher entirely after a wall-clock
// delay — from the dispatcher's point of view the agent crashes, its
// heartbeat lapses, and its leased tasks are reclaimed and re-executed
// elsewhere — -chaos-task-crash makes leased attempts die mid-execution
// (poison-task/quarantine testing), and -chaos-slow turns the agent into a
// deterministic straggler (speculative re-execution testing).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
)

func main() {
	fs := flag.NewFlagSet("wire-agent", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "wire-serve base URL")
	run := fs.String("run", "", "live run ID to serve (required)")
	name := fs.String("name", "", "agent display name (default: hostname-pid)")
	slots := fs.Int("slots", 4, "concurrent task slots to advertise")
	pollWait := fs.Duration("poll-wait", 5*time.Second, "long-poll duration cap")
	chaosDrop := fs.Float64("chaos-drop", 0, "probability of dropping each request (unreliable-agent mode)")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault-schedule seed for the chaos flags")
	chaosStream := fs.Int64("chaos-stream", 0, "fault-schedule stream id (distinguishes agents sharing a seed)")
	chaosTaskCrash := fs.Float64("chaos-task-crash", 0, "probability each (task, attempt) crashes mid-execution (poison-task mode)")
	chaosSlow := fs.Float64("chaos-slow", 0, "probability this agent is a straggler, stretching every task")
	chaosSlowFactor := fs.Float64("chaos-slow-factor", 8, "duration multiplier applied when -chaos-slow selects this agent")
	partitionAfter := fs.Duration("partition-after", 0, "sever the agent from the dispatcher after this wall delay (0 = never)")
	quiet := fs.Bool("quiet", false, "suppress log lines")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "wire-agent: -run is required")
		os.Exit(2)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "wire-agent: "+format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	plan := chaos.Plan{
		Seed:        *chaosSeed,
		DropRequest: *chaosDrop,
		TaskCrash:   *chaosTaskCrash,
		SlowAgent:   *chaosSlow,
		SlowFactor:  *chaosSlowFactor,
	}
	if err := plan.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "wire-agent:", err)
		os.Exit(2)
	}
	var transport http.RoundTripper = http.DefaultTransport
	if *chaosDrop > 0 {
		transport = plan.Transport(*chaosStream, transport)
	}
	pt := &partitionTransport{next: transport}
	if *partitionAfter > 0 {
		time.AfterFunc(*partitionAfter, func() {
			logf("partitioned from dispatcher (after %v)", *partitionAfter)
			pt.sever()
		})
	}

	acfg := exec.AgentConfig{
		BaseURL:    *server,
		RunID:      *run,
		Name:       *name,
		Slots:      *slots,
		PollWait:   *pollWait,
		HTTPClient: &http.Client{Transport: pt},
		Logf:       logf,
		// The stream id keeps agents sharing a chaos seed on distinct
		// jitter streams, mirroring plan.Transport's stream handling.
		JitterSeed: *chaosSeed ^ (*chaosStream << 32),
	}
	if *chaosTaskCrash > 0 {
		acfg.CrashTask = plan.TaskCrashes
	}
	if stretch := plan.AgentSlowdown(*chaosStream); stretch > 1 {
		logf("chaos: straggler mode, stretching tasks %.1fx", stretch)
		acfg.Stretch = stretch
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := exec.RunAgent(ctx, acfg)
	if err != nil && ctx.Err() == nil {
		var rerr *exec.RegisterError
		if errors.As(err, &rerr) {
			// Terminal rejection: the dispatcher will never admit this
			// agent, so retrying (or restarting) is pointless. Exit with a
			// distinct status and point the operator at the daemon metrics.
			fmt.Fprintf(os.Stderr, "wire-agent: registration rejected: %v\n", rerr)
			fmt.Fprintf(os.Stderr, "wire-agent: check run state and limits: GET %s/metrics\n", *server)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "wire-agent:", err)
		os.Exit(1)
	}
}

// partitionTransport drops every request once severed: the process lives on
// but the dispatcher never hears from it again.
type partitionTransport struct {
	next http.RoundTripper

	mu      sync.Mutex
	severed bool
}

func (p *partitionTransport) sever() {
	p.mu.Lock()
	p.severed = true
	p.mu.Unlock()
}

func (p *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	severed := p.severed
	p.mu.Unlock()
	if severed {
		return nil, fmt.Errorf("wire-agent: network partitioned")
	}
	return p.next.RoundTrip(req)
}
