// Command wire-serve hosts WIRE controllers as a long-running HTTP daemon
// and ships the matching load-test client.
//
// Serve mode (the default) runs the controller-as-a-service daemon:
//
//	wire-serve -addr 127.0.0.1:8080 -max-sessions 1024 -ttl 30m
//	wire-serve serve -addr 127.0.0.1:0     # ephemeral port, printed on stdout
//
// Loadgen mode drives N concurrent simulated workflows against a running
// daemon, planning every MAPE iteration over HTTP, and reports throughput,
// latency quantiles, and remote-vs-local verification:
//
//	wire-serve loadgen -server http://127.0.0.1:8080 -sessions 100 -workflow genome-s
//
// Arrival-stream mode replaces the fixed fleet with a multi-tenant arrival
// process (internal/tenancy): tenant-tagged sessions arrive over compressed
// time, heterogeneous workflows are drawn per arrival, and the daemon's
// admission gate throttles tenants against their budgets and session caps.
// A CSV trace (wire-workflows -stream) replays through the same path:
//
//	wire-serve loadgen -arrivals poisson -sessions 51 -tenants 3 \
//	  -stream-keys tpch6-s,tpch1-s,pagerank-s -tenant-budget 30
//	wire-serve loadgen -trace-in stream.csv
//	wire-serve loadgen -shards 3 -kill-shard -arrivals poisson -sessions 24
//
// Chaos mode runs the fault-tolerance certificate: it hosts a daemon
// in-process, drives the sessions through deterministically injected network
// and cloud faults, optionally kills and restarts the daemon mid-run
// (recovering every session from its write-ahead journal), and requires each
// decision stream byte-identical to a fault-free in-process twin:
//
//	wire-serve loadgen -chaos -sessions 12 -concurrency 2 -kill-after 150ms
//
// Route mode runs the sharded control plane's stateless front end: it
// consistent-hashes session IDs onto a static fleet of shard daemons
// (ordinary `wire-serve serve -shard` processes), heartbeats them, and on
// shard death hands the dead shard's journal directories to a surviving peer
// which resurrects every session by WAL replay:
//
//	wire-serve serve -shard -journal /mnt/journals/s0 -addr 127.0.0.1:8081
//	wire-serve serve -shard -journal /mnt/journals/s1 -addr 127.0.0.1:8082
//	wire-serve route -addr 127.0.0.1:8080 \
//	  -shard s0=http://127.0.0.1:8081=/mnt/journals/s0 \
//	  -shard s1=http://127.0.0.1:8082=/mnt/journals/s1
//
// The cluster certificate (`loadgen -shards N -kill-shard`) hosts the whole
// fleet in-process, SIGKILLs one shard mid-run, and requires zero dropped
// sessions with every decision stream byte-identical to an in-process twin:
//
//	wire-serve loadgen -shards 3 -kill-shard -sessions 30 -concurrency 4
//
// The elastic variants drain, restart, and rejoin every shard in sequence
// (the rolling-restart certificate) or apply a seeded random schedule of
// kill/drain/join churn events, with the same zero-drop bar:
//
//	wire-serve loadgen -shards 3 -rolling-restart -sessions 30 -concurrency 4
//	wire-serve loadgen -shards 3 -churn 8 -sessions 30 -concurrency 4
//
// The partition certificate replaces process kills with a seeded network
// nemesis: symmetric splits, one-way router→shard drops, and slow links are
// applied and healed in sequence under live load, after which the post-run
// journal audit must come back clean:
//
//	wire-serve loadgen -shards 3 -partition split,oneway,slow -sessions 60
//	wire-serve loadgen -shards 3 -partition seeded:4 -sessions 60
//
// Audit mode replays a set of journal directories (the union of every
// shard's -journal dir, gathered after a run or an incident) and checks
// machine-verifiable global invariants: exactly-once decisions, at most one
// unfenced writer per session, monotone seq/epoch, no lost or double-billed
// planning intervals, lease grant/terminal identity, and per-tenant spend
// within budget. It prints a JSON report and exits non-zero on violations:
//
//	wire-serve audit -journal /mnt/journals/s0 -journal /mnt/journals/s1
//	wire-serve audit -selftest    # mutation self-test of the auditor itself
//
// Admin mode drives the router's elastic membership endpoints from the
// command line:
//
//	wire-serve admin -router http://127.0.0.1:8080 -drain s1
//	wire-serve admin -router http://127.0.0.1:8080 -join s1=http://127.0.0.1:8082=/mnt/journals/s1
//
// The daemon exits cleanly on SIGINT/SIGTERM after draining in-flight
// requests. A shard started with -name and -router additionally drains
// itself out of the ring on SIGTERM (migrating its sessions to live peers)
// before shutting down.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/tenancy"
)

func main() {
	args := os.Args[1:]
	mode := "serve"
	if len(args) > 0 && (args[0] == "serve" || args[0] == "loadgen" || args[0] == "route" || args[0] == "admin" || args[0] == "audit") {
		mode, args = args[0], args[1:]
	}
	var err error
	switch mode {
	case "serve":
		err = runServe(args)
	case "loadgen":
		err = runLoadgen(args)
	case "route":
		err = runRoute(args)
	case "admin":
		err = runAdmin(args)
	case "audit":
		err = runAudit(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-serve:", err)
		os.Exit(1)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("wire-serve serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
	maxSessions := fs.Int("max-sessions", 1024, "concurrent session cap (-1 = unbounded)")
	ttl := fs.Duration("ttl", 30*time.Minute, "idle session TTL (-1 = never evict)")
	janitor := fs.Duration("janitor", time.Minute, "eviction sweep interval")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain bound for HTTP requests")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "shutdown drain bound for in-flight agent leases")
	journal := fs.String("journal", "", "crash-recovery journal directory (empty = journaling off)")
	fsyncMode := fs.String("journal-fsync", service.FsyncPerInterval, "WAL durability: record (fsync every append) | interval (at most once per -journal-fsync-interval) | off")
	fsyncInterval := fs.Duration("journal-fsync-interval", 100*time.Millisecond, "sync period for -journal-fsync interval")
	liveRuns := fs.Int("live-max-runs", 8, "concurrent live execution runs (-1 = live plane off)")
	shardMode := fs.Bool("shard", false, "session-shard mode: honor router-assigned session IDs and serve the /v1/admin handoff endpoints")
	selfName := fs.String("name", "", "this shard's name on the router's ring (enables SIGTERM self-drain with -router)")
	routerURL := fs.String("router", "", "router base URL; with -name, SIGTERM drains this shard out of the ring before shutdown")
	partAfter := fs.Duration("chaos-partition-after", 0, "partition nemesis: this long after startup, start dropping router-tagged requests (0 = off)")
	partFor := fs.Duration("chaos-partition-for", 3*time.Second, "partition nemesis: how long the one-way drop window lasts")
	quiet := fs.Bool("quiet", false, "suppress operational log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardMode && *journal == "" {
		return fmt.Errorf("serve -shard requires -journal (the journal directory is the unit of failover handoff)")
	}
	if (*selfName == "") != (*routerURL == "") {
		return fmt.Errorf("serve -name and -router go together (both identify this shard to the router for SIGTERM self-drain)")
	}
	switch *fsyncMode {
	case service.FsyncRecord, service.FsyncPerInterval, service.FsyncOff:
	default:
		return fmt.Errorf("serve -journal-fsync wants record, interval, or off (got %q)", *fsyncMode)
	}

	logf := func(format string, fargs ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", fargs...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}
	scfg := service.Config{
		MaxSessions:     *maxSessions,
		IdleTTL:         *ttl,
		JanitorInterval: *janitor,
		ShutdownGrace:   *grace,
		DrainTimeout:    *drainTimeout,
		JournalDir:      *journal,
		FsyncMode:       *fsyncMode,
		FsyncInterval:   *fsyncInterval,
		LiveMaxRuns:     *liveRuns,
		ShardMode:       *shardMode,
		Logf:            logf,
	}
	if *partAfter > 0 {
		// One-way link cut, realized in-process: during the window, any
		// request tagged with the router's identity header is dropped with a
		// connection reset (no HTTP response), exactly what a severed
		// router→shard link looks like from the router's side. Untagged
		// traffic — including the peer-relayed confirmation probes — still
		// lands, so the router can prove this shard alive-but-partitioned.
		scfg.Middleware = func(next http.Handler) http.Handler {
			start := time.Now()
			var once sync.Once
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Header.Get(service.RouterIdentityHeader) != "" {
					if el := time.Since(start); el >= *partAfter && el < *partAfter+*partFor {
						once.Do(func() {
							logf("wire-serve: chaos: dropping router-tagged requests for %v", *partFor)
						})
						panic(http.ErrAbortHandler)
					}
				}
				next.ServeHTTP(w, r)
			})
		}
	}
	srv := service.New(scfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout so scripts (and the CI smoke test)
	// can start on port 0 and discover the URL.
	fmt.Printf("wire-serve: listening on http://%s\n", ln.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		signal.Stop(sigc) // a second signal kills outright
		// Self-drain BEFORE tearing the server down: the drain migrates this
		// shard's sessions to live peers, and this shard must keep serving
		// (it is the export donor) until the router says the drain is done.
		if *selfName != "" {
			logf("wire-serve: SIGTERM: draining shard %s out of the ring via %s", *selfName, *routerURL)
			dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Minute)
			if body, err := postJSON(dctx, *routerURL+"/v1/admin/drain", map[string]string{"shard": *selfName}); err != nil {
				logf("wire-serve: self-drain failed (shutting down anyway; the router will fail this shard over): %v", err)
			} else {
				logf("wire-serve: self-drain complete: %s", strings.TrimSpace(string(body)))
			}
			dcancel()
		}
		cancel()
	}()
	if err := srv.Serve(ctx, ln); err != nil {
		return err
	}
	logf("wire-serve: shutdown complete")
	return nil
}

// postJSON POSTs one JSON body and returns the response body, treating any
// non-200 as an error.
func postJSON(ctx context.Context, url string, body any) ([]byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(rb)))
	}
	return rb, nil
}

// runAdmin drives the router's elastic membership endpoints: -drain moves a
// shard's sessions to its peers and removes it from the ring; -join adds (or
// re-adds after a restart) a shard, migrating the minimally-remapped key
// ranges onto it. Both block until the operation commits.
func runAdmin(args []string) error {
	fs := flag.NewFlagSet("wire-serve admin", flag.ExitOnError)
	router := fs.String("router", "http://127.0.0.1:8080", "router base URL")
	drain := fs.String("drain", "", "gracefully drain this shard out of the ring")
	join := fs.String("join", "", "join a shard as name=url=journal-dir")
	timeout := fs.Duration("timeout", 2*time.Minute, "operation timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*drain == "") == (*join == "") {
		return fmt.Errorf("admin wants exactly one of -drain or -join")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if *drain != "" {
		body, err := postJSON(ctx, *router+"/v1/admin/drain", map[string]string{"shard": *drain})
		if err != nil {
			return fmt.Errorf("drain %s: %w", *drain, err)
		}
		fmt.Printf("wire-serve admin: drained: %s\n", strings.TrimSpace(string(body)))
		return nil
	}
	sh, err := cluster.ParseShard(*join)
	if err != nil {
		return err
	}
	body, err := postJSON(ctx, *router+"/v1/admin/join", map[string]string{
		"name": sh.Name, "url": sh.URL, "journal_dir": sh.JournalDir,
	})
	if err != nil {
		return fmt.Errorf("join %s: %w", sh.Name, err)
	}
	fmt.Printf("wire-serve admin: joined: %s\n", strings.TrimSpace(string(body)))
	return nil
}

// runAudit merges a set of journal directories and checks the global
// consistency invariants (internal/audit), printing the JSON report to
// stdout. Exit status is the verdict: non-zero when any violation is found,
// so `wire-serve audit ... || alert` is the whole integration. With
// -selftest it instead runs the auditor's own mutation-coverage check.
func runAudit(args []string) error {
	fs := flag.NewFlagSet("wire-serve audit", flag.ExitOnError)
	var dirs stringList
	fs.Var(&dirs, "journal", "journal directory to audit (repeatable; positional args are accepted too)")
	var budgetFlags stringList
	fs.Var(&budgetFlags, "budget", "per-tenant budget as tenant=units (repeatable; enables the budget_overspend check)")
	slack := fs.Float64("slack", 0, "charging units of slack before budget_overspend fires (austerity admission may legitimately run slightly over)")
	selftest := fs.Bool("selftest", false, "run the auditor's mutation self-test (seeded corruptions must all be caught) instead of auditing journals")
	if err := fs.Parse(args); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if *selftest {
		res, err := audit.SelfTest()
		if err != nil {
			return err
		}
		if err := enc.Encode(res); err != nil {
			return err
		}
		if !res.Ok() {
			return fmt.Errorf("audit selftest: missed %d of %d seeded corruption(s)", len(res.Missed), res.Cases)
		}
		fmt.Fprintf(os.Stderr, "wire-serve audit: selftest caught %d/%d seeded corruptions\n", res.Caught, res.Cases)
		return nil
	}
	dirs = append(dirs, fs.Args()...)
	if len(dirs) == 0 {
		return fmt.Errorf("audit wants at least one -journal directory (or -selftest)")
	}
	budgets := map[string]float64{}
	for _, b := range budgetFlags {
		tenant, units, ok := strings.Cut(b, "=")
		if !ok {
			return fmt.Errorf("audit -budget wants tenant=units (got %q)", b)
		}
		u, err := strconv.ParseFloat(units, 64)
		if err != nil {
			return fmt.Errorf("audit -budget %s: %w", b, err)
		}
		budgets[tenant] = u
	}
	rep, err := audit.Run(audit.Config{Dirs: dirs, TenantBudgets: budgets, SlackUnits: *slack})
	if err != nil {
		return err
	}
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Clean() {
		return fmt.Errorf("audit: %d violation(s) across %d session(s)", len(rep.Violations), rep.Sessions)
	}
	fmt.Fprintf(os.Stderr, "wire-serve audit: clean — %d session(s), %d WAL(s), %d plan(s), %d live record(s)\n",
		rep.Sessions, rep.WALs, rep.Plans, rep.LiveRecords)
	return nil
}

// stringList is a repeatable string flag (-shard a -shard b).
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func runRoute(args []string) error {
	fs := flag.NewFlagSet("wire-serve route", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
	var shardFlags stringList
	fs.Var(&shardFlags, "shard", "shard as name=url=journal-dir (repeatable)")
	shardMap := fs.String("shard-map", "", "JSON shard-map file (alternative to -shard)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the placement ring")
	heartbeat := fs.Duration("heartbeat", time.Second, "shard liveness probe interval")
	heartbeatTimeout := fs.Duration("heartbeat-timeout", 0, "single probe timeout (0 = the interval)")
	failAfter := fs.Int("fail-after", 3, "consecutive probe misses before a shard is declared dead")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 503 shard_recovering responses")
	quiet := fs.Bool("quiet", false, "suppress operational log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var shards []cluster.Shard
	if *shardMap != "" {
		var err error
		if shards, err = cluster.LoadShardMap(*shardMap); err != nil {
			return err
		}
	}
	for _, s := range shardFlags {
		sh, err := cluster.ParseShard(s)
		if err != nil {
			return err
		}
		shards = append(shards, sh)
	}

	logf := func(format string, fargs ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", fargs...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Shards:            shards,
		VNodes:            *vnodes,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *heartbeatTimeout,
		FailThreshold:     *failAfter,
		RetryAfter:        *retryAfter,
		Logf:              logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout so scripts (and the CI smoke test)
	// can start on port 0 and discover the URL.
	fmt.Printf("wire-serve: routing on http://%s\n", ln.Addr())
	logf("wire-serve route: %d shard(s), 10k-key spread %v", len(shards), rt.Ring().Spread(10000))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx)
	hs := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(sctx)
	logf("wire-serve route: shutdown complete")
	return nil
}

func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("wire-serve loadgen", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "daemon base URL")
	sessions := fs.Int("sessions", 100, "number of workflows to run")
	concurrency := fs.Int("concurrency", 0, "simultaneously running sessions (0 = all)")
	workflow := fs.String("workflow", "genome-s", "catalogued run key (see wire-workflows)")
	policy := fs.String("policy", "wire", "wire | deadline | full-site | pure-reactive | reactive-conserving")
	deadline := fs.Duration("deadline", 0, "completion target for -policy deadline")
	unit := fs.Duration("unit", 15*time.Minute, "charging unit")
	lag := fs.Duration("lag", 3*time.Minute, "instantiation lag = MAPE interval")
	slots := fs.Int("slots", 4, "task slots per worker instance")
	maxInst := fs.Int("max-instances", 12, "site instance cap")
	noise := fs.Float64("noise", 0.08, "lognormal sigma of per-attempt occupancy noise (0 = none)")
	seed := fs.Int64("seed", 1, "seed base; session i uses seed+i")
	verify := fs.Bool("verify", true, "re-run each session in-process and require identical results")
	chaosMode := fs.Bool("chaos", false, "chaos certificate: in-process daemon + injected faults (ignores -server)")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault-schedule seed (chaos and cluster modes)")
	killAfter := fs.Duration("kill-after", 0, "kill and journal-restart the daemon this long into the run (chaos mode; 0 = no kill)")
	shardCount := fs.Int("shards", 0, "cluster certificate: host this many in-process shards behind a router (ignores -server)")
	killShard := fs.Bool("kill-shard", false, "cluster certificate: SIGKILL one shard mid-run and require journal-handoff failover")
	rolling := fs.Bool("rolling-restart", false, "cluster certificate: drain, restart, and rejoin every shard in sequence under live traffic")
	churn := fs.Int("churn", 0, "cluster certificate: apply this many seeded kill/drain/join churn events, then heal the fleet")
	partition := fs.String("partition", "", "partition certificate: nemesis spec, a kind list (split,oneway,slow) or seeded:N")
	withRetry := fs.Bool("retry", false, "retrying shared client (required to ride out a live failover)")
	retain := fs.Bool("retain", false, "skip the session DELETE on completion so journals survive for wire-serve audit")
	arrivalsProc := fs.String("arrivals", "", "arrival-stream mode: "+strings.Join(tenancy.Processes(), " | ")+" (sessions arrive over time instead of all at once)")
	tenants := fs.Int("tenants", 3, "tenant streams in arrival mode")
	arrivalRate := fs.Float64("arrival-rate", 24, "per-tenant arrivals per simulated hour")
	tenantBudget := fs.Int("tenant-budget", 0, "per-tenant budget in charging units (0 = unlimited)")
	tenantMaxActive := fs.Int("tenant-max-active", 0, "per-tenant concurrent-session cap (0 = unlimited)")
	streamKeys := fs.String("stream-keys", "", "comma-separated workflow keys drawn per arrival (default: -workflow)")
	compress := fs.Float64("compress", 3600, "time compression for arrival dispatch (simulated seconds per wall second)")
	traceIn := fs.String("trace-in", "", "replay an arrival-stream CSV (see wire-workflows -stream) instead of generating one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosMode && *shardCount > 1 {
		return fmt.Errorf("-chaos and -shards are separate certificates; pick one")
	}
	streamMode := *arrivalsProc != "" || *traceIn != ""
	if streamMode && *chaosMode {
		return fmt.Errorf("arrival-stream mode does not compose with -chaos; drop one")
	}
	if (*rolling || *churn > 0) && *shardCount <= 1 {
		return fmt.Errorf("-rolling-restart and -churn need -shards N (the fleet to churn)")
	}
	if *rolling && *churn > 0 {
		return fmt.Errorf("-rolling-restart and -churn are separate certificates; pick one")
	}
	if *retain && (*tenantBudget > 0 || *tenantMaxActive > 0) {
		return fmt.Errorf("-retain never releases tenant slots; drop -tenant-budget/-tenant-max-active")
	}
	var partSpec *chaos.PartitionSpec
	if *partition != "" {
		if *shardCount <= 1 {
			return fmt.Errorf("-partition needs -shards N (the fleet to partition)")
		}
		if *killShard || *rolling || *churn > 0 {
			return fmt.Errorf("-partition is its own certificate; drop -kill-shard/-rolling-restart/-churn")
		}
		var err error
		if partSpec, err = chaos.ParsePartitionSpec(*partition); err != nil {
			return err
		}
	}

	var spec *service.ControllerSpec
	if *deadline > 0 {
		spec = &service.ControllerSpec{Deadline: deadline.Seconds()}
	}
	cfg := service.LoadgenConfig{
		Sessions:    *sessions,
		Concurrency: *concurrency,
		Policy:      *policy,
		Controller:  spec,
		WorkflowKey: *workflow,
		Cloud: cloud.Config{
			SlotsPerInstance: *slots,
			LagTime:          lag.Seconds(),
			ChargingUnit:     unit.Seconds(),
			MaxInstances:     *maxInst,
		},
		Noise:              *noise,
		SeedBase:           *seed,
		Verify:             *verify,
		RetainSessions:     *retain,
		Arrivals:           *arrivalsProc,
		Tenants:            *tenants,
		ArrivalRatePerHour: *arrivalRate,
		TenantBudget:       *tenantBudget,
		TenantMaxActive:    *tenantMaxActive,
		TimeCompression:    *compress,
		Progress: func(done, total int) {
			if done%10 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rwire-serve loadgen: %d/%d sessions", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		},
	}
	if streamMode {
		for _, k := range strings.Split(*streamKeys, ",") {
			if k = strings.TrimSpace(k); k != "" {
				cfg.StreamKeys = append(cfg.StreamKeys, k)
			}
		}
		if *traceIn != "" {
			f, err := os.Open(*traceIn)
			if err != nil {
				return err
			}
			s, err := tenancy.ReadStreamCSV(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("reading %s: %w", *traceIn, err)
			}
			cfg.Stream = s
		}
	}

	var (
		res   *service.LoadgenResult
		cert  *service.ChaosCertResult
		ccert *cluster.ShardCertResult
		via   = *server
		err   error
	)
	if *shardCount > 1 {
		// The cluster certificate hosts the shard fleet and router itself and
		// verifies every session against an in-process twin.
		cfg.Verify = true
		kill := time.Duration(0)
		if *killShard {
			kill = 500 * time.Millisecond
			if *killAfter > 0 {
				kill = *killAfter
			}
		}
		ccert, err = cluster.ShardCertify(context.Background(), cluster.ShardCertConfig{
			Loadgen: cfg,
			Server: service.Config{Logf: func(format string, fargs ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", fargs...)
			}},
			Shards:         *shardCount,
			KillAfter:      kill,
			KillJitterMax:  200 * time.Millisecond,
			Seed:           *chaosSeed,
			RollingRestart: *rolling,
			ChurnEvents:    *churn,
			Partition:      partSpec,
			Logf: func(format string, fargs ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", fargs...)
			},
		})
		if err != nil {
			return err
		}
		res, via = ccert.LoadgenResult, fmt.Sprintf("in-process %d-shard cluster", *shardCount)
	} else if *chaosMode {
		// The certificate hosts its own daemon, injects the default fault
		// plan into every session, and verifies against fault-free twins.
		cfg.Chaos = defaultChaosPlan(*chaosSeed, *lag)
		cfg.Verify = true
		cert, err = service.ChaosCertify(context.Background(), service.ChaosCertConfig{
			Loadgen: cfg,
			Server: service.Config{Logf: func(format string, fargs ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", fargs...)
			}},
			KillAfter: *killAfter,
		})
		if err != nil {
			return err
		}
		res, via = cert.LoadgenResult, "in-process chaos daemon"
	} else {
		var opts []service.ClientOption
		if *withRetry {
			opts = append(opts, service.WithRetry(service.DefaultChaosRetry()))
		}
		cfg.Client = service.NewClient(*server, opts...)
		res, err = service.Loadgen(context.Background(), cfg)
		if err != nil {
			return err
		}
	}

	load := fmt.Sprintf("%d×%s", res.Sessions, *workflow)
	if streamMode {
		keys := strings.Join(cfg.StreamKeys, ",")
		if cfg.Stream != nil {
			keys = "trace"
		}
		load = fmt.Sprintf("%d arrivals (%s) over %d tenants", res.Sessions, keys, res.Tenants)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Loadgen — %s under %s via %s", load, *policy, via),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("sessions completed", fmt.Sprintf("%d/%d", res.Completed, res.Sessions))
	t.AddRow("sessions failed", res.Failed)
	if cfg.Verify {
		t.AddRow("remote/local mismatches", res.Mismatched)
	}
	t.AddRow("plan requests", res.Plans)
	t.AddRow("wall time", res.Wall.Round(time.Millisecond))
	t.AddRow("plan throughput", report.F(res.PlansPerSec, 1)+" req/s")
	t.AddRow("plan latency p50", report.F(res.Latency.P50, 2)+" ms")
	t.AddRow("plan latency p90", report.F(res.Latency.P90, 2)+" ms")
	t.AddRow("plan latency p99", report.F(res.Latency.P99, 2)+" ms")
	t.AddRow("plan latency max", report.F(res.Latency.Max, 2)+" ms")
	if res.Retries > 0 || *chaosMode {
		t.AddRow("client retries", res.Retries)
	}
	if res.DegradedPlans > 0 {
		t.AddRow("degraded plans", res.DegradedPlans)
	}
	if streamMode {
		t.AddRow("tenants", res.Tenants)
		t.AddRow("throttled creates", res.Throttled)
		t.AddRow("deadline misses", res.DeadlineMisses)
		t.AddRow("tenant spend", report.F(res.TenantSpendUnits, 1)+" units")
	}
	if *chaosMode {
		n := res.NetFaults
		t.AddRow("net faults injected", fmt.Sprintf("%d of %d attempts (%d drops, %d 5xx, %d resets, %d delays)",
			n.Total(), n.Attempts, n.DroppedRequests, n.Injected5xx, n.DroppedResponses, n.Delayed))
		c := res.CloudFaults
		t.AddRow("cloud faults injected", fmt.Sprintf("%d of %d orders (%d lost, %d dup, %d doa, %d stragglers)",
			c.Lost+c.Duplicated+c.DOA, c.Orders, c.Lost, c.Duplicated, c.DOA, c.Stragglers))
		t.AddRow("daemon killed mid-run", cert.Killed)
		t.AddRow("journal replays", cert.JournalReplays)
	}
	if ccert != nil {
		if ccert.Killed {
			t.AddRow("shard killed mid-run", ccert.Victim)
		} else {
			t.AddRow("shard killed mid-run", false)
		}
		t.AddRow("failovers", ccert.Failovers)
		t.AddRow("sessions handed off", ccert.HandoffSessions)
		t.AddRow("shards up at end", ccert.ShardsUp)
		t.AddRow("503s during recovery", ccert.Recovering503)
		if *rolling || *churn > 0 {
			t.AddRow("drains", ccert.Drains)
			t.AddRow("joins", ccert.Joins)
			t.AddRow("sessions migrated", ccert.Migrated)
		}
		if *rolling {
			t.AddRow("shards rolled", strings.Join(ccert.Restarted, ", "))
		}
		if *churn > 0 {
			t.AddRow("churn events applied", ccert.ChurnApplied)
		}
		if partSpec != nil {
			t.AddRow("partitions applied", ccert.PartitionsApplied)
			t.AddRow("partitions suspected", ccert.PartitionsSuspected)
			t.AddRow("partitions healed", ccert.PartitionsHealed)
			t.AddRow("503s while partitioned", ccert.Partitioned503)
			if ccert.Audit != nil {
				t.AddRow("journal audit", fmt.Sprintf("%d session(s), %d WAL(s), %d violation(s)",
					ccert.Audit.Sessions, ccert.Audit.WALs, len(ccert.Audit.Violations)))
			}
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for _, e := range res.Errors {
		fmt.Fprintln(os.Stderr, "wire-serve loadgen:", e)
	}
	if res.Failed > 0 || res.Mismatched > 0 {
		return fmt.Errorf("%d failed, %d mismatched of %d sessions", res.Failed, res.Mismatched, res.Sessions)
	}
	if *chaosMode {
		fmt.Println("chaos certificate PASSED: decision streams byte-identical to fault-free twins")
	}
	if ccert != nil {
		if *killShard {
			if !ccert.Killed {
				return fmt.Errorf("cluster certificate inconclusive: the run finished before the shard kill (raise -sessions or lower -kill-after)")
			}
			if ccert.Failovers == 0 {
				return fmt.Errorf("cluster certificate failed: shard %s was killed but no failover happened", ccert.Victim)
			}
		}
		if *rolling {
			if len(ccert.Restarted) != *shardCount || ccert.Drains < int64(*shardCount) || ccert.Joins < int64(*shardCount) {
				return fmt.Errorf("rolling-restart certificate failed: %d/%d shards rolled (%d drains, %d joins)",
					len(ccert.Restarted), *shardCount, ccert.Drains, ccert.Joins)
			}
			if ccert.ShardsUp != *shardCount {
				return fmt.Errorf("rolling-restart certificate failed: only %d/%d shards up at end", ccert.ShardsUp, *shardCount)
			}
		}
		if *churn > 0 && ccert.ShardsUp != *shardCount {
			return fmt.Errorf("churn certificate failed: only %d/%d shards up after healing", ccert.ShardsUp, *shardCount)
		}
		if partSpec != nil {
			want := len(partSpec.Kinds)
			if want == 0 {
				if want = partSpec.Events; want <= 0 {
					want = 3
				}
			}
			if ccert.PartitionsApplied != want {
				return fmt.Errorf("partition certificate inconclusive: %d of %d nemesis events applied (raise -sessions so the load outlasts the schedule)", ccert.PartitionsApplied, want)
			}
			if ccert.ShardsUp != *shardCount {
				return fmt.Errorf("partition certificate failed: only %d/%d shards up after healing", ccert.ShardsUp, *shardCount)
			}
			if ccert.Audit == nil {
				return fmt.Errorf("partition certificate failed: no journal audit ran")
			}
			if !ccert.Audit.Clean() {
				b, _ := json.MarshalIndent(ccert.Audit.Violations, "", "  ")
				fmt.Fprintln(os.Stderr, string(b))
				return fmt.Errorf("partition certificate failed: journal audit found %d violation(s)", len(ccert.Audit.Violations))
			}
			fmt.Println("partition certificate PASSED: zero dropped sessions, fleet healed, journal audit clean")
			return nil
		}
		fmt.Println("cluster certificate PASSED: zero dropped sessions, decision streams byte-identical to in-process twins")
	}
	return nil
}

// defaultChaosPlan is the fault mix `loadgen -chaos` injects: every fault
// class active, aggressive enough that a typical run exercises each one.
func defaultChaosPlan(seed int64, lag time.Duration) *chaos.Plan {
	return &chaos.Plan{
		Seed:              seed,
		DropRequest:       0.05,
		Err5xx:            0.05,
		DropResponse:      0.05,
		DelayProb:         0.20,
		MaxDelay:          20 * time.Millisecond,
		LostOrder:         0.05,
		DuplicateOrder:    0.05,
		DeadOnArrival:     0.05,
		StragglerProb:     0.10,
		MaxStragglerDelay: lag.Seconds(),
	}
}
