// Command wire-linear reproduces the §IV-A simulation study: the scaling
// algorithm's resource usage and completion time against the optimum on
// single-stage linear workflows (Figures 2 and 3).
//
// Usage:
//
//	wire-linear                  # both cases, paper sweep
//	wire-linear -case rgtu       # Figure 2 only (R > U)
//	wire-linear -case rleu -csv  # Figure 3 as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	which := flag.String("case", "both", "rgtu (Figure 2) | rleu (Figure 3) | both")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	quick := flag.Bool("quick", false, "reduced sweep for a fast look")
	flag.Parse()

	cfg := experiments.Defaults()
	if *quick {
		cfg = experiments.Quick()
	}

	var cases []experiments.LinearCase
	switch *which {
	case "rgtu":
		cases = []experiments.LinearCase{experiments.RGreaterU}
	case "rleu":
		cases = []experiments.LinearCase{experiments.RLessEqualU}
	case "both":
		cases = []experiments.LinearCase{experiments.RGreaterU, experiments.RLessEqualU}
	default:
		fmt.Fprintf(os.Stderr, "wire-linear: unknown case %q\n", *which)
		os.Exit(1)
	}

	for i, c := range cases {
		points, err := experiments.LinearSweep(cfg, c)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wire-linear:", err)
			os.Exit(1)
		}
		tbl := experiments.LinearReport(points)
		if err := render(tbl, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "wire-linear:", err)
			os.Exit(1)
		}
		if i < len(cases)-1 {
			fmt.Println()
		}
	}
}

func render(t *report.Table, csv bool) error {
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}
