// Command wire-trace executes one workflow under one policy and renders the
// run trace: a per-instance slot-occupancy Gantt chart, a pool-size
// sparkline, and (optionally) the raw event stream as CSV.
//
// Usage:
//
//	wire-trace -workflow pagerank-l -policy wire -unit 15m
//	wire-trace -workflow genome-s -policy pure-reactive -csv > events.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	workflow := flag.String("workflow", "pagerank-l", "catalogued run key (see wire-workflows)")
	policy := flag.String("policy", "wire", "wire | full-site | pure-reactive | reactive-conserving")
	unit := flag.Duration("unit", 15*time.Minute, "charging unit")
	lag := flag.Duration("lag", 3*time.Minute, "instantiation lag = MAPE interval")
	width := flag.Int("width", 100, "chart width in columns")
	seed := flag.Int64("seed", 1, "generation/interference seed")
	csvOut := flag.Bool("csv", false, "emit the raw event stream as CSV instead of charts")
	flag.Parse()

	run, ok := workloads.ByKey(*workflow)
	if !ok {
		fmt.Fprintf(os.Stderr, "wire-trace: unknown workflow %q; known keys: %v\n", *workflow, workloads.Keys())
		os.Exit(1)
	}
	wf := run.Generate(*seed)

	var ctrl sim.Controller
	switch *policy {
	case "wire":
		ctrl = core.New(core.Config{})
	case "full-site":
		ctrl = baseline.Static{}
	case "pure-reactive":
		ctrl = baseline.PureReactive{}
	case "reactive-conserving":
		ctrl = &baseline.ReactiveConserving{}
	default:
		fmt.Fprintf(os.Stderr, "wire-trace: unknown policy %q\n", *policy)
		os.Exit(1)
	}

	rec := trace.NewRecorder()
	cfg := sim.Config{
		Cloud: cloud.Config{
			SlotsPerInstance: 4,
			LagTime:          lag.Seconds(),
			ChargingUnit:     unit.Seconds(),
			MaxInstances:     12,
		},
		Seed:         *seed,
		Interference: dist.NewLognormalFromMean(1, 0.05),
		Observer:     rec.Hook(),
	}
	if *policy == "full-site" {
		cfg.InitialInstances = cfg.Cloud.MaxInstances
	}

	res, err := sim.Run(wf, ctrl, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wire-trace:", err)
		os.Exit(1)
	}

	if *csvOut {
		if err := rec.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wire-trace:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s under %s — makespan %s, %d charging units, utilization %.1f%%, %d restarts\n\n",
		res.Workflow, res.Policy, simtime.FormatDuration(res.Makespan),
		res.UnitsCharged, res.Utilization*100, res.Restarts)
	fmt.Print(trace.Gantt(res, *width))
	fmt.Printf("\npool |%s| peak %d\n", trace.PoolSparkline(res, *width), res.PeakPool)
	counts := rec.CountByKind()
	fmt.Printf("\nevents: %d starts, %d completions, %d kills, %d launches, %d terminations, %d decisions\n",
		counts[sim.EvTaskStart], counts[sim.EvTaskComplete], counts[sim.EvTaskKilled],
		counts[sim.EvInstanceLaunch], counts[sim.EvInstanceTerminated], counts[sim.EvDecision])
}
