package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
		ok   bool
	}{
		{nil, 0, false},
		{[]float64{5}, 5, true},
		{[]float64{1, 3}, 2, true},
		{[]float64{3, 1, 2}, 2, true},
		{[]float64{4, 1, 3, 2}, 2.5, true},
		{[]float64{10, 10, 10}, 10, true},
	}
	for _, c := range cases {
		got, ok := Median(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Median(%v) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMedianRobustToOutliers(t *testing.T) {
	// The paper prefers the median for skewed (Zipfian) populations; a
	// single huge straggler must not move it much.
	base := []float64{5, 5, 5, 5, 5, 5, 5, 5, 5}
	withStraggler := append(append([]float64(nil), base...), 1e6)
	m1, _ := Median(base)
	m2, _ := Median(withStraggler)
	if m2 > m1*1.2 {
		t.Fatalf("median moved from %v to %v on one straggler", m1, m2)
	}
}

func TestMeanStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, ok := Mean(vals)
	if !ok || m != 5 {
		t.Fatalf("Mean = %v,%v", m, ok)
	}
	s, ok := StdDev(vals)
	if !ok || math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if _, ok := Mean(nil); ok {
		t.Fatal("Mean(nil) should not be ok")
	}
	if _, ok := StdDev(nil); ok {
		t.Fatal("StdDev(nil) should not be ok")
	}
	mm, ss := MeanStd(vals)
	if mm != 5 || math.Abs(ss-2) > 1e-12 {
		t.Fatalf("MeanStd = %v,%v", mm, ss)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	} {
		got, ok := Quantile(vals, c.q)
		if !ok || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, ok := Quantile(nil, 0.5); ok {
		t.Fatal("Quantile(nil) should not be ok")
	}
}

func TestMinMax(t *testing.T) {
	vals := []float64{3, -1, 7, 2}
	if m, ok := Min(vals); !ok || m != -1 {
		t.Fatalf("Min = %v", m)
	}
	if m, ok := Max(vals); !ok || m != 7 {
		t.Fatalf("Max = %v", m)
	}
	if _, ok := Min(nil); ok {
		t.Fatal("Min(nil) ok")
	}
	if _, ok := Max(nil); ok {
		t.Fatal("Max(nil) ok")
	}
}

func TestMovingMedianWindow(t *testing.T) {
	m := NewMovingMedian(3)
	if _, ok := m.Median(); ok {
		t.Fatal("empty moving median reported a value")
	}
	for _, v := range []float64{1, 2, 3} {
		m.Push(v)
	}
	if got, _ := m.Median(); got != 2 {
		t.Fatalf("median = %v, want 2", got)
	}
	m.Push(100) // evicts 1; window = {2,3,100}
	if got, _ := m.Median(); got != 3 {
		t.Fatalf("median after eviction = %v, want 3", got)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestMovingMedianUnbounded(t *testing.T) {
	m := NewMovingMedian(0)
	for i := 1; i <= 101; i++ {
		m.Push(float64(i))
	}
	if m.Len() != 101 {
		t.Fatalf("unbounded window evicted: len=%d", m.Len())
	}
	if got, _ := m.Median(); got != 51 {
		t.Fatalf("median = %v, want 51", got)
	}
}

func TestMovingMedianNegativeWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMovingMedian(-1)
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {3, 0.8}, {9.99, 0.8}, {10, 1}, {11, 1},
	}
	for _, cs := range cases {
		if got := c.P(cs.x); math.Abs(got-cs.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", cs.x, got, cs.want)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if f := c.FractionWithin(2, 3); math.Abs(f-0.6) > 1e-12 {
		t.Fatalf("FractionWithin = %v, want 0.6", f)
	}
	if v, ok := c.At(0.5); !ok || v != 2 {
		t.Fatalf("At(0.5) = %v,%v", v, ok)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.P(5) != 0 || c.Len() != 0 || c.FractionWithin(0, 1) != 0 {
		t.Fatal("empty CDF misbehaves")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(vals)
		prev := -1.0
		for x := -30.0; x <= 30; x += 0.5 {
			p := c.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.5, 1.5, 1.6, 2.5, 99}, 3, 0, 3)
	want := []int{1, 2, 1}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if Histogram(nil, 0, 0, 1) != nil {
		t.Fatal("degenerate histogram should be nil")
	}
	if Histogram(nil, 3, 5, 1) != nil {
		t.Fatal("inverted range should be nil")
	}
	// Value exactly at max lands in the last bin.
	b := Histogram([]float64{3}, 3, 0, 3)
	if b[2] != 1 {
		t.Fatalf("max-edge value misplaced: %v", b)
	}
}

// Property: the median lies between min and max of the sample.
func TestMedianBoundedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		m, ok := Median(vals)
		if !ok {
			return false
		}
		sort.Float64s(vals)
		return m >= vals[0]-1e-9 && m <= vals[n-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
