package stats

import (
	"strings"
	"testing"
)

const benchSample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1-4 	     256	 4798627 ns/op	 3893045 B/op	   67524 allocs/op
BenchmarkFigure6 	   34101	   35371 ns/op	    7208 B/op	     139 allocs/op
PASS
ok  	repro	12.3s
pkg: repro/internal/service
BenchmarkLoadgenSessions 	       3	 783241319 ns/op	        30.64 sessions/sec	226179986 B/op	  507061 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	rs, env, err := ParseBenchOutput(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	if env["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" || env["goos"] != "linux" {
		t.Fatalf("environment not captured: %v", env)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	tb := rs[0]
	if tb.Name != "BenchmarkTable1" || tb.Package != "repro" || tb.Iterations != 256 ||
		tb.NsPerOp != 4798627 || tb.BytesPerOp != 3893045 || tb.AllocsPerOp != 67524 {
		t.Fatalf("Table1 parsed wrong: %+v", tb)
	}
	lg := rs[2]
	if lg.Package != "repro/internal/service" || lg.Metrics["sessions/sec"] != 30.64 {
		t.Fatalf("custom metric lost: %+v", lg)
	}
}

func TestCompareBench(t *testing.T) {
	base := []BenchResult{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "C", NsPerOp: 1000, AllocsPerOp: 100},
	}
	got := []BenchResult{
		{Name: "A", NsPerOp: 1100, AllocsPerOp: 110},  // within 15%
		{Name: "B", NsPerOp: 1200, AllocsPerOp: 1000}, // both regress
	}
	regs := CompareBench(base, got, []string{"A", "B", "C"}, 0.15)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions (B ns, B allocs, C missing), got %v", regs)
	}
	if regs[0].Name != "B" || regs[0].Metric != "ns/op" || regs[0].Ratio != 1.2 {
		t.Fatalf("unexpected first regression: %+v", regs[0])
	}
	if regs[1].Metric != "allocs/op" || regs[1].Ratio != 10 {
		t.Fatalf("unexpected second regression: %+v", regs[1])
	}
	if regs[2].Name != "C" || regs[2].Metric != "missing" {
		t.Fatalf("missing benchmark not flagged: %+v", regs[2])
	}
	// An untracked benchmark never gates.
	if regs := CompareBench(base, got, []string{"A"}, 0.15); len(regs) != 0 {
		t.Fatalf("A is within tolerance, got %v", regs)
	}
}
