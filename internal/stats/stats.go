// Package stats implements the summary statistics WIRE's predictor and the
// experiment harness rely on: medians (the paper's estimator of choice for
// skewed populations, §III-C), moving medians over MAPE intervals, basic
// moments, quantiles, and empirical CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of vals; for an even count it returns the mean
// of the two central order statistics. It returns ok=false for an empty
// input rather than inventing a value.
func Median(vals []float64) (m float64, ok bool) {
	n := len(vals)
	if n == 0 {
		return 0, false
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2], true
	}
	return (s[n/2-1] + s[n/2]) / 2, true
}

// Mean returns the arithmetic mean, or ok=false for empty input.
func Mean(vals []float64) (float64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals)), true
}

// StdDev returns the population standard deviation, or ok=false for empty
// input.
func StdDev(vals []float64) (float64, bool) {
	m, ok := Mean(vals)
	if !ok {
		return 0, false
	}
	ss := 0.0
	for _, v := range vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals))), true
}

// MeanStd returns both moments at once; convenient for report rows.
func MeanStd(vals []float64) (mean, std float64) {
	mean, _ = Mean(vals)
	std, _ = StdDev(vals)
	return mean, std
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics, or ok=false for empty input.
func Quantile(vals []float64, q float64) (float64, bool) {
	n := len(vals)
	if n == 0 {
		return 0, false
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], true
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, true
}

// Min returns the smallest value, or ok=false for empty input.
func Min(vals []float64) (float64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}

// Max returns the largest value, or ok=false for empty input.
func Max(vals []float64) (float64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m, true
}

// MovingMedian maintains the median of the most recent Window observations.
// WIRE feeds it one batch per MAPE interval so predictions track the
// "longer-term and more-consistent trends" (§III-C design goal 2) without
// being dominated by one noisy interval. A Window of zero keeps everything.
type MovingMedian struct {
	window int
	values []float64
}

// NewMovingMedian returns a moving median over the last window observations
// (0 = unbounded).
func NewMovingMedian(window int) *MovingMedian {
	if window < 0 {
		panic(fmt.Sprintf("stats: negative window %d", window))
	}
	return &MovingMedian{window: window}
}

// Push adds one observation, evicting the oldest when the window is full.
func (m *MovingMedian) Push(v float64) {
	m.values = append(m.values, v)
	if m.window > 0 && len(m.values) > m.window {
		// Shift rather than reslice so the backing array doesn't grow
		// without bound across thousands of intervals.
		copy(m.values, m.values[1:])
		m.values = m.values[:m.window]
	}
}

// Median returns the current median, ok=false when empty.
func (m *MovingMedian) Median() (float64, bool) { return Median(m.values) }

// Len returns the number of retained observations.
func (m *MovingMedian) Len() int { return len(m.values) }

// Reset discards all observations.
func (m *MovingMedian) Reset() { m.values = m.values[:0] }

// CDF is an empirical cumulative distribution built from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from vals (copied and sorted).
func NewCDF(vals []float64) *CDF {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns the empirical probability P[X ≤ x].
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	// Include all entries equal to x.
	for idx < len(c.sorted) && c.sorted[idx] <= x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Values returns the sorted sample; callers must not modify it.
func (c *CDF) Values() []float64 { return c.sorted }

// At returns the x value at the given cumulative probability (inverse CDF).
func (c *CDF) At(p float64) (float64, bool) {
	return Quantile(c.sorted, p)
}

// FractionWithin returns the fraction of the sample within [lo, hi].
func (c *CDF) FractionWithin(lo, hi float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	n := 0
	for _, v := range c.sorted {
		if v >= lo && v <= hi {
			n++
		}
	}
	return float64(n) / float64(len(c.sorted))
}

// Histogram buckets vals into n equal-width bins over [min, max] and is used
// by the report package to sketch distributions in text output.
func Histogram(vals []float64, n int, min, max float64) []int {
	if n <= 0 || max <= min {
		return nil
	}
	bins := make([]int, n)
	w := (max - min) / float64(n)
	for _, v := range vals {
		if v < min || v > max {
			continue
		}
		i := int((v - min) / w)
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}
