package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the benchmark regression gate's data layer: a parser for
// `go test -bench` text output and a comparer against a checked-in baseline
// document (BENCH_baseline.json / BENCH_<n>.json). It lives in stats because
// the gate is a measurement tool, not part of the scheduler.

// BenchResult is one benchmark's measurement, in the checked-in BENCH_*.json
// shape.
type BenchResult struct {
	Name       string `json:"name"`
	Package    string `json:"package"`
	Iterations int64  `json:"iterations"`
	// Metrics holds custom ReportMetric units (e.g. "sessions/sec").
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
}

// BenchDoc is the trajectory document: one BENCH_<n>.json is checked in per
// PR that moves a hot path, so the sequence of files records the perf
// history alongside the code.
type BenchDoc struct {
	Description string            `json:"description"`
	Date        string            `json:"date"`
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  []BenchResult     `json:"benchmarks"`
}

// LoadBenchDoc reads one BENCH_*.json.
func LoadBenchDoc(r io.Reader) (*BenchDoc, error) {
	var d BenchDoc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("stats: parse bench doc: %w", err)
	}
	return &d, nil
}

// ParseBenchOutput parses `go test -bench -benchmem` text output. It tracks
// pkg: headers, strips the -GOMAXPROCS suffix from names, and collects the
// standard ns/op, B/op, allocs/op units plus any custom ReportMetric units.
// Environment lines (goos/goarch/cpu) are returned separately.
func ParseBenchOutput(r io.Reader) ([]BenchResult, map[string]string, error) {
	var out []BenchResult
	env := map[string]string{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, h := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, h+": "); ok {
				if h == "pkg" {
					pkg = v
				} else {
					env[h] = v
				}
				line = ""
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a FAIL/ok line that happens to start with Benchmark
		}
		b := BenchResult{Name: name, Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("stats: bench line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = int64(val)
			case "allocs/op":
				b.AllocsPerOp = int64(val)
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("stats: read bench output: %w", err)
	}
	return out, env, nil
}

// Regression is one gated metric that got worse than the baseline allows.
type Regression struct {
	Name   string  // benchmark name
	Metric string  // "ns/op" or "allocs/op"
	Base   float64 // baseline value
	Got    float64 // measured value
	Ratio  float64 // Got/Base
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s regressed %.2fx (baseline %.0f, got %.0f)", r.Name, r.Metric, r.Ratio, r.Base, r.Got)
}

// CompareBench gates the named benchmarks: a result whose ns/op or
// allocs/op exceeds the baseline by more than tolerance (0.15 = +15%) is a
// regression. A gated name missing from either side is also flagged (as an
// allocs/op regression with Base/Got zero), so a silently deleted benchmark
// cannot sneak past the gate.
func CompareBench(base, got []BenchResult, names []string, tolerance float64) []Regression {
	idx := func(rs []BenchResult) map[string]BenchResult {
		m := make(map[string]BenchResult, len(rs))
		for _, r := range rs {
			m[r.Name] = r
		}
		return m
	}
	bm, gm := idx(base), idx(got)
	var regs []Regression
	for _, name := range names {
		b, okB := bm[name]
		g, okG := gm[name]
		if !okB || !okG {
			regs = append(regs, Regression{Name: name, Metric: "missing"})
			continue
		}
		if b.NsPerOp > 0 && g.NsPerOp > b.NsPerOp*(1+tolerance) {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Base: b.NsPerOp, Got: g.NsPerOp, Ratio: g.NsPerOp / b.NsPerOp})
		}
		if b.AllocsPerOp > 0 && float64(g.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tolerance) {
			regs = append(regs, Regression{Name: name, Metric: "allocs/op", Base: float64(b.AllocsPerOp), Got: float64(g.AllocsPerOp), Ratio: float64(g.AllocsPerOp) / float64(b.AllocsPerOp)})
		}
	}
	return regs
}
