package dax

import (
	"strings"
	"testing"
)

// FuzzRead asserts the importer never panics and that anything it accepts
// is a valid workflow.
func FuzzRead(f *testing.F) {
	f.Add(sampleDAX)
	f.Add(`<adag name="x"><job id="A" name="a" runtime="1"/></adag>`)
	f.Add(`<adag name="x"><job id="A" name="a"/><job id="B" name="b"/>` +
		`<child ref="B"><parent ref="A"/></child></adag>`)
	f.Add(`<adag`)
	f.Add(``)
	f.Add(`<adag name="x"><job id="A" name="a" runtime="1e308"/></adag>`)
	f.Fuzz(func(t *testing.T, doc string) {
		wf, err := Read(strings.NewReader(doc), Options{})
		if err != nil {
			return
		}
		if wf == nil {
			t.Fatal("nil workflow without error")
		}
		if err := wf.Validate(); err != nil {
			t.Fatalf("accepted invalid workflow: %v", err)
		}
	})
}
