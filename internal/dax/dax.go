// Package dax reads and writes Pegasus DAX (Directed Acyclic Graph in XML)
// workflow descriptions, the native interchange format of the Pegasus WMS
// the paper builds on. The supported subset is the one produced by the
// Pegasus synthetic workflow generators (Bharathi et al., used by the
// paper's reference [17]): <job> elements with a runtime attribute and
// <uses> file declarations, plus <child>/<parent> dependency records.
//
// Stages are reconstructed per the paper's definition — tasks sharing the
// same executable (the job's transformation name) form a stage (§I).
package dax

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/dag"
)

// adag mirrors the DAX 3.x document structure (decode side).
type adag struct {
	XMLName xml.Name   `xml:"adag"`
	Name    string     `xml:"name,attr"`
	Jobs    []daxJob   `xml:"job"`
	Childs  []daxChild `xml:"child"`
}

type daxJob struct {
	ID        string    `xml:"id,attr"`
	Name      string    `xml:"name,attr"`
	Namespace string    `xml:"namespace,attr"`
	Runtime   string    `xml:"runtime,attr"`
	Uses      []daxUses `xml:"uses"`
}

type daxUses struct {
	File string `xml:"file,attr"`
	Link string `xml:"link,attr"`
	Size string `xml:"size,attr"`
}

type daxChild struct {
	Ref     string      `xml:"ref,attr"`
	Parents []daxParent `xml:"parent"`
}

type daxParent struct {
	Ref string `xml:"ref,attr"`
}

// Options tune the DAX import.
type Options struct {
	// DefaultRuntime is used for jobs without a runtime attribute
	// (seconds). Zero means 1 s.
	DefaultRuntime float64
	// TransferPerMB converts staged input volume into data-transfer
	// seconds (the paper folds stage-in/out into slot occupancy). Zero
	// disables synthetic transfer times.
	TransferPerMB float64
}

func (o Options) withDefaults() Options {
	if o.DefaultRuntime <= 0 {
		o.DefaultRuntime = 1
	}
	return o
}

// Read parses a DAX document into a validated workflow.
func Read(r io.Reader, opts Options) (*dag.Workflow, error) {
	opts = opts.withDefaults()
	var doc adag
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dax: %w", err)
	}
	if len(doc.Jobs) == 0 {
		return nil, fmt.Errorf("dax: document %q has no jobs", doc.Name)
	}

	index := make(map[string]int, len(doc.Jobs))
	for i, j := range doc.Jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("dax: job %d has no id", i)
		}
		if _, dup := index[j.ID]; dup {
			return nil, fmt.Errorf("dax: duplicate job id %q", j.ID)
		}
		index[j.ID] = i
	}

	// Dependency lists per job, from the child/parent records.
	parents := make([][]int, len(doc.Jobs))
	for _, c := range doc.Childs {
		ci, ok := index[c.Ref]
		if !ok {
			return nil, fmt.Errorf("dax: child ref %q unknown", c.Ref)
		}
		for _, p := range c.Parents {
			pi, ok := index[p.Ref]
			if !ok {
				return nil, fmt.Errorf("dax: parent ref %q unknown", p.Ref)
			}
			if pi == ci {
				return nil, fmt.Errorf("dax: job %q depends on itself", c.Ref)
			}
			parents[ci] = append(parents[ci], pi)
		}
	}

	// Topological order (Kahn) — DAX files list jobs in arbitrary order,
	// while the builder requires dependencies first.
	order, err := topoOrder(parents)
	if err != nil {
		return nil, fmt.Errorf("dax: %q: %w", doc.Name, err)
	}

	// Stage per transformation name, in first-appearance (topo) order.
	b := dag.NewBuilder(doc.Name)
	stageOf := make(map[string]dag.StageID)
	taskOf := make(map[int]dag.TaskID, len(doc.Jobs))
	for _, ji := range order {
		j := doc.Jobs[ji]
		key := j.Namespace + "::" + j.Name
		st, ok := stageOf[key]
		if !ok {
			st = b.AddStage(j.Name)
			stageOf[key] = st
		}
		runtime := opts.DefaultRuntime
		if j.Runtime != "" {
			v, err := strconv.ParseFloat(j.Runtime, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("dax: job %q has bad runtime %q", j.ID, j.Runtime)
			}
			runtime = v
		}
		inMB, outMB := 0.0, 0.0
		for _, u := range j.Uses {
			mb, err := sizeMB(u.Size)
			if err != nil {
				return nil, fmt.Errorf("dax: job %q uses %q: %w", j.ID, u.File, err)
			}
			switch u.Link {
			case "input":
				inMB += mb
			case "output":
				outMB += mb
			}
		}
		deps := make([]dag.TaskID, 0, len(parents[ji]))
		for _, pi := range parents[ji] {
			deps = append(deps, taskOf[pi])
		}
		sort.Slice(deps, func(a, b int) bool { return deps[a] < deps[b] })
		id := b.AddTask(st, j.ID, runtime, inMB*opts.TransferPerMB, inMB, deps...)
		b.SetOutputSize(id, outMB)
		taskOf[ji] = id
	}
	return b.Build()
}

func sizeMB(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	bytes, err := strconv.ParseFloat(s, 64)
	if err != nil || bytes < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return bytes / (1 << 20), nil
}

func topoOrder(parents [][]int) ([]int, error) {
	n := len(parents)
	indeg := make([]int, n)
	children := make([][]int, n)
	for c, ps := range parents {
		indeg[c] = len(ps)
		for _, p := range ps {
			children[p] = append(children[p], c)
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dependency cycle (%d of %d jobs ordered)", len(order), n)
	}
	return order, nil
}

// Write serializes a workflow as a DAX 3.6 document. Ground-truth execution
// times become runtime attributes; input/output volumes become synthetic
// <uses> records so the document round-trips through Read.
func Write(w io.Writer, wf *dag.Workflow) error {
	type xuses struct {
		XMLName xml.Name `xml:"uses"`
		File    string   `xml:"file,attr"`
		Link    string   `xml:"link,attr"`
		Size    int64    `xml:"size,attr"`
	}
	type xjob struct {
		XMLName xml.Name `xml:"job"`
		ID      string   `xml:"id,attr"`
		Name    string   `xml:"name,attr"`
		Runtime string   `xml:"runtime,attr"`
		Uses    []xuses  `xml:"uses"`
	}
	type xparent struct {
		XMLName xml.Name `xml:"parent"`
		Ref     string   `xml:"ref,attr"`
	}
	type xchild struct {
		XMLName xml.Name `xml:"child"`
		Ref     string   `xml:"ref,attr"`
		Parents []xparent
	}
	type xadag struct {
		XMLName  xml.Name `xml:"adag"`
		Xmlns    string   `xml:"xmlns,attr"`
		Version  string   `xml:"version,attr"`
		Name     string   `xml:"name,attr"`
		JobCount int      `xml:"jobCount,attr"`
		Jobs     []xjob
		Childs   []xchild
	}

	jobID := func(id dag.TaskID) string { return fmt.Sprintf("ID%07d", int(id)+1) }
	doc := xadag{
		Xmlns:    "http://pegasus.isi.edu/schema/DAX",
		Version:  "3.6",
		Name:     wf.Name,
		JobCount: wf.NumTasks(),
	}
	for _, t := range wf.Tasks {
		j := xjob{
			ID:      jobID(t.ID),
			Name:    wf.Stage(t.Stage).Name,
			Runtime: strconv.FormatFloat(t.ExecTime, 'f', -1, 64),
		}
		if t.InputSize > 0 {
			j.Uses = append(j.Uses, xuses{
				File: fmt.Sprintf("%s.in", jobID(t.ID)),
				Link: "input",
				Size: int64(t.InputSize * (1 << 20)),
			})
		}
		if t.OutputSize > 0 {
			j.Uses = append(j.Uses, xuses{
				File: fmt.Sprintf("%s.out", jobID(t.ID)),
				Link: "output",
				Size: int64(t.OutputSize * (1 << 20)),
			})
		}
		doc.Jobs = append(doc.Jobs, j)
	}
	for _, t := range wf.Tasks {
		if len(t.Deps) == 0 {
			continue
		}
		c := xchild{Ref: jobID(t.ID)}
		for _, d := range t.Deps {
			c.Parents = append(c.Parents, xparent{Ref: jobID(d)})
		}
		doc.Childs = append(doc.Childs, c)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("dax: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}
