package dax

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/workloads"
)

const sampleDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.6" name="mini" jobCount="4">
  <job id="ID01" namespace="genome" name="split" runtime="5.5">
    <uses file="in.fastq" link="input" size="2097152"/>
    <uses file="a.part" link="output" size="1048576"/>
  </job>
  <job id="ID02" namespace="genome" name="map" runtime="30">
    <uses file="a.part" link="input" size="1048576"/>
  </job>
  <job id="ID03" namespace="genome" name="map" runtime="32">
    <uses file="a.part" link="input" size="1048576"/>
  </job>
  <job id="ID04" namespace="genome" name="merge">
  </job>
  <child ref="ID02"><parent ref="ID01"/></child>
  <child ref="ID03"><parent ref="ID01"/></child>
  <child ref="ID04"><parent ref="ID02"/><parent ref="ID03"/></child>
</adag>`

func TestReadSample(t *testing.T) {
	wf, err := Read(strings.NewReader(sampleDAX), Options{DefaultRuntime: 7})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Name != "mini" || wf.NumTasks() != 4 || wf.NumStages() != 3 {
		t.Fatalf("shape: %s %d/%d", wf.Name, wf.NumTasks(), wf.NumStages())
	}
	// Stage grouping by transformation name: split(1), map(2), merge(1).
	widths := wf.StageWidths()
	if widths[0] != 1 || widths[1] != 2 || widths[2] != 1 {
		t.Fatalf("widths = %v", widths)
	}
	split := wf.Task(0)
	if split.ExecTime != 5.5 {
		t.Fatalf("runtime = %v", split.ExecTime)
	}
	if math.Abs(split.InputSize-2) > 1e-9 { // 2 MiB input
		t.Fatalf("input size = %v MB", split.InputSize)
	}
	if math.Abs(split.OutputSize-1) > 1e-9 {
		t.Fatalf("output size = %v MB", split.OutputSize)
	}
	// Missing runtime uses the default.
	merge := wf.Task(3)
	if merge.ExecTime != 7 {
		t.Fatalf("default runtime = %v", merge.ExecTime)
	}
	if len(merge.Deps) != 2 {
		t.Fatalf("merge deps = %v", merge.Deps)
	}
	if err := wf.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadTransferSynthesis(t *testing.T) {
	wf, err := Read(strings.NewReader(sampleDAX), Options{TransferPerMB: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// split: 2 MB input x 0.5 s/MB = 1 s transfer.
	if got := wf.Task(0).TransferTime; math.Abs(got-1) > 1e-9 {
		t.Fatalf("transfer = %v", got)
	}
}

func TestReadJobsOutOfOrder(t *testing.T) {
	// Children listed before parents must still import (topo sort).
	doc := `<adag name="rev">
	  <job id="B" name="b" runtime="1"/>
	  <job id="A" name="a" runtime="1"/>
	  <child ref="B"><parent ref="A"/></child>
	</adag>`
	wf, err := Read(strings.NewReader(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wf.NumTasks() != 2 {
		t.Fatal("wrong task count")
	}
	// Task named A must precede B in the DAG.
	a := wf.Task(0)
	if a.Name != "A" || len(a.Succs) != 1 {
		t.Fatalf("topo order not applied: %+v", a)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       `<adag name="x"></adag>`,
		"dup id":      `<adag name="x"><job id="A" name="a"/><job id="A" name="a"/></adag>`,
		"no id":       `<adag name="x"><job name="a"/></adag>`,
		"bad child":   `<adag name="x"><job id="A" name="a"/><child ref="Z"><parent ref="A"/></child></adag>`,
		"bad parent":  `<adag name="x"><job id="A" name="a"/><child ref="A"><parent ref="Z"/></child></adag>`,
		"self dep":    `<adag name="x"><job id="A" name="a"/><child ref="A"><parent ref="A"/></child></adag>`,
		"bad runtime": `<adag name="x"><job id="A" name="a" runtime="fast"/></adag>`,
		"bad size":    `<adag name="x"><job id="A" name="a"><uses file="f" link="input" size="-3"/></job></adag>`,
		"cycle":       `<adag name="x"><job id="A" name="a"/><job id="B" name="b"/><child ref="A"><parent ref="B"/></child><child ref="B"><parent ref="A"/></child></adag>`,
		"not xml":     `{"nope": true}`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc), Options{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	run, _ := workloads.ByKey("tpch6-s")
	orig := run.Generate(3)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pegasus.isi.edu/schema/DAX") {
		t.Fatal("missing DAX namespace")
	}
	back, err := Read(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != orig.NumTasks() || back.NumStages() != orig.NumStages() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			back.NumTasks(), back.NumStages(), orig.NumTasks(), orig.NumStages())
	}
	for i := range orig.Tasks {
		o, b := orig.Tasks[i], back.Tasks[i]
		if math.Abs(o.ExecTime-b.ExecTime) > 1e-9 {
			t.Fatalf("task %d runtime %v vs %v", i, o.ExecTime, b.ExecTime)
		}
		if len(o.Deps) != len(b.Deps) {
			t.Fatalf("task %d deps changed", i)
		}
		// Sizes quantize to whole bytes on export.
		if math.Abs(o.InputSize-b.InputSize) > 1e-5 {
			t.Fatalf("task %d input %v vs %v", i, o.InputSize, b.InputSize)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripEpigenomics(t *testing.T) {
	run, _ := workloads.ByKey("genome-s")
	orig := run.Generate(1)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != 405 || back.NumStages() != 8 {
		t.Fatalf("shape = %d/%d", back.NumTasks(), back.NumStages())
	}
}
