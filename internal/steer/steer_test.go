package steer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cloud"
)

func TestResizePoolEmpty(t *testing.T) {
	if got := ResizePool(nil, 60, 1, 0.2); got != 0 {
		t.Fatalf("empty load -> %d, want 0", got)
	}
}

func TestResizePoolSingleShortTask(t *testing.T) {
	// One 5s task, u=60: never fills a unit, but p==0 forces one instance.
	if got := ResizePool([]float64{5}, 60, 1, 0.2); got != 1 {
		t.Fatalf("p = %d, want 1", got)
	}
}

func TestResizePoolExactUnits(t *testing.T) {
	// 6 tasks x 10s through one slot = 60s = exactly one unit.
	load := []float64{10, 10, 10, 10, 10, 10}
	if got := ResizePool(load, 60, 1, 0.2); got != 1 {
		t.Fatalf("p = %d, want 1", got)
	}
	// Twice the work: two instances.
	load2 := append(append([]float64{}, load...), load...)
	if got := ResizePool(load2, 60, 1, 0.2); got != 2 {
		t.Fatalf("p = %d, want 2", got)
	}
}

func TestResizePoolTailAbsorbedSingleSlot(t *testing.T) {
	// With l=1 the slot set always fills, so a drained queue leaves
	// nothing in slot_used and the tail is absorbed (Algorithm 3 line 28
	// triggers only on p==0 or a multi-slot leftover).
	if got := ResizePool([]float64{60, 20}, 60, 1, 0.2); got != 1 {
		t.Fatalf("p = %d, want 1 (tail folds into T_used)", got)
	}
	if got := ResizePool([]float64{60, 5}, 60, 1, 0.2); got != 1 {
		t.Fatalf("p = %d, want 1", got)
	}
}

func TestResizePoolTailRuleMultiSlot(t *testing.T) {
	// l=2: after one full unit {60,60}, a 30s leftover stays in
	// slot_used when the queue drains; 30 > 0.2*60 -> extra instance.
	if got := ResizePool([]float64{60, 60, 30}, 60, 2, 0.2); got != 2 {
		t.Fatalf("p = %d, want 2 (leftover 30 > 12)", got)
	}
	// A small leftover (<= 0.2u) is absorbed.
	if got := ResizePool([]float64{60, 60, 10}, 60, 2, 0.2); got != 1 {
		t.Fatalf("p = %d, want 1 (leftover 10 <= 12)", got)
	}
}

func TestResizePoolMultiSlot(t *testing.T) {
	// l=2: tasks run two at a time per instance. Four 60s tasks fill one
	// 2-slot instance for 120s = 2 units... Algorithm 3 counts an
	// instance as soon as accumulated min-occupancy reaches u, then
	// resets: {60,60} -> tmin 60 >= 60 -> p=1; {60,60} -> p=2.
	load := []float64{60, 60, 60, 60}
	if got := ResizePool(load, 60, 2, 0.2); got != 2 {
		t.Fatalf("p = %d, want 2", got)
	}
	// Eight 15s tasks on l=2: pairs of 15s accumulate; 4 pairs * 15 = 60
	// -> exactly one instance.
	load = []float64{15, 15, 15, 15, 15, 15, 15, 15}
	if got := ResizePool(load, 60, 2, 0.2); got != 1 {
		t.Fatalf("p = %d, want 1", got)
	}
}

func TestResizePoolZeroRemainders(t *testing.T) {
	// Tasks predicted about-to-complete contribute nothing but must not
	// hang the loop.
	load := []float64{0, 0, 0, 0, 30}
	got := ResizePool(load, 60, 1, 0.2)
	if got != 1 {
		t.Fatalf("p = %d, want 1", got)
	}
}

func TestResizePoolPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ResizePool([]float64{1}, 0, 1, 0.2)
}

// Property: p is within sensible bounds — at least 1 for non-empty load and
// at most ceil(total/u)+1 ... with multi-slot at most len(load).
func TestResizePoolBoundsProperty(t *testing.T) {
	f := func(seed int64, lRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := int(lRaw%4) + 1
		n := int(nRaw%60) + 1
		u := 60.0
		load := make([]float64, n)
		total := 0.0
		for i := range load {
			load[i] = rng.Float64() * 100
			total += load[i]
		}
		p := ResizePool(load, u, l, 0.2)
		if p < 1 {
			return false
		}
		// Upper bound: you can never keep more than total/u instances
		// busy for a full unit each; plus the tail instance.
		maxP := int(total/u) + 1
		return p <= maxP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: duplicating the load does not decrease p.
func TestResizePoolMonotoneInLoad(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		load := make([]float64, n)
		for i := range load {
			load[i] = rng.Float64() * 50
		}
		p1 := ResizePool(load, 60, 1, 0.2)
		double := append(append([]float64{}, load...), load...)
		p2 := ResizePool(double, 60, 1, 0.2)
		return p2 >= p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func planCfg() Config {
	return Config{ChargingUnit: 60, SlotsPerInstance: 1, Lag: 10, MaxInstances: 12}
}

func TestPlanGrow(t *testing.T) {
	// Load needing 3 instances, current pool of 1.
	load := []float64{60, 60, 60}
	cur := []Candidate{{ID: 0, TimeToNextCharge: 30, RestartCost: 50}}
	d := Plan(load, false, cur, planCfg())
	if d.Launch != 2 || len(d.Releases) != 0 {
		t.Fatalf("decision = %+v, want launch 2", d)
	}
}

func TestPlanGrowCappedBySite(t *testing.T) {
	load := make([]float64, 100)
	for i := range load {
		load[i] = 60
	}
	d := Plan(load, false, nil, planCfg())
	if d.Launch != 12 {
		t.Fatalf("launch = %d, want site cap 12", d.Launch)
	}
}

func TestPlanShrinkReleasesOnlyEligible(t *testing.T) {
	// Ideal pool 1; current 3. Only instance 2 satisfies both r<=lag and
	// c<=0.2u.
	load := []float64{60}
	cur := []Candidate{
		{ID: 0, TimeToNextCharge: 50, RestartCost: 0}, // r too far
		{ID: 1, TimeToNextCharge: 5, RestartCost: 30}, // restart too costly (>12)
		{ID: 2, TimeToNextCharge: 5, RestartCost: 3},  // eligible
	}
	d := Plan(load, false, cur, planCfg())
	if d.Launch != 0 || len(d.Releases) != 1 || d.Releases[0].Instance != 2 || !d.Releases[0].AtBoundary {
		t.Fatalf("decision = %+v", d)
	}
}

func TestPlanShrinkPrefersCheapRestarts(t *testing.T) {
	load := []float64{60} // p = 1, m = 3: release up to 2
	cur := []Candidate{
		{ID: 0, TimeToNextCharge: 5, RestartCost: 10},
		{ID: 1, TimeToNextCharge: 5, RestartCost: 1},
		{ID: 2, TimeToNextCharge: 5, RestartCost: 5},
	}
	d := Plan(load, false, cur, planCfg())
	if len(d.Releases) != 2 {
		t.Fatalf("releases = %+v", d.Releases)
	}
	if d.Releases[0].Instance != 1 || d.Releases[1].Instance != 2 {
		t.Fatalf("release order by restart cost wrong: %+v", d.Releases)
	}
}

func TestPlanHold(t *testing.T) {
	load := []float64{60, 60}
	cur := []Candidate{
		{ID: 0, TimeToNextCharge: 5, RestartCost: 0},
		{ID: 1, TimeToNextCharge: 5, RestartCost: 0},
	}
	d := Plan(load, false, cur, planCfg())
	if d.Launch != 0 || len(d.Releases) != 0 {
		t.Fatalf("decision = %+v, want hold", d)
	}
}

func TestPlanEmptyLoadRetainsMinimalPool(t *testing.T) {
	cur := []Candidate{
		{ID: 0, TimeToNextCharge: 5, RestartCost: 0},
		{ID: 1, TimeToNextCharge: 5, RestartCost: 0},
		{ID: 2, TimeToNextCharge: 50, RestartCost: 0},
	}
	d := Plan(nil, true, cur, planCfg())
	if d.Launch != 0 {
		t.Fatalf("launched on empty load: %+v", d)
	}
	if len(d.Releases) != 2 {
		t.Fatalf("releases = %+v, want shrink toward minimal pool of 1", d.Releases)
	}
	// With an empty pool and empty load, launch the minimal pool.
	d2 := Plan(nil, true, nil, planCfg())
	if d2.Launch != 1 {
		t.Fatalf("empty pool decision = %+v, want launch 1", d2)
	}
}

func TestPlanNeverReleasesBelowMinPool(t *testing.T) {
	load := []float64{1} // tiny load -> p = 1
	cur := []Candidate{
		{ID: 0, TimeToNextCharge: 1, RestartCost: 0},
		{ID: 1, TimeToNextCharge: 1, RestartCost: 0},
	}
	d := Plan(load, false, cur, planCfg())
	if len(d.Releases) != 1 {
		t.Fatalf("releases = %+v, want exactly 1 (keep min pool)", d.Releases)
	}
}

func TestFromSnapshotDefaults(t *testing.T) {
	cfg := Config{ChargingUnit: 60, SlotsPerInstance: 4}.withDefaults()
	if cfg.RestartFrac != 0.2 || cfg.MinPool != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	_ = cloud.InstanceID(0) // keep cloud import meaningful
}

func TestResizePoolTargetGrowsEarlier(t *testing.T) {
	// 2500s of work on 4-slot instances at u=1800: a full-unit target
	// packs it into one instance; a 0.6 target counts an instance every
	// 1080s of projected busy time.
	load := make([]float64, 1000)
	for i := range load {
		load[i] = 10
	}
	full := ResizePoolTarget(load, 1800, 4, 0.2, 1.0)
	relaxed := ResizePoolTarget(load, 1800, 4, 0.2, 0.6)
	if full != 1 {
		t.Fatalf("full-target p = %d, want 1", full)
	}
	if relaxed <= full {
		t.Fatalf("relaxed target did not grow pool: %d vs %d", relaxed, full)
	}
}

func TestResizePoolTargetClamped(t *testing.T) {
	load := []float64{60, 60}
	// Out-of-range targets fall back to 1.0.
	if got := ResizePoolTarget(load, 60, 1, 0.2, 0); got != ResizePool(load, 60, 1, 0.2) {
		t.Fatalf("target 0 not clamped: %d", got)
	}
	if got := ResizePoolTarget(load, 60, 1, 0.2, 1.5); got != ResizePool(load, 60, 1, 0.2) {
		t.Fatalf("target >1 not clamped: %d", got)
	}
}

func TestPlanUtilizationTarget(t *testing.T) {
	cfg := planCfg()
	cfg.SlotsPerInstance = 1
	load := []float64{40, 40, 40} // 120s total at u=60
	pFull := Plan(load, false, nil, cfg).Launch
	cfg.UtilizationTarget = 0.5
	pRelaxed := Plan(load, false, nil, cfg).Launch
	if pRelaxed <= pFull {
		t.Fatalf("relaxed target launch %d <= full %d", pRelaxed, pFull)
	}
}
