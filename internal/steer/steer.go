// Package steer implements WIRE's resource-steering policy: Algorithm 3
// (ResizePool — the ideal pool size for the upcoming load) and Algorithm 2
// (Plan — grow/shrink orders against the current pool), §III-D.
//
// The policy's contract: grow the pool only when the predicted load keeps
// every new instance busy for at least one charging unit, and release an
// instance only when its charging unit is about to expire (no recharge) and
// the sunk cost of restarting its tasks is below a threshold (0.2u by
// default, freely configurable).
package steer

import (
	"fmt"
	"sort"

	"repro/internal/cloud"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Config parameterizes the policy. The zero value is invalid; fill in the
// billing fields from the monitoring snapshot.
type Config struct {
	// ChargingUnit is u.
	ChargingUnit simtime.Duration
	// SlotsPerInstance is l.
	SlotsPerInstance int
	// Lag is t, the pool-change lag (equal to the MAPE interval).
	Lag simtime.Duration
	// RestartFrac is the release threshold on restart cost as a fraction
	// of u (paper: 0.2).
	RestartFrac float64
	// MaxInstances caps requested growth (0 = unbounded).
	MaxInstances int
	// MinPool is the floor kept while the workflow is incomplete
	// (paper: a minimal pool of 1).
	MinPool int
	// UtilizationTarget modulates the aggressiveness of the heuristic
	// (§IV-A: "it is possible to modulate the aggressiveness of the
	// heuristic to obtain a selected balance of cost and speed, e.g., by
	// modulating the target utilization level"). Algorithm 3 counts an
	// instance once the projected busy time reaches UtilizationTarget·u
	// instead of a full unit, so lower targets grow the pool earlier and
	// trade cost for speed. Zero means the paper's default of 1.0.
	UtilizationTarget float64
}

func (c Config) withDefaults() Config {
	if c.RestartFrac <= 0 {
		c.RestartFrac = 0.2
	}
	if c.MinPool <= 0 {
		c.MinPool = 1
	}
	if c.UtilizationTarget <= 0 || c.UtilizationTarget > 1 {
		c.UtilizationTarget = 1
	}
	return c
}

// FromSnapshot builds the standard configuration from a monitoring snapshot.
func FromSnapshot(snap *monitor.Snapshot) Config {
	return Config{
		ChargingUnit:     snap.ChargingUnit,
		SlotsPerInstance: snap.SlotsPerInstance,
		Lag:              snap.Interval,
		MaxInstances:     snap.MaxInstances,
	}.withDefaults()
}

// ResizePool implements Algorithm 3 with the paper's default utilization
// target of 1.0: see ResizePoolTarget.
func ResizePool(remaining []float64, u simtime.Duration, l int, restartFrac float64) int {
	return ResizePoolTarget(remaining, u, l, restartFrac, 1)
}

// ResizePoolTarget implements Algorithm 3. remaining holds the predicted
// minimum remaining occupancy of each upcoming task (Q_task), in dispatch
// order; u is the charging unit and l the slots per instance. It returns
// the number of instances p that the upcoming load can keep busy for at
// least target·u each, plus one instance for any significant tail
// (> restartFrac·u) — and never less than one for a non-empty load. A
// target below 1 is the §IV-A aggressiveness knob: the pool grows before
// each instance is provably busy for a whole unit.
func ResizePoolTarget(remaining []float64, u simtime.Duration, l int, restartFrac, target float64) int {
	if u <= 0 || l <= 0 {
		panic(fmt.Sprintf("steer: invalid u=%v l=%d", u, l))
	}
	if restartFrac <= 0 {
		restartFrac = 0.2
	}
	if target <= 0 || target > 1 {
		target = 1
	}
	if len(remaining) == 0 {
		return 0
	}
	q := remaining
	p := 0
	tUsed := 0.0
	goal := target * u
	var slots []float64
	for len(q) > 0 {
		for len(slots) < l && len(q) > 0 {
			slots = append(slots, q[0])
			q = q[1:]
		}
		if len(slots) < l {
			break // queue drained with a partial slot set
		}
		tMin := slots[0]
		for _, v := range slots[1:] {
			if v < tMin {
				tMin = v
			}
		}
		tUsed += tMin
		if tUsed >= goal {
			p++
			tUsed = 0
			slots = slots[:0]
			continue
		}
		// Retire the finished task(s) and advance the others.
		keep := slots[:0]
		for _, v := range slots {
			if v == tMin {
				continue
			}
			keep = append(keep, v-tMin)
		}
		slots = keep
	}
	maxLeft := 0.0
	for _, v := range slots {
		if v > maxLeft {
			maxLeft = v
		}
	}
	if p == 0 || maxLeft > restartFrac*u {
		p++
	}
	return p
}

// Throttle clamps a per-workflow controller's decision to a cross-run grant
// (internal/tenancy's arbiter): launches are cut to what the grant allows,
// and any pool surplus above the granted target is shed with boundary-timed
// releases — the same no-recharge release the single-run policy uses, so a
// throttled run never forfeits paid-for capacity early. target is the
// granted pool ceiling; maxLaunch additionally bounds new launches this
// interval (the arbiter derives it from the shared site cap).
func Throttle(dec sim.Decision, instances []monitor.InstanceRecord, target, maxLaunch int) sim.Decision {
	if target < 0 {
		target = 0
	}
	if maxLaunch < 0 {
		maxLaunch = 0
	}
	released := make(map[cloud.InstanceID]bool, len(dec.Releases))
	for _, r := range dec.Releases {
		released[r.Instance] = true
	}
	// Instances that survive the controller's own releases and are not
	// already draining are the run's effective pool after this decision.
	survivors := make([]monitor.InstanceRecord, 0, len(instances))
	for _, in := range instances {
		if in.Draining || released[in.ID] {
			continue
		}
		survivors = append(survivors, in)
	}
	held := len(survivors)

	allow := target - held
	if allow > maxLaunch {
		allow = maxLaunch
	}
	if allow < 0 {
		allow = 0
	}
	if dec.Launch > allow {
		dec.Launch = allow
	}

	excess := held + dec.Launch - target
	if excess <= 0 {
		return dec
	}
	// Shed the surplus gently: only idle instances are released (at their
	// charging boundary, so no paid capacity is forfeited). Busy instances
	// are never killed — a run above its grant simply loses launch rights
	// and drains as its tasks finish; the target is a ceiling on growth,
	// not a preemption order. Youngest (highest ID) first, keeping
	// long-lived instances with established charging origins.
	idle := survivors[:0]
	for _, in := range survivors {
		if len(in.Running) == 0 {
			idle = append(idle, in)
		}
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].ID > idle[j].ID })
	rel := append([]sim.ReleaseOrder(nil), dec.Releases...)
	for _, in := range idle {
		if excess <= 0 {
			break
		}
		rel = append(rel, sim.ReleaseOrder{Instance: in.ID, AtBoundary: true})
		excess--
	}
	dec.Releases = rel
	return dec
}

// Candidate describes one current instance for the shrink path of
// Algorithm 2.
type Candidate struct {
	ID cloud.InstanceID
	// TimeToNextCharge is r_j measured from the planning instant.
	TimeToNextCharge simtime.Duration
	// RestartCost is c_j, the maximum projected sunk cost among tasks on
	// the instance at the start of the next interval.
	RestartCost simtime.Duration
}

// Plan implements Algorithm 2: it compares the ideal pool size p for the
// upcoming load against the current pool size m and returns the launch count
// and boundary-timed releases. emptyLoad marks Q_task empty, in which case
// the policy retains a minimal pool (§III-D).
func Plan(remaining []float64, emptyLoad bool, current []Candidate, cfg Config) sim.Decision {
	cfg = cfg.withDefaults()
	var p int
	if emptyLoad {
		p = cfg.MinPool
	} else {
		p = ResizePoolTarget(remaining, cfg.ChargingUnit, cfg.SlotsPerInstance, cfg.RestartFrac, cfg.UtilizationTarget)
		if p < cfg.MinPool {
			p = cfg.MinPool
		}
	}
	return PlanTo(p, current, cfg)
}

// PlanTo runs Algorithm 2's adjust step against an externally chosen ideal
// pool size p: grow by launching, or shrink by releasing only instances
// whose charging unit expires within the lag and whose restart cost is
// below the threshold, cheapest restarts first. Alternative controllers
// (e.g. the deadline policy) reuse it with their own sizing rule.
func PlanTo(p int, current []Candidate, cfg Config) sim.Decision {
	cfg = cfg.withDefaults()
	if p < cfg.MinPool {
		p = cfg.MinPool
	}
	if cfg.MaxInstances > 0 && p > cfg.MaxInstances {
		p = cfg.MaxInstances
	}

	m := len(current)
	switch {
	case p > m:
		return sim.Decision{Launch: p - m}
	case p < m:
		// Release only instances whose charging unit expires before the
		// next interval starts and whose restart cost is tolerable;
		// prefer the cheapest restarts (the paper selects instances to
		// minimize restart costs).
		eligible := make([]Candidate, 0, m)
		for _, c := range current {
			if c.TimeToNextCharge <= cfg.Lag+simtime.Eps && c.RestartCost <= cfg.RestartFrac*cfg.ChargingUnit+simtime.Eps {
				eligible = append(eligible, c)
			}
		}
		sort.Slice(eligible, func(i, j int) bool {
			if eligible[i].RestartCost != eligible[j].RestartCost {
				return eligible[i].RestartCost < eligible[j].RestartCost
			}
			if eligible[i].TimeToNextCharge != eligible[j].TimeToNextCharge {
				return eligible[i].TimeToNextCharge < eligible[j].TimeToNextCharge
			}
			return eligible[i].ID < eligible[j].ID
		})
		var rel []sim.ReleaseOrder
		for _, c := range eligible {
			if m-len(rel) <= p {
				break
			}
			rel = append(rel, sim.ReleaseOrder{Instance: c.ID, AtBoundary: true})
		}
		return sim.Decision{Releases: rel}
	default:
		return sim.Decision{}
	}
}
