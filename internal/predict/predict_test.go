package predict

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/monitor"
)

// stageWF builds a workflow with one stage of n tasks having the given
// input sizes (ground-truth times are irrelevant to the predictor).
func stageWF(sizes ...float64) *dag.Workflow {
	b := dag.NewBuilder("stage")
	st := b.AddStage("s")
	for _, sz := range sizes {
		b.AddTask(st, "t", 1, 0, sz)
	}
	return b.MustBuild()
}

// snapFor assembles a snapshot with the given task records (records default
// to Blocked with the task's input size).
func snapFor(wf *dag.Workflow, now float64, recs map[dag.TaskID]monitor.TaskRecord) *monitor.Snapshot {
	snap := &monitor.Snapshot{
		Now:      now,
		Interval: 10,
		Workflow: wf,
		Tasks:    make([]monitor.TaskRecord, wf.NumTasks()),
	}
	for _, t := range wf.Tasks {
		rec := monitor.TaskRecord{ID: t.ID, Stage: t.Stage, State: monitor.Blocked, InputSize: t.InputSize}
		if r, ok := recs[t.ID]; ok {
			r.ID = t.ID
			r.Stage = t.Stage
			if r.InputSize == 0 {
				r.InputSize = t.InputSize
			}
			rec = r
		}
		snap.Tasks[t.ID] = rec
	}
	return snap
}

func TestPolicy1NothingStarted(t *testing.T) {
	wf := stageWF(1, 1, 1)
	p := New(Config{})
	snap := snapFor(wf, 0, nil)
	p.Update(snap)
	est, pol := p.EstimateExec(snap, 0)
	if est != 0 || pol != PolicyZero {
		t.Fatalf("est=%v pol=%v, want 0/p1", est, pol)
	}
}

func TestPolicy2RunningMedian(t *testing.T) {
	wf := stageWF(1, 1, 1, 1)
	p := New(Config{})
	snap := snapFor(wf, 100, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Running, StartedAt: 90, Elapsed: 10},
		1: {State: monitor.Running, StartedAt: 70, Elapsed: 30},
		2: {State: monitor.Ready, ReadyAt: 0},
	})
	p.Update(snap)
	est, pol := p.EstimateExec(snap, 2)
	if pol != PolicyRunningMedian || est != 20 {
		t.Fatalf("est=%v pol=%v, want 20/p2", est, pol)
	}
	// Blocked peers get the same treatment while nothing has completed.
	est3, pol3 := p.EstimateExec(snap, 3)
	if pol3 != PolicyRunningMedian || est3 != 20 {
		t.Fatalf("blocked est=%v pol=%v", est3, pol3)
	}
}

func TestPolicy3CompletedMedianForBlocked(t *testing.T) {
	wf := stageWF(1, 1, 1, 1)
	p := New(Config{})
	snap := snapFor(wf, 100, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10, TransferObserved: true},
		1: {State: monitor.Completed, ExecTime: 30, TransferObserved: true},
		2: {State: monitor.Completed, ExecTime: 20, TransferObserved: true},
		// task 3 stays Blocked
	})
	p.Update(snap)
	est, pol := p.EstimateExec(snap, 3)
	if pol != PolicyCompletedMedian || est != 20 {
		t.Fatalf("est=%v pol=%v, want 20/p3", est, pol)
	}
}

func TestPolicy4GroupMedian(t *testing.T) {
	// Two size groups among completions: size 100 -> {10,12,14};
	// size 200 -> {40}. A ready task of size 100 uses the group median.
	wf := stageWF(100, 100, 100, 200, 100)
	p := New(Config{})
	snap := snapFor(wf, 50, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10},
		1: {State: monitor.Completed, ExecTime: 12},
		2: {State: monitor.Completed, ExecTime: 14},
		3: {State: monitor.Completed, ExecTime: 40},
		4: {State: monitor.Ready},
	})
	p.Update(snap)
	est, pol := p.EstimateExec(snap, 4)
	if pol != PolicyGroupMedian || est != 12 {
		t.Fatalf("est=%v pol=%v, want 12/p4", est, pol)
	}
}

func TestPolicy4ToleratesNearEqualSizes(t *testing.T) {
	wf := stageWF(100, 100.5, 100.2)
	p := New(Config{})
	snap := snapFor(wf, 50, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10},
		1: {State: monitor.Completed, ExecTime: 20},
		2: {State: monitor.Ready},
	})
	p.Update(snap)
	est, pol := p.EstimateExec(snap, 2)
	if pol != PolicyGroupMedian || est != 15 {
		t.Fatalf("est=%v pol=%v, want 15/p4 (sizes within 1%%)", est, pol)
	}
}

func TestPolicy5OGDForNewSize(t *testing.T) {
	// Completions at sizes 100 and 200; the ready task has size 400 —
	// outside tolerance of both groups — so Policy 5 applies.
	wf := stageWF(100, 200, 400)
	p := New(Config{})
	snap := snapFor(wf, 50, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10},
		1: {State: monitor.Completed, ExecTime: 20},
		2: {State: monitor.Ready},
	})
	p.Update(snap)
	_, pol := p.EstimateExec(snap, 2)
	if pol != PolicyOGD {
		t.Fatalf("pol=%v, want p5", pol)
	}
}

func TestOGDConvergesToLinearLaw(t *testing.T) {
	// Ground truth t = 0.1*d. Completions at d=100 (t=10) and d=200
	// (t=20). With one gradient pass per update, repeated updates must
	// drive the prediction for d=150 toward 15.
	wf := stageWF(100, 200, 150)
	p := New(Config{})
	recs := map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10},
		1: {State: monitor.Completed, ExecTime: 20},
		2: {State: monitor.Ready},
	}
	var est float64
	for i := 0; i < 400; i++ {
		snap := snapFor(wf, float64(i*10), recs)
		p.Update(snap)
		est, _ = p.EstimateExec(snap, 2)
	}
	if math.Abs(est-15) > 1.5 {
		t.Fatalf("OGD estimate for d=150 is %v, want ~15", est)
	}
	a0, a1, scale, ok := p.Coefficients(0)
	if !ok || scale != 200 {
		t.Fatalf("coefficients a0=%v a1=%v scale=%v ok=%v", a0, a1, scale, ok)
	}
}

func TestOGDMoreEpochsConvergeFaster(t *testing.T) {
	wf := stageWF(100, 200, 150)
	recs := map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10},
		1: {State: monitor.Completed, ExecTime: 20},
		2: {State: monitor.Ready},
	}
	errAfter := func(epochs, updates int) float64 {
		p := New(Config{EpochsPerUpdate: epochs})
		var est float64
		for i := 0; i < updates; i++ {
			snap := snapFor(wf, float64(i*10), recs)
			p.Update(snap)
			est, _ = p.EstimateExec(snap, 2)
		}
		return math.Abs(est - 15)
	}
	if errAfter(8, 20) >= errAfter(1, 20) {
		t.Fatal("extra epochs did not speed convergence")
	}
}

func TestOGDPredictionNonNegative(t *testing.T) {
	wf := stageWF(100, 200, 1)
	p := New(Config{})
	recs := map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10},
		1: {State: monitor.Completed, ExecTime: 20},
		2: {State: monitor.Ready},
	}
	for i := 0; i < 100; i++ {
		snap := snapFor(wf, float64(i*10), recs)
		p.Update(snap)
		est, _ := p.EstimateExec(snap, 2)
		if est < 0 {
			t.Fatalf("negative estimate %v", est)
		}
	}
}

func TestTransferEstimate(t *testing.T) {
	wf := stageWF(1, 1)
	p := New(Config{TransferWindow: 3})
	if p.EstimateTransfer() != 0 {
		t.Fatal("transfer estimate before any observation should be 0")
	}
	snap := snapFor(wf, 10, nil)
	snap.RecentTransfers = []float64{4, 6, 8}
	p.Update(snap)
	if got := p.EstimateTransfer(); got != 6 {
		t.Fatalf("transfer estimate = %v, want 6", got)
	}
	// Next interval with no observations: estimate persists.
	snap2 := snapFor(wf, 20, nil)
	p.Update(snap2)
	if got := p.EstimateTransfer(); got != 6 {
		t.Fatalf("estimate lost without new data: %v", got)
	}
	// Moving median across intervals smooths a spike.
	snap3 := snapFor(wf, 30, nil)
	snap3.RecentTransfers = []float64{100}
	p.Update(snap3)
	if got := p.EstimateTransfer(); got != 53 {
		t.Fatalf("moving median = %v, want 53 (median of {6,100})", got)
	}
}

func TestEstimateOccupancyAddsTransfer(t *testing.T) {
	wf := stageWF(1, 1)
	p := New(Config{})
	snap := snapFor(wf, 10, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 30},
		1: {State: monitor.Ready},
	})
	snap.RecentTransfers = []float64{5}
	p.Update(snap)
	occ, pol := p.EstimateOccupancy(snap, 1)
	if occ != 35 || pol != PolicyGroupMedian {
		t.Fatalf("occ=%v pol=%v", occ, pol)
	}
}

func TestRemainingOccupancy(t *testing.T) {
	wf := stageWF(1, 1, 1)
	p := New(Config{})
	snap := snapFor(wf, 100, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 50},
		1: {State: monitor.Running, Elapsed: 20},
		2: {State: monitor.Ready},
	})
	p.Update(snap)
	// Ready task: full estimate.
	rem, _ := p.RemainingOccupancy(snap, 2, 100)
	if rem != 50 {
		t.Fatalf("ready remaining = %v, want 50", rem)
	}
	// Running task at snapshot time: 50 - 20 = 30.
	rem, _ = p.RemainingOccupancy(snap, 1, 100)
	if rem != 30 {
		t.Fatalf("running remaining = %v, want 30", rem)
	}
	// Projected 10s into the interval: 20.
	rem, _ = p.RemainingOccupancy(snap, 1, 110)
	if rem != 20 {
		t.Fatalf("projected remaining = %v, want 20", rem)
	}
	// A straggler running past its estimate floors at zero.
	rem, _ = p.RemainingOccupancy(snap, 1, 1000)
	if rem != 0 {
		t.Fatalf("overdue remaining = %v, want 0", rem)
	}
}

func TestCompletedTaskReturnsObserved(t *testing.T) {
	wf := stageWF(1)
	p := New(Config{})
	snap := snapFor(wf, 10, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 42},
	})
	p.Update(snap)
	est, pol := p.EstimateExec(snap, 0)
	if est != 42 || pol != PolicyNone {
		t.Fatalf("est=%v pol=%v", est, pol)
	}
}

func TestPredictorIgnoresGroundTruth(t *testing.T) {
	// Mutating the workflow's ground-truth times after the snapshot must
	// not change estimates: the predictor may only read observations.
	wf := stageWF(100, 100)
	p := New(Config{})
	snap := snapFor(wf, 10, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Completed, ExecTime: 10},
		1: {State: monitor.Ready},
	})
	p.Update(snap)
	before, _ := p.EstimateExec(snap, 1)
	wf.Tasks[1].ExecTime = 99999
	wf.Tasks[0].ExecTime = 99999
	after, _ := p.EstimateExec(snap, 1)
	if before != after {
		t.Fatalf("prediction depends on ground truth: %v vs %v", before, after)
	}
}

func TestEstimateWithoutUpdate(t *testing.T) {
	wf := stageWF(1)
	p := New(Config{})
	snap := snapFor(wf, 0, nil)
	est, pol := p.EstimateExec(snap, 0)
	if est != 0 || pol != PolicyZero {
		t.Fatalf("fresh predictor: est=%v pol=%v", est, pol)
	}
}

func TestPolicyStrings(t *testing.T) {
	for pol, want := range map[Policy]string{
		PolicyNone:            "none",
		PolicyZero:            "p1-zero",
		PolicyRunningMedian:   "p2-running-median",
		PolicyCompletedMedian: "p3-completed-median",
		PolicyGroupMedian:     "p4-group-median",
		PolicyOGD:             "p5-ogd",
	} {
		if pol.String() != want {
			t.Fatalf("Policy(%d).String() = %q", int(pol), pol.String())
		}
	}
	if Policy(42).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestUpdatesCounter(t *testing.T) {
	wf := stageWF(1)
	p := New(Config{})
	for i := 0; i < 3; i++ {
		p.Update(snapFor(wf, float64(i), nil))
	}
	if p.Updates() != 3 {
		t.Fatalf("Updates = %d", p.Updates())
	}
}

func TestPriorsWarmStartUnstartedStage(t *testing.T) {
	wf := stageWF(1, 1, 1)
	p := New(Config{Priors: map[dag.StageID]float64{0: 42}})
	snap := snapFor(wf, 0, nil)
	p.Update(snap)
	est, pol := p.EstimateExec(snap, 0)
	if pol != PolicyPrior || est != 42 {
		t.Fatalf("est=%v pol=%v, want 42/p6", est, pol)
	}
	// The first online observation overrides the prior.
	snap2 := snapFor(wf, 10, map[dag.TaskID]monitor.TaskRecord{
		0: {State: monitor.Running, Elapsed: 7},
	})
	p.Update(snap2)
	est2, pol2 := p.EstimateExec(snap2, 1)
	if pol2 != PolicyRunningMedian || est2 != 7 {
		t.Fatalf("online data did not override prior: est=%v pol=%v", est2, pol2)
	}
}

func TestPriorsBeforeFirstUpdate(t *testing.T) {
	wf := stageWF(1)
	p := New(Config{Priors: map[dag.StageID]float64{0: 9}})
	snap := snapFor(wf, 0, nil)
	est, pol := p.EstimateExec(snap, 0) // no Update yet
	if pol != PolicyPrior || est != 9 {
		t.Fatalf("est=%v pol=%v", est, pol)
	}
}

func TestZeroOrMissingPriorFallsBack(t *testing.T) {
	wf := stageWF(1, 1)
	p := New(Config{Priors: map[dag.StageID]float64{0: 0}})
	snap := snapFor(wf, 0, nil)
	p.Update(snap)
	if _, pol := p.EstimateExec(snap, 0); pol != PolicyZero {
		t.Fatalf("zero prior should fall back to policy 1, got %v", pol)
	}
}
