// Package predict implements WIRE's task predictor (§III-B1, §III-C): the
// five online prediction policies plus the per-stage online-gradient-descent
// model of Algorithm 1.
//
// The predictor consumes one monitoring snapshot per MAPE iteration
// (Update) and then answers occupancy estimates for incomplete/unstarted
// tasks (EstimateExec, RemainingOccupancy). All estimates derive exclusively
// from observed data in the snapshots — never from the workflow's
// ground-truth fields.
package predict

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/stats"
)

// Policy identifies which of the paper's five heuristics produced an
// estimate (§III-C).
type Policy int

// The five online prediction policies.
const (
	// PolicyNone: the task is already complete; no prediction needed.
	PolicyNone Policy = 0
	// PolicyZero (1): no task at the stage has started; estimate 0.
	PolicyZero Policy = 1
	// PolicyRunningMedian (2): running tasks only; presume they are about
	// to complete and estimate unstarted peers at the median run time.
	PolicyRunningMedian Policy = 2
	// PolicyCompletedMedian (3): completed tasks exist but the task's
	// input is not yet available; use the median completed time.
	PolicyCompletedMedian Policy = 3
	// PolicyGroupMedian (4): the task is ready and its input size matches
	// a group of completed peers; use that group's median.
	PolicyGroupMedian Policy = 4
	// PolicyOGD (5): the task is ready with an input size unseen among
	// completed peers; use the stage's online-gradient-descent model.
	PolicyOGD Policy = 5
	// PolicyPrior (extension): no runtime data exists for the stage yet,
	// but a warm-start prior from a previous run is configured. Replaces
	// Policy 1's zero estimate for recurrent workflows; online data
	// overrides it as soon as any peer starts.
	PolicyPrior Policy = 6
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyZero:
		return "p1-zero"
	case PolicyRunningMedian:
		return "p2-running-median"
	case PolicyCompletedMedian:
		return "p3-completed-median"
	case PolicyGroupMedian:
		return "p4-group-median"
	case PolicyOGD:
		return "p5-ogd"
	case PolicyPrior:
		return "p6-prior"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config tunes the predictor. The zero value gives the paper's settings.
type Config struct {
	// LearningRate for Algorithm 1 (paper: 0.1).
	LearningRate float64
	// EpochsPerUpdate is the number of full-batch gradient passes per
	// MAPE iteration (paper: 1).
	EpochsPerUpdate int
	// SizeTolerance is the relative tolerance within which two input
	// sizes count as "equivalent" for Policy 4 grouping (default 1%).
	SizeTolerance float64
	// TransferWindow is the moving-median window, in MAPE intervals,
	// smoothing the data-transfer estimate (default 5).
	TransferWindow int
	// Priors optionally warm-starts stages of recurrent workflows with a
	// typical execution time from a previous run (seconds per stage).
	// A prior is used only while its stage has no started tasks at all
	// (it replaces Policy 1's zero estimate); the first online
	// observation takes over. Nil disables warm starting.
	Priors map[dag.StageID]float64
}

func (c Config) withDefaults() Config {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.EpochsPerUpdate <= 0 {
		c.EpochsPerUpdate = 1
	}
	if c.SizeTolerance <= 0 {
		c.SizeTolerance = 0.01
	}
	if c.TransferWindow <= 0 {
		c.TransferWindow = 5
	}
	return c
}

// sizeGroup is a set of completed peer tasks sharing an input size.
type sizeGroup struct {
	size   float64
	execs  []float64
	median float64
}

// ogdModel is the per-stage linear model of Algorithm 1: t = a0 + a1·d',
// where d' is the input size normalized by the largest size seen at the
// stage. Normalization keeps the fixed 0.1 learning rate stable for
// megabyte-scale features; it is an implementation detail invisible to
// callers (predictions are in seconds against raw sizes).
type ogdModel struct {
	a0, a1 float64
	scale  float64
}

func (m *ogdModel) predict(d float64) float64 {
	if m.scale <= 0 {
		return m.a0
	}
	v := m.a0 + m.a1*(d/m.scale)
	if v < 0 {
		return 0
	}
	return v
}

// step runs one full-batch gradient pass (Algorithm 1 lines 5–12) over the
// training set of (size, median exec) points.
func (m *ogdModel) step(points []sizeGroup, lr float64) {
	n := float64(len(points))
	if n == 0 {
		return
	}
	g0, g1 := 0.0, 0.0
	for _, p := range points {
		d := p.size / m.scale
		err := p.median - (m.a1*d + m.a0)
		g0 += -2 / n * err
		g1 += -2 / n * d * err
	}
	m.a0 -= lr * g0
	m.a1 -= lr * g1
}

// stageState caches the per-stage aggregates recomputed at every Update.
type stageState struct {
	runningElapsed []float64
	completedExecs []float64
	groups         []sizeGroup
	model          ogdModel

	runMedian      float64
	completeMedian float64
	hasRunning     bool
	hasCompleted   bool

	// aggEpoch advances whenever any aggregate feeding estimates other than
	// the OGD model changed in an Update (presence flags, medians, or the
	// ordered size-group list); modelEpoch advances whenever the model's
	// coefficients moved. Together with the predictor's transfer epoch they
	// are the cache-invalidation keys behind EstimateEpochs.
	aggEpoch   uint64
	modelEpoch uint64
	// prevGroups is the (size, median) fingerprint of groups after the
	// previous Update, in group order — order matters because Policy 4
	// matches the first equivalent group.
	prevGroups []groupKey
}

// groupKey is the estimate-relevant fingerprint of one size group.
type groupKey struct {
	size   float64
	median float64
}

// Predictor holds the online models for one workflow run.
type Predictor struct {
	cfg    Config
	stages map[dag.StageID]*stageState

	transferMed  *stats.MovingMedian
	lastTransfer float64
	hasTransfer  bool
	// transferEpoch advances whenever (lastTransfer, hasTransfer) changes;
	// it is folded into every stage's aggregate epoch since EstimateOccupancy
	// adds the transfer estimate to every answer.
	transferEpoch uint64
	updates       int
}

// New returns a predictor with the given configuration.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	return &Predictor{
		cfg:         cfg,
		stages:      make(map[dag.StageID]*stageState),
		transferMed: stats.NewMovingMedian(cfg.TransferWindow),
	}
}

// Updates returns the number of snapshots consumed.
func (p *Predictor) Updates() int { return p.updates }

// Update ingests one monitoring snapshot: refreshes the per-stage
// aggregates and advances every stage's OGD model one step (Algorithm 1).
// Call exactly once per MAPE iteration, before asking for estimates.
func (p *Predictor) Update(snap *monitor.Snapshot) {
	p.updates++

	// Transfer estimate: median of the transfers observed in the last
	// interval (the memoryless model of §III-B1), smoothed by a moving
	// median across intervals.
	if med, ok := stats.Median(snap.RecentTransfers); ok {
		p.transferMed.Push(med)
		if m, ok := p.transferMed.Median(); ok {
			if m != p.lastTransfer || !p.hasTransfer {
				p.transferEpoch++
			}
			p.lastTransfer = m
			p.hasTransfer = true
		}
	}

	for _, st := range snap.Workflow.Stages {
		ss := p.stages[st.ID]
		if ss == nil {
			ss = &stageState{}
			p.stages[st.ID] = ss
		}
		prevHasRunning, prevHasCompleted := ss.hasRunning, ss.hasCompleted
		prevRunMedian, prevCompleteMedian := ss.runMedian, ss.completeMedian
		prevModel := ss.model
		ss.runningElapsed = ss.runningElapsed[:0]
		ss.completedExecs = ss.completedExecs[:0]
		ss.groups = ss.groups[:0]

		maxSize := ss.model.scale
		for _, tid := range st.Tasks {
			rec := snap.Task(tid)
			switch rec.State {
			case monitor.Running:
				ss.runningElapsed = append(ss.runningElapsed, rec.Elapsed)
			case monitor.Completed:
				ss.completedExecs = append(ss.completedExecs, rec.ExecTime)
				p.addToGroup(ss, rec.InputSize, rec.ExecTime)
			}
			if rec.InputSize > maxSize {
				maxSize = rec.InputSize
			}
		}
		ss.hasRunning = len(ss.runningElapsed) > 0
		ss.hasCompleted = len(ss.completedExecs) > 0
		ss.runMedian, _ = stats.Median(ss.runningElapsed)
		ss.completeMedian, _ = stats.Median(ss.completedExecs)

		for i := range ss.groups {
			ss.groups[i].median, _ = stats.Median(ss.groups[i].execs)
		}

		if ss.hasCompleted {
			if maxSize <= 0 {
				maxSize = 1
			}
			ss.model.scale = maxSize
			for e := 0; e < p.cfg.EpochsPerUpdate; e++ {
				ss.model.step(ss.groups, p.cfg.LearningRate)
			}
		}

		// Advance the invalidation epochs only when an estimate input
		// actually changed, so downstream caches (lookahead.Projector) stay
		// warm across the long stretches where a stage's aggregates are
		// stable between MAPE intervals.
		aggChanged := ss.hasRunning != prevHasRunning ||
			ss.hasCompleted != prevHasCompleted ||
			ss.runMedian != prevRunMedian ||
			ss.completeMedian != prevCompleteMedian ||
			len(ss.groups) != len(ss.prevGroups)
		if !aggChanged {
			for i := range ss.groups {
				if (groupKey{ss.groups[i].size, ss.groups[i].median}) != ss.prevGroups[i] {
					aggChanged = true
					break
				}
			}
		}
		if aggChanged {
			ss.aggEpoch++
			ss.prevGroups = ss.prevGroups[:0]
			for i := range ss.groups {
				ss.prevGroups = append(ss.prevGroups, groupKey{ss.groups[i].size, ss.groups[i].median})
			}
		}
		if ss.model != prevModel {
			ss.modelEpoch++
		}
	}
}

// EstimateEpochs returns the stage's cache-invalidation epochs: agg covers
// every input to its estimates except the OGD coefficients (aggregates,
// size groups, priors, the shared transfer estimate), model covers the
// coefficients. A memoized estimate for a task whose state is unchanged
// stays valid while agg matches (and, for Policy 5 answers, model). The
// method makes *Predictor satisfy lookahead.EpochEstimator.
func (p *Predictor) EstimateEpochs(stage dag.StageID) (agg, model uint64) {
	ss := p.stages[stage]
	if ss == nil {
		// No per-stage state behaves exactly like all-zero state (Policy 1
		// or a prior), so sharing epoch 0 with that case is sound.
		return p.transferEpoch, 0
	}
	// Both terms only ever grow, so the sum changes whenever either does.
	return ss.aggEpoch + p.transferEpoch, ss.modelEpoch
}

func (p *Predictor) addToGroup(ss *stageState, size, exec float64) {
	for i := range ss.groups {
		g := &ss.groups[i]
		if sizesEquivalent(g.size, size, p.cfg.SizeTolerance) {
			g.execs = append(g.execs, exec)
			return
		}
	}
	ss.groups = append(ss.groups, sizeGroup{size: size, execs: []float64{exec}})
}

func sizesEquivalent(a, b, tol float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return true
	}
	return math.Abs(a-b) <= tol*m
}

// EstimateExec returns the estimated (minimum) execution time of an
// incomplete or unstarted task, together with the policy that produced it.
// For a completed task it returns the observed time with PolicyNone.
func (p *Predictor) EstimateExec(snap *monitor.Snapshot, id dag.TaskID) (float64, Policy) {
	rec := snap.Task(id)
	if rec.State == monitor.Completed {
		return rec.ExecTime, PolicyNone
	}
	ss := p.stages[rec.Stage]
	if ss == nil {
		if prior, ok := p.cfg.Priors[rec.Stage]; ok && prior > 0 {
			return prior, PolicyPrior
		}
		return 0, PolicyZero
	}
	switch {
	case !ss.hasRunning && !ss.hasCompleted:
		// Policy 1: nothing at the stage has started — unless a
		// warm-start prior is configured (extension, PolicyPrior).
		if prior, ok := p.cfg.Priors[rec.Stage]; ok && prior > 0 {
			return prior, PolicyPrior
		}
		return 0, PolicyZero
	case !ss.hasCompleted:
		// Policy 2: only running peers; the median run time is the
		// conservative floor (they are presumed about to complete, and
		// unstarted peers will run at least this long).
		return ss.runMedian, PolicyRunningMedian
	}
	// Completed peers exist.
	if rec.State == monitor.Blocked {
		// Policy 3: input not yet available.
		return ss.completeMedian, PolicyCompletedMedian
	}
	// Ready or Running: the input size is known.
	for i := range ss.groups {
		if sizesEquivalent(ss.groups[i].size, rec.InputSize, p.cfg.SizeTolerance) {
			// Policy 4: equivalent completed group.
			return ss.groups[i].median, PolicyGroupMedian
		}
	}
	// Policy 5: new input size — OGD model.
	return ss.model.predict(rec.InputSize), PolicyOGD
}

// EstimateTransfer returns the current per-task data-transfer estimate
// (0 until any transfer has been observed).
func (p *Predictor) EstimateTransfer() float64 {
	if !p.hasTransfer {
		return 0
	}
	return p.lastTransfer
}

// EstimateOccupancy returns the estimated total slot occupancy (transfer +
// execution) of a task.
func (p *Predictor) EstimateOccupancy(snap *monitor.Snapshot, id dag.TaskID) (float64, Policy) {
	exec, pol := p.EstimateExec(snap, id)
	return exec + p.EstimateTransfer(), pol
}

// RemainingOccupancy returns the predicted minimum remaining slot occupancy
// of a task at time `at` (≥ snapshot time): the full estimated occupancy for
// tasks that have not started, and the estimate minus the occupancy already
// consumed for running tasks, floored at zero (the conservative-minimum rule
// of §III-A).
//
// Exception: while a stage has running tasks but no completions (Policy 2),
// a running task's remaining occupancy is its full estimate. With zero
// completions there is no evidence any task ever finishes, so the stage's
// median elapsed run time is the conservative floor on future occupancy as
// well — this is what makes the pool reach N instances by time U in the
// §III-E walkthrough ("after U/N time units the algorithm predicts that the
// N tasks of the stage will consume an entire instance-unit").
func (p *Predictor) RemainingOccupancy(snap *monitor.Snapshot, id dag.TaskID, at float64) (float64, Policy) {
	rec := snap.Task(id)
	total, pol := p.EstimateOccupancy(snap, id)
	if rec.State != monitor.Running || pol == PolicyRunningMedian {
		return total, pol
	}
	elapsedAt := rec.Elapsed + (at - snap.Now)
	rem := total - elapsedAt
	if rem < 0 {
		rem = 0
	}
	return rem, pol
}

// Coefficients exposes a stage's OGD model (a0, a1 against the normalized
// feature, and the normalization scale) for tests and diagnostics.
func (p *Predictor) Coefficients(stage dag.StageID) (a0, a1, scale float64, ok bool) {
	ss := p.stages[stage]
	if ss == nil {
		return 0, 0, 0, false
	}
	return ss.model.a0, ss.model.a1, ss.model.scale, true
}

// ModeledStages returns the stages with state, in ascending ID order.
func (p *Predictor) ModeledStages() []dag.StageID {
	out := make([]dag.StageID, 0, len(p.stages))
	for id := range p.stages {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
