// Package dot renders workflow DAGs as Graphviz DOT documents, with tasks
// clustered by stage — the quickest way to eyeball a generated or imported
// workflow's shape.
package dot

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dag"
)

// Options tune the rendering.
type Options struct {
	// MaxTasksPerStage elides stages wider than this down to a
	// representative node with a count label (default 24; 0 keeps all).
	MaxTasksPerStage int
	// RankDir is the graph direction ("TB" default, or "LR").
	RankDir string
}

func (o Options) withDefaults() Options {
	if o.MaxTasksPerStage == 0 {
		o.MaxTasksPerStage = 24
	}
	if o.RankDir == "" {
		o.RankDir = "TB"
	}
	return o
}

// stagePalette cycles fill colours per stage.
var stagePalette = []string{
	"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#80b1d3", "#fccde5",
}

// Write renders the workflow as DOT. Wide stages are elided to three
// representative nodes plus an ellipsis node so the output stays readable
// for thousand-task workflows.
func Write(w io.Writer, wf *dag.Workflow, opts Options) error {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", wf.Name)
	fmt.Fprintf(&b, "  rankdir=%s;\n  node [shape=box, style=filled, fontsize=10];\n", opts.RankDir)

	// kept marks tasks rendered as real nodes; elided stages map the
	// hidden tasks onto their stage's ellipsis node.
	kept := make(map[dag.TaskID]bool, wf.NumTasks())
	alias := make(map[dag.TaskID]string, wf.NumTasks())

	for _, st := range wf.Stages {
		color := stagePalette[int(st.ID)%len(stagePalette)]
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n    color=gray;\n", st.ID, st.Name)
		elide := opts.MaxTasksPerStage > 0 && len(st.Tasks) > opts.MaxTasksPerStage
		show := st.Tasks
		if elide {
			show = st.Tasks[:3]
		}
		for _, tid := range show {
			t := wf.Task(tid)
			kept[tid] = true
			alias[tid] = nodeName(tid)
			fmt.Fprintf(&b, "    %s [label=\"%s\\n%.1fs\", fillcolor=%q];\n",
				nodeName(tid), escapeLabel(t.Name), t.ExecTime, color)
		}
		if elide {
			ell := fmt.Sprintf("s%d_more", st.ID)
			fmt.Fprintf(&b, "    %s [label=\"… %d more\", fillcolor=%q, style=\"filled,dashed\"];\n",
				ell, len(st.Tasks)-len(show), color)
			for _, tid := range st.Tasks[3:] {
				alias[tid] = ell
			}
		}
		b.WriteString("  }\n")
	}

	// Edges, deduplicated after aliasing.
	seen := map[string]bool{}
	for _, t := range wf.Tasks {
		dst := alias[t.ID]
		for _, d := range t.Deps {
			src := alias[d]
			key := src + "->" + dst
			if src == dst || seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&b, "  %s -> %s;\n", src, dst)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func nodeName(id dag.TaskID) string { return fmt.Sprintf("t%d", int(id)) }

func escapeLabel(s string) string {
	return strings.NewReplacer(`"`, `\"`, "\n", " ").Replace(s)
}
