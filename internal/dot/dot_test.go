package dot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/workloads"
)

func TestWriteSmall(t *testing.T) {
	b := dag.NewBuilder("mini")
	s0 := b.AddStage("split")
	s1 := b.AddStage("map")
	r := b.AddTask(s0, "split", 5, 0, 1)
	b.AddTask(s1, "m0", 10, 0, 1, r)
	b.AddTask(s1, "m1", 10, 0, 1, r)
	wf := b.MustBuild()

	var buf bytes.Buffer
	if err := Write(&buf, wf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "mini"`, "subgraph cluster_0", "subgraph cluster_1",
		"t0 -> t1", "t0 -> t2", "split", "rankdir=TB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot missing %q:\n%s", want, out)
		}
	}
}

func TestWriteElidesWideStages(t *testing.T) {
	run, _ := workloads.ByKey("genome-s")
	wf := run.Generate(1)
	var buf bytes.Buffer
	if err := Write(&buf, wf, Options{MaxTasksPerStage: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "more") {
		t.Fatal("wide stages not elided")
	}
	// Elision keeps the node count manageable: far fewer nodes than tasks.
	if got := strings.Count(out, "\n  t"); got > 100 {
		t.Fatalf("too many rendered nodes: %d", got)
	}
	// No duplicate edges after aliasing.
	lines := strings.Split(out, "\n")
	seen := map[string]bool{}
	for _, l := range lines {
		l = strings.TrimSpace(l)
		if !strings.Contains(l, "->") {
			continue
		}
		if seen[l] {
			t.Fatalf("duplicate edge %q", l)
		}
		seen[l] = true
	}
}

func TestWriteRankDirAndQuotes(t *testing.T) {
	b := dag.NewBuilder(`we"ird`)
	s := b.AddStage("s")
	b.AddTask(s, `na"me`, 1, 0, 0)
	wf := b.MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, wf, Options{RankDir: "LR"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rankdir=LR") {
		t.Fatal("rankdir not applied")
	}
	if strings.Contains(buf.String(), "na\"me\"") {
		t.Fatal("unescaped quote in label")
	}
}
