package cloud

import (
	"math"
	"testing"
	"time"
)

func TestScaledClockRejectsNonPositiveScale(t *testing.T) {
	for _, scale := range []float64{0, -1} {
		if _, err := NewScaledClock(scale, nil); err == nil {
			t.Fatalf("scale %v: want error", scale)
		}
	}
}

func TestScaledClockMapsWallToSim(t *testing.T) {
	wall := time.Unix(1000, 0)
	now := func() time.Time { return wall }
	c, err := NewScaledClock(100, now)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale() != 100 {
		t.Fatalf("Scale = %v", c.Scale())
	}
	if c.Started() || c.Now() != 0 {
		t.Fatalf("before Start: started=%v now=%v", c.Started(), c.Now())
	}

	c.Start()
	if !c.Started() || c.Now() != 0 {
		t.Fatalf("at Start: started=%v now=%v", c.Started(), c.Now())
	}
	wall = wall.Add(250 * time.Millisecond) // 0.25 wall s × 100 = 25 sim s
	if got := c.Now(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("Now = %v, want 25", got)
	}
	// Start again is a no-op: the origin must not move.
	c.Start()
	if got := c.Now(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("Now after re-Start = %v, want 25", got)
	}

	if got := c.WallUntil(125); got != time.Second {
		t.Fatalf("WallUntil(125) = %v, want 1s", got)
	}
	if got := c.WallUntil(10); got != 0 {
		t.Fatalf("WallUntil(past) = %v, want 0", got)
	}
	if got := c.WallDuration(50); got != 500*time.Millisecond {
		t.Fatalf("WallDuration(50) = %v, want 500ms", got)
	}
	if got := c.WallDuration(-1); got != 0 {
		t.Fatalf("WallDuration(-1) = %v, want 0", got)
	}
}
