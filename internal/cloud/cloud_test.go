package cloud

import (
	"errors"
	"testing"
	"testing/quick"
)

func newSite(t *testing.T, cfg Config) *Site {
	t.Helper()
	s, err := NewSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultCfg() Config {
	return Config{SlotsPerInstance: 4, LagTime: 180, ChargingUnit: 3600, MaxInstances: 12}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SlotsPerInstance: 0, ChargingUnit: 60},
		{SlotsPerInstance: 1, ChargingUnit: 0},
		{SlotsPerInstance: 1, ChargingUnit: 60, LagTime: -1},
		{SlotsPerInstance: 1, ChargingUnit: 60, MaxInstances: -2},
	}
	for i, c := range bad {
		if _, err := NewSite(c); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := NewSite(defaultCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchLifecycle(t *testing.T) {
	s := newSite(t, defaultCfg())
	in, err := s.Launch(100)
	if err != nil {
		t.Fatal(err)
	}
	if in.State != Pending || in.ActiveAt != 280 || in.Slots != 4 {
		t.Fatalf("launch state: %+v", in)
	}
	if in.UsableAt(200) {
		t.Fatal("usable before activation time")
	}
	if err := s.Activate(in, 280); err != nil {
		t.Fatal(err)
	}
	if !in.UsableAt(280) || !in.UsableAt(1e6) {
		t.Fatal("active instance should be usable")
	}
	if err := s.Terminate(in, 4000); err != nil {
		t.Fatal(err)
	}
	if in.UsableAt(4000) || !in.UsableAt(3999) {
		t.Fatal("termination boundary wrong")
	}
	if s.Held() != 0 {
		t.Fatalf("Held = %d after terminate", s.Held())
	}
}

func TestActivateErrors(t *testing.T) {
	s := newSite(t, defaultCfg())
	in, _ := s.Launch(0)
	if err := s.Activate(in, 100); err == nil {
		t.Fatal("activation before ready time must fail")
	}
	if err := s.Activate(in, 180); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(in, 200); err == nil {
		t.Fatal("double activation must fail")
	}
}

func TestSiteCap(t *testing.T) {
	cfg := defaultCfg()
	cfg.MaxInstances = 2
	s := newSite(t, cfg)
	if _, err := s.Launch(0); err != nil {
		t.Fatal(err)
	}
	b, err := s.Launch(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Launch(0); !errors.Is(err, ErrSiteFull) {
		t.Fatalf("expected ErrSiteFull, got %v", err)
	}
	// Terminating frees capacity.
	if err := s.Terminate(b, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Launch(1); err != nil {
		t.Fatalf("launch after release failed: %v", err)
	}
}

func TestChargingFromActivation(t *testing.T) {
	cfg := defaultCfg()
	cfg.ChargingUnit = 60
	s := newSite(t, cfg)
	in, _ := s.Launch(0) // active at 180, billing starts at 180
	if err := s.Activate(in, 180); err != nil {
		t.Fatal(err)
	}
	if got := in.UnitsChargedAt(180); got != 0 {
		t.Fatalf("units at activation = %d, want 0", got)
	}
	if got := in.UnitsChargedAt(181); got != 1 {
		t.Fatalf("units one second in = %d, want 1", got)
	}
	if got := in.UnitsChargedAt(240); got != 1 {
		t.Fatalf("units at first boundary = %d, want 1", got)
	}
	if got := in.UnitsChargedAt(241); got != 2 {
		t.Fatalf("units past boundary = %d, want 2", got)
	}
	if err := s.Terminate(in, 300); err != nil {
		t.Fatal(err)
	}
	// 120 s of life at u=60 -> 2 units, regardless of later query times.
	if got := in.UnitsChargedAt(1e9); got != 2 {
		t.Fatalf("final units = %d, want 2", got)
	}
}

func TestChargeFromRequest(t *testing.T) {
	cfg := defaultCfg()
	cfg.ChargingUnit = 60
	cfg.ChargeFromRequest = true
	s := newSite(t, cfg)
	in, _ := s.Launch(0)
	if in.ChargeOrigin() != 0 {
		t.Fatalf("charge origin = %v, want 0", in.ChargeOrigin())
	}
	if got := in.UnitsChargedAt(180); got != 3 {
		t.Fatalf("units during lag = %d, want 3", got)
	}
}

func TestCancelPendingIsFree(t *testing.T) {
	s := newSite(t, defaultCfg())
	in, _ := s.Launch(0)
	if err := s.Terminate(in, 50); err != nil {
		t.Fatal(err)
	}
	if got := in.UnitsChargedAt(1e9); got != 0 {
		t.Fatalf("canceled pending instance charged %d units", got)
	}
	if err := s.Terminate(in, 60); err == nil {
		t.Fatal("double terminate must fail")
	}
}

func TestTimeToNextCharge(t *testing.T) {
	cfg := defaultCfg()
	cfg.ChargingUnit = 600
	cfg.LagTime = 0
	s := newSite(t, cfg)
	in, _ := s.Launch(100) // billing origin 100
	if err := s.Activate(in, 100); err != nil {
		t.Fatal(err)
	}
	if got := in.TimeToNextCharge(100); got != 600 {
		t.Fatalf("r at origin = %v, want 600", got)
	}
	if got := in.TimeToNextCharge(650); got != 50 {
		t.Fatalf("r mid-unit = %v, want 50", got)
	}
	if got := in.TimeToNextCharge(700); got != 600 {
		t.Fatalf("r at boundary = %v, want 600 (next unit)", got)
	}
}

func TestPoolQueries(t *testing.T) {
	s := newSite(t, defaultCfg())
	a, _ := s.Launch(0)
	b, _ := s.Launch(0)
	if got := len(s.PendingInstances()); got != 2 {
		t.Fatalf("pending = %d", got)
	}
	if err := s.Activate(a, 180); err != nil {
		t.Fatal(err)
	}
	if got := len(s.UsableInstances(180)); got != 1 {
		t.Fatalf("usable = %d", got)
	}
	if got := len(s.PendingInstances()); got != 1 {
		t.Fatalf("pending after activation = %d", got)
	}
	if err := s.Activate(b, 180); err != nil {
		t.Fatal(err)
	}
	if s.Held() != 2 {
		t.Fatalf("Held = %d", s.Held())
	}
	if got := len(s.Instances()); got != 2 {
		t.Fatalf("Instances = %d", got)
	}
}

func TestTotalsAndUtilization(t *testing.T) {
	cfg := defaultCfg()
	cfg.ChargingUnit = 100
	cfg.LagTime = 0
	cfg.SlotsPerInstance = 2
	s := newSite(t, cfg)
	a, _ := s.Launch(0)
	if err := s.Activate(a, 0); err != nil {
		t.Fatal(err)
	}
	a.BusySlotSeconds = 120
	if err := s.Terminate(a, 100); err != nil { // exactly 1 unit
		t.Fatal(err)
	}
	if got := s.TotalUnitsCharged(500); got != 1 {
		t.Fatalf("total units = %d, want 1", got)
	}
	if got := s.TotalChargedSeconds(500); got != 100 {
		t.Fatalf("charged seconds = %v", got)
	}
	// paid slot-seconds = 100*2 = 200; busy = 120 -> utilization 0.6
	if got := s.Utilization(500); got != 0.6 {
		t.Fatalf("utilization = %v, want 0.6", got)
	}
}

func TestUtilizationZeroWhenUnused(t *testing.T) {
	s := newSite(t, defaultCfg())
	if s.Utilization(100) != 0 {
		t.Fatal("empty site should have zero utilization")
	}
}

// Property: total charged units never decreases as the query time grows.
func TestChargeMonotoneProperty(t *testing.T) {
	f := func(lifeRaw uint16, unitRaw uint8) bool {
		cfg := defaultCfg()
		cfg.ChargingUnit = float64(unitRaw%100) + 1
		cfg.LagTime = 0
		s, err := NewSite(cfg)
		if err != nil {
			return false
		}
		in, err := s.Launch(0)
		if err != nil {
			return false
		}
		if err := s.Activate(in, 0); err != nil {
			return false
		}
		life := float64(lifeRaw % 10000)
		prev := -1
		for _, f := range []float64{0.1, 0.5, 1.0} {
			got := in.UnitsChargedAt(life * f)
			if got < prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	if Pending.String() != "pending" || Active.String() != "active" || Terminated.String() != "terminated" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should still render")
	}
}
