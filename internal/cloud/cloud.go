// Package cloud simulates the IaaS substrate WIRE steers: a single cloud
// site that rents identically provisioned worker instances (§III-A).
//
// The model captures exactly the properties the steering policy depends on:
//
//   - each instance has l slots for concurrent tasks;
//   - launching (and, symmetrically, any pool change) takes effect after the
//     lag time t — the maximum delay to institute a change;
//   - instances are billed per whole charging unit u from the moment they
//     become usable;
//   - the site caps the number of concurrently held instances (ExoGENI
//     sites provided at most 12, §IV-B).
package cloud

import (
	"errors"
	"fmt"

	"repro/internal/simtime"
)

// InstanceID identifies an instance within one site for the lifetime of a
// run. IDs are never reused.
type InstanceID int

// State is the lifecycle state of an instance.
type State int

// Instance lifecycle states.
const (
	// Pending: launch requested, not yet usable (within the lag window).
	Pending State = iota
	// Active: usable and accruing charging units.
	Active
	// Terminated: released; its final cost is fixed.
	Terminated
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MarshalJSON encodes the state by name so the monitoring wire format does
// not depend on the ordering of the state constants.
func (s State) MarshalJSON() ([]byte, error) {
	switch s {
	case Pending, Active, Terminated:
		return []byte(`"` + s.String() + `"`), nil
	default:
		return nil, fmt.Errorf("cloud: cannot marshal unknown state %d", int(s))
	}
}

// UnmarshalJSON decodes a state name (or a legacy integer).
func (s *State) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"pending"`, "0":
		*s = Pending
	case `"active"`, "1":
		*s = Active
	case `"terminated"`, "2":
		*s = Terminated
	default:
		return fmt.Errorf("cloud: unknown state %s", b)
	}
	return nil
}

// Config describes a cloud site.
type Config struct {
	// SlotsPerInstance is l, the number of concurrent tasks per worker
	// (4 for the XOXLarge instances in §IV-B).
	SlotsPerInstance int
	// LagTime is t, the delay between ordering a launch and the instance
	// becoming usable (~180 s on ExoGENI).
	LagTime simtime.Duration
	// ChargingUnit is u, the billing quantum.
	ChargingUnit simtime.Duration
	// MaxInstances caps the pool (12 in the experiments); 0 = unbounded.
	MaxInstances int
	// ChargeFromRequest bills from the launch request instead of from
	// activation. Off by default; exposed for ablation studies.
	ChargeFromRequest bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SlotsPerInstance <= 0 {
		return fmt.Errorf("cloud: SlotsPerInstance must be positive, got %d", c.SlotsPerInstance)
	}
	if c.LagTime < 0 {
		return fmt.Errorf("cloud: negative LagTime %v", c.LagTime)
	}
	if c.ChargingUnit <= 0 {
		return fmt.Errorf("cloud: ChargingUnit must be positive, got %v", c.ChargingUnit)
	}
	if c.MaxInstances < 0 {
		return fmt.Errorf("cloud: negative MaxInstances %d", c.MaxInstances)
	}
	return nil
}

// Instance is one rented worker.
type Instance struct {
	ID          InstanceID
	Slots       int
	RequestedAt simtime.Time
	// ActiveAt is when the instance becomes usable (RequestedAt + lag).
	ActiveAt simtime.Time
	// TerminatedAt is meaningful only in the Terminated state.
	TerminatedAt simtime.Time
	State        State

	// BusySlotSeconds is accumulated by the execution simulator: total
	// slot-seconds spent running tasks. The cloud site itself never
	// writes it; it feeds the utilization metrics (§IV-E).
	BusySlotSeconds float64

	chargeOrigin simtime.Time
	unit         simtime.Duration
}

// ChargeOrigin returns the instant billing started.
func (in *Instance) ChargeOrigin() simtime.Time { return in.chargeOrigin }

// NextChargeBoundary returns the first charging boundary strictly after now.
func (in *Instance) NextChargeBoundary(now simtime.Time) simtime.Time {
	return simtime.NextBoundary(in.chargeOrigin, in.unit, now)
}

// TimeToNextCharge returns r_j: how long after now the instance's next
// charging unit begins (§III-D, Algorithm 2 input).
func (in *Instance) TimeToNextCharge(now simtime.Time) simtime.Duration {
	return in.NextChargeBoundary(now) - now
}

// UnitsChargedAt returns the charging units billed if the instance is (or
// was) held until t. Terminated instances ignore t beyond their termination.
func (in *Instance) UnitsChargedAt(t simtime.Time) int {
	end := t
	if in.State == Terminated && in.TerminatedAt < end {
		end = in.TerminatedAt
	}
	return simtime.UnitsCharged(in.chargeOrigin, end, in.unit)
}

// UsableAt reports whether the instance can run tasks at time t.
func (in *Instance) UsableAt(t simtime.Time) bool {
	if in.State == Terminated {
		return simtime.AtOrAfter(t, in.ActiveAt) && simtime.Before(t, in.TerminatedAt)
	}
	return simtime.AtOrAfter(t, in.ActiveAt)
}

// Site is a simulated cloud site. It is not safe for concurrent use; the
// discrete-event simulators drive it from a single goroutine.
type Site struct {
	cfg       Config
	instances []*Instance
	held      int // pending + active
	launched  int
}

// NewSite returns a site with the given configuration.
func NewSite(cfg Config) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Site{cfg: cfg}, nil
}

// Config returns the site configuration.
func (s *Site) Config() Config { return s.cfg }

// ErrSiteFull is returned by Launch when the site cap is reached.
var ErrSiteFull = errors.New("cloud: site capacity reached")

// Launch requests a new instance at time now. The instance becomes usable at
// now + LagTime. It returns ErrSiteFull when the cap would be exceeded.
func (s *Site) Launch(now simtime.Time) (*Instance, error) {
	if s.cfg.MaxInstances > 0 && s.held >= s.cfg.MaxInstances {
		return nil, ErrSiteFull
	}
	in := &Instance{
		ID:          InstanceID(s.launched),
		Slots:       s.cfg.SlotsPerInstance,
		RequestedAt: now,
		ActiveAt:    now + s.cfg.LagTime,
		State:       Pending,
		unit:        s.cfg.ChargingUnit,
	}
	if s.cfg.ChargeFromRequest {
		in.chargeOrigin = now
	} else {
		in.chargeOrigin = in.ActiveAt
	}
	s.launched++
	s.held++
	s.instances = append(s.instances, in)
	return in, nil
}

// Postpone delays a pending instance's activation to a later instant — a
// straggler launch (§II-B: instantiation lags vary). Billing follows the
// activation unless the site charges from the request.
func (s *Site) Postpone(in *Instance, to simtime.Time) error {
	if in.State != Pending {
		return fmt.Errorf("cloud: postpone instance %d in state %v", in.ID, in.State)
	}
	if simtime.Before(to, in.ActiveAt) {
		return fmt.Errorf("cloud: postpone instance %d to %v before nominal activation %v", in.ID, to, in.ActiveAt)
	}
	in.ActiveAt = to
	if !s.cfg.ChargeFromRequest {
		in.chargeOrigin = to
	}
	return nil
}

// Activate marks a pending instance usable. The execution simulator calls it
// from the activation event at in.ActiveAt.
func (s *Site) Activate(in *Instance, now simtime.Time) error {
	if in.State != Pending {
		return fmt.Errorf("cloud: activate instance %d in state %v", in.ID, in.State)
	}
	if simtime.Before(now, in.ActiveAt) {
		return fmt.Errorf("cloud: instance %d activated at %v before ready time %v", in.ID, now, in.ActiveAt)
	}
	in.State = Active
	return nil
}

// Terminate releases an instance at time at. Terminating a pending instance
// cancels it (no charge if it never became usable). Terminating an already
// terminated instance is an error.
func (s *Site) Terminate(in *Instance, at simtime.Time) error {
	switch in.State {
	case Terminated:
		return fmt.Errorf("cloud: instance %d already terminated", in.ID)
	case Pending:
		// Cancel before activation: record a zero-length life.
		in.TerminatedAt = in.chargeOrigin
	case Active:
		if simtime.Before(at, in.ActiveAt) {
			return fmt.Errorf("cloud: instance %d terminated at %v before active at %v", in.ID, at, in.ActiveAt)
		}
		in.TerminatedAt = at
	}
	in.State = Terminated
	s.held--
	return nil
}

// Instances returns every instance ever launched, in launch order. Callers
// must treat the slice as read-only.
func (s *Site) Instances() []*Instance { return s.instances }

// Held returns the number of instances currently held (pending + active):
// the committed pool size m the steering policy compares against.
func (s *Site) Held() int { return s.held }

// UsableInstances returns the instances usable at time t, in launch order.
func (s *Site) UsableInstances(t simtime.Time) []*Instance {
	var out []*Instance
	for _, in := range s.instances {
		if in.State == Active && in.UsableAt(t) {
			out = append(out, in)
		}
	}
	return out
}

// PendingInstances returns instances requested but not yet active.
func (s *Site) PendingInstances() []*Instance {
	var out []*Instance
	for _, in := range s.instances {
		if in.State == Pending {
			out = append(out, in)
		}
	}
	return out
}

// TotalUnitsCharged returns the total charging units billed across all
// instances, counting live instances as held until end. This is the paper's
// resource-cost metric (§IV-E, Figure 5).
func (s *Site) TotalUnitsCharged(end simtime.Time) int {
	total := 0
	for _, in := range s.instances {
		total += in.UnitsChargedAt(end)
	}
	return total
}

// TotalChargedSeconds returns the billed wall-seconds (units × u).
func (s *Site) TotalChargedSeconds(end simtime.Time) float64 {
	return float64(s.TotalUnitsCharged(end)) * s.cfg.ChargingUnit
}

// TotalBusySlotSeconds sums the busy slot-seconds accumulated by the
// execution simulator across all instances.
func (s *Site) TotalBusySlotSeconds() float64 {
	total := 0.0
	for _, in := range s.instances {
		total += in.BusySlotSeconds
	}
	return total
}

// Utilization returns busy slot-seconds divided by paid slot-seconds at end:
// the fraction of purchased capacity that ran tasks.
func (s *Site) Utilization(end simtime.Time) float64 {
	paid := s.TotalChargedSeconds(end) * float64(s.cfg.SlotsPerInstance)
	if paid <= 0 {
		return 0
	}
	return s.TotalBusySlotSeconds() / paid
}
