package cloud

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simtime"
)

// ScaledClock maps the wall clock onto simulated seconds: the live execution
// plane's counterpart to the discrete-event engine's virtual clock. One wall
// second equals Scale simulated seconds, so an Epigenomics run whose billing
// is defined in 15-minute charging units can execute against real agents in
// seconds while the Site still meters whole units.
//
// The clock starts at simulated time zero when Start is called; Now before
// Start is zero. It is safe for concurrent use.
type ScaledClock struct {
	scale float64
	now   func() time.Time

	mu      sync.Mutex
	origin  time.Time
	started bool
}

// NewScaledClock returns a stopped clock running at scale simulated seconds
// per wall second. now overrides the wall-clock source (tests); nil uses
// time.Now.
func NewScaledClock(scale float64, now func() time.Time) (*ScaledClock, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("cloud: non-positive clock scale %v", scale)
	}
	if now == nil {
		now = time.Now
	}
	return &ScaledClock{scale: scale, now: now}, nil
}

// Scale returns the simulated seconds per wall second.
func (c *ScaledClock) Scale() float64 { return c.scale }

// Start anchors simulated time zero at the current wall instant. Starting an
// already started clock is a no-op.
func (c *ScaledClock) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		c.origin = c.now()
		c.started = true
	}
}

// Started reports whether Start has been called.
func (c *ScaledClock) Started() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

// ResumeAt restarts the clock so the current wall instant reads as simulated
// time t. Crash recovery uses it to continue a journaled run from the last
// recorded simulated timestamp: the downtime simply does not exist on the
// simulated axis, which keeps replayed decision streams aligned with the
// original tick grid.
func (c *ScaledClock) ResumeAt(t simtime.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.origin = c.now().Add(-time.Duration(t / c.scale * float64(time.Second)))
	c.started = true
}

// Now returns the current simulated time (zero before Start).
func (c *ScaledClock) Now() simtime.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return 0
	}
	return c.now().Sub(c.origin).Seconds() * c.scale
}

// WallUntil returns the wall-clock duration from now until simulated time t
// (zero when t has already passed). It is how the live dispatcher arms
// timers for future simulated instants: activations, charging boundaries,
// control ticks.
func (c *ScaledClock) WallUntil(t simtime.Time) time.Duration {
	d := time.Duration((t - c.Now()) / c.scale * float64(time.Second))
	if d < 0 {
		return 0
	}
	return d
}

// WallDuration converts a simulated duration to its wall-clock equivalent.
func (c *ScaledClock) WallDuration(d simtime.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return time.Duration(d / c.scale * float64(time.Second))
}
