// Package parallel is the shared work-grid executor behind the experiment
// drivers: a fixed index grid dispatched to a bounded worker pool.
//
// Every cell of a grid is an independent, seeded computation, so the
// executor guarantees three properties the drivers rely on:
//
//   - deterministic output ordering — results land in their input slot, so
//     the outcome is identical at any worker count;
//   - first-error-by-index propagation — when cells fail, the error of the
//     lowest-indexed failing cell is returned, again independent of
//     scheduling;
//   - early stop — after the first failure no new cells are dispatched
//     (cells already running drain normally).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Config parameterizes one grid execution.
type Config struct {
	// Workers bounds the pool; 0 or negative means GOMAXPROCS. The pool
	// never exceeds the number of cells.
	Workers int
	// OnProgress, when non-nil, is invoked after every successfully
	// completed cell with the running done count and the grid total. It
	// may be called concurrently from several workers and must be
	// safe for concurrent use.
	OnProgress func(done, total int)
}

// workers resolves the effective pool size for an n-cell grid.
func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on the configured pool. fn must
// write any output into per-index storage; ForEach itself only schedules.
// The first error by index is returned; after any failure, dispatch of new
// indices stops.
func ForEach(n int, cfg Config, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var failed atomic.Bool
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				if cfg.OnProgress != nil {
					cfg.OnProgress(int(done.Add(1)), n)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn across [0, n) and collects the results in index order.
func Map[T any](n int, cfg Config, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, cfg, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FlatMap is Map for grids whose cells each yield a slice; the per-cell
// slices are concatenated in index order.
func FlatMap[T any](n int, cfg Config, fn func(i int) ([]T, error)) ([]T, error) {
	parts, err := Map(n, cfg, fn)
	if err != nil {
		return nil, err
	}
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Collect is Map for infallible cells.
func Collect[T any](n int, cfg Config, fn func(i int) T) []T {
	out, _ := Map(n, cfg, func(i int) (T, error) { return fn(i), nil })
	return out
}
