package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		out, err := Map(100, Config{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestFirstErrorByIndex(t *testing.T) {
	// Every cell fails; index 0 is always dispatched, so its error must
	// be the one propagated regardless of scheduling.
	errAt := func(i int) error { return fmt.Errorf("cell %d", i) }
	for _, workers := range []int{1, 8} {
		err := ForEach(50, Config{Workers: workers}, errAt)
		if err == nil || err.Error() != "cell 0" {
			t.Fatalf("workers=%d: err = %v, want cell 0", workers, err)
		}
	}
}

func TestStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(1000, Config{Workers: 1}, func(i int) error {
		calls.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// With one worker, at most the failing cell plus the one already
	// queued behind it run; the remaining ~997 must never start.
	if n := calls.Load(); n > 10 {
		t.Fatalf("calls = %d, dispatch did not stop", n)
	}
}

func TestFailedCellLeavesNoPartialResult(t *testing.T) {
	out, err := Map(10, Config{Workers: 4}, func(i int) (int, error) {
		if i == 5 {
			return 99, errors.New("bad cell")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}

func TestProgressCoversEveryCell(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	last := 0
	err := ForEach(40, Config{Workers: 8, OnProgress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != 40 {
			t.Errorf("total = %d", total)
		}
		seen[done] = true
		if done > last {
			last = done
		}
	}}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if last != 40 || len(seen) != 40 {
		t.Fatalf("last = %d, distinct = %d", last, len(seen))
	}
}

func TestFlatMapConcatenatesInOrder(t *testing.T) {
	out, err := FlatMap(5, Config{Workers: 5}, func(i int) ([]int, error) {
		return []int{i, i}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestCollectAndEmptyGrid(t *testing.T) {
	if out := Collect(3, Config{}, func(i int) string { return fmt.Sprint(i) }); len(out) != 3 || out[2] != "2" {
		t.Fatalf("out = %v", out)
	}
	if err := ForEach(0, Config{}, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	if out := Collect(0, Config{}, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}

func TestWorkersClamped(t *testing.T) {
	for _, tc := range []struct{ cfgW, n, want int }{
		{5, 3, 3},
		{-1, 3, 3}, // GOMAXPROCS-derived, then clamped to n on small grids
		{1, 100, 1},
	} {
		got := Config{Workers: tc.cfgW}.workers(tc.n)
		if tc.cfgW == -1 {
			if got < 1 || got > tc.n {
				t.Fatalf("workers(%d, n=%d) = %d", tc.cfgW, tc.n, got)
			}
			continue
		}
		if got != tc.want {
			t.Fatalf("workers(%d, n=%d) = %d, want %d", tc.cfgW, tc.n, got, tc.want)
		}
	}
}
