package service

import (
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/jsonlite"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Hand-rolled codec for PlanResponse, the plan endpoint's response body —
// the other half of the per-interval wire round trip (the request half is
// monitor.Snapshot's codec). Predictions carry one entry per not-yet-started
// task, so on big workflows this body is as large as the snapshot and the
// reflect round trip just as dominant. Byte-identical to encoding/json; see
// internal/jsonlite.

// MarshalJSON implements json.Marshaler, byte-identical to the stock
// encoding of the same struct.
func (r *PlanResponse) MarshalJSON() ([]byte, error) {
	return r.AppendJSON(make([]byte, 0, 160+len(r.Predictions)*96))
}

// AppendJSON appends r encoded as JSON to dst, for callers with a reusable
// buffer (the daemon's pooled response writer).
func (r *PlanResponse) AppendJSON(dst []byte) ([]byte, error) {
	var err error
	dst = append(dst, `{"session_id":`...)
	dst = jsonlite.AppendString(dst, r.SessionID)
	dst = append(dst, `,"iteration":`...)
	dst = jsonlite.AppendInt(dst, r.Iteration)
	dst = append(dst, `,"seq":`...)
	dst = jsonlite.AppendInt(dst, r.Seq)
	dst = append(dst, `,"decision":{"launch":`...)
	dst = jsonlite.AppendInt(dst, int64(r.Decision.Launch))
	if len(r.Decision.Releases) > 0 {
		dst = append(dst, `,"releases":[`...)
		for i, rel := range r.Decision.Releases {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"instance":`...)
			dst = jsonlite.AppendInt(dst, int64(rel.Instance))
			if rel.AtBoundary {
				dst = append(dst, `,"at_boundary":true`...)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, '}')
	if r.Degraded {
		dst = append(dst, `,"degraded":true`...)
	}
	if len(r.Predictions) > 0 {
		dst = append(dst, `,"predictions":[`...)
		for i := range r.Predictions {
			p := &r.Predictions[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"task":`...)
			dst = jsonlite.AppendInt(dst, int64(p.Task))
			dst = append(dst, `,"stage":`...)
			dst = jsonlite.AppendInt(dst, int64(p.Stage))
			dst = append(dst, `,"estimated_exec_s":`...)
			var ferr error
			dst, ferr = jsonlite.AppendFloat(dst, float64(p.Estimated))
			if err == nil {
				err = ferr
			}
			dst = append(dst, `,"policy":`...)
			dst = jsonlite.AppendString(dst, p.Policy)
			dst = append(dst, `,"at_s":`...)
			dst, ferr = jsonlite.AppendFloat(dst, float64(p.At))
			if err == nil {
				err = ferr
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), err
}

// UnmarshalJSON implements json.Unmarshaler with the hand-rolled parser.
func (r *PlanResponse) UnmarshalJSON(data []byte) error {
	return unmarshalPlanResponse(data, r)
}

// unmarshalPlanResponse decodes one JSON value into r; same decode semantics
// as encoding/json (see monitor.UnmarshalSnapshot).
func unmarshalPlanResponse(data []byte, r *PlanResponse) error {
	p := jsonlite.Parser{Data: data}
	if err := parsePlanResponse(&p, r); err != nil {
		return err
	}
	if !p.AtEnd() {
		return p.Errorf("unexpected data after top-level value")
	}
	return nil
}

func parsePlanResponse(p *jsonlite.Parser, r *PlanResponse) error {
	return p.Object(func(key []byte) error {
		var err error
		switch string(key) {
		case "session_id":
			r.SessionID, err = p.String()
		case "iteration":
			r.Iteration, err = p.Int()
		case "seq":
			r.Seq, err = p.Int()
		case "decision":
			err = parseDecision(p, &r.Decision)
		case "degraded":
			r.Degraded, err = p.Bool()
		case "predictions":
			r.Predictions, err = parsePredictions(p, r.Predictions)
		default:
			_, err = p.SkipValue()
		}
		return err
	})
}

func parseDecision(p *jsonlite.Parser, d *sim.Decision) error {
	return p.Object(func(key []byte) error {
		var err error
		switch string(key) {
		case "launch":
			var n int64
			n, err = p.Int()
			d.Launch = int(n)
		case "releases":
			out := d.Releases[:0]
			isArray := false
			isArray, err = p.Array(func() error {
				if len(out) < cap(out) {
					out = out[:len(out)+1]
				} else {
					out = append(out, sim.ReleaseOrder{})
				}
				return parseReleaseOrder(p, &out[len(out)-1])
			})
			if !isArray && err == nil {
				d.Releases = nil
				return nil
			}
			if out == nil && isArray {
				out = []sim.ReleaseOrder{}
			}
			d.Releases = out
		default:
			_, err = p.SkipValue()
		}
		return err
	})
}

func parseReleaseOrder(p *jsonlite.Parser, r *sim.ReleaseOrder) error {
	return p.Object(func(key []byte) error {
		var err error
		switch string(key) {
		case "instance":
			var n int64
			n, err = p.Int()
			r.Instance = cloud.InstanceID(n)
		case "at_boundary":
			r.AtBoundary, err = p.Bool()
		default:
			_, err = p.SkipValue()
		}
		return err
	})
}

func parsePredictions(p *jsonlite.Parser, dst []core.PredictionState) ([]core.PredictionState, error) {
	out := dst[:0]
	isArray, err := p.Array(func() error {
		if len(out) < cap(out) {
			out = out[:len(out)+1]
		} else {
			out = append(out, core.PredictionState{})
		}
		return parsePrediction(p, &out[len(out)-1])
	})
	if !isArray && err == nil {
		return nil, nil
	}
	if out == nil && isArray {
		out = []core.PredictionState{}
	}
	return out, err
}

func parsePrediction(p *jsonlite.Parser, ps *core.PredictionState) error {
	return p.Object(func(key []byte) error {
		var err error
		switch string(key) {
		case "task":
			var n int64
			n, err = p.Int()
			ps.Task = dag.TaskID(n)
		case "stage":
			var n int64
			n, err = p.Int()
			ps.Stage = dag.StageID(n)
		case "estimated_exec_s":
			var f float64
			f, err = p.Float()
			ps.Estimated = simtime.Duration(f)
		case "policy":
			ps.Policy, err = p.String()
		case "at_s":
			var f float64
			f, err = p.Float()
			ps.At = simtime.Time(f)
		default:
			_, err = p.SkipValue()
		}
		return err
	})
}
