package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// Store errors.
var (
	// ErrMaxSessions is returned by Create when the store is full; the API
	// maps it to 429.
	ErrMaxSessions = errors.New("service: session limit reached")
	// ErrNotFound is returned for unknown session IDs; the API maps it
	// to 404.
	ErrNotFound = errors.New("service: session not found")
	// ErrDuplicateID is returned by CreateWithID and Insert when the ID is
	// already hosted; shard mode treats it as an idempotent-create signal.
	ErrDuplicateID = errors.New("service: session id already exists")
)

// Session is one hosted controller with its workflow. The session mutex
// serializes Plan and State calls — controllers are single-threaded MAPE
// loops — while different sessions plan fully in parallel.
type Session struct {
	ID       string
	Policy   string
	Workflow *dag.Workflow
	// Tenant, when non-empty, names the tenant this session was admitted
	// under; the registry releases its slot when the session goes away.
	// Set once at create/recovery, before the session is routable.
	Tenant string
	// DeadlineS is the session's soft deadline on its run clock (seconds,
	// 0 = none); plan handling flags a deadline miss when a snapshot passes
	// it with tasks remaining.
	DeadlineS float64

	// missRecorded latches the one-shot deadline-miss observation above.
	// Guarded by mu.
	missRecorded bool

	// mu guards ctrl and the planning state below (controllers keep
	// mutable run state).
	mu   sync.Mutex
	ctrl sim.Controller
	// lastSeq/lastResp are the exactly-once plan cache: a retried request
	// bearing lastSeq is answered with lastResp instead of re-planning.
	lastSeq  int64
	lastResp *PlanResponse
	// fallback answers plan requests when ctrl panics (lazily built).
	fallback sim.Controller
	// wal is the session's crash-recovery journal (nil when disabled).
	wal *journal
	// gone marks a session that was exported to a peer or fenced out by a
	// newer adoption: a handler that raced the handoff and already holds a
	// reference must answer 503 instead of releasing a decision this
	// shard can no longer journal authoritatively.
	gone bool
	// snapScratch is the plan handler's decode target; reusing it keeps
	// the per-plan task-record array out of the allocator. Guarded by mu.
	snapScratch monitor.Snapshot

	createdAt time.Time
	// lastUsed is unix nanoseconds, written on every API touch; atomic so
	// the janitor can scan without taking every session's mutex.
	lastUsed atomic.Int64
	plans    atomic.Int64
}

// Controller runs fn with exclusive access to the session's controller and
// returns fn's result. All controller access must go through it.
func (s *Session) Controller(fn func(ctrl sim.Controller) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.ctrl)
}

// resetSnapScratch returns the session's scratch snapshot zeroed for a fresh
// decode. The Tasks backing array is kept (zeroed to full capacity first, so
// json.Unmarshal's element reuse can never leak a previous interval's record
// fields into one the new body leaves partial); everything else starts nil
// because those fields are small and may hold inner slices of their own.
// The caller must hold s.mu.
func (s *Session) resetSnapScratch() *monitor.Snapshot {
	tasks := s.snapScratch.Tasks[:cap(s.snapScratch.Tasks)]
	clear(tasks)
	s.snapScratch = monitor.Snapshot{Tasks: tasks[:0]}
	return &s.snapScratch
}

// setWAL attaches the session's journal.
func (s *Session) setWAL(j *journal) {
	s.mu.Lock()
	s.wal = j
	s.mu.Unlock()
}

// takeWAL detaches and returns the session's journal (nil when absent).
func (s *Session) takeWAL() *journal {
	s.mu.Lock()
	j := s.wal
	s.wal = nil
	s.mu.Unlock()
	return j
}

// TenantTag returns the session's tenant identity (empty when untagged).
// Tenant is written once at create/recovery; the mutex makes the write
// visible to handlers that picked the session up concurrently.
func (s *Session) TenantTag() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Tenant
}

// CreatedAt returns the session creation time.
func (s *Session) CreatedAt() time.Time { return s.createdAt }

// LastUsed returns the time of the last API touch.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// Plans returns the number of plan requests served.
func (s *Session) Plans() int64 { return s.plans.Load() }

// Store is a concurrency-safe session registry with a capacity cap and
// idle-TTL eviction.
type Store struct {
	now func() time.Time
	max int

	mu       sync.Mutex
	sessions map[string]*Session
}

// NewStore returns a store holding at most max sessions (0 = unbounded).
// now supplies the clock; tests substitute a fake one.
func NewStore(max int, now func() time.Time) *Store {
	if now == nil {
		now = time.Now
	}
	return &Store{now: now, max: max, sessions: make(map[string]*Session)}
}

// newSessionID returns an opaque 128-bit hex ID.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// NewSessionID returns a fresh opaque session ID in the store's format. The
// cluster router draws IDs itself so it can consistent-hash a session onto a
// shard before the create request is forwarded.
func NewSessionID() (string, error) { return newSessionID() }

// ValidSessionID reports whether id is acceptable as an externally assigned
// session ID: non-empty, bounded, and safe to embed in a journal file name.
func ValidSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Create registers a new session hosting ctrl for wf. It fails with
// ErrMaxSessions when the store is at capacity.
func (st *Store) Create(policy string, wf *dag.Workflow, ctrl sim.Controller) (*Session, error) {
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	now := st.now()
	s := &Session{ID: id, Policy: policy, Workflow: wf, ctrl: ctrl, createdAt: now}
	s.lastUsed.Store(now.UnixNano())

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.max > 0 && len(st.sessions) >= st.max {
		return nil, ErrMaxSessions
	}
	for {
		if _, taken := st.sessions[s.ID]; !taken {
			break
		}
		// 128-bit collisions are cosmically unlikely; retry regardless.
		if s.ID, err = newSessionID(); err != nil {
			return nil, err
		}
	}
	st.sessions[s.ID] = s
	return s, nil
}

// NewDetached builds a session that is NOT yet visible in the store: journal
// recovery and adoption replay the WAL into a detached session first, then
// Insert it, so a half-replayed controller can never answer live requests.
func (st *Store) NewDetached(id, policy string, wf *dag.Workflow, ctrl sim.Controller, createdAt time.Time) *Session {
	s := &Session{ID: id, Policy: policy, Workflow: wf, ctrl: ctrl, createdAt: createdAt}
	s.lastUsed.Store(st.now().UnixNano())
	return s
}

// Insert makes a detached session routable. It fails with ErrMaxSessions at
// capacity and ErrDuplicateID when the ID is already hosted.
func (st *Store) Insert(s *Session) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.max > 0 && len(st.sessions) >= st.max {
		return ErrMaxSessions
	}
	if _, taken := st.sessions[s.ID]; taken {
		return fmt.Errorf("%w: %s", ErrDuplicateID, s.ID)
	}
	st.sessions[s.ID] = s
	return nil
}

// CreateWithID registers a session under an externally assigned ID (the
// cluster router's consistent-hash placement). It fails with ErrDuplicateID
// when the ID is already hosted — the caller decides whether that is an
// idempotent retry or a protocol violation.
func (st *Store) CreateWithID(id, policy string, wf *dag.Workflow, ctrl sim.Controller) (*Session, error) {
	s := st.NewDetached(id, policy, wf, ctrl, st.now())
	if err := st.Insert(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Get returns the session and refreshes its idle timer.
func (st *Store) Get(id string) (*Session, error) {
	st.mu.Lock()
	s, ok := st.sessions[id]
	st.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	s.lastUsed.Store(st.now().UnixNano())
	return s, nil
}

// Delete removes the session and its journal. An in-flight plan holding the
// session mutex finishes normally; the session is simply no longer routable.
func (st *Store) Delete(id string) error {
	st.mu.Lock()
	s, ok := st.sessions[id]
	if ok {
		delete(st.sessions, id)
	}
	st.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.takeWAL().close(true)
	return nil
}

// Detach removes the session from the table without touching its journal
// and returns it (nil when absent). The cluster export path uses it: the
// caller takes over the session's WAL file so a peer can adopt it.
func (st *Store) Detach(id string) *Session {
	st.mu.Lock()
	s := st.sessions[id]
	delete(st.sessions, id)
	st.mu.Unlock()
	return s
}

// IDs snapshots the hosted session IDs (cluster rebalancing lists them to
// compute which sessions a topology change moves).
func (st *Store) IDs() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.sessions))
	for id := range st.sessions {
		out = append(out, id)
	}
	return out
}

// Len returns the number of live sessions.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// EvictIdle removes every session idle for longer than ttl and returns how
// many were evicted. A non-positive ttl disables eviction.
func (st *Store) EvictIdle(ttl time.Duration) int {
	return len(st.EvictIdleSessions(ttl))
}

// EvictIdleSessions is EvictIdle returning the evicted sessions themselves,
// so the caller can release their tenant slots.
func (st *Store) EvictIdleSessions(ttl time.Duration) []*Session {
	if ttl <= 0 {
		return nil
	}
	cutoff := st.now().Add(-ttl).UnixNano()
	st.mu.Lock()
	var evicted []*Session
	for id, s := range st.sessions {
		if s.lastUsed.Load() < cutoff {
			delete(st.sessions, id)
			evicted = append(evicted, s)
		}
	}
	st.mu.Unlock()
	for _, s := range evicted {
		s.takeWAL().close(true)
	}
	return evicted
}
