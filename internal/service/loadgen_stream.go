package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dagio"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/workloads"
)

// Stream-mode load generation: instead of the classic fixed-N model — every
// session created up front, all lifetimes starting together — sessions are
// submitted by a multi-tenant arrival stream (internal/tenancy). Each arrival
// creates a tenant-tagged session at its (time-compressed) arrival instant
// and runs a heterogeneous workflow drawn by the stream, so the daemon sees
// overlapping lifetimes, per-tenant admission pressure, and budget throttling
// the way the multi-run simulator does. A create refused with
// tenant_throttled is retried until admitted: the stream drops no sessions,
// it queues them — mirroring the simulator arbiter's deferred queue.

// streamDefaults fills the stream-mode fields of a LoadgenConfig.
func (cfg *LoadgenConfig) streamDefaults() {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 100
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 3
	}
	if cfg.ArrivalRatePerHour <= 0 {
		cfg.ArrivalRatePerHour = 24
	}
	if cfg.TimeCompression <= 0 {
		// 1 simulated hour of arrival spacing ≈ 1 wall second.
		cfg.TimeCompression = 3600
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = cfg.Sessions
	}
	if cfg.Policy == "" {
		cfg.Policy = "wire"
	}
}

// streamFor materializes the arrival stream the run will replay: the explicit
// trace when set, a generated stream otherwise.
func (cfg *LoadgenConfig) streamFor() (*tenancy.Stream, error) {
	if cfg.Stream != nil {
		if len(cfg.Stream.Arrivals) == 0 {
			return nil, fmt.Errorf("loadgen: stream replay with no arrivals")
		}
		return cfg.Stream, nil
	}
	keys := cfg.StreamKeys
	if len(keys) == 0 && cfg.WorkflowKey != "" {
		keys = []string{cfg.WorkflowKey}
	}
	return tenancy.Generate(tenancy.StreamConfig{
		Seed:          cfg.SeedBase,
		Process:       cfg.Arrivals,
		N:             cfg.Sessions,
		Tenants:       cfg.Tenants,
		RatePerHour:   cfg.ArrivalRatePerHour,
		Keys:          keys,
		Slots:         cfg.Cloud.SlotsPerInstance,
		LagS:          float64(cfg.Cloud.LagTime),
		ChargingUnitS: float64(cfg.Cloud.ChargingUnit),
	})
}

// sessionSpec clones the controller spec for one arrival: the deadline policy
// races each arrival's own deadline unless the caller pinned one.
func (cfg *LoadgenConfig) sessionSpec(arr tenancy.Arrival) *ControllerSpec {
	if cfg.Policy != "deadline" {
		return cfg.Controller
	}
	spec := ControllerSpec{}
	if cfg.Controller != nil {
		spec = *cfg.Controller
	}
	if spec.Deadline <= 0 {
		spec.Deadline = arr.DeadlineS
	}
	return &spec
}

// loadgenStream runs the arrival-stream mode of Loadgen.
func loadgenStream(ctx context.Context, cfg LoadgenConfig) (*LoadgenResult, error) {
	cfg.streamDefaults()
	if cfg.Chaos != nil && cfg.Chaos.Active() {
		return nil, fmt.Errorf("loadgen: chaos injection is not supported in arrival-stream mode")
	}
	if err := cfg.Cloud.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	stream, err := cfg.streamFor()
	if err != nil {
		return nil, err
	}
	if _, err := NewPolicyController(cfg.Policy, cfg.Controller); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	tenants := stream.Tenants()
	for _, name := range tenants {
		spec := TenantSpec{Name: name, BudgetUnits: cfg.TenantBudget, MaxActive: cfg.TenantMaxActive}
		if _, err := cfg.Client.CreateTenant(ctx, spec); err != nil {
			return nil, fmt.Errorf("loadgen: registering tenant %s: %w", name, err)
		}
	}

	res := &LoadgenResult{Sessions: len(stream.Arrivals), Tenants: len(tenants)}
	var mu sync.Mutex // guards res, latencies, done
	var latencies []float64
	done := 0
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		res.Failed++
		if len(res.Errors) < 5 {
			res.Errors = append(res.Errors, fmt.Sprintf("arrival %d: %v", i, err))
		}
	}
	finish := func() {
		mu.Lock()
		done++
		d, total := done, len(stream.Arrivals)
		mu.Unlock()
		if cfg.Progress != nil {
			cfg.Progress(d, total)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	prev := 0.0
dispatch:
	for idx := range stream.Arrivals {
		arr := stream.Arrivals[idx]
		gap := (float64(arr.Time) - prev) / cfg.TimeCompression
		prev = float64(arr.Time)
		if gap > 0 {
			select {
			case <-time.After(time.Duration(gap * float64(time.Second))):
			case <-ctx.Done():
				break dispatch
			}
		}
		wg.Add(1)
		go func(i int, arr tenancy.Arrival) {
			defer wg.Done()
			defer finish()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				fail(i, ctx.Err())
				return
			}
			defer func() { <-sem }()
			cfg.runStreamSession(ctx, i, arr, res, &mu, &latencies, fail)
		}(idx, arr)
	}
	wg.Wait()

	res.Retries += cfg.Client.Retries()
	res.Wall = time.Since(start)
	if s := res.Wall.Seconds(); s > 0 {
		res.PlansPerSec = float64(res.Plans) / s
	}
	res.Latency = SummarizeLatencies(latencies)

	// The daemon's ledger is authoritative for misses and spend.
	for _, name := range tenants {
		info, err := cfg.Client.Tenant(ctx, name)
		if err != nil {
			continue
		}
		res.DeadlineMisses += info.DeadlineMisses
		res.TenantSpendUnits += info.SpendUnits
	}
	return res, nil
}

// runStreamSession creates and runs one arrival's session, retrying
// tenant-throttled creates until the daemon admits it.
func (cfg *LoadgenConfig) runStreamSession(ctx context.Context, i int, arr tenancy.Arrival,
	res *LoadgenResult, mu *sync.Mutex, latencies *[]float64, fail func(int, error)) {
	run, ok := workloads.ByKey(arr.WorkflowKey)
	if !ok {
		fail(i, fmt.Errorf("unknown workflow key %q", arr.WorkflowKey))
		return
	}
	wf := run.Generate(arr.WorkflowSeed)
	simCfg := sim.Config{Cloud: cfg.Cloud, Seed: arr.WorkflowSeed}
	if cfg.Noise > 0 {
		simCfg.Interference = dist.NewLognormalFromMean(1, cfg.Noise)
	}
	if cfg.Policy == "full-site" {
		simCfg.InitialInstances = cfg.Cloud.MaxInstances
	}
	spec := cfg.sessionSpec(arr)
	req := CreateSessionRequest{
		Workflow:   dagio.Encode(wf),
		Policy:     cfg.Policy,
		Controller: spec,
		Tenant:     arr.Tenant,
		DeadlineS:  arr.DeadlineS,
	}

	var rc *RemoteController
	for {
		var err error
		rc, err = NewRemoteController(ctx, cfg.Client, req)
		if err == nil {
			break
		}
		var ae *APIError
		if errors.As(err, &ae) && ae.Code == CodeTenantThrottled {
			// Back-pressure, not failure: the tenant's budget or session cap
			// is exhausted and releases as its sessions finish. Honor the
			// Retry-After floor but keep the loop tight enough for
			// time-compressed runs.
			mu.Lock()
			res.Throttled++
			mu.Unlock()
			sleep := 200 * time.Millisecond
			if ae.RetryAfter > sleep {
				sleep = ae.RetryAfter
			}
			select {
			case <-time.After(sleep):
				continue
			case <-ctx.Done():
				fail(i, fmt.Errorf("create session: %w", ctx.Err()))
				return
			}
		}
		fail(i, fmt.Errorf("create session: %w", err))
		return
	}
	if !cfg.RetainSessions {
		defer rc.Close()
	}
	rc.SetLatencyObserver(func(d time.Duration) {
		mu.Lock()
		*latencies = append(*latencies, float64(d)/float64(time.Millisecond))
		mu.Unlock()
	})

	remoteTee := &decisionTee{inner: rc}
	remote, err := sim.Run(wf, remoteTee, simCfg)
	if err != nil {
		fail(i, fmt.Errorf("remote-planned run: %w", err))
		return
	}
	if err := rc.Err(); err != nil {
		fail(i, fmt.Errorf("plan transport: %w", err))
		return
	}

	mismatch := ""
	if cfg.Verify {
		ctrl, err := NewPolicyController(cfg.Policy, spec)
		if err != nil {
			fail(i, err)
			return
		}
		localTee := &decisionTee{inner: ctrl}
		local, err := sim.Run(run.Generate(arr.WorkflowSeed), localTee, simCfg)
		if err != nil {
			fail(i, fmt.Errorf("in-process twin run: %w", err))
			return
		}
		if d := diffDecisionStreams(remoteTee.decs, localTee.decs); d != "" {
			mismatch = "decision streams differ: " + d
		} else if d := diffResults(remote, local); d != "" {
			mismatch = "remote/local mismatch: " + d
		}
	}

	mu.Lock()
	res.Completed++
	if mismatch != "" {
		res.Mismatched++
		if len(res.Errors) < 5 {
			res.Errors = append(res.Errors, fmt.Sprintf("arrival %d: %s", i, mismatch))
		}
	}
	res.Plans += int64(remote.Decisions)
	res.Decisions += int64(remote.Decisions)
	res.DegradedPlans += rc.Degraded()
	mu.Unlock()
}
