package service

import (
	"encoding/json"

	"repro/internal/exec"
	"repro/internal/sim"
)

// LiveControllerFactory adapts the service's policy registry to the live
// execution plane's controller factory: the opaque tuning blob of a live-run
// create request is this package's ControllerSpec.
func LiveControllerFactory(policy string, spec json.RawMessage) (sim.Controller, error) {
	var cs *ControllerSpec
	if len(spec) > 0 {
		cs = new(ControllerSpec)
		if err := json.Unmarshal(spec, cs); err != nil {
			return nil, err
		}
	}
	return NewPolicyController(policy, cs)
}

// Live exposes the server's live-run registry (nil when disabled).
func (s *Server) Live() *exec.Registry { return s.live }
