// Package service hosts WIRE controllers behind a JSON HTTP API: the
// controller-as-a-service daemon of cmd/wire-serve.
//
// The paper's MAPE loop is substrate-agnostic — it consumes monitoring
// snapshots and emits scaling decisions (§III-B/§III-D) — so a controller
// does not have to live inside the process that executes the workflow. This
// package keeps many concurrent controller sessions in a capacity-capped,
// TTL-evicted store and serves one pure request/response endpoint per MAPE
// phase:
//
//	POST   /v1/sessions            create a session (workflow + policy)
//	POST   /v1/sessions/{id}/plan  snapshot in, decision + predictions out
//	GET    /v1/sessions/{id}/state WIRE run state (prediction wavefront)
//	DELETE /v1/sessions/{id}       drop the session
//	GET    /healthz                liveness
//	GET    /metrics                counters and latency quantiles
//
// The same package ships the HTTP client, a RemoteController adapter that
// lets internal/sim execute against a remote daemon, and the load generator
// behind wire-serve's loadgen mode.
package service

import (
	"context"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/exec"
)

// Config tunes the daemon.
type Config struct {
	// MaxSessions caps concurrently hosted sessions (default 1024;
	// negative = unbounded).
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long (default 30m;
	// negative disables eviction).
	IdleTTL time.Duration
	// JanitorInterval is the eviction sweep period (default 1m).
	JanitorInterval time.Duration
	// ShutdownGrace bounds the drain of in-flight requests on shutdown
	// (default 10s).
	ShutdownGrace time.Duration
	// JournalDir, when set, enables the crash-recovery journal: every
	// session appends its lifecycle to <dir>/<id>.wal and a restarted
	// daemon rebuilds its session store by replay (see journal.go). Live
	// runs journal their agent events to <dir>/live-*.jsonl. Empty
	// disables journaling.
	JournalDir string
	// LiveMaxRuns caps concurrently tracked live execution runs
	// (default 8; negative disables the live plane entirely).
	LiveMaxRuns int
	// ShardMode runs this daemon as one session shard of a cluster behind a
	// wire-serve router: create requests may carry a router-assigned session
	// ID (SessionIDHeader, idempotent on retry) and the journal-adoption
	// endpoint POST /v1/admin/adopt is mounted so the router can hand this
	// shard a dead peer's journal directory for failover.
	ShardMode bool
	// DrainTimeout bounds how long shutdown waits for in-flight agent
	// leases to complete or be reclaimed before the HTTP server is torn
	// down (default 30s). HTTP connection draining alone would abandon
	// agents mid-task; this flag is the lease-level counterpart.
	DrainTimeout time.Duration
	// FsyncMode controls when session WAL appends reach stable storage:
	// FsyncRecord syncs every append, FsyncPerInterval syncs at most once
	// per FsyncInterval (plus on close), FsyncOff never syncs (the OS
	// decides). Default FsyncPerInterval: the fenced-copy handoff protocol
	// is unaffected (in-process reads see unsynced writes), only the
	// power-loss window changes. An unknown value falls back to the default.
	FsyncMode string
	// FsyncInterval is the per-interval sync period (default 100ms).
	FsyncInterval time.Duration
	// ProbeClient issues the outbound relay probes of POST /v1/admin/probe
	// (shard mode): a router suspecting a shard dead asks its peers to
	// confirm through their own network paths. Default: a plain client.
	// Chaos harnesses swap in a fault-injecting transport so an in-process
	// partition also severs the peer->suspect edges.
	ProbeClient *http.Client
	// Middleware, when set, wraps the HTTP handler returned by Handler()
	// (and therefore everything Serve serves). The real-process partition
	// harness uses it to drop router-tagged requests for a window,
	// realizing a one-way link cut without touching the network stack.
	Middleware func(http.Handler) http.Handler
	// Clock overrides the wall clock (tests).
	Clock func() time.Time
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0 // unbounded store
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 30 * time.Minute
	}
	if c.IdleTTL < 0 {
		c.IdleTTL = 0 // disables eviction
	}
	if c.JanitorInterval <= 0 {
		c.JanitorInterval = time.Minute
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.LiveMaxRuns == 0 {
		c.LiveMaxRuns = 8
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	switch c.FsyncMode {
	case FsyncRecord, FsyncPerInterval, FsyncOff:
	default:
		c.FsyncMode = FsyncPerInterval
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.ProbeClient == nil {
		c.ProbeClient = &http.Client{}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the controller-as-a-service daemon.
type Server struct {
	cfg     Config
	store   *Store
	metrics *Metrics
	tenants *TenantRegistry
	mux     *http.ServeMux
	live    *exec.Registry
	start   time.Time
	// epoch is the highest cluster fencing epoch this shard has witnessed
	// on an adopt/export request (see handoff.go). A fresh process starts
	// at zero and learns the current epoch from its first handoff.
	epoch atomic.Int64
	// draining flips when shutdown begins; /readyz answers 503 from then on
	// so a router's membership probe steers traffic away before the
	// listener closes.
	draining atomic.Bool
	// replaying counts in-flight journal adoptions; /readyz answers 503
	// while any replay runs, so a probe can't rejoin a shard that is still
	// rebuilding sessions.
	replaying atomic.Int32
}

// New assembles a server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   NewStore(cfg.MaxSessions, cfg.Clock),
		metrics: NewMetrics(cfg.Clock()),
		tenants: NewTenantRegistry(),
		start:   cfg.Clock(),
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			s.cfg.Logf("wire-serve: journaling disabled: %v", err)
			s.cfg.JournalDir = ""
		} else {
			s.recoverJournals()
		}
	}
	mux := http.NewServeMux()
	mux.Handle("POST /v1/sessions", s.instrument("create_session", s.handleCreateSession))
	mux.Handle("POST /v1/sessions/{id}/plan", s.instrument("plan", s.handlePlan))
	mux.Handle("GET /v1/sessions/{id}/state", s.instrument("session_state", s.handleSessionState))
	mux.Handle("DELETE /v1/sessions/{id}", s.instrument("delete_session", s.handleDeleteSession))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.Handle("POST /v1/tenants", s.instrument("create_tenant", s.handleCreateTenant))
	mux.Handle("GET /v1/tenants", s.instrument("tenant_list", s.handleListTenants))
	mux.Handle("GET /v1/tenants/{name}", s.instrument("tenant_state", s.handleGetTenant))
	if cfg.ShardMode {
		mux.Handle("POST /v1/admin/adopt", s.instrument("adopt", s.handleAdopt))
		mux.Handle("POST /v1/admin/export", s.instrument("export", s.handleExport))
		mux.Handle("GET /v1/admin/sessions", s.instrument("session_list", s.handleListSessions))
		mux.Handle("POST /v1/admin/probe", s.instrument("probe", s.handleProbe))
	}
	if cfg.LiveMaxRuns > 0 {
		live, err := exec.NewRegistry(exec.RegistryConfig{
			Factory:    LiveControllerFactory,
			MaxRuns:    cfg.LiveMaxRuns,
			JournalDir: s.cfg.JournalDir,
			Logf:       cfg.Logf,
		})
		if err != nil {
			// Only reachable with a nil factory; keep New's signature.
			panic(err)
		}
		live.Mount(mux)
		s.live = live
		if s.cfg.JournalDir != "" {
			if n, err := live.Recover(); err != nil {
				s.cfg.Logf("wire-serve: live run recovery: %v", err)
			} else if n > 0 {
				s.cfg.Logf("wire-serve: recovered %d live run(s) from journal", n)
			}
		}
	}
	s.mux = mux
	return s
}

func (s *Server) now() time.Time { return s.cfg.Clock() }

// Store exposes the session store (tests and embedding callers).
func (s *Server) Store() *Store { return s.store }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tenants exposes the tenant registry (tests and embedding callers).
func (s *Server) Tenants() *TenantRegistry { return s.tenants }

// Epoch returns the highest cluster fencing epoch this shard has seen.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// advanceEpoch ratchets the shard's fencing epoch up to e. It reports false
// when e is positive but BELOW an epoch already witnessed — the request
// comes from a stale router view and must be rejected. e == 0 (legacy
// unfenced handoff) is always accepted and never moves the ratchet.
func (s *Server) advanceEpoch(e int64) bool {
	if e <= 0 {
		return true
	}
	for {
		cur := s.epoch.Load()
		if e < cur {
			return false
		}
		if e == cur || s.epoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// Handler returns the daemon's HTTP handler; it is safe for concurrent use.
func (s *Server) Handler() http.Handler {
	if s.cfg.Middleware != nil {
		return s.cfg.Middleware(s.mux)
	}
	return s.mux
}

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		s.metrics.Observe(name, time.Since(t0), sw.status >= 400)
	})
}

// EvictIdleNow runs one eviction sweep and returns the number of sessions
// dropped. The janitor calls it on every tick; tests call it directly.
func (s *Server) EvictIdleNow() int {
	evicted := s.store.EvictIdleSessions(s.cfg.IdleTTL)
	for _, sess := range evicted {
		if sess.Tenant != "" {
			s.tenants.Release(sess.Tenant)
		}
	}
	n := len(evicted)
	s.metrics.SessionsEvicted(n)
	if n > 0 {
		s.cfg.Logf("wire-serve: evicted %d idle session(s), %d live", n, s.store.Len())
	}
	return n
}

// janitor sweeps idle sessions until ctx is canceled.
func (s *Server) janitor(ctx context.Context) {
	if s.cfg.IdleTTL <= 0 {
		return
	}
	t := time.NewTicker(s.cfg.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.EvictIdleNow()
		}
	}
}

// Serve runs the daemon on the listener until ctx is canceled, then drains
// in-flight requests (bounded by ShutdownGrace) and returns. The janitor
// goroutine runs for the lifetime of the call.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	janCtx, janCancel := context.WithCancel(ctx)
	defer janCancel()
	go s.janitor(janCtx)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Readiness drops first: the router's probe steers new traffic away
		// while the drain below still answers in-flight work.
		s.draining.Store(true)
		// Drain live agent leases first, while the API is still up: agents
		// must be able to report (or time out and be reclaimed) before the
		// HTTP server stops accepting their requests.
		if s.live != nil {
			s.cfg.Logf("wire-serve: shutting down, draining in-flight agent leases (timeout %v)", s.cfg.DrainTimeout)
			drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
			if err := s.live.Drain(drainCtx); err != nil {
				s.cfg.Logf("wire-serve: %v", err)
			}
			cancel()
		}
		s.cfg.Logf("wire-serve: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // Serve has returned http.ErrServerClosed
		return nil
	}
}
