package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/dist"
	"repro/internal/monitor"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/workloads"
)

// LoadgenConfig drives N concurrent simulated workflows against a daemon:
// each session runs internal/sim as the client-side substrate with a
// RemoteController, proving the simulator can execute against the service
// instead of in-process.
type LoadgenConfig struct {
	// Client addresses the daemon under test. Required.
	Client *Client
	// Sessions is the number of workflows to run (default 100).
	Sessions int
	// Concurrency bounds simultaneously running sessions (default:
	// Sessions, i.e. all concurrent).
	Concurrency int

	// Policy and Controller configure every session (default "wire").
	Policy     string
	Controller *ControllerSpec

	// WorkflowKey picks a Table I catalogue run; Workflow overrides it
	// with an arbitrary per-seed generator. One of the two is required.
	WorkflowKey string
	Workflow    func(seed int64) *dag.Workflow

	// Cloud is the simulated site every session runs on. Required.
	Cloud cloud.Config
	// Noise, when positive, applies lognormal interference with this
	// sigma to each task attempt.
	Noise float64
	// SeedBase offsets per-session seeds: session i uses SeedBase+i, so
	// every session drives a distinct workflow instance and decision
	// stream — cross-session contamination cannot cancel out.
	SeedBase int64

	// Chaos, when non-nil and active, injects the plan's faults: each
	// session gets a private fault-injecting client (network faults,
	// stream = session seed) and a private cloud-fault injector for its
	// simulated site. Requires a retry policy; Retry defaults to
	// DefaultChaosRetry when unset.
	Chaos *chaos.Plan
	// Retry overrides the per-session clients' retry policy (chaos mode
	// only; without Chaos the shared Client is used as configured).
	Retry *RetryPolicy

	// Verify re-runs every session in-process with an identical fresh
	// controller and requires the decision streams byte-identical: any
	// lost, duplicated, degraded, or mis-routed plan interval changes the
	// stream and is caught here — under fault injection this is the
	// exactly-once certificate.
	Verify bool

	// RetainSessions skips the DELETE at session end, leaving every WAL on
	// disk. Post-run auditors (internal/audit) need the journals; deletion
	// would remove them. Do not combine with TenantBudget/TenantMaxActive:
	// retained sessions hold their tenant slots forever, so admission
	// starves and the stream hangs.
	RetainSessions bool

	// Arrivals, when set to an arrival-process name (poisson, burst,
	// diurnal), switches to stream mode: sessions are submitted by a
	// multi-tenant arrival stream instead of all at once, each tagged with
	// its tenant and deadline (see loadgen_stream.go). Sessions becomes the
	// stream length; WorkflowKey (or StreamKeys) bounds the workflow draw.
	Arrivals string
	// Stream replays an explicit arrival stream (a trace import) instead of
	// generating one; it implies stream mode.
	Stream *tenancy.Stream
	// Tenants is the number of tenant streams (default 3).
	Tenants int
	// ArrivalRatePerHour is each tenant's mean arrival rate (default 24).
	ArrivalRatePerHour float64
	// TenantBudget, when positive, registers every tenant with this budget
	// in charging units — creates beyond it are throttled and retried.
	TenantBudget int
	// TenantMaxActive, when positive, caps each tenant's concurrently
	// active sessions.
	TenantMaxActive int
	// StreamKeys bounds the per-arrival workflow draw (default: WorkflowKey
	// when set, else the full catalog).
	StreamKeys []string
	// TimeCompression divides simulated inter-arrival gaps to get wall
	// sleeps (default 3600: one simulated hour per wall second).
	TimeCompression float64

	// Progress, when set, is called after each finished session.
	Progress func(done, total int)
}

// DefaultChaosRetry is the retry policy chaos loadgen uses when none is
// given: persistent enough to ride out injected faults and a daemon
// restart, with small delays to keep runs fast.
func DefaultChaosRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       10,
		BaseDelay:         20 * time.Millisecond,
		MaxDelay:          500 * time.Millisecond,
		PerAttemptTimeout: 15 * time.Second,
	}
}

// LoadgenResult summarizes a load-generation run.
type LoadgenResult struct {
	Sessions   int
	Completed  int
	Failed     int
	Mismatched int

	Plans     int64
	Decisions int64
	Wall      time.Duration
	// PlansPerSec is the sustained plan-request throughput.
	PlansPerSec float64
	// Latency summarizes client-observed plan round trips.
	Latency LatencySummary

	// Retries counts HTTP retry attempts across all sessions.
	Retries int64
	// DegradedPlans counts responses served by the daemon's fallback.
	DegradedPlans int64
	// NetFaults aggregates injected network faults (chaos mode).
	NetFaults chaos.Counts
	// CloudFaults aggregates injected cloud faults (chaos mode).
	CloudFaults chaos.CloudCounts

	// Tenants is the number of tenant streams (stream mode).
	Tenants int
	// Throttled counts tenant_throttled create refusals the generator
	// observed and retried; every one was eventually admitted (a throttled
	// session that never got in is counted in Failed instead).
	Throttled int64
	// DeadlineMisses sums the daemon's per-tenant deadline-miss counters
	// after the run (stream mode).
	DeadlineMisses int64
	// TenantSpendUnits sums the daemon's per-tenant metered spend, in
	// charging units (stream mode).
	TenantSpendUnits float64

	// Errors holds the first few failure messages.
	Errors []string
}

// decisionTee records the JSON encoding of every decision a controller
// emits, in order — the byte-level decision stream two runs are compared on.
type decisionTee struct {
	inner sim.Controller
	decs  [][]byte
}

func (t *decisionTee) Name() string { return t.inner.Name() }

func (t *decisionTee) Plan(snap *monitor.Snapshot) sim.Decision {
	d := t.inner.Plan(snap)
	b, _ := json.Marshal(d)
	t.decs = append(t.decs, b)
	return d
}

// diffDecisionStreams returns "" when the two streams are byte-identical.
func diffDecisionStreams(remote, local [][]byte) string {
	if len(remote) != len(local) {
		return fmt.Sprintf("decision count %d != %d", len(remote), len(local))
	}
	for i := range remote {
		if !bytes.Equal(remote[i], local[i]) {
			return fmt.Sprintf("decision %d: %s != %s", i, remote[i], local[i])
		}
	}
	return ""
}

// sessionClient returns the client session i should plan through: the shared
// one normally, or a private fault-injecting one in chaos mode (per-session
// transports keep each fault schedule private to one request stream, so
// concurrency cannot reshuffle it).
func (cfg *LoadgenConfig) sessionClient(stream int64) (*Client, *chaos.Transport) {
	if cfg.Chaos == nil || !cfg.Chaos.Active() {
		return cfg.Client, nil
	}
	tr := cfg.Chaos.Transport(stream, nil)
	retry := DefaultChaosRetry()
	if cfg.Retry != nil {
		retry = cfg.Retry.withDefaults()
	}
	return NewClient(cfg.Client.BaseURL(), WithTransport(tr), WithRetry(retry)), tr
}

// Loadgen runs the load generation and returns the aggregate report. It
// returns an error only for invalid configuration; per-session failures are
// counted in the result. ctx cancellation aborts in-flight sessions.
func Loadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Client == nil {
		return nil, fmt.Errorf("loadgen: Client is required")
	}
	if cfg.Arrivals != "" || cfg.Stream != nil {
		return loadgenStream(ctx, cfg)
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 100
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = cfg.Sessions
	}
	if cfg.Policy == "" {
		cfg.Policy = "wire"
	}
	gen := cfg.Workflow
	if gen == nil {
		if cfg.WorkflowKey == "" {
			return nil, fmt.Errorf("loadgen: one of WorkflowKey or Workflow is required")
		}
		run, ok := workloads.ByKey(cfg.WorkflowKey)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown workflow key %q (known: %v)", cfg.WorkflowKey, workloads.Keys())
		}
		gen = run.Generate
	}
	if err := cfg.Cloud.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
	}
	// Validate the policy spec once up front, not N times concurrently.
	if _, err := NewPolicyController(cfg.Policy, cfg.Controller); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	res := &LoadgenResult{Sessions: cfg.Sessions}
	var mu sync.Mutex // guards res and latencies
	var latencies []float64
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		res.Failed++
		if len(res.Errors) < 5 {
			res.Errors = append(res.Errors, fmt.Sprintf("session %d: %v", i, err))
		}
	}

	start := time.Now()
	parallel.ForEach(cfg.Sessions, parallel.Config{
		Workers:    cfg.Concurrency,
		OnProgress: cfg.Progress,
	}, func(i int) error {
		seed := cfg.SeedBase + int64(i)
		wf := gen(seed)
		simCfg := sim.Config{Cloud: cfg.Cloud, Seed: seed}
		if cfg.Noise > 0 {
			simCfg.Interference = dist.NewLognormalFromMean(1, cfg.Noise)
		}
		if cfg.Policy == "full-site" {
			simCfg.InitialInstances = cfg.Cloud.MaxInstances
		}
		client, tr := cfg.sessionClient(seed)
		var cloudFaults *chaos.CloudFaults
		if cfg.Chaos != nil && cfg.Chaos.Active() {
			cloudFaults = cfg.Chaos.CloudFaults(seed)
			simCfg.Faults = cloudFaults
		}

		rc, err := NewRemoteController(ctx, client, CreateSessionRequest{
			Workflow:   dagio.Encode(wf),
			Policy:     cfg.Policy,
			Controller: cfg.Controller,
		})
		if err != nil {
			fail(i, fmt.Errorf("create session: %w", err))
			return nil
		}
		if !cfg.RetainSessions {
			defer rc.Close()
		}
		rc.SetLatencyObserver(func(d time.Duration) {
			mu.Lock()
			latencies = append(latencies, float64(d)/float64(time.Millisecond))
			mu.Unlock()
		})

		remoteTee := &decisionTee{inner: rc}
		remote, err := sim.Run(wf, remoteTee, simCfg)
		if err != nil {
			fail(i, fmt.Errorf("remote-planned run: %w", err))
			return nil
		}
		if err := rc.Err(); err != nil {
			fail(i, fmt.Errorf("plan transport: %w", err))
			return nil
		}

		mismatch := ""
		if cfg.Verify {
			ctrl, err := NewPolicyController(cfg.Policy, cfg.Controller)
			if err != nil {
				fail(i, err)
				return nil
			}
			localCfg := simCfg
			if cfg.Chaos != nil && cfg.Chaos.Active() {
				// The twin replays the identical cloud-fault stream: the
				// injected faults must perturb both runs the same way.
				localCfg.Faults = cfg.Chaos.CloudFaults(seed)
			}
			localTee := &decisionTee{inner: ctrl}
			local, err := sim.Run(gen(seed), localTee, localCfg)
			if err != nil {
				fail(i, fmt.Errorf("in-process twin run: %w", err))
				return nil
			}
			if d := diffDecisionStreams(remoteTee.decs, localTee.decs); d != "" {
				mismatch = "decision streams differ: " + d
			} else if d := diffResults(remote, local); d != "" {
				mismatch = "remote/local mismatch: " + d
			}
		}

		mu.Lock()
		res.Completed++
		if mismatch != "" {
			res.Mismatched++
			if len(res.Errors) < 5 {
				res.Errors = append(res.Errors, fmt.Sprintf("session %d: %s", i, mismatch))
			}
		}
		res.Plans += int64(remote.Decisions)
		res.Decisions += int64(remote.Decisions)
		res.DegradedPlans += rc.Degraded()
		if client != cfg.Client {
			res.Retries += client.Retries()
		}
		if tr != nil {
			res.NetFaults.Add(tr.Counts())
		}
		if cloudFaults != nil {
			c := cloudFaults.Counts()
			res.CloudFaults.Orders += c.Orders
			res.CloudFaults.Lost += c.Lost
			res.CloudFaults.Duplicated += c.Duplicated
			res.CloudFaults.DOA += c.DOA
			res.CloudFaults.Stragglers += c.Stragglers
		}
		mu.Unlock()
		return nil
	})

	if cfg.Chaos == nil || !cfg.Chaos.Active() {
		res.Retries += cfg.Client.Retries()
	}
	res.Wall = time.Since(start)
	if s := res.Wall.Seconds(); s > 0 {
		res.PlansPerSec = float64(res.Plans) / s
	}
	res.Latency = SummarizeLatencies(latencies)
	return res, nil
}

// diffResults compares the deterministic outcome of a remote-planned run
// with its in-process twin. Identical decision streams yield identical
// event sequences, so every field must match exactly.
func diffResults(remote, local *sim.Result) string {
	switch {
	case remote.Makespan != local.Makespan:
		return fmt.Sprintf("makespan %v != %v", remote.Makespan, local.Makespan)
	case remote.UnitsCharged != local.UnitsCharged:
		return fmt.Sprintf("units charged %d != %d", remote.UnitsCharged, local.UnitsCharged)
	case remote.ChargedSeconds != local.ChargedSeconds:
		return fmt.Sprintf("charged seconds %v != %v", remote.ChargedSeconds, local.ChargedSeconds)
	case remote.Decisions != local.Decisions:
		return fmt.Sprintf("decisions %d != %d", remote.Decisions, local.Decisions)
	case remote.Launches != local.Launches:
		return fmt.Sprintf("launches %d != %d", remote.Launches, local.Launches)
	case remote.Restarts != local.Restarts:
		return fmt.Sprintf("restarts %d != %d", remote.Restarts, local.Restarts)
	case remote.Failures != local.Failures:
		return fmt.Sprintf("failures %d != %d", remote.Failures, local.Failures)
	case remote.OrdersLost != local.OrdersLost:
		return fmt.Sprintf("orders lost %d != %d", remote.OrdersLost, local.OrdersLost)
	case remote.OrdersDuplicated != local.OrdersDuplicated:
		return fmt.Sprintf("orders duplicated %d != %d", remote.OrdersDuplicated, local.OrdersDuplicated)
	case remote.DeadOnArrival != local.DeadOnArrival:
		return fmt.Sprintf("dead on arrival %d != %d", remote.DeadOnArrival, local.DeadOnArrival)
	case len(remote.TaskRuns) != len(local.TaskRuns):
		return fmt.Sprintf("task runs %d != %d", len(remote.TaskRuns), len(local.TaskRuns))
	}
	return ""
}
