package service

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/dist"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// LoadgenConfig drives N concurrent simulated workflows against a daemon:
// each session runs internal/sim as the client-side substrate with a
// RemoteController, proving the simulator can execute against the service
// instead of in-process.
type LoadgenConfig struct {
	// Client addresses the daemon under test. Required.
	Client *Client
	// Sessions is the number of workflows to run (default 100).
	Sessions int
	// Concurrency bounds simultaneously running sessions (default:
	// Sessions, i.e. all concurrent).
	Concurrency int

	// Policy and Controller configure every session (default "wire").
	Policy     string
	Controller *ControllerSpec

	// WorkflowKey picks a Table I catalogue run; Workflow overrides it
	// with an arbitrary per-seed generator. One of the two is required.
	WorkflowKey string
	Workflow    func(seed int64) *dag.Workflow

	// Cloud is the simulated site every session runs on. Required.
	Cloud cloud.Config
	// Noise, when positive, applies lognormal interference with this
	// sigma to each task attempt.
	Noise float64
	// SeedBase offsets per-session seeds: session i uses SeedBase+i, so
	// every session drives a distinct workflow instance and decision
	// stream — cross-session contamination cannot cancel out.
	SeedBase int64

	// Verify re-runs every session in-process with an identical fresh
	// controller and requires identical results: any dropped or
	// mis-routed decision changes the event stream and is caught here.
	Verify bool

	// Progress, when set, is called after each finished session.
	Progress func(done, total int)
}

// LoadgenResult summarizes a load-generation run.
type LoadgenResult struct {
	Sessions   int
	Completed  int
	Failed     int
	Mismatched int

	Plans     int64
	Decisions int64
	Wall      time.Duration
	// PlansPerSec is the sustained plan-request throughput.
	PlansPerSec float64
	// Latency summarizes client-observed plan round trips.
	Latency LatencySummary

	// Errors holds the first few failure messages.
	Errors []string
}

// Loadgen runs the load generation and returns the aggregate report. It
// returns an error only for invalid configuration; per-session failures are
// counted in the result.
func Loadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("loadgen: Client is required")
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 100
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = cfg.Sessions
	}
	if cfg.Policy == "" {
		cfg.Policy = "wire"
	}
	gen := cfg.Workflow
	if gen == nil {
		if cfg.WorkflowKey == "" {
			return nil, fmt.Errorf("loadgen: one of WorkflowKey or Workflow is required")
		}
		run, ok := workloads.ByKey(cfg.WorkflowKey)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown workflow key %q (known: %v)", cfg.WorkflowKey, workloads.Keys())
		}
		gen = run.Generate
	}
	if err := cfg.Cloud.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	// Validate the policy spec once up front, not N times concurrently.
	if _, err := NewPolicyController(cfg.Policy, cfg.Controller); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	res := &LoadgenResult{Sessions: cfg.Sessions}
	var mu sync.Mutex // guards res and latencies
	var latencies []float64
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		res.Failed++
		if len(res.Errors) < 5 {
			res.Errors = append(res.Errors, fmt.Sprintf("session %d: %v", i, err))
		}
	}

	start := time.Now()
	parallel.ForEach(cfg.Sessions, parallel.Config{
		Workers:    cfg.Concurrency,
		OnProgress: cfg.Progress,
	}, func(i int) error {
		seed := cfg.SeedBase + int64(i)
		wf := gen(seed)
		simCfg := sim.Config{Cloud: cfg.Cloud, Seed: seed}
		if cfg.Noise > 0 {
			simCfg.Interference = dist.NewLognormalFromMean(1, cfg.Noise)
		}
		if cfg.Policy == "full-site" {
			simCfg.InitialInstances = cfg.Cloud.MaxInstances
		}

		rc, err := NewRemoteController(cfg.Client, CreateSessionRequest{
			Workflow:   dagio.Encode(wf),
			Policy:     cfg.Policy,
			Controller: cfg.Controller,
		})
		if err != nil {
			fail(i, fmt.Errorf("create session: %w", err))
			return nil
		}
		defer rc.Close()
		rc.SetLatencyObserver(func(d time.Duration) {
			mu.Lock()
			latencies = append(latencies, float64(d)/float64(time.Millisecond))
			mu.Unlock()
		})

		remote, err := sim.Run(wf, rc, simCfg)
		if err != nil {
			fail(i, fmt.Errorf("remote-planned run: %w", err))
			return nil
		}
		if err := rc.Err(); err != nil {
			fail(i, fmt.Errorf("plan transport: %w", err))
			return nil
		}

		mismatch := false
		if cfg.Verify {
			ctrl, err := NewPolicyController(cfg.Policy, cfg.Controller)
			if err != nil {
				fail(i, err)
				return nil
			}
			local, err := sim.Run(gen(seed), ctrl, simCfg)
			if err != nil {
				fail(i, fmt.Errorf("in-process twin run: %w", err))
				return nil
			}
			if d := diffResults(remote, local); d != "" {
				mismatch = true
				mu.Lock()
				if len(res.Errors) < 5 {
					res.Errors = append(res.Errors, fmt.Sprintf("session %d: remote/local mismatch: %s", i, d))
				}
				mu.Unlock()
			}
		}

		mu.Lock()
		res.Completed++
		if mismatch {
			res.Mismatched++
		}
		res.Plans += int64(remote.Decisions)
		res.Decisions += int64(remote.Decisions)
		mu.Unlock()
		return nil
	})

	res.Wall = time.Since(start)
	if s := res.Wall.Seconds(); s > 0 {
		res.PlansPerSec = float64(res.Plans) / s
	}
	res.Latency = SummarizeLatencies(latencies)
	return res, nil
}

// diffResults compares the deterministic outcome of a remote-planned run
// with its in-process twin. Identical decision streams yield identical
// event sequences, so every field must match exactly.
func diffResults(remote, local *sim.Result) string {
	switch {
	case remote.Makespan != local.Makespan:
		return fmt.Sprintf("makespan %v != %v", remote.Makespan, local.Makespan)
	case remote.UnitsCharged != local.UnitsCharged:
		return fmt.Sprintf("units charged %d != %d", remote.UnitsCharged, local.UnitsCharged)
	case remote.ChargedSeconds != local.ChargedSeconds:
		return fmt.Sprintf("charged seconds %v != %v", remote.ChargedSeconds, local.ChargedSeconds)
	case remote.Decisions != local.Decisions:
		return fmt.Sprintf("decisions %d != %d", remote.Decisions, local.Decisions)
	case remote.Launches != local.Launches:
		return fmt.Sprintf("launches %d != %d", remote.Launches, local.Launches)
	case remote.Restarts != local.Restarts:
		return fmt.Sprintf("restarts %d != %d", remote.Restarts, local.Restarts)
	case len(remote.TaskRuns) != len(local.TaskRuns):
		return fmt.Sprintf("task runs %d != %d", len(remote.TaskRuns), len(local.TaskRuns))
	}
	return ""
}
