package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dagio"
)

// flakyTripper fails the first N plan attempts: mode "503" synthesizes a 503
// without delivering the request; mode "drop-response" delivers the request,
// lets the server process it, then reports the response lost — the fault that
// distinguishes at-least-once from exactly-once planning.
type flakyTripper struct {
	next http.RoundTripper
	mode string

	mu    sync.Mutex
	fails int
}

func (f *flakyTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	inject := false
	if strings.HasSuffix(req.URL.Path, "/plan") {
		f.mu.Lock()
		if f.fails > 0 {
			f.fails--
			inject = true
		}
		f.mu.Unlock()
	}
	next := f.next
	if next == nil {
		next = http.DefaultTransport
	}
	if !inject {
		return next.RoundTrip(req)
	}
	switch f.mode {
	case "503":
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("")),
			Request: req,
		}, nil
	case "drop-response":
		resp, err := next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("injected: connection reset after delivery")
	default:
		return nil, fmt.Errorf("flakyTripper: unknown mode %q", f.mode)
	}
}

func retryTestPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestClientRetries5xx pins that transient 5xx responses are retried and the
// request eventually succeeds.
func TestClientRetries5xx(t *testing.T) {
	_, base := newTestServer(t, Config{})
	client := NewClient(base.BaseURL(),
		WithTransport(&flakyTripper{mode: "503", fails: 2}),
		WithRetry(retryTestPolicy()))
	ctx := context.Background()
	wf := smallWorkflow(3)
	info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Plan(ctx, info.ID, 1, readySnapshot(wf))
	if err != nil {
		t.Fatalf("plan through two 503s: %v", err)
	}
	if resp.Iteration != 1 {
		t.Errorf("iteration = %d, want 1", resp.Iteration)
	}
	if got := client.Retries(); got != 2 {
		t.Errorf("client retries = %d, want 2", got)
	}
}

// TestClientRetryLostResponseExactlyOnce is the idempotence certificate at
// the client level: the server processes a plan, the network loses the
// response, the client retries — and the controller must still have advanced
// exactly one interval, with the retried response identical to the lost one.
func TestClientRetryLostResponseExactlyOnce(t *testing.T) {
	srv, base := newTestServer(t, Config{})
	client := NewClient(base.BaseURL(),
		WithTransport(&flakyTripper{mode: "drop-response", fails: 1}),
		WithRetry(retryTestPolicy()))
	ctx := context.Background()
	wf := smallWorkflow(3)
	info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Plan(ctx, info.ID, 1, readySnapshot(wf))
	if err != nil {
		t.Fatalf("plan through lost response: %v", err)
	}
	if resp.Seq != 1 || resp.Iteration != 1 {
		t.Errorf("seq/iteration = %d/%d, want 1/1", resp.Seq, resp.Iteration)
	}
	if got := client.Retries(); got != 1 {
		t.Errorf("client retries = %d, want 1", got)
	}
	state, err := client.State(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if state.Plans != 1 {
		t.Fatalf("controller advanced %d intervals after a retried lost response, want exactly 1", state.Plans)
	}
	md := srv.Metrics().Dump(srv.now(), srv.Store().Len())
	if md.FaultTolerance.RetriesTotal != 1 {
		t.Errorf("server retries_total = %d, want 1 (retry answered from cache)", md.FaultTolerance.RetriesTotal)
	}
}

// TestClientHonorsCallerContext pins that an expired caller context aborts
// the retry loop instead of sleeping through it.
func TestClientHonorsCallerContext(t *testing.T) {
	_, base := newTestServer(t, Config{})
	client := NewClient(base.BaseURL(),
		WithTransport(&flakyTripper{mode: "503", fails: 1 << 30}),
		WithRetry(RetryPolicy{MaxAttempts: 1 << 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	ctx := context.Background()
	wf := smallWorkflow(3)
	info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Plan(cctx, info.ID, 1, readySnapshot(wf))
	if err == nil {
		t.Fatal("plan succeeded through permanent 503s")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop outlived its context by %v", elapsed)
	}
}

// TestClientClampsRetryAfter pins the Retry-After cap: a pathological server
// hint (hours) must not park the retry loop — the sleep floor is clipped to
// MaxRetryAfter, the clip is logged through WithLogf, and the capped value is
// what APIError reports.
func TestClientClampsRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7200") // two hours
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":"recovering","code":%q}`, CodeShardRecovering)
	}))
	defer ts.Close()

	var mu sync.Mutex
	var logged []string
	client := NewClient(ts.URL,
		WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
			MaxDelay: 5 * time.Millisecond, MaxRetryAfter: 20 * time.Millisecond}),
		WithLogf(func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			mu.Unlock()
		}))

	start := time.Now()
	_, err := client.State(context.Background(), "some-session")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("permanent 503 succeeded")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an APIError", err)
	}
	if ae.RetryAfter != 20*time.Millisecond {
		t.Errorf("RetryAfter = %v, want the 20ms cap", ae.RetryAfter)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("retry loop slept %v; the 2h hint was honored, not clipped", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) == 0 || !strings.Contains(logged[0], "clipped") {
		t.Errorf("clip not logged: %q", logged)
	}
}
