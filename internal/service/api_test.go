package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/dist"
	"repro/internal/monitor"
	"repro/internal/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func fanWorkflow() *dag.Workflow {
	b := dag.NewBuilder("fan")
	b.AddStage("prep")
	b.AddStage("fan")
	b.AddStage("merge")
	root := b.AddTask(0, "", 20, 2, 8)
	var fan []dag.TaskID
	for i := 0; i < 12; i++ {
		fan = append(fan, b.AddTask(1, "", 90, 5, 32, root))
	}
	b.AddTask(2, "", 40, 4, 64, fan...)
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return wf
}

var testCloud = cloud.Config{
	SlotsPerInstance: 2,
	LagTime:          60,
	ChargingUnit:     300,
	MaxInstances:     6,
}

// teeController drives an in-process controller and a remote session with
// the same snapshots, requiring byte-identical decision JSON at every MAPE
// iteration — the service acceptance criterion.
type teeController struct {
	t      *testing.T
	local  sim.Controller
	client *Client
	id     string
	iters  int
}

func (c *teeController) Name() string { return c.local.Name() }

func (c *teeController) Plan(snap *monitor.Snapshot) sim.Decision {
	c.iters++
	resp, err := c.client.Plan(context.Background(), c.id, 0, snap)
	if err != nil {
		c.t.Fatalf("iteration %d: remote plan: %v", c.iters, err)
	}
	local := c.local.Plan(snap)
	remoteJSON, err := json.Marshal(resp.Decision)
	if err != nil {
		c.t.Fatalf("iteration %d: marshal remote: %v", c.iters, err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		c.t.Fatalf("iteration %d: marshal local: %v", c.iters, err)
	}
	if !bytes.Equal(remoteJSON, localJSON) {
		c.t.Fatalf("iteration %d: decision over HTTP differs from in-process Plan:\nremote %s\nlocal  %s",
			c.iters, remoteJSON, localJSON)
	}
	return local
}

// TestRemoteDecisionsByteIdentical runs a noisy workflow to completion with
// every decision computed twice — in-process and over HTTP — and the JSON
// encodings compared byte for byte.
func TestRemoteDecisionsByteIdentical(t *testing.T) {
	_, client := newTestServer(t, Config{})
	wf := fanWorkflow()
	info, err := client.CreateSession(context.Background(), CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	tee := &teeController{t: t, local: core.New(core.Config{}), client: client, id: info.ID}
	res, err := sim.Run(wf, tee, sim.Config{
		Cloud:        testCloud,
		Seed:         11,
		Interference: dist.NewLognormalFromMean(1, 0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tee.iters == 0 {
		t.Fatal("no MAPE iterations executed")
	}
	if res.Decisions != tee.iters {
		t.Fatalf("decisions %d != iterations %d", res.Decisions, tee.iters)
	}
}

// TestSessionLifecycleHTTP exercises the full API surface of one session.
func TestSessionLifecycleHTTP(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	wf := fanWorkflow()

	info, err := client.CreateSession(context.Background(), CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Policy != "wire" || info.Tasks != wf.NumTasks() || info.Stages != wf.NumStages() {
		t.Fatalf("session info mismatch: %+v", info)
	}

	// Drive the session with a remote controller through a real run.
	rc := &RemoteController{client: client, info: info}
	res, err := sim.Run(wf, rc, sim.Config{Cloud: testCloud, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Decisions == 0 {
		t.Fatal("no decisions planned")
	}

	state, err := client.State(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if state.Plans != int64(res.Decisions) {
		t.Errorf("state plans = %d, want %d", state.Plans, res.Decisions)
	}
	if state.Controller == nil || state.Controller.Iterations != res.Decisions {
		t.Errorf("controller state missing or stale: %+v", state.Controller)
	}

	health, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Sessions != 1 {
		t.Errorf("health = %+v", health)
	}

	md, err := client.MetricsDump(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	plan := md.Endpoints["plan"]
	if plan.Count != int64(res.Decisions) {
		t.Errorf("metrics plan count = %d, want %d", plan.Count, res.Decisions)
	}
	if plan.LatencyMs == nil || plan.LatencyMs.Samples == 0 || plan.LatencyMs.P99 < plan.LatencyMs.P50 {
		t.Errorf("metrics plan latency missing or inconsistent: %+v", plan.LatencyMs)
	}
	if md.Sessions.Created != 1 || md.Sessions.Active != 1 {
		t.Errorf("metrics sessions = %+v", md.Sessions)
	}

	if err := client.DeleteSession(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteSession(context.Background(), info.ID); err == nil {
		t.Error("second delete should 404")
	}
	if srv.Store().Len() != 0 {
		t.Error("store not empty after delete")
	}
}

// TestPlanRejectsBadSnapshots pins the 4xx behaviour of the plan endpoint.
func TestPlanRejectsBadSnapshots(t *testing.T) {
	_, client := newTestServer(t, Config{})
	wf := smallWorkflow(3)
	info, err := client.CreateSession(context.Background(), CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, snap *monitor.Snapshot, wantStatus int) {
		t.Helper()
		_, err := client.Plan(context.Background(), info.ID, 0, snap)
		var apiErr *APIError
		if err == nil || !asAPIError(err, &apiErr) {
			t.Fatalf("%s: err = %v, want APIError", name, err)
		}
		if apiErr.StatusCode != wantStatus {
			t.Errorf("%s: status = %d (%s), want %d", name, apiErr.StatusCode, apiErr.Message, wantStatus)
		}
	}

	short := readySnapshot(wf)
	short.Tasks = short.Tasks[:2]
	check("wrong task count", short, http.StatusBadRequest)

	badIDs := readySnapshot(wf)
	badIDs.Tasks[1].ID = 2
	check("misindexed records", badIDs, http.StatusBadRequest)

	noInterval := readySnapshot(wf)
	noInterval.Interval = 0
	check("zero interval", noInterval, http.StatusBadRequest)

	noUnit := readySnapshot(wf)
	noUnit.ChargingUnit = 0
	check("zero charging unit", noUnit, http.StatusBadRequest)

	if _, err := client.Plan(context.Background(), "deadbeef", 0, readySnapshot(wf)); err == nil {
		t.Error("unknown session should 404")
	}
}

// TestCreateSessionValidation pins the 400 cases of session creation.
func TestCreateSessionValidation(t *testing.T) {
	_, client := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  CreateSessionRequest
	}{
		{"no workflow", CreateSessionRequest{}},
		{"unknown key", CreateSessionRequest{WorkflowKey: "nope"}},
		{"unknown policy", CreateSessionRequest{WorkflowKey: "genome-s", Policy: "apollo"}},
		{"deadline without target", CreateSessionRequest{WorkflowKey: "genome-s", Policy: "deadline"}},
		{"both sources", CreateSessionRequest{
			Workflow: dagio.Encode(smallWorkflow(1)), WorkflowKey: "genome-s"}},
	}
	for _, tc := range cases {
		_, err := client.CreateSession(context.Background(), tc.req)
		var apiErr *APIError
		if err == nil || !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want 400", tc.name, err)
		}
	}

	// Catalogue key and the deadline policy both work when well-formed.
	if _, err := client.CreateSession(context.Background(), CreateSessionRequest{WorkflowKey: "genome-s", WorkflowSeed: 5}); err != nil {
		t.Errorf("catalogue create: %v", err)
	}
	if _, err := client.CreateSession(context.Background(), CreateSessionRequest{
		WorkflowKey: "genome-s",
		Policy:      "deadline",
		Controller:  &ControllerSpec{Deadline: 7200},
	}); err != nil {
		t.Errorf("deadline create: %v", err)
	}
}

// TestConcurrentSessionsHTTP runs 32 goroutines through the whole HTTP
// lifecycle at once; with -race this is the daemon's concurrency
// certificate.
func TestConcurrentSessionsHTTP(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	const goroutines = 32

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wf := smallWorkflow(4 + g%3)
			info, err := client.CreateSession(context.Background(), CreateSessionRequest{Workflow: dagio.Encode(wf)})
			if err != nil {
				errs <- err
				return
			}
			snap := readySnapshot(wf)
			for i := 0; i < 10; i++ {
				resp, err := client.Plan(context.Background(), info.ID, 0, snap)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d plan %d: %w", g, i, err)
					return
				}
				if resp.SessionID != info.ID {
					errs <- fmt.Errorf("goroutine %d: response routed to %s, want %s", g, resp.SessionID, info.ID)
					return
				}
				if resp.Iteration != int64(i+1) {
					errs <- fmt.Errorf("goroutine %d: iteration %d, want %d", g, resp.Iteration, i+1)
					return
				}
			}
			if _, err := client.State(context.Background(), info.ID); err != nil {
				errs <- err
				return
			}
			if err := client.DeleteSession(context.Background(), info.ID); err != nil {
				errs <- err
				return
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := srv.Store().Len(); n != 0 {
		t.Fatalf("%d sessions left after concurrent lifecycle", n)
	}
}

func asAPIError(err error, target **APIError) bool {
	e, ok := err.(*APIError)
	if ok {
		*target = e
	}
	return ok
}

// panicController blows up on its first Plan call, then behaves.
type panicController struct{ calls int }

func (p *panicController) Name() string { return "panicky" }

func (p *panicController) Plan(*monitor.Snapshot) sim.Decision {
	p.calls++
	if p.calls == 1 {
		panic("synthetic predictor crash")
	}
	return sim.Decision{}
}

// TestPlanPanicsDegrade installs a controller that panics on its first
// snapshot and requires the daemon to degrade to the reactive-conserving
// fallback — a flagged 200, not a 422 — and stay healthy: one predictor
// crash must cost at most one interval of optimality, never the session.
func TestPlanPanicsDegrade(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	wf := smallWorkflow(3)
	sess, err := srv.Store().Create("wire", wf, &panicController{})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := client.Plan(context.Background(), sess.ID, 0, readySnapshot(wf))
	if err != nil {
		t.Fatalf("plan during controller panic: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("response not flagged degraded after controller panic")
	}
	// The controller recovers on its second call, so the session resumes
	// undegraded planning.
	resp, err = client.Plan(context.Background(), sess.ID, 0, readySnapshot(wf))
	if err != nil {
		t.Fatalf("session unusable after degraded plan: %v", err)
	}
	if resp.Degraded {
		t.Error("recovered controller still flagged degraded")
	}
	if _, err := client.Health(context.Background()); err != nil {
		t.Fatalf("daemon unhealthy after degraded plan: %v", err)
	}
	md := srv.Metrics().Dump(srv.now(), srv.Store().Len())
	if md.FaultTolerance.DegradedPlansTotal != 1 {
		t.Errorf("degraded_plans_total = %d, want 1", md.FaultTolerance.DegradedPlansTotal)
	}
}

// TestReadyzLifecycle pins the liveness/readiness split: /healthz answers
// 200 for as long as the process lives, while /readyz flips to 503 the
// moment the server starts draining — that flip is what steers the router's
// probes away before shutdown tears connections down.
func TestReadyzLifecycle(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	base := client.BaseURL()

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d while idle, want 200", ep, resp.StatusCode)
		}
	}

	srv.draining.Store(true)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz HealthResponse
	if derr := json.NewDecoder(resp.Body).Decode(&rz); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Status != "draining" {
		t.Fatalf("draining /readyz = %d %q, want 503 draining", resp.StatusCode, rz.Status)
	}
	// Liveness is unaffected: the process is up, just not accepting work.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d while draining, want 200", resp.StatusCode)
	}
	srv.draining.Store(false)

	// An in-flight adopt replay also withholds readiness.
	srv.replaying.Add(1)
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replaying /readyz = %d, want 503", resp.StatusCode)
	}
	srv.replaying.Add(-1)
}
