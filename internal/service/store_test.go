package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/sim"
)

func smallWorkflow(tasks int) *dag.Workflow {
	b := dag.NewBuilder("store-test")
	b.AddStage("only")
	for i := 0; i < tasks; i++ {
		b.AddTask(0, "", 30, 1, 4)
	}
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return wf
}

// readySnapshot builds a minimal valid first-tick snapshot for wf: every
// task ready, one active instance.
func readySnapshot(wf *dag.Workflow) *monitor.Snapshot {
	snap := &monitor.Snapshot{
		Now:              60,
		Interval:         60,
		ChargingUnit:     300,
		LagTime:          60,
		SlotsPerInstance: 2,
		MaxInstances:     8,
		Workflow:         wf,
		Tasks:            make([]monitor.TaskRecord, wf.NumTasks()),
		Instances: []monitor.InstanceRecord{
			{ID: 0, State: cloud.Active, Slots: 2, ActiveAt: 0, TimeToNextCharge: 240},
		},
	}
	for _, t := range wf.Tasks {
		snap.Tasks[t.ID] = monitor.TaskRecord{
			ID: t.ID, Stage: t.Stage, State: monitor.Ready, InputSize: t.InputSize,
		}
	}
	return snap
}

// TestStoreConcurrentLifecycle hammers the bare store from 32 goroutines:
// concurrent create, get, plan (via the session mutex), and delete. The
// -race run of this test is the store's data-race certificate.
func TestStoreConcurrentLifecycle(t *testing.T) {
	st := NewStore(0, time.Now)
	wf := smallWorkflow(4)
	const goroutines = 32
	const iters = 20

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sess, err := st.Create("wire", wf, core.New(core.Config{}))
				if err != nil {
					errs <- err
					return
				}
				got, err := st.Get(sess.ID)
				if err != nil || got != sess {
					errs <- fmt.Errorf("get %s: %v", sess.ID, err)
					return
				}
				snap := readySnapshot(wf)
				if err := sess.Controller(func(ctrl sim.Controller) error {
					dec := ctrl.Plan(snap)
					if dec.Launch < 0 {
						return fmt.Errorf("negative launch")
					}
					return nil
				}); err != nil {
					errs <- err
					return
				}
				if err := st.Delete(sess.ID); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := st.Len(); n != 0 {
		t.Fatalf("store not empty after lifecycle storm: %d sessions", n)
	}
}

// fakeClock is a mutable test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestTTLEvictionFakeClock drives the janitor's eviction sweep with a fake
// clock: untouched sessions die at the TTL, touched ones survive.
func TestTTLEvictionFakeClock(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_000_000, 0)}
	srv := New(Config{IdleTTL: 10 * time.Minute, Clock: clock.Now})
	wf := smallWorkflow(2)

	var ids []string
	for i := 0; i < 3; i++ {
		sess, err := srv.Store().Create("wire", wf, baseline.PureReactive{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sess.ID)
	}

	clock.Advance(9 * time.Minute)
	if n := srv.EvictIdleNow(); n != 0 {
		t.Fatalf("evicted %d sessions before TTL", n)
	}
	// Touch the first session: its idle timer restarts.
	if _, err := srv.Store().Get(ids[0]); err != nil {
		t.Fatal(err)
	}

	clock.Advance(2 * time.Minute) // 11m idle for [1] and [2], 2m for [0]
	if n := srv.EvictIdleNow(); n != 2 {
		t.Fatalf("evicted %d sessions at TTL, want 2", n)
	}
	if _, err := srv.Store().Get(ids[0]); err != nil {
		t.Errorf("touched session evicted: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := srv.Store().Get(id); err == nil {
			t.Errorf("idle session %s survived eviction", id)
		}
	}
	if d := srv.Metrics().Dump(clock.Now(), srv.Store().Len()); d.Sessions.Evicted != 2 {
		t.Errorf("metrics evicted = %d, want 2", d.Sessions.Evicted)
	}
}

// TestMaxSessionsRejection fills the store to its cap over HTTP and checks
// the clear 429 error body.
func TestMaxSessionsRejection(t *testing.T) {
	srv := New(Config{MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	for i := 0; i < 2; i++ {
		if _, err := client.CreateSession(context.Background(), CreateSessionRequest{WorkflowKey: "genome-s"}); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"workflow_key":"genome-s"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if body.Code != "max_sessions" {
		t.Errorf("code = %q, want max_sessions", body.Code)
	}
	if !strings.Contains(body.Error, "session limit 2") {
		t.Errorf("error %q does not name the limit", body.Error)
	}

	// The typed client surfaces the same information.
	_, err = client.CreateSession(context.Background(), CreateSessionRequest{WorkflowKey: "genome-s"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 429 || apiErr.Code != "max_sessions" {
		t.Errorf("client error = %v, want APIError 429/max_sessions", err)
	}

	if d := srv.Metrics().Dump(time.Now(), srv.Store().Len()); d.Sessions.Rejected != 2 {
		t.Errorf("metrics rejected = %d, want 2", d.Sessions.Rejected)
	}
}
