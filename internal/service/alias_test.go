package service

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dagio"
	"repro/internal/monitor"
	"repro/internal/workloads"
)

// TestConcurrentSessionsNoBufferAliasing hammers the pooled encode/decode
// path from many sessions at once and asserts no response leaks across the
// pool: each goroutine keeps every PlanResponse it has received and
// re-verifies the whole history after each new call, so a pooled buffer (or
// parser scratch) reused by another session's request would surface as a
// mutated SessionID or a seq/iteration that jumped sessions. Run under
// -race this also certifies the pools themselves.
func TestConcurrentSessionsNoBufferAliasing(t *testing.T) {
	_, client := newTestServer(t, Config{MaxSessions: 64})

	const sessions = 8
	const plans = 25

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			wf := workloads.Linear(6+g, 45)
			info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
			if err != nil {
				errs <- fmt.Errorf("session %d: create: %w", g, err)
				return
			}
			defer client.DeleteSession(ctx, info.ID)

			history := make([]*PlanResponse, 0, plans)
			snap := &monitor.Snapshot{
				Interval:         30,
				ChargingUnit:     600,
				LagTime:          30,
				SlotsPerInstance: 2,
				Tasks:            make([]monitor.TaskRecord, wf.NumTasks()),
			}
			for _, tk := range wf.Tasks {
				snap.Tasks[tk.ID] = monitor.TaskRecord{ID: tk.ID, Stage: tk.Stage, InputSize: tk.InputSize}
			}
			for seq := int64(1); seq <= plans; seq++ {
				snap.Now += snap.Interval
				resp, err := client.Plan(ctx, info.ID, seq, snap)
				if err != nil {
					errs <- fmt.Errorf("session %d: plan %d: %w", g, seq, err)
					return
				}
				history = append(history, resp)
				for i, h := range history {
					if h.SessionID != info.ID {
						errs <- fmt.Errorf("session %d: response %d carries session %q after %d more plans", g, i+1, h.SessionID, int(seq)-i-1)
						return
					}
					if h.Seq != int64(i+1) {
						errs <- fmt.Errorf("session %d: response %d now reports seq %d", g, i+1, h.Seq)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
