package service

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// planNoMethods strips PlanResponse's hand-rolled codec so encoding/json
// provides the reference bytes and reference decode semantics.
type planNoMethods PlanResponse

func randPlanString(rng *rand.Rand) string {
	pool := []string{
		"", "sess-1", "a<b>&c", `qu"ote\back`, "tab\tnl\nctl\x01",
		"unicode ☃", "bad\xffutf8",
	}
	return pool[rng.Intn(len(pool))]
}

func randPlanFloat(rng *rand.Rand) float64 {
	switch rng.Intn(5) {
	case 0:
		return 0
	case 1:
		return rng.Float64() * 1e-7
	case 2:
		return rng.Float64() * 1e22
	case 3:
		return -rng.Float64() * 42
	default:
		return float64(rng.Intn(100000)) / 8
	}
}

func randPlanResponse(rng *rand.Rand) *PlanResponse {
	r := &PlanResponse{
		SessionID: randPlanString(rng),
		Iteration: rng.Int63n(1000),
		Seq:       rng.Int63n(1000),
		Decision:  sim.Decision{Launch: rng.Intn(10) - 2},
		Degraded:  rng.Intn(3) == 0,
	}
	switch rng.Intn(3) {
	case 0:
	case 1:
		r.Decision.Releases = []sim.ReleaseOrder{}
	default:
		for i := 0; i < rng.Intn(4)+1; i++ {
			r.Decision.Releases = append(r.Decision.Releases, sim.ReleaseOrder{
				Instance:   cloud.InstanceID(rng.Intn(20)),
				AtBoundary: rng.Intn(2) == 0,
			})
		}
	}
	for i := 0; i < rng.Intn(6); i++ {
		r.Predictions = append(r.Predictions, core.PredictionState{
			Task:      dag.TaskID(i),
			Stage:     dag.StageID(rng.Intn(5)),
			Estimated: simtime.Duration(randPlanFloat(rng)),
			Policy:    randPlanString(rng),
			At:        simtime.Time(randPlanFloat(rng)),
		})
	}
	return r
}

// TestPlanResponseCodecMatchesStock cross-checks the hand-rolled
// PlanResponse codec against encoding/json on randomized values.
func TestPlanResponseCodecMatchesStock(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := randPlanResponse(rng)

		got, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("seed %d: custom marshal: %v", seed, err)
		}
		want, err := json.Marshal((*planNoMethods)(r))
		if err != nil {
			t.Fatalf("seed %d: stock marshal: %v", seed, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: encoding mismatch\ncustom: %s\nstock:  %s", seed, got, want)
		}

		var viaCustom PlanResponse
		if err := viaCustom.UnmarshalJSON(want); err != nil {
			t.Fatalf("seed %d: custom decode: %v", seed, err)
		}
		var viaStock planNoMethods
		if err := json.Unmarshal(want, &viaStock); err != nil {
			t.Fatalf("seed %d: stock decode: %v", seed, err)
		}
		if !reflect.DeepEqual(viaCustom, PlanResponse(viaStock)) {
			t.Fatalf("seed %d: decode mismatch\ncustom: %#v\nstock:  %#v", seed, viaCustom, viaStock)
		}
	}
}

// TestPlanResponseMarshalRejectsNonFinite mirrors encoding/json: NaN and Inf
// predictions are an encoding error, not silently emitted invalid JSON.
func TestPlanResponseMarshalRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r := &PlanResponse{Predictions: []core.PredictionState{{Estimated: simtime.Duration(bad)}}}
		if _, err := json.Marshal(r); err == nil {
			t.Fatalf("custom marshal accepted %v", bad)
		}
		if _, err := json.Marshal((*planNoMethods)(r)); err == nil {
			t.Fatalf("stock marshal accepted %v", bad)
		}
	}
}

// TestPlanResponseDecodeOddJSON feeds awkward JSON through both decoders and
// requires identical results, including error agreement.
func TestPlanResponseDecodeOddJSON(t *testing.T) {
	cases := []string{
		`{}`,
		` { "session_id" : "s" , "seq" : 3 } `,
		`{"decision":{"launch":2,"releases":null}}`,
		`{"decision":{"launch":0,"releases":[]}}`,
		`{"decision":{"launch":1,"releases":[{"instance":3},{"instance":4,"at_boundary":true}]}}`,
		`{"predictions":null}`,
		`{"predictions":[]}`,
		`{"predictions":[{"task":1,"estimated_exec_s":1e-9,"unknown":[{}]}]}`,
		`{"seq":1,"seq":2}`,
		`{"degraded":true,"extra":"x"}`,
		`{"iteration":1.0}`,
		`{"iteration":1.5}`,
		`{"seq":"3"}`,
		`{"decision":{"launch":1}`,
		`{"seq":1} trailing`,
	}
	for i, src := range cases {
		var viaCustom PlanResponse
		errCustom := viaCustom.UnmarshalJSON([]byte(src))
		var viaStock planNoMethods
		errStock := json.Unmarshal([]byte(src), &viaStock)
		if (errCustom == nil) != (errStock == nil) {
			t.Fatalf("case %d %q: error mismatch: custom=%v stock=%v", i, src, errCustom, errStock)
		}
		if errCustom != nil {
			continue
		}
		if !reflect.DeepEqual(viaCustom, PlanResponse(viaStock)) {
			t.Fatalf("case %d %q: decode mismatch\ncustom: %#v\nstock:  %#v", i, src, viaCustom, viaStock)
		}
	}
}
