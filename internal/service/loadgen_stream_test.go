package service

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/tenancy"
)

// TestLoadgenStream is the live-plane arrival-sweep acceptance: a seeded
// Poisson stream of heterogeneous tenant-tagged workflows submitted over
// HTTP, with a per-tenant session cap forcing the admission gate to throttle
// — and every throttled create retried until admitted, so no session drops.
// Each run is twin-verified against an in-process controller.
func TestLoadgenStream(t *testing.T) {
	srv := New(Config{MaxSessions: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := Loadgen(context.Background(), LoadgenConfig{
		Client:             NewClient(ts.URL),
		Sessions:           12,
		Arrivals:           tenancy.Poisson,
		Tenants:            3,
		ArrivalRatePerHour: 600, // tight gaps: whole dispatch ≈ a few wall ms
		TenantMaxActive:    1,   // force throttled creates under concurrency
		StreamKeys:         []string{"tpch6-s", "tpch1-s", "pagerank-s"},
		TimeCompression:    36000,
		Cloud:              testCloud,
		SeedBase:           42,
		Verify:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 12 || res.Failed != 0 {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d remote runs diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if res.Tenants != 3 {
		t.Errorf("stream used %d tenants, want 3", res.Tenants)
	}
	if res.Throttled == 0 {
		t.Error("no creates throttled under a 1-session tenant cap; admission gate inert")
	}
	if res.TenantSpendUnits <= 0 {
		t.Errorf("no tenant spend metered: %+v", res.TenantSpendUnits)
	}
	if srv.Store().Len() != 0 {
		t.Errorf("%d sessions leaked after stream loadgen", srv.Store().Len())
	}
	dump := srv.Metrics().Dump(srv.now(), srv.Store().Len())
	tc := srv.Tenants().Counters(dump.UptimeS)
	if tc.ArrivalsTotal != 12 {
		t.Errorf("daemon admitted %d arrivals, want 12", tc.ArrivalsTotal)
	}
	if tc.AdmissionsThrottledTotal == 0 {
		t.Error("daemon recorded no throttled admissions")
	}
}

// TestLoadgenStreamTrace replays an explicit stream (the trace-import path)
// and pins determinism: two replays of the same stream submit the same
// session population and produce identical per-arrival workflow draws.
func TestLoadgenStreamTrace(t *testing.T) {
	stream, err := tenancy.Generate(tenancy.StreamConfig{
		Seed: 7, Process: tenancy.Poisson, N: 6, Tenants: 2, RatePerHour: 600,
		Keys: []string{"tpch6-s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *LoadgenResult {
		srv := New(Config{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		res, err := Loadgen(context.Background(), LoadgenConfig{
			Client:          NewClient(ts.URL),
			Stream:          stream,
			TimeCompression: 36000,
			Cloud:           testCloud,
			Verify:          true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.Completed != 6 || a.Failed != 0 || a.Mismatched != 0 {
		t.Fatalf("trace replay: %+v errors %v", a, a.Errors)
	}
	if a.Completed != b.Completed || a.Plans != b.Plans || a.Decisions != b.Decisions {
		t.Errorf("two replays of the same trace differ: %d/%d plans vs %d/%d",
			a.Completed, a.Plans, b.Completed, b.Plans)
	}
}

// TestLoadgenStreamValidation pins stream-mode configuration errors.
func TestLoadgenStreamValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	if _, err := Loadgen(context.Background(), LoadgenConfig{
		Client: client, Arrivals: "lunar", Cloud: testCloud,
	}); err == nil {
		t.Error("unknown arrival process accepted")
	}
	if _, err := Loadgen(context.Background(), LoadgenConfig{
		Client: client, Arrivals: tenancy.Poisson,
	}); err == nil {
		t.Error("invalid cloud config accepted")
	}
	if _, err := Loadgen(context.Background(), LoadgenConfig{
		Client: client, Stream: &tenancy.Stream{}, Cloud: testCloud,
	}); err == nil {
		t.Error("empty stream accepted")
	}
}
