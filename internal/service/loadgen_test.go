package service

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/dag"
	"repro/internal/workloads"
)

// TestLoadgenHundredConcurrentSessions is the acceptance run: 100 sessions
// planned concurrently over HTTP, every one verified against an in-process
// twin. Zero failures and zero mismatches means no decision was dropped or
// routed to the wrong session; the -race run doubles as the race
// certificate.
func TestLoadgenHundredConcurrentSessions(t *testing.T) {
	srv := New(Config{MaxSessions: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := Loadgen(context.Background(), LoadgenConfig{
		Client:   NewClient(ts.URL),
		Sessions: 100,
		Policy:   "wire",
		Workflow: func(seed int64) *dag.Workflow {
			// Small but non-trivial: enough tasks for several MAPE
			// iterations and pool growth, cheap enough for 200 runs
			// under -race.
			return workloads.Linear(24+int(seed%7), 45)
		},
		Cloud:    testCloud,
		Noise:    0.08,
		SeedBase: 100,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 || res.Failed != 0 {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d remote runs diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if res.Plans == 0 || res.Latency.Samples == 0 {
		t.Fatalf("no plan traffic recorded: %+v", res)
	}
	if srv.Store().Len() != 0 {
		t.Errorf("%d sessions leaked after loadgen", srv.Store().Len())
	}

	// Every plan is accounted for on the server: nothing dropped.
	md := srv.Metrics().Dump(srv.now(), srv.Store().Len())
	if got := md.Endpoints["plan"].Count; got != res.Plans {
		t.Errorf("server saw %d plans, clients sent %d", got, res.Plans)
	}
	if md.Endpoints["plan"].Errors != 0 {
		t.Errorf("%d plan requests errored", md.Endpoints["plan"].Errors)
	}
	if md.Sessions.Created != 100 || md.Sessions.Deleted != 100 {
		t.Errorf("sessions created/deleted = %d/%d, want 100/100", md.Sessions.Created, md.Sessions.Deleted)
	}
}

// TestLoadgenConfigValidation pins loadgen's configuration errors.
func TestLoadgenConfigValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	if _, err := Loadgen(context.Background(), LoadgenConfig{Client: client, Cloud: testCloud}); err == nil {
		t.Error("missing workflow should fail")
	}
	if _, err := Loadgen(context.Background(), LoadgenConfig{Client: client, WorkflowKey: "nope", Cloud: testCloud}); err == nil {
		t.Error("unknown workflow key should fail")
	}
	if _, err := Loadgen(context.Background(), LoadgenConfig{Client: client, WorkflowKey: "genome-s"}); err == nil {
		t.Error("invalid cloud config should fail")
	}
	if _, err := Loadgen(context.Background(), LoadgenConfig{
		Client: client, WorkflowKey: "genome-s", Cloud: testCloud, Policy: "apollo",
	}); err == nil {
		t.Error("unknown policy should fail")
	}
}
