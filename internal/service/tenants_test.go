package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dagio"
	"repro/internal/monitor"
)

// TestTenantRegistryAdmission pins the admission gate: active-session caps,
// budget feedback with the austerity exception, and slot release.
func TestTenantRegistryAdmission(t *testing.T) {
	r := NewTenantRegistry()
	r.Configure(TenantSpec{Name: "acme", MaxActive: 2})
	if !r.Admit("acme") || !r.Admit("acme") {
		t.Fatal("admissions under the cap refused")
	}
	if r.Admit("acme") {
		t.Error("admission beyond MaxActive accepted")
	}
	r.Release("acme")
	if !r.Admit("acme") {
		t.Error("released slot not reusable")
	}
	info, ok := r.Tenant("acme")
	if !ok || info.ActiveSessions != 2 || info.ArrivalsTotal != 3 || info.ThrottledTotal != 1 {
		t.Errorf("tenant state = %+v, want 2 active / 3 arrivals / 1 throttled", info)
	}

	// Budget gate: 10-unit budget, 9.5 units committed by spend+lookahead.
	r.Configure(TenantSpec{Name: "tight", BudgetUnits: 10})
	if !r.Admit("tight") {
		t.Fatal("first admission refused")
	}
	r.ObservePlan("tight", 5, 1530, 900) // 8.5 units spent, 1 active -> 9.5 committed
	if r.Admit("tight") {
		t.Error("admission over budget accepted")
	}
	// Austerity: a tenant with zero active sessions always admits, so a
	// budget throttles but never starves.
	r.Release("tight")
	if !r.Admit("tight") {
		t.Error("austerity admission refused for an idle over-budget tenant")
	}

	// Unknown tenants are implicitly unlimited.
	if !r.Admit("walk-in") {
		t.Error("unconfigured tenant refused")
	}
}

// TestTenantRegistryCounters checks the /metrics aggregation and List order.
func TestTenantRegistryCounters(t *testing.T) {
	r := NewTenantRegistry()
	r.Admit("b")
	r.Admit("a")
	r.Reattach("a")
	r.ObservePlan("a", 4, 900, 900)
	r.RecordMiss("b")
	r.Release("b") // b goes idle

	c := r.Counters(3600)
	if c.TenantsActive != 1 {
		t.Errorf("tenants_active = %d, want 1", c.TenantsActive)
	}
	if c.ArrivalsTotal != 3 {
		t.Errorf("arrivals_total = %d, want 3", c.ArrivalsTotal)
	}
	if c.DeadlineMissesTotal != 1 {
		t.Errorf("deadline_misses_total = %d, want 1", c.DeadlineMissesTotal)
	}
	// 4 units spent over one hour of uptime.
	if c.BudgetSpendRate != 4 {
		t.Errorf("budget_spend_rate = %v, want 4", c.BudgetSpendRate)
	}
	list := r.List()
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Errorf("List() = %+v, want [a b]", list)
	}
}

// TestTenancyMetricsKeys pins the wire names of the tenancy block: dashboards
// and the arrival-sweep harness key on these exact strings.
func TestTenancyMetricsKeys(t *testing.T) {
	_, client := newTestServer(t, Config{})
	resp, err := http.Get(client.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, key := range []string{
		"tenancy",
		"tenants_active",
		"arrivals_total",
		"admissions_throttled_total",
		"budget_spend_rate",
		"deadline_misses_total",
	} {
		if !strings.Contains(body, `"`+key+`"`) {
			t.Errorf("metrics dump missing %q: %s", key, body)
		}
	}
}

// TestTenantAPI drives the tenant endpoints and the throttled-create path
// over HTTP: a capped tenant's third session answers 429 tenant_throttled
// with a Retry-After hint, and deleting a session releases the slot.
func TestTenantAPI(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	info, err := client.CreateTenant(ctx, TenantSpec{Name: "acme", MaxActive: 2, BudgetUnits: 50})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "acme" || info.MaxActive != 2 {
		t.Fatalf("tenant info = %+v", info)
	}

	wf := dagio.Encode(fanWorkflow())
	mk := func() (*SessionInfo, error) {
		return client.CreateSession(ctx, CreateSessionRequest{
			Workflow: wf, Tenant: "acme", DeadlineS: 1800,
		})
	}
	s1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Tenant != "acme" {
		t.Errorf("session info tenant = %q, want acme", s1.Tenant)
	}
	if _, err := mk(); err != nil {
		t.Fatal(err)
	}
	_, err = mk()
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeTenantThrottled || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third create err = %v, want 429 %s", err, CodeTenantThrottled)
	}
	if ae.RetryAfter <= 0 {
		t.Error("throttled create carries no Retry-After hint")
	}
	if err := client.DeleteSession(ctx, s1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := mk(); err != nil {
		t.Fatalf("create after release: %v", err)
	}

	tenants, err := client.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 1 || tenants[0].ActiveSessions != 2 || tenants[0].ThrottledTotal != 1 {
		t.Fatalf("tenant list = %+v, want acme with 2 active / 1 throttled", tenants)
	}
	if _, err := client.Tenant(ctx, "ghost"); err == nil {
		t.Error("unknown tenant fetch succeeded")
	}
	if _, err := client.CreateTenant(ctx, TenantSpec{Name: "no spaces!"}); err == nil {
		t.Error("invalid tenant name accepted")
	}
	if _, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: wf, Tenant: "bad name"}); err == nil {
		t.Error("invalid session tenant accepted")
	}
	dump, err := client.MetricsDump(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Tenancy.ArrivalsTotal != 3 || dump.Tenancy.AdmissionsThrottledTotal != 1 {
		t.Errorf("tenancy counters = %+v, want 3 arrivals / 1 throttled", dump.Tenancy)
	}
	if dump.Tenancy.TenantsActive != 1 {
		t.Errorf("tenants_active = %d, want 1", dump.Tenancy.TenantsActive)
	}
}

// TestObserveTenancyMiss pins the plan-path deadline detection: a snapshot
// past the deadline with work remaining records exactly one miss.
func TestObserveTenancyMiss(t *testing.T) {
	sess := &Session{Tenant: "acme", DeadlineS: 100}
	snap := &monitor.Snapshot{
		Now: 90, Interval: 30, ChargingUnit: 900,
		Instances: []monitor.InstanceRecord{{}, {}},
		Tasks:     []monitor.TaskRecord{{State: monitor.Running}},
	}
	st, ok := observeTenancy(sess, snap)
	if !ok || st.miss {
		t.Fatalf("before deadline: ok=%v miss=%v", ok, st.miss)
	}
	if st.instances != 2 || st.intervalS != 30 || st.unitS != 900 {
		t.Errorf("metering = %+v", st)
	}
	snap.Now = 130
	if st, _ = observeTenancy(sess, snap); !st.miss {
		t.Error("past deadline with work remaining: no miss recorded")
	}
	// The latch: a second late snapshot must not double count.
	if st, _ = observeTenancy(sess, snap); st.miss {
		t.Error("miss recorded twice")
	}
	// Completed work past the deadline is not a miss.
	late := &Session{Tenant: "acme", DeadlineS: 100}
	snap2 := &monitor.Snapshot{
		Now: 130, Interval: 30, ChargingUnit: 900,
		Tasks: []monitor.TaskRecord{{State: monitor.Completed}},
	}
	if st, _ := observeTenancy(late, snap2); st.miss {
		t.Error("completed run counted as a miss")
	}
	// Untenanted sessions are not metered.
	if _, ok := observeTenancy(&Session{}, snap); ok {
		t.Error("untenanted session metered")
	}
}

// TestTenantJournalRecovery: a restarted daemon must reattach recovered
// sessions to their tenants — the slot counts again, without passing the
// admission gate.
func TestTenantJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, client := newTestServer(t, Config{JournalDir: dir})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, TenantSpec{Name: "acme", MaxActive: 1}); err != nil {
		t.Fatal(err)
	}
	wf := dagio.Encode(fanWorkflow())
	if _, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: wf, Tenant: "acme", DeadlineS: 900}); err != nil {
		t.Fatal(err)
	}
	if n := srv1.Store().Len(); n != 1 {
		t.Fatalf("store has %d sessions", n)
	}

	srv2 := New(Config{JournalDir: dir})
	if n := srv2.Store().Len(); n != 1 {
		t.Fatalf("recovered store has %d sessions, want 1", n)
	}
	info, ok := srv2.Tenants().Tenant("acme")
	if !ok || info.ActiveSessions != 1 {
		t.Fatalf("recovered tenant = %+v (ok=%v), want 1 active session", info, ok)
	}
	// MaxActive is not journaled (tenants are re-registered by the operator
	// or loadgen), but the recovered session still holds its slot.
	for _, id := range srv2.Store().IDs() {
		sess, err := srv2.Store().Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if sess.TenantTag() != "acme" || sess.DeadlineS != 900 {
			t.Errorf("recovered session tenant/deadline = %q/%v, want acme/900", sess.TenantTag(), sess.DeadlineS)
		}
	}
}
