package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// maxBodyBytes caps request bodies; a 4005-task snapshot is well under 2 MB,
// so 16 MB leaves generous head-room without letting a client exhaust RAM.
const maxBodyBytes = 16 << 20

// ControllerSpec is the JSON-facing controller configuration. The zero value
// reproduces the paper's settings for every policy.
type ControllerSpec struct {
	// RestartFrac, MinPool, UtilizationTarget mirror core.Config.
	RestartFrac       float64 `json:"restart_frac,omitempty"`
	MinPool           int     `json:"min_pool,omitempty"`
	UtilizationTarget float64 `json:"utilization_target,omitempty"`

	// LearningRate, EpochsPerUpdate, SizeTolerance, TransferWindow mirror
	// predict.Config.
	LearningRate    float64 `json:"learning_rate,omitempty"`
	EpochsPerUpdate int     `json:"epochs_per_update,omitempty"`
	SizeTolerance   float64 `json:"size_tolerance,omitempty"`
	TransferWindow  int     `json:"transfer_window,omitempty"`

	// Deadline and Slack configure the "deadline" policy only.
	Deadline float64 `json:"deadline_s,omitempty"`
	Slack    float64 `json:"slack,omitempty"`
}

func (cs *ControllerSpec) coreConfig() core.Config {
	if cs == nil {
		return core.Config{}
	}
	return core.Config{
		Predictor: predict.Config{
			LearningRate:    cs.LearningRate,
			EpochsPerUpdate: cs.EpochsPerUpdate,
			SizeTolerance:   cs.SizeTolerance,
			TransferWindow:  cs.TransferWindow,
		},
		RestartFrac:       cs.RestartFrac,
		MinPool:           cs.MinPool,
		UtilizationTarget: cs.UtilizationTarget,
	}
}

// Policies accepted by NewPolicyController, in documentation order.
func PolicyNames() []string {
	return []string{"wire", "deadline", "full-site", "pure-reactive", "reactive-conserving"}
}

// NewPolicyController builds a fresh controller for a policy name. It is the
// single policy registry shared by the daemon, wire-sim, and loadgen.
func NewPolicyController(policy string, spec *ControllerSpec) (sim.Controller, error) {
	switch policy {
	case "", "wire":
		return core.New(spec.coreConfig()), nil
	case "deadline":
		if spec == nil || spec.Deadline <= 0 {
			return nil, fmt.Errorf("policy deadline requires controller.deadline_s > 0")
		}
		return core.NewDeadline(core.DeadlineConfig{
			Deadline: spec.Deadline,
			Config:   spec.coreConfig(),
			Slack:    spec.Slack,
		}), nil
	case "full-site":
		return baseline.Static{}, nil
	case "pure-reactive":
		return baseline.PureReactive{}, nil
	case "reactive-conserving":
		return &baseline.ReactiveConserving{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (known: %v)", policy, PolicyNames())
	}
}

// CreateSessionRequest is the POST /v1/sessions body. Exactly one workflow
// source must be set: an inline dagio document or a catalogue key.
type CreateSessionRequest struct {
	// Workflow is an inline workflow document (the wire-workflows -export
	// / dagio format).
	Workflow *dagio.Document `json:"workflow,omitempty"`
	// WorkflowKey names a Table I catalogue run ("genome-s", ...);
	// WorkflowSeed drives its generator (default 1).
	WorkflowKey  string `json:"workflow_key,omitempty"`
	WorkflowSeed int64  `json:"workflow_seed,omitempty"`

	// Policy selects the controller (default "wire").
	Policy string `json:"policy,omitempty"`
	// Controller tunes it; nil reproduces the paper's settings.
	Controller *ControllerSpec `json:"controller,omitempty"`

	// Tenant tags the session with a tenant identity. Tenant-tagged creates
	// pass the tenant registry's admission gate and are answered 429
	// tenant_throttled while the tenant's budget or session cap is
	// exhausted.
	Tenant string `json:"tenant,omitempty"`
	// DeadlineS is a soft completion deadline on the session's run clock
	// (seconds, 0 = none), metered into the tenancy deadline-miss counter.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// SessionInfo describes one session in API responses.
type SessionInfo struct {
	ID        string    `json:"id"`
	Policy    string    `json:"policy"`
	Workflow  string    `json:"workflow"`
	Tenant    string    `json:"tenant,omitempty"`
	Tasks     int       `json:"tasks"`
	Stages    int       `json:"stages"`
	CreatedAt time.Time `json:"created_at"`
}

// PlanResponse is the POST /v1/sessions/{id}/plan response: the decision for
// the next interval plus the controller's current pre-start predictions for
// the tasks that have not started yet (the Figure 1 wavefront). Predictions
// are only present for policies with online prediction (wire, deadline).
type PlanResponse struct {
	SessionID string `json:"session_id"`
	Iteration int64  `json:"iteration"`
	// Seq is the plan interval this decision answers (see PlanSeqHeader);
	// a retried request with the same seq receives this response verbatim.
	Seq      int64        `json:"seq"`
	Decision sim.Decision `json:"decision"`
	// Degraded marks a decision produced by the session's
	// reactive-conserving fallback after the controller panicked.
	Degraded    bool                   `json:"degraded,omitempty"`
	Predictions []core.PredictionState `json:"predictions,omitempty"`
}

// SessionStateResponse is the GET /v1/sessions/{id}/state response.
type SessionStateResponse struct {
	SessionInfo
	Plans int64 `json:"plans"`
	// IdleS is seconds since the last API touch.
	IdleS float64 `json:"idle_s"`
	// Controller is the WIRE run state (nil for baselines without one).
	Controller *core.StateDump `json:"controller,omitempty"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status   string  `json:"status"`
	Sessions int     `json:"sessions"`
	UptimeS  float64 `json:"uptime_s"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// stateDumper is satisfied by controllers exposing WIRE run state.
type stateDumper interface{ State() core.StateDump }

// bufPool recycles the scratch buffers of writeJSON and readJSON. Buffers
// that grew past maxPooledBuf (a one-off giant state dump) are dropped rather
// than pinned in the pool.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

// jsonAppender is implemented by response types with a hand-rolled encoder
// (PlanResponse); writeJSON uses it to append straight into the pooled
// buffer, skipping the json.Encoder machinery entirely.
type jsonAppender interface {
	AppendJSON(dst []byte) ([]byte, error)
}

// writeJSON encodes v into a pooled buffer before touching the response, so
// an encoding failure is reported as a proper 500 instead of a truncated
// 200 with a committed status line.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if a, ok := v.(jsonAppender); ok {
		b, err := a.AppendJSON(buf.Bytes())
		if err != nil {
			s.metrics.EncodeError()
			s.writeError(w, http.StatusInternalServerError, "encode_failed", "encoding response: %v", err)
			return
		}
		// Trailing newline matches json.Encoder's framing.
		*buf = *bytes.NewBuffer(append(b, '\n'))
	} else if err := json.NewEncoder(buf).Encode(v); err != nil {
		// No recursion risk: ErrorBody is two plain strings and cannot
		// fail to encode.
		s.metrics.EncodeError()
		s.writeError(w, http.StatusInternalServerError, "encode_failed", "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	s.writeJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: %v", err)
		return false
	}
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: %v", err)
		return false
	}
	return true
}

// readSnapshot is readJSON specialized to the plan body: it decodes through
// monitor.UnmarshalSnapshot directly, skipping json.Unmarshal's separate
// whole-input validation pass — snapshots are by far the largest and most
// frequent bodies the daemon sees.
func (s *Server) readSnapshot(w http.ResponseWriter, r *http.Request, snap *monitor.Snapshot) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: %v", err)
		return false
	}
	if err := monitor.UnmarshalSnapshot(buf.Bytes(), snap); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: %v", err)
		return false
	}
	return true
}

func (s *Server) sessionInfo(sess *Session) SessionInfo {
	return SessionInfo{
		ID:        sess.ID,
		Policy:    sess.Policy,
		Workflow:  sess.Workflow.Name,
		Tenant:    sess.TenantTag(),
		Tasks:     sess.Workflow.NumTasks(),
		Stages:    sess.Workflow.NumStages(),
		CreatedAt: sess.CreatedAt(),
	}
}

// resolveWorkflow materializes the request's workflow source.
func resolveWorkflow(req *CreateSessionRequest) (*dag.Workflow, error) {
	switch {
	case req.Workflow != nil && req.WorkflowKey != "":
		return nil, fmt.Errorf("workflow and workflow_key are mutually exclusive")
	case req.Workflow != nil:
		return dagio.Decode(req.Workflow)
	case req.WorkflowKey != "":
		run, ok := workloads.ByKey(req.WorkflowKey)
		if !ok {
			return nil, fmt.Errorf("unknown workflow_key %q (known: %v)", req.WorkflowKey, workloads.Keys())
		}
		seed := req.WorkflowSeed
		if seed == 0 {
			seed = 1
		}
		return run.Generate(seed), nil
	default:
		return nil, fmt.Errorf("one of workflow or workflow_key is required")
	}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var assigned string
	if s.cfg.ShardMode {
		// The cluster router consistent-hashes sessions onto shards, so it
		// draws the ID itself and forwards it here. An assigned-ID create is
		// idempotent: the router only ever mints an ID once, so a duplicate
		// is a retry of a create whose response was lost.
		if h := r.Header.Get(SessionIDHeader); h != "" {
			if !ValidSessionID(h) {
				s.writeError(w, http.StatusBadRequest, "bad_request",
					"invalid %s header %q", SessionIDHeader, h)
				return
			}
			assigned = h
			if sess, err := s.store.Get(assigned); err == nil {
				s.writeJSON(w, http.StatusOK, s.sessionInfo(sess))
				return
			}
		}
	}
	var req CreateSessionRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	wf, err := resolveWorkflow(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "workflow: %v", err)
		return
	}
	policy := req.Policy
	if policy == "" {
		policy = "wire"
	}
	ctrl, err := NewPolicyController(policy, req.Controller)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if req.Tenant != "" && !ValidTenantName(req.Tenant) {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid tenant %q", req.Tenant)
		return
	}
	if req.DeadlineS < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "deadline_s must be non-negative")
		return
	}
	// The tenancy admission gate runs after validation (refused nonsense is
	// not an arrival) and before the store insert; every error path below
	// must release the slot it took.
	if req.Tenant != "" && !s.tenants.Admit(req.Tenant) {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, CodeTenantThrottled,
			"tenant %q throttled: budget or session cap exhausted; retry later", req.Tenant)
		return
	}
	releaseTenant := func() {
		if req.Tenant != "" {
			s.tenants.Release(req.Tenant)
		}
	}
	var sess *Session
	if assigned != "" {
		sess, err = s.store.CreateWithID(assigned, policy, wf, ctrl)
		if errors.Is(err, ErrDuplicateID) {
			// Lost the race against a concurrent retry of the same create.
			if dup, derr := s.store.Get(assigned); derr == nil {
				releaseTenant()
				s.writeJSON(w, http.StatusOK, s.sessionInfo(dup))
				return
			}
		}
	} else {
		sess, err = s.store.Create(policy, wf, ctrl)
	}
	if errors.Is(err, ErrMaxSessions) {
		releaseTenant()
		s.metrics.SessionRejected()
		s.writeError(w, http.StatusTooManyRequests, "max_sessions",
			"session limit %d reached; delete a session or retry later", s.cfg.MaxSessions)
		return
	}
	if err != nil {
		releaseTenant()
		s.writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	if req.Tenant != "" || req.DeadlineS > 0 {
		sess.mu.Lock()
		sess.Tenant = req.Tenant
		sess.DeadlineS = req.DeadlineS
		sess.mu.Unlock()
	}
	s.metrics.SessionCreated()
	s.openSessionJournal(sess, &req)
	s.writeJSON(w, http.StatusCreated, s.sessionInfo(sess))
}

func (s *Server) getSession(w http.ResponseWriter, r *http.Request) *Session {
	id := r.PathValue("id")
	sess, err := s.store.Get(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "not_found", "session %q not found", id)
		return nil
	}
	return sess
}

// validateSnapshot checks the parts of a posted snapshot the controllers
// index into; everything else is the client's modelling choice.
func validateSnapshot(snap *monitor.Snapshot, wf *dag.Workflow) error {
	if len(snap.Tasks) != wf.NumTasks() {
		return fmt.Errorf("snapshot has %d task records, workflow has %d tasks", len(snap.Tasks), wf.NumTasks())
	}
	for i := range snap.Tasks {
		if int(snap.Tasks[i].ID) != i {
			return fmt.Errorf("task record %d has id %d; records must be indexed by task id", i, snap.Tasks[i].ID)
		}
		if st := int(snap.Tasks[i].Stage); st < 0 || st >= wf.NumStages() {
			return fmt.Errorf("task record %d references missing stage %d", i, st)
		}
	}
	if snap.Interval <= 0 {
		return fmt.Errorf("interval_s must be positive")
	}
	if snap.ChargingUnit <= 0 {
		return fmt.Errorf("charging_unit_s must be positive")
	}
	if snap.SlotsPerInstance <= 0 {
		return fmt.Errorf("slots_per_instance must be positive")
	}
	return nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	var seq int64
	if h := r.Header.Get(PlanSeqHeader); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v <= 0 {
			s.writeError(w, http.StatusBadRequest, "bad_request",
				"invalid %s header %q: want a positive integer", PlanSeqHeader, h)
			return
		}
		seq = v
	}
	// Decode into the session's scratch snapshot under sess.mu: plan
	// requests for one session are serial anyway (the controller is), and
	// the reused Tasks backing array saves the dominant per-plan allocation.
	// Nothing downstream retains the snapshot past the request — planStep
	// reads it, the journal marshals it synchronously in append.
	sess.mu.Lock()
	if sess.gone {
		// The session was exported to (or fenced off by) another shard after
		// this handler picked it up. Answer retryable; the router routes the
		// retry to the new owner.
		sess.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, CodeSessionFenced,
			"session %s moved to another shard; retry", sess.ID)
		return
	}
	snap := sess.resetSnapScratch()
	if !s.readSnapshot(w, r, snap) {
		sess.mu.Unlock()
		return
	}
	if snap.Workflow != nil && snap.Workflow.NumTasks() != sess.Workflow.NumTasks() {
		n := snap.Workflow.NumTasks()
		sess.mu.Unlock()
		s.writeError(w, http.StatusBadRequest, "bad_request",
			"snapshot workflow has %d tasks, session workflow has %d",
			n, sess.Workflow.NumTasks())
		return
	}
	// The session's DAG is authoritative; clients normally omit theirs.
	snap.Workflow = sess.Workflow
	if err := validateSnapshot(snap, sess.Workflow); err != nil {
		sess.mu.Unlock()
		s.writeError(w, http.StatusBadRequest, "bad_request", "snapshot: %v", err)
		return
	}

	if seq > 0 {
		// Exactly-once planning: a retry of the last interval is answered
		// from the cache without advancing the controller; anything else
		// out of order is a protocol violation the client must not paper
		// over by replanning.
		if seq == sess.lastSeq && sess.lastResp != nil {
			resp := *sess.lastResp
			sess.mu.Unlock()
			s.metrics.PlanRetried()
			s.writeJSON(w, http.StatusOK, &resp)
			return
		}
		if seq != sess.lastSeq+1 {
			last := sess.lastSeq
			sess.mu.Unlock()
			s.writeError(w, http.StatusConflict, "seq_conflict",
				"plan seq %d out of order (last served %d)", seq, last)
			return
		}
	}
	dec, degraded, preds, err := planStep(sess, snap)
	if err != nil {
		sess.mu.Unlock()
		s.writeError(w, http.StatusUnprocessableEntity, "plan_failed", "%v", err)
		return
	}
	assigned := sess.lastSeq + 1
	resp := &PlanResponse{
		SessionID:   sess.ID,
		Iteration:   sess.plans.Add(1),
		Seq:         assigned,
		Decision:    dec,
		Degraded:    degraded,
		Predictions: preds,
	}
	// Journal before releasing the response: any decision a client can
	// have observed must be re-derivable after a crash.
	lean := *snap
	lean.Workflow = nil
	if jerr := sess.wal.append(walRecord{Type: "plan", Seq: assigned, Snapshot: &lean, Response: resp}); jerr != nil {
		if errors.Is(jerr, errFenced) {
			// A peer adopted this session at a higher epoch while we were
			// planning: this process is stale for it. The decision MUST be
			// withheld — the adopter's WAL copy cannot contain it, so
			// releasing it would fork the session's decision stream. Stop
			// serving the session; the client's retry lands on the adopter.
			wal := sess.wal
			sess.wal = nil
			sess.gone = true
			tenant := sess.Tenant
			sess.mu.Unlock()
			wal.close(false)
			s.store.Detach(sess.ID)
			if tenant != "" {
				s.tenants.Release(tenant)
			}
			s.metrics.SessionFenced()
			s.cfg.Logf("wire-serve: session %s fenced by a newer adoption; withholding plan seq %d", sess.ID, assigned)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, CodeSessionFenced,
				"session %s was adopted by another shard; retry", sess.ID)
			return
		}
		s.cfg.Logf("wire-serve: journal append failed for session %s: %v", sess.ID, jerr)
	}
	sess.lastSeq, sess.lastResp = assigned, resp
	ten, tenOK := observeTenancy(sess, snap)
	sess.mu.Unlock()
	if tenOK {
		s.applyTenancy(ten)
	}
	if degraded {
		s.metrics.PlanDegraded()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// planStep advances the session's controller by one interval, degrading to
// the session's reactive-conserving fallback when the controller panics — a
// client feeding inconsistent snapshots gets conservative decisions, not
// failed intervals (and certainly not a crashed daemon). The caller must
// hold sess.mu.
func planStep(sess *Session, snap *monitor.Snapshot) (dec sim.Decision, degraded bool, preds []core.PredictionState, err error) {
	plan := func(ctrl sim.Controller) (d sim.Decision, panicked any) {
		defer func() { panicked = recover() }()
		return ctrl.Plan(snap), nil
	}
	dec, panicked := plan(sess.ctrl)
	if panicked == nil {
		if sd, ok := sess.ctrl.(stateDumper); ok {
			preds = pendingPredictions(sd.State(), snap)
		}
		return dec, false, preds, nil
	}
	if sess.fallback == nil {
		sess.fallback = &baseline.ReactiveConserving{}
	}
	dec, fallbackPanic := plan(sess.fallback)
	if fallbackPanic != nil {
		return sim.Decision{}, true, nil,
			fmt.Errorf("controller rejected snapshot: %v (fallback also failed: %v)", panicked, fallbackPanic)
	}
	return dec, true, nil, nil
}

// pendingPredictions filters the full prediction log down to the wavefront:
// tasks that had not started as of the posted snapshot.
func pendingPredictions(dump core.StateDump, snap *monitor.Snapshot) []core.PredictionState {
	var out []core.PredictionState
	for _, p := range dump.Predictions {
		if int(p.Task) >= len(snap.Tasks) {
			continue
		}
		if st := snap.Tasks[p.Task].State; st == monitor.Blocked || st == monitor.Ready {
			out = append(out, p)
		}
	}
	return out
}

func (s *Server) handleSessionState(w http.ResponseWriter, r *http.Request) {
	sess := s.getSession(w, r)
	if sess == nil {
		return
	}
	resp := SessionStateResponse{
		SessionInfo: s.sessionInfo(sess),
		Plans:       sess.Plans(),
		IdleS:       s.now().Sub(sess.LastUsed()).Seconds(),
	}
	_ = sess.Controller(func(ctrl sim.Controller) error {
		if sd, ok := ctrl.(stateDumper); ok {
			dump := sd.State()
			resp.Controller = &dump
		}
		return nil
	})
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, err := s.store.Get(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "not_found", "session %q not found", id)
		return
	}
	if err := s.store.Delete(id); err != nil {
		// Lost a race against a concurrent delete/evict; that path released
		// the tenant slot.
		s.writeError(w, http.StatusNotFound, "not_found", "session %q not found", id)
		return
	}
	if tenant := sess.TenantTag(); tenant != "" {
		s.tenants.Release(tenant)
	}
	s.metrics.SessionDeleted()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Sessions: s.store.Len(),
		UptimeS:  s.now().Sub(s.start).Seconds(),
	})
}

// handleReadyz is the readiness probe: unlike /healthz (pure liveness — the
// process answers), it returns 503 while the shard should not take traffic:
// draining on shutdown, or replaying adopted journals. The router probes
// this, so a shard mid-replay is never routed to (and never mistaken for
// healed before its sessions are live).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case s.replaying.Load() > 0:
		status, code = "replaying", http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, HealthResponse{
		Status:   status,
		Sessions: s.store.Len(),
		UptimeS:  s.now().Sub(s.start).Seconds(),
	})
}

// ProbeRequest is the POST /v1/admin/probe body: a relayed reachability
// check. When the router loses contact with a shard it asks a surviving peer
// to try before fencing — a shard reachable from a peer but not the router
// is partitioned, not dead, and must not be failed over (its journals are
// live and a concurrent adopter would split-brain).
type ProbeRequest struct {
	// URL is the endpoint to GET on the router's behalf.
	URL string `json:"url"`
}

// ProbeResponse reports what the relay saw.
type ProbeResponse struct {
	// Reachable is true when the target answered HTTP at all — any status
	// counts; a 503 replaying shard is alive, just not ready.
	Reachable bool `json:"reachable"`
	// Status is the HTTP status the target returned (0 when unreachable).
	Status int `json:"status,omitempty"`
	// Error is the transport error when unreachable.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	var req ProbeRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.URL == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "url is required")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodGet, req.URL, nil)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "probe url: %v", err)
		return
	}
	resp, err := s.cfg.ProbeClient.Do(preq)
	if err != nil {
		s.writeJSON(w, http.StatusOK, ProbeResponse{Error: err.Error()})
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.writeJSON(w, http.StatusOK, ProbeResponse{Reachable: true, Status: resp.StatusCode})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var dump MetricsDump
	if r.URL.Query().Get("raw") == "1" {
		dump = s.metrics.DumpRaw(s.now(), s.store.Len())
	} else {
		dump = s.metrics.Dump(s.now(), s.store.Len())
	}
	dump.Tenancy = s.tenants.Counters(dump.UptimeS)
	if s.live != nil {
		lm := s.live.Metrics()
		dump.Live = &lm
	}
	s.writeJSON(w, http.StatusOK, dump)
}

// AdoptRequest is the POST /v1/admin/adopt body: the cluster handoff. The
// router sends either whole journal directories (death failover: everything
// a dead shard owned) or individual WAL paths (planned migration: the files
// a donor exported); this shard claims each session via the fenced-copy
// protocol in handoff.go and resurrects it by WAL replay into its own
// journal directory, so a subsequent handoff can move it again.
type AdoptRequest struct {
	// JournalDirs are whole directories to claim (death failover).
	JournalDirs []string `json:"journal_dirs,omitempty"`
	// JournalFiles are individual session WALs to claim (drain/join
	// rebalancing, from the donor's export response).
	JournalFiles []string `json:"journal_files,omitempty"`
	// From names the shard the sessions come from (log + fence context).
	From string `json:"from,omitempty"`
	// Epoch is the router-issued fencing epoch of this handoff. Zero means
	// unfenced (single-handoff legacy); a positive epoch below the highest
	// this shard has seen is rejected with 409 stale_epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// AdoptResponse reports an adoption's outcome.
type AdoptResponse struct {
	// Sessions is how many of the offered sessions this shard now hosts
	// (including ones an earlier retried attempt already adopted).
	Sessions int `json:"sessions"`
}

func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request) {
	// Replay flips readiness off: until the adopted sessions are live this
	// shard must not be routed to or counted as healed.
	s.replaying.Add(1)
	defer s.replaying.Add(-1)
	var req AdoptRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.JournalDirs) == 0 && len(req.JournalFiles) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "journal_dirs or journal_files is required")
		return
	}
	if !s.advanceEpoch(req.Epoch) {
		s.writeError(w, http.StatusConflict, "stale_epoch",
			"adopt at epoch %d rejected: this shard has seen epoch %d", req.Epoch, s.Epoch())
		return
	}
	total, fresh := 0, 0
	for _, dir := range req.JournalDirs {
		n, f, err := s.AdoptJournalDir(dir, req.Epoch, req.From)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "adopt_failed",
				"replaying %s: %v", dir, err)
			return
		}
		total += n
		fresh += f
	}
	if len(req.JournalFiles) > 0 {
		n, f := s.AdoptJournalFiles(req.JournalFiles, req.Epoch, req.From)
		total += n
		fresh += f
	}
	// total (what the router's handoff accounting wants) includes sessions a
	// retried adoption found already hosted; the adoption counter does not.
	s.metrics.SessionsAdopted(fresh)
	s.cfg.Logf("wire-serve: adopted %d session(s) from %s (%d dir(s), %d file(s), epoch %d)",
		total, req.From, len(req.JournalDirs), len(req.JournalFiles), req.Epoch)
	s.writeJSON(w, http.StatusOK, AdoptResponse{Sessions: total})
}

// ExportRequest is the POST /v1/admin/export body: the donor half of a
// planned migration. Each named session is detached from this shard — its
// in-flight plan, if any, finishes first — and its WAL path is returned for
// the new owner to adopt. Until the adopt lands, requests for the session
// answer 503 and the router holds them off.
type ExportRequest struct {
	// SessionIDs are the sessions to detach and hand over.
	SessionIDs []string `json:"session_ids"`
	// Epoch is the router-issued fencing epoch of this handoff (see
	// AdoptRequest.Epoch).
	Epoch int64 `json:"epoch,omitempty"`
	// To names the destination shard (log context only; per-session
	// destinations are the router's concern).
	To string `json:"to,omitempty"`
}

// ExportResponse reports which sessions were detached for migration.
type ExportResponse struct {
	// Sessions is how many sessions were exported.
	Sessions int `json:"sessions"`
	// JournalFiles are the WAL paths of the exported sessions, ready for an
	// AdoptRequest.JournalFiles handoff.
	JournalFiles []string `json:"journal_files,omitempty"`
	// Missing lists requested IDs this shard does not host (already
	// migrated, deleted, or never here) or cannot migrate by file — not an
	// error: the router reconciles them against its own routing state.
	Missing []string `json:"missing,omitempty"`
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	var req ExportRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.SessionIDs) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "session_ids is required")
		return
	}
	if !s.advanceEpoch(req.Epoch) {
		s.writeError(w, http.StatusConflict, "stale_epoch",
			"export at epoch %d rejected: this shard has seen epoch %d", req.Epoch, s.Epoch())
		return
	}
	var resp ExportResponse
	for _, id := range req.SessionIDs {
		path, ok := s.exportSession(id)
		if !ok {
			resp.Missing = append(resp.Missing, id)
			continue
		}
		resp.JournalFiles = append(resp.JournalFiles, path)
		resp.Sessions++
	}
	s.metrics.SessionsExported(resp.Sessions)
	s.cfg.Logf("wire-serve: exported %d session(s) to %s (%d missing, epoch %d)",
		resp.Sessions, req.To, len(resp.Missing), req.Epoch)
	s.writeJSON(w, http.StatusOK, &resp)
}

// SessionListResponse is the GET /v1/admin/sessions body: the IDs this shard
// hosts, for the router's rebalancing planner.
type SessionListResponse struct {
	Sessions []string `json:"sessions"`
}

func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, SessionListResponse{Sessions: s.store.IDs()})
}
