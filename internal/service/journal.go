package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dagio"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// The crash-recovery journal: with Config.JournalDir set, every session
// appends its lifecycle to an append-only per-session write-ahead log
// (<dir>/<id>.wal, one JSON record per line). A plan is journaled BEFORE its
// response is released, so any decision a client may have observed is
// re-derivable; a restarted daemon rebuilds its session store by replaying
// each WAL through a fresh controller of the same policy. Deleting or
// evicting a session removes its WAL; sessions alive at shutdown are
// recovered on the next start.

// walRecord is one journal line. Type "create" opens the log and carries
// everything needed to rebuild the controller; each "plan" carries the
// snapshot that advanced it and the response that was (about to be) served.
type walRecord struct {
	Type string `json:"type"`

	// create
	ID         string          `json:"id,omitempty"`
	Policy     string          `json:"policy,omitempty"`
	Workflow   *dagio.Document `json:"workflow,omitempty"`
	Controller *ControllerSpec `json:"controller,omitempty"`
	Tenant     string          `json:"tenant,omitempty"`
	DeadlineS  float64         `json:"deadline_s,omitempty"`
	CreatedAt  time.Time       `json:"created_at"`

	// plan
	Seq      int64             `json:"seq,omitempty"`
	Snapshot *monitor.Snapshot `json:"snapshot,omitempty"`
	Response *PlanResponse     `json:"response,omitempty"`
}

// Fsync modes (Config.FsyncMode): when a WAL append reaches stable storage.
const (
	// FsyncRecord syncs every append before the decision is released: zero
	// loss window, one fsync per plan.
	FsyncRecord = "record"
	// FsyncPerInterval syncs at most once per Config.FsyncInterval (plus on
	// close): a bounded power-loss window, amortized fsync cost. In-process
	// readers (the fenced-copy handoff, torn-tail recovery after SIGKILL)
	// see unsynced writes, so only an OS crash can lose the tail — and a
	// torn tail truncates to the last whole record on replay.
	FsyncPerInterval = "interval"
	// FsyncOff never syncs; the OS flushes when it pleases.
	FsyncOff = "off"
)

// journal is one session's WAL handle. It has its own mutex: appends run
// under the session mutex, but Close races with in-flight plans when a
// session is deleted.
type journal struct {
	path string
	f    *os.File
	enc  *json.Encoder
	// claimEpoch is the fencing epoch this WAL was opened (or adopted) at;
	// a fence file bearing a strictly higher epoch means a peer has since
	// claimed the session and this handle belongs to a stale process.
	claimEpoch int64
	// checkFence enables the fence checks around append (shard mode only —
	// a standalone daemon has no peers that could fence it).
	checkFence bool
	// mode and syncEvery implement the fsync policy; lastSync tracks the
	// per-interval mode's last sync instant.
	mode      string
	syncEvery time.Duration
	lastSync  time.Time
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{path: path, f: f, enc: json.NewEncoder(f), mode: FsyncRecord}, nil
}

// openJournalAt opens a WAL carrying the server's fencing posture: the claim
// epoch the handle was established at, with fence checks on in shard mode.
func (s *Server) openJournalAt(path string, claimEpoch int64) (*journal, error) {
	j, err := openJournal(path)
	if err != nil {
		return nil, err
	}
	j.claimEpoch = claimEpoch
	j.checkFence = s.cfg.ShardMode
	j.mode = s.cfg.FsyncMode
	j.syncEvery = s.cfg.FsyncInterval
	return j, nil
}

// sync applies the fsync policy after one append.
func (j *journal) sync() error {
	switch j.mode {
	case FsyncOff:
		return nil
	case FsyncPerInterval:
		now := time.Now()
		if !j.lastSync.IsZero() && now.Sub(j.lastSync) < j.syncEvery {
			return nil
		}
		j.lastSync = now
	}
	return j.f.Sync()
}

// append writes one record and syncs it to stable storage. In shard mode it
// re-reads the session's fence file AFTER the sync: an adopter fences first
// and copies the WAL second, so a stale writer that raced the handoff either
// appended before the fence landed (the copy includes the record) or sees
// the fence here and gets errFenced — in which case the caller must withhold
// the decision, because the adopter's copy cannot contain it.
func (j *journal) append(rec walRecord) error {
	if j == nil {
		return nil
	}
	if j.checkFence && fencedPast(j.path, j.claimEpoch) {
		return errFenced
	}
	if err := j.enc.Encode(rec); err != nil {
		return err
	}
	if err := j.sync(); err != nil {
		return err
	}
	if j.checkFence && fencedPast(j.path, j.claimEpoch) {
		return errFenced
	}
	return nil
}

// close closes the file, removing it when remove is set (deleted sessions
// must not resurrect on restart). A kept file is synced first, so the
// per-interval and off modes leave nothing in flight on a clean shutdown.
func (j *journal) close(remove bool) {
	if j == nil {
		return
	}
	if !remove {
		_ = j.f.Sync()
	}
	_ = j.f.Close()
	if remove {
		_ = os.Remove(j.path)
	}
}

func (s *Server) journalPath(id string) string {
	return filepath.Join(s.cfg.JournalDir, id+".wal")
}

// openSessionJournal attaches a WAL to a freshly created session and writes
// its create record. Journal trouble is logged, never fatal: the daemon
// degrades to memory-only sessions rather than refusing service.
func (s *Server) openSessionJournal(sess *Session, req *CreateSessionRequest) {
	if s.cfg.JournalDir == "" {
		return
	}
	j, err := s.openJournalAt(s.journalPath(sess.ID), s.Epoch())
	if err != nil {
		s.cfg.Logf("wire-serve: journal disabled for session %s: %v", sess.ID, err)
		return
	}
	doc := req.Workflow
	if doc == nil {
		doc = dagio.Encode(sess.Workflow)
	}
	rec := walRecord{
		Type:       "create",
		ID:         sess.ID,
		Policy:     sess.Policy,
		Workflow:   doc,
		Controller: req.Controller,
		Tenant:     req.Tenant,
		DeadlineS:  req.DeadlineS,
		CreatedAt:  sess.CreatedAt(),
	}
	if err := j.append(rec); err != nil {
		s.cfg.Logf("wire-serve: journal disabled for session %s: %v", sess.ID, err)
		j.close(true)
		return
	}
	sess.setWAL(j)
}

// recoverJournals rebuilds the session store from JournalDir. Called once
// from New, before the daemon serves traffic.
func (s *Server) recoverJournals() {
	if _, _, err := s.ReplayJournalDir(s.cfg.JournalDir); err != nil {
		s.cfg.Logf("wire-serve: journal recovery: %v", err)
	}
}

// ReplayJournalDir replays every session WAL in dir into the live store.
// It backs startup recovery (dir = the server's own JournalDir): fenced WALs
// — sessions a peer adopted at some epoch while this process was down — are
// skipped, so a restarted shard cannot resurrect sessions that now live
// elsewhere (it re-enters the cluster empty and is rehydrated by a join).
// Per-WAL failures are logged and skipped — a session whose ID is already
// hosted counts in total but not in fresh. The returned error covers only an
// unreadable directory.
func (s *Server) ReplayJournalDir(dir string) (total, fresh int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".wal" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if ep, fenced := readFence(path); fenced {
			s.cfg.Logf("wire-serve: journal recovery: %s fenced at epoch %d (adopted by a peer); skipping", e.Name(), ep)
			continue
		}
		if err := s.recoverSession(path, s.Epoch()); err != nil {
			if errors.Is(err, ErrDuplicateID) {
				total++
				continue
			}
			s.cfg.Logf("wire-serve: journal recovery: %s: %v", e.Name(), err)
			continue
		}
		total++
		fresh++
	}
	return total, fresh, nil
}

// recoverSession replays one WAL: it rebuilds the controller from the create
// record, replays every journaled snapshot through it in sequence order
// (skipping duplicate sequence numbers — a crash mid-append can leave the
// same interval twice), restores the exactly-once cache from the last
// record, and re-attaches the journal for appends at claimEpoch (the fencing
// epoch this server's claim on the WAL was established at). A torn trailing
// record is truncated away. The session is replayed fully detached and only
// inserted into the store at the end, so adoption while the daemon serves
// traffic can never expose a half-replayed controller.
func (s *Server) recoverSession(path string, claimEpoch int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	dec := json.NewDecoder(f)
	var create walRecord
	if err := dec.Decode(&create); err != nil {
		return fmt.Errorf("unreadable create record: %w", err)
	}
	if create.Type != "create" || create.ID == "" || create.Workflow == nil {
		return fmt.Errorf("malformed create record")
	}
	wf, err := dagio.Decode(create.Workflow)
	if err != nil {
		return fmt.Errorf("workflow: %w", err)
	}
	ctrl, err := NewPolicyController(create.Policy, create.Controller)
	if err != nil {
		return err
	}
	createdAt := create.CreatedAt
	if createdAt.IsZero() {
		createdAt = s.now()
	}
	sess := s.store.NewDetached(create.ID, create.Policy, wf, ctrl, createdAt)
	sess.Tenant = create.Tenant
	sess.DeadlineS = create.DeadlineS

	goodOffset := dec.InputOffset()
	torn := false
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if !errors.Is(err, io.EOF) {
				torn = true
				s.cfg.Logf("wire-serve: journal %s: torn record after offset %d: %v; truncating",
					filepath.Base(path), goodOffset, err)
			}
			break
		}
		if rec.Type != "plan" || rec.Snapshot == nil || rec.Response == nil {
			goodOffset = dec.InputOffset()
			continue
		}
		if rec.Seq <= sess.lastSeq {
			// Duplicate interval (two writers during a crash window, or a
			// replayed retry): first write wins, like the live seq cache.
			goodOffset = dec.InputOffset()
			continue
		}
		rec.Snapshot.Workflow = wf
		dec2, degraded, _, perr := planStep(sess, rec.Snapshot)
		if perr != nil {
			s.cfg.Logf("wire-serve: journal %s: replaying seq %d: %v", filepath.Base(path), rec.Seq, perr)
		} else if degraded != rec.Response.Degraded || !sameDecision(dec2, rec.Response.Decision) {
			s.cfg.Logf("wire-serve: journal %s: seq %d replay diverged from recorded decision; keeping record",
				filepath.Base(path), rec.Seq)
		}
		// The recorded response is authoritative: it is what the client saw.
		sess.lastSeq = rec.Seq
		sess.lastResp = rec.Response
		sess.plans.Store(rec.Response.Iteration)
		goodOffset = dec.InputOffset()
	}
	if torn {
		if err := os.Truncate(path, goodOffset); err != nil {
			return fmt.Errorf("truncate torn tail: %w", err)
		}
	}

	j, err := s.openJournalAt(path, claimEpoch)
	if err != nil {
		s.cfg.Logf("wire-serve: journal disabled for recovered session %s: %v", sess.ID, err)
	} else {
		sess.wal = j
	}
	if err := s.store.Insert(sess); err != nil {
		sess.takeWAL().close(false)
		return err
	}
	if sess.Tenant != "" {
		// Recovery bypasses the admission gate: the daemon already accepted
		// this session, so replay must never drop it — but its slot must
		// count against the tenant again.
		s.tenants.Reattach(sess.Tenant)
	}
	s.metrics.JournalReplayed()
	s.cfg.Logf("wire-serve: recovered session %s (%s, %d plan(s)) from journal", sess.ID, sess.Policy, sess.lastSeq)
	return nil
}

// sameDecision compares two decisions structurally.
func sameDecision(a, b sim.Decision) bool {
	if a.Launch != b.Launch || len(a.Releases) != len(b.Releases) {
		return false
	}
	for i := range a.Releases {
		if a.Releases[i] != b.Releases[i] {
			return false
		}
	}
	return true
}
