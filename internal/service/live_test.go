package service

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/exec"
)

func TestLiveControllerFactoryResolvesEveryPolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		var spec json.RawMessage
		if name == "deadline" {
			spec = json.RawMessage(`{"deadline_s": 600}`)
		}
		ctrl, err := LiveControllerFactory(name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ctrl.Name() == "" {
			t.Fatalf("%s: empty controller name", name)
		}
	}
	if _, err := LiveControllerFactory("no-such-policy", nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := LiveControllerFactory("wire", json.RawMessage(`{garbage`)); err == nil {
		t.Fatal("malformed controller spec accepted")
	}
}

func TestLivePlaneToggle(t *testing.T) {
	if srv := New(Config{}); srv.Live() == nil {
		t.Fatal("live plane missing under default config")
	}
	if srv := New(Config{LiveMaxRuns: -1}); srv.Live() != nil {
		t.Fatal("live plane present with LiveMaxRuns < 0")
	}
}

// TestServeDrainsLiveLeasesOnShutdown: shutdown must hold the HTTP plane open
// until in-flight agent leases report, bounded by DrainTimeout — connection
// draining alone would abandon the agent mid-task and lose its measurement.
func TestServeDrainsLiveLeasesOnShutdown(t *testing.T) {
	srv := New(Config{DrainTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	b := dag.NewBuilder("one")
	s := b.AddStage("work")
	b.AddTask(s, "t", 10000, 0, 1)
	client := exec.NewLiveClient("http://"+ln.Addr().String(), nil)
	info, err := client.CreateRun(ctx, &exec.CreateRunRequest{
		Workflow:         dagio.Encode(b.MustBuild()),
		SlotsPerInstance: 1,
		LagTimeS:         0.001,
		ChargingUnitS:    10,
		MaxInstances:     1,
		Timescale:        1,
		Start:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := client.Register(ctx, info.ID, "w", 1)
	if err != nil {
		t.Fatal(err)
	}
	var lease exec.Lease
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Poll(context.Background(), info.ID, reg.AgentID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Leases) == 1 {
			lease = resp.Leases[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never granted")
		}
	}

	// Begin shutdown with the lease outstanding, then report it over HTTP a
	// beat later: the request must still be served.
	cancel()
	time.Sleep(100 * time.Millisecond)
	ack, err := client.Complete(context.Background(), info.ID, reg.AgentID, lease.ID, exec.CompleteReport{ExecS: 10000})
	if err != nil {
		t.Fatalf("complete during drain: %v", err)
	}
	if ack.Stale {
		t.Fatal("completion during drain acked stale")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if got := srv.Live().Metrics().Counters.LeasesLost; got != 0 {
		t.Fatalf("%d leases lost across shutdown", got)
	}
}
