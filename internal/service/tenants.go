package service

import (
	"net/http"
	"sort"
	"sync"

	"repro/internal/monitor"
)

// The live-plane half of internal/tenancy: sessions carry a tenant identity,
// and a per-daemon tenant registry arbitrates admissions the same way the
// multi-run simulator's arbiter does — a tenant whose projected spend reaches
// its budget (or whose active-session cap is full) has new sessions answered
// 429 tenant_throttled with a Retry-After hint, and the pressure releases as
// its sessions finish and stop accruing. Spend is metered from the posted
// monitoring snapshots: every planned interval charges the tenant
// instances x interval seconds against the charging unit.

// TenantSpec is the POST /v1/tenants body: create or update a tenant.
type TenantSpec struct {
	// Name identifies the tenant (same character set as session IDs).
	Name string `json:"name"`
	// BudgetUnits caps the tenant's projected spend in charging units;
	// 0 = unlimited.
	BudgetUnits int `json:"budget_units,omitempty"`
	// MaxActive caps the tenant's concurrently active sessions;
	// 0 = unlimited.
	MaxActive int `json:"max_active,omitempty"`
}

// TenantInfo is one tenant's registry state in API responses.
type TenantInfo struct {
	TenantSpec
	// ActiveSessions is the tenant's current session count.
	ActiveSessions int `json:"active_sessions"`
	// ArrivalsTotal counts admitted session creates.
	ArrivalsTotal int64 `json:"arrivals_total"`
	// ThrottledTotal counts creates refused by budget or session cap.
	ThrottledTotal int64 `json:"throttled_total"`
	// SpendUnits is the accrued spend in charging units (fractional:
	// metered as instance-seconds over the charging unit).
	SpendUnits float64 `json:"spend_units"`
	// DeadlineMisses counts sessions observed past their deadline with
	// work remaining.
	DeadlineMisses int64 `json:"deadline_misses_total"`
}

// TenantListResponse is the GET /v1/tenants body.
type TenantListResponse struct {
	Tenants []TenantInfo `json:"tenants"`
}

// tenantState is one tenant's mutable registry entry.
type tenantState struct {
	spec     TenantSpec
	active   int
	arrivals int64
	throttle int64
	// spendS is accrued instance-seconds across all of the tenant's
	// sessions; spendS/unitS is the spend in charging units.
	spendS float64
	// unitS is the last charging unit observed in the tenant's snapshots
	// (spend is reported in units of it; 0 until the first plan).
	unitS  float64
	misses int64
}

func (t *tenantState) spendUnits() float64 {
	if t.unitS <= 0 {
		return 0
	}
	return t.spendS / t.unitS
}

// committedUnits projects the tenant's spend: accrued units plus one unit per
// active session (an admitted session commits at least its first unit) — the
// same lookahead the simulator-plane accountant uses.
func (t *tenantState) committedUnits() float64 {
	return t.spendUnits() + float64(t.active)
}

// TenantRegistry arbitrates session admissions across tenants. All methods
// are safe for concurrent use.
type TenantRegistry struct {
	mu      sync.Mutex
	tenants map[string]*tenantState
}

// NewTenantRegistry returns an empty registry.
func NewTenantRegistry() *TenantRegistry {
	return &TenantRegistry{tenants: make(map[string]*tenantState)}
}

func (r *TenantRegistry) get(name string) *tenantState {
	t, ok := r.tenants[name]
	if !ok {
		t = &tenantState{spec: TenantSpec{Name: name}}
		r.tenants[name] = t
	}
	return t
}

// Configure creates or updates a tenant's budget and session cap.
func (r *TenantRegistry) Configure(spec TenantSpec) TenantInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.get(spec.Name)
	t.spec = spec
	return r.info(t)
}

// Admit decides a tenant-tagged session create. Admission succeeds unless the
// tenant's active-session cap is full or its projected spend has reached its
// budget; the austerity exception always admits a tenant with no active
// sessions, so a budget can throttle but never permanently starve.
func (r *TenantRegistry) Admit(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.get(name)
	throttled := false
	if t.spec.MaxActive > 0 && t.active >= t.spec.MaxActive {
		throttled = true
	}
	if t.spec.BudgetUnits > 0 && t.active > 0 && t.committedUnits()+1 > float64(t.spec.BudgetUnits) {
		throttled = true
	}
	if throttled {
		t.throttle++
		return false
	}
	t.arrivals++
	t.active++
	return true
}

// Reattach re-registers a recovered or adopted session without the admission
// gate: journal replay must never drop sessions the daemon already accepted.
func (r *TenantRegistry) Reattach(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.get(name)
	t.arrivals++
	t.active++
}

// Release returns a tenant slot when a session is deleted, evicted, exported,
// or fenced.
func (r *TenantRegistry) Release(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[name]; ok && t.active > 0 {
		t.active--
	}
}

// ObservePlan meters one planned interval: the tenant's session held
// instances for intervalS seconds, charged against unitS-second units.
func (r *TenantRegistry) ObservePlan(name string, instances int, intervalS, unitS float64) {
	if instances < 0 || intervalS <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.get(name)
	t.spendS += float64(instances) * intervalS
	if unitS > 0 {
		t.unitS = unitS
	}
}

// RecordMiss counts one session observed past its deadline with work
// remaining.
func (r *TenantRegistry) RecordMiss(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.get(name).misses++
}

func (r *TenantRegistry) info(t *tenantState) TenantInfo {
	return TenantInfo{
		TenantSpec:     t.spec,
		ActiveSessions: t.active,
		ArrivalsTotal:  t.arrivals,
		ThrottledTotal: t.throttle,
		SpendUnits:     t.spendUnits(),
		DeadlineMisses: t.misses,
	}
}

// Tenant returns one tenant's state; ok is false when it was never seen.
func (r *TenantRegistry) Tenant(name string) (TenantInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if !ok {
		return TenantInfo{}, false
	}
	return r.info(t), true
}

// List returns every tenant's state, sorted by name.
func (r *TenantRegistry) List() []TenantInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantInfo, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, r.info(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters aggregates the registry into the /metrics tenancy block. uptimeS
// scales the spend rate.
func (r *TenantRegistry) Counters(uptimeS float64) TenancyCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	var c TenancyCounters
	spend := 0.0
	for _, t := range r.tenants {
		if t.active > 0 {
			c.TenantsActive++
		}
		c.ArrivalsTotal += t.arrivals
		c.AdmissionsThrottledTotal += t.throttle
		c.DeadlineMissesTotal += t.misses
		spend += t.spendUnits()
	}
	if uptimeS > 0 {
		c.BudgetSpendRate = spend * 3600 / uptimeS
	}
	return c
}

// ValidTenantName bounds tenant names to the session-ID character set so they
// are safe in journals and logs.
func ValidTenantName(name string) bool { return ValidSessionID(name) }

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var spec TenantSpec
	if !s.readJSON(w, r, &spec) {
		return
	}
	if !ValidTenantName(spec.Name) {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid tenant name %q", spec.Name)
		return
	}
	if spec.BudgetUnits < 0 || spec.MaxActive < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "budget_units and max_active must be non-negative")
		return
	}
	s.writeJSON(w, http.StatusOK, s.tenants.Configure(spec))
}

func (s *Server) handleListTenants(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, TenantListResponse{Tenants: s.tenants.List()})
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := s.tenants.Tenant(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", "tenant %q not found", name)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// sessionTenancy captures the plan-path observations the registry needs,
// taken under the session mutex and applied after it is released.
type sessionTenancy struct {
	tenant    string
	instances int
	intervalS float64
	unitS     float64
	miss      bool
}

// observeTenancy meters one planned interval against the session's tenant and
// detects a deadline pass: a session past its deadline (on the snapshot's run
// clock) with tasks remaining has certainly missed, however it ends. The
// caller must hold sess.mu; the returned record is applied with applyTenancy
// after the mutex is released.
func observeTenancy(sess *Session, snap *monitor.Snapshot) (sessionTenancy, bool) {
	if sess.Tenant == "" {
		return sessionTenancy{}, false
	}
	st := sessionTenancy{
		tenant:    sess.Tenant,
		instances: len(snap.Instances),
		intervalS: float64(snap.Interval),
		unitS:     float64(snap.ChargingUnit),
	}
	if sess.DeadlineS > 0 && !sess.missRecorded && float64(snap.Now) > sess.DeadlineS && snap.RemainingTasks() > 0 {
		sess.missRecorded = true
		st.miss = true
	}
	return st, true
}

func (s *Server) applyTenancy(st sessionTenancy) {
	s.tenants.ObservePlan(st.tenant, st.instances, st.intervalS, st.unitS)
	if st.miss {
		s.tenants.RecordMiss(st.tenant)
	}
}
