package service

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any service goroutine (janitor, live-run
// reclaimer, loadgen worker, ...) outlives a passing test run.
func TestMain(m *testing.M) { leakcheck.Main(m) }
