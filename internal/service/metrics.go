package service

import (
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/stats"
)

// latWindow bounds the per-endpoint latency reservoir: quantiles reflect the
// most recent samples so a long-lived daemon's report stays current.
const latWindow = 4096

// Metrics aggregates the daemon's operational counters. All methods are safe
// for concurrent use.
type Metrics struct {
	mu    sync.Mutex
	start time.Time

	sessionsCreated  int64
	sessionsDeleted  int64
	sessionsEvicted  int64
	sessionsRejected int64

	planRetries    int64
	degradedPlans  int64
	journalReplays int64

	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	count  int64
	errors int64
	// lat is a ring of the last latWindow request durations in ms.
	lat  []float64
	next int
	full bool
}

// NewMetrics returns zeroed metrics with the uptime clock started.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{start: now, endpoints: make(map[string]*endpointMetrics)}
}

// SessionCreated / SessionDeleted / SessionsEvicted / SessionRejected bump
// the lifecycle counters.
func (m *Metrics) SessionCreated() { m.mu.Lock(); m.sessionsCreated++; m.mu.Unlock() }

// SessionDeleted counts an explicit DELETE.
func (m *Metrics) SessionDeleted() { m.mu.Lock(); m.sessionsDeleted++; m.mu.Unlock() }

// SessionsEvicted counts janitor TTL evictions.
func (m *Metrics) SessionsEvicted(n int) {
	if n == 0 {
		return
	}
	m.mu.Lock()
	m.sessionsEvicted += int64(n)
	m.mu.Unlock()
}

// SessionRejected counts creates refused at the capacity cap.
func (m *Metrics) SessionRejected() { m.mu.Lock(); m.sessionsRejected++; m.mu.Unlock() }

// PlanRetried counts plan requests answered from the exactly-once seq cache:
// each one is a client retry the daemon deduplicated.
func (m *Metrics) PlanRetried() { m.mu.Lock(); m.planRetries++; m.mu.Unlock() }

// PlanDegraded counts decisions served by a session's fallback policy after
// its controller panicked.
func (m *Metrics) PlanDegraded() { m.mu.Lock(); m.degradedPlans++; m.mu.Unlock() }

// JournalReplayed counts sessions rebuilt from their write-ahead logs at
// startup.
func (m *Metrics) JournalReplayed() { m.mu.Lock(); m.journalReplays++; m.mu.Unlock() }

// Observe records one request against an endpoint label.
func (m *Metrics) Observe(endpoint string, d time.Duration, isError bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[endpoint]
	if em == nil {
		em = &endpointMetrics{lat: make([]float64, 0, 64)}
		m.endpoints[endpoint] = em
	}
	em.count++
	if isError {
		em.errors++
	}
	ms := float64(d) / float64(time.Millisecond)
	if len(em.lat) < latWindow && !em.full {
		em.lat = append(em.lat, ms)
		return
	}
	em.full = true
	em.lat[em.next] = ms
	em.next = (em.next + 1) % latWindow
}

// LatencySummary reports quantiles over a latency sample, in milliseconds.
type LatencySummary struct {
	Samples int     `json:"samples"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Max     float64 `json:"max"`
}

// SummarizeLatencies computes the quantile summary of a millisecond sample.
func SummarizeLatencies(ms []float64) LatencySummary {
	s := LatencySummary{Samples: len(ms)}
	s.P50, _ = stats.Quantile(ms, 0.50)
	s.P90, _ = stats.Quantile(ms, 0.90)
	s.P99, _ = stats.Quantile(ms, 0.99)
	s.Max, _ = stats.Max(ms)
	return s
}

// SessionCounters is the sessions block of the metrics document.
type SessionCounters struct {
	Active   int   `json:"active"`
	Created  int64 `json:"created"`
	Deleted  int64 `json:"deleted"`
	Evicted  int64 `json:"evicted"`
	Rejected int64 `json:"rejected"`
}

// EndpointCounters is one endpoint's block of the metrics document.
type EndpointCounters struct {
	Count     int64           `json:"count"`
	Errors    int64           `json:"errors,omitempty"`
	LatencyMs *LatencySummary `json:"latency_ms,omitempty"`
}

// FaultToleranceCounters is the fault-tolerance block of the metrics
// document.
type FaultToleranceCounters struct {
	// RetriesTotal counts plan requests answered from the exactly-once
	// sequence cache (deduplicated client retries).
	RetriesTotal int64 `json:"retries_total"`
	// DegradedPlansTotal counts fallback decisions after controller panics.
	DegradedPlansTotal int64 `json:"degraded_plans_total"`
	// JournalReplaysTotal counts sessions rebuilt from WALs at startup.
	JournalReplaysTotal int64 `json:"journal_replays_total"`
}

// MetricsDump is the GET /metrics response body.
type MetricsDump struct {
	UptimeS        float64                     `json:"uptime_s"`
	Sessions       SessionCounters             `json:"sessions"`
	FaultTolerance FaultToleranceCounters      `json:"fault_tolerance"`
	// Live aggregates the live execution plane (agents, leases, reclaims);
	// present only when the server hosts a live-run registry.
	Live      *exec.RegistryMetrics       `json:"live,omitempty"`
	Endpoints map[string]EndpointCounters `json:"endpoints"`
}

// Dump snapshots the counters. activeSessions is supplied by the caller
// (the store owns that gauge).
func (m *Metrics) Dump(now time.Time, activeSessions int) MetricsDump {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := MetricsDump{
		UptimeS: now.Sub(m.start).Seconds(),
		Sessions: SessionCounters{
			Active:   activeSessions,
			Created:  m.sessionsCreated,
			Deleted:  m.sessionsDeleted,
			Evicted:  m.sessionsEvicted,
			Rejected: m.sessionsRejected,
		},
		FaultTolerance: FaultToleranceCounters{
			RetriesTotal:        m.planRetries,
			DegradedPlansTotal:  m.degradedPlans,
			JournalReplaysTotal: m.journalReplays,
		},
		Endpoints: make(map[string]EndpointCounters, len(m.endpoints)),
	}
	for name, em := range m.endpoints {
		ec := EndpointCounters{Count: em.count, Errors: em.errors}
		if len(em.lat) > 0 {
			sum := SummarizeLatencies(em.lat)
			ec.LatencyMs = &sum
		}
		d.Endpoints[name] = ec
	}
	return d
}
