package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/stats"
)

// latWindow bounds the per-endpoint latency reservoir: quantiles reflect the
// most recent samples so a long-lived daemon's report stays current.
const latWindow = 4096

// Metrics aggregates the daemon's operational counters. All methods are safe
// for concurrent use. Counters are atomics and the latency rings take one
// lock per endpoint, so requests to different endpoints never contend and
// plan-path instrumentation stays off the global-lock profile (the original
// implementation serialized every request on a single mutex).
type Metrics struct {
	start time.Time

	sessionsCreated  atomic.Int64
	sessionsDeleted  atomic.Int64
	sessionsEvicted  atomic.Int64
	sessionsRejected atomic.Int64

	planRetries      atomic.Int64
	degradedPlans    atomic.Int64
	journalReplays   atomic.Int64
	sessionsAdopted  atomic.Int64
	sessionsExported atomic.Int64
	fencedRejects    atomic.Int64
	encodeErrors     atomic.Int64

	// endpoints maps endpoint name → *endpointMetrics. It stops growing
	// after every endpoint has been hit once, which is sync.Map's ideal
	// case: steady-state lookups are plain atomic loads with no shared
	// write, so Observe calls on different endpoints never touch a common
	// cache line.
	endpoints sync.Map
}

type endpointMetrics struct {
	count  atomic.Int64
	errors atomic.Int64

	// mu guards the latency ring below.
	mu sync.Mutex
	// lat is a ring of the last latWindow request durations in ms.
	lat  []float64
	next int
	full bool
}

// NewMetrics returns zeroed metrics with the uptime clock started.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{start: now}
}

// SessionCreated / SessionDeleted / SessionsEvicted / SessionRejected bump
// the lifecycle counters.
func (m *Metrics) SessionCreated() { m.sessionsCreated.Add(1) }

// SessionDeleted counts an explicit DELETE.
func (m *Metrics) SessionDeleted() { m.sessionsDeleted.Add(1) }

// SessionsEvicted counts janitor TTL evictions.
func (m *Metrics) SessionsEvicted(n int) {
	if n != 0 {
		m.sessionsEvicted.Add(int64(n))
	}
}

// SessionRejected counts creates refused at the capacity cap.
func (m *Metrics) SessionRejected() { m.sessionsRejected.Add(1) }

// PlanRetried counts plan requests answered from the exactly-once seq cache:
// each one is a client retry the daemon deduplicated.
func (m *Metrics) PlanRetried() { m.planRetries.Add(1) }

// PlanDegraded counts decisions served by a session's fallback policy after
// its controller panicked.
func (m *Metrics) PlanDegraded() { m.degradedPlans.Add(1) }

// JournalReplayed counts sessions rebuilt from their write-ahead logs at
// startup.
func (m *Metrics) JournalReplayed() { m.journalReplays.Add(1) }

// SessionsAdopted counts sessions resurrected from a dead peer's journal
// directory via the cluster handoff endpoint.
func (m *Metrics) SessionsAdopted(n int) {
	if n != 0 {
		m.sessionsAdopted.Add(int64(n))
	}
}

// SessionsExported counts sessions detached and handed to a peer via the
// planned-migration export endpoint.
func (m *Metrics) SessionsExported(n int) {
	if n != 0 {
		m.sessionsExported.Add(int64(n))
	}
}

// SessionFenced counts plan decisions withheld because a peer adopted the
// session at a higher epoch while this shard was planning it.
func (m *Metrics) SessionFenced() { m.fencedRejects.Add(1) }

// EncodeError counts responses whose JSON encoding failed (served as 500
// encode_failed instead of a truncated 200).
func (m *Metrics) EncodeError() { m.encodeErrors.Add(1) }

// endpoint returns the per-endpoint state, creating it on first use.
func (m *Metrics) endpoint(name string) *endpointMetrics {
	if v, ok := m.endpoints.Load(name); ok {
		return v.(*endpointMetrics)
	}
	v, _ := m.endpoints.LoadOrStore(name, &endpointMetrics{lat: make([]float64, 0, 64)})
	return v.(*endpointMetrics)
}

// Observe records one request against an endpoint label.
func (m *Metrics) Observe(endpoint string, d time.Duration, isError bool) {
	em := m.endpoint(endpoint)
	em.count.Add(1)
	if isError {
		em.errors.Add(1)
	}
	ms := float64(d) / float64(time.Millisecond)
	em.mu.Lock()
	if len(em.lat) < latWindow && !em.full {
		em.lat = append(em.lat, ms)
		em.mu.Unlock()
		return
	}
	em.full = true
	em.lat[em.next] = ms
	em.next = (em.next + 1) % latWindow
	em.mu.Unlock()
}

// LatencySummary reports quantiles over a latency sample, in milliseconds.
type LatencySummary struct {
	Samples int     `json:"samples"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Max     float64 `json:"max"`
}

// SummarizeLatencies computes the quantile summary of a millisecond sample.
func SummarizeLatencies(ms []float64) LatencySummary {
	s := LatencySummary{Samples: len(ms)}
	s.P50, _ = stats.Quantile(ms, 0.50)
	s.P90, _ = stats.Quantile(ms, 0.90)
	s.P99, _ = stats.Quantile(ms, 0.99)
	s.Max, _ = stats.Max(ms)
	return s
}

// SessionCounters is the sessions block of the metrics document.
type SessionCounters struct {
	Active   int   `json:"active"`
	Created  int64 `json:"created"`
	Deleted  int64 `json:"deleted"`
	Evicted  int64 `json:"evicted"`
	Rejected int64 `json:"rejected"`
}

// EndpointCounters is one endpoint's block of the metrics document.
type EndpointCounters struct {
	Count     int64           `json:"count"`
	Errors    int64           `json:"errors,omitempty"`
	LatencyMs *LatencySummary `json:"latency_ms,omitempty"`
	// RawMs is the endpoint's raw latency window (most recent samples, ms).
	// Present only when the dump was taken with raw samples enabled
	// (GET /metrics?raw=1): the cluster router merges the windows of every
	// shard sample-by-sample before summarizing, which no quantile merge of
	// the per-shard summaries could reproduce.
	RawMs []float64 `json:"latency_raw_ms,omitempty"`
}

// FaultToleranceCounters is the fault-tolerance block of the metrics
// document.
type FaultToleranceCounters struct {
	// RetriesTotal counts plan requests answered from the exactly-once
	// sequence cache (deduplicated client retries).
	RetriesTotal int64 `json:"retries_total"`
	// DegradedPlansTotal counts fallback decisions after controller panics.
	DegradedPlansTotal int64 `json:"degraded_plans_total"`
	// JournalReplaysTotal counts sessions rebuilt from WALs at startup.
	JournalReplaysTotal int64 `json:"journal_replays_total"`
	// SessionsAdoptedTotal counts sessions resurrected from a dead peer's
	// journal directory via the cluster handoff endpoint.
	SessionsAdoptedTotal int64 `json:"sessions_adopted_total,omitempty"`
	// SessionsExportedTotal counts sessions handed to peers via the
	// planned-migration export endpoint (drain/join rebalancing).
	SessionsExportedTotal int64 `json:"sessions_exported_total,omitempty"`
	// FencedRejectsTotal counts plan decisions withheld because the session
	// was adopted by a peer at a higher fencing epoch mid-plan.
	FencedRejectsTotal int64 `json:"fenced_rejects_total,omitempty"`
}

// TenancyCounters is the tenancy block of the metrics document: the
// multi-tenant admission and budget view aggregated over every tenant the
// daemon has seen.
type TenancyCounters struct {
	// TenantsActive counts tenants with at least one active session.
	TenantsActive int `json:"tenants_active"`
	// ArrivalsTotal counts admitted tenant-tagged session creates.
	ArrivalsTotal int64 `json:"arrivals_total"`
	// AdmissionsThrottledTotal counts creates refused by a tenant budget or
	// active-session cap (answered 429 tenant_throttled).
	AdmissionsThrottledTotal int64 `json:"admissions_throttled_total"`
	// BudgetSpendRate is the aggregate metered spend in charging units per
	// hour of daemon uptime.
	BudgetSpendRate float64 `json:"budget_spend_rate"`
	// DeadlineMissesTotal counts sessions observed past their deadline with
	// work remaining.
	DeadlineMissesTotal int64 `json:"deadline_misses_total"`
}

// MetricsDump is the GET /metrics response body.
type MetricsDump struct {
	UptimeS        float64                `json:"uptime_s"`
	Sessions       SessionCounters        `json:"sessions"`
	FaultTolerance FaultToleranceCounters `json:"fault_tolerance"`
	// Tenancy aggregates the multi-tenant admission view (see TenancyCounters).
	Tenancy TenancyCounters `json:"tenancy"`
	// EncodeErrorsTotal counts responses that failed JSON encoding and were
	// served as 500 encode_failed.
	EncodeErrorsTotal int64 `json:"encode_errors_total"`
	// Live aggregates the live execution plane (agents, leases, reclaims);
	// present only when the server hosts a live-run registry.
	Live      *exec.RegistryMetrics       `json:"live,omitempty"`
	Endpoints map[string]EndpointCounters `json:"endpoints"`
}

// Dump snapshots the counters. activeSessions is supplied by the caller
// (the store owns that gauge).
func (m *Metrics) Dump(now time.Time, activeSessions int) MetricsDump {
	return m.dump(now, activeSessions, false)
}

// DumpRaw is Dump with each endpoint's raw latency window included — the
// form the cluster router aggregates across shards.
func (m *Metrics) DumpRaw(now time.Time, activeSessions int) MetricsDump {
	return m.dump(now, activeSessions, true)
}

func (m *Metrics) dump(now time.Time, activeSessions int, raw bool) MetricsDump {
	d := MetricsDump{
		UptimeS: now.Sub(m.start).Seconds(),
		Sessions: SessionCounters{
			Active:   activeSessions,
			Created:  m.sessionsCreated.Load(),
			Deleted:  m.sessionsDeleted.Load(),
			Evicted:  m.sessionsEvicted.Load(),
			Rejected: m.sessionsRejected.Load(),
		},
		FaultTolerance: FaultToleranceCounters{
			RetriesTotal:          m.planRetries.Load(),
			DegradedPlansTotal:    m.degradedPlans.Load(),
			JournalReplaysTotal:   m.journalReplays.Load(),
			SessionsAdoptedTotal:  m.sessionsAdopted.Load(),
			SessionsExportedTotal: m.sessionsExported.Load(),
			FencedRejectsTotal:    m.fencedRejects.Load(),
		},
		EncodeErrorsTotal: m.encodeErrors.Load(),
	}
	d.Endpoints = make(map[string]EndpointCounters)
	m.endpoints.Range(func(name, v any) bool {
		em := v.(*endpointMetrics)
		ec := EndpointCounters{Count: em.count.Load(), Errors: em.errors.Load()}
		em.mu.Lock()
		if len(em.lat) > 0 {
			sum := SummarizeLatencies(em.lat)
			ec.LatencyMs = &sum
			if raw {
				ec.RawMs = append([]float64(nil), em.lat...)
			}
		}
		em.mu.Unlock()
		d.Endpoints[name.(string)] = ec
		return true
	})
	return d
}

// Merge folds another daemon's metrics dump into this one: counters sum,
// endpoint raw latency windows concatenate and are re-summarized, and uptime
// takes the maximum. The cluster router uses it to present one logical
// /metrics document over a shard fleet. The Live block is not merged (the
// live execution plane is not routed through the cluster front end).
func (d *MetricsDump) Merge(o MetricsDump) {
	if o.UptimeS > d.UptimeS {
		d.UptimeS = o.UptimeS
	}
	d.Sessions.Active += o.Sessions.Active
	d.Sessions.Created += o.Sessions.Created
	d.Sessions.Deleted += o.Sessions.Deleted
	d.Sessions.Evicted += o.Sessions.Evicted
	d.Sessions.Rejected += o.Sessions.Rejected
	d.FaultTolerance.RetriesTotal += o.FaultTolerance.RetriesTotal
	d.FaultTolerance.DegradedPlansTotal += o.FaultTolerance.DegradedPlansTotal
	d.FaultTolerance.JournalReplaysTotal += o.FaultTolerance.JournalReplaysTotal
	d.FaultTolerance.SessionsAdoptedTotal += o.FaultTolerance.SessionsAdoptedTotal
	d.FaultTolerance.SessionsExportedTotal += o.FaultTolerance.SessionsExportedTotal
	d.FaultTolerance.FencedRejectsTotal += o.FaultTolerance.FencedRejectsTotal
	d.Tenancy.TenantsActive += o.Tenancy.TenantsActive
	d.Tenancy.ArrivalsTotal += o.Tenancy.ArrivalsTotal
	d.Tenancy.AdmissionsThrottledTotal += o.Tenancy.AdmissionsThrottledTotal
	d.Tenancy.BudgetSpendRate += o.Tenancy.BudgetSpendRate
	d.Tenancy.DeadlineMissesTotal += o.Tenancy.DeadlineMissesTotal
	d.EncodeErrorsTotal += o.EncodeErrorsTotal
	if d.Endpoints == nil {
		d.Endpoints = make(map[string]EndpointCounters)
	}
	for name, oc := range o.Endpoints {
		ec := d.Endpoints[name]
		ec.Count += oc.Count
		ec.Errors += oc.Errors
		ec.RawMs = append(ec.RawMs, oc.RawMs...)
		if len(ec.RawMs) > 0 {
			sum := SummarizeLatencies(ec.RawMs)
			ec.LatencyMs = &sum
		} else if ec.LatencyMs == nil {
			ec.LatencyMs = oc.LatencyMs
		}
		d.Endpoints[name] = ec
	}
}
