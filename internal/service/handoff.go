package service

// Session handoff between shards: fencing, WAL adoption, and export.
//
// The cluster moves a session between shards by moving its write-ahead log.
// Two paths exist:
//
//   - Directory adoption (unplanned death): the router hands a dead shard's
//     whole JournalDir to a surviving peer, which claims each WAL in it.
//   - File adoption (planned drain/join): the donor exports named sessions —
//     detaching them and closing their WALs — and the router hands the
//     resulting file paths to each session's new owner.
//
// Either way the adopter CLAIMS a WAL with the same fenced-copy protocol:
//
//   1. write <wal>.fence beside the source, recording the handoff epoch;
//   2. copy the source WAL into the adopter's own JournalDir;
//   3. replay the copy into a detached session and insert it;
//   4. leave the fenced source in place.
//
// Fencing closes the double-serve race with a process that still holds the
// source WAL (a shard wrongly declared dead, or a drained shard that was
// restarted from a stale snapshot of the world): journal.append re-reads the
// fence after every synced write, so a stale writer either appended before
// the fence landed — in which case the copy includes the record and the
// adopter replays it — or it observes the fence and withholds the decision.
// A record can never be released to a client by the stale process and be
// absent from the adopter's copy. Startup recovery skips fenced WALs, so a
// restarted shard re-enters the cluster empty instead of resurrecting
// sessions that now live elsewhere.
//
// The source WAL is kept (fenced) rather than deleted so a retried adoption
// of the same directory or file set is idempotent, and so an aborted planned
// migration still leaves the files where a death failover would look for
// them. Epochs are issued by the router, strictly increasing per topology
// operation; a shard rejects adopt/export requests carrying an epoch below
// the highest it has seen (a stale router or a replayed request).

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// errFenced is returned by journal.append when a peer has claimed the
// session's WAL at a higher epoch: this process is stale for the session and
// must withhold the decision.
var errFenced = errors.New("service: session journal fenced by a newer adoption")

// fenceRecord is the content of a <wal>.fence file.
type fenceRecord struct {
	// Epoch is the handoff epoch the claim was made at.
	Epoch int64 `json:"epoch"`
	// From names the shard the session was taken over from (debugging aid).
	From string `json:"from,omitempty"`
}

func fencePath(walPath string) string { return walPath + ".fence" }

// writeFence publishes a claim on walPath at epoch. The write is staged to a
// temp file and renamed so a concurrent reader never sees a partial fence.
func writeFence(walPath string, epoch int64, from string) error {
	b, err := json.Marshal(fenceRecord{Epoch: epoch, From: from})
	if err != nil {
		return err
	}
	tmp := fencePath(walPath) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, fencePath(walPath))
}

// readFence reports whether walPath is fenced and at what epoch. An
// unreadable fence body still fences — at the highest possible epoch, since
// its true epoch is unknown and serving anyway risks a double-serve.
func readFence(walPath string) (epoch int64, fenced bool) {
	b, err := os.ReadFile(fencePath(walPath))
	if err != nil {
		return 0, false
	}
	var fr fenceRecord
	if json.Unmarshal(b, &fr) != nil {
		return math.MaxInt64, true
	}
	return fr.Epoch, true
}

// fencedPast reports whether walPath carries a fence from a claim NEWER than
// claimEpoch.
func fencedPast(walPath string, claimEpoch int64) bool {
	ep, fenced := readFence(walPath)
	return fenced && ep > claimEpoch
}

// copyFile copies src to dst (truncating) and syncs dst.
func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sessionIDFromWAL extracts the session ID a WAL file name encodes, or ""
// when the name is not a valid session WAL.
func sessionIDFromWAL(path string) string {
	name := filepath.Base(path)
	if !strings.HasSuffix(name, ".wal") {
		return ""
	}
	id := strings.TrimSuffix(name, ".wal")
	if !ValidSessionID(id) {
		return ""
	}
	return id
}

// AdoptJournalDir claims every session WAL in dir for this server at the
// given handoff epoch (the death-failover path: dir is a dead shard's whole
// journal directory). total counts every session in the directory this
// server now hosts — including ones already adopted by an earlier, partially
// acknowledged attempt — so a retried handoff reports the full count; fresh
// counts only sessions newly replayed by this call. The returned error
// covers only an unreadable directory.
func (s *Server) AdoptJournalDir(dir string, epoch int64, from string) (total, fresh int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	claimed := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".wal" {
			continue
		}
		src := filepath.Join(dir, e.Name())
		n, f := s.adoptWAL(src, epoch, from)
		total += n
		fresh += f
		if n > 0 {
			claimed[strings.TrimSuffix(e.Name(), ".wal")] = true
		}
	}
	// A WAL consumed by an earlier attempt of this same handoff leaves only
	// its fence behind; if the session is hosted here, it is part of this
	// handoff and belongs in total.
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".wal.fence") {
			continue
		}
		id := strings.TrimSuffix(name, ".wal.fence")
		if claimed[id] || !ValidSessionID(id) {
			continue
		}
		if _, statErr := os.Stat(filepath.Join(dir, id+".wal")); statErr == nil {
			continue // WAL still present: adoptWAL above already decided
		}
		if _, getErr := s.store.Get(id); getErr == nil {
			total++
		}
	}
	return total, fresh, nil
}

// AdoptJournalFiles claims the named session WALs (the planned-migration
// path: paths come from a donor's export response). Counting follows
// AdoptJournalDir.
func (s *Server) AdoptJournalFiles(paths []string, epoch int64, from string) (total, fresh int) {
	for _, p := range paths {
		n, f := s.adoptWAL(p, epoch, from)
		total += n
		fresh += f
		if n == 0 {
			// Retried handoff whose earlier attempt already consumed the
			// file: hosted here means ours to count.
			if id := sessionIDFromWAL(p); id != "" {
				if _, statErr := os.Stat(p); statErr != nil {
					if _, getErr := s.store.Get(id); getErr == nil {
						total++
					}
				}
			}
		}
	}
	return total, fresh
}

// adoptWAL claims one session WAL via the fenced-copy protocol. It returns
// (1, 1) for a newly adopted session, (1, 0) for one this server already
// hosts, and (0, 0) when the WAL is not adoptable (claimed by a later epoch,
// invalid, or unreadable — all logged, none fatal: the cluster retries).
func (s *Server) adoptWAL(src string, epoch int64, from string) (total, fresh int) {
	id := sessionIDFromWAL(src)
	if id == "" {
		s.cfg.Logf("wire-serve: adopt: %s: not a session WAL; skipping", src)
		return 0, 0
	}
	if sess, err := s.store.Get(id); err == nil {
		// Already hosted — normally an idempotent re-adopt: the local copy
		// is authoritative and the source stays fenced in place. One
		// exception: an UNFENCED source carrying a newer epoch than our own
		// claim means the session has lived elsewhere since this process
		// last claimed it (a restarted shard that replayed its WALs before a
		// failover fenced them). The incoming copy supersedes the stale
		// local session.
		var held int64
		sess.mu.Lock()
		if sess.wal != nil {
			held = sess.wal.claimEpoch
		}
		sess.mu.Unlock()
		if _, srcFenced := readFence(src); srcFenced || epoch <= held {
			return 1, 0
		}
		// Epochs order CLAIMS, not data. A migrated copy arriving under a
		// fresh op epoch can still carry staler state than the live session
		// (an orphan from a client-side-timed-out handoff, re-exported by a
		// later repair pass). A session's plan seq is monotone — never let
		// an adopt regress it: keep the fresher lineage and fence the stale
		// source so it stops resurfacing. Keeping local additionally
		// requires the local copy to be a viable WRITER — a session whose
		// own WAL was fenced by some interrupted handoff can only withhold
		// decisions, so an equal-data migrated copy claimed at this epoch
		// supersedes it.
		sess.mu.Lock()
		heldSeq := sess.lastSeq
		sess.mu.Unlock()
		if srcSeq := walLastSeq(src); srcSeq <= heldSeq && !fencedPast(s.journalPath(id), held) {
			s.cfg.Logf("wire-serve: adopt: session %s: migrated copy (seq %d) is behind the live session (seq %d); keeping local, fencing the stale source", id, srcSeq, heldSeq)
			if err := writeFence(src, epoch, from); err != nil {
				s.cfg.Logf("wire-serve: adopt: session %s: fencing stale source: %v", id, err)
			}
			return 1, 0
		}
		s.cfg.Logf("wire-serve: adopt: session %s held from a stale claim (epoch %d < %d); replacing with the migrated copy", id, held, epoch)
		if st := s.store.Detach(id); st != nil {
			st.mu.Lock()
			st.gone = true
			j := st.wal
			st.wal = nil
			tenant := st.Tenant
			st.mu.Unlock()
			if j != nil {
				j.close(false)
			}
			if tenant != "" {
				// The replay below reattaches the migrated copy's slot.
				s.tenants.Release(tenant)
			}
		}
	}
	dst := s.journalPath(id)
	if filepath.Clean(src) == filepath.Clean(dst) {
		// Adopting out of our own journal dir — a session migrating home
		// (rejoin). Lift any fence our own claim supersedes.
		if ep, fenced := readFence(src); fenced {
			if ep > epoch {
				s.cfg.Logf("wire-serve: adopt: session %s claimed at epoch %d > %d; not ours", id, ep, epoch)
				return 0, 0
			}
			if err := os.Remove(fencePath(src)); err != nil {
				s.cfg.Logf("wire-serve: adopt: session %s: clearing fence: %v", id, err)
				return 0, 0
			}
		}
		if err := s.recoverSession(src, epoch); err != nil {
			if errors.Is(err, ErrDuplicateID) {
				return 1, 0
			}
			s.cfg.Logf("wire-serve: adopt: session %s: %v", id, err)
			return 0, 0
		}
		return 1, 1
	}
	if ep, fenced := readFence(src); fenced && ep > epoch {
		s.cfg.Logf("wire-serve: adopt: session %s claimed at epoch %d > %d; not ours", id, ep, epoch)
		return 0, 0
	}
	if fencedPast(dst, epoch) {
		// Our own slot for this session is claimed at a newer epoch: a later
		// operation already moved it somewhere else. Not ours to host.
		s.cfg.Logf("wire-serve: adopt: session %s: local journal slot claimed at a newer epoch; not ours", id)
		return 0, 0
	}
	// Same data-freshness guard for the slot on disk: if our own journal
	// copy of this session is AHEAD of the migrated one, ours is the live
	// lineage and the incoming file is a stale orphan — recover ours
	// instead of overwriting it.
	if dstSeq := walLastSeq(dst); dstSeq > walLastSeq(src) {
		s.cfg.Logf("wire-serve: adopt: session %s: local journal copy (seq %d) is ahead of the migrated one; recovering local, fencing the stale source", id, dstSeq)
		if err := writeFence(src, epoch, from); err != nil {
			s.cfg.Logf("wire-serve: adopt: session %s: fencing stale source: %v", id, err)
			return 0, 0
		}
		if ep, fenced := readFence(dst); fenced && ep <= epoch {
			if err := os.Remove(fencePath(dst)); err != nil {
				s.cfg.Logf("wire-serve: adopt: session %s: clearing stale fence: %v", id, err)
				return 0, 0
			}
		}
		if err := s.recoverSession(dst, epoch); err != nil {
			if errors.Is(err, ErrDuplicateID) {
				return 1, 0
			}
			s.cfg.Logf("wire-serve: adopt: session %s: %v", id, err)
			return 0, 0
		}
		return 1, 1
	}
	// Fence FIRST, copy SECOND — the ordering the stale-writer check in
	// journal.append relies on.
	if err := writeFence(src, epoch, from); err != nil {
		s.cfg.Logf("wire-serve: adopt: session %s: fencing: %v", id, err)
		return 0, 0
	}
	if err := copyFile(src, dst); err != nil {
		s.cfg.Logf("wire-serve: adopt: session %s: copying WAL: %v", id, err)
		return 0, 0
	}
	// A stale fence on dst — left from when the session migrated AWAY from
	// this shard under an earlier epoch — would make the next restart skip
	// the now-live copy. Our claim supersedes it.
	if ep, fenced := readFence(dst); fenced && ep <= epoch {
		if err := os.Remove(fencePath(dst)); err != nil {
			s.cfg.Logf("wire-serve: adopt: session %s: clearing stale fence: %v", id, err)
			return 0, 0
		}
	}
	if err := s.recoverSession(dst, epoch); err != nil {
		if errors.Is(err, ErrDuplicateID) {
			return 1, 0
		}
		s.cfg.Logf("wire-serve: adopt: session %s: %v", id, err)
		_ = os.Remove(dst)
		return 0, 0
	}
	return 1, 1
}

// walLastSeq scans a WAL and returns the highest plan sequence it records —
// 0 for a create-only, missing, or unreadable file. Conservative on errors:
// an unreadable migrated copy must never displace a live session, and a
// missing local slot never blocks an adoption.
func walLastSeq(path string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var last int64
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			return last
		}
		if rec.Type == "plan" && rec.Seq > last {
			last = rec.Seq
		}
	}
}

// exportSession detaches one session for migration to a peer: it is removed
// from the store, its in-flight plan (if any) is waited out, and its WAL —
// which at that point contains every decision ever released for it — is
// closed and its path returned. A session without a WAL cannot migrate by
// file; it is re-inserted and reported as not exportable.
func (s *Server) exportSession(id string) (walPath string, ok bool) {
	sess := s.store.Detach(id)
	if sess == nil {
		return "", false
	}
	sess.mu.Lock()
	sess.gone = true
	j := sess.wal
	sess.wal = nil
	sess.mu.Unlock()
	if j == nil {
		// Journaling was disabled for this session (disk trouble at
		// create). Keep serving it here rather than dropping state.
		sess.mu.Lock()
		sess.gone = false
		sess.mu.Unlock()
		if err := s.store.Insert(sess); err != nil {
			s.cfg.Logf("wire-serve: export: session %s has no WAL and could not be re-inserted: %v", id, err)
		} else {
			s.cfg.Logf("wire-serve: export: session %s has no WAL; keeping it local", id)
		}
		return "", false
	}
	j.close(false)
	if tenant := sess.TenantTag(); tenant != "" {
		// The session now spends on its adopter's ledger.
		s.tenants.Release(tenant)
	}
	return j.path, true
}
