package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/dagio"
)

// TestPlanSeqCacheExactlyOnce pins the idempotent-planning contract: a
// retried plan request (same sequence number) is answered from the session's
// decision cache without advancing the controller, an out-of-order sequence
// is rejected with 409, and the next fresh interval proceeds normally.
func TestPlanSeqCacheExactlyOnce(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()
	wf := smallWorkflow(4)
	info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	snap := readySnapshot(wf)

	first, err := client.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || first.Iteration != 1 {
		t.Fatalf("first plan seq/iteration = %d/%d, want 1/1", first.Seq, first.Iteration)
	}

	// The "retry": same seq must replay the cached decision, not plan a
	// fresh interval.
	again, err := client.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatalf("retried plan: %v", err)
	}
	if again.Iteration != first.Iteration || !sameDecision(again.Decision, first.Decision) {
		t.Fatalf("retried plan diverged: %+v != %+v", again, first)
	}
	state, err := client.State(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if state.Plans != 1 {
		t.Errorf("controller advanced %d intervals, want 1 (retry must not replan)", state.Plans)
	}
	md := srv.Metrics().Dump(srv.now(), srv.Store().Len())
	if md.FaultTolerance.RetriesTotal != 1 {
		t.Errorf("retries_total = %d, want 1", md.FaultTolerance.RetriesTotal)
	}

	// Skipping an interval is a client bug, not a retry: 409.
	_, err = client.Plan(ctx, info.ID, 3, snap)
	var apiErr *APIError
	if err == nil || !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusConflict || apiErr.Code != "seq_conflict" {
		t.Fatalf("out-of-order seq: err = %v, want 409/seq_conflict", err)
	}

	// The next in-order interval still plans.
	next, err := client.Plan(ctx, info.ID, 2, snap)
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq != 2 || next.Iteration != 2 {
		t.Fatalf("next plan seq/iteration = %d/%d, want 2/2", next.Seq, next.Iteration)
	}
}

// TestJournalRecoveryAcrossRestart drives a journaled session through three
// intervals, rebuilds a second daemon from the same journal directory, and
// requires the recovered session to answer a retried interval from its
// replayed cache and to continue planning from the next one.
func TestJournalRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, client := newTestServer(t, Config{JournalDir: dir})
	ctx := context.Background()
	wf := smallWorkflow(4)
	info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	snap := readySnapshot(wf)
	var last *PlanResponse
	for seq := int64(1); seq <= 3; seq++ {
		if last, err = client.Plan(ctx, info.ID, seq, snap); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}

	// "Crash": a second daemon rebuilds its store from the same directory.
	srv2 := New(Config{JournalDir: dir})
	if srv2.Store().Len() != 1 {
		t.Fatalf("recovered %d sessions, want 1", srv2.Store().Len())
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := NewClient(ts2.URL)

	// A client retrying the last pre-crash interval gets the recorded
	// response back, byte-for-byte equivalent.
	replayed, err := c2.Plan(ctx, info.ID, 3, snap)
	if err != nil {
		t.Fatalf("retry against recovered daemon: %v", err)
	}
	if replayed.Iteration != last.Iteration || !sameDecision(replayed.Decision, last.Decision) {
		t.Fatalf("recovered cache diverged: %+v != %+v", replayed, last)
	}
	// And the session keeps planning where it left off.
	next, err := c2.Plan(ctx, info.ID, 4, snap)
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq != 4 || next.Iteration != last.Iteration+1 {
		t.Fatalf("post-recovery plan seq/iteration = %d/%d, want 4/%d", next.Seq, next.Iteration, last.Iteration+1)
	}
	md := srv2.Metrics().Dump(srv2.now(), srv2.Store().Len())
	if md.FaultTolerance.JournalReplaysTotal != 1 {
		t.Errorf("journal_replays_total = %d, want 1", md.FaultTolerance.JournalReplaysTotal)
	}
}

// TestJournalTornTailTruncated crashes "mid-append": a half-written trailing
// record must be truncated away on recovery, keeping every complete interval.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	_, client := newTestServer(t, Config{JournalDir: dir})
	ctx := context.Background()
	wf := smallWorkflow(3)
	info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	snap := readySnapshot(wf)
	for seq := int64(1); seq <= 2; seq++ {
		if _, err := client.Plan(ctx, info.ID, seq, snap); err != nil {
			t.Fatal(err)
		}
	}

	walPath := filepath.Join(dir, info.ID+".wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"plan","seq":3,"snapsho`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2 := New(Config{JournalDir: dir})
	if srv2.Store().Len() != 1 {
		t.Fatalf("recovered %d sessions, want 1", srv2.Store().Len())
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := NewClient(ts2.URL)
	state, err := c2.State(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if state.Plans != 2 {
		t.Errorf("recovered %d intervals, want the 2 complete ones", state.Plans)
	}
	// Every surviving line is valid JSON: the torn tail is gone.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range splitLines(data) {
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d still torn after recovery: %v", i, err)
		}
	}
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// TestJournalRemovedOnDelete pins that deleting a session removes its WAL so
// it cannot resurrect on restart.
func TestJournalRemovedOnDelete(t *testing.T) {
	dir := t.TempDir()
	_, client := newTestServer(t, Config{JournalDir: dir})
	ctx := context.Background()
	wf := smallWorkflow(3)
	info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Plan(ctx, info.ID, 1, readySnapshot(wf)); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	wals, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 0 {
		t.Fatalf("%d WAL(s) left after delete: %v", len(wals), wals)
	}
	if srv2 := New(Config{JournalDir: dir}); srv2.Store().Len() != 0 {
		t.Fatalf("deleted session resurrected: %d sessions recovered", srv2.Store().Len())
	}
}

// TestJournalFsyncModes drives the same journaled workload under each WAL
// durability mode and requires identical recovery semantics: every complete
// interval replays, a torn tail is tolerated, and the offline auditor finds
// nothing to flag. The modes differ only in when bytes reach stable storage
// — in-process reads always see page-cache writes, so recovery and the
// fenced-handoff protocol must be mode-blind.
func TestJournalFsyncModes(t *testing.T) {
	for _, mode := range []string{FsyncRecord, FsyncPerInterval, FsyncOff} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			_, client := newTestServer(t, Config{
				JournalDir:    dir,
				FsyncMode:     mode,
				FsyncInterval: 20 * time.Millisecond,
			})
			ctx := context.Background()
			wf := smallWorkflow(3)
			info, err := client.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf)})
			if err != nil {
				t.Fatal(err)
			}
			snap := readySnapshot(wf)
			var last *PlanResponse
			for seq := int64(1); seq <= 3; seq++ {
				if last, err = client.Plan(ctx, info.ID, seq, snap); err != nil {
					t.Fatalf("seq %d: %v", seq, err)
				}
			}

			// Crash mid-append: a torn trailing record on top of the synced
			// (or unsynced) complete ones.
			walPath := filepath.Join(dir, info.ID+".wal")
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`{"type":"plan","seq":4,"snapsho`); err != nil {
				t.Fatal(err)
			}
			f.Close()

			srv2 := New(Config{JournalDir: dir, FsyncMode: mode})
			if srv2.Store().Len() != 1 {
				t.Fatalf("recovered %d sessions, want 1", srv2.Store().Len())
			}
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()
			c2 := NewClient(ts2.URL)
			replayed, err := c2.Plan(ctx, info.ID, 3, snap)
			if err != nil {
				t.Fatal(err)
			}
			if replayed.Iteration != last.Iteration || !sameDecision(replayed.Decision, last.Decision) {
				t.Fatalf("recovered cache diverged under %s: %+v != %+v", mode, replayed, last)
			}

			rep, err := audit.Run(audit.Config{Dirs: []string{dir}})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("auditor flagged a crashed-but-consistent %s journal: %+v", mode, rep.Violations)
			}
			if rep.Sessions != 1 || rep.Plans != 3 {
				t.Fatalf("audit saw %d session(s), %d plan(s), want 1/3", rep.Sessions, rep.Plans)
			}
		})
	}
}
