package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// benchLoadgenSessions is the fixed session count of one benchmark
// iteration; sessions/sec in BENCH_<n>.json is derived from it.
const benchLoadgenSessions = 24

// BenchmarkLoadgenSessions is the plan-path acceptance benchmark: a full
// wire-serve loadgen run (genome-s catalogue workflows, WIRE policy,
// twin verification on) against an in-process daemon. The reported
// sessions/sec metric is the number gated in BENCH_<n>.json.
func BenchmarkLoadgenSessions(b *testing.B) {
	srv := New(Config{MaxSessions: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Loadgen(context.Background(), LoadgenConfig{
			Client:      client,
			Sessions:    benchLoadgenSessions,
			Concurrency: 8,
			Policy:      "wire",
			WorkflowKey: "genome-s",
			Cloud:       testCloud,
			SeedBase:    int64(i) * benchLoadgenSessions,
			Verify:      true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 || res.Mismatched != 0 {
			b.Fatalf("failed %d / mismatched %d: %v", res.Failed, res.Mismatched, res.Errors)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchLoadgenSessions)/b.Elapsed().Seconds(), "sessions/sec")
}

// BenchmarkMetricsObserveParallel hammers Metrics.Observe from all procs —
// the contention profile of the plan path's instrumentation middleware.
func BenchmarkMetricsObserveParallel(b *testing.B) {
	m := NewMetrics(time.Now())
	endpoints := [...]string{"plan", "create_session", "session_state", "delete_session"}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Observe(endpoints[i%len(endpoints)], time.Duration(i%1000)*time.Microsecond, false)
			i++
		}
	})
}
