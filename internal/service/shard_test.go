package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dagio"
)

// TestValidSessionID pins the assigned-ID validation boundary.
func TestValidSessionID(t *testing.T) {
	for _, ok := range []string{"abc", "A-b_0", strings.Repeat("x", 64)} {
		if !ValidSessionID(ok) {
			t.Errorf("ValidSessionID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "a b", "a/b", "a\nb", "a..b/"} {
		if ValidSessionID(bad) {
			t.Errorf("ValidSessionID(%q) = true", bad)
		}
	}
}

func postCreate(t *testing.T, ts *httptest.Server, assignID string) (*http.Response, SessionInfo) {
	t.Helper()
	body, err := json.Marshal(CreateSessionRequest{
		Workflow: dagio.Encode(smallWorkflow(3)),
		Policy:   "wire",
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if assignID != "" {
		req.Header.Set(SessionIDHeader, assignID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info SessionInfo
	_ = json.NewDecoder(resp.Body).Decode(&info)
	return resp, info
}

// TestShardModeAssignedID pins the router contract: in shard mode the daemon
// honors the router-assigned session ID and treats a retried create as
// idempotent; outside shard mode the header is ignored.
func TestShardModeAssignedID(t *testing.T) {
	srv := New(Config{ShardMode: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, info := postCreate(t, ts, "router-assigned-1")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	if info.ID != "router-assigned-1" {
		t.Fatalf("assigned ID ignored: got %q", info.ID)
	}

	// A retried create (response lost, client retried) returns the existing
	// session rather than a duplicate error.
	resp, info = postCreate(t, ts, "router-assigned-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried create: HTTP %d, want 200", resp.StatusCode)
	}
	if info.ID != "router-assigned-1" || srv.Store().Len() != 1 {
		t.Fatalf("retried create made a new session: %q, %d sessions", info.ID, srv.Store().Len())
	}

	// Malformed assigned IDs are rejected, not sanitized.
	resp, _ = postCreate(t, ts, "../escape")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed assigned ID: HTTP %d, want 400", resp.StatusCode)
	}

	// Outside shard mode the header is ignored and the daemon draws its own.
	plain := New(Config{})
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	resp, info = postCreate(t, pts, "router-assigned-2")
	if resp.StatusCode != http.StatusCreated || info.ID == "router-assigned-2" {
		t.Fatalf("non-shard daemon honored the assigned ID: HTTP %d id %q", resp.StatusCode, info.ID)
	}
	// And the adopt endpoint is not mounted.
	ar, err := http.Post(pts.URL+"/v1/admin/adopt", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	ar.Body.Close()
	if ar.StatusCode != http.StatusNotFound {
		t.Fatalf("adopt endpoint mounted outside shard mode: HTTP %d", ar.StatusCode)
	}
}

// TestAdoptReplaysJournals pins the handoff mechanics end to end at the
// service layer: sessions journaled by one shard daemon are resurrected on a
// peer via POST /v1/admin/adopt, with the exactly-once plan cache intact —
// a replayed seq answers the decision the dead shard already released.
func TestAdoptReplaysJournals(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := New(Config{ShardMode: true, JournalDir: dirA})
	ats := httptest.NewServer(a.Handler())
	defer ats.Close()

	ctx := context.Background()
	ca := NewClient(ats.URL)
	wf := smallWorkflow(3)
	info, err := ca.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf), Policy: "wire"})
	if err != nil {
		t.Fatal(err)
	}
	snap := readySnapshot(wf)
	released, err := ca.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" A (close its listener; its WALs stay on disk) and hand its
	// journal directory to B.
	ats.Close()
	b := New(Config{ShardMode: true, JournalDir: dirB})
	bts := httptest.NewServer(b.Handler())
	defer bts.Close()

	body, _ := json.Marshal(AdoptRequest{JournalDirs: []string{dirA}, From: "a"})
	resp, err := http.Post(bts.URL+"/v1/admin/adopt", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ar AdoptResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ar.Sessions != 1 {
		t.Fatalf("adopt: HTTP %d, %d sessions, want 200/1", resp.StatusCode, ar.Sessions)
	}

	cb := NewClient(bts.URL)
	replayed, err := cb.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatalf("adopted session does not answer: %v", err)
	}
	rb, _ := json.Marshal(released.Decision)
	pb, _ := json.Marshal(replayed.Decision)
	if !bytes.Equal(rb, pb) {
		t.Fatalf("replayed seq decision changed across adoption: %s != %s", rb, pb)
	}

	// A second adoption of the same directory is idempotent: the sessions
	// already live on B, and the reported count still covers them all.
	resp2, err := http.Post(bts.URL+"/v1/admin/adopt", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ar2 AdoptResponse
	_ = json.NewDecoder(resp2.Body).Decode(&ar2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || ar2.Sessions != 1 {
		t.Fatalf("retried adopt: HTTP %d, %d sessions, want 200/1", resp2.StatusCode, ar2.Sessions)
	}
	if b.Store().Len() != 1 {
		t.Fatalf("retried adopt duplicated sessions: %d", b.Store().Len())
	}

	// The handoff shows up in the shard's fault-tolerance counters.
	dump := b.Metrics().Dump(time.Now(), b.Store().Len())
	if dump.FaultTolerance.SessionsAdoptedTotal != 1 {
		t.Errorf("sessions_adopted_total = %d, want 1", dump.FaultTolerance.SessionsAdoptedTotal)
	}
}
