package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// PlanSeqHeader carries the per-session plan interval sequence number. A
// retried plan request resends the same value and is answered from the
// session's decision cache, so planning is exactly-once per interval even
// when the network loses responses. Requests without the header fall back to
// server-assigned sequencing (one fresh interval per request).
const PlanSeqHeader = "Wire-Plan-Seq"

// SessionIDHeader carries a router-assigned session ID on a forwarded create
// request. The cluster router draws the ID before forwarding so the session
// lands on the shard its ID consistent-hashes to; a shard in ShardMode
// honors it and treats a duplicate as an idempotent create retry.
const SessionIDHeader = "Wire-Session-Id"

// CodeShardRecovering is the error code a cluster router returns (as a 503
// with Retry-After) while the shard owning the requested session is dead and
// its journals are still being replayed on a surviving peer. Clients should
// back off and retry; the session is not lost.
const CodeShardRecovering = "shard_recovering"

// CodeSessionFenced is the error code a shard returns (as a 503 with
// Retry-After) when the requested session was handed to another shard — by a
// planned migration or by a fencing adoption that caught this shard serving
// stale. Clients should retry through the router, which routes to the new
// owner.
const CodeSessionFenced = "session_fenced"

// CodeTenantThrottled is the error code a daemon returns (as a 429 with
// Retry-After) when a tenant-tagged session create is refused because the
// tenant's budget or active-session cap is exhausted. Pressure releases as
// the tenant's sessions finish; clients should back off and retry.
const CodeTenantThrottled = "tenant_throttled"

// CodeShardPartitioned is the error code a cluster router returns (as a 503
// with Retry-After) while the shard owning the requested session is
// unreachable from the router but confirmed alive through a peer: a network
// partition is suspected, and the router refuses to misroute or fence a live
// writer. Clients should back off and retry; the partition heals or
// escalates to a failover, either way resolving the route.
const CodeShardPartitioned = "shard_partitioned"

// RouterIdentityHeader marks requests originating from a cluster router
// (probes, proxied traffic, handoffs). Fault-injection harnesses key on it
// to realize one-way partitions against a real-process shard: inbound
// router-tagged requests are dropped while untagged peer relay probes still
// land, so the shard looks dead to the router yet alive to its peers.
const RouterIdentityHeader = "Wire-Router"

// APIError is a non-2xx response decoded from the daemon's error body.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's Retry-After hint, when present (503s from
	// a cluster router during shard failover). The retry loop sleeps at
	// least this long before the next attempt.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("wire-serve: HTTP %d (%s): %s", e.StatusCode, e.Code, e.Message)
}

// RetryPolicy bounds the client's retry loop: exponential backoff with full
// jitter, retrying transport errors, 5xx, and 429 responses. The zero value
// of each field takes the documented default when the policy is enabled via
// WithRetry.
type RetryPolicy struct {
	// MaxAttempts caps total tries per request (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms): the backoff
	// cap before attempt k is BaseDelay·2^(k-1), and the actual sleep is a
	// uniform draw from [0, cap) — "full jitter".
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt (default: the
	// client timeout). The caller's context still bounds the whole call.
	PerAttemptTimeout time.Duration
	// MaxRetryAfter caps how far a server Retry-After hint can stretch one
	// backoff sleep (default 15s). The hint is advisory: a buggy or
	// malicious server must not be able to park a client for hours. A clip
	// is logged through the client's Logf.
	MaxRetryAfter time.Duration
}

// defaultMaxRetryAfter bounds honored Retry-After hints when the policy does
// not set its own cap.
const defaultMaxRetryAfter = 15 * time.Second

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = defaultMaxRetryAfter
	}
	return p
}

// backoff returns the full-jitter sleep before attempt (attempt ≥ 2). The
// arithmetic lives in the shared exec.Backoff helper so the service client,
// the agent's report retry, and the agent reconnect loop all back off the
// same way.
func (p RetryPolicy) backoff(attempt int, u float64) time.Duration {
	return exec.Backoff{Base: p.BaseDelay, Max: p.MaxDelay}.Delay(attempt-2, u)
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithTimeout replaces the default 60s whole-request timeout. It is ignored
// when WithHTTPClient supplies a fully built client.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithTransport wraps the HTTP transport — how the chaos harness injects
// network faults between client and daemon.
func WithTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) { c.transport = rt }
}

// WithHTTPClient substitutes the entire http.Client (connection pools,
// redirect policy). Overrides WithTimeout and WithTransport.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetry enables retries under the policy (zero fields take defaults).
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithLogf routes the client's operational log lines (today: clipped
// Retry-After hints) somewhere visible. Default: discarded.
func WithLogf(logf func(format string, args ...any)) ClientOption {
	return func(c *Client) { c.logf = logf }
}

// Client talks to a wire-serve daemon. It is safe for concurrent use; the
// load generator shares one client across every session. By default it does
// not retry; see WithRetry.
type Client struct {
	base      string
	hc        *http.Client
	timeout   time.Duration
	transport http.RoundTripper
	retry     RetryPolicy
	logf      func(format string, args ...any)

	retries atomic.Int64

	jmu    sync.Mutex
	jitter *rand.Rand
}

// NewClient returns a client for a daemon base URL such as
// "http://127.0.0.1:8080".
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		timeout: 60 * time.Second,
		retry:   RetryPolicy{MaxAttempts: 1},
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.hc == nil {
		rt := c.transport
		if rt == nil {
			// One client fronts every concurrent session (the load
			// generator, the chaos harness), all against a single host.
			// http.DefaultTransport keeps only 2 idle connections per
			// host, so anything beyond 2-way concurrency re-dials TCP on
			// nearly every plan round trip; keep enough idle connections
			// for the whole pool instead.
			t := http.DefaultTransport.(*http.Transport).Clone()
			t.MaxIdleConns = 256
			t.MaxIdleConnsPerHost = 256
			rt = t
		}
		c.hc = &http.Client{Timeout: c.timeout, Transport: rt}
	}
	if c.jitter == nil {
		c.jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	return c
}

// BaseURL returns the daemon base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// Retries returns how many retry attempts (beyond each request's first try)
// the client has issued so far.
func (c *Client) Retries() int64 { return c.retries.Load() }

func (c *Client) jitterU() float64 {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return c.jitter.Float64()
}

// retryable reports whether a response status is worth retrying: transient
// server trouble and throttling, never client errors.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// do sends one JSON request with the client's retry policy. A nil in sends
// no body; a nil out discards the response body. A zero seq omits the
// sequence header.
func (c *Client) do(ctx context.Context, method, path string, seq int64, in, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var body []byte
	if in != nil {
		// Encode into a pooled buffer; body stays valid across retry
		// attempts because the buffer is only recycled when do returns.
		buf := getBuf()
		defer putBuf(buf)
		if snap, ok := in.(*monitor.Snapshot); ok {
			// The plan body is the hot path: append straight into the
			// buffer instead of going through the json.Encoder machinery
			// (which re-validates and copies the custom marshaler's
			// output).
			b, err := monitor.AppendSnapshotJSON(buf.Bytes(), snap)
			if err != nil {
				return fmt.Errorf("wire-serve client: encode %s %s: %w", method, path, err)
			}
			*buf = *bytes.NewBuffer(b)
			body = b
		} else {
			if err := json.NewEncoder(buf).Encode(in); err != nil {
				return fmt.Errorf("wire-serve client: encode %s %s: %w", method, path, err)
			}
			body = buf.Bytes()
		}
	}

	var lastErr error
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			sleep := c.retry.backoff(attempt, c.jitterU())
			// A Retry-After hint (shard failover in progress) overrides a
			// shorter backoff: retrying sooner only burns attempts while the
			// surviving peer is still replaying journals.
			var ae *APIError
			if errors.As(lastErr, &ae) && ae.RetryAfter > sleep {
				sleep = ae.RetryAfter
			}
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				return fmt.Errorf("wire-serve client: %s %s: %w (last attempt: %v)", method, path, ctx.Err(), lastErr)
			}
		}
		retry, err := c.attempt(ctx, method, path, seq, body, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retry || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// attempt performs one try and reports whether its failure is retryable.
func (c *Client) attempt(ctx context.Context, method, path string, seq int64, body []byte, hasBody bool, out any) (retry bool, err error) {
	actx := ctx
	if c.retry.PerAttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.retry.PerAttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return false, fmt.Errorf("wire-serve client: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if seq > 0 {
		req.Header.Set(PlanSeqHeader, strconv.FormatInt(seq, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport errors (drops, resets, per-attempt timeouts) are
		// retryable; the parent context expiring is not.
		return ctx.Err() == nil, fmt.Errorf("wire-serve client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		apiErr := &APIError{StatusCode: resp.StatusCode, Code: "unknown"}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				hint := time.Duration(secs) * time.Second
				// The hint is a backoff floor, so cap it: a pathological
				// Retry-After must not stall the retry loop for hours.
				max := c.retry.MaxRetryAfter
				if max <= 0 {
					max = defaultMaxRetryAfter
				}
				if hint > max {
					c.logf("wire-serve client: %s %s: Retry-After %v clipped to %v", method, path, hint, max)
					hint = max
				}
				apiErr.RetryAfter = hint
			}
		}
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil {
			apiErr.Code, apiErr.Message = eb.Code, eb.Error
		}
		return retryable(resp.StatusCode), apiErr
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		// A response truncated mid-body is a lost response; retry.
		return true, fmt.Errorf("wire-serve client: read %s %s: %w", method, path, err)
	}
	// Targets with a hand-rolled unmarshaler (PlanResponse) are called
	// directly, skipping json.Unmarshal's separate validation pass over
	// the body.
	var uerr error
	if u, ok := out.(json.Unmarshaler); ok {
		uerr = u.UnmarshalJSON(buf.Bytes())
	} else {
		uerr = json.Unmarshal(buf.Bytes(), out)
	}
	if uerr != nil {
		return true, fmt.Errorf("wire-serve client: decode %s %s: %w", method, path, uerr)
	}
	return false, nil
}

// CreateSession creates a controller session.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", 0, req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Plan posts one monitoring snapshot and returns the decision. seq is the
// 1-based plan interval number; retried requests resend the same seq and are
// answered from the session's cache (exactly-once planning). A zero seq uses
// legacy server-side sequencing, under which a retry after a lost response
// would plan a fresh interval. The snapshot's Workflow is stripped before
// sending — the session's DAG is authoritative on the server.
func (c *Client) Plan(ctx context.Context, id string, seq int64, snap *monitor.Snapshot) (*PlanResponse, error) {
	lean := *snap
	lean.Workflow = nil
	var resp PlanResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/plan", seq, &lean, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// State fetches the session's run state.
func (c *Client) State(ctx context.Context, id string) (*SessionStateResponse, error) {
	var resp SessionStateResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/state", 0, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeleteSession drops the session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, 0, nil, nil)
}

// Health fetches the liveness document.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var resp HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", 0, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MetricsDump fetches the daemon's metrics document.
func (c *Client) MetricsDump(ctx context.Context) (*MetricsDump, error) {
	var resp MetricsDump
	if err := c.do(ctx, http.MethodGet, "/metrics", 0, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateTenant creates or updates a tenant's budget and session cap.
func (c *Client) CreateTenant(ctx context.Context, spec TenantSpec) (*TenantInfo, error) {
	var info TenantInfo
	if err := c.do(ctx, http.MethodPost, "/v1/tenants", 0, spec, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Tenants lists every tenant the daemon has seen.
func (c *Client) Tenants(ctx context.Context) ([]TenantInfo, error) {
	var resp TenantListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/tenants", 0, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Tenants, nil
}

// Tenant fetches one tenant's state.
func (c *Client) Tenant(ctx context.Context, name string) (*TenantInfo, error) {
	var info TenantInfo
	if err := c.do(ctx, http.MethodGet, "/v1/tenants/"+name, 0, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// RemoteController adapts one daemon session to sim.Controller, so the
// in-process simulator can execute a workflow while the planning happens
// over HTTP. It numbers plan intervals so client-level retries stay
// exactly-once. Plan cannot return an error by contract; a transport or API
// failure freezes the pool (empty decision) and is reported by Err after
// the run.
type RemoteController struct {
	client *Client
	info   *SessionInfo
	ctx    context.Context

	// observe, when set, receives each plan round-trip latency.
	observe func(time.Duration)

	seq      atomic.Int64
	degraded atomic.Int64

	mu  sync.Mutex
	err error
}

var _ sim.Controller = (*RemoteController)(nil)

// NewRemoteController creates a session on the daemon and wraps it. ctx
// bounds the session's whole lifetime: every plan round trip inherits it.
func NewRemoteController(ctx context.Context, c *Client, req CreateSessionRequest) (*RemoteController, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	info, err := c.CreateSession(ctx, req)
	if err != nil {
		return nil, err
	}
	return &RemoteController{client: c, info: info, ctx: ctx}, nil
}

// SetLatencyObserver registers a per-plan latency callback (loadgen). Call
// it before the run starts.
func (rc *RemoteController) SetLatencyObserver(fn func(time.Duration)) { rc.observe = fn }

// Session returns the wrapped session's info.
func (rc *RemoteController) Session() SessionInfo { return *rc.info }

// Degraded returns how many plan responses were served by the daemon's
// fallback policy after a controller panic.
func (rc *RemoteController) Degraded() int64 { return rc.degraded.Load() }

// Name implements sim.Controller; it reports the server-side policy so a
// remote run is labelled identically to its in-process twin.
func (rc *RemoteController) Name() string { return rc.info.Policy }

// Plan implements sim.Controller by delegating to the daemon.
func (rc *RemoteController) Plan(snap *monitor.Snapshot) sim.Decision {
	rc.mu.Lock()
	failed := rc.err != nil
	rc.mu.Unlock()
	if failed {
		return sim.Decision{}
	}
	ctx := rc.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	resp, err := rc.client.Plan(ctx, rc.info.ID, rc.seq.Add(1), snap)
	if rc.observe != nil {
		rc.observe(time.Since(t0))
	}
	if err != nil {
		rc.mu.Lock()
		if rc.err == nil {
			rc.err = err
		}
		rc.mu.Unlock()
		return sim.Decision{}
	}
	if resp.Degraded {
		rc.degraded.Add(1)
	}
	return resp.Decision
}

// Err returns the first plan failure, if any.
func (rc *RemoteController) Err() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.err
}

// Close deletes the remote session.
func (rc *RemoteController) Close() error {
	ctx := rc.ctx
	if ctx == nil || ctx.Err() != nil {
		ctx = context.Background()
	}
	return rc.client.DeleteSession(ctx, rc.info.ID)
}
