package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
)

// APIError is a non-2xx response decoded from the daemon's error body.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("wire-serve: HTTP %d (%s): %s", e.StatusCode, e.Code, e.Message)
}

// Client talks to a wire-serve daemon. It is safe for concurrent use; the
// load generator shares one client across every session.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a daemon base URL such as
// "http://127.0.0.1:8080".
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
}

// do sends one JSON request. A nil in sends no body; a nil out discards the
// response body.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("wire-serve client: encode %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("wire-serve client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("wire-serve client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		apiErr := &APIError{StatusCode: resp.StatusCode, Code: "unknown"}
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil {
			apiErr.Code, apiErr.Message = eb.Code, eb.Error
		}
		return apiErr
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("wire-serve client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// CreateSession creates a controller session.
func (c *Client) CreateSession(req CreateSessionRequest) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(http.MethodPost, "/v1/sessions", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Plan posts one monitoring snapshot and returns the decision. The
// snapshot's Workflow is stripped before sending — the session's DAG is
// authoritative on the server.
func (c *Client) Plan(id string, snap *monitor.Snapshot) (*PlanResponse, error) {
	lean := *snap
	lean.Workflow = nil
	var resp PlanResponse
	if err := c.do(http.MethodPost, "/v1/sessions/"+id+"/plan", &lean, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// State fetches the session's run state.
func (c *Client) State(id string) (*SessionStateResponse, error) {
	var resp SessionStateResponse
	if err := c.do(http.MethodGet, "/v1/sessions/"+id+"/state", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeleteSession drops the session.
func (c *Client) DeleteSession(id string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Health fetches the liveness document.
func (c *Client) Health() (*HealthResponse, error) {
	var resp HealthResponse
	if err := c.do(http.MethodGet, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MetricsDump fetches the daemon's metrics document.
func (c *Client) MetricsDump() (*MetricsDump, error) {
	var resp MetricsDump
	if err := c.do(http.MethodGet, "/metrics", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RemoteController adapts one daemon session to sim.Controller, so the
// in-process simulator can execute a workflow while the planning happens
// over HTTP. Plan cannot return an error by contract; a transport or API
// failure freezes the pool (empty decision) and is reported by Err after
// the run.
type RemoteController struct {
	client *Client
	info   *SessionInfo

	// observe, when set, receives each plan round-trip latency.
	observe func(time.Duration)

	mu  sync.Mutex
	err error
}

var _ sim.Controller = (*RemoteController)(nil)

// NewRemoteController creates a session on the daemon and wraps it.
func NewRemoteController(c *Client, req CreateSessionRequest) (*RemoteController, error) {
	info, err := c.CreateSession(req)
	if err != nil {
		return nil, err
	}
	return &RemoteController{client: c, info: info}, nil
}

// SetLatencyObserver registers a per-plan latency callback (loadgen). Call
// it before the run starts.
func (rc *RemoteController) SetLatencyObserver(fn func(time.Duration)) { rc.observe = fn }

// Session returns the wrapped session's info.
func (rc *RemoteController) Session() SessionInfo { return *rc.info }

// Name implements sim.Controller; it reports the server-side policy so a
// remote run is labelled identically to its in-process twin.
func (rc *RemoteController) Name() string { return rc.info.Policy }

// Plan implements sim.Controller by delegating to the daemon.
func (rc *RemoteController) Plan(snap *monitor.Snapshot) sim.Decision {
	rc.mu.Lock()
	failed := rc.err != nil
	rc.mu.Unlock()
	if failed {
		return sim.Decision{}
	}
	t0 := time.Now()
	resp, err := rc.client.Plan(rc.info.ID, snap)
	if rc.observe != nil {
		rc.observe(time.Since(t0))
	}
	if err != nil {
		rc.mu.Lock()
		if rc.err == nil {
			rc.err = err
		}
		rc.mu.Unlock()
		return sim.Decision{}
	}
	return resp.Decision
}

// Err returns the first plan failure, if any.
func (rc *RemoteController) Err() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.err
}

// Close deletes the remote session.
func (rc *RemoteController) Close() error {
	return rc.client.DeleteSession(rc.info.ID)
}
