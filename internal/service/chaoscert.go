package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// ChaosCertConfig drives ChaosCertify: the chaos certificate run behind
// `wire-serve loadgen -chaos`.
type ChaosCertConfig struct {
	// Loadgen configures the sessions. Client is filled in by the harness;
	// Chaos and Verify should be set (the certificate is the verification).
	Loadgen LoadgenConfig
	// Server configures the daemon; JournalDir is overridden.
	Server Config
	// JournalDir holds the per-session WALs (default: a fresh temp dir,
	// removed afterwards).
	JournalDir string
	// KillAfter abruptly kills the daemon this long into the run — open
	// connections die mid-flight, no drain — and restarts it from the
	// journal after Downtime. Zero skips the kill.
	KillAfter time.Duration
	// Downtime is how long the daemon stays dead (default 100ms).
	Downtime time.Duration
}

// ChaosCertResult is a certificate run's outcome.
type ChaosCertResult struct {
	*LoadgenResult
	// Killed reports whether the mid-run kill actually happened (the run
	// may finish first).
	Killed bool
	// JournalReplays is how many sessions the restarted daemon rebuilt
	// from write-ahead logs.
	JournalReplays int64
}

// ChaosCertify hosts a wire-serve daemon in-process, drives chaos loadgen
// against it through injected network faults, optionally kills and restarts
// the daemon mid-run (recovering every session from its journal), and
// returns the loadgen report. The certificate passes when no session fails,
// mismatches, or loses a plan interval — i.e. the decision streams are
// byte-identical to fault-free in-process twin runs.
func ChaosCertify(ctx context.Context, cfg ChaosCertConfig) (*ChaosCertResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	logf := cfg.Server.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.JournalDir == "" {
		dir, err := os.MkdirTemp("", "wire-serve-chaos-*")
		if err != nil {
			return nil, fmt.Errorf("chaos cert: %w", err)
		}
		defer os.RemoveAll(dir)
		cfg.JournalDir = dir
	}
	cfg.Server.JournalDir = cfg.JournalDir
	if cfg.Downtime <= 0 {
		cfg.Downtime = 100 * time.Millisecond
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos cert: %w", err)
	}
	addr := ln.Addr().String()
	srv := New(cfg.Server)
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()

	cfg.Loadgen.Client = NewClient("http://" + addr)
	resc := make(chan *LoadgenResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := Loadgen(ctx, cfg.Loadgen)
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()

	out := &ChaosCertResult{}
	if cfg.KillAfter > 0 {
		select {
		case res := <-resc:
			// The run outpaced the kill; certify without it.
			out.LoadgenResult = res
		case err := <-errc:
			_ = hs.Close()
			return nil, err
		case <-time.After(cfg.KillAfter):
			logf("chaos cert: killing daemon at %s (abrupt, no drain)", addr)
			_ = hs.Close() // kills open connections mid-flight
			time.Sleep(cfg.Downtime)
			ln2, err := relisten(addr)
			if err != nil {
				return nil, fmt.Errorf("chaos cert: rebind %s: %w", addr, err)
			}
			srv = New(cfg.Server) // rebuilds the session store from WALs
			hs = &http.Server{Handler: srv.Handler()}
			go func() { _ = hs.Serve(ln2) }()
			out.Killed = true
			logf("chaos cert: daemon restarted with %d recovered session(s)", srv.Store().Len())
		}
	}
	if out.LoadgenResult == nil {
		select {
		case res := <-resc:
			out.LoadgenResult = res
		case err := <-errc:
			_ = hs.Close()
			return nil, err
		}
	}
	dump := srv.Metrics().Dump(time.Now(), srv.Store().Len())
	out.JournalReplays = dump.FaultTolerance.JournalReplaysTotal
	_ = hs.Close()
	return out, nil
}

// relisten rebinds an exact address, retrying briefly: the dead server's
// socket can linger for a moment after Close.
func relisten(addr string) (net.Listener, error) {
	var err error
	for i := 0; i < 50; i++ {
		var ln net.Listener
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, err
}
