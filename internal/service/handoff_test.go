package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/dagio"
)

func postShardAdmin(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestExportAdoptFileMigration pins the planned-migration mechanics at the
// service layer: a session exported from its donor by name, handed to a peer
// as a WAL file, answers a replayed seq byte-identically on the new owner —
// and requests carrying an epoch below the highest a shard has seen are
// refused with 409 stale_epoch.
func TestExportAdoptFileMigration(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := New(Config{ShardMode: true, JournalDir: dirA})
	ats := httptest.NewServer(a.Handler())
	defer ats.Close()
	b := New(Config{ShardMode: true, JournalDir: dirB})
	bts := httptest.NewServer(b.Handler())
	defer bts.Close()

	ctx := context.Background()
	ca := NewClient(ats.URL)
	wf := smallWorkflow(3)
	info, err := ca.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf), Policy: "wire"})
	if err != nil {
		t.Fatal(err)
	}
	snap := readySnapshot(wf)
	released, err := ca.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatal(err)
	}

	// Export by name at epoch 5. Unknown IDs come back in Missing, not as an
	// error: the router reconciles them.
	resp, body := postShardAdmin(t, ats.URL+"/v1/admin/export", ExportRequest{
		SessionIDs: []string{info.ID, "never-here"}, Epoch: 5, To: "b",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: HTTP %d: %s", resp.StatusCode, body)
	}
	var er ExportResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Sessions != 1 || len(er.JournalFiles) != 1 {
		t.Fatalf("export response %+v, want 1 session / 1 file", er)
	}
	if len(er.Missing) != 1 || er.Missing[0] != "never-here" {
		t.Fatalf("Missing = %v, want [never-here]", er.Missing)
	}
	if a.Store().Len() != 0 {
		t.Fatalf("donor still hosts %d sessions after export", a.Store().Len())
	}
	// The donor answers requests for the departed session with the distinct
	// fenced code so clients re-resolve through the router.
	if _, err := ca.State(ctx, info.ID); err == nil {
		t.Fatal("exported session still answers on the donor")
	}

	// Adopt the exported file at the same epoch.
	resp, body = postShardAdmin(t, bts.URL+"/v1/admin/adopt", AdoptRequest{
		JournalFiles: er.JournalFiles, From: "a", Epoch: 5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adopt: HTTP %d: %s", resp.StatusCode, body)
	}
	var ar AdoptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Sessions != 1 || b.Store().Len() != 1 {
		t.Fatalf("adopt reported %d sessions, store holds %d, want 1/1", ar.Sessions, b.Store().Len())
	}

	// The replayed seq answers the decision the donor already released —
	// byte-identical, not re-planned.
	cb := NewClient(bts.URL)
	replayed, err := cb.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatalf("migrated session does not answer: %v", err)
	}
	rb, _ := json.Marshal(released.Decision)
	pb, _ := json.Marshal(replayed.Decision)
	if !bytes.Equal(rb, pb) {
		t.Fatalf("replayed seq decision changed across migration: %s != %s", rb, pb)
	}
	// And the session keeps planning forward on the new owner.
	if _, err := cb.Plan(ctx, info.ID, 2, snap); err != nil {
		t.Fatalf("migrated session cannot plan a new seq: %v", err)
	}

	// Epoch ratchet: both admin endpoints refuse an epoch below the highest
	// seen, with the distinct stale_epoch code.
	for _, tc := range []struct {
		url  string
		body any
	}{
		{ats.URL + "/v1/admin/export", ExportRequest{SessionIDs: []string{"x"}, Epoch: 3}},
		{bts.URL + "/v1/admin/adopt", AdoptRequest{JournalFiles: []string{filepath.Join(dirA, "x.wal")}, Epoch: 3}},
	} {
		resp, body = postShardAdmin(t, tc.url, tc.body)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s at stale epoch: HTTP %d: %s, want 409", tc.url, resp.StatusCode, body)
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "stale_epoch" {
			t.Fatalf("stale-epoch error body %s, want code stale_epoch", body)
		}
	}

	// A retried adopt of the same (now consumed) file set is idempotent.
	resp, body = postShardAdmin(t, bts.URL+"/v1/admin/adopt", AdoptRequest{
		JournalFiles: er.JournalFiles, From: "a", Epoch: 5,
	})
	var ar2 AdoptResponse
	_ = json.Unmarshal(body, &ar2)
	if resp.StatusCode != http.StatusOK || ar2.Sessions != 1 || b.Store().Len() != 1 {
		t.Fatalf("retried adopt: HTTP %d sessions %d store %d, want 200/1/1", resp.StatusCode, ar2.Sessions, b.Store().Len())
	}
}

// TestFencedAppendWithholdsDecision is the double-serve test at the service
// layer: a peer fences and adopts a live shard's WAL out from under it (the
// shard was wrongly declared dead), and the stale shard must WITHHOLD any
// decision it would have appended after the fence — answering 503
// session_fenced instead of releasing a decision the adopter will never see.
func TestFencedAppendWithholdsDecision(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := New(Config{ShardMode: true, JournalDir: dirA})
	ats := httptest.NewServer(a.Handler())
	defer ats.Close()

	ctx := context.Background()
	ca := NewClient(ats.URL)
	wf := smallWorkflow(3)
	info, err := ca.CreateSession(ctx, CreateSessionRequest{Workflow: dagio.Encode(wf), Policy: "wire"})
	if err != nil {
		t.Fatal(err)
	}
	snap := readySnapshot(wf)
	released, err := ca.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatal(err)
	}

	// A is still serving when the router (believing it dead) hands its WAL
	// to B. The fence lands under A's feet.
	b := New(Config{ShardMode: true, JournalDir: dirB})
	total, fresh := b.AdoptJournalFiles([]string{filepath.Join(dirA, info.ID+".wal")}, 2, "a")
	if total != 1 || fresh != 1 {
		t.Fatalf("adopt = (%d, %d), want (1, 1)", total, fresh)
	}

	// The stale shard re-checks the fence after every synced append: a NEW
	// seq (which must append) is withheld with the fenced code. A retried
	// seq still answers from cache — that decision was already released and
	// is in the adopted copy.
	_, err = ca.Plan(ctx, info.ID, 2, snap)
	if err == nil {
		t.Fatal("fenced shard released a new decision (double-serve)")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeSessionFenced {
		t.Fatalf("fenced plan error = %v, want code %s", err, CodeSessionFenced)
	}

	// The adopter holds the full released history.
	bts := httptest.NewServer(b.Handler())
	defer bts.Close()
	cb := NewClient(bts.URL)
	replayed, err := cb.Plan(ctx, info.ID, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := json.Marshal(released.Decision)
	pb, _ := json.Marshal(replayed.Decision)
	if !bytes.Equal(rb, pb) {
		t.Fatalf("adopted decision differs from what the donor released: %s != %s", rb, pb)
	}
	if _, err := cb.Plan(ctx, info.ID, 2, snap); err != nil {
		t.Fatalf("adopter cannot plan the seq the stale shard withheld: %v", err)
	}

	// A restarted process on A's journal dir must NOT resurrect the fenced
	// session.
	a2 := New(Config{ShardMode: true, JournalDir: dirA})
	if got := a2.Store().Len(); got != 0 {
		t.Fatalf("restart on a fenced journal dir resurrected %d sessions", got)
	}
}
