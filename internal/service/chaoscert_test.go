package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dag"
	"repro/internal/workloads"
)

// TestChaosCertifyKillRestart is the fault-tolerance certificate: sessions
// planned through injected network and cloud faults, the daemon killed
// abruptly mid-run and rebuilt from its journal, and every decision stream
// required byte-identical to a fault-free in-process twin. With -race this
// doubles as the concurrency certificate of the whole fault path.
func TestChaosCertifyKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos certificate is slow")
	}
	plan := &chaos.Plan{
		Seed:              7,
		DropRequest:       0.05,
		Err5xx:            0.05,
		DropResponse:      0.05,
		DelayProb:         0.5,
		MaxDelay:          25 * time.Millisecond,
		LostOrder:         0.05,
		DuplicateOrder:    0.05,
		DeadOnArrival:     0.05,
		StragglerProb:     0.10,
		MaxStragglerDelay: 60,
	}
	res, err := ChaosCertify(context.Background(), ChaosCertConfig{
		Loadgen: LoadgenConfig{
			Sessions:    10,
			Concurrency: 2, // stretches the wall clock so the kill lands mid-run
			Policy:      "wire",
			// 300s tasks make WIRE scale the pool up, so every session
			// issues elastic launch orders for the cloud faults to hit.
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(40+int(seed%5), 300)
			},
			Cloud:    testCloud,
			Noise:    0.08,
			SeedBase: 500,
			Chaos:    plan,
			Verify:   true,
		},
		KillAfter: 150 * time.Millisecond,
		Downtime:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Sessions {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d decision streams diverged from fault-free twins: %v", res.Mismatched, res.Errors)
	}
	if res.NetFaults.Total() == 0 {
		t.Error("no network faults injected; the certificate proved nothing")
	}
	if res.CloudFaults.Lost+res.CloudFaults.Duplicated+res.CloudFaults.DOA == 0 {
		t.Error("no cloud faults injected; the certificate proved nothing")
	}
	if res.Retries == 0 {
		t.Error("no client retries despite injected faults")
	}
	if !res.Killed {
		t.Fatal("run outpaced the kill; the crash-recovery path was not exercised")
	}
	if res.JournalReplays == 0 {
		t.Error("daemon restarted without replaying any session journal")
	}
}

// TestChaosLoadgenRepeatRunsIdentical pins end-to-end determinism of the
// fault harness: two full chaos loadgen runs with the same configuration
// (no kill — timing-free) must report identical fault and session counts.
func TestChaosLoadgenRepeatRunsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos repeat run is slow")
	}
	plan := &chaos.Plan{
		Seed:           21,
		DropRequest:    0.08,
		Err5xx:         0.08,
		DropResponse:   0.08,
		LostOrder:      0.08,
		DuplicateOrder: 0.08,
		DeadOnArrival:  0.08,
	}
	run := func() *ChaosCertResult {
		t.Helper()
		res, err := ChaosCertify(context.Background(), ChaosCertConfig{
			Loadgen: LoadgenConfig{
				Sessions: 6,
				Policy:   "wire",
				Workflow: func(seed int64) *dag.Workflow {
					return workloads.Linear(30+int(seed%3), 300)
				},
				Cloud:    testCloud,
				SeedBase: 900,
				Chaos:    plan,
				Verify:   true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Failed != 0 || a.Mismatched != 0 {
		t.Fatalf("first run failed/mismatched %d/%d: %v", a.Failed, a.Mismatched, a.Errors)
	}
	if a.NetFaults != b.NetFaults {
		t.Errorf("network fault counts differ across identical runs: %+v != %+v", a.NetFaults, b.NetFaults)
	}
	if a.CloudFaults != b.CloudFaults {
		t.Errorf("cloud fault counts differ across identical runs: %+v != %+v", a.CloudFaults, b.CloudFaults)
	}
	if a.Plans != b.Plans || a.Decisions != b.Decisions {
		t.Errorf("plan counts differ: %d/%d != %d/%d", a.Plans, a.Decisions, b.Plans, b.Decisions)
	}
}
