package tenancy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/simtime"
	"repro/internal/workloads"
)

// Arrival process names.
const (
	Poisson = "poisson"
	Burst   = "burst"
	Diurnal = "diurnal"
)

// Processes lists the supported arrival processes.
func Processes() []string { return []string{Poisson, Burst, Diurnal} }

// StreamConfig parameterizes stream generation. The zero value is invalid;
// withDefaults fills everything but Seed, N, and RatePerHour.
type StreamConfig struct {
	// Seed is the base seed; every tenant derives its own splitmix64
	// substream from (Seed, Process, tenant index).
	Seed int64
	// Process is one of poisson, burst, or diurnal.
	Process string
	// N is the total number of arrivals across all tenants.
	N int
	// Tenants is the number of tenant streams (default 1). Arrivals are
	// split evenly, earlier tenants taking the remainder.
	Tenants int
	// RatePerHour is each tenant's mean arrival rate.
	RatePerHour float64
	// Keys are the catalog keys drawn uniformly per arrival (default: the
	// full catalog).
	Keys []string

	// SlackLo/SlackHi bound the uniform deadline-slack multiplier over the
	// nominal span (defaults 1.5 and 4).
	SlackLo, SlackHi float64
	// BudgetLo/BudgetHi bound the uniform budget factor over the estimated
	// cost (defaults 1 and 2).
	BudgetLo, BudgetHi float64

	// Site reference for deadline/cost estimates: slots per instance, the
	// reference pool size, the pool-change lag, and the charging unit
	// (defaults 4, 4, 180s, 900s — the paper's site).
	Slots         int
	RefInstances  int
	LagS          float64
	ChargingUnitS float64

	// BurstMean is the mean burst size of the burst process (default 4).
	BurstMean float64
	// DiurnalPeriodS is the diurnal modulation period (default 21600s).
	DiurnalPeriodS float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Process == "" {
		c.Process = Poisson
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if len(c.Keys) == 0 {
		c.Keys = workloads.Keys()
	}
	if c.SlackLo <= 0 {
		c.SlackLo = 1.5
	}
	if c.SlackHi <= c.SlackLo {
		c.SlackHi = c.SlackLo + 2.5
	}
	if c.BudgetLo <= 0 {
		c.BudgetLo = 1
	}
	if c.BudgetHi <= c.BudgetLo {
		c.BudgetHi = c.BudgetLo + 1
	}
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.RefInstances <= 0 {
		c.RefInstances = 4
	}
	if c.LagS <= 0 {
		c.LagS = 180
	}
	if c.ChargingUnitS <= 0 {
		c.ChargingUnitS = 900
	}
	if c.BurstMean < 1 {
		c.BurstMean = 4
	}
	if c.DiurnalPeriodS <= 0 {
		c.DiurnalPeriodS = 21600
	}
	return c
}

// Generate builds a deterministic multi-tenant arrival stream. Every tenant
// draws from its own rng seeded by (Seed, Process, tenant), so the merged
// stream is independent of generation order and worker count.
func Generate(cfg StreamConfig) (*Stream, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 {
		return nil, fmt.Errorf("tenancy: stream needs N > 0 arrivals")
	}
	if cfg.RatePerHour <= 0 {
		return nil, fmt.Errorf("tenancy: stream needs a positive arrival rate")
	}
	switch cfg.Process {
	case Poisson, Burst, Diurnal:
	default:
		return nil, fmt.Errorf("tenancy: unknown arrival process %q", cfg.Process)
	}
	runs := make([]workloads.Run, len(cfg.Keys))
	for i, key := range cfg.Keys {
		run, ok := workloads.ByKey(key)
		if !ok {
			return nil, fmt.Errorf("tenancy: unknown workload key %q", key)
		}
		runs[i] = run
	}

	arrivals := make([]Arrival, 0, cfg.N)
	for t := 0; t < cfg.Tenants; t++ {
		n := cfg.N / cfg.Tenants
		if t < cfg.N%cfg.Tenants {
			n++
		}
		if n == 0 {
			continue
		}
		tenant := fmt.Sprintf("t%d", t)
		rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, "arrivals", strPart(cfg.Process), uint64(t))))
		times := arrivalTimes(rng, cfg, n)
		for _, at := range times {
			run := runs[rng.Intn(len(runs))]
			slack := cfg.SlackLo + rng.Float64()*(cfg.SlackHi-cfg.SlackLo)
			span := NominalSpanS(run.Spec, cfg.RefInstances, cfg.Slots) + 2*cfg.LagS
			factor := cfg.BudgetLo + rng.Float64()*(cfg.BudgetHi-cfg.BudgetLo)
			cost := estCostUnits(run.Spec, cfg.Slots, simtime.Duration(cfg.ChargingUnitS))
			arrivals = append(arrivals, Arrival{
				Tenant:       tenant,
				Time:         simtime.Time(at),
				WorkflowKey:  run.Key,
				WorkflowSeed: rng.Int63(),
				DeadlineS:    slack * span,
				BudgetUnits:  int(math.Ceil(factor * float64(cost))),
			})
		}
	}
	sortArrivals(arrivals)
	return &Stream{Seed: cfg.Seed, Process: cfg.Process, Arrivals: arrivals}, nil
}

// arrivalTimes draws n arrival instants for one tenant.
func arrivalTimes(rng *rand.Rand, cfg StreamConfig, n int) []float64 {
	rate := cfg.RatePerHour / 3600 // arrivals per second
	out := make([]float64, 0, n)
	t := 0.0
	switch cfg.Process {
	case Poisson:
		for len(out) < n {
			t += rng.ExpFloat64() / rate
			out = append(out, t)
		}
	case Burst:
		// Bursts of mean size BurstMean separated by exponential gaps whose
		// rate keeps the long-run arrival rate at cfg.RatePerHour; arrivals
		// inside a burst are seconds apart.
		gapRate := rate / cfg.BurstMean
		for len(out) < n {
			t += rng.ExpFloat64() / gapRate
			size := 1 + rng.Intn(2*int(cfg.BurstMean)-1)
			bt := t
			for i := 0; i < size && len(out) < n; i++ {
				if i > 0 {
					bt += rng.ExpFloat64() * 2
				}
				out = append(out, bt)
			}
			if bt > t {
				t = bt
			}
		}
	case Diurnal:
		// Thinning against lambda(t) = rate*(1 + 0.9 sin(2 pi t/period)):
		// candidates arrive at the peak rate and survive proportionally.
		peak := rate * 1.9
		for len(out) < n {
			t += rng.ExpFloat64() / peak
			lambda := rate * (1 + 0.9*math.Sin(2*math.Pi*t/cfg.DiurnalPeriodS))
			if rng.Float64()*peak < lambda {
				out = append(out, t)
			}
		}
	}
	return out
}
