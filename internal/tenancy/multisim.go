package tenancy

import (
	"fmt"
	"sort"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/steer"
	"repro/internal/workloads"
)

// MultiConfig parameterizes a multi-run stream simulation: many independent
// sim runs interleaved at MAPE-interval granularity against one shared
// capacity and spend ledger.
//
// The interleaving model: every admitted run simulates on its own clock
// (offset by its admission time) and parks at each of its MAPE planning
// points; the coordinator processes parking points and arrivals in global
// time order, exchanging cross-run state (held instances, committed spend)
// exactly once per interval — the same cadence at which the paper's control
// loop observes the world. Runs never interact below interval granularity.
type MultiConfig struct {
	// Cloud is the per-run site template; MaxInstances is overridden with
	// the arbiter cap (the shared physical site).
	Cloud cloud.Config
	// Interval is the MAPE period (default: the cloud lag time).
	Interval simtime.Duration
	// Arbiter configures the cross-run policy, cap, and budget.
	Arbiter ArbiterConfig
	// SimSeed drives per-run simulation seeds, derived per arrival index.
	SimSeed int64
	// NewController builds each run's controller; admittedAt is the run's
	// start on the global clock, so per-arrival deadlines can be rebased
	// onto the run-local clock. Default: the deadline policy racing the
	// arrival's deadline (plain WIRE when the arrival has none) — each
	// run buys whatever meeting its deadline takes, and the cross-run
	// arbiter is what reins the aggregate back into cap and budget.
	NewController func(arr Arrival, admittedAt simtime.Time) sim.Controller
	// Observer, when set, receives every run's sim events tagged with run
	// and tenant. Calls are serialized by the grant protocol; event times
	// are run-local (add the outcome's AdmittedAt for the global clock).
	Observer func(runID int, tenant string, ev sim.Event)
}

// Outcome is one arrival's fate.
type Outcome struct {
	Arrival     Arrival
	AdmittedAt  simtime.Time
	QueueDelayS float64
	CompletedAt simtime.Time
	Missed      bool
	Units       int
	Result      *sim.Result
}

// MultiResult summarizes one stream run.
type MultiResult struct {
	Policy string
	// Outcomes is sorted by arrival index.
	Outcomes []Outcome
	// TotalUnits is the aggregate spend in charging units.
	TotalUnits int
	// Misses counts runs completing after their deadline.
	Misses int
	// PeakHeld is the largest shared-pool occupancy observed at a
	// coordination point.
	PeakHeld int
	// ThrottledAdmissions counts arrivals deferred at least once by the
	// admission gate.
	ThrottledAdmissions int
	// QueueDelayMeanS is the mean admission delay.
	QueueDelayMeanS float64
	// MakespanS is the last completion instant on the global clock.
	MakespanS float64
}

// MissRate returns Misses over completed runs.
func (r *MultiResult) MissRate() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return float64(r.Misses) / float64(len(r.Outcomes))
}

// runMsg is one run's report to the coordinator: a parking point (park set)
// or completion (res/err set). t is on the global clock.
type runMsg struct {
	park *RunStatus
	t    simtime.Time
	res  *sim.Result
	err  error
}

// runHandle is the coordinator's view of one admitted run.
type runHandle struct {
	id     int
	arr    Arrival
	start  simtime.Time
	acct   *Accountant
	msgc   chan runMsg
	grantc chan Grant
}

// arbCtrl wraps a run's controller with the grant protocol: at every Plan it
// parks (reporting status to the coordinator), blocks for its grant, then
// throttles the inner decision to the grant.
type arbCtrl struct {
	h         *runHandle
	inner     sim.Controller
	priorExec float64
}

func (c *arbCtrl) Name() string { return c.inner.Name() }

func (c *arbCtrl) Plan(snap *monitor.Snapshot) sim.Decision {
	st := c.status(snap)
	c.h.msgc <- runMsg{park: &st, t: c.h.start + simtime.Time(snap.Now)}
	g := <-c.h.grantc
	dec := c.inner.Plan(snap)
	return steer.Throttle(dec, snap.Instances, g.Target, g.MaxLaunch)
}

// status summarizes the snapshot for the arbiter. Remaining work uses the
// mean observed execution time once tasks complete, the catalog prior
// before — controllers (and the arbiter) never read ground truth.
func (c *arbCtrl) status(snap *monitor.Snapshot) RunStatus {
	sum, n := 0.0, 0
	for i := range snap.Tasks {
		if snap.Tasks[i].State == monitor.Completed {
			sum += float64(snap.Tasks[i].ExecTime)
			n++
		}
	}
	mean := c.priorExec
	if n > 0 {
		mean = sum / float64(n)
	}
	remaining := snap.RemainingTasks()
	return RunStatus{
		ID:        c.h.id,
		Tenant:    c.h.arr.Tenant,
		Held:      len(snap.Instances),
		Remaining: remaining,
		Slots:     snap.SlotsPerInstance,
		ArrivedAt: c.h.arr.Time,
		Deadline:  c.h.arr.Deadline(),
		EstWorkS:  float64(remaining) * mean,
	}
}

// RunStream drives a whole arrival stream through the shared pool and
// returns per-run outcomes plus aggregate spend/miss metrics. The run is
// deterministic in (stream, MultiConfig): the coordinator is fully
// serialized — at most one run's simulator executes at any instant, and all
// cross-run reads happen while every run is parked.
func RunStream(stream *Stream, cfg MultiConfig) (*MultiResult, error) {
	acfg, err := cfg.Arbiter.withDefaults()
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(stream.Arrivals); i++ {
		if stream.Arrivals[i].Time < stream.Arrivals[i-1].Time {
			return nil, fmt.Errorf("tenancy: stream not sorted at arrival %d", i)
		}
	}
	newCtrl := cfg.NewController
	if newCtrl == nil {
		newCtrl = func(arr Arrival, admittedAt simtime.Time) sim.Controller {
			if arr.DeadlineS <= 0 {
				return core.New(core.Config{})
			}
			// Rebase the arrival's absolute deadline onto the run-local
			// clock; queue delay eats slack, and a run admitted past its
			// deadline sees an infeasible target (the deadline policy then
			// races at full tilt — exactly the overspend the arbiter's
			// budget feedback exists to contain).
			return core.NewDeadline(core.DeadlineConfig{Deadline: arr.Deadline() - admittedAt})
		}
	}
	cloudCfg := cfg.Cloud
	cloudCfg.MaxInstances = acfg.Cap
	if err := cloudCfg.Validate(); err != nil {
		return nil, err
	}
	unit := cloudCfg.ChargingUnit

	active := make(map[int]*runHandle)
	pending := make(map[int]runMsg)
	outcomes := make([]Outcome, 0, len(stream.Arrivals))
	var waitq []Arrival
	deferred := make(map[int]bool)
	res := &MultiResult{Policy: acfg.Policy}
	next := 0
	now := simtime.Time(0)
	settledUnits := 0
	var firstErr error

	heldTotal := func() int {
		total := 0
		for _, h := range active {
			total += h.acct.Held()
		}
		return total
	}
	committed := func(at simtime.Time) int {
		total := settledUnits
		for _, h := range active {
			total += h.acct.Committed(at)
		}
		return total
	}
	admissible := func(at simtime.Time) bool {
		if acfg.Cap-heldTotal() < 1 {
			return false
		}
		if acfg.Policy != FCFS && acfg.BudgetUnits > 0 && committed(at)+1 > acfg.BudgetUnits {
			// Austerity exception: an idle site always admits, so the
			// stream can never stall below the budget line.
			return len(active) == 0
		}
		return true
	}
	admit := func(arr Arrival, at simtime.Time) error {
		run, ok := workloads.ByKey(arr.WorkflowKey)
		if !ok {
			return fmt.Errorf("tenancy: arrival %d has unknown workload %q", arr.Index, arr.WorkflowKey)
		}
		wf := run.Generate(arr.WorkflowSeed)
		h := &runHandle{
			id:     arr.Index,
			arr:    arr,
			start:  at,
			acct:   NewAccountant(unit, at),
			msgc:   make(chan runMsg),
			grantc: make(chan Grant),
		}
		ctrl := &arbCtrl{h: h, inner: newCtrl(arr, at), priorExec: run.Spec.MeanExecTime()}
		simCfg := sim.Config{
			Cloud:    cloudCfg,
			Interval: cfg.Interval,
			Seed:     deriveSeed(cfg.SimSeed, "multisim", uint64(arr.Index)),
			Observer: func(ev sim.Event) {
				h.acct.Observe(ev)
				if cfg.Observer != nil {
					cfg.Observer(h.id, h.arr.Tenant, ev)
				}
			},
		}
		active[h.id] = h
		go func() {
			r, err := sim.Run(wf, ctrl, simCfg)
			t := h.start
			if r != nil {
				t = h.start + simtime.Time(r.Makespan)
			}
			h.msgc <- runMsg{t: t, res: r, err: err}
		}()
		// The run executes until its first parking point (or completion,
		// for workflows shorter than one interval); everything else stays
		// parked meanwhile, so sim execution is fully serialized.
		pending[h.id] = <-h.msgc
		if ht := heldTotal(); ht > res.PeakHeld {
			res.PeakHeld = ht
		}
		return nil
	}

	for next < len(stream.Arrivals) || len(waitq) > 0 || len(active) > 0 {
		// Candidate actions, processed in global-time order. Ties go to
		// run messages (they free capacity), then deferred admissions
		// (FIFO fairness), then fresh arrivals.
		msgID, msgAt, haveMsg := 0, simtime.Time(0), false
		for id, m := range pending {
			at := m.t
			if at < now {
				at = now
			}
			if !haveMsg || at < msgAt || (at == msgAt && id < msgID) {
				msgID, msgAt, haveMsg = id, at, true
			}
		}
		// The deferred queue admits FIFO, except under the urgency policy,
		// which admits earliest-deadline-first: when capacity frees, the
		// run that can least afford to keep waiting goes next.
		waitIdx := 0
		if acfg.Policy == Urgency {
			for i := 1; i < len(waitq); i++ {
				if waitq[i].Deadline() < waitq[waitIdx].Deadline() {
					waitIdx = i
				}
			}
		}
		waitAt, haveWait := simtime.Time(0), false
		if len(waitq) > 0 {
			waitAt = waitq[waitIdx].Time
			if waitAt < now {
				waitAt = now
			}
			haveWait = admissible(waitAt)
		}
		arrAt, haveArr := simtime.Time(0), false
		if next < len(stream.Arrivals) {
			arrAt = stream.Arrivals[next].Time
			if arrAt < now {
				arrAt = now
			}
			haveArr = true
		}

		switch {
		case haveMsg && (!haveWait || msgAt <= waitAt) && (!haveArr || msgAt <= arrAt):
			h := active[msgID]
			m := pending[msgID]
			now = msgAt
			if m.park == nil {
				// Completion: settle the ledger and record the outcome.
				delete(active, msgID)
				delete(pending, msgID)
				if m.err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("tenancy: run %d (%s): %w", msgID, h.arr.WorkflowKey, m.err)
					}
					continue
				}
				if got := h.acct.Settled(); got != m.res.UnitsCharged {
					if firstErr == nil {
						firstErr = fmt.Errorf("tenancy: run %d ledger drift: accountant settled %d units, simulator charged %d", msgID, got, m.res.UnitsCharged)
					}
				}
				settledUnits += m.res.UnitsCharged
				missed := simtime.After(m.t, h.arr.Deadline())
				outcomes = append(outcomes, Outcome{
					Arrival:     h.arr,
					AdmittedAt:  h.start,
					QueueDelayS: float64(h.start - h.arr.Time),
					CompletedAt: m.t,
					Missed:      missed,
					Units:       m.res.UnitsCharged,
					Result:      m.res,
				})
				if missed {
					res.Misses++
				}
				if float64(m.t) > res.MakespanS {
					res.MakespanS = float64(m.t)
				}
				continue
			}
			// Parking point: apportion across every currently parked run
			// and release this one with its grant.
			statuses := make([]RunStatus, 0, len(pending))
			for _, pm := range pending {
				if pm.park != nil {
					statuses = append(statuses, *pm.park)
				}
			}
			ht := heldTotal()
			if ht > res.PeakHeld {
				res.PeakHeld = ht
			}
			grants := Apportion(acfg, statuses, committed(now), ht, now)
			h.grantc <- grants[msgID]
			pending[msgID] = <-h.msgc
			if ht := heldTotal(); ht > res.PeakHeld {
				res.PeakHeld = ht
			}
		case haveWait && (!haveArr || waitAt <= arrAt):
			arr := waitq[waitIdx]
			waitq = append(waitq[:waitIdx], waitq[waitIdx+1:]...)
			now = waitAt
			if err := admit(arr, waitAt); err != nil {
				return nil, err
			}
		case haveArr:
			arr := stream.Arrivals[next]
			next++
			now = arrAt
			if admissible(arrAt) {
				if err := admit(arr, arrAt); err != nil {
					return nil, err
				}
			} else {
				if !deferred[arr.Index] {
					deferred[arr.Index] = true
					res.ThrottledAdmissions++
				}
				waitq = append(waitq, arr)
			}
		default:
			// Only deferred arrivals remain but none is admissible with
			// no active runs — impossible by the austerity rule.
			return nil, fmt.Errorf("tenancy: coordinator stalled with %d deferred arrivals", len(waitq))
		}
	}

	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Arrival.Index < outcomes[j].Arrival.Index })
	res.Outcomes = outcomes
	res.TotalUnits = settledUnits
	if len(outcomes) > 0 {
		sum := 0.0
		for _, o := range outcomes {
			sum += o.QueueDelayS
		}
		res.QueueDelayMeanS = sum / float64(len(outcomes))
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}
