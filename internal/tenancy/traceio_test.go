package tenancy

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// A write/read round trip must reproduce the stream's arrivals bit for bit
// (floats use strconv's shortest exact form).
func TestTraceRoundTrip(t *testing.T) {
	for _, process := range Processes() {
		s, err := Generate(testStreamConfig(process, 24))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteStreamCSV(&buf, s); err != nil {
			t.Fatal(err)
		}
		back, err := ReadStreamCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Process != TraceProcess {
			t.Errorf("imported process %q, want %q", back.Process, TraceProcess)
		}
		if !reflect.DeepEqual(s.Arrivals, back.Arrivals) {
			t.Errorf("%s: arrivals changed across the CSV round trip", process)
		}
	}
}

// The checked-in fixture pins the acceptance stream: generation must still
// reproduce it exactly (the determinism certificate for arrival draws), and
// replaying it through the simulator plane must be reproducible.
func TestTraceFixtureReplay(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "stream_poisson_s42.csv"))
	if err != nil {
		t.Fatal(err)
	}
	fixture, err := ReadStreamCSV(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(testStreamConfig(Poisson, 24))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gen.Arrivals, fixture.Arrivals) {
		t.Fatal("generated stream no longer matches the checked-in fixture; " +
			"if the generator changed intentionally, regenerate testdata with wire-workflows stream")
	}

	a := runAcceptance(t, fixture, Urgency, 70)
	b := runAcceptance(t, fixture, Urgency, 70)
	if !reflect.DeepEqual(normalized(a), normalized(b)) {
		t.Error("fixture replay is not reproducible")
	}
	if len(a.Outcomes) != len(fixture.Arrivals) {
		t.Errorf("%d outcomes for %d fixture arrivals", len(a.Outcomes), len(fixture.Arrivals))
	}
}

func TestReadStreamCSVRejects(t *testing.T) {
	cases := map[string]string{
		"bad header":       "when,who,what,seed,deadline_s,budget_units\n",
		"empty":            "arrival_s,tenant,workflow,seed,deadline_s,budget_units\n",
		"unknown workflow": "arrival_s,tenant,workflow,seed,deadline_s,budget_units\n1,t0,nope,7,100,1\n",
		"empty tenant":     "arrival_s,tenant,workflow,seed,deadline_s,budget_units\n1,,tpch6-s,7,100,1\n",
		"unsorted": "arrival_s,tenant,workflow,seed,deadline_s,budget_units\n" +
			"5,t0,tpch6-s,7,100,1\n1,t0,tpch6-s,8,100,1\n",
		"bad float": "arrival_s,tenant,workflow,seed,deadline_s,budget_units\nxyz,t0,tpch6-s,7,100,1\n",
	}
	for name, csvText := range cases {
		if _, err := ReadStreamCSV(strings.NewReader(csvText)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
