package tenancy

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

func testStreamConfig(process string, rate float64) StreamConfig {
	return StreamConfig{
		Seed:          42,
		Process:       process,
		N:             51,
		Tenants:       3,
		RatePerHour:   rate,
		Keys:          []string{"tpch6-s", "tpch1-s", "pagerank-s"},
		Slots:         2,
		LagS:          180,
		ChargingUnitS: 900,
	}
}

// Identical configuration must yield an identical stream, bit for bit — the
// determinism pin for the whole arrival subsystem (per-tenant rngs are derived
// with splitmix64 from (seed, process, tenant), so generation order cannot
// leak in).
func TestGenerateDeterministic(t *testing.T) {
	for _, process := range Processes() {
		a, err := Generate(testStreamConfig(process, 24))
		if err != nil {
			t.Fatalf("%s: %v", process, err)
		}
		b, err := Generate(testStreamConfig(process, 24))
		if err != nil {
			t.Fatalf("%s: %v", process, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two generations of the same config differ", process)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	for _, process := range Processes() {
		s, err := Generate(testStreamConfig(process, 24))
		if err != nil {
			t.Fatalf("%s: %v", process, err)
		}
		if len(s.Arrivals) != 51 {
			t.Fatalf("%s: got %d arrivals, want 51", process, len(s.Arrivals))
		}
		tenants := s.Tenants()
		if len(tenants) != 3 {
			t.Errorf("%s: got tenants %v, want 3", process, tenants)
		}
		for i, a := range s.Arrivals {
			if a.Index != i {
				t.Fatalf("%s: arrival %d has index %d", process, i, a.Index)
			}
			if i > 0 && a.Time < s.Arrivals[i-1].Time {
				t.Fatalf("%s: arrivals not sorted at %d", process, i)
			}
			if a.Time < 0 {
				t.Errorf("%s: arrival %d at negative time %v", process, i, a.Time)
			}
			if a.DeadlineS <= 0 {
				t.Errorf("%s: arrival %d has non-positive deadline %v", process, i, a.DeadlineS)
			}
			if a.BudgetUnits < 1 {
				t.Errorf("%s: arrival %d has budget %d < 1", process, i, a.BudgetUnits)
			}
			if _, ok := workloads.ByKey(a.WorkflowKey); !ok {
				t.Errorf("%s: arrival %d has unknown workload %q", process, i, a.WorkflowKey)
			}
		}
		if s.TotalBudget() < 51 {
			t.Errorf("%s: total budget %d below one unit per arrival", process, s.TotalBudget())
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(testStreamConfig(Poisson, 24))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testStreamConfig(Poisson, 24)
	cfg.Seed = 43
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Arrivals, b.Arrivals) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := testStreamConfig("lumpy", 24)
	if _, err := Generate(cfg); err == nil {
		t.Error("unknown process accepted")
	}
	cfg = testStreamConfig(Poisson, 24)
	cfg.Keys = []string{"no-such-workflow"}
	if _, err := Generate(cfg); err == nil {
		t.Error("unknown workload key accepted")
	}
	cfg = testStreamConfig(Poisson, 0)
	if _, err := Generate(cfg); err == nil {
		t.Error("zero rate accepted")
	}
}
