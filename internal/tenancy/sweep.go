package tenancy

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/simtime"
)

// SweepConfig parameterizes the arrival sweep: one stream per arrival rate,
// each stream replayed under every arbiter policy (the paired design — all
// policies of a rate compete on the identical stream).
type SweepConfig struct {
	// Seed drives both stream generation and the per-run simulators.
	Seed int64
	// Process is the arrival process (default poisson).
	Process string
	// RatesPerHour are the per-tenant arrival rates swept.
	RatesPerHour []float64
	// Policies are the arbiter policies compared (default all).
	Policies []string
	// N, Tenants, and Keys shape each stream (see StreamConfig).
	N       int
	Tenants int
	Keys    []string
	// Cloud is the per-run site template; Cap the shared physical cap.
	Cloud cloud.Config
	// Interval is the MAPE period (default: cloud lag).
	Interval simtime.Duration
	Cap      int
	// BudgetUnits is the shared budget for budget-aware policies; 0
	// derives it from the stream's per-arrival budget draws.
	BudgetUnits int
	// Workers bounds sweep parallelism (0 = GOMAXPROCS).
	Workers int
}

// SweepCell is one (rate, policy) result.
type SweepCell struct {
	RatePerHour float64
	Policy      string
	BudgetUnits int
	Result      *MultiResult
}

// Sweep runs the arrival sweep and renders the results table. Cells land in
// fixed slots, so the table is byte-identical at any worker count.
func Sweep(cfg SweepConfig) ([]SweepCell, *report.Table, error) {
	if len(cfg.RatesPerHour) == 0 {
		return nil, nil, fmt.Errorf("tenancy: sweep needs at least one rate")
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = Policies()
	}

	// Streams are generated once per rate and shared across policies.
	streams := make([]*Stream, len(cfg.RatesPerHour))
	budgets := make([]int, len(cfg.RatesPerHour))
	for i, rate := range cfg.RatesPerHour {
		s, err := Generate(StreamConfig{
			Seed:          cfg.Seed,
			Process:       cfg.Process,
			N:             cfg.N,
			Tenants:       cfg.Tenants,
			RatePerHour:   rate,
			Keys:          cfg.Keys,
			Slots:         cfg.Cloud.SlotsPerInstance,
			LagS:          float64(cfg.Cloud.LagTime),
			ChargingUnitS: float64(cfg.Cloud.ChargingUnit),
		})
		if err != nil {
			return nil, nil, err
		}
		streams[i] = s
		budgets[i] = cfg.BudgetUnits
		if budgets[i] <= 0 {
			budgets[i] = s.TotalBudget()
		}
	}

	cells := make([]SweepCell, len(cfg.RatesPerHour)*len(cfg.Policies))
	err := parallel.ForEach(len(cells), parallel.Config{Workers: cfg.Workers}, func(i int) error {
		ri, pi := i/len(cfg.Policies), i%len(cfg.Policies)
		policy := cfg.Policies[pi]
		budget := budgets[ri]
		if policy == FCFS {
			budget = 0 // the no-arbiter baseline ignores the budget
		}
		res, err := RunStream(streams[ri], MultiConfig{
			Cloud:    cfg.Cloud,
			Interval: cfg.Interval,
			Arbiter: ArbiterConfig{
				Policy:      policy,
				Cap:         cfg.Cap,
				BudgetUnits: budget,
				Interval:    cfg.Interval,
			},
			SimSeed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("rate %.1f/h policy %s: %w", cfg.RatesPerHour[ri], policy, err)
		}
		cells[i] = SweepCell{RatePerHour: cfg.RatesPerHour[ri], Policy: policy, BudgetUnits: budget, Result: res}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	tbl := &report.Table{
		Title: fmt.Sprintf("Arrival sweep: %d %s arrivals x %d tenants, cap %d (seed %d)",
			cfg.N, streams[0].Process, cfg.Tenants, cfg.Cap, cfg.Seed),
		Headers: []string{"rate/h", "policy", "budget_u", "arrivals", "misses", "miss_rate",
			"units", "peak_held", "throttled", "q_delay_s"},
	}
	for _, c := range cells {
		tbl.AddRow(
			report.F(c.RatePerHour, 1),
			c.Policy,
			c.BudgetUnits,
			len(c.Result.Outcomes),
			c.Result.Misses,
			report.F(c.Result.MissRate(), 3),
			c.Result.TotalUnits,
			c.Result.PeakHeld,
			c.Result.ThrottledAdmissions,
			report.F(c.Result.QueueDelayMeanS, 1),
		)
	}
	return cells, tbl, nil
}
