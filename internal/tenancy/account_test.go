package tenancy

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The accountant's event-replicated billing must match the simulator's own
// Result exactly — for every catalog workload, under the real controller.
func TestAccountantMatchesSimulator(t *testing.T) {
	for _, run := range workloads.Catalog() {
		run := run
		t.Run(run.Key, func(t *testing.T) {
			acct := NewAccountant(900, 1234.5)
			res, err := sim.Run(run.Generate(7), core.New(core.Config{}), sim.Config{
				Cloud:    cloud.Config{SlotsPerInstance: 2, LagTime: 180, ChargingUnit: 900, MaxInstances: 6},
				Observer: acct.Observe,
			})
			if err != nil {
				t.Fatal(err)
			}
			if acct.Settled() != res.UnitsCharged {
				t.Errorf("accountant settled %d units, simulator charged %d", acct.Settled(), res.UnitsCharged)
			}
			if acct.Held() != 0 {
				t.Errorf("%d instances still held after the run finished", acct.Held())
			}
		})
	}
}

func TestAccountantLifecycle(t *testing.T) {
	acct := NewAccountant(900, 1000)

	// A pending launch is held and commits one unit, but settles nothing.
	acct.Observe(sim.Event{Kind: sim.EvInstanceLaunch, Instance: 1, Time: 0})
	if acct.Held() != 1 {
		t.Fatalf("held %d after launch, want 1", acct.Held())
	}
	if got := acct.Committed(1000); got != 1 {
		t.Errorf("committed %d with one pending launch, want 1", got)
	}

	// Canceled before activation: unbilled, no longer held.
	acct.Observe(sim.Event{Kind: sim.EvInstanceTerminated, Instance: 1, Time: 100})
	if acct.Held() != 0 || acct.Settled() != 0 {
		t.Errorf("pending cancel billed: held %d settled %d", acct.Held(), acct.Settled())
	}

	// DOA: written off unbilled.
	acct.Observe(sim.Event{Kind: sim.EvInstanceLaunch, Instance: 2, Time: 100})
	acct.Observe(sim.Event{Kind: sim.EvInstanceDOA, Instance: 2, Time: 200})
	if acct.Held() != 0 || acct.Settled() != 0 {
		t.Errorf("DOA billed: held %d settled %d", acct.Held(), acct.Settled())
	}

	// Active instance: committed accrues with global time, settles on
	// terminate from its activation origin.
	acct.Observe(sim.Event{Kind: sim.EvInstanceLaunch, Instance: 3, Time: 200})
	acct.Observe(sim.Event{Kind: sim.EvInstanceActive, Instance: 3, Time: 380})
	if got := acct.Committed(1000 + 380); got != 1 {
		t.Errorf("committed %d just after activation, want 1", got)
	}
	if got := acct.Committed(1000 + 380 + 901); got != 2 {
		t.Errorf("committed %d into the second unit, want 2", got)
	}
	acct.Observe(sim.Event{Kind: sim.EvInstanceTerminated, Instance: 3, Time: 380 + 1800})
	if acct.Settled() != 2 {
		t.Errorf("settled %d after two full units, want 2", acct.Settled())
	}
	if acct.Held() != 0 {
		t.Errorf("held %d after terminate, want 0", acct.Held())
	}

	// Failed instances settle like terminated ones (the simulator emits
	// Failed then Terminated at the same instant; settling must not double).
	acct.Observe(sim.Event{Kind: sim.EvInstanceLaunch, Instance: 4, Time: 2000})
	acct.Observe(sim.Event{Kind: sim.EvInstanceActive, Instance: 4, Time: 2100})
	acct.Observe(sim.Event{Kind: sim.EvInstanceFailed, Instance: 4, Time: 2500})
	acct.Observe(sim.Event{Kind: sim.EvInstanceTerminated, Instance: 4, Time: 2500})
	if acct.Settled() != 3 {
		t.Errorf("settled %d after failed instance, want 3 (one unit, not double)", acct.Settled())
	}
}
