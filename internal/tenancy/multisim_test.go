package tenancy

import (
	"reflect"
	"testing"

	"repro/internal/cloud"
)

// acceptanceCloud is the pinned acceptance site: the paper's 900 s charging
// unit and 180 s lag, 2 slots per instance, shared cap of 6.
func acceptanceCloud() cloud.Config {
	return cloud.Config{SlotsPerInstance: 2, LagTime: 180, ChargingUnit: 900, MaxInstances: 6}
}

func acceptanceStream(t *testing.T) *Stream {
	t.Helper()
	s, err := Generate(testStreamConfig(Poisson, 24))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runAcceptance(t *testing.T, s *Stream, policy string, budget int) *MultiResult {
	t.Helper()
	res, err := RunStream(s, MultiConfig{
		Cloud:   acceptanceCloud(),
		Arbiter: ArbiterConfig{Policy: policy, Cap: 6, BudgetUnits: budget},
		SimSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The headline acceptance property: a seeded Poisson stream of 51
// heterogeneous workflows through the shared site-capped pool, where the
// budget-feedback urgency arbiter keeps aggregate spend within the configured
// budget — which the no-arbiter baseline exceeds — while strictly improving
// the deadline-miss rate.
func TestBudgetFeedbackAcceptance(t *testing.T) {
	const budget = 70
	s := acceptanceStream(t)
	if len(s.Arrivals) < 50 {
		t.Fatalf("stream has %d arrivals, want >= 50", len(s.Arrivals))
	}

	baseline := runAcceptance(t, s, FCFS, 0)
	arbited := runAcceptance(t, s, Urgency, budget)

	if arbited.TotalUnits > budget {
		t.Errorf("budget-feedback spend %d units exceeds budget %d", arbited.TotalUnits, budget)
	}
	if baseline.TotalUnits <= budget {
		t.Errorf("baseline spend %d units within budget %d; the budget is not binding", baseline.TotalUnits, budget)
	}
	if arbited.Misses >= baseline.Misses {
		t.Errorf("budget-feedback misses %d, baseline %d; want a strict improvement",
			arbited.Misses, baseline.Misses)
	}
	for _, res := range []*MultiResult{baseline, arbited} {
		if res.PeakHeld > 6 {
			t.Errorf("%s: peak held %d exceeds the shared cap 6", res.Policy, res.PeakHeld)
		}
		if len(res.Outcomes) != len(s.Arrivals) {
			t.Errorf("%s: %d outcomes for %d arrivals (dropped submissions)", res.Policy, len(res.Outcomes), len(s.Arrivals))
		}
		for _, o := range res.Outcomes {
			if o.QueueDelayS < 0 {
				t.Errorf("%s: run %d admitted before it arrived", res.Policy, o.Arrival.Index)
			}
			if o.Units != o.Result.UnitsCharged {
				t.Errorf("%s: run %d ledger drift: %d vs %d", res.Policy, o.Arrival.Index, o.Units, o.Result.UnitsCharged)
			}
		}
	}
	t.Logf("baseline: %d misses, %d units; budget-feedback urgency: %d misses, %d units (budget %d)",
		baseline.Misses, baseline.TotalUnits, arbited.Misses, arbited.TotalUnits, budget)
}

// normalized strips the one intentionally nondeterministic diagnostic —
// ControllerWall is real CPU time — so the rest can be compared exactly.
func normalized(res *MultiResult) *MultiResult {
	out := *res
	out.Outcomes = append([]Outcome(nil), res.Outcomes...)
	for i, o := range out.Outcomes {
		if o.Result != nil {
			r := *o.Result
			r.ControllerWall = 0
			out.Outcomes[i].Result = &r
		}
	}
	return &out
}

// Every policy must be exactly reproducible from the seed: two runs of the
// same stream and config yield identical outcome tables.
func TestRunStreamDeterministic(t *testing.T) {
	s := acceptanceStream(t)
	for _, policy := range Policies() {
		a := runAcceptance(t, s, policy, 70)
		b := runAcceptance(t, s, policy, 70)
		if !reflect.DeepEqual(normalized(a), normalized(b)) {
			t.Errorf("%s: two runs of the same stream differ", policy)
		}
	}
}

// A tightening budget must visibly engage the feedback loop: fewer units
// spent, more throttled admissions, and a longer queue — never a violated
// budget while the baseline stays under it.
func TestBudgetFeedbackEngages(t *testing.T) {
	s := acceptanceStream(t)
	loose := runAcceptance(t, s, Urgency, 1000)
	tight := runAcceptance(t, s, Urgency, 70)
	if tight.TotalUnits > loose.TotalUnits {
		t.Errorf("tight budget spent %d units, loose spent %d", tight.TotalUnits, loose.TotalUnits)
	}
	if tight.TotalUnits > 70 {
		t.Errorf("tight budget violated: %d units > 70", tight.TotalUnits)
	}
}

// Runs admitted with the deadline already hopeless still finish (austerity
// floor), and completions settle on the global clock.
func TestRunStreamCompletesOverloaded(t *testing.T) {
	// 12 arrivals at a brutal rate on a tiny site: heavy deferral.
	cfg := testStreamConfig(Poisson, 120)
	cfg.N = 12
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := acceptanceCloud()
	cl.MaxInstances = 2
	res, err := RunStream(s, MultiConfig{
		Cloud:   cl,
		Arbiter: ArbiterConfig{Policy: Urgency, Cap: 2, BudgetUnits: 10},
		SimSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 12 {
		t.Fatalf("%d outcomes, want 12", len(res.Outcomes))
	}
	if res.PeakHeld > 2 {
		t.Errorf("peak held %d exceeds cap 2", res.PeakHeld)
	}
	for _, o := range res.Outcomes {
		if o.CompletedAt <= o.AdmittedAt {
			t.Errorf("run %d completed at %v, admitted at %v", o.Arrival.Index, o.CompletedAt, o.AdmittedAt)
		}
	}
	if res.ThrottledAdmissions == 0 {
		t.Error("no throttled admissions under a brutal overload; admission gate inert")
	}
}
