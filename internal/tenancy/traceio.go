package tenancy

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/simtime"
	"repro/internal/workloads"
)

// TraceProcess names streams that came from an imported trace rather than a
// generated arrival process.
const TraceProcess = "trace"

// traceHeader is the stable column layout of a stream trace CSV: one row
// per arrival, times in seconds from stream start.
var traceHeader = []string{"arrival_s", "tenant", "workflow", "seed", "deadline_s", "budget_units"}

// WriteStreamCSV exports a stream as a trace CSV. Floats are written with
// strconv's shortest exact representation, so a write/read round trip
// reproduces the stream bit-for-bit.
func WriteStreamCSV(w io.Writer, s *Stream) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	for _, a := range s.Arrivals {
		rec := []string{
			strconv.FormatFloat(float64(a.Time), 'f', -1, 64),
			a.Tenant,
			a.WorkflowKey,
			strconv.FormatInt(a.WorkflowSeed, 10),
			strconv.FormatFloat(a.DeadlineS, 'f', -1, 64),
			strconv.Itoa(a.BudgetUnits),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadStreamCSV imports a trace CSV (external cluster traces use the same
// layout: arrival time, size class, deadline, budget). Workflow keys must
// exist in the workloads catalog; arrivals must be sorted by time.
func ReadStreamCSV(r io.Reader) (*Stream, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tenancy: trace header: %w", err)
	}
	for i, want := range traceHeader {
		if header[i] != want {
			return nil, fmt.Errorf("tenancy: trace column %d is %q, want %q", i, header[i], want)
		}
	}
	s := &Stream{Process: TraceProcess}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tenancy: trace line %d: %w", line, err)
		}
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("tenancy: trace line %d: arrival_s: %w", line, err)
		}
		if rec[1] == "" {
			return nil, fmt.Errorf("tenancy: trace line %d: empty tenant", line)
		}
		if _, ok := workloads.ByKey(rec[2]); !ok {
			return nil, fmt.Errorf("tenancy: trace line %d: unknown workflow %q", line, rec[2])
		}
		seed, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tenancy: trace line %d: seed: %w", line, err)
		}
		deadline, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("tenancy: trace line %d: deadline_s: %w", line, err)
		}
		budget, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("tenancy: trace line %d: budget_units: %w", line, err)
		}
		if n := len(s.Arrivals); n > 0 && simtime.Time(at) < s.Arrivals[n-1].Time {
			return nil, fmt.Errorf("tenancy: trace line %d: arrivals not sorted by time", line)
		}
		s.Arrivals = append(s.Arrivals, Arrival{
			Index:        len(s.Arrivals),
			Tenant:       rec[1],
			Time:         simtime.Time(at),
			WorkflowKey:  rec[2],
			WorkflowSeed: seed,
			DeadlineS:    deadline,
			BudgetUnits:  budget,
		})
	}
	if len(s.Arrivals) == 0 {
		return nil, fmt.Errorf("tenancy: trace has no arrivals")
	}
	return s, nil
}
