package tenancy

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Arbiter policy names.
const (
	// FCFS is the no-arbiter baseline: every run sees the whole site and
	// launches are granted first-come until the physical cap is exhausted.
	// Budget feedback is disabled.
	FCFS = "fcfs"
	// FairShare splits the (budget-throttled) cap evenly across active
	// runs, earliest arrivals taking the remainder.
	FairShare = "fair"
	// Urgency apportions the (budget-throttled) cap by deadline pressure:
	// remaining work over time to deadline.
	Urgency = "urgency"
)

// Policies lists the arbiter policies.
func Policies() []string { return []string{FCFS, FairShare, Urgency} }

// ArbiterConfig parameterizes the cross-run arbiter.
type ArbiterConfig struct {
	// Policy is fcfs, fair, or urgency.
	Policy string
	// Cap is the shared physical site cap in instances (> 0).
	Cap int
	// BudgetUnits is the shared budget in charging units; 0 disables
	// budget feedback. FCFS ignores it (it is the no-arbiter baseline).
	BudgetUnits int
	// Interval is the MAPE period, the floor on time-to-deadline in the
	// urgency weight (a run past its deadline is maximally urgent, not
	// infinitely so).
	Interval simtime.Duration
	// LookaheadUnits is the budget-feedback horizon: the arbiter keeps
	// enough budget headroom to run the granted pool for this many more
	// charging units (default 2). Larger values throttle earlier.
	LookaheadUnits int
}

func (c ArbiterConfig) withDefaults() (ArbiterConfig, error) {
	switch c.Policy {
	case "":
		c.Policy = FairShare
	case FCFS, FairShare, Urgency:
	default:
		return c, fmt.Errorf("tenancy: unknown arbiter policy %q", c.Policy)
	}
	if c.Cap <= 0 {
		return c, fmt.Errorf("tenancy: arbiter needs a positive cap")
	}
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.LookaheadUnits <= 0 {
		c.LookaheadUnits = 2
	}
	return c, nil
}

// RunStatus is one active run's state as reported at its MAPE parking point.
type RunStatus struct {
	// ID is the run's stream index.
	ID int
	// Tenant is the submitting stream.
	Tenant string
	// Held counts instances currently held (pending + active, draining
	// included — they still charge).
	Held int
	// Remaining counts tasks not yet completed.
	Remaining int
	// Slots is the site's slots per instance.
	Slots int
	// ArrivedAt and Deadline are on the global clock.
	ArrivedAt simtime.Time
	Deadline  simtime.Time
	// EstWorkS estimates the remaining slot-seconds of work.
	EstWorkS float64
}

// need is the largest pool the run can actually use.
func (s RunStatus) need() int {
	slots := s.Slots
	if slots < 1 {
		slots = 1
	}
	n := (s.Remaining + slots - 1) / slots
	if n < 1 {
		n = 1
	}
	return n
}

// Grant is the arbiter's allowance for one run's next interval.
type Grant struct {
	// Target is the granted pool ceiling; a run holding more sheds the
	// surplus with boundary-timed releases (steer.Throttle).
	Target int
	// MaxLaunch bounds new launches this interval — the physical-cap
	// guard: at most Cap - sum(Held) across all runs.
	MaxLaunch int
}

// Apportion computes every parked run's grant. statuses must be the current
// parking-point statuses of all active runs; committed is the ledger's spent
// + accrued + pending charging units; heldTotal is the shared pool's total
// held count (which may exceed sum of statuses when a run is mid-interval).
// The returned map is keyed by RunStatus.ID.
//
// Budget feedback (fair/urgency with BudgetUnits > 0): the total granted
// pool shrinks to the size the remaining budget can sustain for
// LookaheadUnits more charging units — throttling every run's effective cap
// as aggregate spend projects over budget, and releasing the pressure as
// runs finish and stop accruing. One instance is always granted to the most
// urgent run so the system can never stall below the budget line.
func Apportion(cfg ArbiterConfig, statuses []RunStatus, committed, heldTotal int, now simtime.Time) map[int]Grant {
	cfg, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	grants := make(map[int]Grant, len(statuses))
	if len(statuses) == 0 {
		return grants
	}
	sorted := append([]RunStatus(nil), statuses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	launchRoom := cfg.Cap - heldTotal
	if launchRoom < 0 {
		launchRoom = 0
	}

	if cfg.Policy == FCFS {
		for _, s := range sorted {
			grants[s.ID] = Grant{Target: cfg.Cap, MaxLaunch: launchRoom}
		}
		return grants
	}

	capTotal := cfg.Cap
	if cfg.BudgetUnits > 0 {
		headroom := cfg.BudgetUnits - committed
		allowed := 0
		if headroom > 0 {
			allowed = headroom / cfg.LookaheadUnits
		}
		if allowed < 1 {
			// Austerity floor: one instance for the most urgent run keeps
			// every admitted workflow finishing.
			allowed = 1
		}
		if capTotal > allowed {
			capTotal = allowed
		}
	}

	targets := make(map[int]int, len(sorted))
	switch cfg.Policy {
	case FairShare:
		apportionFair(sorted, capTotal, targets)
	case Urgency:
		apportionUrgency(sorted, capTotal, now, cfg.Interval, targets)
	}
	for _, s := range sorted {
		target := targets[s.ID]
		maxLaunch := target - s.Held
		if maxLaunch > launchRoom {
			maxLaunch = launchRoom
		}
		if maxLaunch < 0 {
			maxLaunch = 0
		}
		grants[s.ID] = Grant{Target: target, MaxLaunch: maxLaunch}
	}
	return grants
}

// apportionFair grants equal shares of capTotal, remainder by arrival order,
// each run capped at its need with the leftover waterfalled onward.
func apportionFair(sorted []RunStatus, capTotal int, targets map[int]int) {
	n := len(sorted)
	order := append([]RunStatus(nil), sorted...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].ArrivedAt != order[j].ArrivedAt {
			return order[i].ArrivedAt < order[j].ArrivedAt
		}
		return order[i].ID < order[j].ID
	})
	share := capTotal / n
	rem := capTotal % n
	spare := 0
	for i, s := range order {
		t := share
		if i < rem {
			t++
		}
		if need := s.need(); t > need {
			spare += t - need
			t = need
		}
		targets[s.ID] = t
	}
	// Waterfall the spare capacity to runs still below their need, in
	// arrival order.
	for spare > 0 {
		gave := false
		for _, s := range order {
			if spare == 0 {
				break
			}
			if targets[s.ID] < s.need() {
				targets[s.ID]++
				spare--
				gave = true
			}
		}
		if !gave {
			break
		}
	}
}

// apportionUrgency grants by deadline pressure, greedily: runs are ranked
// by weight = remaining work over time to deadline (floored at one
// interval), and each takes its full need before the next gets anything —
// an EDF-style concentration that lets urgent runs finish fast instead of
// time-slicing the site into uniform crawl. Starvation is self-limiting:
// a parked run's weight grows as its deadline approaches, so every run
// eventually ranks first.
func apportionUrgency(sorted []RunStatus, capTotal int, now simtime.Time, interval simtime.Duration, targets map[int]int) {
	type entry struct {
		s      RunStatus
		weight float64
	}
	entries := make([]entry, len(sorted))
	for i, s := range sorted {
		left := float64(s.Deadline - now)
		if left < float64(interval) {
			left = float64(interval)
		}
		w := s.EstWorkS / left
		if w <= 0 {
			w = 1e-9
		}
		entries[i] = entry{s: s, weight: w}
	}
	// Most urgent first; ties to the earlier deadline, then the lower ID.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].weight != entries[j].weight {
			return entries[i].weight > entries[j].weight
		}
		if entries[i].s.Deadline != entries[j].s.Deadline {
			return entries[i].s.Deadline < entries[j].s.Deadline
		}
		return entries[i].s.ID < entries[j].s.ID
	})
	granted := 0
	for _, e := range entries {
		t := e.s.need()
		if granted+t > capTotal {
			t = capTotal - granted
		}
		targets[e.s.ID] = t
		granted += t
	}
}
