// Package tenancy is the workloads-of-workflows layer: a stream of
// heterogeneous workflow arrivals from multiple tenants contending for one
// shared site-capped instance pool under a shared budget.
//
// The package has three parts:
//
//   - Arrival streams (arrivals.go): seeded Poisson, burst, and diurnal
//     arrival processes over the internal/workloads catalog, with
//     per-arrival size/deadline/budget draws. Streams are deterministic in
//     (seed, process, tenant) — every tenant folds its coordinates through
//     a splitmix64 stream, the same scheme as internal/experiments — so any
//     worker can regenerate any tenant's substream independently.
//   - The cross-run arbiter (arbiter.go): a scheduler *above* the
//     per-workflow controllers that apportions the shared cap and budget
//     across concurrent runs (fair-share, deadline-urgency, and
//     budget-feedback policies). Each run's WIRE controller still plans its
//     own pool; the arbiter only grants it a ceiling and a launch allowance,
//     enforced with steer.Throttle.
//   - The multi-run harness (multisim.go): interleaves independent sim runs
//     at MAPE-interval granularity against one shared capacity/spend ledger
//     (account.go), admitting or deferring arrivals as the arbiter allows.
//
// Trace import/export (traceio.go) round-trips a stream through a CSV so an
// external cluster trace can replay through either the simulator or the
// live wire-serve plane.
package tenancy

import (
	"math"
	"sort"

	"repro/internal/simtime"
	"repro/internal/workloads"
)

// Arrival is one workflow submission in a multi-tenant stream.
type Arrival struct {
	// Index is the arrival's position in the merged stream (stable across
	// regeneration; used to derive the per-run simulation seed).
	Index int
	// Tenant identifies the submitting stream, e.g. "t0".
	Tenant string
	// Time is the submission instant on the global stream clock.
	Time simtime.Time
	// WorkflowKey names the internal/workloads catalog entry.
	WorkflowKey string
	// WorkflowSeed instantiates the workflow (task-time draws).
	WorkflowSeed int64
	// DeadlineS is the deadline relative to Time: the run misses when it
	// completes after Time+DeadlineS on the global clock (queueing delay
	// counts against the deadline).
	DeadlineS float64
	// BudgetUnits is the submitter's willingness to pay, in charging
	// units. Per-tenant and stream-wide budgets are sums of these.
	BudgetUnits int
}

// Deadline returns the arrival's absolute deadline on the global clock.
func (a Arrival) Deadline() simtime.Time { return a.Time + simtime.Time(a.DeadlineS) }

// Stream is a merged multi-tenant arrival sequence, sorted by time.
type Stream struct {
	// Seed and Process record how the stream was generated ("trace" for
	// imported streams).
	Seed    int64
	Process string
	// Arrivals is sorted by (Time, Tenant, Index).
	Arrivals []Arrival
}

// Tenants returns the sorted distinct tenant names in the stream.
func (s *Stream) Tenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range s.Arrivals {
		if !seen[a.Tenant] {
			seen[a.Tenant] = true
			out = append(out, a.Tenant)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBudget sums the per-arrival budgets — the natural stream-wide budget
// when the arbiter is not given an explicit one.
func (s *Stream) TotalBudget() int {
	total := 0
	for _, a := range s.Arrivals {
		total += a.BudgetUnits
	}
	return total
}

// TenantBudget sums the budgets of one tenant's arrivals.
func (s *Stream) TenantBudget(tenant string) int {
	total := 0
	for _, a := range s.Arrivals {
		if a.Tenant == tenant {
			total += a.BudgetUnits
		}
	}
	return total
}

// sortArrivals establishes the canonical stream order and reassigns indices.
func sortArrivals(arrivals []Arrival) {
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].Time != arrivals[j].Time {
			return arrivals[i].Time < arrivals[j].Time
		}
		if arrivals[i].Tenant != arrivals[j].Tenant {
			return arrivals[i].Tenant < arrivals[j].Tenant
		}
		return arrivals[i].Index < arrivals[j].Index
	})
	for i := range arrivals {
		arrivals[i].Index = i
	}
}

// Seed derivation: the same splitmix64 chaining as internal/experiments —
// every (seed, process, tenant) coordinate folds through one mix round, so
// tenant substreams never collide and are independent of worker scheduling.

// splitmix64 is the finalizer of the SplitMix64 generator: an invertible
// mix whose outputs pass BigCrush, so nearby inputs land far apart.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// strPart hashes a label (FNV-1a 64) into a mixable word.
func strPart(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// deriveSeed chains the base seed, a stream label, and coordinates through
// one splitmix round per part, returning a non-negative seed for math/rand.
func deriveSeed(base int64, stream string, parts ...uint64) int64 {
	h := splitmix64(uint64(base))
	h = splitmix64(h ^ strPart(stream))
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return int64(h &^ (1 << 63))
}

// NominalSpanS estimates a run's makespan on a fixed pool of instances×slots
// slots from the catalog spec alone (stage means, no skew): each stage takes
// ceil(width/slots) waves of its mean exec plus one transfer. Deadline draws
// scale this estimate, so deadlines are tight for large workflows on small
// reference pools and loose otherwise.
func NominalSpanS(spec workloads.Spec, instances, slots int) float64 {
	if instances < 1 {
		instances = 1
	}
	if slots < 1 {
		slots = 1
	}
	pool := float64(instances * slots)
	span := 0.0
	for _, st := range spec.Stages {
		waves := math.Ceil(float64(st.Count) / pool)
		span += waves*st.MeanExec + st.TransferMean
	}
	return span
}

// estCostUnits estimates the charging units a run consumes on the reference
// pool: the spec's nominal work divided by the slot-seconds one
// instance-unit provides, never less than one unit per instance actually
// needed.
func estCostUnits(spec workloads.Spec, slots int, unit simtime.Duration) int {
	if slots < 1 {
		slots = 1
	}
	if unit <= 0 {
		unit = 1
	}
	units := math.Ceil(spec.NominalWork() / (float64(slots) * float64(unit)))
	if units < 1 {
		units = 1
	}
	return int(units)
}
