package tenancy

import (
	"bytes"
	"testing"

	"repro/internal/cloud"
)

// The sweep's rendered table must be byte-identical at any worker count:
// cells land in fixed slots and every cell is deterministic in the seed.
// CI runs this under -race, so hidden cross-cell sharing would also trip
// the detector.
func TestSweepWorkerCountInvariant(t *testing.T) {
	render := func(workers int) []byte {
		t.Helper()
		_, tbl, err := Sweep(SweepConfig{
			Seed:         42,
			Process:      Poisson,
			RatesPerHour: []float64{12, 24},
			N:            24,
			Tenants:      3,
			Keys:         []string{"tpch6-s", "tpch1-s", "pagerank-s"},
			Cloud:        acceptanceCloud(),
			Cap:          6,
			BudgetUnits:  70,
			Workers:      workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		return buf.Bytes()
	}
	one := render(1)
	eight := render(8)
	if !bytes.Equal(one, eight) {
		t.Errorf("sweep tables differ between 1 and 8 workers:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", one, eight)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, _, err := Sweep(SweepConfig{Seed: 1, Cloud: cloud.Config{SlotsPerInstance: 2, LagTime: 180, ChargingUnit: 900}, Cap: 4}); err == nil {
		t.Error("sweep with no rates accepted")
	}
}

// FCFS cells ignore the configured budget (budget column 0), arbiter cells
// inherit it.
func TestSweepBudgetColumns(t *testing.T) {
	cells, _, err := Sweep(SweepConfig{
		Seed:         42,
		Process:      Poisson,
		RatesPerHour: []float64{24},
		N:            9,
		Tenants:      3,
		Keys:         []string{"tpch6-s"},
		Cloud:        acceptanceCloud(),
		Cap:          6,
		BudgetUnits:  70,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		want := 70
		if c.Policy == FCFS {
			want = 0
		}
		if c.BudgetUnits != want {
			t.Errorf("policy %s budget %d, want %d", c.Policy, c.BudgetUnits, want)
		}
	}
}
