package tenancy

import (
	"testing"
)

func baseArbiterConfig(policy string, budget int) ArbiterConfig {
	return ArbiterConfig{Policy: policy, Cap: 6, BudgetUnits: budget, Interval: 180}
}

func TestArbiterConfigValidation(t *testing.T) {
	if _, err := (ArbiterConfig{Policy: "lifo", Cap: 6}).withDefaults(); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := (ArbiterConfig{Policy: FCFS}).withDefaults(); err == nil {
		t.Error("zero cap accepted")
	}
	c, err := (ArbiterConfig{Cap: 6}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.Policy != FairShare || c.LookaheadUnits != 2 {
		t.Errorf("defaults: got policy %q lookahead %d", c.Policy, c.LookaheadUnits)
	}
}

// FCFS is the no-arbiter baseline: everyone sees the full site, launches are
// first-come bounded only by the physical room left.
func TestApportionFCFS(t *testing.T) {
	statuses := []RunStatus{
		{ID: 0, Held: 3, Remaining: 40, Slots: 2},
		{ID: 1, Held: 1, Remaining: 40, Slots: 2},
	}
	grants := Apportion(baseArbiterConfig(FCFS, 50), statuses, 10, 4, 0)
	for id, g := range grants {
		if g.Target != 6 {
			t.Errorf("run %d target %d, want full cap 6", id, g.Target)
		}
		if g.MaxLaunch != 2 {
			t.Errorf("run %d maxLaunch %d, want room 2", id, g.MaxLaunch)
		}
	}
}

// Fair share splits the cap evenly, caps each run at its need, and waterfalls
// the spare to runs that can still use it.
func TestApportionFairShare(t *testing.T) {
	statuses := []RunStatus{
		{ID: 0, Held: 1, Remaining: 2, Slots: 2, ArrivedAt: 0},  // need 1
		{ID: 1, Held: 1, Remaining: 40, Slots: 2, ArrivedAt: 1}, // need 20
		{ID: 2, Held: 1, Remaining: 40, Slots: 2, ArrivedAt: 2}, // need 20
	}
	grants := Apportion(baseArbiterConfig(FairShare, 0), statuses, 0, 3, 0)
	if got := grants[0].Target; got != 1 {
		t.Errorf("run 0 target %d, want need-capped 1", got)
	}
	// 6 = 1 + 3 + 2: run 1 (earlier arrival) takes the spare first.
	if got := grants[1].Target; got != 3 {
		t.Errorf("run 1 target %d, want 3", got)
	}
	if got := grants[2].Target; got != 2 {
		t.Errorf("run 2 target %d, want 2", got)
	}
	total := 0
	for _, g := range grants {
		total += g.Target
	}
	if total > 6 {
		t.Errorf("granted %d instances, cap is 6", total)
	}
}

// Urgency concentrates: the run closest to its deadline takes its full need
// before less urgent runs get anything.
func TestApportionUrgencyEDF(t *testing.T) {
	statuses := []RunStatus{
		{ID: 0, Remaining: 8, Slots: 2, Deadline: 10000, EstWorkS: 800},
		{ID: 1, Remaining: 8, Slots: 2, Deadline: 600, EstWorkS: 800}, // urgent
	}
	grants := Apportion(baseArbiterConfig(Urgency, 0), statuses, 0, 0, 0)
	if got := grants[1].Target; got != 4 {
		t.Errorf("urgent run target %d, want full need 4", got)
	}
	if got := grants[0].Target; got != 2 {
		t.Errorf("relaxed run target %d, want leftover 2", got)
	}
}

// Budget feedback shrinks the total grant to what the remaining budget can
// sustain for LookaheadUnits more charging units, with an austerity floor of
// one instance.
func TestApportionBudgetFeedback(t *testing.T) {
	statuses := []RunStatus{
		{ID: 0, Held: 3, Remaining: 40, Slots: 2, Deadline: 500, EstWorkS: 4000},
		{ID: 1, Held: 3, Remaining: 40, Slots: 2, Deadline: 900, EstWorkS: 4000},
	}
	// Plenty of headroom: the full cap is granted.
	loose := Apportion(baseArbiterConfig(Urgency, 100), statuses, 10, 6, 0)
	if total := loose[0].Target + loose[1].Target; total != 6 {
		t.Errorf("loose budget granted %d, want full cap 6", total)
	}
	// 44 committed of 50: headroom 6, lookahead 2 -> capTotal 3.
	tight := Apportion(baseArbiterConfig(Urgency, 50), statuses, 44, 6, 0)
	if total := tight[0].Target + tight[1].Target; total != 3 {
		t.Errorf("tight budget granted %d, want throttled 3", total)
	}
	// Over budget entirely: the austerity floor still grants one instance.
	broke := Apportion(baseArbiterConfig(Urgency, 50), statuses, 60, 6, 0)
	if total := broke[0].Target + broke[1].Target; total != 1 {
		t.Errorf("exhausted budget granted %d, want austerity floor 1", total)
	}
	if broke[0].Target != 1 {
		t.Errorf("austerity instance went to run %d, want the most urgent (0)", 1)
	}
	// FCFS ignores the budget even when configured.
	fcfs := Apportion(baseArbiterConfig(FCFS, 50), statuses, 60, 6, 0)
	if fcfs[0].Target != 6 || fcfs[1].Target != 6 {
		t.Error("fcfs applied budget feedback; it is the no-arbiter baseline")
	}
}

// MaxLaunch never exceeds the physical room left on the site.
func TestApportionLaunchRoom(t *testing.T) {
	statuses := []RunStatus{{ID: 0, Held: 0, Remaining: 40, Slots: 2, Deadline: 100, EstWorkS: 4000}}
	grants := Apportion(baseArbiterConfig(Urgency, 0), statuses, 0, 5, 0)
	if g := grants[0]; g.MaxLaunch != 1 {
		t.Errorf("maxLaunch %d, want 1 (cap 6, 5 held site-wide)", g.MaxLaunch)
	}
	full := Apportion(baseArbiterConfig(Urgency, 0), statuses, 0, 6, 0)
	if g := full[0]; g.MaxLaunch != 0 {
		t.Errorf("maxLaunch %d on a full site, want 0", g.MaxLaunch)
	}
}

func TestRunStatusNeed(t *testing.T) {
	if got := (RunStatus{Remaining: 5, Slots: 2}).need(); got != 3 {
		t.Errorf("need(5 tasks, 2 slots) = %d, want 3", got)
	}
	if got := (RunStatus{Remaining: 0, Slots: 2}).need(); got != 1 {
		t.Errorf("need(0 tasks) = %d, want floor 1", got)
	}
}
