package tenancy

import (
	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Accountant replicates one run's billing onto the shared global ledger by
// watching its sim events. The simulator bills from activation (pending and
// DOA-written-off instances are never charged); the accountant mirrors that
// exactly, so after the run finishes its settled total equals the run
// Result's UnitsCharged — an invariant the harness checks every run.
type Accountant struct {
	unit   simtime.Duration
	offset simtime.Time // run start on the global clock

	// pending holds requested instances that have not activated; origins
	// maps active instances to their global charge origin.
	pending map[cloud.InstanceID]struct{}
	origins map[cloud.InstanceID]simtime.Time
	settled int
}

// NewAccountant tracks a run started at the given global time, billed in
// the given charging unit.
func NewAccountant(unit simtime.Duration, offset simtime.Time) *Accountant {
	return &Accountant{
		unit:    unit,
		offset:  offset,
		pending: make(map[cloud.InstanceID]struct{}),
		origins: make(map[cloud.InstanceID]simtime.Time),
	}
}

// Observe consumes one sim event (run-local time). It is called on the run's
// goroutine; the harness's grant protocol serializes access.
func (a *Accountant) Observe(ev sim.Event) {
	switch ev.Kind {
	case sim.EvInstanceLaunch:
		a.pending[ev.Instance] = struct{}{}
	case sim.EvInstanceActive:
		delete(a.pending, ev.Instance)
		a.origins[ev.Instance] = a.offset + ev.Time
	case sim.EvInstanceDOA:
		// Written off unbilled; no terminate event follows.
		delete(a.pending, ev.Instance)
	case sim.EvInstanceTerminated, sim.EvInstanceFailed:
		if _, ok := a.pending[ev.Instance]; ok {
			// Canceled before activation: unbilled.
			delete(a.pending, ev.Instance)
			return
		}
		origin, ok := a.origins[ev.Instance]
		if !ok {
			return
		}
		delete(a.origins, ev.Instance)
		a.settled += simtime.UnitsCharged(origin, a.offset+ev.Time, a.unit)
	}
}

// Held counts instances currently held: pending orders plus active
// instances (draining ones stay held until their terminate event).
func (a *Accountant) Held() int { return len(a.pending) + len(a.origins) }

// Settled returns the units of terminated instances.
func (a *Accountant) Settled() int { return a.settled }

// Committed projects the run's spend at the given global instant: settled
// units, plus the accrued units of every active instance, plus one unit per
// pending order (a launch commits at least its first unit once it
// activates).
func (a *Accountant) Committed(now simtime.Time) int {
	total := a.settled + len(a.pending)
	for _, origin := range a.origins {
		u := simtime.UnitsCharged(origin, now, a.unit)
		if u < 1 {
			u = 1
		}
		total += u
	}
	return total
}
