package baseline

import (
	"repro/internal/dag"
	"repro/internal/lookahead"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/steer"
)

// StageProfile records the typical task execution time per stage, as
// measured from a *previous* run of the same workflow — the input the
// history-based systems the paper contrasts (Jockey, Apollo; §II-B) feed
// their planners.
type StageProfile struct {
	// ExecMedian maps stage → median task execution time (seconds).
	ExecMedian map[dag.StageID]float64
	// TransferMedian is the recorded median data-transfer time.
	TransferMedian float64
}

// ProfileFromResult builds a profile from a completed run.
func ProfileFromResult(res *sim.Result) StageProfile {
	byStage := map[dag.StageID][]float64{}
	var transfers []float64
	for _, tr := range res.TaskRuns {
		byStage[tr.Stage] = append(byStage[tr.Stage], tr.ObservedExec)
		transfers = append(transfers, tr.ObservedTransfer)
	}
	p := StageProfile{ExecMedian: make(map[dag.StageID]float64, len(byStage))}
	for sid, execs := range byStage {
		p.ExecMedian[sid], _ = stats.Median(execs)
	}
	p.TransferMedian, _ = stats.Median(transfers)
	return p
}

// HistoryBased is the across-run comparator of §II-B: it steers the pool
// through the very same DAG lookahead and charging-aware policy as WIRE,
// but estimates every task from the recorded profile of a previous run
// instead of from online observations. When the new run's conditions differ
// — a different dataset, slower instances, co-located interference — the
// frozen estimates are systematically wrong, which is exactly the paper's
// Observation 2 argument for online prediction.
type HistoryBased struct {
	profile StageProfile
	proj    lookahead.Projector
}

var _ sim.Controller = (*HistoryBased)(nil)
var _ lookahead.Estimator = (*HistoryBased)(nil)

// NewHistoryBased returns a controller planning from the given profile.
func NewHistoryBased(profile StageProfile) *HistoryBased {
	return &HistoryBased{profile: profile}
}

// Name implements sim.Controller.
func (h *HistoryBased) Name() string { return "history-based" }

// EstimateOccupancy implements lookahead.Estimator with the frozen profile.
func (h *HistoryBased) EstimateOccupancy(snap *monitor.Snapshot, id dag.TaskID) (float64, predict.Policy) {
	rec := snap.Task(id)
	if rec.State == monitor.Completed {
		return rec.ExecTime + rec.TransferTime, predict.PolicyNone
	}
	exec := h.profile.ExecMedian[rec.Stage]
	return exec + h.profile.TransferMedian, predict.PolicyCompletedMedian
}

// EstimateExec exposes the frozen per-task execution estimate (for the
// prediction-error accounting in the across-run experiment).
func (h *HistoryBased) EstimateExec(stage dag.StageID) float64 {
	return h.profile.ExecMedian[stage]
}

// Plan implements sim.Controller: identical Plan/Execute machinery to WIRE,
// with the frozen estimator plugged into the lookahead.
func (h *HistoryBased) Plan(snap *monitor.Snapshot) sim.Decision {
	load := h.proj.Project(snap, h)
	cands := make([]steer.Candidate, 0, len(snap.Instances))
	for _, in := range snap.NonDrainingInstances() {
		cands = append(cands, steer.Candidate{
			ID:               in.ID,
			TimeToNextCharge: in.TimeToNextCharge,
			RestartCost:      load.RestartCost[in.ID],
		})
	}
	cfg := steer.FromSnapshot(snap)
	emptyLoad := len(load.Tasks) == 0 && !snap.Done()
	return steer.Plan(load.Remainings(), emptyLoad, cands, cfg)
}
