package baseline

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/sim"
)

func wideWF(n int) *dag.Workflow {
	b := dag.NewBuilder("wide")
	s0 := b.AddStage("split")
	s1 := b.AddStage("wide")
	s2 := b.AddStage("merge")
	root := b.AddTask(s0, "split", 20, 0, 10)
	var mids []dag.TaskID
	for i := 0; i < n; i++ {
		mids = append(mids, b.AddTask(s1, "work", 100, 0, 50, root))
	}
	b.AddTask(s2, "merge", 20, 0, 10, mids...)
	return b.MustBuild()
}

func cfg() sim.Config {
	return sim.Config{
		Cloud: cloud.Config{SlotsPerInstance: 1, LagTime: 10, ChargingUnit: 60, MaxInstances: 12},
	}
}

func TestStaticNeverResizes(t *testing.T) {
	wf := wideWF(6)
	c := cfg()
	c.InitialInstances = 12
	res, err := sim.Run(wf, Static{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Launches != 12 || res.PeakPool != 12 {
		t.Fatalf("launches=%d peak=%d, want the static 12", res.Launches, res.PeakPool)
	}
	if res.Restarts != 0 {
		t.Fatalf("static run restarted tasks: %d", res.Restarts)
	}
	// Optimal makespan: 10 lag + 20 + 100 + 20.
	if res.Makespan > 160 {
		t.Fatalf("full-site makespan = %v, want near-optimal", res.Makespan)
	}
}

func TestPureReactiveTracksLoad(t *testing.T) {
	wf := wideWF(8)
	res, err := sim.Run(wf, PureReactive{}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != wf.NumTasks() {
		t.Fatal("incomplete run")
	}
	if res.PeakPool < 4 {
		t.Fatalf("peak pool = %d; pure-reactive failed to scale up", res.PeakPool)
	}
	// Pure-reactive never kills running tasks (releases idle only).
	if res.Restarts != 0 {
		t.Fatalf("pure-reactive restarted %d tasks", res.Restarts)
	}
	// Pool must come back down after the wide stage.
	last := res.Pool[len(res.Pool)-1]
	if last.Held != 0 {
		t.Fatalf("pool left at %d", last.Held)
	}
}

func TestPureReactiveReleasesIdleCapacity(t *testing.T) {
	// Wide stage then a single merge: after the wide stage completes,
	// pure-reactive should shed instances well before the run ends.
	wf := wideWF(8)
	res, err := sim.Run(wf, PureReactive{}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	peak, sawShrinkBeforeEnd := 0, false
	for _, s := range res.Pool[:len(res.Pool)-1] {
		if s.Held > peak {
			peak = s.Held
		}
		if peak > 1 && s.Held < peak {
			sawShrinkBeforeEnd = true
		}
	}
	if !sawShrinkBeforeEnd {
		t.Fatal("pure-reactive never shrank before completion")
	}
}

func TestReactiveConservingCompletes(t *testing.T) {
	wf := wideWF(8)
	res, err := sim.Run(wf, &ReactiveConserving{}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != wf.NumTasks() {
		t.Fatal("incomplete run")
	}
	if res.PeakPool < 2 {
		t.Fatalf("peak pool = %d; reactive-conserving failed to scale", res.PeakPool)
	}
}

func TestReactiveConservingCheaperThanPureReactiveOnLongUnits(t *testing.T) {
	// With a long charging unit, pure-reactive churns instances and pays
	// for units it abandons; the conserving variant holds instances to
	// their boundaries and should not cost more.
	wf := wideWF(10)
	c := cfg()
	c.Cloud.ChargingUnit = 600
	pr, err := sim.Run(wf, PureReactive{}, c)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := sim.Run(wf, &ReactiveConserving{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if rc.UnitsCharged > pr.UnitsCharged {
		t.Fatalf("reactive-conserving cost %d > pure-reactive %d", rc.UnitsCharged, pr.UnitsCharged)
	}
}

func TestControllerNames(t *testing.T) {
	if (Static{}).Name() != "full-site" {
		t.Fatal("static name")
	}
	if (PureReactive{}).Name() != "pure-reactive" {
		t.Fatal("pure-reactive name")
	}
	if (&ReactiveConserving{}).Name() != "reactive-conserving" {
		t.Fatal("reactive-conserving name")
	}
}

func TestProfileFromResult(t *testing.T) {
	res := &sim.Result{TaskRuns: []sim.TaskRun{
		{Stage: 0, ObservedExec: 10, ObservedTransfer: 1},
		{Stage: 0, ObservedExec: 20, ObservedTransfer: 3},
		{Stage: 1, ObservedExec: 50, ObservedTransfer: 2},
	}}
	p := ProfileFromResult(res)
	if p.ExecMedian[0] != 15 || p.ExecMedian[1] != 50 {
		t.Fatalf("profile = %+v", p)
	}
	if p.TransferMedian != 2 {
		t.Fatalf("transfer median = %v", p.TransferMedian)
	}
}

func TestHistoryBasedCompletesAndUsesFrozenEstimates(t *testing.T) {
	wf := wideWF(8)
	// Profile from a full-site run.
	c := cfg()
	c.InitialInstances = c.Cloud.MaxInstances
	prof, err := sim.Run(wf, Static{}, c)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistoryBased(ProfileFromResult(prof))
	if h.Name() != "history-based" {
		t.Fatal("name wrong")
	}
	res, err := sim.Run(wideWF(8), h, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != 10 {
		t.Fatal("incomplete run")
	}
	// Frozen estimate equals the profiled median, regardless of run state.
	if got := h.EstimateExec(1); got != 100 {
		t.Fatalf("frozen estimate = %v, want the profiled 100", got)
	}
}

func TestHistoryBasedUnderDriftMisestimates(t *testing.T) {
	wf := wideWF(8)
	c := cfg()
	c.InitialInstances = c.Cloud.MaxInstances
	prof, err := sim.Run(wf, Static{}, c)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistoryBased(ProfileFromResult(prof))
	// The new run is 2x slower; the frozen estimate does not move.
	drifted := wideWF(8)
	for _, task := range drifted.Tasks {
		task.ExecTime *= 2
	}
	res, err := sim.Run(drifted, h, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.TaskRuns {
		if tr.Stage != 1 {
			continue
		}
		if est := h.EstimateExec(tr.Stage); est >= tr.ObservedExec {
			t.Fatalf("frozen estimate %v should underestimate drifted time %v", est, tr.ObservedExec)
		}
	}
}
