// Package baseline implements the three comparator resource-management
// settings of §IV-C3:
//
//   - Static (full-site): a fixed pool at the site maximum, never resized.
//   - PureReactive: pool sized to the instantaneous active load, releases
//     applied immediately, billing-oblivious.
//   - ReactiveConserving: the same instantaneous load signal, but steered
//     through WIRE's charging-aware resource policy (Algorithms 2/3) —
//     isolating the value of WIRE's DAG-driven online prediction.
package baseline

import (
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/steer"
)

// Static never changes the pool; pair it with sim.Config.InitialInstances
// set to the site maximum to reproduce the paper's full-site runs.
type Static struct{}

var _ sim.Controller = Static{}

// Name implements sim.Controller.
func (Static) Name() string { return "full-site" }

// Plan implements sim.Controller.
func (Static) Plan(*monitor.Snapshot) sim.Decision { return sim.Decision{} }

// PureReactive resizes the pool every interval to ceil(active/l), where
// active counts ready plus running tasks. It launches and releases eagerly
// and ignores charging units entirely; shrinking releases idle instances
// (never ones with running tasks) immediately.
type PureReactive struct{}

var _ sim.Controller = PureReactive{}

// Name implements sim.Controller.
func (PureReactive) Name() string { return "pure-reactive" }

// Plan implements sim.Controller.
func (PureReactive) Plan(snap *monitor.Snapshot) sim.Decision {
	l := snap.SlotsPerInstance
	target := (snap.ActiveLoad() + l - 1) / l
	if target < 1 {
		target = 1
	}
	if snap.MaxInstances > 0 && target > snap.MaxInstances {
		target = snap.MaxInstances
	}
	held := snap.NonDrainingInstances()
	m := len(held)
	switch {
	case target > m:
		return sim.Decision{Launch: target - m}
	case target < m:
		// Cancel pending instances first (free), then idle active ones.
		var rel []sim.ReleaseOrder
		need := m - target
		for _, in := range held {
			if need == 0 {
				break
			}
			if in.ActiveAt > snap.Now && len(in.Running) == 0 {
				rel = append(rel, sim.ReleaseOrder{Instance: in.ID})
				need--
			}
		}
		for _, in := range held {
			if need == 0 {
				break
			}
			if in.ActiveAt <= snap.Now && len(in.Running) == 0 {
				rel = append(rel, sim.ReleaseOrder{Instance: in.ID})
				need--
			}
		}
		return sim.Decision{Releases: rel}
	default:
		return sim.Decision{}
	}
}

// ReactiveConserving predicts the load from the current idle/running tasks
// only — no DAG lookahead, no per-stage models — and feeds it to the
// resource-steering policy. Each active task's occupancy is estimated at
// the global median of completed occupancies (falling back to the MAPE
// interval before any completion).
type ReactiveConserving struct {
	completedOcc []float64
}

var _ sim.Controller = (*ReactiveConserving)(nil)

// Name implements sim.Controller.
func (*ReactiveConserving) Name() string { return "reactive-conserving" }

// Plan implements sim.Controller.
func (rc *ReactiveConserving) Plan(snap *monitor.Snapshot) sim.Decision {
	rc.completedOcc = rc.completedOcc[:0]
	for i := range snap.Tasks {
		rec := &snap.Tasks[i]
		if rec.State == monitor.Completed {
			rc.completedOcc = append(rc.completedOcc, rec.Occupancy())
		}
	}
	est, ok := stats.Median(rc.completedOcc)
	if !ok {
		est = snap.Interval
	}

	// Upcoming load = the current ready/running tasks at their estimated
	// remaining occupancy; nothing beyond the observable present.
	var remaining []float64
	for i := range snap.Tasks {
		rec := &snap.Tasks[i]
		switch rec.State {
		case monitor.Ready:
			remaining = append(remaining, est)
		case monitor.Running:
			rem := est - rec.Elapsed
			if rem < 0 {
				rem = 0
			}
			remaining = append(remaining, rem)
		}
	}

	cands := make([]steer.Candidate, 0, len(snap.Instances))
	for _, in := range snap.NonDrainingInstances() {
		c := steer.Candidate{ID: in.ID, TimeToNextCharge: in.TimeToNextCharge}
		for _, tid := range in.Running {
			sunk := snap.Task(tid).Elapsed + snap.Interval
			if sunk > c.RestartCost {
				c.RestartCost = sunk
			}
		}
		cands = append(cands, c)
	}

	cfg := steer.FromSnapshot(snap)
	emptyLoad := len(remaining) == 0 && !snap.Done()
	return steer.Plan(remaining, emptyLoad, cands, cfg)
}
