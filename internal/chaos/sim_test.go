package chaos

import (
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// growController launches one instance per tick until the cap.
type growController struct{}

func (growController) Name() string { return "grow" }
func (growController) Plan(snap *monitor.Snapshot) sim.Decision {
	if len(snap.Instances) < snap.MaxInstances {
		return sim.Decision{Launch: 1}
	}
	return sim.Decision{}
}

func faultyRun(t *testing.T, p Plan, stream int64) *sim.Result {
	t.Helper()
	b := dag.NewBuilder("chaos-fan")
	st := b.AddStage("s")
	for i := 0; i < 40; i++ {
		b.AddTask(st, "t", 120, 5, 1)
	}
	wf := b.MustBuild()
	res, err := sim.Run(wf, growController{}, sim.Config{
		Cloud:  cloud.Config{SlotsPerInstance: 2, LagTime: 30, ChargingUnit: 300, MaxInstances: 8},
		Seed:   11,
		MTBF:   4000,
		Faults: p.CloudFaults(stream),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSimWithCloudFaultsDeterministic is the end-to-end determinism
// certificate at the simulator level: the same chaos seed + plan reproduces
// the whole run — every task run, pool sample, and fault counter — and the
// faults actually bite.
func TestSimWithCloudFaultsDeterministic(t *testing.T) {
	p := testPlan()
	a, b := faultyRun(t, p, 1), faultyRun(t, p, 1)
	a.ControllerWall, b.ControllerWall = 0, 0 // wall time is real, not simulated
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (seed, plan, stream) runs diverged")
	}
	if a.OrdersLost == 0 && a.OrdersDuplicated == 0 && a.DeadOnArrival == 0 {
		t.Errorf("no cloud faults fired: %+v", a)
	}

	// A different stream perturbs the run.
	c := faultyRun(t, p, 2)
	c.ControllerWall = 0
	if reflect.DeepEqual(a, c) {
		t.Error("streams 1 and 2 produced identical faulty runs")
	}

	// The fault-free twin differs and pays no fault counters.
	clean := faultyRun(t, Plan{}, 1)
	if clean.OrdersLost != 0 || clean.OrdersDuplicated != 0 || clean.DeadOnArrival != 0 {
		t.Errorf("fault-free run reports faults: %+v", clean)
	}
}
