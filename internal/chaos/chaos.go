// Package chaos is the seeded, deterministic fault-injection harness.
//
// WIRE's premise is that clouds are unreliable (§II-B): orders take a lag to
// act and do not always act faithfully, instances vary and die, and the
// network between a controller and its clients drops, delays, and garbles
// traffic. This package injects exactly those faults — reproducibly — so
// every layer above it can be tested for fault tolerance:
//
//   - Transport wraps an http.RoundTripper and injects request drops,
//     synthesized 5xx responses, post-delivery connection resets (the
//     request WAS processed; the response is lost), and delays. It is what
//     wire-serve's chaos loadgen puts between the retrying client and the
//     daemon.
//   - CloudFaults implements sim.FaultInjector: lost and duplicated launch
//     orders, dead-on-arrival instances, and straggler activation delays,
//     layered on internal/sim's existing MTBF crash path.
//
// Determinism: a Plan plus a stream id fully determines the fault schedule.
// Every injector derives a private splitmix64-seeded generator from
// (Plan.Seed, stream label, stream id) and consumes a fixed number of draws
// per decision, so the k-th HTTP attempt (or k-th launch order) of a stream
// always meets the same fate, independent of wall-clock timing or goroutine
// interleaving. Schedule and ScheduleCloud expose the schedules directly so
// tests can assert repeat-run equality.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/simtime"
)

// Plan configures every fault class. The zero value injects nothing. All
// probabilities are per decision point: per HTTP attempt for the network
// faults, per controller launch order for the cloud faults.
type Plan struct {
	// Seed drives every fault schedule; the same seed and plan reproduce
	// the same schedule exactly.
	Seed int64 `json:"seed"`

	// Network faults (Transport). At most one fires per attempt, so the
	// three probabilities must sum to ≤ 1.
	//
	// DropRequest fails the attempt before the request is sent
	// (connection refused): the server never sees it.
	DropRequest float64 `json:"drop_request,omitempty"`
	// Err5xx synthesizes a 503 without delivering the request (a dying
	// proxy): the server never sees it.
	Err5xx float64 `json:"err_5xx,omitempty"`
	// DropResponse delivers the request, then discards the response and
	// reports a connection reset: the server HAS processed it. This is
	// the fault that exposes non-idempotent planning.
	DropResponse float64 `json:"drop_response,omitempty"`
	// DelayProb delays an attempt (orthogonal to the fates above) by a
	// uniform draw from (0, MaxDelay].
	DelayProb float64       `json:"delay_prob,omitempty"`
	MaxDelay  time.Duration `json:"max_delay,omitempty"`

	// Cloud faults (CloudFaults). At most one fires per launch order, so
	// the three probabilities must sum to ≤ 1.
	LostOrder      float64 `json:"lost_order,omitempty"`
	DuplicateOrder float64 `json:"duplicate_order,omitempty"`
	DeadOnArrival  float64 `json:"dead_on_arrival,omitempty"`
	// StragglerProb delays one materialized launch's activation by a
	// uniform draw from (0, MaxStragglerDelay] on top of the lag.
	StragglerProb     float64          `json:"straggler_prob,omitempty"`
	MaxStragglerDelay simtime.Duration `json:"max_straggler_delay_s,omitempty"`

	// Live execution plane faults (wire-agent). TaskCrash is the per-attempt
	// probability that an agent crashes a task partway through and reports it
	// failed — the poison-task generator: at TaskCrash=1 gated to one task,
	// every attempt fails and the dispatcher's quarantine budget decides the
	// run's fate. The schedule is keyed by (task, attempt), so attempt k of
	// task t meets the same fate on every agent and every run.
	TaskCrash float64 `json:"task_crash,omitempty"`
	// SlowAgent is the probability that a given agent stream is a straggler
	// worker: all its emulated task durations are stretched by SlowFactor
	// (> 1). This is the fault the dispatcher's speculative re-execution
	// exists to beat.
	SlowAgent  float64 `json:"slow_agent,omitempty"`
	SlowFactor float64 `json:"slow_factor,omitempty"`
}

// Validate reports configuration errors.
func (p Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"DropRequest", p.DropRequest}, {"Err5xx", p.Err5xx}, {"DropResponse", p.DropResponse},
		{"DelayProb", p.DelayProb},
		{"LostOrder", p.LostOrder}, {"DuplicateOrder", p.DuplicateOrder}, {"DeadOnArrival", p.DeadOnArrival},
		{"StragglerProb", p.StragglerProb},
		{"TaskCrash", p.TaskCrash}, {"SlowAgent", p.SlowAgent},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("chaos: %s = %v outside [0, 1]", pr.name, pr.v)
		}
	}
	if s := p.DropRequest + p.Err5xx + p.DropResponse; s > 1 {
		return fmt.Errorf("chaos: network fault probabilities sum to %v > 1", s)
	}
	if s := p.LostOrder + p.DuplicateOrder + p.DeadOnArrival; s > 1 {
		return fmt.Errorf("chaos: cloud fault probabilities sum to %v > 1", s)
	}
	if p.DelayProb > 0 && p.MaxDelay <= 0 {
		return fmt.Errorf("chaos: DelayProb set without a positive MaxDelay")
	}
	if p.StragglerProb > 0 && p.MaxStragglerDelay <= 0 {
		return fmt.Errorf("chaos: StragglerProb set without a positive MaxStragglerDelay")
	}
	if p.SlowAgent > 0 && p.SlowFactor <= 1 {
		return fmt.Errorf("chaos: SlowAgent set without a SlowFactor > 1")
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.DropRequest > 0 || p.Err5xx > 0 || p.DropResponse > 0 || p.DelayProb > 0 ||
		p.LostOrder > 0 || p.DuplicateOrder > 0 || p.DeadOnArrival > 0 || p.StragglerProb > 0 ||
		p.TaskCrash > 0 || p.SlowAgent > 0
}

// Stream labels keep the schedules of one stream id from ever coinciding.
// Fate and straggler draws use separate sub-streams so the k-th launch
// order's fate does not depend on how many straggler draws preceded it.
const (
	streamNetwork   = "chaos/network"
	streamCloud     = "chaos/cloud"
	streamStraggler = "chaos/cloud/straggler"
	streamTask      = "chaos/task"
	streamAgent     = "chaos/agent"
	streamShard     = "chaos/shard-kill"
	streamChurn     = "chaos/churn"
)

// splitmix64 is the SplitMix64 finalizer (Steele et al.): an invertible mix
// whose outputs pass BigCrush, so nearby (seed, stream) inputs land far
// apart. Same construction as internal/experiments' seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func strPart(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// rng derives the private generator of one (plan, stream label, stream id).
func (p Plan) rng(label string, stream int64) *rand.Rand {
	h := splitmix64(uint64(p.Seed))
	h = splitmix64(h ^ strPart(label))
	h = splitmix64(h ^ uint64(stream))
	return rand.New(rand.NewSource(int64(h &^ (1 << 63))))
}

// rng2 derives the generator of one (plan, label, a, b) — two-dimensional
// streams like (task, attempt), chained through the same splitmix64 mix.
func (p Plan) rng2(label string, a, b int64) *rand.Rand {
	h := splitmix64(uint64(p.Seed))
	h = splitmix64(h ^ strPart(label))
	h = splitmix64(h ^ uint64(a))
	h = splitmix64(h ^ uint64(b))
	return rand.New(rand.NewSource(int64(h &^ (1 << 63))))
}

// TaskCrashes reports whether attempt (1-based) of the given task crashes
// under this plan. The fate is a pure function of (Seed, task, attempt):
// every agent that draws the same attempt injects the same crash, so the
// quarantine certificate ("poisoned after exactly N attempts") is exact.
func (p Plan) TaskCrashes(task int64, attempt int) bool {
	if p.TaskCrash <= 0 {
		return false
	}
	return p.rng2(streamTask, task, int64(attempt)).Float64() < p.TaskCrash
}

// ShardKillSchedule is the shard-kill fault stream of the sharded control
// plane's certificate: among n session shards it selects the victim and a
// kill-time jitter in (0, maxJitter]. Both are pure functions of the plan
// seed with a fixed draw order (victim first, then jitter), so the same seed
// fells the same shard at the same offset in every run — the property the
// failover certificate pins its journal-handoff assertions on.
func (p Plan) ShardKillSchedule(n int, maxJitter time.Duration) (victim int, jitter time.Duration) {
	if n <= 0 {
		return 0, 0
	}
	rng := p.rng(streamShard, 0)
	victim = int(rng.Int63n(int64(n)))
	if maxJitter > 0 {
		jitter = time.Duration((1 - rng.Float64()) * float64(maxJitter))
	}
	return victim, jitter
}

// ChurnAction is one membership-churn event kind.
type ChurnAction int

// Churn event kinds: an abrupt kill (no drain), a graceful drain, and a
// (re)join of a previously killed or drained shard.
const (
	ChurnKill ChurnAction = iota
	ChurnDrain
	ChurnJoin
)

// String implements fmt.Stringer.
func (a ChurnAction) String() string {
	switch a {
	case ChurnKill:
		return "kill"
	case ChurnDrain:
		return "drain"
	case ChurnJoin:
		return "join"
	default:
		return fmt.Sprintf("churn(%d)", int(a))
	}
}

// ChurnEvent is one entry in a membership-churn schedule.
type ChurnEvent struct {
	// At is the event's offset from the start of the run.
	At time.Duration
	// Action is what happens to the shard.
	Action ChurnAction
	// Shard indexes the fleet [0, n).
	Shard int
}

// ChurnSchedule is the elastic control plane's churn fault stream: `events`
// membership events (kill / drain / join) over an n-shard fleet, spaced by
// uniform gaps in [minGap, maxGap]. The schedule is a pure function of the
// plan seed with a fixed draw order per event (gap, then action, then
// shard), so a churn certificate replays the exact same interleavings —
// including the nasty ones (kill-during-drain, join-during-failover) — on
// every run with the same seed. The harness applies each event best-effort:
// a drain of an already-dead shard or a join of a live one is itself a
// wanted interleaving, not an error.
func (p Plan) ChurnSchedule(n, events int, minGap, maxGap time.Duration) []ChurnEvent {
	if n <= 0 || events <= 0 {
		return nil
	}
	if minGap < 0 {
		minGap = 0
	}
	if maxGap < minGap {
		maxGap = minGap
	}
	rng := p.rng(streamChurn, 0)
	out := make([]ChurnEvent, events)
	at := time.Duration(0)
	for i := range out {
		gap := minGap
		if maxGap > minGap {
			gap += time.Duration(rng.Int63n(int64(maxGap - minGap + 1)))
		}
		at += gap
		var action ChurnAction
		switch u := rng.Float64(); {
		case u < 0.4:
			action = ChurnKill
		case u < 0.7:
			action = ChurnDrain
		default:
			action = ChurnJoin
		}
		out[i] = ChurnEvent{At: at, Action: action, Shard: int(rng.Int63n(int64(n)))}
	}
	return out
}

// AgentSlowdown returns the duration stretch factor of one agent stream: 1
// for a healthy worker, SlowFactor for a straggler. Deterministic per
// (Seed, stream), so a test can pin which worker is the turtle.
func (p Plan) AgentSlowdown(stream int64) float64 {
	if p.SlowAgent <= 0 {
		return 1
	}
	if p.rng(streamAgent, stream).Float64() < p.SlowAgent {
		return p.SlowFactor
	}
	return 1
}

// FaultKind labels one injected fault.
type FaultKind int

// Injected fault kinds.
const (
	FaultNone FaultKind = iota
	FaultDropRequest
	FaultErr5xx
	FaultDropResponse
	FaultLostOrder
	FaultDuplicateOrder
	FaultDeadOnArrival
	FaultStraggler
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropRequest:
		return "drop-request"
	case FaultErr5xx:
		return "err-5xx"
	case FaultDropResponse:
		return "drop-response"
	case FaultLostOrder:
		return "lost-order"
	case FaultDuplicateOrder:
		return "duplicate-order"
	case FaultDeadOnArrival:
		return "dead-on-arrival"
	case FaultStraggler:
		return "straggler"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// NetFault is one attempt's entry in a network fault schedule.
type NetFault struct {
	Kind  FaultKind
	Delay time.Duration // 0 = not delayed
}

// netDecider draws the network fault schedule of one stream. The draw
// pattern per attempt is fixed (one fate draw, one delay-gate draw, one
// delay-size draw when gated in), so attempt k's outcome depends only on
// (plan, stream), never on timing.
type netDecider struct {
	plan Plan
	rng  *rand.Rand
}

func (d *netDecider) next() NetFault {
	var f NetFault
	u := d.rng.Float64()
	switch {
	case u < d.plan.DropRequest:
		f.Kind = FaultDropRequest
	case u < d.plan.DropRequest+d.plan.Err5xx:
		f.Kind = FaultErr5xx
	case u < d.plan.DropRequest+d.plan.Err5xx+d.plan.DropResponse:
		f.Kind = FaultDropResponse
	}
	if d.plan.DelayProb > 0 && d.rng.Float64() < d.plan.DelayProb {
		f.Delay = time.Duration((1 - d.rng.Float64()) * float64(d.plan.MaxDelay))
	}
	return f
}

// Schedule returns the first n entries of stream's network fault schedule —
// exactly what a Transport for the same (plan, stream) will inject.
func (p Plan) Schedule(stream int64, n int) []NetFault {
	d := &netDecider{plan: p, rng: p.rng(streamNetwork, stream)}
	out := make([]NetFault, n)
	for i := range out {
		out[i] = d.next()
	}
	return out
}

// CloudFault is one launch order's entry in a cloud fault schedule.
type CloudFault struct {
	Fate sim.LaunchFate
	// StragglerDelay is consulted separately, per materialized launch.
	StragglerDelay simtime.Duration
}

// cloudDecider draws the cloud fault schedule of one stream.
type cloudDecider struct {
	plan     Plan
	fateRng  *rand.Rand
	stragRng *rand.Rand
}

func newCloudDecider(p Plan, stream int64) *cloudDecider {
	return &cloudDecider{
		plan:     p,
		fateRng:  p.rng(streamCloud, stream),
		stragRng: p.rng(streamStraggler, stream),
	}
}

func (d *cloudDecider) fate() sim.LaunchFate {
	u := d.fateRng.Float64()
	switch {
	case u < d.plan.LostOrder:
		return sim.LaunchLost
	case u < d.plan.LostOrder+d.plan.DuplicateOrder:
		return sim.LaunchDuplicated
	case u < d.plan.LostOrder+d.plan.DuplicateOrder+d.plan.DeadOnArrival:
		return sim.LaunchDOA
	default:
		return sim.LaunchOK
	}
}

func (d *cloudDecider) stragglerDelay() simtime.Duration {
	if d.plan.StragglerProb <= 0 {
		return 0
	}
	if d.stragRng.Float64() >= d.plan.StragglerProb {
		return 0
	}
	return (1 - d.stragRng.Float64()) * d.plan.MaxStragglerDelay
}

// ScheduleCloud returns the first n launch-order fates of stream's cloud
// schedule — exactly what a CloudFaults for the same (plan, stream) returns
// from its first n LaunchFate calls.
func (p Plan) ScheduleCloud(stream int64, n int) []sim.LaunchFate {
	d := newCloudDecider(p, stream)
	out := make([]sim.LaunchFate, n)
	for i := range out {
		out[i] = d.fate()
	}
	return out
}
