package chaos

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestPartitionScheduleDeterministic pins the nemesis schedule: the same seed
// reproduces the same event sequence, a different seed reshuffles it, gaps
// and durations stay within bounds, and forced kinds are honored in order.
func TestPartitionScheduleDeterministic(t *testing.T) {
	p := Plan{Seed: 42}
	const minGap, maxGap = 50 * time.Millisecond, 300 * time.Millisecond
	const minDur, maxDur = 100 * time.Millisecond, 500 * time.Millisecond
	a := p.PartitionSchedule(3, 12, minGap, maxGap, minDur, maxDur)
	b := p.PartitionSchedule(3, 12, minGap, maxGap, minDur, maxDur)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("partition schedule differs between runs of the same seed")
	}
	if len(a) != 12 {
		t.Fatalf("schedule has %d events, want 12", len(a))
	}
	prev := time.Duration(0)
	kinds := map[PartitionKind]int{}
	for i, ev := range a {
		gap := ev.At - prev
		if gap < minGap || gap > maxGap {
			t.Errorf("event %d: gap %v outside [%v, %v]", i, gap, minGap, maxGap)
		}
		prev = ev.At
		if ev.Duration < minDur || ev.Duration > maxDur {
			t.Errorf("event %d: duration %v outside [%v, %v]", i, ev.Duration, minDur, maxDur)
		}
		if ev.Shard < 0 || ev.Shard >= 3 {
			t.Errorf("event %d targets shard %d of a 3-shard fleet", i, ev.Shard)
		}
		kinds[ev.Kind]++
	}
	if len(kinds) < 2 {
		t.Errorf("12 events drew only %d distinct kinds: %v", len(kinds), kinds)
	}
	for _, k := range []PartitionKind{PartitionSplit, PartitionOneWay, PartitionSlow} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}

	q := Plan{Seed: 43}
	if reflect.DeepEqual(a, q.PartitionSchedule(3, 12, minGap, maxGap, minDur, maxDur)) {
		t.Error("seeds 42 and 43 share a partition schedule")
	}

	// Forced kinds: honored in order, everything else still seeded.
	want := []PartitionKind{PartitionSplit, PartitionOneWay, PartitionSlow}
	forced := p.PartitionScheduleKinds(want, 3, minGap, maxGap, minDur, maxDur)
	if len(forced) != 3 {
		t.Fatalf("forced schedule has %d events, want 3", len(forced))
	}
	for i, ev := range forced {
		if ev.Kind != want[i] {
			t.Errorf("forced event %d kind %v, want %v", i, ev.Kind, want[i])
		}
	}
	if !reflect.DeepEqual(forced, p.PartitionScheduleKinds(want, 3, minGap, maxGap, minDur, maxDur)) {
		t.Error("forced schedule differs between runs of the same seed")
	}

	// Guard rails.
	if p.PartitionSchedule(0, 5, minGap, maxGap, minDur, maxDur) != nil {
		t.Error("zero shards produced a schedule")
	}
	if p.PartitionSchedule(3, 0, minGap, maxGap, minDur, maxDur) != nil {
		t.Error("zero events produced a schedule")
	}
}

// TestParsePartitionSpec pins the nemesis spec grammar.
func TestParsePartitionSpec(t *testing.T) {
	spec, err := ParsePartitionSpec("split,oneway,slow")
	if err != nil {
		t.Fatalf("explicit spec: %v", err)
	}
	if want := []PartitionKind{PartitionSplit, PartitionOneWay, PartitionSlow}; !reflect.DeepEqual(spec.Kinds, want) {
		t.Errorf("kinds %v, want %v", spec.Kinds, want)
	}
	spec, err = ParsePartitionSpec("seeded:4")
	if err != nil {
		t.Fatalf("seeded spec: %v", err)
	}
	if spec.Kinds != nil || spec.Events != 4 {
		t.Errorf("seeded:4 parsed to %+v", spec)
	}
	for _, bad := range []string{"", "seeded:0", "seeded:x", "seeded:1x", "split,downhill"} {
		if _, err := ParsePartitionSpec(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}

// drive sends n requests from each named sender to the target and returns the
// marshaled fault log — the byte-level witness the determinism contract pins.
func drive(t *testing.T, n *Network, senders []string, target string, reqs int) []byte {
	t.Helper()
	for _, from := range senders {
		tr := n.Transport(from, http.DefaultTransport)
		hc := &http.Client{Transport: tr}
		for i := 0; i < reqs; i++ {
			resp, err := hc.Get(target)
			if err == nil {
				resp.Body.Close()
			}
		}
	}
	b, err := json.Marshal(n.Log())
	if err != nil {
		t.Fatalf("marshal log: %v", err)
	}
	return b
}

// TestNetworkFaultLogDeterministic is the partition/slow-link determinism
// acceptance test: identical (seed, link) draw streams produce byte-identical
// fault logs across runs — including under -race, where the scheduler is
// deliberately hostile (the per-sender request order here is sequential, as
// in the per-link schedule contract).
func TestNetworkFaultLogDeterministic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	build := func() *Network {
		n := NewNetwork(Plan{Seed: 42})
		n.Register("shard", ts.URL)
		n.Cut("router", "shard")
		n.Slow("client", "shard", 2*time.Millisecond, 0.5)
		return n
	}
	a := drive(t, build(), []string{"router", "client"}, ts.URL, 50)
	b := drive(t, build(), []string{"router", "client"}, ts.URL, 50)
	if string(a) != string(b) {
		t.Fatalf("fault logs differ between identical runs:\n%s\n%s", a, b)
	}
	if string(a) == "[]" || string(a) == "null" {
		t.Fatal("no faults logged with a cut and a slow link active")
	}

	// A different seed reshuffles the slow-link stream.
	n2 := NewNetwork(Plan{Seed: 43})
	n2.Register("shard", ts.URL)
	n2.Slow("client", "shard", 2*time.Millisecond, 0.5)
	n3 := NewNetwork(Plan{Seed: 42})
	n3.Register("shard", ts.URL)
	n3.Slow("client", "shard", 2*time.Millisecond, 0.5)
	l2 := drive(t, n2, []string{"client"}, ts.URL, 80)
	l3 := drive(t, n3, []string{"client"}, ts.URL, 80)
	if string(l2) == string(l3) {
		t.Error("seeds 42 and 43 share a slow-link fault log")
	}
}

// TestNetworkLinkSemantics checks the directed-rule behaviors: one-way cuts
// only affect their direction, symmetric partitions cut both, heal restores
// traffic, and unregistered hosts pass through.
func TestNetworkLinkSemantics(t *testing.T) {
	var served int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		served++
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	n := NewNetwork(Plan{Seed: 1})
	n.Register("shard", ts.URL)
	get := func(from string) error {
		hc := &http.Client{Transport: n.Transport(from, nil)}
		resp, err := hc.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	// One-way: router->shard cut, peer->shard open.
	n.Cut("router", "shard")
	err := get("router")
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("cut link returned %v, want LinkError", err)
	}
	if err := get("peer"); err != nil {
		t.Fatalf("uncut direction failed: %v", err)
	}

	// Symmetric split cuts both cross-group directions.
	n.Heal()
	n.Partition([]string{"shard"}, []string{"router", "peer"})
	if err := get("router"); !errors.As(err, &le) {
		t.Fatalf("split link router->shard returned %v, want LinkError", err)
	}
	if err := get("peer"); !errors.As(err, &le) {
		t.Fatalf("split link peer->shard returned %v, want LinkError", err)
	}

	// Heal restores everything.
	n.Heal()
	if err := get("router"); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
	c := n.Counts()
	if c.Cut == 0 || c.Attempts == 0 {
		t.Errorf("counters not recording: %+v", c)
	}

	// Requests to unregistered hosts are never touched.
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer other.Close()
	n.Cut("router", "shard")
	hc := &http.Client{Transport: n.Transport("router", nil)}
	resp, err := hc.Get(other.URL)
	if err != nil {
		t.Fatalf("unregistered host blocked: %v", err)
	}
	resp.Body.Close()
}
