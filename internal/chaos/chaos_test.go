package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func testPlan() Plan {
	return Plan{
		Seed:              42,
		DropRequest:       0.1,
		Err5xx:            0.1,
		DropResponse:      0.1,
		DelayProb:         0.2,
		MaxDelay:          time.Millisecond,
		LostOrder:         0.1,
		DuplicateOrder:    0.1,
		DeadOnArrival:     0.1,
		StragglerProb:     0.2,
		MaxStragglerDelay: 60,
	}
}

// TestScheduleRepeatRunEquality is the determinism acceptance test: the same
// chaos seed and fault plan must reproduce the same fault schedule, run
// after run, for both the network and the cloud schedules.
func TestScheduleRepeatRunEquality(t *testing.T) {
	p := testPlan()
	for stream := int64(0); stream < 5; stream++ {
		a, b := p.Schedule(stream, 500), p.Schedule(stream, 500)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("network schedule of stream %d differs between runs", stream)
		}
		ca, cb := p.ScheduleCloud(stream, 500), p.ScheduleCloud(stream, 500)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("cloud schedule of stream %d differs between runs", stream)
		}
	}

	// Distinct streams and distinct seeds get distinct schedules.
	if reflect.DeepEqual(p.Schedule(0, 500), p.Schedule(1, 500)) {
		t.Error("streams 0 and 1 share a network schedule")
	}
	p2 := p
	p2.Seed = 43
	if reflect.DeepEqual(p.Schedule(0, 500), p2.Schedule(0, 500)) {
		t.Error("seeds 42 and 43 share a network schedule")
	}
}

// TestTransportFollowsSchedule drives a real Transport through a live
// httptest server and checks every attempt meets exactly the fate the
// published schedule predicts.
func TestTransportFollowsSchedule(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	p := testPlan()
	p.DelayProb, p.MaxDelay = 0, 0 // keep the test fast
	const n = 200
	sched := p.Schedule(7, n)
	tr := p.Transport(7, http.DefaultTransport)
	hc := &http.Client{Transport: tr}

	wantServed := int64(0)
	for i := 0; i < n; i++ {
		resp, err := hc.Get(ts.URL)
		switch sched[i].Kind {
		case FaultDropRequest, FaultDropResponse:
			if err == nil {
				resp.Body.Close()
				t.Fatalf("attempt %d: want injected error (%v), got success", i, sched[i].Kind)
			}
			if sched[i].Kind == FaultDropResponse {
				wantServed++ // the server processed it before the reset
			}
		case FaultErr5xx:
			if err != nil {
				t.Fatalf("attempt %d: want synthesized 503, got error %v", i, err)
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("attempt %d: status %d, want 503", i, resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		default:
			if err != nil {
				t.Fatalf("attempt %d: want success, got %v", i, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("attempt %d: status %d, want 200", i, resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			wantServed++
		}
	}

	if got := served.Load(); got != wantServed {
		t.Errorf("server saw %d requests, schedule predicts %d", got, wantServed)
	}
	c := tr.Counts()
	if c.Attempts != n {
		t.Errorf("counted %d attempts, want %d", c.Attempts, n)
	}
	if c.Total() == 0 {
		t.Error("no faults injected at 30% fault probability over 200 attempts")
	}
	if got := c.DroppedRequests + c.Injected5xx + c.DroppedResponses; got != c.Total() {
		t.Errorf("Total() = %d, sum of parts = %d", c.Total(), got)
	}
}

// TestCloudFaultsFollowSchedule checks the live injector replays the
// published fate schedule and counts what it injects.
func TestCloudFaultsFollowSchedule(t *testing.T) {
	p := testPlan()
	const n = 300
	sched := p.ScheduleCloud(3, n)
	cf := p.CloudFaults(3)
	var want CloudCounts
	for i := 0; i < n; i++ {
		got := cf.LaunchFate()
		if got != sched[i] {
			t.Fatalf("order %d: fate %v, schedule says %v", i, got, sched[i])
		}
		want.Orders++
		switch got {
		case sim.LaunchLost:
			want.Lost++
		case sim.LaunchDuplicated:
			want.Duplicated++
		case sim.LaunchDOA:
			want.DOA++
		}
	}
	c := cf.Counts()
	c.Stragglers = 0 // not exercised here
	if c != want {
		t.Errorf("counts %+v, want %+v", c, want)
	}
	if want.Lost == 0 || want.Duplicated == 0 || want.DOA == 0 {
		t.Errorf("some fault class never fired over %d orders: %+v", n, want)
	}

	// Straggler draws: deterministic and bounded.
	cf2, cf3 := p.CloudFaults(9), p.CloudFaults(9)
	sawDelay := false
	for i := 0; i < 200; i++ {
		d2, d3 := cf2.ActivationDelay(), cf3.ActivationDelay()
		if d2 != d3 {
			t.Fatalf("straggler draw %d differs between identical streams: %v vs %v", i, d2, d3)
		}
		if d2 < 0 || d2 > p.MaxStragglerDelay {
			t.Fatalf("straggler delay %v outside (0, %v]", d2, p.MaxStragglerDelay)
		}
		if d2 > 0 {
			sawDelay = true
		}
	}
	if !sawDelay {
		t.Error("no straggler delay fired at 20% probability over 200 draws")
	}
}

// TestPlanValidate pins the configuration errors.
func TestPlanValidate(t *testing.T) {
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan should validate: %v", err)
	}
	if err := testPlan().Validate(); err != nil {
		t.Errorf("test plan should validate: %v", err)
	}
	bad := []Plan{
		{DropRequest: -0.1},
		{Err5xx: 1.5},
		{DropRequest: 0.5, Err5xx: 0.4, DropResponse: 0.2},
		{LostOrder: 0.5, DuplicateOrder: 0.4, DeadOnArrival: 0.2},
		{DelayProb: 0.1},
		{StragglerProb: 0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
	}
	if (Plan{}).Active() {
		t.Error("zero plan reports active")
	}
	if !testPlan().Active() {
		t.Error("test plan reports inactive")
	}
}

// TestTaskCrashesDeterministic pins the task-crash fault stream: repeatable
// for the same (seed, task, attempt), mixed at intermediate probabilities, and
// total/absent at the extremes — the contract the poison-quarantine tests and
// the wire-agent -chaos-task-crash flag rely on.
func TestTaskCrashesDeterministic(t *testing.T) {
	p := Plan{Seed: 42, TaskCrash: 0.5}
	crashed, survived := 0, 0
	for task := int64(0); task < 10; task++ {
		for attempt := 1; attempt <= 4; attempt++ {
			a := p.TaskCrashes(task, attempt)
			if b := p.TaskCrashes(task, attempt); a != b {
				t.Fatalf("TaskCrashes(%d, %d) not repeatable", task, attempt)
			}
			if a {
				crashed++
			} else {
				survived++
			}
		}
	}
	if crashed == 0 || survived == 0 {
		t.Fatalf("0.5 crash stream not mixed: %d crashed, %d survived", crashed, survived)
	}
	// A different seed reshuffles the stream.
	q := Plan{Seed: 43, TaskCrash: 0.5}
	same := true
	for task := int64(0); task < 10 && same; task++ {
		for attempt := 1; attempt <= 4; attempt++ {
			if p.TaskCrashes(task, attempt) != q.TaskCrashes(task, attempt) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed does not influence the crash stream")
	}
	// Extremes: certain crash and no crash.
	always := Plan{Seed: 1, TaskCrash: 1}
	never := Plan{Seed: 1}
	for task := int64(0); task < 5; task++ {
		if !always.TaskCrashes(task, 1) {
			t.Fatalf("TaskCrash=1 spared task %d", task)
		}
		if never.TaskCrashes(task, 1) {
			t.Fatalf("TaskCrash=0 crashed task %d", task)
		}
	}
}

// TestAgentSlowdownDeterministic pins the slow-agent fault stream: per-stream
// repeatable straggler selection returning either exactly SlowFactor or
// exactly 1, with the probability extremes honoured.
func TestAgentSlowdownDeterministic(t *testing.T) {
	p := Plan{Seed: 7, SlowAgent: 0.5, SlowFactor: 8}
	slowed, normal := 0, 0
	for stream := int64(0); stream < 40; stream++ {
		f := p.AgentSlowdown(stream)
		if g := p.AgentSlowdown(stream); f != g {
			t.Fatalf("AgentSlowdown(%d) not repeatable: %v then %v", stream, f, g)
		}
		switch f {
		case 8:
			slowed++
		case 1:
			normal++
		default:
			t.Fatalf("AgentSlowdown(%d) = %v, want 8 or 1", stream, f)
		}
	}
	if slowed == 0 || normal == 0 {
		t.Fatalf("0.5 slowdown stream not mixed: %d slowed, %d normal", slowed, normal)
	}
	if f := (Plan{Seed: 7, SlowAgent: 1, SlowFactor: 3}).AgentSlowdown(0); f != 3 {
		t.Fatalf("certain straggler = %v, want 3", f)
	}
	if f := (Plan{Seed: 7}).AgentSlowdown(0); f != 1 {
		t.Fatalf("inactive slowdown = %v, want 1", f)
	}
}

// TestSelfHealingPlanValidate pins the new fault knobs' configuration errors.
func TestSelfHealingPlanValidate(t *testing.T) {
	if err := (Plan{TaskCrash: 1.5}).Validate(); err == nil {
		t.Error("TaskCrash out of range validated")
	}
	if err := (Plan{SlowAgent: 0.5}).Validate(); err == nil {
		t.Error("SlowAgent without SlowFactor validated")
	}
	if err := (Plan{SlowAgent: 0.5, SlowFactor: 1}).Validate(); err == nil {
		t.Error("SlowFactor = 1 validated (must exceed 1)")
	}
	if err := (Plan{SlowAgent: 0.5, SlowFactor: 8, TaskCrash: 0.2}).Validate(); err != nil {
		t.Errorf("valid self-healing plan rejected: %v", err)
	}
	if !(Plan{TaskCrash: 0.1}).Active() || !(Plan{SlowAgent: 0.1, SlowFactor: 2}).Active() {
		t.Error("self-healing faults not reported active")
	}
}

// TestChurnScheduleDeterministic pins the topology-churn schedule: the same
// seed reproduces the same event sequence, a different seed reshuffles it,
// gaps stay within the configured bounds, and the guard rails on degenerate
// arguments hold.
func TestChurnScheduleDeterministic(t *testing.T) {
	p := Plan{Seed: 42}
	const minGap, maxGap = 50 * time.Millisecond, 400 * time.Millisecond
	a := p.ChurnSchedule(3, 12, minGap, maxGap)
	b := p.ChurnSchedule(3, 12, minGap, maxGap)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("churn schedule differs between runs of the same seed")
	}
	if len(a) != 12 {
		t.Fatalf("schedule has %d events, want 12", len(a))
	}
	prev := time.Duration(0)
	actions := map[ChurnAction]int{}
	for i, ev := range a {
		gap := ev.At - prev
		if gap < minGap || gap > maxGap {
			t.Errorf("event %d: gap %v outside [%v, %v]", i, gap, minGap, maxGap)
		}
		prev = ev.At
		if ev.Shard < 0 || ev.Shard >= 3 {
			t.Errorf("event %d targets shard %d of a 3-shard fleet", i, ev.Shard)
		}
		actions[ev.Action]++
	}
	for _, act := range []ChurnAction{ChurnKill, ChurnDrain, ChurnJoin} {
		if act.String() == "" {
			t.Errorf("action %d has no name", act)
		}
	}
	if len(actions) < 2 {
		t.Errorf("12 events drew only %d distinct actions: %v", len(actions), actions)
	}

	q := Plan{Seed: 43}
	if reflect.DeepEqual(a, q.ChurnSchedule(3, 12, minGap, maxGap)) {
		t.Error("seeds 42 and 43 share a churn schedule")
	}

	// Guard rails: degenerate arguments yield an empty schedule or clamp.
	if p.ChurnSchedule(0, 5, minGap, maxGap) != nil {
		t.Error("zero shards produced a schedule")
	}
	if p.ChurnSchedule(3, 0, minGap, maxGap) != nil {
		t.Error("zero events produced a schedule")
	}
	fixed := p.ChurnSchedule(3, 4, minGap, minGap) // maxGap == minGap: fixed cadence
	for i, ev := range fixed {
		if want := minGap * time.Duration(i+1); ev.At != want {
			t.Errorf("fixed-gap event %d at %v, want %v", i, ev.At, want)
		}
	}
}
