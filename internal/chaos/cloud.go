package chaos

import (
	"repro/internal/sim"
	"repro/internal/simtime"
)

// CloudCounts summarizes what a CloudFaults injected.
type CloudCounts struct {
	Orders     int64 `json:"orders"`
	Lost       int64 `json:"lost"`
	Duplicated int64 `json:"duplicated"`
	DOA        int64 `json:"doa"`
	Stragglers int64 `json:"stragglers"`
}

// CloudFaults implements sim.FaultInjector with the plan's cloud-side fault
// schedule for one stream. The simulator consults it from a single
// goroutine; like the simulator itself, it is not safe for concurrent use.
type CloudFaults struct {
	d      *cloudDecider
	counts CloudCounts
}

var _ sim.FaultInjector = (*CloudFaults)(nil)

// CloudFaults builds the injector for one stream (one sim run). Each run
// needs its own injector: the schedule position is consumed as the run
// progresses.
func (p Plan) CloudFaults(stream int64) *CloudFaults {
	return &CloudFaults{d: newCloudDecider(p, stream)}
}

// LaunchFate implements sim.FaultInjector.
func (c *CloudFaults) LaunchFate() sim.LaunchFate {
	c.counts.Orders++
	f := c.d.fate()
	switch f {
	case sim.LaunchLost:
		c.counts.Lost++
	case sim.LaunchDuplicated:
		c.counts.Duplicated++
	case sim.LaunchDOA:
		c.counts.DOA++
	}
	return f
}

// ActivationDelay implements sim.FaultInjector.
func (c *CloudFaults) ActivationDelay() simtime.Duration {
	d := c.d.stragglerDelay()
	if d > 0 {
		c.counts.Stragglers++
	}
	return d
}

// Counts returns the injected-fault counters so far.
func (c *CloudFaults) Counts() CloudCounts { return c.counts }
