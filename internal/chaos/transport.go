package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// InjectedError is the transport-level error reported for injected drops
// and resets. Retrying clients classify it like any other transport error.
type InjectedError struct {
	Kind    FaultKind
	Attempt int64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected %s (attempt %d)", e.Kind, e.Attempt)
}

// Counts summarizes what a Transport injected.
type Counts struct {
	Attempts         int64 `json:"attempts"`
	DroppedRequests  int64 `json:"dropped_requests"`
	Injected5xx      int64 `json:"injected_5xx"`
	DroppedResponses int64 `json:"dropped_responses"`
	Delayed          int64 `json:"delayed"`
}

// Add accumulates another transport's counts (loadgen aggregates across
// per-session transports).
func (c *Counts) Add(o Counts) {
	c.Attempts += o.Attempts
	c.DroppedRequests += o.DroppedRequests
	c.Injected5xx += o.Injected5xx
	c.DroppedResponses += o.DroppedResponses
	c.Delayed += o.Delayed
}

// Total returns the number of injected faults (delays excluded: a delayed
// attempt still succeeds).
func (c Counts) Total() int64 {
	return c.DroppedRequests + c.Injected5xx + c.DroppedResponses
}

// Transport injects the plan's network faults into one stream of HTTP
// attempts. Wrap it around a client's base transport:
//
//	hc := &http.Client{Transport: plan.Transport(sessionIdx, http.DefaultTransport)}
//
// Fault decisions are drawn per attempt from the stream's private schedule
// (see Schedule), so the k-th attempt always meets the same fate. The
// transport is safe for concurrent use, but concurrent attempts race for
// schedule positions; give each logically independent request stream its
// own Transport (one per session) to keep schedules reproducible.
type Transport struct {
	plan Plan
	next http.RoundTripper

	mu      sync.Mutex
	decider *netDecider
	counts  Counts
}

// Transport builds a fault-injecting RoundTripper for one stream. A nil
// next falls back to http.DefaultTransport.
func (p Plan) Transport(stream int64, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{
		plan:    p,
		next:    next,
		decider: &netDecider{plan: p, rng: p.rng(streamNetwork, stream)},
	}
}

// Counts returns a snapshot of the injected-fault counters.
func (t *Transport) Counts() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.counts.Attempts++
	attempt := t.counts.Attempts
	f := t.decider.next()
	switch f.Kind {
	case FaultDropRequest:
		t.counts.DroppedRequests++
	case FaultErr5xx:
		t.counts.Injected5xx++
	case FaultDropResponse:
		t.counts.DroppedResponses++
	}
	if f.Delay > 0 {
		t.counts.Delayed++
	}
	t.mu.Unlock()

	if f.Delay > 0 {
		timer := time.NewTimer(f.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}

	switch f.Kind {
	case FaultDropRequest:
		// The request never leaves the client: connection refused.
		return nil, &InjectedError{Kind: f.Kind, Attempt: attempt}
	case FaultErr5xx:
		// A dying proxy answers without forwarding.
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request: req,
		}, nil
	case FaultDropResponse:
		// Deliver the request — the server processes it — then lose the
		// response: the connection "resets" after the write.
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &InjectedError{Kind: f.Kind, Attempt: attempt}
	default:
		return t.next.RoundTrip(req)
	}
}
