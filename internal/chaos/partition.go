package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// The partition nemesis: seeded schedules of network partitions (symmetric
// splits, one-way link drops, slow links) realized by a link-aware Network
// wrapper over Transport. Where Transport injects per-attempt faults on ONE
// request stream, Network models the topology between named endpoints — the
// router, each shard, the loadgen client, an agent fleet — and applies
// directed per-link rules, so a shard can be alive yet unreachable from the
// router while a peer still sees it: the asymmetric failure mode that
// separates "dead" from "partitioned-from-me".

// Partition stream labels (see the package-level determinism contract).
const (
	streamPartition = "chaos/partition"
	streamLink      = "chaos/link"
)

// PartitionKind is one partition fault class.
type PartitionKind int

const (
	// PartitionSplit isolates one shard symmetrically: every link between it
	// and the rest of the fleet (router and peers) is cut both ways. The
	// router's confirmation probes cannot reach it through any peer, so the
	// split is indistinguishable from death and must fence + fail over.
	PartitionSplit PartitionKind = iota
	// PartitionOneWay cuts only the router→shard link: the shard is alive and
	// its peers still reach it, so the router must classify it partitioned
	// (503 shard_partitioned) instead of fencing a live writer.
	PartitionOneWay
	// PartitionSlow degrades the router→shard link: a seeded fraction of
	// requests is delayed by a bounded uniform draw, which both slows and
	// reorders them. No failover may trigger; the contract is degradation
	// without misclassification.
	PartitionSlow
)

// String implements fmt.Stringer.
func (k PartitionKind) String() string {
	switch k {
	case PartitionSplit:
		return "split"
	case PartitionOneWay:
		return "oneway"
	case PartitionSlow:
		return "slow"
	default:
		return fmt.Sprintf("partition(%d)", int(k))
	}
}

// PartitionEvent is one entry in a partition nemesis schedule.
type PartitionEvent struct {
	// At is the event's offset from the start of the run.
	At time.Duration
	// Duration is how long the fault holds before the link heals.
	Duration time.Duration
	// Kind is the partition class.
	Kind PartitionKind
	// Shard indexes the victim in the fleet [0, n).
	Shard int
}

// PartitionSchedule is the nemesis fault stream: `events` partition events
// over an n-shard fleet, spaced by uniform gaps in [minGap, maxGap], each
// holding for a uniform duration in [minDur, maxDur]. A pure function of the
// plan seed with a fixed draw order per event (gap, kind, shard, duration),
// so the same seed splits the same shard at the same offset on every run.
func (p Plan) PartitionSchedule(n, events int, minGap, maxGap, minDur, maxDur time.Duration) []PartitionEvent {
	return p.partitionSchedule(nil, n, events, minGap, maxGap, minDur, maxDur)
}

// PartitionScheduleKinds is PartitionSchedule with the event kinds forced by
// the caller (an explicit nemesis spec like "split,oneway,slow"): the kind
// draw is skipped, every other draw keeps the seeded order.
func (p Plan) PartitionScheduleKinds(kinds []PartitionKind, n int, minGap, maxGap, minDur, maxDur time.Duration) []PartitionEvent {
	return p.partitionSchedule(kinds, n, len(kinds), minGap, maxGap, minDur, maxDur)
}

func (p Plan) partitionSchedule(kinds []PartitionKind, n, events int, minGap, maxGap, minDur, maxDur time.Duration) []PartitionEvent {
	if n <= 0 || events <= 0 {
		return nil
	}
	if minGap < 0 {
		minGap = 0
	}
	if maxGap < minGap {
		maxGap = minGap
	}
	if minDur < 0 {
		minDur = 0
	}
	if maxDur < minDur {
		maxDur = minDur
	}
	rng := p.rng(streamPartition, 0)
	out := make([]PartitionEvent, events)
	at := time.Duration(0)
	for i := range out {
		gap := minGap
		if maxGap > minGap {
			gap += time.Duration(rng.Int63n(int64(maxGap - minGap + 1)))
		}
		at += gap
		var kind PartitionKind
		if kinds != nil {
			kind = kinds[i]
		} else {
			switch u := rng.Float64(); {
			case u < 1.0/3:
				kind = PartitionSplit
			case u < 2.0/3:
				kind = PartitionOneWay
			default:
				kind = PartitionSlow
			}
		}
		shard := int(rng.Int63n(int64(n)))
		dur := minDur
		if maxDur > minDur {
			dur += time.Duration(rng.Int63n(int64(maxDur - minDur + 1)))
		}
		out[i] = PartitionEvent{At: at, Duration: dur, Kind: kind, Shard: shard}
	}
	return out
}

// PartitionSpec is a parsed -partition nemesis spec.
type PartitionSpec struct {
	// Kinds is the explicit event sequence ("split,oneway,slow"); nil when
	// the spec asked for fully seeded kinds.
	Kinds []PartitionKind
	// Events is the seeded event count ("seeded:N"); ignored when Kinds is
	// set.
	Events int
}

// ParsePartitionSpec parses a nemesis spec. Grammar:
//
//	seeded:N              N events, kinds drawn from the seed
//	split,oneway,slow     one event per named kind, in order
func ParsePartitionSpec(s string) (*PartitionSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("chaos: empty partition spec")
	}
	if rest, ok := strings.CutPrefix(s, "seeded:"); ok {
		n := 0
		if _, err := fmt.Sscanf(rest, "%d", &n); err != nil || n <= 0 || fmt.Sprintf("%d", n) != rest {
			return nil, fmt.Errorf("chaos: partition spec %q: want seeded:<positive count>", s)
		}
		return &PartitionSpec{Events: n}, nil
	}
	var kinds []PartitionKind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "split":
			kinds = append(kinds, PartitionSplit)
		case "oneway":
			kinds = append(kinds, PartitionOneWay)
		case "slow":
			kinds = append(kinds, PartitionSlow)
		default:
			return nil, fmt.Errorf("chaos: partition spec %q: unknown kind %q (want split, oneway, slow, or seeded:N)", s, part)
		}
	}
	return &PartitionSpec{Kinds: kinds}, nil
}

// LinkError is the injected transport error of a cut link.
type LinkError struct {
	From, To string
}

// Error implements error.
func (e *LinkError) Error() string {
	return fmt.Sprintf("chaos: link %s->%s cut by partition", e.From, e.To)
}

// LinkFault is one entry in a Network's ordered fault log.
type LinkFault struct {
	// Seq orders faults across all links of the network.
	Seq int64 `json:"seq"`
	// From and To name the link's endpoints.
	From string `json:"from"`
	To   string `json:"to"`
	// Kind is "cut" (request dropped) or "slow" (request delayed).
	Kind string `json:"kind"`
	// Delay is the injected delay of a "slow" fault.
	Delay time.Duration `json:"delay_ns,omitempty"`
}

// LinkCounts aggregates a Network's injected faults.
type LinkCounts struct {
	Attempts int64 `json:"attempts"`
	Cut      int64 `json:"cut"`
	Delayed  int64 `json:"delayed"`
}

// linkRule is the active fault on one directed link.
type linkRule struct {
	cut      bool
	slow     bool
	maxDelay time.Duration
	prob     float64
}

type linkKey struct{ from, to string }

// Network is the link-aware fault fabric between named endpoints. Register
// each endpoint's URL, hand every sender a Transport tagged with its own
// name, and the network applies the directed rules currently in force:
// requests on a cut link fail with LinkError before they are sent; requests
// on a slow link are delayed (and thereby reordered against later undelayed
// requests) by a seeded per-link draw stream.
//
// Determinism: each directed link owns a private generator derived from
// (Plan.Seed, "chaos/link", from, to) with a fixed draw order per attempt
// (one gate draw, one size draw when gated in), so the k-th attempt on a
// link meets the same fate in every run; the ordered fault Log is the
// byte-comparable witness. Rule changes (Cut, Slow, Heal) do not reset the
// per-link streams.
type Network struct {
	plan Plan

	mu       sync.Mutex
	hosts    map[string]string // "host:port" -> endpoint name
	rules    map[linkKey]*linkRule
	deciders map[linkKey]*rand.Rand
	log      []LinkFault
	seq      int64
	counts   LinkCounts
}

// NewNetwork builds an empty fabric over the plan's seed.
func NewNetwork(p Plan) *Network {
	return &Network{
		plan:     p,
		hosts:    make(map[string]string),
		rules:    make(map[linkKey]*linkRule),
		deciders: make(map[linkKey]*rand.Rand),
	}
}

// Register names an endpoint by its base URL; requests addressed to its
// host:port resolve to this name. Re-registering a name (a restarted shard
// on a new port) adds the new address without forgetting the old one.
func (n *Network) Register(name, baseURL string) {
	host := baseURL
	if u, err := url.Parse(baseURL); err == nil && u.Host != "" {
		host = u.Host
	}
	n.mu.Lock()
	n.hosts[host] = name
	n.mu.Unlock()
}

// Cut drops every request from -> to until healed (a one-way link drop).
func (n *Network) Cut(from, to string) {
	n.mu.Lock()
	n.rules[linkKey{from, to}] = &linkRule{cut: true}
	n.mu.Unlock()
}

// Partition cuts every link between the two groups, both directions: the
// symmetric split.
func (n *Network) Partition(groupA, groupB []string) {
	n.mu.Lock()
	for _, a := range groupA {
		for _, b := range groupB {
			n.rules[linkKey{a, b}] = &linkRule{cut: true}
			n.rules[linkKey{b, a}] = &linkRule{cut: true}
		}
	}
	n.mu.Unlock()
}

// Slow delays a `prob` fraction of requests from -> to by a uniform draw
// from (0, maxDelay], until healed. Delayed requests arrive after later
// undelayed ones: bounded delay plus reorder.
func (n *Network) Slow(from, to string, maxDelay time.Duration, prob float64) {
	n.mu.Lock()
	n.rules[linkKey{from, to}] = &linkRule{slow: true, maxDelay: maxDelay, prob: prob}
	n.mu.Unlock()
}

// HealLink clears the rule on one directed link.
func (n *Network) HealLink(from, to string) {
	n.mu.Lock()
	delete(n.rules, linkKey{from, to})
	n.mu.Unlock()
}

// Heal clears every rule: the network is whole again. Per-link draw streams
// are preserved, so a later rule on the same link continues its schedule.
func (n *Network) Heal() {
	n.mu.Lock()
	n.rules = make(map[linkKey]*linkRule)
	n.mu.Unlock()
}

// Log snapshots the ordered fault log.
func (n *Network) Log() []LinkFault {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]LinkFault, len(n.log))
	copy(out, n.log)
	return out
}

// Counts snapshots the aggregate fault counters.
func (n *Network) Counts() LinkCounts {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counts
}

func (n *Network) decider(k linkKey) *rand.Rand {
	if rng, ok := n.deciders[k]; ok {
		return rng
	}
	h := splitmix64(uint64(n.plan.Seed))
	h = splitmix64(h ^ strPart(streamLink))
	h = splitmix64(h ^ strPart(k.from))
	h = splitmix64(h ^ strPart(k.to))
	rng := rand.New(rand.NewSource(int64(h &^ (1 << 63))))
	n.deciders[k] = rng
	return rng
}

// Transport returns the round tripper a sender named `from` threads its
// requests through. next defaults to http.DefaultTransport. Requests to
// unregistered hosts pass through untouched.
func (n *Network) Transport(from string, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &netLinkTransport{net: n, from: from, next: next}
}

type netLinkTransport struct {
	net  *Network
	from string
	next http.RoundTripper
}

// RoundTrip applies the current rule on (from, destination): fate and delay
// are drawn under the network lock, the delay itself is slept outside it.
func (t *netLinkTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.net
	n.mu.Lock()
	to := n.hosts[req.URL.Host]
	var rule *linkRule
	if to != "" {
		n.counts.Attempts++
		rule = n.rules[linkKey{t.from, to}]
	}
	var cut bool
	var delay time.Duration
	if rule != nil {
		switch {
		case rule.cut:
			cut = true
			n.seq++
			n.counts.Cut++
			n.log = append(n.log, LinkFault{Seq: n.seq, From: t.from, To: to, Kind: "cut"})
		case rule.slow:
			rng := n.decider(linkKey{t.from, to})
			if rng.Float64() < rule.prob {
				delay = time.Duration((1 - rng.Float64()) * float64(rule.maxDelay))
				n.seq++
				n.counts.Delayed++
				n.log = append(n.log, LinkFault{Seq: n.seq, From: t.from, To: to, Kind: "slow", Delay: delay})
			}
		}
	}
	n.mu.Unlock()

	if cut {
		return nil, &LinkError{From: t.from, To: to}
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	return t.next.RoundTrip(req)
}
