// Package core assembles WIRE's MAPE loop (§III): the Controller consumes
// one monitoring snapshot per iteration (Monitor), updates the per-stage
// online predictors (Analyze), projects the upcoming load with the online
// workflow simulator and sizes the pool with the resource-steering policy
// (Plan), and returns launch/release orders for the simulator to apply with
// cloud lag semantics (Execute).
//
// The controller also maintains the run state of Figure 1: the latest
// prediction for every task (a wavefront of annotations ahead of the
// execution), which the Figure 4 experiments read back as the prediction
// log.
package core

import (
	"repro/internal/dag"
	"repro/internal/lookahead"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/steer"
)

// Config tunes the WIRE controller. The zero value reproduces the paper's
// settings (learning rate 0.1, one OGD pass per interval, restart threshold
// 0.2u, minimal pool of one instance).
type Config struct {
	// Predictor configures the online prediction policies (§III-C).
	Predictor predict.Config
	// RestartFrac overrides the release threshold fraction (default 0.2).
	RestartFrac float64
	// MinPool overrides the minimal pool retained while the workflow is
	// incomplete (default 1).
	MinPool int
	// UtilizationTarget modulates the steering aggressiveness (§IV-A):
	// instances are added once they are predicted busy for at least
	// UtilizationTarget·u instead of a full charging unit. Zero keeps
	// the paper's 1.0.
	UtilizationTarget float64
}

// Prediction is the controller's latest estimate for one task, frozen at
// the last iteration before the task started (the prediction that actually
// steered resources for it).
type Prediction struct {
	Time          simtime.Time
	Task          dag.TaskID
	Stage         dag.StageID
	EstimatedExec simtime.Duration
	Policy        predict.Policy
}

// Controller implements sim.Controller with the WIRE policy.
type Controller struct {
	cfg  Config
	pred *predict.Predictor

	// proj carries the lookahead projection state across the session's MAPE
	// intervals (incremental wait-counts, memoized estimates, simulation
	// buffers); see lookahead.Projector for the invalidation rules.
	proj     lookahead.Projector
	preStart map[dag.TaskID]Prediction
	lastLoad *lookahead.Load
	iters    int
}

var _ sim.Controller = (*Controller)(nil)

// New returns a WIRE controller.
func New(cfg Config) *Controller {
	return &Controller{
		cfg:      cfg,
		pred:     predict.New(cfg.Predictor),
		preStart: make(map[dag.TaskID]Prediction),
	}
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "wire" }

// Predictor exposes the online models for diagnostics and tests.
func (c *Controller) Predictor() *predict.Predictor { return c.pred }

// Iterations returns the number of MAPE iterations executed.
func (c *Controller) Iterations() int { return c.iters }

// LastLoad returns the most recent projected upcoming load (diagnostics).
func (c *Controller) LastLoad() *lookahead.Load { return c.lastLoad }

// PreStartPredictions returns, per task, the last execution-time prediction
// made before the task started — the inputs to the Figure 4 accuracy study.
func (c *Controller) PreStartPredictions() map[dag.TaskID]Prediction {
	out := make(map[dag.TaskID]Prediction, len(c.preStart))
	for k, v := range c.preStart {
		out[k] = v
	}
	return out
}

// Plan implements sim.Controller: one MAPE iteration.
func (c *Controller) Plan(snap *monitor.Snapshot) sim.Decision {
	c.iters++

	// Analyze: refresh the per-stage models with the last interval's
	// observations.
	c.pred.Update(snap)

	// Annotate the run state: record the current estimate for every task
	// that has not started yet, so each task keeps the last prediction
	// that preceded its dispatch.
	for i := range snap.Tasks {
		rec := &snap.Tasks[i]
		if rec.State != monitor.Blocked && rec.State != monitor.Ready {
			continue
		}
		exec, pol := c.pred.EstimateExec(snap, rec.ID)
		c.preStart[rec.ID] = Prediction{
			Time:          snap.Now,
			Task:          rec.ID,
			Stage:         rec.Stage,
			EstimatedExec: exec,
			Policy:        pol,
		}
	}

	// Plan: project the upcoming load one interval ahead and size the
	// pool for it. The projector double-buffers its output, so the Load
	// stored here stays valid until the next-but-one iteration — long
	// enough for LastLoad diagnostics, which always read the newest one.
	load := c.proj.Project(snap, c.pred)
	c.lastLoad = load

	cands := make([]steer.Candidate, 0, len(snap.Instances))
	for _, in := range snap.NonDrainingInstances() {
		cands = append(cands, steer.Candidate{
			ID:               in.ID,
			TimeToNextCharge: in.TimeToNextCharge,
			RestartCost:      load.RestartCost[in.ID],
		})
	}

	scfg := steer.FromSnapshot(snap)
	if c.cfg.RestartFrac > 0 {
		scfg.RestartFrac = c.cfg.RestartFrac
	}
	if c.cfg.MinPool > 0 {
		scfg.MinPool = c.cfg.MinPool
	}
	if c.cfg.UtilizationTarget > 0 {
		scfg.UtilizationTarget = c.cfg.UtilizationTarget
	}

	emptyLoad := len(load.Tasks) == 0 && !snap.Done()
	return steer.Plan(load.Remainings(), emptyLoad, cands, scfg)
}
