package core

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/dag"
	"repro/internal/simtime"
)

// StateDump is the serializable view of the controller's run state
// (Figure 1): the prediction wavefront annotating the DAG ahead of the
// execution, the per-stage learning models, and the last projected load.
type StateDump struct {
	Iterations int `json:"iterations"`

	TransferEstimate simtime.Duration `json:"transfer_estimate_s"`

	// Stages holds the OGD model per stage that has one.
	Stages []StageState `json:"stages"`

	// Predictions is the pre-start wavefront, sorted by task ID.
	Predictions []PredictionState `json:"predictions"`

	// Upcoming summarizes the last projected load.
	Upcoming *UpcomingState `json:"upcoming,omitempty"`
}

// StageState is one stage's learned model.
type StageState struct {
	Stage dag.StageID `json:"stage"`
	A0    float64     `json:"a0"`
	A1    float64     `json:"a1"`
	Scale float64     `json:"scale_mb"`
}

// PredictionState is one task's latest pre-start estimate.
type PredictionState struct {
	Task      dag.TaskID       `json:"task"`
	Stage     dag.StageID      `json:"stage"`
	Estimated simtime.Duration `json:"estimated_exec_s"`
	Policy    string           `json:"policy"`
	At        simtime.Time     `json:"at_s"`
}

// UpcomingState summarizes the last lookahead projection.
type UpcomingState struct {
	At             simtime.Time     `json:"at_s"`
	Tasks          int              `json:"tasks"`
	TotalRemaining simtime.Duration `json:"total_remaining_s"`
	Completions    int              `json:"projected_completions"`
}

// State captures the controller's current run state.
func (c *Controller) State() StateDump {
	dump := StateDump{
		Iterations:       c.iters,
		TransferEstimate: c.pred.EstimateTransfer(),
	}
	for _, sid := range c.pred.ModeledStages() {
		a0, a1, scale, ok := c.pred.Coefficients(sid)
		if !ok {
			continue
		}
		dump.Stages = append(dump.Stages, StageState{Stage: sid, A0: a0, A1: a1, Scale: scale})
	}
	for _, pr := range c.preStart {
		dump.Predictions = append(dump.Predictions, PredictionState{
			Task:      pr.Task,
			Stage:     pr.Stage,
			Estimated: pr.EstimatedExec,
			Policy:    pr.Policy.String(),
			At:        pr.Time,
		})
	}
	sort.Slice(dump.Predictions, func(i, j int) bool {
		return dump.Predictions[i].Task < dump.Predictions[j].Task
	})
	if c.lastLoad != nil {
		dump.Upcoming = &UpcomingState{
			At:             c.lastLoad.At,
			Tasks:          len(c.lastLoad.Tasks),
			TotalRemaining: c.lastLoad.TotalRemaining(),
			Completions:    c.lastLoad.ProjectedCompletions,
		}
	}
	return dump
}

// DumpState writes the run state as indented JSON.
func (c *Controller) DumpState(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.State())
}
