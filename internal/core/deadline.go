package core

import (
	"fmt"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/steer"
)

// DeadlineConfig tunes the deadline controller.
type DeadlineConfig struct {
	// Deadline is the absolute completion target (seconds from run
	// start). Required.
	Deadline simtime.Time
	// Predictor, RestartFrac and MinPool behave as in Config.
	Config
	// Slack inflates the required capacity estimate to absorb prediction
	// error and dispatch drift (default 1.15).
	Slack float64
}

// DeadlineController is an extension beyond the paper: it inverts WIRE's
// objective. Where the resource-steering policy buys the shortest expected
// completion time whose instances stay busy a full charging unit, the
// deadline policy buys the *cheapest* pool expected to finish by a target
// time. It reuses the whole WIRE loop — online prediction (§III-B1) and the
// DAG lookahead (§III-B2) — and swaps only the sizing rule:
//
//	p = ceil( remaining work / (l · max(time left, critical path)) )
//
// with releases still taken only at charging boundaries under the restart
// threshold (Algorithm 2's shrink rules via steer.PlanTo). When the
// deadline is infeasible (time left below the predicted critical path) it
// degrades to the full site: the fastest it can do.
type DeadlineController struct {
	cfg  DeadlineConfig
	base *Controller
}

var _ sim.Controller = (*DeadlineController)(nil)

// NewDeadline returns a deadline controller.
func NewDeadline(cfg DeadlineConfig) *DeadlineController {
	if cfg.Slack <= 1 {
		cfg.Slack = 1.15
	}
	return &DeadlineController{cfg: cfg, base: New(cfg.Config)}
}

// Name implements sim.Controller.
func (d *DeadlineController) Name() string { return "deadline" }

// Deadline returns the configured target.
func (d *DeadlineController) Deadline() simtime.Time { return d.cfg.Deadline }

// State captures the shared WIRE run state (prediction wavefront, per-stage
// models, last projected load) of the underlying controller.
func (d *DeadlineController) State() StateDump { return d.base.State() }

// Plan implements sim.Controller.
func (d *DeadlineController) Plan(snap *monitor.Snapshot) sim.Decision {
	d.base.iters++
	pred := d.base.pred
	pred.Update(snap)

	// Remaining work and critical path over incomplete tasks, using the
	// online estimates (never ground truth).
	estimates := make([]float64, len(snap.Tasks))
	work := 0.0
	for i := range snap.Tasks {
		rec := &snap.Tasks[i]
		if rec.State == monitor.Completed {
			continue
		}
		rem, _ := pred.RemainingOccupancy(snap, rec.ID, snap.Now)
		estimates[rec.ID] = rem
		work += rem
	}
	critPath := remainingCriticalPath(snap, estimates)

	// Capacity takes effect one lag later.
	timeLeft := d.cfg.Deadline - (snap.Now + snap.Interval)
	var p int
	switch {
	case snap.Done():
		p = 0
	case timeLeft <= critPath:
		// Infeasible (or exactly critical): every slot helps.
		p = snap.MaxInstances
		if p == 0 {
			p = snap.HeldInstances() + 1
		}
	default:
		l := float64(snap.SlotsPerInstance)
		need := work * d.cfg.Slack / (l * timeLeft)
		p = int(need)
		if float64(p) < need {
			p++
		}
		// The critical path serializes at least one slot's worth.
		if p < 1 {
			p = 1
		}
	}

	load := d.base.proj.Project(snap, pred)
	cands := make([]steer.Candidate, 0, len(snap.Instances))
	for _, in := range snap.NonDrainingInstances() {
		cands = append(cands, steer.Candidate{
			ID:               in.ID,
			TimeToNextCharge: in.TimeToNextCharge,
			RestartCost:      load.RestartCost[in.ID],
		})
	}
	scfg := steer.FromSnapshot(snap)
	if d.cfg.RestartFrac > 0 {
		scfg.RestartFrac = d.cfg.RestartFrac
	}
	if d.cfg.MinPool > 0 {
		scfg.MinPool = d.cfg.MinPool
	}
	return steer.PlanTo(p, cands, scfg)
}

// remainingCriticalPath computes the longest estimate-weighted path over
// incomplete tasks.
func remainingCriticalPath(snap *monitor.Snapshot, estimates []float64) float64 {
	wf := snap.Workflow
	longest := make([]float64, len(estimates))
	best := 0.0
	for _, id := range wf.TopoOrder() {
		if snap.Task(id).State == monitor.Completed {
			continue
		}
		start := 0.0
		for _, dep := range wf.Task(id).Deps {
			if snap.Task(dep).State == monitor.Completed {
				continue
			}
			if longest[dep] > start {
				start = longest[dep]
			}
		}
		longest[id] = start + estimates[id]
		if longest[id] > best {
			best = longest[id]
		}
	}
	return best
}

// String implements fmt.Stringer for diagnostics.
func (d *DeadlineController) String() string {
	return fmt.Sprintf("deadline(%s)", simtime.FormatDuration(d.cfg.Deadline))
}
