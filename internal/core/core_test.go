package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/predict"
	"repro/internal/sim"
)

// wideWF builds a split -> wide -> merge workflow: one 20s root, n 100s
// parallel tasks, one 20s sink. All tasks in a stage share an input size so
// Policy 4 dominates once completions exist.
func wideWF(n int) *dag.Workflow {
	b := dag.NewBuilder("wide")
	s0 := b.AddStage("split")
	s1 := b.AddStage("wide")
	s2 := b.AddStage("merge")
	root := b.AddTask(s0, "split", 20, 0, 10)
	var mids []dag.TaskID
	for i := 0; i < n; i++ {
		mids = append(mids, b.AddTask(s1, "work", 100, 0, 50, root))
	}
	b.AddTask(s2, "merge", 20, 0, 10, mids...)
	return b.MustBuild()
}

func wireCfg() sim.Config {
	return sim.Config{
		Cloud: cloud.Config{SlotsPerInstance: 1, LagTime: 10, ChargingUnit: 60, MaxInstances: 12},
	}
}

func TestWireCompletesWorkflow(t *testing.T) {
	wf := wideWF(8)
	res, err := sim.Run(wf, New(Config{}), wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != wf.NumTasks() {
		t.Fatalf("completed %d of %d tasks", len(res.TaskRuns), wf.NumTasks())
	}
	if res.Policy != "wire" {
		t.Fatalf("policy = %q", res.Policy)
	}
}

func TestWireGrowsForWideStage(t *testing.T) {
	wf := wideWF(8)
	res, err := sim.Run(wf, New(Config{}), wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPool < 3 {
		t.Fatalf("peak pool = %d; WIRE failed to harvest parallelism", res.PeakPool)
	}
}

func TestWireBeatsFullSiteOnCost(t *testing.T) {
	wf := wideWF(8)
	wres, err := sim.Run(wf, New(Config{}), wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Full-site: 12 instances for the whole run.
	fcfg := wireCfg()
	fcfg.InitialInstances = 12
	fres, err := sim.Run(wf, baseline.Static{}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if wres.UnitsCharged >= fres.UnitsCharged {
		t.Fatalf("wire cost %d not below full-site cost %d", wres.UnitsCharged, fres.UnitsCharged)
	}
	// And not pathologically slower than the full-site run.
	if wres.Makespan > 6*fres.Makespan {
		t.Fatalf("wire makespan %v vs full-site %v", wres.Makespan, fres.Makespan)
	}
}

func TestWirePredictionLogPopulated(t *testing.T) {
	wf := wideWF(8)
	ctrl := New(Config{})
	res, err := sim.Run(wf, ctrl, wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	preds := ctrl.PreStartPredictions()
	if len(preds) == 0 {
		t.Fatal("no predictions recorded")
	}
	// Wide-stage tasks share an input size; once the first-five complete,
	// later tasks should be predicted with Policy 4 and be accurate.
	accurate := 0
	p4 := 0
	for _, tr := range res.TaskRuns {
		pr, ok := preds[tr.Task]
		if !ok || wf.Task(tr.Task).Stage != 1 {
			continue
		}
		if pr.Policy == predict.PolicyGroupMedian {
			p4++
			if diff := pr.EstimatedExec - tr.ObservedExec; diff > -5 && diff < 5 {
				accurate++
			}
		}
	}
	if p4 == 0 {
		t.Fatal("Policy 4 never used on the wide stage")
	}
	if accurate < p4/2 {
		t.Fatalf("only %d/%d Policy-4 predictions accurate", accurate, p4)
	}
	if ctrl.Iterations() == 0 || ctrl.LastLoad() == nil {
		t.Fatal("controller diagnostics empty")
	}
}

func TestWireDrainsPoolAfterWideStage(t *testing.T) {
	wf := wideWF(10)
	ctrl := New(Config{})
	res, err := sim.Run(wf, ctrl, wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	// After the wide stage the workflow narrows to one merge task; the
	// pool must not stay at peak for the remainder. Check that some
	// instance was released before the end of the run.
	peakHeld, lastHeld := 0, 0
	for _, s := range res.Pool {
		if s.Held > peakHeld {
			peakHeld = s.Held
		}
		lastHeld = s.Held
	}
	if lastHeld != 0 {
		t.Fatalf("pool not drained at completion: %d", lastHeld)
	}
	if res.UnitsCharged >= peakHeld*int(res.Makespan/60+1) {
		t.Fatalf("cost %d suggests the pool never shrank (peak %d, makespan %v)",
			res.UnitsCharged, peakHeld, res.Makespan)
	}
}

func TestWireKeepsMinimalPoolWithNoKnowledge(t *testing.T) {
	// A single long chain gives WIRE nothing to parallelize; the pool
	// must stay at the minimal size throughout.
	b := dag.NewBuilder("chain")
	st := b.AddStage("s")
	prev := b.AddTask(st, "t", 50, 0, 1)
	for i := 0; i < 5; i++ {
		prev = b.AddTask(st, "t", 50, 0, 1, prev)
	}
	wf := b.MustBuild()
	res, err := sim.Run(wf, New(Config{}), wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPool != 1 {
		t.Fatalf("peak pool = %d for a serial chain, want 1", res.PeakPool)
	}
}

func TestWireRespectsConfigOverrides(t *testing.T) {
	wf := wideWF(4)
	ctrl := New(Config{
		RestartFrac: 0.5,
		MinPool:     2,
		Predictor:   predict.Config{EpochsPerUpdate: 4},
	})
	res, err := sim.Run(wf, ctrl, wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != wf.NumTasks() {
		t.Fatal("incomplete run with overrides")
	}
}

func TestDeadlineControllerMeetsFeasibleDeadline(t *testing.T) {
	// 16 one-minute tasks, 1-slot instances: one instance needs ~16 min
	// plus lag. A 6-minute deadline forces a wide pool.
	wf := wideWF(16)
	tight := core16DeadlineRun(t, wf, 500)
	if tight.Makespan > 500*1.3 {
		t.Fatalf("missed feasible deadline badly: makespan %v", tight.Makespan)
	}
	// A very loose deadline must be much cheaper than the tight one.
	loose := core16DeadlineRun(t, wf, 4000)
	if loose.UnitsCharged >= tight.UnitsCharged {
		t.Fatalf("loose deadline cost %d >= tight %d", loose.UnitsCharged, tight.UnitsCharged)
	}
	if loose.PeakPool >= tight.PeakPool {
		t.Fatalf("loose peak %d >= tight %d", loose.PeakPool, tight.PeakPool)
	}
}

func core16DeadlineRun(t *testing.T, wf *dag.Workflow, deadline float64) *sim.Result {
	t.Helper()
	ctrl := NewDeadline(DeadlineConfig{Deadline: deadline})
	res, err := sim.Run(wf, ctrl, wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskRuns) != wf.NumTasks() {
		t.Fatal("incomplete run")
	}
	return res
}

func TestDeadlineControllerInfeasibleGoesWide(t *testing.T) {
	wf := wideWF(16)
	ctrl := NewDeadline(DeadlineConfig{Deadline: 1}) // hopeless
	res, err := sim.Run(wf, ctrl, wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPool < 8 {
		t.Fatalf("infeasible deadline should max the pool, peak = %d", res.PeakPool)
	}
	if ctrl.Deadline() != 1 || ctrl.Name() != "deadline" {
		t.Fatal("accessors wrong")
	}
}

func TestDeadlineReleasesAtBoundaries(t *testing.T) {
	// After the wide stage, the deadline controller should shed capacity
	// through the same no-recharge release path as WIRE.
	wf := wideWF(12)
	ctrl := NewDeadline(DeadlineConfig{Deadline: 700})
	res, err := sim.Run(wf, ctrl, wireCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := res.Pool[len(res.Pool)-1]
	if last.Held != 0 {
		t.Fatalf("pool not drained: %+v", last)
	}
}

func TestStateDump(t *testing.T) {
	wf := wideWF(6)
	ctrl := New(Config{})
	if _, err := sim.Run(wf, ctrl, wireCfg()); err != nil {
		t.Fatal(err)
	}
	dump := ctrl.State()
	if dump.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
	if len(dump.Predictions) == 0 {
		t.Fatal("no predictions in state")
	}
	for i := 1; i < len(dump.Predictions); i++ {
		if dump.Predictions[i].Task <= dump.Predictions[i-1].Task {
			t.Fatal("predictions not sorted")
		}
	}
	if len(dump.Stages) == 0 {
		t.Fatal("no stage models in state")
	}
	var buf bytes.Buffer
	if err := ctrl.DumpState(&buf); err != nil {
		t.Fatal(err)
	}
	var back StateDump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if back.Iterations != dump.Iterations || len(back.Predictions) != len(dump.Predictions) {
		t.Fatal("round trip changed state")
	}
}
