package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/sim"
)

// TestStateDumpJSONRoundTrip runs the WIRE controller mid-workflow and
// requires its state dump — the body of wire-serve's state endpoint — to
// survive JSON unchanged.
func TestStateDumpJSONRoundTrip(t *testing.T) {
	wf := wideWF(12)
	ctrl := New(Config{})
	if _, err := sim.Run(wf, ctrl, sim.Config{
		Cloud: cloud.Config{SlotsPerInstance: 2, LagTime: 30, ChargingUnit: 300, MaxInstances: 8},
		Seed:  3,
	}); err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	dump := ctrl.State()
	if dump.Iterations == 0 || len(dump.Predictions) == 0 {
		t.Fatalf("dump not populated: %+v", dump)
	}

	b, err := json.Marshal(dump)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got StateDump
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, dump) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, dump)
	}
}

// TestDeadlineStateDelegates checks the deadline controller exposes the
// shared WIRE run state for the service's state endpoint.
func TestDeadlineStateDelegates(t *testing.T) {
	wf := wideWF(8)
	ctrl := NewDeadline(DeadlineConfig{Deadline: 4000})
	if _, err := sim.Run(wf, ctrl, sim.Config{
		Cloud: cloud.Config{SlotsPerInstance: 2, LagTime: 30, ChargingUnit: 300, MaxInstances: 8},
		Seed:  3,
	}); err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	dump := ctrl.State()
	if dump.Iterations == 0 {
		t.Fatalf("deadline state not populated: %+v", dump)
	}
	b, err := json.Marshal(dump)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got StateDump
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, dump) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, dump)
	}
}
