// Package workloads generates the workflows of the paper's evaluation
// (Table I): Epigenomics (Pegasus/Condor), TPC-H Q1 and Q6, and HiBench
// PageRank (Hadoop, replayed through the task-emulator path), each on a
// small (S) and large (L) dataset — plus the parametric linear workflows of
// §III-E / §IV-A.
//
// The paper ran recorded real executions; this package substitutes seeded
// synthetic traces whose structure (stage graph, task counts, width
// ranges), per-stage mean execution times, intra-stage skew, and input-size
// profiles match the published characterization. Where Table I's aggregate
// execution time is inconsistent with its own per-stage mean ranges (the
// TPC-H rows cannot satisfy both), the stage-mean ranges win; see
// catalog.go and EXPERIMENTS.md.
package workloads

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/dag"
	"repro/internal/dist"
)

// Link describes how a stage's tasks depend on the previous stage's.
type Link int

// Link kinds.
const (
	// Roots: no dependencies (first stage).
	Roots Link = iota
	// AllToAll: every task depends on every task of the predecessor
	// stage (a Hadoop-style stage barrier).
	AllToAll
	// OneToOne: task i depends on predecessor task i mod widthPrev
	// (a Pegasus-style pipeline fan).
	OneToOne
	// Gather: tasks partition the predecessor stage — task i depends on
	// the i-th contiguous chunk of predecessor tasks.
	Gather
)

// StageSpec declares one stage of a synthetic workflow.
type StageSpec struct {
	Name  string
	Count int
	// Link connects this stage to the immediately preceding one.
	Link Link

	// MeanExec is the stage's mean task execution time in seconds
	// (Table I's per-stage average).
	MeanExec float64
	// SkewSigma is the lognormal log-space sigma of the intra-stage
	// multiplicative skew (§II-A load skew); 0 disables skew.
	SkewSigma float64

	// InputMB is the mean per-task input size; InputGroups splits the
	// stage into that many distinct size classes (task execution time
	// scales with size, which is what Policies 4/5 exploit). Zero or one
	// group gives every task the same size.
	InputMB     float64
	InputGroups int

	// TransferMean is the mean data-transfer seconds per task, drawn
	// exponentially (the memoryless model of §III-B1); 0 disables.
	TransferMean float64
}

// Spec declares a whole synthetic workflow.
type Spec struct {
	Name string
	// DataGB is the dataset size reported in Table I (metadata only).
	DataGB float64
	// PaperAggregateHours is Table I's aggregate task execution time,
	// recorded for paper-vs-generated reporting.
	PaperAggregateHours float64
	Stages              []StageSpec
}

// Generate builds the workflow deterministically from the seed.
func (s Spec) Generate(seed int64) (*dag.Workflow, error) {
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(s.Name)

	var prev []dag.TaskID
	for si, ss := range s.Stages {
		if ss.Count <= 0 {
			return nil, fmt.Errorf("workloads: %s stage %d has count %d", s.Name, si, ss.Count)
		}
		if si == 0 && ss.Link != Roots {
			return nil, fmt.Errorf("workloads: %s first stage must be Roots", s.Name)
		}
		if si > 0 && ss.Link == Roots {
			return nil, fmt.Errorf("workloads: %s stage %d cannot be Roots", s.Name, si)
		}
		stID := b.AddStage(ss.Name)

		groups := ss.InputGroups
		if groups <= 0 {
			groups = 1
		}
		// Distinct size classes spread around the mean: class g gets
		// factor in [0.5, 1.5].
		sizeFactor := func(g int) float64 {
			if groups == 1 {
				return 1
			}
			return 0.5 + float64(g)/float64(groups-1)
		}
		var skew dist.Dist = dist.Constant{V: 1}
		if ss.SkewSigma > 0 {
			skew = dist.NewLognormalFromMean(1, ss.SkewSigma)
		}
		transfer := func() float64 { return 0 }
		if ss.TransferMean > 0 {
			td := dist.Exponential{MeanV: ss.TransferMean}
			transfer = func() float64 { return td.Sample(rng) }
		}

		cur := make([]dag.TaskID, 0, ss.Count)
		var depBuf [1]dag.TaskID
		nameBuf := make([]byte, 0, len(ss.Name)+12)
		for i := 0; i < ss.Count; i++ {
			g := i % groups
			sf := sizeFactor(g)
			size := ss.InputMB * sf
			// Execution time scales with input size and carries the
			// stage's skew; the mean over the stage stays MeanExec
			// because both factors have mean one.
			exec := ss.MeanExec * sf * skew.Sample(rng)
			if exec < 0.1 {
				exec = 0.1
			}
			// deps is borrowed (it may alias prev or depBuf) and only valid
			// until the next iteration; AddTask copies it.
			deps := linkDeps(ss.Link, i, ss.Count, prev, &depBuf)
			nameBuf = append(nameBuf[:0], ss.Name...)
			nameBuf = append(nameBuf, '-')
			nameBuf = strconv.AppendInt(nameBuf, int64(i), 10)
			id := b.AddTask(stID, string(nameBuf), exec, transfer(), size, deps...)
			b.SetOutputSize(id, size*0.8)
			cur = append(cur, id)
		}
		prev = cur
	}
	return b.Build()
}

// MustGenerate is Generate for the fixed catalog, where a failure is a
// programming bug.
func (s Spec) MustGenerate(seed int64) *dag.Workflow {
	w, err := s.Generate(seed)
	if err != nil {
		panic(err)
	}
	return w
}

// TotalTasks returns the declared task count.
func (s Spec) TotalTasks() int {
	n := 0
	for _, ss := range s.Stages {
		n += ss.Count
	}
	return n
}

// NominalWork returns the spec's total slot-seconds of work (mean exec plus
// mean transfer per task, no skew) — the catalog-level prior for cost
// estimates before any observations exist.
func (s Spec) NominalWork() float64 {
	work := 0.0
	for _, ss := range s.Stages {
		work += float64(ss.Count) * (ss.MeanExec + ss.TransferMean)
	}
	return work
}

// MeanExecTime returns the spec's work-weighted mean per-task execution
// time; 1 for a spec with no tasks, so it is always a usable divisor.
func (s Spec) MeanExecTime() float64 {
	work, n := 0.0, 0
	for _, ss := range s.Stages {
		work += float64(ss.Count) * ss.MeanExec
		n += ss.Count
	}
	if n == 0 {
		return 1
	}
	return work / float64(n)
}

// linkDeps returns task i's dependency list. The result is borrowed — it
// may alias prev or scratch and is only valid until the next call; callers
// hand it straight to Builder.AddTask, which copies.
func linkDeps(link Link, i, count int, prev []dag.TaskID, scratch *[1]dag.TaskID) []dag.TaskID {
	switch link {
	case Roots:
		return nil
	case AllToAll:
		return prev
	case OneToOne:
		if len(prev) == 0 {
			return nil
		}
		if count >= len(prev) {
			// Fan-out (or 1:1): distribute successors over
			// predecessors round-robin.
			scratch[0] = prev[i%len(prev)]
		} else {
			// Fan-in handled by Gather; OneToOne with narrower successor
			// behaves like a strided pick.
			scratch[0] = prev[i*len(prev)/count]
		}
		return scratch[:]
	case Gather:
		if len(prev) == 0 {
			return nil
		}
		lo := i * len(prev) / count
		hi := (i + 1) * len(prev) / count
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(prev) {
			hi = len(prev)
		}
		return prev[lo:hi]
	default:
		panic(fmt.Sprintf("workloads: unknown link %d", link))
	}
}

// Linear returns the single-stage workflow of §III-E/§IV-A: n identical
// tasks of execution time r seconds, no transfers, no skew, all mutually
// independent.
func Linear(n int, r float64) *dag.Workflow {
	b := dag.NewBuilder(fmt.Sprintf("linear-n%d", n))
	st := b.AddStage("stage")
	for i := 0; i < n; i++ {
		b.AddTask(st, fmt.Sprintf("t%d", i), r, 0, 1)
	}
	return b.MustBuild()
}

// LinearStages returns the multi-stage linear workflow of §III-E: stages
// stages of n identical r-second tasks, every task a predecessor of all
// tasks in the next stage.
func LinearStages(stages, n int, r float64) *dag.Workflow {
	b := dag.NewBuilder(fmt.Sprintf("linear-%dx%d", stages, n))
	var prev []dag.TaskID
	for s := 0; s < stages; s++ {
		st := b.AddStage(fmt.Sprintf("stage%d", s))
		cur := make([]dag.TaskID, 0, n)
		for i := 0; i < n; i++ {
			cur = append(cur, b.AddTask(st, fmt.Sprintf("s%dt%d", s, i), r, 0, 1, prev...))
		}
		prev = cur
	}
	return b.MustBuild()
}
