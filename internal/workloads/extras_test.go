package workloads

import (
	"testing"

	"repro/internal/dag"
)

func TestExtrasValidate(t *testing.T) {
	for _, spec := range Extras() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			wf, err := spec.Generate(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := wf.Validate(); err != nil {
				t.Fatal(err)
			}
			if wf.NumTasks() != spec.TotalTasks() {
				t.Fatalf("tasks = %d, want %d", wf.NumTasks(), spec.TotalTasks())
			}
			if wf.AggregateExecTime() <= 0 {
				t.Fatal("no work generated")
			}
		})
	}
}

func TestMontageShape(t *testing.T) {
	wf := Montage(40, 2).MustGenerate(1)
	if wf.NumStages() != 9 {
		t.Fatalf("stages = %d", wf.NumStages())
	}
	// mConcatFit gathers all mDiffFit outputs.
	concat := wf.Stage(2)
	if len(concat.Tasks) != 1 {
		t.Fatal("mConcatFit not a single task")
	}
	if got := len(wf.Task(concat.Tasks[0]).Deps); got != 40 {
		t.Fatalf("mConcatFit fan-in = %d, want 40", got)
	}
	// mBackground fans back out to full width from the single mBgModel.
	if got := len(wf.Stage(4).Tasks); got != 40 {
		t.Fatalf("mBackground width = %d", got)
	}
	// Width profile: wide, narrow spine, wide again (the double bulge).
	profile := wf.WidthProfile()
	if profile[0] != 40 || profile[4] != 40 {
		t.Fatalf("profile = %v", profile)
	}
}

func TestCyberShakeFanOut(t *testing.T) {
	wf := CyberShake(10, 5).MustGenerate(2)
	// Each ExtractSGT drives two synthesis tasks.
	for _, tid := range wf.Stage(0).Tasks {
		if got := len(wf.Task(tid).Succs); got != 2 {
			t.Fatalf("extract fan-out = %d, want 2", got)
		}
	}
	if got := len(wf.Stage(1).Tasks); got != 20 {
		t.Fatalf("synthesis width = %d", got)
	}
}

func TestLIGODoubleDiamond(t *testing.T) {
	wf := LIGOInspiral(16, 4).MustGenerate(3)
	profile := wf.WidthProfile()
	// wide, wide, narrow, wide, wide, narrow.
	want := []int{16, 16, 2, 16, 16, 2}
	if len(profile) != len(want) {
		t.Fatalf("profile = %v", profile)
	}
	for i := range want {
		if profile[i] != want[i] {
			t.Fatalf("profile = %v, want %v", profile, want)
		}
	}
}

func TestSIPHTGather(t *testing.T) {
	wf := SIPHT(12).MustGenerate(4)
	// SRNA gathers all FindTerm tasks.
	srna := wf.Stage(4)
	if got := len(wf.Task(srna.Tasks[0]).Deps); got != 12 {
		t.Fatalf("SRNA fan-in = %d", got)
	}
}

func TestExtrasMinimumWidths(t *testing.T) {
	// Degenerate widths are clamped rather than producing broken DAGs.
	for _, spec := range []Spec{Montage(1, 1), CyberShake(0, 1), LIGOInspiral(1, 1), SIPHT(1)} {
		wf, err := spec.Generate(1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := wf.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestExtrasRunnable(t *testing.T) {
	// The extras must execute end to end on the simulator substrate; use
	// the critical path as a sanity floor.
	for _, spec := range Extras() {
		wf := spec.MustGenerate(7)
		if wf.CriticalPathExec() <= 0 {
			t.Fatalf("%s: empty critical path", spec.Name)
		}
		_ = dag.TaskID(0)
	}
}
