package workloads

// Extra workflow families beyond the paper's Table I. These follow the
// published shapes of the Pegasus workflow gallery characterized by Juve et
// al. (the paper's reference [17]): Montage, CyberShake, LIGO Inspiral and
// SIPHT. They exercise DAG structures the Table I set does not — paired
// fan-ins, double-diamond pipelines, and very wide gathers — and are used
// by tests and available to library users; they carry no PaperRow because
// the paper does not evaluate them.

import "fmt"

// Montage returns an astronomy-mosaic workflow with the Montage shape:
// projection fan → difference fit → a serial modelling spine → background
// correction fan → a serial assembly tail. width is the number of input
// images (mProjectPP tasks).
func Montage(width int, dataGB float64) Spec {
	if width < 2 {
		width = 2
	}
	imgMB := dataGB * 1024 / float64(width)
	return Spec{
		Name:   fmt.Sprintf("montage-%d", width),
		DataGB: dataGB,
		Stages: []StageSpec{
			{Name: "mProjectPP", Count: width, Link: Roots, MeanExec: 12, SkewSigma: 0.06, InputMB: imgMB, InputGroups: 3, TransferMean: 1},
			{Name: "mDiffFit", Count: width, Link: OneToOne, MeanExec: 6, SkewSigma: 0.06, InputMB: imgMB / 2, InputGroups: 3, TransferMean: 0.5},
			{Name: "mConcatFit", Count: 1, Link: Gather, MeanExec: 25, SkewSigma: 0.05, InputMB: imgMB * float64(width) / 8, TransferMean: 1},
			{Name: "mBgModel", Count: 1, Link: OneToOne, MeanExec: 40, SkewSigma: 0.05, InputMB: 2, TransferMean: 0.5},
			{Name: "mBackground", Count: width, Link: OneToOne, MeanExec: 4, SkewSigma: 0.06, InputMB: imgMB, InputGroups: 3, TransferMean: 0.5},
			{Name: "mImgtbl", Count: 1, Link: Gather, MeanExec: 10, SkewSigma: 0.05, InputMB: 1, TransferMean: 0.5},
			{Name: "mAdd", Count: 1, Link: OneToOne, MeanExec: 60, SkewSigma: 0.05, InputMB: imgMB * float64(width) / 4, TransferMean: 2},
			{Name: "mShrink", Count: 1, Link: OneToOne, MeanExec: 8, SkewSigma: 0.05, InputMB: 20, TransferMean: 0.5},
			{Name: "mJPEG", Count: 1, Link: OneToOne, MeanExec: 3, SkewSigma: 0.05, InputMB: 5, TransferMean: 0.5},
		},
	}
}

// CyberShake returns a seismic-hazard workflow: SGT extraction fans into
// per-rupture seismogram synthesis and peak-value calculation, gathered by
// two zip tasks. width is the number of extraction tasks; each drives two
// synthesis tasks.
func CyberShake(width int, dataGB float64) Spec {
	if width < 2 {
		width = 2
	}
	sgtMB := dataGB * 1024 / float64(width)
	return Spec{
		Name:   fmt.Sprintf("cybershake-%d", width),
		DataGB: dataGB,
		Stages: []StageSpec{
			{Name: "ExtractSGT", Count: width, Link: Roots, MeanExec: 45, SkewSigma: 0.06, InputMB: sgtMB, InputGroups: 4, TransferMean: 2},
			{Name: "SeismogramSynthesis", Count: 2 * width, Link: OneToOne, MeanExec: 30, SkewSigma: 0.06, InputMB: sgtMB / 4, InputGroups: 4, TransferMean: 1},
			{Name: "PeakValCalc", Count: 2 * width, Link: OneToOne, MeanExec: 1.5, SkewSigma: 0.06, InputMB: 0.2, TransferMean: 0.2},
			{Name: "ZipSeis", Count: 1, Link: Gather, MeanExec: 20, SkewSigma: 0.05, InputMB: sgtMB, TransferMean: 1},
			{Name: "ZipPSA", Count: 1, Link: OneToOne, MeanExec: 15, SkewSigma: 0.05, InputMB: 5, TransferMean: 1},
		},
	}
}

// LIGOInspiral returns a gravitational-wave analysis workflow: the classic
// double diamond — template bank fan, inspiral fan, coincidence gather,
// trigger bank fan, second inspiral fan, final coincidence.
func LIGOInspiral(width int, dataGB float64) Spec {
	if width < 2 {
		width = 2
	}
	segMB := dataGB * 1024 / float64(width)
	gathers := width / 8
	if gathers < 1 {
		gathers = 1
	}
	return Spec{
		Name:   fmt.Sprintf("inspiral-%d", width),
		DataGB: dataGB,
		Stages: []StageSpec{
			{Name: "TmpltBank", Count: width, Link: Roots, MeanExec: 18, SkewSigma: 0.06, InputMB: segMB, InputGroups: 4, TransferMean: 1},
			{Name: "Inspiral", Count: width, Link: OneToOne, MeanExec: 70, SkewSigma: 0.06, InputMB: segMB, InputGroups: 4, TransferMean: 1},
			{Name: "Thinca", Count: gathers, Link: Gather, MeanExec: 6, SkewSigma: 0.05, InputMB: 2, TransferMean: 0.5},
			{Name: "TrigBank", Count: width, Link: OneToOne, MeanExec: 5, SkewSigma: 0.06, InputMB: 1, TransferMean: 0.5},
			{Name: "Inspiral2", Count: width, Link: OneToOne, MeanExec: 55, SkewSigma: 0.06, InputMB: segMB, InputGroups: 4, TransferMean: 1},
			{Name: "Thinca2", Count: gathers, Link: Gather, MeanExec: 6, SkewSigma: 0.05, InputMB: 2, TransferMean: 0.5},
		},
	}
}

// SIPHT returns a bioinformatics sRNA-search workflow: many independent
// wide search stages feeding one concatenation and an annotation tail.
func SIPHT(width int) Spec {
	if width < 2 {
		width = 2
	}
	return Spec{
		Name:   fmt.Sprintf("sipht-%d", width),
		DataGB: 0.1,
		Stages: []StageSpec{
			{Name: "Patser", Count: width, Link: Roots, MeanExec: 2, SkewSigma: 0.06, InputMB: 1, InputGroups: 2, TransferMean: 0.2},
			{Name: "PatserConcat", Count: 1, Link: Gather, MeanExec: 1, SkewSigma: 0.05, InputMB: 1, TransferMean: 0.2},
			{Name: "Blast", Count: width, Link: OneToOne, MeanExec: 35, SkewSigma: 0.06, InputMB: 4, InputGroups: 3, TransferMean: 0.5},
			{Name: "FindTerm", Count: width, Link: OneToOne, MeanExec: 12, SkewSigma: 0.06, InputMB: 2, InputGroups: 2, TransferMean: 0.5},
			{Name: "SRNA", Count: 1, Link: Gather, MeanExec: 25, SkewSigma: 0.05, InputMB: 8, TransferMean: 0.5},
			{Name: "Annotate", Count: 1, Link: OneToOne, MeanExec: 10, SkewSigma: 0.05, InputMB: 2, TransferMean: 0.2},
		},
	}
}

// Extras returns a default-sized instance of each extra workflow family.
func Extras() []Spec {
	return []Spec{
		Montage(50, 2),
		CyberShake(25, 10),
		LIGOInspiral(24, 4),
		SIPHT(30),
	}
}
