package workloads

import "repro/internal/dag"

// PaperRow records the Table I characterization of a run, for
// paper-vs-generated reporting (experiment E1).
type PaperRow struct {
	DataGB    float64
	Stages    int
	AggHours  float64
	Tasks     int
	WidthLo   int
	WidthHi   int
	MeanLo    float64
	MeanHi    float64
	TaskTypes string
}

// Run is one catalogued workflow run (a workflow × dataset pair).
type Run struct {
	// Key is the stable identifier, e.g. "genome-s".
	Key string
	// Display matches Table I's run name, e.g. "Genome S".
	Display string
	// Workflow and Framework name the source application.
	Workflow  string
	Framework string
	Spec      Spec
	Paper     PaperRow
}

// Generate builds the run's workflow for the given seed.
func (r Run) Generate(seed int64) *dag.Workflow { return r.Spec.MustGenerate(seed) }

// Catalog returns the eight Table I runs in table order.
//
// Structural notes (documented substitutions):
//   - Epigenomics follows the published Pegasus shape (split → four wide
//     per-lane pipelines → merge → index → pileup); mapMerge has 2 tasks so
//     the totals land exactly on 405/4005.
//   - The Hadoop workflows use all-to-all stage barriers, as in the
//     Hadoop-to-Pegasus transformation of §IV-C2.
//   - The TPC-H rows of Table I are internally inconsistent: task counts ×
//     max stage-mean < the published aggregate hours. The stage-mean ranges
//     win here, so generated TPC-H aggregates fall below the paper's column
//     (recorded in PaperRow for the comparison table).
//   - TPCH-6 L lists a max stage width of 118 with 118 total tasks over 2
//     stages, which is unsatisfiable; 117+1 is used.
func Catalog() []Run {
	return []Run{
		{
			Key: "genome-s", Display: "Genome S", Workflow: "Epigenomics", Framework: "Condor",
			Spec: Spec{
				Name: "epigenomics-s", DataGB: 0.002, PaperAggregateHours: 1.433,
				Stages: []StageSpec{
					{Name: "fastqSplit", Count: 1, Link: Roots, MeanExec: 5, SkewSigma: 0.06, InputMB: 2, TransferMean: 0.5},
					{Name: "filterContams", Count: 100, Link: OneToOne, MeanExec: 10, SkewSigma: 0.06, InputMB: 0.02, InputGroups: 4, TransferMean: 0.5},
					{Name: "sol2sanger", Count: 100, Link: OneToOne, MeanExec: 4, SkewSigma: 0.06, InputMB: 0.018, InputGroups: 4, TransferMean: 0.5},
					{Name: "fastq2bfq", Count: 100, Link: OneToOne, MeanExec: 6, SkewSigma: 0.06, InputMB: 0.016, InputGroups: 4, TransferMean: 0.5},
					{Name: "map", Count: 100, Link: OneToOne, MeanExec: 30, SkewSigma: 0.06, InputMB: 0.015, InputGroups: 4, TransferMean: 1},
					{Name: "mapMerge", Count: 2, Link: Gather, MeanExec: 50, SkewSigma: 0.06, InputMB: 0.8, TransferMean: 1},
					{Name: "maqIndex", Count: 1, Link: Gather, MeanExec: 25, SkewSigma: 0.06, InputMB: 1.5, TransferMean: 1},
					{Name: "pileup", Count: 1, Link: OneToOne, MeanExec: 30, SkewSigma: 0.06, InputMB: 1.5, TransferMean: 1},
				},
			},
			Paper: PaperRow{DataGB: 0.002, Stages: 8, AggHours: 1.433, Tasks: 405, WidthLo: 1, WidthHi: 100, MeanLo: 1, MeanHi: 54.88, TaskTypes: "short/medium/long"},
		},
		{
			Key: "genome-l", Display: "Genome L", Workflow: "Epigenomics", Framework: "Condor",
			Spec: Spec{
				Name: "epigenomics-l", DataGB: 0.013, PaperAggregateHours: 13.895,
				Stages: []StageSpec{
					{Name: "fastqSplit", Count: 1, Link: Roots, MeanExec: 5, SkewSigma: 0.06, InputMB: 13, TransferMean: 0.5},
					{Name: "filterContams", Count: 1000, Link: OneToOne, MeanExec: 10, SkewSigma: 0.06, InputMB: 0.013, InputGroups: 4, TransferMean: 0.5},
					{Name: "sol2sanger", Count: 1000, Link: OneToOne, MeanExec: 4, SkewSigma: 0.06, InputMB: 0.012, InputGroups: 4, TransferMean: 0.5},
					{Name: "fastq2bfq", Count: 1000, Link: OneToOne, MeanExec: 6, SkewSigma: 0.06, InputMB: 0.011, InputGroups: 4, TransferMean: 0.5},
					{Name: "map", Count: 1000, Link: OneToOne, MeanExec: 29.9, SkewSigma: 0.06, InputMB: 0.01, InputGroups: 4, TransferMean: 1},
					{Name: "mapMerge", Count: 2, Link: Gather, MeanExec: 50, SkewSigma: 0.06, InputMB: 5, TransferMean: 1},
					{Name: "maqIndex", Count: 1, Link: Gather, MeanExec: 8, SkewSigma: 0.06, InputMB: 10, TransferMean: 1},
					{Name: "pileup", Count: 1, Link: OneToOne, MeanExec: 8, SkewSigma: 0.06, InputMB: 10, TransferMean: 1},
				},
			},
			Paper: PaperRow{DataGB: 0.013, Stages: 8, AggHours: 13.895, Tasks: 4005, WidthLo: 1, WidthHi: 1000, MeanLo: 1, MeanHi: 57.57, TaskTypes: "short/medium/long"},
		},
		{
			Key: "tpch1-s", Display: "TPCH-1 S", Workflow: "TPC-H/TPCH-1", Framework: "Hadoop",
			Spec: Spec{
				Name: "tpch1-s", DataGB: 7.27, PaperAggregateHours: 0.402,
				Stages: []StageSpec{
					{Name: "map1", Count: 32, Link: Roots, MeanExec: 13, SkewSigma: 0.06, InputMB: 227, InputGroups: 4, TransferMean: 1},
					{Name: "reduce1", Count: 16, Link: AllToAll, MeanExec: 11, SkewSigma: 0.06, InputMB: 110, InputGroups: 3, TransferMean: 1},
					{Name: "map2", Count: 13, Link: AllToAll, MeanExec: 9, SkewSigma: 0.06, InputMB: 60, InputGroups: 3, TransferMean: 1},
					{Name: "reduce2", Count: 1, Link: AllToAll, MeanExec: 5, SkewSigma: 0.06, InputMB: 20, TransferMean: 1},
				},
			},
			Paper: PaperRow{DataGB: 7.27, Stages: 4, AggHours: 0.402, Tasks: 62, WidthLo: 1, WidthHi: 32, MeanLo: 2, MeanHi: 13.24, TaskTypes: "short/medium"},
		},
		{
			Key: "tpch1-l", Display: "TPCH-1 L", Workflow: "TPC-H/TPCH-1", Framework: "Hadoop",
			Spec: Spec{
				Name: "tpch1-l", DataGB: 29.53, PaperAggregateHours: 5.22,
				Stages: []StageSpec{
					{Name: "map1", Count: 124, Link: Roots, MeanExec: 14.8, SkewSigma: 0.06, InputMB: 238, InputGroups: 4, TransferMean: 1},
					{Name: "reduce1", Count: 62, Link: AllToAll, MeanExec: 12, SkewSigma: 0.06, InputMB: 115, InputGroups: 3, TransferMean: 1},
					{Name: "map2", Count: 42, Link: AllToAll, MeanExec: 9, SkewSigma: 0.06, InputMB: 60, InputGroups: 3, TransferMean: 1},
					{Name: "reduce2", Count: 1, Link: AllToAll, MeanExec: 5, SkewSigma: 0.06, InputMB: 20, TransferMean: 1},
				},
			},
			Paper: PaperRow{DataGB: 29.53, Stages: 4, AggHours: 5.22, Tasks: 229, WidthLo: 1, WidthHi: 124, MeanLo: 1.05, MeanHi: 14.89, TaskTypes: "short/medium"},
		},
		{
			Key: "tpch6-s", Display: "TPCH-6 S", Workflow: "TPC-H/TPCH-6", Framework: "Hadoop",
			Spec: Spec{
				Name: "tpch6-s", DataGB: 7.27, PaperAggregateHours: 0.162,
				Stages: []StageSpec{
					{Name: "map", Count: 32, Link: Roots, MeanExec: 7, SkewSigma: 0.06, InputMB: 227, InputGroups: 4, TransferMean: 1},
					{Name: "reduce", Count: 1, Link: AllToAll, MeanExec: 3, SkewSigma: 0.06, InputMB: 15, TransferMean: 1},
				},
			},
			Paper: PaperRow{DataGB: 7.27, Stages: 2, AggHours: 0.162, Tasks: 33, WidthLo: 1, WidthHi: 32, MeanLo: 2, MeanHi: 7.3, TaskTypes: "short"},
		},
		{
			Key: "tpch6-l", Display: "TPCH-6 L", Workflow: "TPC-H/TPCH-6", Framework: "Hadoop",
			Spec: Spec{
				Name: "tpch6-l", DataGB: 29.53, PaperAggregateHours: 1.136,
				Stages: []StageSpec{
					{Name: "map", Count: 117, Link: Roots, MeanExec: 8.4, SkewSigma: 0.06, InputMB: 252, InputGroups: 4, TransferMean: 1},
					{Name: "reduce", Count: 1, Link: AllToAll, MeanExec: 4, SkewSigma: 0.06, InputMB: 20, TransferMean: 1},
				},
			},
			Paper: PaperRow{DataGB: 29.53, Stages: 2, AggHours: 1.136, Tasks: 118, WidthLo: 1, WidthHi: 118, MeanLo: 3, MeanHi: 8.43, TaskTypes: "short"},
		},
		{
			Key: "pagerank-s", Display: "PageRank S", Workflow: "PageRank/Intel HiBench", Framework: "Hadoop",
			Spec: Spec{
				Name: "pagerank-s", DataGB: 0.26, PaperAggregateHours: 0.661,
				Stages: pagerankStages(
					[]int{18, 6, 12, 6, 12, 6, 12, 6, 12, 6, 12, 7},
					[]float64{21.5, 19, 21.5, 19, 21.5, 19, 21.5, 19, 21.5, 19, 21.5, 19},
					22, 0.06,
				),
			},
			Paper: PaperRow{DataGB: 0.26, Stages: 12, AggHours: 0.661, Tasks: 115, WidthLo: 6, WidthHi: 18, MeanLo: 5.28, MeanHi: 21.5, TaskTypes: "short/medium"},
		},
		{
			Key: "pagerank-l", Display: "PageRank L", Workflow: "PageRank/Intel HiBench", Framework: "Hadoop",
			Spec: Spec{
				Name: "pagerank-l", DataGB: 2.88, PaperAggregateHours: 5.415,
				Stages: pagerankStages(
					[]int{60, 6, 30, 12, 30, 12, 30, 12, 30, 12, 30, 49},
					[]float64{80, 27, 70, 27, 70, 27, 70, 27, 70, 27, 70, 55},
					49, 0.06,
				),
			},
			Paper: PaperRow{DataGB: 2.88, Stages: 12, AggHours: 5.415, Tasks: 313, WidthLo: 6, WidthHi: 60, MeanLo: 26.61, MeanHi: 166.18, TaskTypes: "medium/long"},
		},
	}
}

// pagerankStages builds the iterative map/reduce chain of the HiBench
// PageRank job: widths and means per stage, all-to-all barriers.
func pagerankStages(widths []int, means []float64, inputMB, sigma float64) []StageSpec {
	out := make([]StageSpec, len(widths))
	for i := range widths {
		link := AllToAll
		if i == 0 {
			link = Roots
		}
		name := "map"
		if i%2 == 1 {
			name = "reduce"
		}
		out[i] = StageSpec{
			Name:         name,
			Count:        widths[i],
			Link:         link,
			MeanExec:     means[i],
			SkewSigma:    sigma,
			InputMB:      inputMB,
			InputGroups:  3,
			TransferMean: 1,
		}
	}
	return out
}

// ByKey finds a catalogued run by its key.
func ByKey(key string) (Run, bool) {
	for _, r := range Catalog() {
		if r.Key == key {
			return r, true
		}
	}
	return Run{}, false
}

// Keys returns the catalogue keys in table order.
func Keys() []string {
	runs := Catalog()
	out := make([]string, len(runs))
	for i, r := range runs {
		out[i] = r.Key
	}
	return out
}
