package workloads

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/simtime"
)

func TestCatalogMatchesTableI(t *testing.T) {
	for _, r := range Catalog() {
		r := r
		t.Run(r.Key, func(t *testing.T) {
			wf := r.Generate(1)
			if err := wf.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := wf.NumTasks(); got != r.Paper.Tasks {
				t.Errorf("tasks = %d, want %d", got, r.Paper.Tasks)
			}
			if got := wf.NumStages(); got != r.Paper.Stages {
				t.Errorf("stages = %d, want %d", got, r.Paper.Stages)
			}
			for _, w := range wf.StageWidths() {
				if w < r.Paper.WidthLo || w > r.Paper.WidthHi {
					t.Errorf("stage width %d outside [%d,%d]", w, r.Paper.WidthLo, r.Paper.WidthHi)
				}
			}
			// Stage means should land within (a small sampling slack
			// of) the published per-stage range.
			for sid := range wf.Stages {
				m := wf.StageMeanExecTime(dag.StageID(sid))
				lo := r.Paper.MeanLo * 0.5
				hi := r.Paper.MeanHi * 1.5
				if m < lo || m > hi {
					t.Errorf("stage %d mean %.2f outside [%.2f,%.2f]", sid, m, lo, hi)
				}
			}
		})
	}
}

func TestEpigenomicsAggregatesMatchPaper(t *testing.T) {
	// The Epigenomics rows are internally consistent in Table I, so the
	// generated aggregate should match the paper within sampling noise.
	for _, key := range []string{"genome-s", "genome-l"} {
		r, ok := ByKey(key)
		if !ok {
			t.Fatalf("missing %s", key)
		}
		wf := r.Generate(2)
		gotHours := wf.AggregateExecTime() / simtime.Hour
		if math.Abs(gotHours-r.Paper.AggHours)/r.Paper.AggHours > 0.15 {
			t.Errorf("%s aggregate %.3fh, paper %.3fh", key, gotHours, r.Paper.AggHours)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	r, _ := ByKey("tpch1-s")
	a := r.Generate(7)
	b := r.Generate(7)
	for i := range a.Tasks {
		if a.Tasks[i].ExecTime != b.Tasks[i].ExecTime || a.Tasks[i].InputSize != b.Tasks[i].InputSize {
			t.Fatalf("task %d differs across same-seed generations", i)
		}
	}
	c := r.Generate(8)
	same := true
	for i := range a.Tasks {
		if a.Tasks[i].ExecTime != c.Tasks[i].ExecTime {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestInputGroupsCreateDistinctSizes(t *testing.T) {
	r, _ := ByKey("tpch1-s")
	wf := r.Generate(3)
	sizes := map[float64]int{}
	for _, tid := range wf.Stage(0).Tasks {
		sizes[wf.Task(tid).InputSize]++
	}
	if len(sizes) != 4 {
		t.Fatalf("map stage has %d distinct sizes, want 4 groups", len(sizes))
	}
}

func TestExecCorrelatesWithInputSize(t *testing.T) {
	// Bigger inputs must take longer on average (what Policy 5 learns).
	r, _ := ByKey("tpch6-l")
	wf := r.Generate(4)
	bySize := map[float64][]float64{}
	for _, tid := range wf.Stage(0).Tasks {
		task := wf.Task(tid)
		bySize[task.InputSize] = append(bySize[task.InputSize], task.ExecTime)
	}
	var minSize, maxSize float64 = math.Inf(1), 0
	for s := range bySize {
		if s < minSize {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	meanOf := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	if meanOf(bySize[maxSize]) <= meanOf(bySize[minSize]) {
		t.Fatalf("exec not correlated with size: small=%.2f large=%.2f",
			meanOf(bySize[minSize]), meanOf(bySize[maxSize]))
	}
}

func TestEpigenomicsShape(t *testing.T) {
	r, _ := ByKey("genome-s")
	wf := r.Generate(5)
	// The split task fans out to all filterContams tasks.
	split := wf.Task(0)
	if len(split.Succs) != 100 {
		t.Fatalf("split fan-out = %d, want 100", len(split.Succs))
	}
	// Pipeline stages are 1:1 — every filter task has exactly one
	// successor in sol2sanger.
	for _, tid := range wf.Stage(1).Tasks {
		if n := len(wf.Task(tid).Succs); n != 1 {
			t.Fatalf("filter task %d has %d succs, want 1", tid, n)
		}
	}
	// The pipelines expose width-100 parallelism in the profile.
	profile := wf.WidthProfile()
	max := 0
	for _, w := range profile {
		if w > max {
			max = w
		}
	}
	if max != 100 {
		t.Fatalf("max profile width = %d, want 100", max)
	}
}

func TestHadoopBarriers(t *testing.T) {
	r, _ := ByKey("tpch1-s")
	wf := r.Generate(6)
	// Every reduce1 task depends on all 32 map1 tasks.
	for _, tid := range wf.Stage(1).Tasks {
		if n := len(wf.Task(tid).Deps); n != 32 {
			t.Fatalf("reduce task has %d deps, want 32", n)
		}
	}
}

func TestLinear(t *testing.T) {
	wf := Linear(10, 30)
	if wf.NumTasks() != 10 || wf.NumStages() != 1 {
		t.Fatalf("shape = %d/%d", wf.NumTasks(), wf.NumStages())
	}
	for _, task := range wf.Tasks {
		if task.ExecTime != 30 || task.TransferTime != 0 || len(task.Deps) != 0 {
			t.Fatalf("task = %+v", task)
		}
	}
}

func TestLinearStages(t *testing.T) {
	wf := LinearStages(3, 4, 10)
	if wf.NumTasks() != 12 || wf.NumStages() != 3 {
		t.Fatalf("shape = %d/%d", wf.NumTasks(), wf.NumStages())
	}
	for _, tid := range wf.Stage(1).Tasks {
		if len(wf.Task(tid).Deps) != 4 {
			t.Fatal("stage barrier missing")
		}
	}
	if err := wf.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := Spec{Name: "bad", Stages: []StageSpec{{Name: "x", Count: 0, Link: Roots}}}
	if _, err := bad.Generate(1); err == nil {
		t.Fatal("zero-count stage accepted")
	}
	bad2 := Spec{Name: "bad2", Stages: []StageSpec{{Name: "x", Count: 1, Link: AllToAll}}}
	if _, err := bad2.Generate(1); err == nil {
		t.Fatal("non-root first stage accepted")
	}
	bad3 := Spec{Name: "bad3", Stages: []StageSpec{
		{Name: "a", Count: 1, Link: Roots},
		{Name: "b", Count: 1, Link: Roots},
	}}
	if _, err := bad3.Generate(1); err == nil {
		t.Fatal("root mid-stage accepted")
	}
}

func TestKeysAndByKey(t *testing.T) {
	keys := Keys()
	if len(keys) != 8 {
		t.Fatalf("catalogue has %d runs, want 8", len(keys))
	}
	for _, k := range keys {
		if _, ok := ByKey(k); !ok {
			t.Fatalf("ByKey(%q) failed", k)
		}
	}
	if _, ok := ByKey("nope"); ok {
		t.Fatal("unknown key found")
	}
}

func TestTotalTasks(t *testing.T) {
	r, _ := ByKey("genome-s")
	if r.Spec.TotalTasks() != 405 {
		t.Fatalf("TotalTasks = %d", r.Spec.TotalTasks())
	}
}

// TestNominalEstimates pins the catalog-level priors the tenancy arbiter
// seeds its remaining-work and cost estimates from.
func TestNominalEstimates(t *testing.T) {
	spec := Spec{Stages: []StageSpec{
		{Count: 4, MeanExec: 10, TransferMean: 2},
		{Count: 1, MeanExec: 8},
	}}
	if got, want := spec.NominalWork(), 4*(10+2.0)+8; got != want {
		t.Errorf("NominalWork = %v, want %v", got, want)
	}
	if got, want := spec.MeanExecTime(), (4*10+8.0)/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanExecTime = %v, want %v", got, want)
	}
	if got := (Spec{}).MeanExecTime(); got != 1 {
		t.Errorf("empty-spec MeanExecTime = %v, want the usable-divisor default 1", got)
	}
}
