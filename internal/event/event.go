// Package event provides the discrete-event engine underneath the cluster
// and lookahead simulators.
//
// The engine maintains a future event list ordered by (time, priority,
// sequence). Handlers run synchronously; they may schedule further events.
// Determinism matters for reproducible experiments, so ties are broken by a
// caller-supplied priority and then by insertion order.
package event

import (
	"container/heap"
	"fmt"

	"repro/internal/simtime"
)

// Handler is the action executed when an event fires. The engine passes
// itself so handlers can schedule follow-up events, and the fire time.
type Handler func(e *Engine, now simtime.Time)

// Priority orders events that fire at the same instant. Lower values run
// first. The cluster simulator uses this to guarantee, e.g., that instance
// activations are processed before the control tick of the same instant.
type Priority int

// Standard priorities used across the simulators. Task completions must
// fire before instance terminations at the same instant: a task finishing
// exactly at its instance's charging boundary has completed, not been
// killed.
const (
	PriInstance  Priority = 0 // instance activations
	PriTask      Priority = 1 // task completions
	PriTerminate Priority = 2 // instance terminations
	PriControl   Priority = 3 // MAPE control ticks
	PriDefault   Priority = 4
)

// Event is a scheduled occurrence. It is exposed so callers can cancel
// pending events.
type Event struct {
	time     simtime.Time
	priority Priority
	seq      uint64
	handler  Handler
	index    int // heap index, -1 once removed
	canceled bool
	name     string
}

// Time returns the instant the event is scheduled to fire.
func (ev *Event) Time() simtime.Time { return ev.time }

// Name returns the diagnostic label given at scheduling time.
func (ev *Event) Name() string { return ev.name }

// Canceled reports whether the event was canceled before firing.
func (ev *Event) Canceled() bool { return ev.canceled }

// Engine is a discrete-event simulation driver. The zero value is not
// usable; call New.
type Engine struct {
	now     simtime.Time
	queue   eventHeap
	nextSeq uint64
	fired   uint64
	// MaxEvents bounds the number of events processed by Run as a guard
	// against runaway simulations. Zero means no bound.
	MaxEvents uint64

	// Events are allocated from chunked slabs so a simulation costs one
	// allocation per arenaChunk events instead of one per event, and a
	// Reset() lets a long-lived engine recycle the slabs wholesale.
	chunks [][]Event
	inUse  int // events handed out since the last Reset
}

// arenaChunk is the slab granularity of the event arena.
const arenaChunk = 256

// alloc hands out the next event slot from the arena, growing it by one
// chunk when exhausted. Slots are cleared on reuse so recycled events carry
// no stale handler references.
func (e *Engine) alloc() *Event {
	ci := e.inUse / arenaChunk
	if ci == len(e.chunks) {
		e.chunks = append(e.chunks, make([]Event, arenaChunk))
	}
	ev := &e.chunks[ci][e.inUse%arenaChunk]
	e.inUse++
	*ev = Event{}
	return ev
}

// Reset returns the engine to its initial state — clock at zero, empty
// queue, zero fired count — while keeping the event slabs and heap capacity
// for reuse. Every *Event handle obtained before the call is invalidated:
// the engine owns that memory and will recycle it, so callers must drop
// retained handles (Cancel on one after Reset corrupts the queue).
func (e *Engine) Reset() {
	for i := range e.queue {
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.nextSeq = 0
	e.fired = 0
	e.inUse = 0
}

// New returns an engine whose clock starts at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Len returns the number of pending (non-canceled) events.
func (e *Engine) Len() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules h to run at absolute time t with the given priority and a
// diagnostic name. Scheduling in the past panics: it always indicates a
// simulator bug, and silently clamping would corrupt causality.
func (e *Engine) At(t simtime.Time, pri Priority, name string, h Handler) *Event {
	if simtime.Before(t, e.now) {
		panic(fmt.Sprintf("event: scheduling %q at %v before now %v", name, t, e.now))
	}
	if t < e.now {
		t = e.now // within tolerance: clamp to now
	}
	ev := e.alloc()
	ev.time, ev.priority, ev.seq, ev.handler, ev.name = t, pri, e.nextSeq, h, name
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules h to run d seconds from now.
func (e *Engine) After(d simtime.Duration, pri Priority, name string, h Handler) *Event {
	return e.At(e.now+d, pri, name, h)
}

// Cancel marks a pending event so it will not fire. Canceling an already
// fired or already canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
}

// Step fires the next pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.fired++
		h := ev.handler
		ev.handler = nil // release the closure as soon as it has fired
		h(e, e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains or until (when set) the horizon
// is reached; events scheduled at or before the horizon still fire. It
// returns an error when MaxEvents is exceeded, which indicates a
// non-terminating simulation.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil fires events whose time is at or before horizon. A negative
// horizon means run to completion. The clock ends at the later of its
// current value and the last fired event (it does not jump to the horizon).
func (e *Engine) RunUntil(horizon simtime.Time) error {
	for e.queue.Len() > 0 {
		if e.MaxEvents > 0 && e.fired >= e.MaxEvents {
			return fmt.Errorf("event: exceeded MaxEvents=%d at t=%v (next %q)", e.MaxEvents, e.now, e.queue[0].name)
		}
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if horizon >= 0 && simtime.After(next.time, horizon) {
			return nil
		}
		e.Step()
	}
	return nil
}

// Peek returns the time of the next pending event, or ok=false when none.
func (e *Engine) Peek() (t simtime.Time, ok bool) {
	for e.queue.Len() > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].time, true
	}
	return 0, false
}

// eventHeap implements container/heap ordered by (time, priority, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
