package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestOrderByTime(t *testing.T) {
	e := New()
	var got []int
	e.At(3, PriDefault, "c", func(*Engine, simtime.Time) { got = append(got, 3) })
	e.At(1, PriDefault, "a", func(*Engine, simtime.Time) { got = append(got, 1) })
	e.At(2, PriDefault, "b", func(*Engine, simtime.Time) { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestTieBreakByPriorityThenSeq(t *testing.T) {
	e := New()
	var got []string
	e.At(5, PriControl, "control", func(*Engine, simtime.Time) { got = append(got, "control") })
	e.At(5, PriTask, "task2", func(*Engine, simtime.Time) { got = append(got, "task2") })
	e.At(5, PriInstance, "inst", func(*Engine, simtime.Time) { got = append(got, "inst") })
	e.At(5, PriTask, "task3", func(*Engine, simtime.Time) { got = append(got, "task3") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"inst", "task2", "task3", "control"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestHandlersScheduleMore(t *testing.T) {
	e := New()
	count := 0
	var tick func(*Engine, simtime.Time)
	tick = func(en *Engine, now simtime.Time) {
		count++
		if count < 10 {
			en.After(1, PriDefault, "tick", tick)
		}
	}
	e.At(0, PriDefault, "tick", tick)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 9 {
		t.Fatalf("Now = %v, want 9", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, PriDefault, "x", func(*Engine, simtime.Time) { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
}

func TestCancelFromHandler(t *testing.T) {
	e := New()
	fired := false
	victim := e.At(2, PriDefault, "victim", func(*Engine, simtime.Time) { fired = true })
	e.At(1, PriDefault, "killer", func(en *Engine, now simtime.Time) { en.Cancel(victim) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("victim fired despite cancel")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(5, PriDefault, "x", func(*Engine, simtime.Time) {})
	if !e.Step() {
		t.Fatal("no event")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(1, PriDefault, "past", func(*Engine, simtime.Time) {})
}

func TestRunUntilHorizon(t *testing.T) {
	e := New()
	var got []simtime.Time
	for _, tm := range []simtime.Time{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, PriDefault, "x", func(*Engine, simtime.Time) { got = append(got, tm) })
	}
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("fired %v, want first 3", got)
	}
	if next, ok := e.Peek(); !ok || next != 4 {
		t.Fatalf("Peek = %v,%v want 4,true", next, ok)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("fired %v, want all 5", got)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	e := New()
	e.MaxEvents = 100
	var tick func(*Engine, simtime.Time)
	tick = func(en *Engine, now simtime.Time) { en.After(1, PriDefault, "tick", tick) }
	e.At(0, PriDefault, "tick", tick)
	if err := e.Run(); err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

func TestLenAndFired(t *testing.T) {
	e := New()
	a := e.At(1, PriDefault, "a", func(*Engine, simtime.Time) {})
	e.At(2, PriDefault, "b", func(*Engine, simtime.Time) {})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	e.Cancel(a)
	if e.Len() != 1 {
		t.Fatalf("Len after cancel = %d, want 1", e.Len())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestFiringOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var fired []simtime.Time
		times := make([]simtime.Time, n)
		for i := 0; i < n; i++ {
			times[i] = float64(rng.Intn(100))
			tm := times[i]
			e.At(tm, PriDefault, "x", func(*Engine, simtime.Time) { fired = append(fired, tm) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return len(fired) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
