package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/sim"
)

func runTraced(t *testing.T, ctrl sim.Controller, init int) (*Recorder, *sim.Result) {
	t.Helper()
	b := dag.NewBuilder("traced")
	s0 := b.AddStage("a")
	s1 := b.AddStage("b")
	r := b.AddTask(s0, "r", 20, 0, 1)
	for i := 0; i < 4; i++ {
		b.AddTask(s1, "w", 60, 0, 1, r)
	}
	wf := b.MustBuild()
	rec := NewRecorder()
	res, err := sim.Run(wf, ctrl, sim.Config{
		Cloud:            cloud.Config{SlotsPerInstance: 2, LagTime: 10, ChargingUnit: 60, MaxInstances: 4},
		InitialInstances: init,
		Observer:         rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec, res := runTraced(t, core.New(core.Config{}), 1)
	counts := rec.CountByKind()
	if counts[sim.EvTaskStart] < 5 || counts[sim.EvTaskComplete] != 5 {
		t.Fatalf("task events = %v", counts)
	}
	if counts[sim.EvInstanceLaunch] != res.Launches {
		t.Fatalf("launches %d != events %d", res.Launches, counts[sim.EvInstanceLaunch])
	}
	if counts[sim.EvInstanceTerminated] != res.Launches {
		t.Fatalf("every launched instance must terminate: %v", counts)
	}
	if counts[sim.EvDecision] != res.Decisions {
		t.Fatalf("decisions %d != events %d", res.Decisions, counts[sim.EvDecision])
	}
	// Events are time-ordered.
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Time < rec.Events[i-1].Time {
			t.Fatal("events out of order")
		}
	}
}

func TestRecorderCSV(t *testing.T) {
	rec, _ := runTraced(t, baseline.Static{}, 4)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,kind,task,instance,launch,released,tenant\n") {
		t.Fatalf("csv header wrong: %q", out[:60])
	}
	if !strings.Contains(out, "task-complete") || !strings.Contains(out, "instance-launch") {
		t.Fatal("csv missing event kinds")
	}
	// Decision rows carry a dash for task/instance.
	if !strings.Contains(out, "decision,-,-") {
		t.Fatalf("decision row malformed:\n%s", out)
	}
	// Untenanted recorders label every row with a dash...
	if !strings.Contains(out, ",-\n") {
		t.Fatalf("tenant column missing dash placeholder:\n%s", out)
	}
	// ...and a tenant label rides on every row.
	rec.Tenant = "acme"
	buf.Reset()
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if i == 0 {
			continue
		}
		if !strings.HasSuffix(line, ",acme") {
			t.Fatalf("row %d missing tenant label: %q", i, line)
		}
	}
}

func TestGantt(t *testing.T) {
	_, res := runTraced(t, baseline.Static{}, 4)
	g := Gantt(res, 40)
	if g == "" {
		t.Fatal("empty gantt")
	}
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	// Header plus one row per instance that ran tasks.
	if len(lines) < 2 {
		t.Fatalf("gantt:\n%s", g)
	}
	// Some cell must show occupancy of 2 (two slots busy).
	if !strings.Contains(g, "2") {
		t.Fatalf("no 2-slot occupancy visible:\n%s", g)
	}
	if Gantt(res, 0) != "" {
		t.Fatal("zero width should be empty")
	}
	if Gantt(&sim.Result{}, 10) != "" {
		t.Fatal("empty result should be empty")
	}
}

func TestPoolSparkline(t *testing.T) {
	_, res := runTraced(t, core.New(core.Config{}), 1)
	s := PoolSparkline(res, 30)
	if len([]rune(s)) != 30 {
		t.Fatalf("sparkline width = %d", len([]rune(s)))
	}
	if PoolSparkline(&sim.Result{}, 10) != "" {
		t.Fatal("empty result should be empty")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []sim.EventKind{
		sim.EvTaskStart, sim.EvTaskComplete, sim.EvTaskKilled,
		sim.EvInstanceLaunch, sim.EvInstanceActive, sim.EvInstanceTerminated, sim.EvDecision,
		sim.EvInstanceFailed, sim.EvOrderLost, sim.EvOrderDuplicated, sim.EvInstanceDOA,
		sim.EvTaskQuarantined, sim.EvTaskSpeculated, sim.EvAgentBlacklisted,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d string %q", int(k), s)
		}
		seen[s] = true
	}
	if sim.EventKind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}

func TestKilledTasksAppearInTrace(t *testing.T) {
	// Force a kill: controller releases the only instance mid-task.
	b := dag.NewBuilder("kill")
	st := b.AddStage("s")
	b.AddTask(st, "t", 100, 0, 1)
	wf := b.MustBuild()
	rec := NewRecorder()
	res, err := sim.Run(wf, &killOnce{}, sim.Config{
		Cloud:            cloud.Config{SlotsPerInstance: 1, LagTime: 10, ChargingUnit: 1000, MaxInstances: 4},
		InitialInstances: 1,
		Observer:         rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if rec.CountByKind()[sim.EvTaskKilled] != 1 {
		t.Fatalf("kill event missing: %v", rec.CountByKind())
	}
}

type killOnce struct{ done bool }

func (k *killOnce) Name() string { return "kill-once" }

func (k *killOnce) Plan(snap *monitor.Snapshot) sim.Decision {
	if !k.done && len(snap.Instances) > 0 && len(snap.Instances[0].Running) > 0 {
		k.done = true
		return sim.Decision{Launch: 1, Releases: []sim.ReleaseOrder{{Instance: snap.Instances[0].ID}}}
	}
	return sim.Decision{}
}

// grower launches one instance per tick until the site cap.
type grower struct{ cap int }

func (grower) Name() string { return "grower" }

func (g grower) Plan(snap *monitor.Snapshot) sim.Decision {
	if len(snap.Instances) < g.cap {
		return sim.Decision{Launch: 1}
	}
	return sim.Decision{}
}

// TestFaultEventsAppearInTrace runs a fault-injected simulation and requires
// every injected cloud fault to surface in the recorded event stream and its
// CSV dump, each count agreeing with the run result.
func TestFaultEventsAppearInTrace(t *testing.T) {
	b := dag.NewBuilder("faulty")
	st := b.AddStage("s")
	for i := 0; i < 30; i++ {
		b.AddTask(st, "t", 120, 0, 1)
	}
	wf := b.MustBuild()
	plan := chaos.Plan{Seed: 3, LostOrder: 0.25, DuplicateOrder: 0.25, DeadOnArrival: 0.25}
	rec := NewRecorder()
	res, err := sim.Run(wf, grower{cap: 6}, sim.Config{
		Cloud:    cloud.Config{SlotsPerInstance: 2, LagTime: 10, ChargingUnit: 60, MaxInstances: 6},
		Faults:   plan.CloudFaults(1),
		Observer: rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OrdersLost+res.OrdersDuplicated+res.DeadOnArrival == 0 {
		t.Fatal("no cloud faults injected; the trace has nothing to record")
	}
	counts := rec.CountByKind()
	if counts[sim.EvOrderLost] != res.OrdersLost {
		t.Errorf("order-lost events = %d, result says %d", counts[sim.EvOrderLost], res.OrdersLost)
	}
	if counts[sim.EvOrderDuplicated] != res.OrdersDuplicated {
		t.Errorf("order-duplicated events = %d, result says %d", counts[sim.EvOrderDuplicated], res.OrdersDuplicated)
	}
	if counts[sim.EvInstanceDOA] != res.DeadOnArrival {
		t.Errorf("instance-doa events = %d, result says %d", counts[sim.EvInstanceDOA], res.DeadOnArrival)
	}

	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for kind, n := range map[string]int{
		"order-lost":       res.OrdersLost,
		"order-duplicated": res.OrdersDuplicated,
		"instance-doa":     res.DeadOnArrival,
	} {
		if n > 0 && !strings.Contains(out, kind) {
			t.Errorf("csv missing %q rows (%d injected)", kind, n)
		}
	}
}
