// Package trace records and renders run traces: a Recorder hooks into the
// execution simulator's observer callback and the package renders the
// result as CSV (for external analysis) or as a text Gantt chart of slot
// occupancy per instance — the visual the paper's pool-elasticity story is
// about.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Recorder accumulates simulator events. Install with Hook().
//
// Tenant, when set, labels every CSV row with the tenant whose run produced
// the events — multi-tenant harnesses record one run per recorder and
// concatenate, so the label rides on the recorder, not the event.
type Recorder struct {
	Events []sim.Event
	Tenant string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Hook returns the observer callback to place in sim.Config.Observer.
func (r *Recorder) Hook() func(sim.Event) {
	return func(ev sim.Event) { r.Events = append(r.Events, ev) }
}

// CountByKind tallies recorded events.
func (r *Recorder) CountByKind() map[sim.EventKind]int {
	m := make(map[sim.EventKind]int)
	for _, ev := range r.Events {
		m[ev.Kind]++
	}
	return m
}

// WriteCSV dumps the raw event stream.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "kind", "task", "instance", "launch", "released", "tenant"}); err != nil {
		return err
	}
	tenant := r.Tenant
	if tenant == "" {
		tenant = "-"
	}
	for _, ev := range r.Events {
		rec := []string{
			strconv.FormatFloat(ev.Time, 'f', 3, 64),
			ev.Kind.String(),
			itoaOrDash(int(ev.Task)),
			itoaOrDash(int(ev.Instance)),
			strconv.Itoa(ev.Launch),
			strconv.Itoa(ev.Released),
			tenant,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoaOrDash(v int) string {
	if v < 0 {
		return "-"
	}
	return strconv.Itoa(v)
}

// Gantt renders per-instance slot occupancy over time from a run result:
// one row per instance, width columns across the makespan, with each cell
// showing how many tasks the instance was running ('.' idle, digits for
// occupancy, ' ' before launch / after termination).
func Gantt(res *sim.Result, width int) string {
	if width <= 0 || res.Makespan <= 0 || len(res.TaskRuns) == 0 {
		return ""
	}
	type span struct{ start, end simtime.Time }
	byInst := map[cloud.InstanceID][]span{}
	for _, tr := range res.TaskRuns {
		byInst[tr.Instance] = append(byInst[tr.Instance], span{tr.Start, tr.End})
	}
	ids := make([]cloud.InstanceID, 0, len(byInst))
	for id := range byInst {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var b strings.Builder
	step := res.Makespan / float64(width)
	fmt.Fprintf(&b, "slot occupancy per instance; column = %s, rows = instances\n",
		simtime.FormatDuration(step))
	for _, id := range ids {
		fmt.Fprintf(&b, "i%-3d |", int(id))
		spans := byInst[id]
		var first, last simtime.Time = res.Makespan, 0
		for _, s := range spans {
			if s.start < first {
				first = s.start
			}
			if s.end > last {
				last = s.end
			}
		}
		for c := 0; c < width; c++ {
			lo := float64(c) * step
			hi := lo + step
			mid := (lo + hi) / 2
			n := 0
			for _, s := range spans {
				if s.start <= mid && mid < s.end {
					n++
				}
			}
			switch {
			case n > 9:
				b.WriteByte('#')
			case n > 0:
				b.WriteByte(byte('0' + n))
			case mid >= first && mid <= last:
				b.WriteByte('.')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// PoolSparkline renders the held-pool timeline as a one-line sparkline.
func PoolSparkline(res *sim.Result, width int) string {
	if width <= 0 || res.Makespan <= 0 || len(res.Pool) == 0 {
		return ""
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	maxHeld := 1
	for _, s := range res.Pool {
		if s.Held > maxHeld {
			maxHeld = s.Held
		}
	}
	heldAt := func(t simtime.Time) int {
		held := 0
		for _, s := range res.Pool {
			if s.Time > t {
				break
			}
			held = s.Held
		}
		return held
	}
	var b strings.Builder
	for c := 0; c < width; c++ {
		t := res.Makespan * (float64(c) + 0.5) / float64(width)
		h := heldAt(t)
		idx := 0
		if maxHeld > 0 {
			idx = h * (len(glyphs) - 1) / maxHeld
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
