package exec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileSinkRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Seq: 1, Kind: RecRunStarted, Detail: "wf"},
		{Seq: 2, Kind: RecAgentRegistered, Agent: "a1", Slots: 4},
		{Seq: 3, Kind: RecLeaseGranted, Agent: "a1", Lease: int64Ptr(1), Task: intPtr(0)},
	}
	for _, r := range recs {
		sink.Append(r)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn trailing line must be ignored.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":4,"kind":"lease-comp`)
	f.Close()

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	got, err := ReadRecords(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || got[i].Agent != recs[i].Agent {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	if got[2].Lease == nil || *got[2].Lease != 1 || got[2].Task == nil || *got[2].Task != 0 {
		t.Fatalf("lease/task identifiers lost: %+v", got[2])
	}
}

func TestReplayAssignmentsFoldsLifecycle(t *testing.T) {
	recs := []Record{
		{Kind: RecAgentRegistered, Agent: "a1"},
		{Kind: RecAgentRegistered, Agent: "a2"},
		{Kind: RecLeaseGranted, Agent: "a1", Lease: int64Ptr(1), Task: intPtr(0)},
		{Kind: RecLeaseGranted, Agent: "a1", Lease: int64Ptr(2), Task: intPtr(1)},
		{Kind: RecLeaseCompleted, Agent: "a1", Lease: int64Ptr(1)},
		// a1 dies holding lease 2; task 1 is reclaimed and regranted to a2.
		{Kind: RecLeaseReclaimed, Agent: "a1", Lease: int64Ptr(2)},
		{Kind: RecAgentFailed, Agent: "a1"},
		{Kind: RecLeaseGranted, Agent: "a2", Lease: int64Ptr(3), Task: intPtr(1)},
	}
	st, err := ReplayAssignments(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := NewAssignmentState()
	want.Completed[0] = true
	want.Leased[1] = "a2"
	want.Reclaims[1] = 1
	want.LiveAgents["a2"] = true
	if !st.Equal(want) {
		t.Fatalf("replayed state %+v, want %+v", st, want)
	}
}

func TestReplayAssignmentsRejectsDanglingLease(t *testing.T) {
	_, err := ReplayAssignments([]Record{{Kind: RecLeaseCompleted, Lease: int64Ptr(9)}})
	if err == nil || !strings.Contains(err.Error(), "unknown lease") {
		t.Fatalf("err = %v, want unknown lease", err)
	}
	_, err = ReplayAssignments([]Record{{Kind: RecLeaseGranted}})
	if err == nil {
		t.Fatal("want error for lease-granted without identifiers")
	}
}
