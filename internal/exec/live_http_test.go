package exec

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/sim"
)

// coreFactory resolves every policy name to a fresh WIRE controller — enough
// for exec-level tests (the full policy registry lives in internal/service).
func coreFactory(string, json.RawMessage) (sim.Controller, error) {
	return core.New(core.Config{}), nil
}

func newTestRegistry(t *testing.T, cfg RegistryConfig) *Registry {
	t.Helper()
	if cfg.Factory == nil {
		cfg.Factory = coreFactory
	}
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// fanoutDoc is a split→work workflow small enough that a 200× run finishes in
// well under a second of wall clock.
func fanoutDoc() *dagio.Document {
	b := dag.NewBuilder("fanout")
	s0 := b.AddStage("split")
	s1 := b.AddStage("work")
	root := b.AddTask(s0, "split", 4, 1, 20)
	for i := 0; i < 6; i++ {
		b.AddTask(s1, fmt.Sprintf("w%d", i), 8, 1, 10, root)
	}
	return dagio.Encode(b.MustBuild())
}

// TestLiveRunOverHTTP is the tentpole integration test: two worker agents —
// the same loop cmd/wire-agent runs — lease and emulate a workflow over HTTP
// against the registry, the WIRE controller steers from measured telemetry,
// and the recorded decision stream must verify against a simulator twin.
func TestLiveRunOverHTTP(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, RegistryConfig{JournalDir: dir})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	client := NewLiveClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	info, err := client.CreateRun(ctx, &CreateRunRequest{
		Workflow:         fanoutDoc(),
		SlotsPerInstance: 2,
		LagTimeS:         2,
		ChargingUnitS:    30,
		MaxInstances:     4,
		Timescale:        200,
		MaxWallMs:        30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tasks != 7 || info.State != Created {
		t.Fatalf("run info %+v", info)
	}

	var agents sync.WaitGroup
	for i := 0; i < 2; i++ {
		agents.Add(1)
		go func(i int) {
			defer agents.Done()
			err := RunAgent(ctx, AgentConfig{
				BaseURL:  ts.URL,
				RunID:    info.ID,
				Name:     fmt.Sprintf("worker-%d", i),
				Slots:    2,
				PollWait: 200 * time.Millisecond,
			})
			if err != nil && ctx.Err() == nil {
				t.Errorf("agent %d: %v", i, err)
			}
		}(i)
	}
	if _, err := client.StartRun(ctx, info.ID); err != nil {
		t.Fatal(err)
	}

	var status RunStatusResponse
	waitFor(t, 45*time.Second, "run completion", func() bool {
		status, err = client.RunStatus(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		return status.State == Done || status.State == Failed
	})
	agents.Wait()
	if status.State != Done || status.Result == nil {
		t.Fatalf("run ended %v: %s", status.State, status.Error)
	}
	res := status.Result
	if status.TasksCompleted != 7 {
		t.Fatalf("completed %d/7 tasks", status.TasksCompleted)
	}
	if res.Counters.LeasesLost != 0 {
		t.Fatalf("%d leases lost", res.Counters.LeasesLost)
	}
	if res.Counters.LeasesCompleted != res.Counters.LeasesGranted-res.Counters.LeasesReclaimed-res.Counters.LeasesSuperseded {
		t.Fatalf("lease identity violated: %+v", res.Counters)
	}
	if res.UnitsCharged < 1 || res.MakespanS <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}

	// Parity certificate: a fresh controller fed the recorded snapshots must
	// reproduce the decision stream byte for byte.
	records, err := client.PlanStream(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no plan records")
	}
	if err := TwinVerify(records, core.New(core.Config{})); err != nil {
		t.Fatalf("parity: %v", err)
	}

	// The journal on disk replays to the dispatcher's final assignment state.
	f, err := os.Open(filepath.Join(dir, info.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[len(recs)-1].Kind != RecRunDone {
		t.Fatalf("journal: %d records, want trailing %s", len(recs), RecRunDone)
	}
	replayed, err := ReplayAssignments(recs)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(replayed.Completed); n != 7 {
		t.Fatalf("journal replay shows %d completed tasks", n)
	}

	m := reg.Metrics()
	if m.RunsDone != 1 || m.Counters.LeasesLost != 0 {
		t.Fatalf("registry metrics %+v", m)
	}
}

// TestDrainWaitsForOutstandingLeases: shutdown must not abandon an agent
// mid-task — Drain blocks (bounded by its context) until the lease completes.
func TestDrainWaitsForOutstandingLeases(t *testing.T) {
	reg := newTestRegistry(t, RegistryConfig{})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	client := NewLiveClient(ts.URL, nil)
	ctx := context.Background()

	info, err := client.CreateRun(ctx, &CreateRunRequest{
		Workflow:         dagio.Encode(flatWorkflow(1, 10000)),
		SlotsPerInstance: 1,
		LagTimeS:         0.001,
		ChargingUnitS:    10,
		MaxInstances:     1,
		Timescale:        1,
		Start:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	regResp, err := client.Register(ctx, info.ID, "w", 1)
	if err != nil {
		t.Fatal(err)
	}
	var leases []Lease
	waitFor(t, 5*time.Second, "lease grant", func() bool {
		resp, err := client.Poll(ctx, info.ID, regResp.AgentID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, resp.Leases...)
		return len(leases) == 1
	})

	// With the lease in flight, a bounded drain must time out, not return
	// success.
	shortCtx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
	err = reg.Drain(shortCtx)
	cancel()
	if err == nil {
		t.Fatal("drain returned with a lease outstanding")
	}

	// Draining refuses new runs.
	if _, err := client.CreateRun(ctx, &CreateRunRequest{
		Workflow: fanoutDoc(), SlotsPerInstance: 1, LagTimeS: 1, ChargingUnitS: 10,
	}); !IsCode(err, "draining") {
		t.Fatalf("create while draining: err = %v, want code draining", err)
	}

	// The agent reports; the drain completes promptly.
	if _, err := client.Complete(ctx, info.ID, regResp.AgentID, leases[0].ID, CompleteReport{ExecS: 10000}); err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := reg.Drain(drainCtx); err != nil {
		t.Fatalf("drain after completion: %v", err)
	}
}

func TestRegistryLimitsAndErrors(t *testing.T) {
	reg := newTestRegistry(t, RegistryConfig{MaxRuns: 1})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	client := NewLiveClient(ts.URL, nil)
	ctx := context.Background()

	mk := func() (RunInfo, error) {
		return client.CreateRun(ctx, &CreateRunRequest{
			Workflow: fanoutDoc(), SlotsPerInstance: 2, LagTimeS: 2, ChargingUnitS: 30,
		})
	}
	if _, err := client.CreateRun(ctx, &CreateRunRequest{SlotsPerInstance: 1, LagTimeS: 1, ChargingUnitS: 1}); !IsCode(err, "bad_request") {
		t.Fatalf("no workflow: err = %v, want bad_request", err)
	}
	info, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mk(); !IsCode(err, "max_runs") {
		t.Fatalf("second create: err = %v, want code max_runs", err)
	}
	if _, err := client.RunStatus(ctx, "live-missing"); !IsCode(err, "not_found") {
		t.Fatalf("missing run: err = %v, want not_found", err)
	}
	if _, err := client.Poll(ctx, info.ID, "ghost", 0); !IsCode(err, "unknown_agent") {
		t.Fatalf("ghost poll: err = %v, want unknown_agent", err)
	}

	// DELETE frees the slot and aborts the run.
	if err := client.DeleteRun(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := mk(); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
	if m := reg.Metrics(); m.Runs != 1 {
		t.Fatalf("metrics after delete: %+v", m)
	}
}
