package exec

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDelayGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	// With u = 0.5 the delay is exactly half the ceiling, so the doubling
	// sequence is observable: 50ms, 100ms, 200ms, … up to the 1s cap-half.
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // ceiling hit Max
		1 * time.Second,
	}
	for retry, w := range want {
		if got := b.Delay(retry, 0.5); got != w {
			t.Errorf("Delay(%d, 0.5) = %v, want %v", retry, got, w)
		}
	}
	// Full jitter: the draw spans [0, ceiling).
	if got := b.Delay(3, 0); got != 0 {
		t.Errorf("zero draw should be zero delay, got %v", got)
	}
	if got := b.Delay(50, 0.999); got >= 2*time.Second {
		t.Errorf("delay %v must stay under Max", got)
	}
	// Zero value uses the documented defaults (100ms base, 2s cap).
	if got := (Backoff{}).Delay(0, 0.5); got != 50*time.Millisecond {
		t.Errorf("zero-value Delay(0, 0.5) = %v, want 50ms", got)
	}
	if got := (Backoff{}).Delay(20, 0.5); got != time.Second {
		t.Errorf("zero-value Delay(20, 0.5) = %v, want 1s", got)
	}
}

func TestRetrySleeperHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := retrySleeper{b: Backoff{Base: time.Hour, Max: time.Hour}}
	start := time.Now()
	if err := s.Sleep(ctx); err == nil {
		t.Fatal("Sleep on cancelled context returned nil")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored the cancelled context")
	}
	if s.retry != 1 {
		t.Fatalf("retry counter = %d, want 1", s.retry)
	}
	s.Reset()
	if s.retry != 0 {
		t.Fatal("Reset did not clear the streak")
	}
}

// TestJitterSeqDeterministic pins the seeded-jitter contract: the same seed
// reproduces the same delay sequence in every retry loop (chaos runs replay
// their retry timing exactly), distinct streams from one sequence draw
// independently, and seed 0 still yields a usable non-nil stream.
func TestJitterSeqDeterministic(t *testing.T) {
	delays := func(seed int64) [][]time.Duration {
		q := newJitterSeq(seed)
		var out [][]time.Duration
		for loop := 0; loop < 3; loop++ {
			s := retrySleeper{b: Backoff{Base: time.Second, Max: 32 * time.Second}, rng: q.next()}
			var ds []time.Duration
			for retry := 0; retry < 8; retry++ {
				ds = append(ds, s.b.Delay(s.retry, s.rng.Float64()))
				s.retry++
			}
			out = append(out, ds)
		}
		return out
	}

	a, b := delays(42), delays(42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed diverged at loop %d retry %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	c := delays(43)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay sequences")
	}
	// Streams from one sequence must not mirror each other.
	if a[0][0] == a[1][0] && a[0][1] == a[1][1] && a[0][2] == a[1][2] {
		t.Fatal("two streams from one jitterSeq are correlated")
	}
	if newJitterSeq(0).next() == nil {
		t.Fatal("seed 0 produced a nil stream")
	}
}
