package exec

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDelayGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	// With u = 0.5 the delay is exactly half the ceiling, so the doubling
	// sequence is observable: 50ms, 100ms, 200ms, … up to the 1s cap-half.
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // ceiling hit Max
		1 * time.Second,
	}
	for retry, w := range want {
		if got := b.Delay(retry, 0.5); got != w {
			t.Errorf("Delay(%d, 0.5) = %v, want %v", retry, got, w)
		}
	}
	// Full jitter: the draw spans [0, ceiling).
	if got := b.Delay(3, 0); got != 0 {
		t.Errorf("zero draw should be zero delay, got %v", got)
	}
	if got := b.Delay(50, 0.999); got >= 2*time.Second {
		t.Errorf("delay %v must stay under Max", got)
	}
	// Zero value uses the documented defaults (100ms base, 2s cap).
	if got := (Backoff{}).Delay(0, 0.5); got != 50*time.Millisecond {
		t.Errorf("zero-value Delay(0, 0.5) = %v, want 50ms", got)
	}
	if got := (Backoff{}).Delay(20, 0.5); got != time.Second {
		t.Errorf("zero-value Delay(20, 0.5) = %v, want 1s", got)
	}
}

func TestRetrySleeperHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := retrySleeper{b: Backoff{Base: time.Hour, Max: time.Hour}}
	start := time.Now()
	if err := s.Sleep(ctx); err == nil {
		t.Fatal("Sleep on cancelled context returned nil")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored the cancelled context")
	}
	if s.retry != 1 {
		t.Fatalf("retry counter = %d, want 1", s.retry)
	}
	s.Reset()
	if s.retry != 0 {
		t.Fatal("Reset did not clear the streak")
	}
}
