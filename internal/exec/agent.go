package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/simtime"
)

// LiveClient is the HTTP client for the live-run API, shared by wire-agent,
// the examples/live-run driver, and the tests. Its transport is injectable,
// so a chaos.Transport can partition an agent from the dispatcher.
type LiveClient struct {
	base string
	hc   *http.Client
}

// NewLiveClient returns a client for a wire-serve base URL
// (e.g. "http://127.0.0.1:8080"). hc nil uses a default client with no
// overall timeout (long-polls are bounded server-side).
func NewLiveClient(base string, hc *http.Client) *LiveClient {
	if hc == nil {
		hc = &http.Client{}
	}
	return &LiveClient{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx response from the live API.
type APIError struct {
	Status int
	Code   string
	Msg    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("live api: %d %s: %s", e.Status, e.Code, e.Msg)
}

// IsCode reports whether err is an APIError with the given code.
func IsCode(err error, code string) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == code
}

// RegisterError is a terminal registration rejection: the dispatcher will
// never admit this agent (the run is unknown, already over, or the daemon is
// at its run limit), so retrying is pointless. wire-agent detects it with
// errors.As and exits non-zero with an operator-readable reason.
type RegisterError struct {
	RunID string
	// Code is the API error code: "not_found", "run_over", or "max_runs".
	Code string
	Err  error
}

// Error implements error.
func (e *RegisterError) Error() string {
	return fmt.Sprintf("exec: agent registration on run %s rejected (%s): %v", e.RunID, e.Code, e.Err)
}

// Unwrap exposes the underlying API error.
func (e *RegisterError) Unwrap() error { return e.Err }

func (c *LiveClient) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		return &APIError{Status: resp.StatusCode, Code: eb.Code, Msg: eb.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateRun starts tracking a new live run.
func (c *LiveClient) CreateRun(ctx context.Context, req *CreateRunRequest) (RunInfo, error) {
	var out RunInfo
	err := c.do(ctx, http.MethodPost, "/v1/live/runs", req, &out)
	return out, err
}

// StartRun launches a created run's clock.
func (c *LiveClient) StartRun(ctx context.Context, runID string) (RunStatusResponse, error) {
	var out RunStatusResponse
	err := c.do(ctx, http.MethodPost, "/v1/live/runs/"+runID+"/start", nil, &out)
	return out, err
}

// RunStatus fetches a run's status.
func (c *LiveClient) RunStatus(ctx context.Context, runID string) (RunStatusResponse, error) {
	var out RunStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/live/runs/"+runID, nil, &out)
	return out, err
}

// PlanStream fetches a run's recorded snapshot→decision pairs.
func (c *LiveClient) PlanStream(ctx context.Context, runID string) ([]PlanRecord, error) {
	var out PlanStreamResponse
	err := c.do(ctx, http.MethodGet, "/v1/live/runs/"+runID+"/stream", nil, &out)
	return out.Records, err
}

// DeleteRun aborts and removes a run.
func (c *LiveClient) DeleteRun(ctx context.Context, runID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/live/runs/"+runID, nil, nil)
}

// Register adds this process as a worker on a run.
func (c *LiveClient) Register(ctx context.Context, runID, name string, slots int) (RegisterResponse, error) {
	var out RegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/live/runs/"+runID+"/agents",
		RegisterRequest{Name: name, Slots: slots}, &out)
	return out, err
}

// Poll long-polls for leases; it doubles as the heartbeat.
func (c *LiveClient) Poll(ctx context.Context, runID, agentID string, wait time.Duration) (PollResponse, error) {
	var out PollResponse
	err := c.do(ctx, http.MethodPost,
		fmt.Sprintf("/v1/live/runs/%s/agents/%s/poll", runID, agentID),
		PollRequest{WaitMs: wait.Milliseconds()}, &out)
	return out, err
}

// ReportTransfer posts the measured mid-task transfer time.
func (c *LiveClient) ReportTransfer(ctx context.Context, runID, agentID string, leaseID int64, rep TransferReport) (Ack, error) {
	var out Ack
	err := c.do(ctx, http.MethodPost,
		fmt.Sprintf("/v1/live/runs/%s/agents/%s/leases/%d/transfer", runID, agentID, leaseID), rep, &out)
	return out, err
}

// Complete posts a finished lease's measured times.
func (c *LiveClient) Complete(ctx context.Context, runID, agentID string, leaseID int64, rep CompleteReport) (Ack, error) {
	var out Ack
	err := c.do(ctx, http.MethodPost,
		fmt.Sprintf("/v1/live/runs/%s/agents/%s/leases/%d/complete", runID, agentID, leaseID), rep, &out)
	return out, err
}

// AgentConfig parameterizes one worker process (or goroutine).
type AgentConfig struct {
	// BaseURL is the wire-serve address; RunID the run to serve. Required.
	BaseURL string
	RunID   string

	// Name labels the agent in status output; Slots is the advertised
	// concurrency (default 1).
	Name  string
	Slots int

	// HTTPClient overrides the transport (chaos injection); nil uses a
	// default client.
	HTTPClient *http.Client

	// PollWait caps the long-poll duration; the effective wait also stays
	// under half the server's heartbeat TTL. Default 5 s.
	PollWait time.Duration

	// Stretch, when > 1, multiplies the emulated phase durations: the chaos
	// slow-agent fault (chaos.Plan.AgentSlowdown). The agent reports its
	// real (stretched) measurements, which is exactly what a straggler
	// looks like to the dispatcher's speculation threshold.
	Stretch float64

	// CrashTask, when set, is consulted once per lease; true means the
	// attempt dies partway through execution and is reported Failed (the
	// chaos task-crash fault, chaos.Plan.TaskCrashes, keyed by task and
	// attempt so a poison task fails every retry deterministically).
	CrashTask func(task int64, attempt int) bool

	// JitterSeed seeds the retry-jitter RNG shared by the register,
	// poll, and completion-report backoff loops. 0 derives a seed from
	// the wall clock. wire-agent threads the chaos plan's seed (and
	// stream) here so a fault-injection run reproduces its retry timing
	// exactly.
	JitterSeed int64

	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// RunAgent is the worker loop: register, long-poll for leases, emulate each
// leased task, report measured times. It returns nil when the run finishes,
// or the first fatal error (context cancellation, run deleted). A dispatcher
// that declared this agent dead (heartbeat lapse during a partition) answers
// polls with unknown_agent; the loop re-registers as a fresh agent, exactly
// like a replacement worker booting on the same node.
func RunAgent(ctx context.Context, cfg AgentConfig) error {
	if cfg.BaseURL == "" || cfg.RunID == "" {
		return fmt.Errorf("exec: agent needs BaseURL and RunID")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 5 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := NewLiveClient(cfg.BaseURL, cfg.HTTPClient)
	jitter := newJitterSeq(cfg.JitterSeed)

	var wg sync.WaitGroup
	defer wg.Wait()

	var agentID string
	var wait time.Duration
	// register retries transport failures with jittered-exponential backoff
	// (the dispatcher may be mid-restart, replaying its journal) and turns
	// terminal API rejections into RegisterError.
	register := func() error {
		rs := retrySleeper{rng: jitter.next()}
		for {
			reg, err := client.Register(ctx, cfg.RunID, cfg.Name, cfg.Slots)
			if err == nil {
				agentID = reg.AgentID
				wait = cfg.PollWait
				if ttl := wallMs(reg.HeartbeatTTLMs); ttl > 0 && wait > ttl/2 {
					wait = ttl / 2
				}
				logf("agent %s: registered on %s (%d slots, poll %v)", agentID, cfg.RunID, cfg.Slots, wait)
				return nil
			}
			for _, code := range []string{"not_found", "run_over", "max_runs"} {
				if IsCode(err, code) {
					return &RegisterError{RunID: cfg.RunID, Code: code, Err: err}
				}
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if rs.retry >= 10 {
				return err
			}
			logf("agent %q: register attempt %d failed: %v", cfg.Name, rs.retry+1, err)
			if serr := rs.Sleep(ctx); serr != nil {
				return serr
			}
		}
	}
	if err := register(); err != nil {
		var rerr *RegisterError
		if errors.As(err, &rerr) {
			return err
		}
		return fmt.Errorf("exec: agent register: %w", err)
	}

	// pollBackoff spaces retries of transient poll failures — including a
	// dispatcher that is down for a restart — and resets on any success, so
	// a recovered daemon sees the agent within one heartbeat TTL.
	pollBackoff := retrySleeper{rng: jitter.next()}
	for {
		resp, err := client.Poll(ctx, cfg.RunID, agentID, wait)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case IsCode(err, "unknown_agent"):
			// Declared dead (partition, missed heartbeats). Our leases were
			// reclaimed; come back as a new worker. A restarted dispatcher
			// that replayed our registration hands back the same identity.
			logf("agent %s: declared dead by dispatcher; re-registering", agentID)
			if rerr := register(); rerr != nil {
				var reg *RegisterError
				if errors.As(rerr, &reg) && (reg.Code == "run_over" || reg.Code == "not_found") {
					return nil
				}
				return fmt.Errorf("exec: agent re-register: %w", rerr)
			}
			continue
		case IsCode(err, "not_found"):
			return fmt.Errorf("exec: run %s gone: %w", cfg.RunID, err)
		case err != nil:
			// Transient transport failure (injected chaos, or the daemon
			// restarting): back off and keep heartbeating.
			if serr := pollBackoff.Sleep(ctx); serr != nil {
				return serr
			}
			continue
		}
		pollBackoff.Reset()
		for _, l := range resp.Leases {
			wg.Add(1)
			go func(l Lease, rng *rand.Rand) {
				defer wg.Done()
				runLease(ctx, client, cfg, agentID, l, logf, rng)
			}(l, jitter.next())
		}
		if resp.Done {
			logf("agent %s: run finished; draining", agentID)
			return nil
		}
	}
}

// runLease emulates one leased task and reports its measurements.
func runLease(ctx context.Context, client *LiveClient, cfg AgentConfig, agentID string, l Lease, logf func(string, ...any), jitterRNG *rand.Rand) {
	runID := cfg.RunID
	spec := l.Spec
	if cfg.Stretch > 1 {
		spec.ExecS *= cfg.Stretch
		spec.TransferS *= cfg.Stretch
	}
	crash := cfg.CrashTask != nil && cfg.CrashTask(int64(l.Task), l.Attempt)
	if crash {
		// A poison attempt dies about a quarter of the way into execution:
		// burn real wall time, never reach the transfer report, and tell
		// the dispatcher the attempt Failed so it can requeue with backoff
		// or quarantine once the attempt budget is spent.
		spec.TransferS = 0
		spec.ExecS /= 4
	}
	em := &Emulator{Spec: spec}
	var onTransfer func(simtime.Duration)
	if !crash {
		onTransfer = func(transfer simtime.Duration) {
			// Mid-task kickstart record: measured transfer duration. Best
			// effort — the completion report carries it too.
			_, _ = client.ReportTransfer(ctx, runID, agentID, l.ID, TransferReport{TransferS: transfer})
		}
	}
	rep, err := em.Run(ctx, onTransfer)
	if err != nil {
		logf("agent %s: lease %d interrupted: %v", agentID, l.ID, err)
		return
	}
	if crash {
		logf("agent %s: lease %d (task %d attempt %d) crashing by chaos plan", agentID, l.ID, l.Task, l.Attempt)
		rep = CompleteReport{Failed: true, Error: fmt.Sprintf("chaos: injected crash on attempt %d", l.Attempt)}
	}
	// The measurement must not be lost to a transient blip: retry with the
	// shared jittered backoff, long enough to ride out a dispatcher restart.
	rs := retrySleeper{rng: jitterRNG}
	for {
		ack, err := client.Complete(ctx, runID, agentID, l.ID, rep)
		if err == nil {
			if ack.Stale {
				logf("agent %s: lease %d was reclaimed; result dropped", agentID, l.ID)
			}
			return
		}
		if ctx.Err() != nil || IsCode(err, "not_found") || IsCode(err, "unknown_agent") || rs.retry >= 12 {
			logf("agent %s: lease %d complete failed: %v", agentID, l.ID, err)
			return
		}
		if rs.Sleep(ctx) != nil {
			return
		}
	}
}
