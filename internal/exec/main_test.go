package exec

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any live-execution goroutine (lease
// reclaimer, run supervisor, ...) outlives a passing test run.
func TestMain(m *testing.M) { leakcheck.Main(m) }
