package exec

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ControllerFactory builds a controller for a policy name and an opaque
// tuning blob. The service injects its policy registry here, keeping the
// dependency direction service→exec.
type ControllerFactory func(policy string, spec json.RawMessage) (sim.Controller, error)

// RegistryConfig parameterizes a Registry.
type RegistryConfig struct {
	// Factory resolves policy names to controllers. Required.
	Factory ControllerFactory
	// MaxRuns caps concurrently tracked runs (default 8).
	MaxRuns int
	// JournalDir, when set, gives every run a JSONL agent-event journal at
	// <dir>/live-<id>.jsonl.
	JournalDir string
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c RegistryConfig) withDefaults() (RegistryConfig, error) {
	if c.Factory == nil {
		return c, fmt.Errorf("exec: RegistryConfig.Factory is required")
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// runEntry couples one dispatcher with its identity and journal file.
type runEntry struct {
	id   string
	d    *Dispatcher
	sink *FileSink
}

// Registry tracks the live runs a server hosts and serves the lease
// protocol under /v1/live/.
type Registry struct {
	cfg RegistryConfig

	mu       sync.Mutex
	runs     map[string]*runEntry
	draining bool
	// retired accumulates counters of deleted runs so aggregate metrics
	// survive DELETE.
	retired Counters
	// recovered counts runs resurrected from journals at startup.
	recovered int
}

// NewRegistry returns an empty run registry.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Registry{cfg: cfg, runs: make(map[string]*runEntry)}, nil
}

// RegistryMetrics is the live block of the server's /metrics dump.
type RegistryMetrics struct {
	Runs       int `json:"runs"`
	RunsActive int `json:"runs_active"`
	RunsDone   int `json:"runs_done"`
	RunsFailed int `json:"runs_failed"`
	// RunsRecovered counts runs resurrected from their journals when the
	// daemon restarted after a crash.
	RunsRecovered int      `json:"runs_recovered"`
	Counters      Counters `json:"counters"`
}

// Metrics aggregates the registry's operational counters across all runs
// (including deleted ones).
func (g *Registry) Metrics() RegistryMetrics {
	g.mu.Lock()
	entries := make([]*runEntry, 0, len(g.runs))
	for _, e := range g.runs {
		entries = append(entries, e)
	}
	m := RegistryMetrics{Counters: g.retired, RunsRecovered: g.recovered}
	g.mu.Unlock()
	for _, e := range entries {
		m.Runs++
		switch e.d.State() {
		case Running, Created:
			m.RunsActive++
		case Done:
			m.RunsDone++
		case Failed:
			m.RunsFailed++
		}
		m.Counters.Add(e.d.Counters())
	}
	return m
}

// Drain stops lease grants on every run and waits until no leases are
// outstanding (in-flight agent work has been reported or reclaimed), or ctx
// expires. It is the graceful-shutdown hook: HTTP connection draining alone
// would abandon agents mid-task and lose their measurements.
func (g *Registry) Drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	entries := make([]*runEntry, 0, len(g.runs))
	for _, e := range g.runs {
		entries = append(entries, e)
	}
	g.mu.Unlock()
	for _, e := range entries {
		e.d.SetDraining(true)
	}
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		outstanding := 0
		for _, e := range entries {
			outstanding += e.d.OutstandingLeases()
		}
		if outstanding == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("exec: drain timed out with %d leases outstanding", outstanding)
		case <-tick.C:
		}
	}
}

// Mount registers the live-run routes on a mux (the server's main mux).
func (g *Registry) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/live/runs", g.handleCreate)
	mux.HandleFunc("GET /v1/live/runs", g.handleList)
	mux.HandleFunc("GET /v1/live/runs/{id}", g.handleStatus)
	mux.HandleFunc("POST /v1/live/runs/{id}/start", g.handleStart)
	mux.HandleFunc("GET /v1/live/runs/{id}/stream", g.handleStream)
	mux.HandleFunc("DELETE /v1/live/runs/{id}", g.handleDelete)
	mux.HandleFunc("POST /v1/live/runs/{id}/agents", g.handleRegister)
	mux.HandleFunc("POST /v1/live/runs/{id}/agents/{agent}/poll", g.handlePoll)
	mux.HandleFunc("POST /v1/live/runs/{id}/agents/{agent}/leases/{lease}/transfer", g.handleTransfer)
	mux.HandleFunc("POST /v1/live/runs/{id}/agents/{agent}/leases/{lease}/complete", g.handleComplete)
}

// Handler returns a standalone handler serving only the live-run routes
// (tests and the in-process driver).
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	g.Mount(mux)
	return mux
}

// maxLiveBody caps request bodies; lease reports are tiny, run creation
// with an inline workflow dominates.
const maxLiveBody = 16 << 20

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxLiveBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: %v", err)
		return false
	}
	return true
}

func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("exec: crypto/rand unavailable: %v", err))
	}
	return "live-" + hex.EncodeToString(b[:])
}

// resolveWorkflow materializes the request's workflow source (the same rules
// as the service's session endpoint).
func resolveWorkflow(req *CreateRunRequest) (*dag.Workflow, error) {
	switch {
	case req.Workflow != nil && req.WorkflowKey != "":
		return nil, fmt.Errorf("workflow and workflow_key are mutually exclusive")
	case req.Workflow != nil:
		return dagio.Decode(req.Workflow)
	case req.WorkflowKey != "":
		run, ok := workloads.ByKey(req.WorkflowKey)
		if !ok {
			return nil, fmt.Errorf("unknown workflow_key %q (known: %v)", req.WorkflowKey, workloads.Keys())
		}
		seed := req.WorkflowSeed
		if seed == 0 {
			seed = 1
		}
		return run.Generate(seed), nil
	default:
		return nil, fmt.Errorf("one of workflow or workflow_key is required")
	}
}

// ConfigFromRequest translates a create request into a dispatcher Config,
// consulting the factory for the controller. Exported for the in-process
// driver, which builds dispatchers without HTTP.
func ConfigFromRequest(req *CreateRunRequest, factory ControllerFactory) (Config, error) {
	wf, err := resolveWorkflow(req)
	if err != nil {
		return Config{}, fmt.Errorf("workflow: %w", err)
	}
	policy := req.Policy
	if policy == "" {
		policy = "wire"
	}
	ctrl, err := factory(policy, req.Controller)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Workflow:   wf,
		Controller: ctrl,
		Cloud: cloud.Config{
			SlotsPerInstance: req.SlotsPerInstance,
			LagTime:          req.LagTimeS,
			ChargingUnit:     req.ChargingUnitS,
			MaxInstances:     req.MaxInstances,
		},
		Interval:         req.IntervalS,
		InitialInstances: req.InitialInstances,
		Timescale:        req.Timescale,
		BusyFrac:         req.BusyFrac,
		LeaseFactor:      req.LeaseFactor,
		LeaseSlack:       wallMs(req.LeaseSlackMs),
		HeartbeatTTL:     wallMs(req.HeartbeatTTLMs),
		MaxWall:          wallMs(req.MaxWallMs),

		MaxTaskAttempts:   req.MaxTaskAttempts,
		RequeueBase:       wallMs(req.RequeueBaseMs),
		SpeculationFactor: req.SpeculationFactor,
	}, nil
}

func (g *Registry) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRunRequest
	if !readJSON(w, r, &req) {
		return
	}
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; no new runs")
		return
	}
	if len(g.runs) >= g.cfg.MaxRuns {
		g.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "max_runs",
			"run limit %d reached; delete a run or retry later", g.cfg.MaxRuns)
		return
	}
	g.mu.Unlock()

	cfg, err := ConfigFromRequest(&req, g.cfg.Factory)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	// Journal the full request so a restarted daemon can rebuild the
	// dispatcher from the run's own journal (crash recovery).
	cfg.Spec, _ = json.Marshal(&req)
	id := newRunID()
	cfg.Logf = func(format string, args ...any) {
		g.cfg.Logf("live %s: "+format, append([]any{id}, args...)...)
	}
	var sink *FileSink
	if g.cfg.JournalDir != "" {
		sink, err = NewFileSink(filepath.Join(g.cfg.JournalDir, id+".jsonl"))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", "journal: %v", err)
			return
		}
		cfg.Journal = sink
	}
	d, err := NewDispatcher(cfg)
	if err != nil {
		if sink != nil {
			sink.Close()
		}
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}

	g.mu.Lock()
	if len(g.runs) >= g.cfg.MaxRuns || g.draining {
		g.mu.Unlock()
		d.Abort("rejected at capacity")
		if sink != nil {
			sink.Close()
		}
		writeError(w, http.StatusTooManyRequests, "max_runs", "run limit reached")
		return
	}
	g.runs[id] = &runEntry{id: id, d: d, sink: sink}
	g.mu.Unlock()
	g.cfg.Logf("live %s: created (%s, %d tasks, policy %s, timescale %gx)",
		id, d.Workflow().Name, d.Workflow().NumTasks(), d.Config().Controller.Name(), d.Config().Timescale)

	if req.Start {
		if err := d.Start(); err != nil {
			writeError(w, http.StatusInternalServerError, "internal", "start: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, g.runInfo(id, d))
}

func (g *Registry) runInfo(id string, d *Dispatcher) RunInfo {
	wf := d.Workflow()
	return RunInfo{
		ID:        id,
		Workflow:  wf.Name,
		Tasks:     wf.NumTasks(),
		Stages:    wf.NumStages(),
		Policy:    d.Config().Controller.Name(),
		Timescale: d.Config().Timescale,
		State:     d.State(),
	}
}

func (g *Registry) get(w http.ResponseWriter, r *http.Request) *runEntry {
	id := r.PathValue("id")
	g.mu.Lock()
	e := g.runs[id]
	g.mu.Unlock()
	if e == nil {
		writeError(w, http.StatusNotFound, "not_found", "run %q not found", id)
		return nil
	}
	return e
}

func (g *Registry) handleList(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	ids := make([]string, 0, len(g.runs))
	for id := range g.runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]*runEntry, 0, len(ids))
	for _, id := range ids {
		entries = append(entries, g.runs[id])
	}
	g.mu.Unlock()
	out := make([]RunInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, g.runInfo(e.id, e.d))
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *Registry) handleStatus(w http.ResponseWriter, r *http.Request) {
	e := g.get(w, r)
	if e == nil {
		return
	}
	resp := e.d.Status()
	resp.ID = e.id
	writeJSON(w, http.StatusOK, resp)
}

func (g *Registry) handleStart(w http.ResponseWriter, r *http.Request) {
	e := g.get(w, r)
	if e == nil {
		return
	}
	if err := e.d.Start(); err != nil {
		writeError(w, http.StatusConflict, "run_over", "%v", err)
		return
	}
	resp := e.d.Status()
	resp.ID = e.id
	writeJSON(w, http.StatusOK, resp)
}

func (g *Registry) handleStream(w http.ResponseWriter, r *http.Request) {
	e := g.get(w, r)
	if e == nil {
		return
	}
	writeJSON(w, http.StatusOK, PlanStreamResponse{Records: e.d.Records()})
}

func (g *Registry) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.mu.Lock()
	e := g.runs[id]
	if e != nil {
		delete(g.runs, id)
		g.retired.Add(e.d.Counters())
	}
	g.mu.Unlock()
	if e == nil {
		writeError(w, http.StatusNotFound, "not_found", "run %q not found", id)
		return
	}
	e.d.Abort("deleted")
	if e.sink != nil {
		e.sink.Close()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleRegister(w http.ResponseWriter, r *http.Request) {
	e := g.get(w, r)
	if e == nil {
		return
	}
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := e.d.Register(req.Name, req.Slots)
	if err != nil {
		// Distinguish the terminal rejection (run already over) from
		// transient server trouble so agents can exit with a typed error
		// instead of retrying forever.
		if errors.Is(err, ErrRunOver) {
			writeError(w, http.StatusConflict, "run_over", "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (g *Registry) handlePoll(w http.ResponseWriter, r *http.Request) {
	e := g.get(w, r)
	if e == nil {
		return
	}
	var req PollRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := e.d.Poll(r.Context(), r.PathValue("agent"), wallMs(req.WaitMs))
	if err != nil {
		g.writeAgentError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Registry) leaseID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	v, err := strconv.ParseInt(r.PathValue("lease"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid lease id %q", r.PathValue("lease"))
		return 0, false
	}
	return v, true
}

func (g *Registry) handleTransfer(w http.ResponseWriter, r *http.Request) {
	e := g.get(w, r)
	if e == nil {
		return
	}
	id, ok := g.leaseID(w, r)
	if !ok {
		return
	}
	var rep TransferReport
	if !readJSON(w, r, &rep) {
		return
	}
	ack, err := e.d.ReportTransfer(r.PathValue("agent"), id, rep)
	if err != nil {
		g.writeAgentError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (g *Registry) handleComplete(w http.ResponseWriter, r *http.Request) {
	e := g.get(w, r)
	if e == nil {
		return
	}
	id, ok := g.leaseID(w, r)
	if !ok {
		return
	}
	var rep CompleteReport
	if !readJSON(w, r, &rep) {
		return
	}
	ack, err := e.d.Complete(r.PathValue("agent"), id, rep)
	if err != nil {
		g.writeAgentError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (g *Registry) writeAgentError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownAgent):
		writeError(w, http.StatusNotFound, "unknown_agent", "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, "canceled", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}
