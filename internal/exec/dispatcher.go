package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Errors returned by the dispatcher's protocol methods.
var (
	// ErrUnknownAgent: the agent ID is not registered (or was failed and
	// removed). Agents re-register on this error.
	ErrUnknownAgent = errors.New("exec: unknown agent")
	// ErrRunOver: the run already finished; no new registrations.
	ErrRunOver = errors.New("exec: run is over")
	// ErrNotStarted: the operation needs a started run.
	ErrNotStarted = errors.New("exec: run not started")
)

// leaseState tracks one lease through its lifecycle.
type leaseState int

const (
	leaseActive leaseState = iota
	leaseCompleted
	leaseReclaimed
	// leaseSuperseded: retired because the task's other copy won the race
	// (speculation) or because this copy's agent vanished while a healthy
	// duplicate survived. The task is NOT requeued — it still runs.
	leaseSuperseded
)

// lease is one granted task execution.
type lease struct {
	id        int64
	task      dag.TaskID
	agent     *agentState
	state     leaseState
	grantedAt simtime.Time
	deadline  time.Time
	delivered bool
	timer     *time.Timer
	// spec marks a speculative straggler duplicate; attempt is the task's
	// execution attempt number carried on the wire for chaos determinism.
	spec    bool
	attempt int
}

// agentState is one registered worker process.
type agentState struct {
	id       string
	name     string
	slots    int
	lastSeen time.Time
	inst     *instRec // nil while parked
	leases   map[int64]*lease
	gone     bool
}

func (a *agentState) status() string {
	switch {
	case a.gone:
		return "gone"
	case a.inst == nil:
		return "parked"
	case a.inst.draining:
		return "draining"
	case a.inst.inst.State == cloud.Active:
		return "active"
	default:
		return "pending"
	}
}

// capacity is how many concurrent leases the agent's instance may hold: the
// site's slots-per-instance, further limited by what the agent advertises.
func (a *agentState) capacity() int {
	if a.inst == nil {
		return 0
	}
	c := a.inst.inst.Slots
	if a.slots < c {
		c = a.slots
	}
	return c
}

// instRec is one logical cloud instance and its agent binding.
type instRec struct {
	inst     *cloud.Instance
	agent    *agentState // nil while unbound
	draining bool
	termTime *time.Timer
}

// taskState mirrors the simulator's per-task bookkeeping, fed by measured
// agent reports instead of sampled ground truth.
type taskState struct {
	state    monitor.TaskState
	waiting  int
	readyAt  simtime.Time
	priority bool

	startedAt simtime.Time
	agent     string
	instance  cloud.InstanceID
	leaseID   int64

	transferObserved   bool
	transferTime       simtime.Duration
	transferObservedAt simtime.Time
	execTime           simtime.Duration
	completedAt        simtime.Time

	restarts int

	// specLease is the task's speculative duplicate lease (0 when none);
	// leaseID above always names the primary copy.
	specLease int64
	// failedAttempts counts failed executions (crash reports + reclaims)
	// against Config.MaxTaskAttempts.
	failedAttempts int
	// pendingRequeue is set between a failed attempt and the task's
	// backoff-delayed return to the ready queue.
	pendingRequeue bool
	requeueTimer   *time.Timer
}

// LiveResult summarizes a finished live run with the simulator's metrics
// vocabulary, plus the live plane's own accounting.
type LiveResult struct {
	Workflow string `json:"workflow"`
	Policy   string `json:"policy"`

	MakespanS      simtime.Duration `json:"makespan_s"`
	UnitsCharged   int              `json:"units_charged"`
	ChargedSeconds float64          `json:"charged_seconds"`
	Utilization    float64          `json:"utilization"`

	PeakPool      int `json:"peak_pool"`
	Launches      int `json:"launches"`
	Restarts      int `json:"restarts"`
	Failures      int `json:"failures"`
	Decisions     int `json:"decisions"`
	DeadOnArrival int `json:"dead_on_arrival,omitempty"`

	Timescale     float64  `json:"timescale"`
	WallElapsedMs int64    `json:"wall_elapsed_ms"`
	Counters      Counters `json:"counters"`

	// Degraded marks a run that finished with tasks quarantined (poison
	// tasks that exhausted their attempt budget) and therefore skipped
	// their unreachable descendants.
	Degraded         bool `json:"degraded,omitempty"`
	QuarantinedTasks int  `json:"quarantined_tasks,omitempty"`
	UnreachableTasks int  `json:"unreachable_tasks,omitempty"`
}

// agentHealth scores one worker by name (names survive re-registration, so a
// flaky process that reconnects keeps its record). An agent whose failure
// events reach the configured threshold at the configured ratio is
// blacklisted — no new leases — until the cooldown elapses.
type agentHealth struct {
	completions      int64
	failures         int64
	blacklistedUntil time.Time
}

// Dispatcher owns one live workflow run: the ready queue, the lease table,
// the agent registry, the billing site on the scaled wall clock, and the
// MAPE control loop. All state is guarded by one mutex; wall-clock timers
// re-check state under the lock, so late or duplicate firings are harmless.
type Dispatcher struct {
	cfg   Config
	wf    *dag.Workflow
	clock *cloud.ScaledClock
	site  *cloud.Site

	mu      sync.Mutex
	state   RunState
	runErr  error
	queue   *sched.Queue
	tasks   []taskState
	agents  map[string]*agentState
	insts   map[cloud.InstanceID]*instRec
	leases  map[int64]*lease
	waiters []chan struct{}
	health  map[string]*agentHealth
	// unreach holds quarantined tasks plus their transitive successors:
	// work the run will never execute. The finish condition becomes
	// completed + |unreach| == NumTasks, so a poisoned run still ends.
	unreach map[dag.TaskID]bool
	// pred is the speculation predictor (nil unless SpeculationFactor>0):
	// the paper's online occupancy estimators, fed the same snapshots the
	// controller sees, deciding when a running lease counts as a straggler.
	pred *predict.Predictor

	agentSeq  int
	leaseSeq  int64
	recSeq    int64
	completed int
	restarts  int
	failures  int
	peakPool  int
	launches  int
	decisions int
	lastTick  simtime.Time
	tickSeq   int
	counters  Counters
	records   []PlanRecord
	result    *LiveResult
	draining  bool

	createdWall time.Time
	startWall   time.Time
	doneAt      simtime.Time

	tickTimer *time.Timer
	reapTimer *time.Timer
	wallTimer *time.Timer
	done      chan struct{}
}

// NewDispatcher builds a run in the Created state: agents may register, the
// clock starts on Start.
func NewDispatcher(cfg Config) (*Dispatcher, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	clock, err := cloud.NewScaledClock(cfg.Timescale, cfg.now)
	if err != nil {
		return nil, err
	}
	site, err := cloud.NewSite(cfg.Cloud)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{
		cfg:         cfg,
		wf:          cfg.Workflow,
		clock:       clock,
		site:        site,
		queue:       sched.NewQueue(),
		tasks:       make([]taskState, cfg.Workflow.NumTasks()),
		agents:      make(map[string]*agentState),
		insts:       make(map[cloud.InstanceID]*instRec),
		leases:      make(map[int64]*lease),
		health:      make(map[string]*agentHealth),
		unreach:     make(map[dag.TaskID]bool),
		createdWall: cfg.now(),
		done:        make(chan struct{}),
	}
	if cfg.SpeculationFactor > 0 {
		d.pred = predict.New(predict.Config{})
	}
	if cfg.Journal != nil && len(cfg.Spec) > 0 {
		d.journalLocked(Record{Kind: RecRunCreated, Detail: cfg.Workflow.Name, Spec: cfg.Spec})
	}
	for _, t := range d.wf.Tasks {
		d.tasks[t.ID].waiting = len(t.Deps)
		d.tasks[t.ID].state = monitor.Blocked
	}
	for _, id := range d.wf.Roots() {
		d.markReadyLocked(id, 0)
	}
	return d, nil
}

// Workflow returns the run's DAG.
func (d *Dispatcher) Workflow() *dag.Workflow { return d.wf }

// Config returns the effective (defaulted) configuration.
func (d *Dispatcher) Config() Config { return d.cfg }

// Done is closed when the run reaches Done or Failed.
func (d *Dispatcher) Done() <-chan struct{} { return d.done }

// Wait blocks until the run finishes or ctx is canceled, then returns the
// result (nil on Failed) and the run error.
func (d *Dispatcher) Wait(ctx context.Context) (*LiveResult, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-d.done:
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.result, d.runErr
}

// emitLocked forwards an event to the observer. Called under the lock; the
// observer must not call back into the dispatcher.
func (d *Dispatcher) emitLocked(ev sim.Event) {
	if d.cfg.Observer != nil {
		d.cfg.Observer(ev)
	}
}

func (d *Dispatcher) journalLocked(r Record) {
	if d.cfg.Journal == nil {
		return
	}
	d.recSeq++
	r.Seq = d.recSeq
	r.WallMs = d.cfg.now().Sub(d.createdWall).Milliseconds()
	d.cfg.Journal.Append(r)
}

// notifyLocked wakes every parked long-poll.
func (d *Dispatcher) notifyLocked() {
	for _, ch := range d.waiters {
		close(ch)
	}
	d.waiters = nil
}

// Start anchors the scaled clock, orders the bootstrap pool, and arms the
// control loop. Idempotent; an already finished run returns ErrRunOver.
func (d *Dispatcher) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.state {
	case Running:
		return nil
	case Done, Failed:
		return ErrRunOver
	}
	d.state = Running
	d.clock.Start()
	d.startWall = d.cfg.now()
	d.journalLocked(Record{Kind: RecRunStarted, Detail: d.wf.Name})

	for i := 0; i < d.cfg.InitialInstances; i++ {
		if _, err := d.launchLocked(0); err != nil {
			d.failLocked(fmt.Errorf("exec: initial pool: %w", err))
			return d.runErr
		}
	}
	d.bindAgentsLocked()

	d.tickSeq = 1
	d.tickTimer = time.AfterFunc(d.clock.WallUntil(simtime.Time(d.tickSeq)*simtime.Time(d.cfg.Interval)), d.onTick)
	reap := d.cfg.HeartbeatTTL / 2
	if reap < 50*time.Millisecond {
		reap = 50 * time.Millisecond
	}
	d.reapTimer = time.AfterFunc(reap, d.onReap)
	d.wallTimer = time.AfterFunc(d.cfg.MaxWall, func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.state != Running {
			return
		}
		d.failLocked(fmt.Errorf("exec: run exceeded wall horizon %v with %d/%d tasks done",
			d.cfg.MaxWall, d.completed, d.wf.NumTasks()))
	})
	return nil
}

// launchLocked orders one instance at simulated time now and arms its
// activation and DOA timers.
func (d *Dispatcher) launchLocked(now simtime.Time) (*instRec, error) {
	in, err := d.site.Launch(now)
	if err != nil {
		return nil, err
	}
	ir := &instRec{inst: in}
	d.insts[in.ID] = ir
	d.launches++
	if held := d.site.Held(); held > d.peakPool {
		d.peakPool = held
	}
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvInstanceLaunch, Task: -1, Instance: in.ID})
	d.journalLocked(Record{Kind: RecInstanceLaunch, NowS: now, Instance: intPtr(int(in.ID))})

	id := in.ID
	time.AfterFunc(d.clock.WallUntil(in.ActiveAt), func() { d.onActivation(id) })
	time.AfterFunc(d.clock.WallUntil(in.ActiveAt+d.cfg.DOAGrace), func() { d.onDOACheck(id) })
	return ir, nil
}

// onActivation fires at an instance's nominal activation time: if an agent
// is bound, the instance goes active and leases start flowing.
func (d *Dispatcher) onActivation(id cloud.InstanceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return
	}
	ir, ok := d.insts[id]
	if !ok || ir.inst.State != cloud.Pending || ir.agent == nil {
		return // unbound: the DOA timer decides its fate
	}
	d.activateLocked(ir)
	d.dispatchLocked()
	d.notifyLocked()
}

func (d *Dispatcher) activateLocked(ir *instRec) {
	now := d.clock.Now()
	if simtime.Before(now, ir.inst.ActiveAt) {
		now = ir.inst.ActiveAt // timer fired a hair early
	}
	if err := d.site.Activate(ir.inst, now); err != nil {
		d.failLocked(err)
		return
	}
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvInstanceActive, Task: -1, Instance: ir.inst.ID})
	d.journalLocked(Record{Kind: RecInstanceActive, NowS: now, Instance: intPtr(int(ir.inst.ID)), Agent: ir.agent.id})
}

// onDOACheck fires one grace window after nominal activation: a launch that
// never bound an agent is written off dead-on-arrival and canceled unbilled,
// exactly like the simulator's DOA fault path.
func (d *Dispatcher) onDOACheck(id cloud.InstanceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return
	}
	ir, ok := d.insts[id]
	if !ok || ir.inst.State != cloud.Pending {
		return
	}
	now := d.clock.Now()
	d.counters.DOAWriteoffs++
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvInstanceDOA, Task: -1, Instance: id})
	d.journalLocked(Record{Kind: RecInstanceDOA, NowS: now, Instance: intPtr(int(id))})
	if ir.agent != nil { // bound but still pending: impossible unless racing activation; park the agent
		ir.agent.inst = nil
		ir.agent = nil
	}
	if err := d.site.Terminate(ir.inst, now); err != nil {
		d.failLocked(err)
	}
}

// bindAgentsLocked pairs unbound, non-terminated instances with parked
// agents, lowest instance ID first, in registration order. A binding past
// the nominal activation time activates immediately (the agent was late to
// the party but the lag has elapsed).
func (d *Dispatcher) bindAgentsLocked() {
	ids := make([]int, 0, len(d.insts))
	for id := range d.insts {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		ir := d.insts[cloud.InstanceID(id)]
		if ir.inst.State == cloud.Terminated || ir.agent != nil || ir.draining {
			continue
		}
		a := d.pickParkedLocked()
		if a == nil {
			return
		}
		a.inst = ir
		ir.agent = a
		now := d.clock.Now()
		d.journalLocked(Record{Kind: RecAgentBound, NowS: now, Agent: a.id, Instance: intPtr(id)})
		if ir.inst.State == cloud.Pending && simtime.AtOrAfter(now, ir.inst.ActiveAt) {
			d.activateLocked(ir)
		}
	}
}

// pickParkedLocked returns the longest-registered parked agent that is not
// blacklisted — binding a blacklisted agent would starve its instance, since
// no leases may flow to it anyway.
func (d *Dispatcher) pickParkedLocked() *agentState {
	wall := d.cfg.now()
	var best *agentState
	for _, a := range d.agents {
		if a.gone || a.inst != nil || d.blacklistedLocked(a.name, wall) {
			continue
		}
		if best == nil || a.id < best.id {
			best = a
		}
	}
	return best
}

// Register adds a worker. Agents registered before Start are bound to the
// bootstrap pool; later registrants park until a launch needs them.
func (d *Dispatcher) Register(name string, slots int) (RegisterResponse, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Done || d.state == Failed {
		return RegisterResponse{}, ErrRunOver
	}
	if slots <= 0 {
		slots = 1
	}
	// Reconnect: a returning agent is recognized by name. It keeps its
	// identity and its outstanding leases — they are re-marked undelivered
	// so the next poll reissues them. This is how a worker (or the whole
	// recovered daemon) survives a restart without losing lease identity.
	if name != "" {
		for _, a := range d.agents {
			if a.name != name || a.gone {
				continue
			}
			a.slots = slots
			a.lastSeen = d.cfg.now()
			redelivered := 0
			for _, l := range a.leases {
				if l.state == leaseActive && l.delivered {
					l.delivered = false
					redelivered++
				}
			}
			d.journalLocked(Record{Kind: RecAgentReconnected, NowS: d.clock.Now(),
				Agent: a.id, Slots: slots, Detail: name})
			d.cfg.Logf("exec: agent %s (%s) reconnected, %d leases reissued", a.id, name, redelivered)
			if d.state == Running {
				d.bindAgentsLocked()
				d.dispatchLocked()
				d.notifyLocked()
			}
			return RegisterResponse{AgentID: a.id, HeartbeatTTLMs: d.cfg.HeartbeatTTL.Milliseconds()}, nil
		}
	}
	d.agentSeq++
	id := fmt.Sprintf("a%d", d.agentSeq)
	if name == "" {
		name = id
	}
	a := &agentState{
		id:       id,
		name:     name,
		slots:    slots,
		lastSeen: d.cfg.now(),
		leases:   make(map[int64]*lease),
	}
	d.agents[id] = a
	d.counters.AgentsRegistered++
	d.journalLocked(Record{Kind: RecAgentRegistered, NowS: d.clock.Now(), Agent: id, Slots: slots, Detail: name})
	if d.state == Running {
		d.bindAgentsLocked()
		d.dispatchLocked()
	}
	return RegisterResponse{AgentID: id, HeartbeatTTLMs: d.cfg.HeartbeatTTL.Milliseconds()}, nil
}

func (d *Dispatcher) markReadyLocked(id dag.TaskID, now simtime.Time) {
	ts := &d.tasks[id]
	ts.state = monitor.Ready
	ts.readyAt = now
	d.queue.Push(id, d.wf.Task(id).Stage, now)
}

// dispatchLocked grants ready tasks to free capacity on active, non-draining
// instances with live agents, lowest instance ID first — the simulator's
// dispatch order, so live and simulated runs assign work identically.
func (d *Dispatcher) dispatchLocked() {
	if d.state != Running || d.draining {
		return
	}
	now := d.clock.Now()
	for d.queue.Len() > 0 {
		a := d.pickAgentLocked(now)
		if a == nil {
			return
		}
		it, _ := d.queue.Pop()
		d.grantLocked(it, a, now)
	}
}

func (d *Dispatcher) pickAgentLocked(now simtime.Time) *agentState {
	return d.pickAgentExcludingLocked(now, nil)
}

// pickAgentExcludingLocked returns the lowest-instance-ID agent with free
// capacity, skipping the excluded agent (speculation must pick a *different*
// worker) and any agent currently blacklisted by health scoring.
func (d *Dispatcher) pickAgentExcludingLocked(now simtime.Time, exclude *agentState) *agentState {
	wall := d.cfg.now()
	var best *agentState
	for _, ir := range d.insts {
		a := ir.agent
		if a == nil || a.gone || a == exclude || ir.draining {
			continue
		}
		if ir.inst.State != cloud.Active || !ir.inst.UsableAt(now) {
			continue
		}
		if len(a.leases) >= a.capacity() {
			continue
		}
		if d.blacklistedLocked(a.name, wall) {
			continue
		}
		if best == nil || ir.inst.ID < best.inst.inst.ID {
			best = a
		}
	}
	return best
}

// grantLocked creates a lease for one ready task on an agent. The lease
// deadline bounds the agent's wall-clock occupancy: the expected scaled
// duration times LeaseFactor, plus slack.
func (d *Dispatcher) grantLocked(it sched.Item, a *agentState, now simtime.Time) {
	t := d.wf.Task(it.Task)
	d.leaseSeq++
	expected := d.clock.WallDuration(t.ExecTime + t.TransferTime)
	ttl := time.Duration(float64(expected)*d.cfg.LeaseFactor) + d.cfg.LeaseSlack
	ts := &d.tasks[it.Task]
	l := &lease{
		id:        d.leaseSeq,
		task:      it.Task,
		agent:     a,
		grantedAt: now,
		deadline:  d.cfg.now().Add(ttl),
		attempt:   ts.failedAttempts + 1,
	}
	a.leases[l.id] = l
	d.leases[l.id] = l
	d.counters.LeasesGranted++

	ts.state = monitor.Running
	ts.priority = it.Priority
	ts.startedAt = now
	ts.agent = a.id
	ts.instance = a.inst.inst.ID
	ts.leaseID = l.id
	ts.specLease = 0
	ts.pendingRequeue = false
	ts.transferObserved = false
	ts.transferTime = 0

	d.emitLocked(sim.Event{Time: now, Kind: sim.EvTaskStart, Task: it.Task, Instance: a.inst.inst.ID})
	d.journalLocked(Record{Kind: RecLeaseGranted, NowS: now, Agent: a.id,
		Lease: int64Ptr(l.id), Task: intPtr(int(it.Task)), Instance: intPtr(int(a.inst.inst.ID))})

	id := l.id
	l.timer = time.AfterFunc(ttl, func() { d.onLeaseExpired(id) })
}

// leaseSpecLocked builds the wire lease for delivery.
func (d *Dispatcher) leaseSpecLocked(l *lease) Lease {
	t := d.wf.Task(l.task)
	return Lease{
		ID:    l.id,
		Task:  t.ID,
		Stage: t.Stage,
		Spec: TaskSpec{
			ExecS:     t.ExecTime,
			TransferS: t.TransferTime,
			InputMB:   t.InputSize,
			Timescale: d.cfg.Timescale,
			BusyFrac:  d.cfg.BusyFrac,
		},
		DeadlineMs:  time.Until(l.deadline).Milliseconds(),
		Attempt:     l.attempt,
		Speculative: l.spec,
	}
}

// healthFor returns (creating if needed) the named agent's health record.
func (d *Dispatcher) healthFor(name string) *agentHealth {
	h := d.health[name]
	if h == nil {
		h = &agentHealth{}
		d.health[name] = h
	}
	return h
}

// blacklistedLocked reports whether the named agent is inside a blacklist
// cooldown window. Reactivation is lazy: once the window passes, the agent is
// simply eligible again (its counters were reset at blacklist time, so it
// re-earns trust from a clean slate).
func (d *Dispatcher) blacklistedLocked(name string, wall time.Time) bool {
	h := d.health[name]
	return h != nil && wall.Before(h.blacklistedUntil)
}

// recordAgentFailureLocked debits n failure events against the named agent
// and blacklists it when the failure ratio crosses the configured threshold.
func (d *Dispatcher) recordAgentFailureLocked(name string, n int64, now simtime.Time) {
	if n <= 0 {
		return
	}
	h := d.healthFor(name)
	h.failures += n
	wall := d.cfg.now()
	if wall.Before(h.blacklistedUntil) {
		return // already serving a cooldown
	}
	total := h.completions + h.failures
	if h.failures < int64(d.cfg.HealthMinEvents) || float64(h.failures)/float64(total) < d.cfg.HealthFailureRatio {
		return
	}
	detail := fmt.Sprintf("failures=%d completions=%d cooldown=%v", h.failures, h.completions, d.cfg.HealthCooldown)
	h.blacklistedUntil = wall.Add(d.cfg.HealthCooldown)
	h.failures = 0
	h.completions = 0
	d.counters.AgentsBlacklisted++
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvAgentBlacklisted, Task: -1, Instance: -1})
	d.journalLocked(Record{Kind: RecAgentBlacklisted, NowS: now, Agent: name, Detail: detail})
	d.cfg.Logf("exec: agent %q blacklisted: %s", name, detail)
}

// Poll is the agent's heartbeat and lease pickup. It long-polls up to wait
// when the agent has no undelivered leases.
func (d *Dispatcher) Poll(ctx context.Context, agentID string, wait time.Duration) (PollResponse, error) {
	const maxWait = 30 * time.Second
	if wait > maxWait {
		wait = maxWait
	}
	deadline := d.cfg.now().Add(wait)
	for {
		d.mu.Lock()
		a, ok := d.agents[agentID]
		if !ok || a.gone {
			d.mu.Unlock()
			return PollResponse{}, ErrUnknownAgent
		}
		a.lastSeen = d.cfg.now()
		resp := PollResponse{Status: a.status(), Done: d.state == Done || d.state == Failed}
		for _, l := range a.leases {
			if l.state == leaseActive && !l.delivered {
				l.delivered = true
				resp.Leases = append(resp.Leases, d.leaseSpecLocked(l))
			}
		}
		sort.Slice(resp.Leases, func(i, j int) bool { return resp.Leases[i].ID < resp.Leases[j].ID })
		if len(resp.Leases) > 0 || resp.Done || d.cfg.now().Add(10*time.Millisecond).After(deadline) {
			d.mu.Unlock()
			return resp, nil
		}
		ch := make(chan struct{})
		d.waiters = append(d.waiters, ch)
		d.mu.Unlock()

		t := time.NewTimer(time.Until(deadline))
		select {
		case <-ctx.Done():
			t.Stop()
			return PollResponse{}, ctx.Err()
		case <-t.C:
		case <-ch:
			t.Stop()
		case <-d.done:
			t.Stop()
		}
	}
}

// ReportTransfer records the measured input-transfer duration of a running
// lease — the live counterpart of the simulator's mid-attempt transfer
// observation feeding Snapshot.RecentTransfers.
func (d *Dispatcher) ReportTransfer(agentID string, leaseID int64, rep TransferReport) (Ack, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.agents[agentID]
	if !ok {
		return Ack{}, ErrUnknownAgent
	}
	if !a.gone {
		a.lastSeen = d.cfg.now()
	}
	// A finished run accepts no observations: acknowledging stale keeps a
	// late report from resurrecting per-task state after an abort.
	if d.state != Running {
		d.counters.StaleReports++
		return Ack{Stale: true}, nil
	}
	l, ok := d.leases[leaseID]
	if !ok || l.state != leaseActive || l.agent != a {
		d.counters.StaleReports++
		return Ack{Stale: true}, nil
	}
	ts := &d.tasks[l.task]
	if l.id != ts.leaseID {
		// Speculative duplicate: accepted, but the task's transfer record
		// follows the primary copy only.
		return Ack{}, nil
	}
	ts.transferObserved = true
	ts.transferTime = rep.TransferS
	ts.transferObservedAt = d.clock.Now()
	return Ack{}, nil
}

// Complete finishes a lease with the agent's measured times. A stale lease
// (reclaimed, or superseded after an agent failure) is acknowledged and
// ignored — the task was requeued and runs elsewhere.
func (d *Dispatcher) Complete(agentID string, leaseID int64, rep CompleteReport) (Ack, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.agents[agentID]
	if !ok {
		return Ack{}, ErrUnknownAgent
	}
	if !a.gone {
		a.lastSeen = d.cfg.now()
	}
	// A finished run accepts no completions: without this gate a late
	// report after an abort could re-run the finish path (double close of
	// done) and resurrect deleted state.
	if d.state != Running {
		d.counters.StaleReports++
		return Ack{Stale: true}, nil
	}
	l, ok := d.leases[leaseID]
	if !ok || l.state != leaseActive || l.agent != a {
		d.counters.StaleReports++
		return Ack{Stale: true}, nil
	}
	now := d.clock.Now()
	ts := &d.tasks[l.task]

	if rep.Failed {
		// Failed attempt: the lease is consumed and the agent's health
		// debited. With a surviving duplicate the task still runs there —
		// this copy is merely superseded; otherwise it is reclaimed
		// against its attempt budget and requeued with backoff.
		d.cfg.Logf("exec: lease %d (task %d) failed on agent %s: %s", l.id, l.task, a.id, rep.Error)
		d.recordAgentFailureLocked(a.name, 1, now)
		if other := d.otherActiveLocked(ts, l); other != nil {
			d.supersedeLocked(l, now)
		} else {
			d.reclaimLocked(l, now, true, "task-failed")
		}
		d.dispatchLocked()
		d.notifyLocked()
		return Ack{}, nil
	}

	// First completion wins: retire the losing duplicate before recording
	// the winner, so the task's lease of record is the one that finished.
	if other := d.otherActiveLocked(ts, l); other != nil {
		d.supersedeLocked(other, now)
	}
	l.state = leaseCompleted
	if l.timer != nil {
		l.timer.Stop()
	}
	delete(a.leases, l.id)
	d.counters.LeasesCompleted++
	if l.spec {
		d.counters.SpeculationsWon++
	}
	d.healthFor(a.name).completions++

	ts.state = monitor.Completed
	ts.completedAt = now
	ts.execTime = rep.ExecS
	ts.transferTime = rep.TransferS
	ts.agent = a.id
	ts.instance = a.inst.inst.ID
	ts.leaseID = l.id
	ts.specLease = 0
	if !ts.transferObserved {
		ts.transferObserved = true
		ts.transferObservedAt = now
	}
	a.inst.inst.BusySlotSeconds += rep.ExecS + rep.TransferS
	d.completed++
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvTaskComplete, Task: l.task, Instance: a.inst.inst.ID})
	d.journalLocked(Record{Kind: RecLeaseCompleted, NowS: now, Agent: a.id,
		Lease: int64Ptr(l.id), Task: intPtr(int(l.task)), ExecS: rep.ExecS, TransferS: rep.TransferS})

	for _, s := range d.wf.Task(l.task).Succs {
		ss := &d.tasks[s]
		ss.waiting--
		if ss.waiting == 0 {
			d.markReadyLocked(s, now)
		}
	}
	if d.finishableLocked() {
		d.finishLocked(now)
		return Ack{}, nil
	}
	d.dispatchLocked()
	d.notifyLocked()
	return Ack{}, nil
}

// otherActiveLocked returns the task's other still-active lease (primary vs
// speculative duplicate), or nil.
func (d *Dispatcher) otherActiveLocked(ts *taskState, l *lease) *lease {
	otherID := ts.leaseID
	if l.id == ts.leaseID {
		otherID = ts.specLease
	}
	if otherID == 0 || otherID == l.id {
		return nil
	}
	o, ok := d.leases[otherID]
	if !ok || o.state != leaseActive {
		return nil
	}
	return o
}

// finishableLocked reports whether every task is accounted for: completed,
// or written off as quarantined/unreachable.
func (d *Dispatcher) finishableLocked() bool {
	return d.completed+len(d.unreach) == d.wf.NumTasks()
}

// onLeaseExpired fires at a lease's wall deadline: an agent that still holds
// it is declared failed and everything it leased is reclaimed.
func (d *Dispatcher) onLeaseExpired(id int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return
	}
	l, ok := d.leases[id]
	if !ok || l.state != leaseActive {
		return
	}
	d.cfg.Logf("exec: lease %d (task %d) expired on agent %s", l.id, l.task, l.agent.id)
	d.failAgentLocked(l.agent, "lease-expired")
}

// onReap periodically declares agents dead whose heartbeat lapsed.
func (d *Dispatcher) onReap() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return
	}
	cutoff := d.cfg.now().Add(-d.cfg.HeartbeatTTL)
	var stale []*agentState
	for _, a := range d.agents {
		if !a.gone && a.lastSeen.Before(cutoff) {
			stale = append(stale, a)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].id < stale[j].id })
	for _, a := range stale {
		d.cfg.Logf("exec: agent %s heartbeat lapsed", a.id)
		d.failAgentLocked(a, "heartbeat-lost")
	}
	reap := d.cfg.HeartbeatTTL / 2
	if reap < 50*time.Millisecond {
		reap = 50 * time.Millisecond
	}
	d.reapTimer = time.AfterFunc(reap, d.onReap)
}

// failAgentLocked removes a crashed or partitioned agent: every active lease
// is reclaimed (requeued exactly once — the lease state machine makes a
// second reclaim impossible), and its instance fails like a simulator MTBF
// crash.
func (d *Dispatcher) failAgentLocked(a *agentState, reason string) {
	if a.gone {
		return
	}
	a.gone = true
	d.counters.AgentsFailed++
	now := d.clock.Now()
	d.journalLocked(Record{Kind: RecAgentFailed, NowS: now, Agent: a.id, Detail: reason})

	ir := a.inst
	var debits int64 = 1 // the lapse/expiry itself
	for _, l := range sortedLeases(a.leases) {
		if l.state != leaseActive {
			continue
		}
		debits++
		ts := &d.tasks[l.task]
		if other := d.otherActiveLocked(ts, l); other != nil {
			// A healthy duplicate survives elsewhere: this copy is
			// superseded, not reclaimed — the task is not requeued.
			d.supersedeLocked(l, now)
		} else {
			d.reclaimLocked(l, now, true, reason)
		}
	}
	a.leases = make(map[int64]*lease)
	a.inst = nil
	d.recordAgentFailureLocked(a.name, debits, now)

	if ir != nil {
		ir.agent = nil
		d.failures++
		d.emitLocked(sim.Event{Time: now, Kind: sim.EvInstanceFailed, Task: -1, Instance: ir.inst.ID})
		d.terminateInstLocked(ir, now)
		// A parked agent may take over the vacated logical capacity only
		// via a fresh controller launch; the instance is gone, as in the
		// simulator.
	}
	delete(d.agents, a.id)
	d.dispatchLocked()
	d.notifyLocked()
}

func sortedLeases(m map[int64]*lease) []*lease {
	out := make([]*lease, 0, len(m))
	for _, l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// reclaimLocked retires a leased task's last active lease. The lease moves to
// the terminal reclaimed state first, so a duplicate expiry/failure path or a
// late agent report cannot requeue it twice. failure marks an attempt burned
// against the task's budget: the requeue is then delayed with exponential
// backoff, and a task at its MaxTaskAttempts budget is quarantined instead of
// requeued. Non-failure reclaims (controller releases) requeue immediately
// and stay off the budget.
func (d *Dispatcher) reclaimLocked(l *lease, now simtime.Time, failure bool, reason string) {
	l.state = leaseReclaimed
	if l.timer != nil {
		l.timer.Stop()
	}
	delete(l.agent.leases, l.id)
	d.counters.LeasesReclaimed++
	ts := &d.tasks[l.task]
	if l.agent.inst != nil {
		l.agent.inst.inst.BusySlotSeconds += now - l.grantedAt
	}
	ts.restarts++
	d.restarts++
	if failure {
		ts.failedAttempts++
	}
	ts.state = monitor.Ready
	ts.readyAt = now
	ts.agent = ""
	ts.leaseID = 0
	ts.specLease = 0
	ts.transferObserved = false
	ts.transferTime = 0
	var instID cloud.InstanceID = -1
	if l.agent.inst != nil {
		instID = l.agent.inst.inst.ID
	}
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvTaskKilled, Task: l.task, Instance: instID})
	d.journalLocked(Record{Kind: RecLeaseReclaimed, NowS: now, Agent: l.agent.id,
		Lease: int64Ptr(l.id), Task: intPtr(int(l.task)), Attempt: ts.failedAttempts, Detail: reason})

	if failure && d.cfg.MaxTaskAttempts > 0 && ts.failedAttempts >= d.cfg.MaxTaskAttempts {
		d.quarantineLocked(l.task, now)
		return
	}
	if failure {
		d.scheduleRequeueLocked(l.task, ts)
		return
	}
	d.requeueLocked(l.task, now)
}

// requeueLocked returns a reclaimed task to the ready queue, journaling the
// re-entry so crash recovery replays the exact queue order.
func (d *Dispatcher) requeueLocked(id dag.TaskID, now simtime.Time) {
	ts := &d.tasks[id]
	ts.pendingRequeue = false
	ts.readyAt = now
	d.queue.Requeue(id, d.wf.Task(id).Stage, now, ts.priority)
	d.journalLocked(Record{Kind: RecTaskRequeued, NowS: now, Task: intPtr(int(id)), Attempt: ts.failedAttempts})
}

// scheduleRequeueLocked arms the exponential-backoff delay before a failed
// task re-enters the ready queue: RequeueBase·2^(attempts-1), capped at 5 s
// of wall clock, so a poison task cannot hammer the pool between failures.
func (d *Dispatcher) scheduleRequeueLocked(id dag.TaskID, ts *taskState) {
	delay := d.cfg.RequeueBase
	for i := 1; i < ts.failedAttempts && delay < 5*time.Second; i++ {
		delay *= 2
	}
	if delay > 5*time.Second {
		delay = 5 * time.Second
	}
	ts.pendingRequeue = true
	ts.requeueTimer = time.AfterFunc(delay, func() { d.onRequeue(id) })
}

func (d *Dispatcher) onRequeue(id dag.TaskID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return
	}
	ts := &d.tasks[id]
	if !ts.pendingRequeue || ts.state != monitor.Ready {
		return
	}
	d.requeueLocked(id, d.clock.Now())
	d.dispatchLocked()
	d.notifyLocked()
}

// quarantineLocked retires a poison task after its attempt budget: it will
// never be scheduled again, its transitive successors become unreachable,
// and the run finishes Done-but-degraded once the remaining tasks complete.
func (d *Dispatcher) quarantineLocked(id dag.TaskID, now simtime.Time) {
	ts := &d.tasks[id]
	ts.state = monitor.Quarantined
	ts.pendingRequeue = false
	d.counters.QuarantinedTasks++
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvTaskQuarantined, Task: id, Instance: -1})
	d.journalLocked(Record{Kind: RecTaskQuarantined, NowS: now, Task: intPtr(int(id)), Attempt: ts.failedAttempts})
	d.cfg.Logf("exec: task %d quarantined after %d failed attempts", id, ts.failedAttempts)
	d.recomputeUnreachLocked()
	if d.finishableLocked() {
		d.finishLocked(now)
	}
}

// recomputeUnreachLocked rebuilds the unreachable set: quarantined tasks plus
// every transitive successor (blocked forever behind the quarantine).
func (d *Dispatcher) recomputeUnreachLocked() {
	d.unreach = make(map[dag.TaskID]bool)
	var visit func(id dag.TaskID)
	visit = func(id dag.TaskID) {
		if d.unreach[id] {
			return
		}
		d.unreach[id] = true
		for _, s := range d.wf.Task(id).Succs {
			visit(s)
		}
	}
	for i := range d.tasks {
		if d.tasks[i].state == monitor.Quarantined {
			visit(dag.TaskID(i))
		}
	}
}

// supersedeLocked retires the losing copy of a duplicated task: the race was
// decided (the other copy completed) or this copy's agent vanished while a
// healthy duplicate survived. The task is NOT requeued — it still runs or
// already finished on the other copy — so supersession keeps the lease
// identity without touching the queue.
func (d *Dispatcher) supersedeLocked(l *lease, now simtime.Time) {
	l.state = leaseSuperseded
	if l.timer != nil {
		l.timer.Stop()
	}
	delete(l.agent.leases, l.id)
	if l.agent.inst != nil {
		l.agent.inst.inst.BusySlotSeconds += now - l.grantedAt
	}
	d.counters.LeasesSuperseded++
	if l.spec {
		d.counters.SpeculationsWasted++
	}
	ts := &d.tasks[l.task]
	if ts.specLease == l.id {
		ts.specLease = 0
	} else if ts.leaseID == l.id {
		// The primary lost: promote the surviving duplicate to primary.
		if surv, ok := d.leases[ts.specLease]; ok && surv.state == leaseActive {
			ts.leaseID = surv.id
			ts.specLease = 0
			ts.agent = surv.agent.id
			if surv.agent.inst != nil {
				ts.instance = surv.agent.inst.inst.ID
			}
			ts.startedAt = surv.grantedAt
			ts.transferObserved = false
			ts.transferTime = 0
		} else {
			ts.specLease = 0
		}
	}
	d.journalLocked(Record{Kind: RecLeaseSuperseded, NowS: now, Agent: l.agent.id,
		Lease: int64Ptr(l.id), Task: intPtr(int(l.task))})
}

// terminateInstLocked ends a logical instance (billing stops; pending
// instances cancel unbilled).
func (d *Dispatcher) terminateInstLocked(ir *instRec, now simtime.Time) {
	if ir.inst.State == cloud.Terminated {
		return
	}
	at := now
	if ir.inst.State == cloud.Active && simtime.Before(at, ir.inst.ActiveAt) {
		at = ir.inst.ActiveAt
	}
	if err := d.site.Terminate(ir.inst, at); err != nil {
		d.failLocked(err)
		return
	}
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvInstanceTerminated, Task: -1, Instance: ir.inst.ID})
	d.journalLocked(Record{Kind: RecInstanceEnd, NowS: now, Instance: intPtr(int(ir.inst.ID))})
}

// releaseLocked executes a controller release order at time now: running
// leases are reclaimed (the simulator's kill-on-terminate semantics), the
// instance terminates, and the agent returns to the parked pool, available
// for future launches.
func (d *Dispatcher) releaseLocked(ir *instRec, now simtime.Time) {
	if ir.inst.State == cloud.Terminated {
		return
	}
	a := ir.agent
	if a != nil {
		for _, l := range sortedLeases(a.leases) {
			if l.state != leaseActive {
				continue
			}
			if other := d.otherActiveLocked(&d.tasks[l.task], l); other != nil {
				d.supersedeLocked(l, now)
			} else {
				d.reclaimLocked(l, now, false, "instance-released")
			}
		}
		a.leases = make(map[int64]*lease)
		a.inst = nil
		ir.agent = nil
		d.journalLocked(Record{Kind: RecAgentParked, NowS: now, Agent: a.id})
	}
	d.terminateInstLocked(ir, now)
	d.bindAgentsLocked()
	d.dispatchLocked()
	d.notifyLocked()
}

// onTick runs one MAPE iteration: assemble the snapshot from live state,
// consult the controller, record the pair for the parity twin, apply the
// decision with lag semantics.
func (d *Dispatcher) onTick() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return
	}
	d.tickSeq++
	d.tickTimer = time.AfterFunc(d.clock.WallUntil(simtime.Time(d.tickSeq)*simtime.Time(d.cfg.Interval)), d.onTick)

	now := d.clock.Now()
	snap := d.snapshotLocked(now)
	snapJSON, err := json.Marshal(snap)
	if err != nil {
		d.failLocked(err)
		return
	}
	d.lastTick = now

	dec := d.planLocked(snap)
	decJSON, err := json.Marshal(dec)
	if err != nil {
		d.failLocked(err)
		return
	}
	d.decisions++
	d.records = append(d.records, PlanRecord{
		Seq:      d.decisions,
		NowS:     float64(now),
		Snapshot: snapJSON,
		Decision: decJSON,
	})
	d.emitLocked(sim.Event{Time: now, Kind: sim.EvDecision, Task: -1, Instance: -1,
		Launch: dec.Launch, Released: len(dec.Releases)})
	// The full snapshot/decision pair rides in the journal so a restarted
	// daemon can serve the complete plan stream — the TwinVerify parity
	// certificate must survive the crash.
	d.journalLocked(Record{Kind: RecDecision, NowS: now,
		Detail:   fmt.Sprintf("launch=%d releases=%d", dec.Launch, len(dec.Releases)),
		Snapshot: snapJSON, Decision: decJSON})

	if err := d.applyLocked(dec, now); err != nil {
		d.failLocked(err)
		return
	}
	if d.pred != nil && d.state == Running {
		d.pred.Update(snap)
		d.speculateLocked(snap, now)
	}
	// Retry dispatch every tick: queued tasks may have become grantable with
	// no triggering event — most notably when a blacklisted agent's cooldown
	// lapses (reactivation is a lazy predicate, not a timer).
	d.dispatchLocked()
}

// speculateLocked scans running primaries for stragglers: a lease whose
// elapsed simulated time exceeds SpeculationFactor × the online predictor's
// occupancy estimate for the task (the same estimators the WIRE controller
// plans with) gets a duplicate lease on a different healthy agent. First
// completion wins; the loser is superseded and acked Stale on late reports.
func (d *Dispatcher) speculateLocked(snap *monitor.Snapshot, now simtime.Time) {
	for i := range d.tasks {
		ts := &d.tasks[i]
		if ts.state != monitor.Running || ts.specLease != 0 {
			continue
		}
		primary, ok := d.leases[ts.leaseID]
		if !ok || primary.state != leaseActive {
			continue
		}
		id := dag.TaskID(i)
		est, pol := d.pred.EstimateOccupancy(snap, id)
		// RunningMedian is self-referential (a lone straggler drags its own
		// threshold), and Zero/Prior carry no observed signal yet.
		if est <= 0 || pol == predict.PolicyZero || pol == predict.PolicyRunningMedian || pol == predict.PolicyPrior {
			continue
		}
		if float64(now-ts.startedAt) <= d.cfg.SpeculationFactor*est {
			continue
		}
		a := d.pickAgentExcludingLocked(now, primary.agent)
		if a == nil {
			continue // no healthy second agent; retry next tick
		}
		t := d.wf.Task(id)
		d.leaseSeq++
		expected := d.clock.WallDuration(t.ExecTime + t.TransferTime)
		ttl := time.Duration(float64(expected)*d.cfg.LeaseFactor) + d.cfg.LeaseSlack
		l := &lease{
			id:        d.leaseSeq,
			task:      id,
			agent:     a,
			grantedAt: now,
			deadline:  d.cfg.now().Add(ttl),
			spec:      true,
			attempt:   primary.attempt,
		}
		a.leases[l.id] = l
		d.leases[l.id] = l
		ts.specLease = l.id
		d.counters.LeasesGranted++
		d.counters.SpeculationsLaunched++
		d.emitLocked(sim.Event{Time: now, Kind: sim.EvTaskSpeculated, Task: id, Instance: a.inst.inst.ID})
		d.journalLocked(Record{Kind: RecLeaseSpeculated, NowS: now, Agent: a.id,
			Lease: int64Ptr(l.id), Task: intPtr(int(id)), Instance: intPtr(int(a.inst.inst.ID)), Attempt: l.attempt})
		d.cfg.Logf("exec: speculating task %d (elapsed %.1fs > %.1f×%.1fs) on agent %s",
			id, now-ts.startedAt, d.cfg.SpeculationFactor, est, a.id)
		lid := l.id
		l.timer = time.AfterFunc(ttl, func() { d.onLeaseExpired(lid) })
		d.notifyLocked()
	}
}

// planLocked calls the controller, converting a policy panic into a run
// failure instead of taking the process down.
func (d *Dispatcher) planLocked(snap *monitor.Snapshot) (dec sim.Decision) {
	defer func() {
		if r := recover(); r != nil {
			d.failLocked(fmt.Errorf("exec: controller panic: %v", r))
			dec = sim.Decision{}
		}
	}()
	return d.cfg.Controller.Plan(snap)
}

// applyLocked maps a pool decision onto agents and billing, mirroring the
// simulator's apply.
func (d *Dispatcher) applyLocked(dec sim.Decision, now simtime.Time) error {
	if dec.Launch < 0 {
		return fmt.Errorf("exec: controller %s requested negative launch %d", d.cfg.Controller.Name(), dec.Launch)
	}
	for i := 0; i < dec.Launch; i++ {
		if _, err := d.launchLocked(now); err != nil {
			if err == cloud.ErrSiteFull {
				break // best effort at the cap
			}
			return err
		}
	}
	d.bindAgentsLocked()
	for _, ro := range dec.Releases {
		ir, ok := d.insts[ro.Instance]
		if !ok {
			return fmt.Errorf("exec: controller %s released unknown instance %d", d.cfg.Controller.Name(), ro.Instance)
		}
		if ir.inst.State == cloud.Terminated {
			return fmt.Errorf("exec: controller %s released terminated instance %d", d.cfg.Controller.Name(), ro.Instance)
		}
		if ir.draining {
			continue
		}
		ir.draining = true
		at := now
		if ro.AtBoundary && ir.inst.State == cloud.Active {
			at = ir.inst.NextChargeBoundary(now)
		}
		if simtime.AtOrBefore(at, now) {
			d.releaseLocked(ir, now)
			continue
		}
		rec := ir
		ir.termTime = time.AfterFunc(d.clock.WallUntil(at), func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			if d.state != Running {
				return
			}
			d.releaseLocked(rec, d.clock.Now())
		})
	}
	return nil
}

// snapshotLocked assembles the monitoring view from live agent telemetry —
// the same structure the simulator builds from its event state, but every
// time here was measured on a wall clock by a worker process.
func (d *Dispatcher) snapshotLocked(now simtime.Time) *monitor.Snapshot {
	snap := &monitor.Snapshot{
		Now:              now,
		Interval:         d.cfg.Interval,
		ChargingUnit:     d.cfg.Cloud.ChargingUnit,
		LagTime:          d.cfg.Cloud.LagTime,
		SlotsPerInstance: d.cfg.Cloud.SlotsPerInstance,
		MaxInstances:     d.cfg.Cloud.MaxInstances,
		Workflow:         d.wf,
		Tasks:            make([]monitor.TaskRecord, d.wf.NumTasks()),
	}
	for _, t := range d.wf.Tasks {
		ts := &d.tasks[t.ID]
		rec := monitor.TaskRecord{
			ID:        t.ID,
			Stage:     t.Stage,
			State:     ts.state,
			InputSize: t.InputSize,
			ReadyAt:   ts.readyAt,
		}
		switch ts.state {
		case monitor.Running:
			rec.StartedAt = ts.startedAt
			rec.Instance = ts.instance
			rec.Elapsed = now - ts.startedAt
			if ts.transferObserved {
				rec.TransferObserved = true
				rec.TransferTime = ts.transferTime
			}
		case monitor.Completed:
			rec.StartedAt = ts.startedAt
			rec.Instance = ts.instance
			rec.CompletedAt = ts.completedAt
			rec.ExecTime = ts.execTime
			rec.TransferObserved = true
			rec.TransferTime = ts.transferTime
		}
		snap.Tasks[t.ID] = rec

		if (ts.state == monitor.Running || ts.state == monitor.Completed) && ts.transferObserved {
			if simtime.After(ts.transferObservedAt, d.lastTick) && simtime.AtOrBefore(ts.transferObservedAt, now) {
				snap.RecentTransfers = append(snap.RecentTransfers, float64(ts.transferTime))
			}
		}
	}
	for _, in := range d.site.Instances() {
		if in.State == cloud.Terminated {
			continue
		}
		ir := d.insts[in.ID]
		rec := monitor.InstanceRecord{
			ID:               in.ID,
			State:            in.State,
			Slots:            in.Slots,
			RequestedAt:      in.RequestedAt,
			ActiveAt:         in.ActiveAt,
			TimeToNextCharge: in.TimeToNextCharge(now),
			Draining:         ir.draining,
		}
		if ir.agent != nil {
			for _, l := range sortedLeases(ir.agent.leases) {
				if l.state == leaseActive {
					rec.Running = append(rec.Running, l.task)
				}
			}
		}
		snap.Instances = append(snap.Instances, rec)
	}
	return snap
}

// finishLocked completes the run: all remaining instances terminate, final
// metrics freeze, and the lease identity is audited (any lease neither
// completed nor reclaimed counts as lost — the invariant CI asserts is zero).
func (d *Dispatcher) finishLocked(now simtime.Time) {
	d.state = Done
	d.doneAt = now
	d.stopTimersLocked()
	for _, ir := range d.insts {
		d.terminateInstLocked(ir, now)
	}
	outstanding := d.counters.LeasesGranted - d.counters.LeasesCompleted -
		d.counters.LeasesReclaimed - d.counters.LeasesSuperseded
	if outstanding > 0 {
		d.counters.LeasesLost = outstanding
	}
	d.result = &LiveResult{
		Workflow:       d.wf.Name,
		Policy:         d.cfg.Controller.Name(),
		MakespanS:      simtime.Duration(now),
		UnitsCharged:   d.site.TotalUnitsCharged(now),
		ChargedSeconds: d.site.TotalChargedSeconds(now),
		Utilization:    d.site.Utilization(now),
		PeakPool:       d.peakPool,
		Launches:       d.launches,
		Restarts:       d.restarts,
		Failures:       d.failures,
		Decisions:      d.decisions,
		DeadOnArrival:  int(d.counters.DOAWriteoffs),
		Timescale:      d.cfg.Timescale,
		WallElapsedMs:  d.cfg.now().Sub(d.startWall).Milliseconds(),
		Counters:       d.counters,
	}
	if len(d.unreach) > 0 {
		d.result.Degraded = true
		d.result.QuarantinedTasks = int(d.counters.QuarantinedTasks)
		d.result.UnreachableTasks = len(d.unreach) - d.result.QuarantinedTasks
	}
	d.journalLocked(Record{Kind: RecRunDone, NowS: now,
		Detail: fmt.Sprintf("makespan=%.1fs units=%d", now, d.result.UnitsCharged)})
	d.cfg.Logf("exec: run done: makespan %.1f sim-s, %d units, %d decisions, wall %v",
		now, d.result.UnitsCharged, d.decisions, d.cfg.now().Sub(d.startWall).Round(time.Millisecond))
	close(d.done)
	d.notifyLocked()
}

// failLocked aborts the run. Outstanding leases become lost (they will never
// complete or be reclaimed), which keeps the lease identity auditable even
// for failed runs.
func (d *Dispatcher) failLocked(err error) {
	if d.state == Done || d.state == Failed {
		return
	}
	d.state = Failed
	d.runErr = err
	d.doneAt = d.clock.Now()
	d.stopTimersLocked()
	outstanding := d.counters.LeasesGranted - d.counters.LeasesCompleted -
		d.counters.LeasesReclaimed - d.counters.LeasesSuperseded
	if outstanding > 0 {
		d.counters.LeasesLost = outstanding
	}
	d.journalLocked(Record{Kind: RecRunFailed, NowS: d.doneAt, Detail: err.Error()})
	d.cfg.Logf("exec: run failed: %v", err)
	close(d.done)
	d.notifyLocked()
}

func (d *Dispatcher) stopTimersLocked() {
	if d.tickTimer != nil {
		d.tickTimer.Stop()
	}
	if d.reapTimer != nil {
		d.reapTimer.Stop()
	}
	if d.wallTimer != nil {
		d.wallTimer.Stop()
	}
	for _, l := range d.leases {
		if l.timer != nil {
			l.timer.Stop()
		}
	}
	for _, ir := range d.insts {
		if ir.termTime != nil {
			ir.termTime.Stop()
		}
	}
	for i := range d.tasks {
		if t := d.tasks[i].requeueTimer; t != nil {
			t.Stop()
		}
	}
}

// Abort fails a run from the outside (DELETE endpoint, driver teardown).
func (d *Dispatcher) Abort(reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Created {
		// Never started: mark failed directly so waiters release.
		d.state = Failed
		d.runErr = fmt.Errorf("exec: aborted: %s", reason)
		close(d.done)
		d.notifyLocked()
		return
	}
	d.failLocked(fmt.Errorf("exec: aborted: %s", reason))
}

// SetDraining stops granting new leases (in-flight ones run to completion).
// Used by the server's graceful shutdown.
func (d *Dispatcher) SetDraining(v bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.draining = v
	if !v && d.state == Running {
		d.dispatchLocked()
		d.notifyLocked()
	}
}

// OutstandingLeases returns the number of granted leases neither completed,
// reclaimed, nor superseded.
func (d *Dispatcher) OutstandingLeases() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.counters.LeasesGranted - d.counters.LeasesCompleted -
		d.counters.LeasesReclaimed - d.counters.LeasesSuperseded)
}

// State returns the run state.
func (d *Dispatcher) State() RunState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Err returns the run error (nil unless Failed).
func (d *Dispatcher) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.runErr
}

// Result returns the final result (nil until Done).
func (d *Dispatcher) Result() *LiveResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.result
}

// Counters returns a copy of the live counters.
func (d *Dispatcher) Counters() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters
}

// Records returns the recorded plan stream for the parity twin.
func (d *Dispatcher) Records() []PlanRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PlanRecord, len(d.records))
	copy(out, d.records)
	return out
}

// Assignments returns the live task→agent assignment state, comparable with
// a journal replay's ReplayAssignments.
func (d *Dispatcher) Assignments() *AssignmentState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := NewAssignmentState()
	for i := range d.tasks {
		ts := &d.tasks[i]
		id := dag.TaskID(i)
		switch ts.state {
		case monitor.Running:
			st.Leased[id] = ts.agent
		case monitor.Completed:
			st.Completed[id] = true
		}
		if ts.restarts > 0 {
			st.Reclaims[id] = ts.restarts
		}
	}
	for id, a := range d.agents {
		if !a.gone {
			st.LiveAgents[id] = true
		}
	}
	return st
}

// Status summarizes the run for the status endpoint. The RunInfo.ID field is
// filled by the registry.
func (d *Dispatcher) Status() RunStatusResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := RunStatusResponse{
		RunInfo: RunInfo{
			Workflow:  d.wf.Name,
			Tasks:     d.wf.NumTasks(),
			Stages:    len(d.wf.Stages),
			Policy:    d.cfg.Controller.Name(),
			Timescale: d.cfg.Timescale,
			State:     d.state,
		},
		NowS:           d.clock.Now(),
		TasksCompleted: d.completed,
		Decisions:      d.decisions,
		Counters:       d.counters,
		Result:         d.result,
	}
	if d.runErr != nil {
		resp.Error = d.runErr.Error()
	}
	for _, in := range d.site.Instances() {
		if in.State != cloud.Terminated {
			resp.AgentsRequired++
		}
	}
	ids := make([]string, 0, len(d.agents))
	for id := range d.agents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	wall := d.cfg.now()
	for _, id := range ids {
		a := d.agents[id]
		as := AgentStatus{ID: a.id, Name: a.name, Slots: a.slots, Status: a.status(),
			Blacklisted: d.blacklistedLocked(a.name, wall)}
		if a.inst != nil {
			v := int(a.inst.inst.ID)
			as.Instance = &v
		}
		for _, l := range a.leases {
			if l.state == leaseActive {
				as.ActiveLeases++
			}
		}
		resp.Agents = append(resp.Agents, as)
	}
	return resp
}
