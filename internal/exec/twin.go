package exec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/monitor"
	"repro/internal/sim"
)

// PlanRecord is one recorded MAPE iteration of a live run: the snapshot the
// dispatcher assembled from agent telemetry and the decision the controller
// returned, both as the exact JSON bytes the dispatcher produced. The stream
// of PlanRecords is the run's decision provenance and the input to the
// live-vs-sim parity certificate.
type PlanRecord struct {
	Seq      int             `json:"seq"`
	NowS     float64         `json:"now_s"`
	Snapshot json.RawMessage `json:"snapshot"`
	Decision json.RawMessage `json:"decision"`
}

// TwinVerify replays a live run's recorded snapshots through a fresh
// controller — the simulator twin — and requires the decision stream to be
// byte-identical to what the live dispatcher recorded.
//
// This is the certificate that the live plane is faithful: the twin
// controller sees only the measured snapshots (noisy wall-clock telemetry
// transported as JSON), so identical decisions prove (a) the dispatcher's
// snapshot assembly carries everything the policy reads, (b) the JSON wire
// format round-trips losslessly, and (c) the controller is deterministic in
// its observable inputs — the same properties the service loadgen twin
// certifies for the remote-controller path.
func TwinVerify(records []PlanRecord, twin sim.Controller) error {
	if len(records) == 0 {
		return fmt.Errorf("exec: twin verify: no plan records")
	}
	for i, rec := range records {
		var snap monitor.Snapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return fmt.Errorf("exec: twin verify: record %d snapshot: %w", i, err)
		}
		dec := twin.Plan(&snap)
		got, err := json.Marshal(dec)
		if err != nil {
			return fmt.Errorf("exec: twin verify: record %d decision: %w", i, err)
		}
		if !bytes.Equal(got, rec.Decision) {
			return fmt.Errorf("exec: twin verify: decision %d diverged:\n live: %s\n twin: %s",
				i, rec.Decision, got)
		}
	}
	return nil
}
