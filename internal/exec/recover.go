package exec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// This file is the dispatcher's crash-recovery path: a restarted wire-serve
// daemon scans its journal directory, replays each in-flight run's journal
// into a fresh dispatcher, and resumes the run where the crash left it. The
// journal is a total order over every assignment transition (records are
// appended under the dispatcher lock), so replaying it deterministically
// reproduces the ready queue, the lease table, the agent registry, the billing
// site, and the recorded decision stream. Whatever the journal cannot carry —
// wall-clock timers in flight at the crash — is conservatively re-armed:
// outstanding leases get fresh full-TTL deadlines, backoff requeues fire
// immediately, and boundary releases still due are rescheduled.

// Recover scans the registry's journal directory for runs that were in flight
// when the daemon died and resurrects each one under its original run ID.
// Individual journals that fail to replay are logged and skipped (the file is
// left in place for post-mortem); the error return is reserved for the
// directory scan itself. Returns how many runs were recovered.
func (g *Registry) Recover() (int, error) {
	if g.cfg.JournalDir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(g.cfg.JournalDir, "live-*.jsonl"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	n := 0
	for _, path := range paths {
		id := strings.TrimSuffix(filepath.Base(path), ".jsonl")
		recs, err := readJournalFile(path)
		if err != nil {
			g.cfg.Logf("live %s: recovery: %v", id, err)
			continue
		}
		if !recoverable(recs) {
			continue
		}
		g.mu.Lock()
		full := len(g.runs) >= g.cfg.MaxRuns
		_, exists := g.runs[id]
		g.mu.Unlock()
		if exists || full {
			g.cfg.Logf("live %s: recovery skipped (duplicate or run limit)", id)
			continue
		}
		d, sink, err := g.recoverOne(id, path, recs)
		if err != nil {
			g.cfg.Logf("live %s: recovery failed: %v", id, err)
			continue
		}
		g.mu.Lock()
		g.runs[id] = &runEntry{id: id, d: d, sink: sink}
		g.recovered++
		g.mu.Unlock()
		n++
		g.cfg.Logf("live %s: recovered from journal (%s, state %s, %d records)",
			id, d.Workflow().Name, d.State(), len(recs))
	}
	return n, nil
}

func readJournalFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRecords(f)
}

// recoverable reports whether a journal describes an in-flight run: it must
// open with a run-created record carrying the marshaled create request (the
// configuration source) and must not have reached a terminal state.
func recoverable(recs []Record) bool {
	if len(recs) == 0 || recs[0].Kind != RecRunCreated || len(recs[0].Spec) == 0 {
		return false
	}
	for _, r := range recs {
		if r.Kind == RecRunDone || r.Kind == RecRunFailed {
			return false
		}
	}
	return true
}

func (g *Registry) recoverOne(id, path string, recs []Record) (*Dispatcher, *FileSink, error) {
	var req CreateRunRequest
	if err := json.Unmarshal(recs[0].Spec, &req); err != nil {
		return nil, nil, fmt.Errorf("run spec: %w", err)
	}
	cfg, err := ConfigFromRequest(&req, g.cfg.Factory)
	if err != nil {
		return nil, nil, err
	}
	cfg.Spec = nil // the run-created record already exists; do not re-journal it
	cfg.Logf = func(format string, args ...any) {
		g.cfg.Logf("live %s: "+format, append([]any{id}, args...)...)
	}
	sink, err := OpenFileSink(path)
	if err != nil {
		return nil, nil, err
	}
	cfg.Journal = sink
	d, err := RecoverDispatcher(cfg, recs)
	if err != nil {
		sink.Close()
		return nil, nil, err
	}
	return d, sink, nil
}

// RecoverDispatcher rebuilds a dispatcher from a run's journal. The replay
// walks the records in order, reapplying every lifecycle transition to fresh
// state without re-journaling; cfg.Journal (the reopened sink) is attached
// only afterwards, so resume-time activity appends where the crash left off.
//
// A run that had started is resumed: the scaled clock restarts at the last
// recorded simulated instant (the downtime simply does not exist on the
// simulated axis), and the recorded decision stream is replayed through the
// controller via TwinVerify — which both certifies the journal byte-for-byte
// and rebuilds the controller's online state (prediction windows, OGD
// weights) to parity with the crashed process.
func RecoverDispatcher(cfg Config, recs []Record) (*Dispatcher, error) {
	sink := cfg.Journal
	cfg.Journal = nil
	cfg.Spec = nil
	d, err := NewDispatcher(cfg)
	if err != nil {
		return nil, err
	}
	var (
		started bool
		startMs int64
		lastNow simtime.Time
		lastMs  int64
		lastSeq int64
		// releaseAt carries controller release orders whose boundary had not
		// arrived at the crash: the draining flag is not journaled directly,
		// so it is re-derived from the recorded decisions.
		releaseAt = make(map[cloud.InstanceID]simtime.Time)
	)
	for i, rec := range recs {
		if rec.NowS > lastNow {
			lastNow = rec.NowS
		}
		if rec.WallMs > lastMs {
			lastMs = rec.WallMs
		}
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		if err := d.replayRecord(rec, &started, &startMs, releaseAt); err != nil {
			return nil, fmt.Errorf("exec: recovery: record %d (%s): %w", i, rec.Kind, err)
		}
	}
	d.recomputeUnreachLocked()
	d.recSeq = lastSeq
	d.cfg.Journal = sink

	if len(d.records) > 0 {
		if err := TwinVerify(d.records, d.cfg.Controller); err != nil {
			return nil, fmt.Errorf("exec: recovery parity: %w", err)
		}
	}
	if d.pred != nil {
		for i := range d.records {
			var snap monitor.Snapshot
			if err := json.Unmarshal(d.records[i].Snapshot, &snap); err == nil {
				snap.Workflow = d.wf
				d.pred.Update(&snap)
			}
		}
	}
	if !started {
		return d, nil // never started: agents re-register, caller POSTs start
	}
	d.resume(lastNow, lastMs, startMs, len(recs), releaseAt)
	return d, nil
}

// instFor resolves a journal instance pointer to its record.
func (d *Dispatcher) instFor(p *int) *instRec {
	if p == nil {
		return nil
	}
	return d.insts[cloud.InstanceID(*p)]
}

// leaseFor resolves a journal lease pointer to a still-active lease.
func (d *Dispatcher) leaseFor(p *int64) (*lease, error) {
	if p == nil {
		return nil, fmt.Errorf("missing lease id")
	}
	l, ok := d.leases[*p]
	if !ok {
		return nil, fmt.Errorf("unknown lease %d", *p)
	}
	if l.state != leaseActive {
		return nil, fmt.Errorf("lease %d already retired", *p)
	}
	return l, nil
}

// replayRecord applies one journal record to the rebuilding dispatcher. It is
// the replay-side mirror of every journalLocked call site; divergence (a
// grant whose queue pop yields a different task, an unknown lease) aborts the
// recovery of this run rather than resurrecting corrupt state.
func (d *Dispatcher) replayRecord(rec Record, started *bool, startMs *int64, releaseAt map[cloud.InstanceID]simtime.Time) error {
	now := rec.NowS
	switch rec.Kind {
	case RecRunCreated, RecRunResumed:
		// Config was already rebuilt from the spec; resume markers from a
		// previous recovery are informational.

	case RecRunStarted:
		*started = true
		*startMs = rec.WallMs

	case RecAgentRegistered:
		a := &agentState{id: rec.Agent, name: rec.Detail, slots: rec.Slots,
			leases: make(map[int64]*lease)}
		if a.name == "" {
			a.name = a.id
		}
		d.agents[a.id] = a
		d.counters.AgentsRegistered++
		var n int
		if _, err := fmt.Sscanf(rec.Agent, "a%d", &n); err == nil && n > d.agentSeq {
			d.agentSeq = n
		}

	case RecAgentReconnected:
		if a := d.agents[rec.Agent]; a != nil {
			a.slots = rec.Slots
		}

	case RecAgentBound:
		a, ir := d.agents[rec.Agent], d.instFor(rec.Instance)
		if a == nil || ir == nil {
			return fmt.Errorf("bind references unknown agent %q or instance", rec.Agent)
		}
		a.inst, ir.agent = ir, a

	case RecAgentParked:
		if a := d.agents[rec.Agent]; a != nil && a.inst != nil {
			a.inst.agent = nil
			a.inst = nil
		}

	case RecAgentFailed:
		d.counters.AgentsFailed++
		if a := d.agents[rec.Agent]; a != nil {
			if a.inst != nil {
				a.inst.agent = nil
				a.inst = nil
				d.failures++
			}
			delete(d.agents, rec.Agent)
		}

	case RecAgentBlacklisted:
		// Re-blacklist by name for a full cooldown from the recovery wall
		// instant: conservative (the original window may have nearly
		// elapsed), but a worker that earned a bench stays benched.
		h := d.healthFor(rec.Agent)
		h.blacklistedUntil = d.cfg.now().Add(d.cfg.HealthCooldown)
		h.failures, h.completions = 0, 0
		d.counters.AgentsBlacklisted++

	case RecInstanceLaunch:
		in, err := d.site.Launch(now)
		if err != nil {
			return err
		}
		if rec.Instance == nil || cloud.InstanceID(*rec.Instance) != in.ID {
			return fmt.Errorf("replayed launch produced instance %d, journal disagrees", in.ID)
		}
		d.insts[in.ID] = &instRec{inst: in}
		d.launches++
		if held := d.site.Held(); held > d.peakPool {
			d.peakPool = held
		}

	case RecInstanceActive:
		ir := d.instFor(rec.Instance)
		if ir == nil {
			return fmt.Errorf("activation of unknown instance")
		}
		at := now
		if simtime.Before(at, ir.inst.ActiveAt) {
			at = ir.inst.ActiveAt
		}
		if err := d.site.Activate(ir.inst, at); err != nil {
			return err
		}

	case RecInstanceEnd, RecInstanceDOA:
		ir := d.instFor(rec.Instance)
		if ir == nil {
			return fmt.Errorf("termination of unknown instance")
		}
		if rec.Kind == RecInstanceDOA {
			d.counters.DOAWriteoffs++
		}
		if ir.agent != nil {
			ir.agent.inst = nil
			ir.agent = nil
		}
		if ir.inst.State != cloud.Terminated {
			at := now
			if ir.inst.State == cloud.Active && simtime.Before(at, ir.inst.ActiveAt) {
				at = ir.inst.ActiveAt
			}
			if err := d.site.Terminate(ir.inst, at); err != nil {
				return err
			}
		}

	case RecLeaseGranted, RecLeaseSpeculated:
		if rec.Lease == nil || rec.Task == nil {
			return fmt.Errorf("missing lease/task id")
		}
		a := d.agents[rec.Agent]
		if a == nil || a.inst == nil {
			return fmt.Errorf("grant on unknown or unbound agent %q", rec.Agent)
		}
		id := dag.TaskID(*rec.Task)
		ts := &d.tasks[id]
		var priority bool
		if rec.Kind == RecLeaseGranted {
			it, ok := d.queue.Pop()
			if !ok || it.Task != id {
				return fmt.Errorf("queue replay diverged: journal grants task %d, queue disagrees", id)
			}
			priority = it.Priority
		}
		l := &lease{
			id:        *rec.Lease,
			task:      id,
			agent:     a,
			grantedAt: now,
			delivered: true, // resume keeps delivery: a live agent reports, a dead one hits the TTL
			spec:      rec.Kind == RecLeaseSpeculated,
			attempt:   ts.failedAttempts + 1,
		}
		a.leases[l.id] = l
		d.leases[l.id] = l
		if l.id > d.leaseSeq {
			d.leaseSeq = l.id
		}
		d.counters.LeasesGranted++
		if l.spec {
			d.counters.SpeculationsLaunched++
			ts.specLease = l.id
		} else {
			ts.state = monitor.Running
			ts.priority = priority
			ts.startedAt = now
			ts.agent = a.id
			ts.instance = a.inst.inst.ID
			ts.leaseID = l.id
			ts.specLease = 0
			ts.pendingRequeue = false
			ts.transferObserved = false
			ts.transferTime = 0
		}

	case RecLeaseCompleted:
		l, err := d.leaseFor(rec.Lease)
		if err != nil {
			return err
		}
		a := l.agent
		l.state = leaseCompleted
		delete(a.leases, l.id)
		d.counters.LeasesCompleted++
		if l.spec {
			d.counters.SpeculationsWon++
		}
		d.healthFor(a.name).completions++
		ts := &d.tasks[l.task]
		ts.state = monitor.Completed
		ts.completedAt = now
		ts.execTime = rec.ExecS
		ts.transferTime = rec.TransferS
		ts.agent = a.id
		if a.inst != nil {
			ts.instance = a.inst.inst.ID
			a.inst.inst.BusySlotSeconds += rec.ExecS + rec.TransferS
		}
		ts.leaseID = l.id
		ts.specLease = 0
		ts.transferObserved = true
		ts.transferObservedAt = now
		d.completed++
		for _, s := range d.wf.Task(l.task).Succs {
			ss := &d.tasks[s]
			ss.waiting--
			if ss.waiting == 0 {
				d.markReadyLocked(s, now)
			}
		}

	case RecLeaseReclaimed:
		l, err := d.leaseFor(rec.Lease)
		if err != nil {
			return err
		}
		l.state = leaseReclaimed
		delete(l.agent.leases, l.id)
		d.counters.LeasesReclaimed++
		if l.agent.inst != nil {
			l.agent.inst.inst.BusySlotSeconds += now - l.grantedAt
		}
		ts := &d.tasks[l.task]
		ts.restarts++
		d.restarts++
		ts.failedAttempts = rec.Attempt
		ts.state = monitor.Ready
		ts.readyAt = now
		ts.agent = ""
		ts.leaseID = 0
		ts.specLease = 0
		ts.transferObserved = false
		ts.transferTime = 0
		// Cleared by the task-requeued or task-quarantined record that
		// followed; if the crash beat the backoff timer, resume requeues the
		// task immediately.
		ts.pendingRequeue = true

	case RecLeaseSuperseded:
		l, err := d.leaseFor(rec.Lease)
		if err != nil {
			return err
		}
		l.state = leaseSuperseded
		delete(l.agent.leases, l.id)
		if l.agent.inst != nil {
			l.agent.inst.inst.BusySlotSeconds += now - l.grantedAt
		}
		d.counters.LeasesSuperseded++
		if l.spec {
			d.counters.SpeculationsWasted++
		}
		ts := &d.tasks[l.task]
		if ts.specLease == l.id {
			ts.specLease = 0
		} else if ts.leaseID == l.id {
			if surv, ok := d.leases[ts.specLease]; ok && surv.state == leaseActive {
				ts.leaseID = surv.id
				ts.specLease = 0
				ts.agent = surv.agent.id
				if surv.agent.inst != nil {
					ts.instance = surv.agent.inst.inst.ID
				}
				ts.startedAt = surv.grantedAt
				ts.transferObserved = false
				ts.transferTime = 0
			} else {
				ts.specLease = 0
			}
		}

	case RecTaskRequeued:
		if rec.Task == nil {
			return fmt.Errorf("missing task id")
		}
		id := dag.TaskID(*rec.Task)
		ts := &d.tasks[id]
		ts.pendingRequeue = false
		ts.readyAt = now
		d.queue.Requeue(id, d.wf.Task(id).Stage, now, ts.priority)

	case RecTaskQuarantined:
		if rec.Task == nil {
			return fmt.Errorf("missing task id")
		}
		ts := &d.tasks[*rec.Task]
		ts.state = monitor.Quarantined
		ts.pendingRequeue = false
		ts.failedAttempts = rec.Attempt
		d.counters.QuarantinedTasks++

	case RecDecision:
		d.decisions++
		d.records = append(d.records, PlanRecord{
			Seq:      d.decisions,
			NowS:     float64(now),
			Snapshot: rec.Snapshot,
			Decision: rec.Decision,
		})
		d.lastTick = now
		var dec sim.Decision
		if err := json.Unmarshal(rec.Decision, &dec); err != nil {
			return fmt.Errorf("decision: %w", err)
		}
		// Launches are journaled as their own records; release orders leave
		// only a draining flag plus a future boundary, so re-derive those.
		for _, ro := range dec.Releases {
			ir := d.insts[ro.Instance]
			if ir == nil || ir.inst.State == cloud.Terminated || ir.draining {
				continue
			}
			ir.draining = true
			at := now
			if ro.AtBoundary && ir.inst.State == cloud.Active {
				at = ir.inst.NextChargeBoundary(now)
			}
			releaseAt[ro.Instance] = at
		}

	case RecRunDone, RecRunFailed:
		return fmt.Errorf("terminal record in a journal selected for recovery")

	default:
		// Unknown kinds from newer builds are skipped, like ReplayAssignments.
	}
	return nil
}

// resume flips a replayed dispatcher back to Running: the clock continues at
// the last recorded simulated instant, every timer the crash destroyed is
// re-armed, and interrupted backoff requeues fire immediately.
func (d *Dispatcher) resume(lastNow simtime.Time, lastMs, startMs int64, replayed int, releaseAt map[cloud.InstanceID]simtime.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = Running
	d.clock.ResumeAt(lastNow)
	wallNow := d.cfg.now()
	// Re-anchor the wall origin so journal WallMs stays monotone across the
	// restart and WallElapsedMs excludes the downtime, matching the clock.
	d.createdWall = wallNow.Add(-time.Duration(lastMs) * time.Millisecond)
	d.startWall = d.createdWall.Add(time.Duration(startMs) * time.Millisecond)
	now := d.clock.Now()
	d.journalLocked(Record{Kind: RecRunResumed, NowS: now,
		Detail: fmt.Sprintf("replayed %d records", replayed)})
	d.cfg.Logf("exec: resumed at %.1f sim-s: %d/%d tasks done, %d leases outstanding, %d agents",
		now, d.completed, d.wf.NumTasks(),
		d.counters.LeasesGranted-d.counters.LeasesCompleted-d.counters.LeasesReclaimed-d.counters.LeasesSuperseded,
		len(d.agents))

	// Every known agent gets a full heartbeat TTL to reconnect before the
	// reaper declares it dead and reclaims its leases.
	for _, a := range d.agents {
		a.lastSeen = wallNow
	}
	// Outstanding leases get fresh full-TTL deadlines: a surviving agent will
	// report (identity intact), a restarted one re-registers by name and has
	// them reissued, a dead one lets the TTL reclaim them.
	for _, l := range sortedLeases(d.leases) {
		if l.state != leaseActive {
			continue
		}
		t := d.wf.Task(l.task)
		expected := d.clock.WallDuration(t.ExecTime + t.TransferTime)
		ttl := time.Duration(float64(expected)*d.cfg.LeaseFactor) + d.cfg.LeaseSlack
		l.deadline = wallNow.Add(ttl)
		lid := l.id
		l.timer = time.AfterFunc(ttl, func() { d.onLeaseExpired(lid) })
	}
	// Pending instances re-arm activation and DOA timers (WallUntil clamps a
	// boundary that passed during the downtime to fire immediately).
	for id, ir := range d.insts {
		if ir.inst.State != cloud.Pending {
			continue
		}
		iid := id
		time.AfterFunc(d.clock.WallUntil(ir.inst.ActiveAt), func() { d.onActivation(iid) })
		time.AfterFunc(d.clock.WallUntil(ir.inst.ActiveAt+d.cfg.DOAGrace), func() { d.onDOACheck(iid) })
	}
	// Controller releases whose charging boundary had not arrived: release
	// now if the boundary passed during the downtime, else re-arm the timer.
	ids := make([]int, 0, len(releaseAt))
	for id := range releaseAt {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, i := range ids {
		id := cloud.InstanceID(i)
		ir := d.insts[id]
		if ir == nil || ir.inst.State == cloud.Terminated {
			continue
		}
		at := releaseAt[id]
		if simtime.AtOrBefore(at, now) {
			d.releaseLocked(ir, now)
			continue
		}
		rec := ir
		ir.termTime = time.AfterFunc(d.clock.WallUntil(at), func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			if d.state != Running {
				return
			}
			d.releaseLocked(rec, d.clock.Now())
		})
	}
	// Failed attempts that were waiting out a backoff delay at the crash
	// requeue immediately — the downtime more than covered the delay.
	for i := range d.tasks {
		ts := &d.tasks[i]
		if ts.pendingRequeue && ts.state == monitor.Ready {
			d.requeueLocked(dag.TaskID(i), now)
		}
	}
	d.tickSeq = int(float64(now)/float64(d.cfg.Interval)) + 1
	d.tickTimer = time.AfterFunc(d.clock.WallUntil(simtime.Time(d.tickSeq)*simtime.Time(d.cfg.Interval)), d.onTick)
	reap := d.cfg.HeartbeatTTL / 2
	if reap < 50*time.Millisecond {
		reap = 50 * time.Millisecond
	}
	d.reapTimer = time.AfterFunc(reap, d.onReap)
	remaining := d.cfg.MaxWall - wallNow.Sub(d.startWall)
	if remaining < 5*time.Second {
		remaining = 5 * time.Second
	}
	d.wallTimer = time.AfterFunc(remaining, func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.state != Running {
			return
		}
		d.failLocked(fmt.Errorf("exec: run exceeded wall horizon %v with %d/%d tasks done",
			d.cfg.MaxWall, d.completed, d.wf.NumTasks()))
	})
	d.dispatchLocked()
}
