package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// holdController never changes the pool: tests drive the lifecycle manually.
type holdController struct{}

func (holdController) Name() string                       { return "hold" }
func (holdController) Plan(*monitor.Snapshot) sim.Decision { return sim.Decision{} }

// keepPool relaunches instances so the held pool stays at n — the minimal
// self-healing policy, enough for a failed agent's replacement to be admitted.
type keepPool struct{ n int }

func (keepPool) Name() string { return "keep-pool" }
func (c keepPool) Plan(snap *monitor.Snapshot) sim.Decision {
	if miss := c.n - len(snap.Instances); miss > 0 {
		return sim.Decision{Launch: miss}
	}
	return sim.Decision{}
}

// flatWorkflow is a single stage of n independent tasks.
func flatWorkflow(n int, exec float64) *dag.Workflow {
	b := dag.NewBuilder("flat")
	s := b.AddStage("work")
	for i := 0; i < n; i++ {
		b.AddTask(s, fmt.Sprintf("t%d", i), exec, 0, 1)
	}
	return b.MustBuild()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeaseReclaimExactlyOnce is the agent-kill chaos certificate at unit
// scale: an agent leases every task, goes silent mid-task (a crash from the
// dispatcher's view), its heartbeat lapses, and both leases must be reclaimed
// exactly once, re-granted to a replacement agent, and completed — with the
// journal replay reproducing the dispatcher's exact assignment state. Run
// under -race this also exercises the lock discipline across the reap timer,
// the control tick, and the agent-facing API.
func TestLeaseReclaimExactlyOnce(t *testing.T) {
	sink := &MemorySink{}
	var evMu sync.Mutex
	var events []sim.Event
	cfg := Config{
		Workflow:   flatWorkflow(2, 10000), // tasks never finish on their own
		Controller: keepPool{1},
		Cloud: cloud.Config{
			SlotsPerInstance: 2,
			LagTime:          0.001,
			ChargingUnit:     10,
			MaxInstances:     4,
		},
		Interval:     0.05, // ticks every 50 ms of wall clock
		Timescale:    1,
		HeartbeatTTL: 400 * time.Millisecond,
		Journal:      sink,
		Observer: func(ev sim.Event) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	}
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Abort("test cleanup")

	regA, err := d.Register("doomed", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	// Agent A leases both tasks, then goes silent.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var held []Lease
	for len(held) < 2 {
		resp, err := d.Poll(ctx, regA.AgentID, 200*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, resp.Leases...)
	}

	// The heartbeat TTL lapses: A is declared failed, its instance surfaces
	// as instance-failed, and both leases are reclaimed exactly once.
	waitFor(t, 5*time.Second, "agent failure", func() bool {
		return d.Counters().AgentsFailed == 1
	})
	if c := d.Counters(); c.LeasesReclaimed != 2 || c.LeasesGranted != 2 {
		t.Fatalf("after failure: %+v", c)
	}

	// A's late completion report must be acked stale, not re-applied.
	if _, err := d.Complete(regA.AgentID, held[0].ID, CompleteReport{ExecS: 1}); err != ErrUnknownAgent {
		t.Fatalf("late report from failed agent: err = %v, want ErrUnknownAgent", err)
	}

	// A replacement worker registers; keepPool admits it onto a fresh
	// instance and the reclaimed tasks are re-granted.
	regB, err := d.Register("replacement", 2)
	if err != nil {
		t.Fatal(err)
	}
	var firstDone bool
	for d.State() == Running {
		resp, err := d.Poll(ctx, regB.AgentID, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range resp.Leases {
			ack, err := d.Complete(regB.AgentID, l.ID, CompleteReport{ExecS: 10000, TransferS: 0, InputMB: 1})
			if err != nil {
				t.Fatal(err)
			}
			if ack.Stale {
				t.Fatalf("fresh completion of lease %d acked stale", l.ID)
			}
			if !firstDone {
				firstDone = true
				// Duplicate report: must be acknowledged stale exactly once.
				dup, err := d.Complete(regB.AgentID, l.ID, CompleteReport{ExecS: 1})
				if err != nil {
					t.Fatal(err)
				}
				if !dup.Stale {
					t.Fatal("duplicate completion not acked stale")
				}
			}
		}
		if resp.Done {
			break
		}
	}

	res, err := d.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.LeasesGranted != 4 || c.LeasesCompleted != 2 || c.LeasesReclaimed != 2 {
		t.Fatalf("lease identity violated: %+v", c)
	}
	if c.LeasesLost != 0 {
		t.Fatalf("%d leases lost", c.LeasesLost)
	}
	if c.StaleReports == 0 {
		t.Fatalf("duplicate completion not counted: %+v", c)
	}
	if res.Restarts != 2 || res.Failures != 1 {
		t.Fatalf("restarts=%d failures=%d, want 2/1", res.Restarts, res.Failures)
	}

	// The failure surfaced in the simulator's event vocabulary.
	evMu.Lock()
	var failed, killed int
	for _, ev := range events {
		switch ev.Kind {
		case sim.EvInstanceFailed:
			failed++
		case sim.EvTaskKilled:
			killed++
		}
	}
	evMu.Unlock()
	if failed != 1 || killed != 2 {
		t.Fatalf("events: %d instance-failed, %d task-killed; want 1/2", failed, killed)
	}

	// Journal replay reproduces the dispatcher's exact assignment state.
	replayed, err := ReplayAssignments(sink.Records())
	if err != nil {
		t.Fatal(err)
	}
	livestate := d.Assignments()
	if !replayed.Equal(livestate) {
		t.Fatalf("journal replay diverged:\nreplay = %+v\nlive   = %+v", replayed, livestate)
	}
	if replayed.Reclaims[0] != 1 || replayed.Reclaims[1] != 1 {
		t.Fatalf("tasks not requeued exactly once: %+v", replayed.Reclaims)
	}
	if replayed.LiveAgents[regA.AgentID] || !replayed.LiveAgents[regB.AgentID] {
		t.Fatalf("live agents after replay: %+v", replayed.LiveAgents)
	}
}

// TestDOAWriteoff: a launch order no agent binds within the grace window is
// written off dead-on-arrival and canceled unbilled.
func TestDOAWriteoff(t *testing.T) {
	d, err := NewDispatcher(Config{
		Workflow:   flatWorkflow(1, 100),
		Controller: holdController{},
		Cloud: cloud.Config{
			SlotsPerInstance: 2,
			LagTime:          0.02,
			ChargingUnit:     10,
			MaxInstances:     2,
		},
		Interval:  10, // no control tick during the test
		Timescale: 1,
		DOAGrace:  0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Abort("test cleanup")
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "DOA write-off", func() bool {
		return d.Counters().DOAWriteoffs == 1
	})
	if st := d.Status(); st.AgentsRequired != 0 {
		t.Fatalf("written-off instance still held: %+v", st)
	}
}

func TestDispatcherConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Workflow:   flatWorkflow(1, 1),
			Controller: holdController{},
			Cloud:      cloud.Config{SlotsPerInstance: 1, LagTime: 1, ChargingUnit: 10, MaxInstances: 1},
		}
	}
	bad := []func(*Config){
		func(c *Config) { c.Workflow = nil },
		func(c *Config) { c.Controller = nil },
		func(c *Config) { c.BusyFrac = 2 },
		func(c *Config) { c.Cloud.ChargingUnit = -1 },
	}
	for i, mutate := range bad {
		cfg := base()
		mutate(&cfg)
		if _, err := NewDispatcher(cfg); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
	if _, err := NewDispatcher(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAbortBeforeStart(t *testing.T) {
	d, err := NewDispatcher(Config{
		Workflow:   flatWorkflow(1, 1),
		Controller: holdController{},
		Cloud:      cloud.Config{SlotsPerInstance: 1, LagTime: 1, ChargingUnit: 10, MaxInstances: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Abort("canceled before start")
	if d.State() != Failed {
		t.Fatalf("state = %v", d.State())
	}
	if err := d.Start(); err != ErrRunOver {
		t.Fatalf("Start after abort: %v, want ErrRunOver", err)
	}
	if _, err := d.Register("late", 1); err == nil {
		t.Fatal("Register after abort: want error")
	}
}

func TestPollUnknownAgent(t *testing.T) {
	d, err := NewDispatcher(Config{
		Workflow:   flatWorkflow(1, 1),
		Controller: holdController{},
		Cloud:      cloud.Config{SlotsPerInstance: 1, LagTime: 1, ChargingUnit: 10, MaxInstances: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Abort("test cleanup")
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Poll(context.Background(), "nope", 0); err != ErrUnknownAgent {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
	if _, err := d.Complete("nope", 1, CompleteReport{}); err != ErrUnknownAgent {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
}
