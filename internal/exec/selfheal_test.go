package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dagio"
)

// TestRegisterReconnectSameName: a returning agent (same non-empty name) keeps
// its identity instead of being admitted as a fresh worker — the property that
// lets both a restarted worker and a journal-recovered daemon preserve lease
// identity across the outage.
func TestRegisterReconnectSameName(t *testing.T) {
	d, err := NewDispatcher(Config{
		Workflow:   flatWorkflow(2, 10),
		Controller: holdController{},
		Cloud:      cloud.Config{SlotsPerInstance: 2, LagTime: 1, ChargingUnit: 10, MaxInstances: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Abort("test cleanup")

	r1, err := d.Register("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Register("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AgentID != r2.AgentID {
		t.Fatalf("reconnect changed identity: %s -> %s", r1.AgentID, r2.AgentID)
	}
	if c := d.Counters(); c.AgentsRegistered != 1 {
		t.Fatalf("reconnect counted as a registration: %+v", c)
	}
	r3, err := d.Register("other", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r3.AgentID == r1.AgentID {
		t.Fatal("distinct name reused an identity")
	}
}

// poisonDoc is a flat stage where the first task is the designated poison
// task: under the chaos task-crash fault it fails every attempt.
func poisonDoc() (*dagio.Document, dag.TaskID) {
	b := dag.NewBuilder("poison")
	s := b.AddStage("work")
	poison := b.AddTask(s, "poison", 8, 1, 10)
	for i := 0; i < 4; i++ {
		b.AddTask(s, fmt.Sprintf("ok%d", i), 8, 1, 10)
	}
	return dagio.Encode(b.MustBuild()), poison
}

// TestPoisonTaskQuarantine is the poison-task chaos certificate: a task whose
// every attempt crashes (deterministic chaos.Plan.TaskCrashes stream) must be
// retried exactly its attempt budget with backoff, then quarantined, and the
// run must complete in an explicit degraded state instead of hanging.
func TestPoisonTaskQuarantine(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, RegistryConfig{JournalDir: dir})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	client := NewLiveClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	doc, poison := poisonDoc()
	info, err := client.CreateRun(ctx, &CreateRunRequest{
		Workflow:         doc,
		SlotsPerInstance: 2,
		LagTimeS:         2,
		ChargingUnitS:    30,
		MaxInstances:     2,
		Timescale:        200,
		MaxWallMs:        30_000,
		MaxTaskAttempts:  3,
		RequeueBaseMs:    10,
	})
	if err != nil {
		t.Fatal(err)
	}

	plan := chaos.Plan{Seed: 11, TaskCrash: 1}
	var agents sync.WaitGroup
	for i := 0; i < 2; i++ {
		agents.Add(1)
		go func(i int) {
			defer agents.Done()
			err := RunAgent(ctx, AgentConfig{
				BaseURL:  ts.URL,
				RunID:    info.ID,
				Name:     fmt.Sprintf("worker-%d", i),
				Slots:    2,
				PollWait: 200 * time.Millisecond,
				CrashTask: func(task int64, attempt int) bool {
					return task == int64(poison) && plan.TaskCrashes(task, attempt)
				},
			})
			if err != nil && ctx.Err() == nil {
				t.Errorf("agent %d: %v", i, err)
			}
		}(i)
	}
	if _, err := client.StartRun(ctx, info.ID); err != nil {
		t.Fatal(err)
	}

	var status RunStatusResponse
	waitFor(t, 45*time.Second, "degraded completion", func() bool {
		status, err = client.RunStatus(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		return status.State == Done || status.State == Failed
	})
	agents.Wait()
	if status.State != Done || status.Result == nil {
		t.Fatalf("run ended %v: %s", status.State, status.Error)
	}
	res := status.Result
	if !res.Degraded || res.QuarantinedTasks != 1 {
		t.Fatalf("degraded=%v quarantined=%d, want degraded with 1 quarantined task", res.Degraded, res.QuarantinedTasks)
	}
	if status.TasksCompleted != 4 {
		t.Fatalf("completed %d tasks, want the 4 healthy ones", status.TasksCompleted)
	}
	if res.Counters.QuarantinedTasks != 1 || res.Counters.LeasesLost != 0 {
		t.Fatalf("counters: %+v", res.Counters)
	}
	if got := res.Counters.LeasesGranted - res.Counters.LeasesCompleted -
		res.Counters.LeasesReclaimed - res.Counters.LeasesSuperseded; got != 0 {
		t.Fatalf("lease identity violated by %d: %+v", got, res.Counters)
	}

	// The journal records the quarantine at exactly the attempt budget.
	recs, err := readJournalFile(filepath.Join(dir, info.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var quarantined *Record
	for i := range recs {
		if recs[i].Kind == RecTaskQuarantined {
			quarantined = &recs[i]
		}
	}
	if quarantined == nil {
		t.Fatal("no task-quarantined record in journal")
	}
	if quarantined.Task == nil || *quarantined.Task != int(poison) || quarantined.Attempt != 3 {
		t.Fatalf("quarantine record %+v, want task %d at attempt 3", quarantined, poison)
	}
}

// TestStragglerSpeculation is the slow-agent chaos certificate: a turtle agent
// sits on its leases while a rabbit completes the rest of the stage; once the
// online predictor has sibling observations, the dispatcher must issue
// speculative duplicates to the rabbit, the duplicates must win, and the
// turtle's primaries must be superseded — with the turtle's eventual late
// report acked stale.
func TestStragglerSpeculation(t *testing.T) {
	d, err := NewDispatcher(Config{
		Workflow:   flatWorkflow(6, 30),
		Controller: keepPool{2},
		Cloud: cloud.Config{
			SlotsPerInstance: 2,
			LagTime:          0.001,
			ChargingUnit:     100,
			MaxInstances:     2,
		},
		Interval:          5,
		Timescale:         200, // simulated time races ahead of the wall clock
		LeaseFactor:       400, // the straggler must be speculated, not reclaimed
		HeartbeatTTL:      2 * time.Second,
		SpeculationFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Abort("test cleanup")

	turtle, err := d.Register("turtle", 2)
	if err != nil {
		t.Fatal(err)
	}
	rabbit, err := d.Register("rabbit", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// The turtle heartbeats but never completes; it remembers its first lease
	// so it can file a late report after being superseded.
	var turtleMu sync.Mutex
	var turtleLeases []Lease
	var loops sync.WaitGroup
	loops.Add(2)
	go func() {
		defer loops.Done()
		for ctx.Err() == nil {
			resp, err := d.Poll(ctx, turtle.AgentID, 50*time.Millisecond)
			if err != nil || resp.Done {
				return
			}
			turtleMu.Lock()
			turtleLeases = append(turtleLeases, resp.Leases...)
			turtleMu.Unlock()
		}
	}()
	// The rabbit completes everything it is handed, including speculative
	// duplicates of the turtle's tasks.
	go func() {
		defer loops.Done()
		for ctx.Err() == nil {
			resp, err := d.Poll(ctx, rabbit.AgentID, 50*time.Millisecond)
			if err != nil {
				return
			}
			for _, l := range resp.Leases {
				if _, err := d.Complete(rabbit.AgentID, l.ID, CompleteReport{ExecS: 30, InputMB: 1}); err != nil {
					return
				}
			}
			if resp.Done {
				return
			}
		}
	}()

	res, err := d.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	loops.Wait()
	c := res.Counters
	if c.SpeculationsLaunched < 1 || c.SpeculationsWon < 1 {
		t.Fatalf("speculation never fired: %+v", c)
	}
	if c.LeasesSuperseded < 1 {
		t.Fatalf("straggler primary not superseded: %+v", c)
	}
	if c.LeasesLost != 0 || res.Degraded {
		t.Fatalf("lost=%d degraded=%v: %+v", c.LeasesLost, res.Degraded, c)
	}
	if got := c.LeasesGranted - c.LeasesCompleted - c.LeasesReclaimed - c.LeasesSuperseded; got != 0 {
		t.Fatalf("lease identity violated by %d: %+v", got, c)
	}

	// The turtle finally reports a superseded lease: acked stale, never
	// re-applied.
	turtleMu.Lock()
	late := append([]Lease(nil), turtleLeases...)
	turtleMu.Unlock()
	if len(late) == 0 {
		t.Fatal("turtle never received a lease")
	}
	ack, err := d.Complete(turtle.AgentID, late[0].ID, CompleteReport{ExecS: 900})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Stale {
		t.Fatal("late report on superseded lease not acked stale")
	}
}

// slowDoc is a fanout workflow slow enough (at 200x) that a mid-run daemon
// kill lands while most work is still outstanding.
func slowDoc() *dagio.Document {
	b := dag.NewBuilder("slow-fanout")
	s0 := b.AddStage("split")
	s1 := b.AddStage("work")
	root := b.AddTask(s0, "split", 4, 1, 20)
	for i := 0; i < 6; i++ {
		b.AddTask(s1, fmt.Sprintf("w%d", i), 60, 1, 10, root)
	}
	return dagio.Encode(b.MustBuild())
}

// TestDispatcherCrashRecovery is the server-kill certificate at unit scale:
// the daemon "crashes" mid-run (its listener dies and its journal is frozen at
// that instant), a fresh registry recovers the run from the journal alone, the
// HTTP surface comes back on the same address, and the same worker agents —
// which rode out the outage on their poll backoff — finish the run with lease
// identity intact and the decision stream verified by the simulator twin.
func TestDispatcherCrashRecovery(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	reg1 := newTestRegistry(t, RegistryConfig{JournalDir: dir1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1 := &http.Server{Handler: reg1.Handler()}
	go srv1.Serve(ln)
	base := "http://" + addr
	client := NewLiveClient(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	info, err := client.CreateRun(ctx, &CreateRunRequest{
		Workflow:         slowDoc(),
		SlotsPerInstance: 2,
		LagTimeS:         2,
		ChargingUnitS:    30,
		MaxInstances:     4,
		Timescale:        200,
		MaxWallMs:        50_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	var agents sync.WaitGroup
	for i := 0; i < 2; i++ {
		agents.Add(1)
		go func(i int) {
			defer agents.Done()
			err := RunAgent(ctx, AgentConfig{
				BaseURL:  base,
				RunID:    info.ID,
				Name:     fmt.Sprintf("worker-%d", i),
				Slots:    2,
				PollWait: 200 * time.Millisecond,
			})
			if err != nil && ctx.Err() == nil {
				t.Errorf("agent %d: %v", i, err)
			}
		}(i)
	}
	if _, err := client.StartRun(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "first completion", func() bool {
		st, err := client.RunStatus(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		return st.TasksCompleted >= 1
	})

	// Crash: the listener dies with leases in flight. Freezing a copy of the
	// journal at this instant is the moment-of-death disk image (the original
	// dispatcher keeps running against dir1, standing in for a process that
	// was SIGKILLed — nothing it does after this point is visible to the
	// recovered daemon).
	srv1.Close()
	raw, err := os.ReadFile(filepath.Join(dir1, info.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, info.ID+".jsonl"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh registry rebuilds the run from the journal…
	reg2 := newTestRegistry(t, RegistryConfig{JournalDir: dir2})
	n, err := reg2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d runs, want 1 (journal snapshot had %d bytes)", n, len(raw))
	}
	if m := reg2.Metrics(); m.RunsRecovered != 1 {
		t.Fatalf("runs_recovered = %d, want 1", m.RunsRecovered)
	}
	// …and the HTTP surface returns on the same address the agents are
	// already retrying against.
	var ln2 net.Listener
	waitFor(t, 10*time.Second, "address rebind", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	srv2 := &http.Server{Handler: reg2.Handler()}
	go srv2.Serve(ln2)
	defer srv2.Close()

	var status RunStatusResponse
	waitFor(t, 45*time.Second, "post-recovery completion", func() bool {
		status, err = client.RunStatus(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		return status.State == Done || status.State == Failed
	})
	agents.Wait()
	if status.State != Done || status.Result == nil {
		t.Fatalf("run ended %v: %s", status.State, status.Error)
	}
	res := status.Result
	if status.TasksCompleted != 7 {
		t.Fatalf("completed %d/7 tasks", status.TasksCompleted)
	}
	if res.Counters.LeasesLost != 0 {
		t.Fatalf("%d leases lost across the crash", res.Counters.LeasesLost)
	}
	if got := res.Counters.LeasesGranted - res.Counters.LeasesCompleted -
		res.Counters.LeasesReclaimed - res.Counters.LeasesSuperseded; got != 0 {
		t.Fatalf("lease identity violated by %d: %+v", got, res.Counters)
	}

	// The recovered journal must still fold to a consistent assignment state,
	// and the full decision stream — pre-crash prefix plus post-recovery
	// decisions — must replay byte-identical through a fresh controller.
	recs, err := readJournalFile(filepath.Join(dir2, info.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayAssignments(recs); err != nil {
		t.Fatalf("post-recovery journal does not replay: %v", err)
	}
	records, err := client.PlanStream(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no plan records")
	}
	twin, err := coreFactory("wire", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := TwinVerify(records, twin); err != nil {
		t.Fatalf("parity across restart: %v", err)
	}
}

// TestDeleteVsCompleteRace: a run DELETE racing an in-flight lease completion
// must never panic, resurrect run state, or lose the delete — the late report
// is either acked (run still up), acked stale, or rejected not_found.
func TestDeleteVsCompleteRace(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	b := dag.NewBuilder("race")
	s := b.AddStage("work")
	for i := 0; i < 2; i++ {
		b.AddTask(s, fmt.Sprintf("t%d", i), 10_000, 0, 1)
	}
	doc := dagio.Encode(b.MustBuild())

	for round := 0; round < 6; round++ {
		reg := newTestRegistry(t, RegistryConfig{})
		ts := httptest.NewServer(reg.Handler())
		client := NewLiveClient(ts.URL, nil)
		info, err := client.CreateRun(ctx, &CreateRunRequest{
			Workflow:         doc,
			SlotsPerInstance: 2,
			LagTimeS:         0.001,
			ChargingUnitS:    10,
			MaxInstances:     1,
			IntervalS:        0.05,
			Timescale:        1,
			Start:            true,
		})
		if err != nil {
			t.Fatal(err)
		}
		regResp, err := client.Register(ctx, info.ID, "w", 2)
		if err != nil {
			t.Fatal(err)
		}
		var leases []Lease
		waitFor(t, 10*time.Second, "leases granted", func() bool {
			resp, err := client.Poll(ctx, info.ID, regResp.AgentID, 100*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			leases = append(leases, resp.Leases...)
			return len(leases) >= 2
		})

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := client.DeleteRun(ctx, info.ID); err != nil {
				t.Errorf("delete: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			_, err := client.Complete(ctx, info.ID, regResp.AgentID, leases[0].ID, CompleteReport{ExecS: 1})
			if err != nil && !IsCode(err, "not_found") && !IsCode(err, "unknown_agent") {
				t.Errorf("racing complete: %v", err)
			}
		}()
		wg.Wait()

		// The run is gone and stays gone: a straggling report cannot
		// resurrect it.
		if _, err := client.Complete(ctx, info.ID, regResp.AgentID, leases[1].ID, CompleteReport{ExecS: 1}); !IsCode(err, "not_found") {
			t.Fatalf("report after delete: err = %v, want not_found", err)
		}
		if _, err := client.RunStatus(ctx, info.ID); !IsCode(err, "not_found") {
			t.Fatalf("status after delete: err = %v, want not_found", err)
		}
		ts.Close()
	}
}

// TestAgentBlacklistAndCooldown: enough failures trip the health score and the
// agent is drained of new leases by name; after the cooldown it is quietly
// reactivated and finishes the run.
func TestAgentBlacklistAndCooldown(t *testing.T) {
	d, err := NewDispatcher(Config{
		Workflow:   flatWorkflow(2, 5),
		Controller: keepPool{1},
		Cloud: cloud.Config{
			SlotsPerInstance: 2,
			LagTime:          0.001,
			ChargingUnit:     10,
			MaxInstances:     2,
		},
		Interval:           0.05,
		Timescale:          1,
		RequeueBase:        5 * time.Millisecond,
		HealthMinEvents:    2,
		HealthFailureRatio: 0.5,
		HealthCooldown:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Abort("test cleanup")

	reg, err := d.Register("flaky", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	var held []Lease
	for len(held) < 2 {
		resp, err := d.Poll(ctx, reg.AgentID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, resp.Leases...)
	}
	for _, l := range held {
		if _, err := d.Complete(reg.AgentID, l.ID, CompleteReport{Failed: true, Error: "boom"}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "blacklist decision", func() bool {
		return d.Counters().AgentsBlacklisted == 1
	})
	st := d.Status()
	if len(st.Agents) != 1 || !st.Agents[0].Blacklisted {
		t.Fatalf("agent not reported blacklisted: %+v", st.Agents)
	}

	// Cooldown elapses; the requeued tasks flow back to the reactivated agent
	// and the run completes clean.
	for d.State() == Running && ctx.Err() == nil {
		resp, err := d.Poll(ctx, reg.AgentID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range resp.Leases {
			if _, err := d.Complete(reg.AgentID, l.ID, CompleteReport{ExecS: 5, InputMB: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if resp.Done {
			break
		}
	}
	res, err := d.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Counters.LeasesLost != 0 {
		t.Fatalf("degraded=%v counters=%+v", res.Degraded, res.Counters)
	}
	if st := d.Status(); len(st.Agents) != 1 || st.Agents[0].Blacklisted {
		t.Fatalf("agent still blacklisted after cooldown: %+v", st.Agents)
	}
}

// TestAgentTypedRegisterError: terminal registration rejections surface as
// RegisterError with a stable code, so wire-agent can exit non-zero instead of
// retrying forever.
func TestAgentTypedRegisterError(t *testing.T) {
	reg := newTestRegistry(t, RegistryConfig{})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	err := RunAgent(ctx, AgentConfig{BaseURL: ts.URL, RunID: "live-nope", Name: "w", Slots: 1})
	var rerr *RegisterError
	if !errors.As(err, &rerr) || rerr.Code != "not_found" {
		t.Fatalf("unknown run: err = %v, want RegisterError{not_found}", err)
	}

	// A run that already failed (1 ms wall horizon) rejects registration as
	// run_over.
	client := NewLiveClient(ts.URL, nil)
	info, err := client.CreateRun(ctx, &CreateRunRequest{
		Workflow:         fanoutDoc(),
		SlotsPerInstance: 2,
		LagTimeS:         2,
		ChargingUnitS:    30,
		MaxInstances:     2,
		Timescale:        200,
		MaxWallMs:        1,
		Start:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "wall-horizon failure", func() bool {
		st, err := client.RunStatus(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		return st.State == Failed
	})
	err = RunAgent(ctx, AgentConfig{BaseURL: ts.URL, RunID: info.ID, Name: "late", Slots: 1})
	if !errors.As(err, &rerr) || rerr.Code != "run_over" {
		t.Fatalf("finished run: err = %v, want RegisterError{run_over}", err)
	}
}

// TestSelfHealingMetricsKeys pins the wire names of the self-healing counters:
// operators' dashboards key on these strings in the /metrics live block.
func TestSelfHealingMetricsKeys(t *testing.T) {
	reg := newTestRegistry(t, RegistryConfig{})
	b, err := json.Marshal(reg.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"runs_recovered",
		"leases_superseded",
		"quarantined_tasks_total",
		"speculations_launched_total",
		"speculations_won_total",
		"speculations_wasted_total",
		"blacklisted_agents",
	} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("metrics dump missing %q: %s", key, b)
		}
	}
}

// TestOpenFileSinkTruncatesTornTail: reopening a journal that died mid-append
// must drop the torn line and continue the sequence cleanly — the property
// recovery relies on to share a file across daemon generations.
func TestOpenFileSinkTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live-x.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.Append(Record{Seq: 1, Kind: RecRunCreated, Detail: "wf"})
	sink.Append(Record{Seq: 2, Kind: RecAgentRegistered, Agent: "a1"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"kind":"lease-gr`)
	f.Close()

	reopened, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	reopened.Append(Record{Seq: 3, Kind: RecRunStarted})
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := readJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Kind != RecRunStarted || recs[2].Seq != 3 {
		t.Fatalf("records after reopen: %+v", recs)
	}
}
