package exec

import (
	"context"
	"testing"
	"time"

	"repro/internal/cloud"
)

// benchDispatcher builds a started run over a flat workflow of n tasks with
// one wide agent bound, ready to grant leases.
func benchDispatcher(b *testing.B, n int) (*Dispatcher, string) {
	b.Helper()
	d, err := NewDispatcher(Config{
		Workflow:   flatWorkflow(n, 1),
		Controller: holdController{},
		Cloud: cloud.Config{
			SlotsPerInstance: 64,
			LagTime:          1,
			ChargingUnit:     3600,
			MaxInstances:     1,
		},
		Interval:  1 << 20, // no control tick during the benchmark
		Timescale: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	reg, err := d.Register("bench", 64)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	// Wait out the scaled instantiation lag (1 ms of wall clock) so the
	// instance is active before timing starts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := d.Poll(context.Background(), reg.AgentID, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status == "active" || len(resp.Leases) > 0 {
			// Return the undelivered leases to the measured loop by
			// completing none here; the first measured Poll re-delivers
			// nothing, so complete these now, outside the timer.
			for _, l := range resp.Leases {
				if _, err := d.Complete(reg.AgentID, l.ID, CompleteReport{ExecS: 1}); err != nil {
					b.Fatal(err)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("instance never activated")
		}
	}
	return d, reg.AgentID
}

// BenchmarkLeaseProtocol measures the dispatcher's lease hot path: one
// poll+grant+complete cycle per task, through the same code the HTTP handlers
// call (minus JSON transport).
func BenchmarkLeaseProtocol(b *testing.B) {
	d, agent := benchDispatcher(b, b.N+64)
	defer d.Abort("bench over")
	ctx := context.Background()
	b.ResetTimer()
	completed := 0
	for completed < b.N {
		resp, err := d.Poll(ctx, agent, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range resp.Leases {
			if completed >= b.N {
				break
			}
			if _, err := d.Complete(agent, l.ID, CompleteReport{ExecS: 1, TransferS: 0, InputMB: 1}); err != nil {
				b.Fatal(err)
			}
			completed++
		}
	}
}

// BenchmarkRunStatus measures status assembly over a 1024-task run with live
// leases — the document agents and dashboards poll.
func BenchmarkRunStatus(b *testing.B) {
	d, agent := benchDispatcher(b, 1024)
	defer d.Abort("bench over")
	if _, err := d.Poll(context.Background(), agent, 10*time.Millisecond); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := d.Status()
		if st.State != Running {
			b.Fatalf("state %v", st.State)
		}
	}
}

// BenchmarkJournalReplay measures folding an agent-event journal back into
// assignment state, at 3 records per task (grant, reclaim, re-grant ×½,
// complete).
func BenchmarkJournalReplay(b *testing.B) {
	const tasks = 4096
	recs := make([]Record, 0, 3*tasks+2)
	recs = append(recs,
		Record{Kind: RecAgentRegistered, Agent: "a1"},
		Record{Kind: RecAgentRegistered, Agent: "a2"})
	lease := int64(0)
	for t := 0; t < tasks; t++ {
		lease++
		first := lease
		recs = append(recs, Record{Kind: RecLeaseGranted, Agent: "a1", Lease: int64Ptr(first), Task: intPtr(t)})
		if t%2 == 0 {
			recs = append(recs, Record{Kind: RecLeaseReclaimed, Agent: "a1", Lease: int64Ptr(first)})
			lease++
			recs = append(recs, Record{Kind: RecLeaseGranted, Agent: "a2", Lease: int64Ptr(lease), Task: intPtr(t)})
		}
		recs = append(recs, Record{Kind: RecLeaseCompleted, Lease: int64Ptr(lease)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := ReplayAssignments(recs)
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Completed) != tasks {
			b.Fatalf("%d completed", len(st.Completed))
		}
	}
}
