package exec

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestEmulatorMeasuresScaledPhases(t *testing.T) {
	// 30 s exec + 10 s transfer at 1000× = 40 ms of wall clock.
	em := &Emulator{Spec: TaskSpec{
		ExecS: 30, TransferS: 10, InputMB: 7.5, Timescale: 1000, BusyFrac: 0.2,
	}}
	var transfers []simtime.Duration
	start := time.Now()
	rep, err := em.Run(context.Background(), func(d simtime.Duration) { transfers = append(transfers, d) })
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(transfers) != 1 {
		t.Fatalf("onTransfer called %d times", len(transfers))
	}
	if transfers[0] != rep.TransferS {
		t.Fatalf("mid-task transfer %v != reported %v", transfers[0], rep.TransferS)
	}
	if rep.InputMB != 7.5 {
		t.Fatalf("InputMB = %v", rep.InputMB)
	}
	// Measured durations are wall observations scaled back up: at least the
	// spec value, with bounded scheduling noise (generous bound for CI).
	if rep.ExecS < 30 || rep.ExecS > 30+0.4*1000 {
		t.Fatalf("measured exec %v sim s, spec 30", rep.ExecS)
	}
	if rep.TransferS < 10 || rep.TransferS > 10+0.4*1000 {
		t.Fatalf("measured transfer %v sim s, spec 10", rep.TransferS)
	}
	if elapsed < 40*time.Millisecond {
		t.Fatalf("finished in %v, want ≥ 40ms of wall occupancy", elapsed)
	}
}

func TestEmulatorZeroCostPhases(t *testing.T) {
	em := &Emulator{Spec: TaskSpec{ExecS: 0, TransferS: 0, Timescale: 100}}
	rep, err := em.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.ExecS) > 1 || math.Abs(rep.TransferS) > 1 {
		t.Fatalf("zero-cost task measured exec=%v transfer=%v", rep.ExecS, rep.TransferS)
	}
}

func TestEmulatorObservesCancellation(t *testing.T) {
	// A task that would occupy 10 wall seconds must abort promptly.
	em := &Emulator{Spec: TaskSpec{ExecS: 10, Timescale: 1, BusyFrac: 0.2}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := em.Run(ctx, nil)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation observed after %v", elapsed)
	}
}
