package exec

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/sim"
)

// echoPool is a deterministic pure function of the snapshot: launch one
// instance per ready task beyond the held pool.
type echoPool struct{}

func (echoPool) Name() string { return "echo-pool" }
func (echoPool) Plan(snap *monitor.Snapshot) sim.Decision {
	ready := 0
	for _, tr := range snap.Tasks {
		if tr.State == monitor.Ready {
			ready++
		}
	}
	return sim.Decision{Launch: ready - len(snap.Instances)}
}

func twinRecords(t *testing.T, ctrl sim.Controller, snaps []*monitor.Snapshot) []PlanRecord {
	t.Helper()
	var out []PlanRecord
	for i, snap := range snaps {
		sb, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		dec := ctrl.Plan(snap)
		db, err := json.Marshal(dec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, PlanRecord{Seq: i + 1, NowS: snap.Now, Snapshot: sb, Decision: db})
	}
	return out
}

func TestTwinVerify(t *testing.T) {
	snaps := []*monitor.Snapshot{
		{Now: 0, Interval: 60, Tasks: []monitor.TaskRecord{{State: monitor.Ready}, {State: monitor.Ready}}},
		{Now: 60, Interval: 60, Tasks: []monitor.TaskRecord{{State: monitor.Running}, {State: monitor.Ready}},
			Instances: []monitor.InstanceRecord{{}}},
		{Now: 120, Interval: 60, Tasks: []monitor.TaskRecord{{State: monitor.Completed}, {State: monitor.Completed}},
			Instances: []monitor.InstanceRecord{{}, {}}},
	}
	records := twinRecords(t, echoPool{}, snaps)

	if err := TwinVerify(records, echoPool{}); err != nil {
		t.Fatalf("identical twin rejected: %v", err)
	}

	// A twin making different calls must be flagged with the diverging
	// record and both decision payloads.
	err := TwinVerify(records, holdController{})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergent twin: err = %v", err)
	}

	// Tampered decision bytes must be caught even with an honest twin.
	tampered := make([]PlanRecord, len(records))
	copy(tampered, records)
	tampered[2].Decision = json.RawMessage(`{"launch":99}`)
	if err := TwinVerify(tampered, echoPool{}); err == nil {
		t.Fatal("tampered decision accepted")
	}

	if err := TwinVerify(nil, echoPool{}); err == nil {
		t.Fatal("empty record stream accepted")
	}
}
