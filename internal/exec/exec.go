// Package exec is the live execution plane: it closes the MAPE loop outside
// the discrete-event simulator, against real concurrency and real clocks.
//
// In the paper, WIRE steers Pegasus/HTCondor workers executing an emulated
// task mix on ExoGENI (§IV-B). This package plays that substrate's role for
// the repo: a Dispatcher owns one workflow run, leases ready tasks to
// wire-agent worker processes over HTTP, assembles genuine monitoring
// snapshots from agent heartbeats and measured completions, consults the
// same sim.Controller policies every MAPE interval, and maps scale decisions
// onto admitting/retiring agent slots — with the cloud lag and charging-unit
// billing metered on a wall clock (cloud.ScaledClock + cloud.Site).
//
// The pieces:
//
//   - Dispatcher: run state, ready queue (internal/sched), lease table,
//     agent registry, control loop. Everything the simulator does with
//     events, the dispatcher does with wall-clock timers.
//   - Emulator: the busy/sleep hybrid task emulator agents run per lease,
//     scaled by a timescale factor so tests finish in seconds while billing
//     stays in paper units.
//   - Agent / RunAgent: the worker loop (register, long-poll, execute,
//     report) shared by cmd/wire-agent, the examples/live-run driver, and
//     the in-process tests.
//   - Registry + Handler: the HTTP surface wire-serve mounts under
//     /v1/live/.
//   - Journal + ReplayAssignments: an append-only record of every agent
//     event, replayable to the exact task→agent assignment state.
//   - TwinVerify: the live-vs-sim parity certificate — a fresh controller
//     fed the run's recorded snapshots must reproduce the decision stream
//     byte for byte.
//
// Leases have deadlines: a crashed or partitioned agent's tasks are
// reclaimed and requeued exactly once, surfacing as the simulator's
// instance-failed event kind; launch orders no agent binds within the grace
// window surface as dead-on-arrival write-offs.
package exec

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// RunState is the lifecycle state of one live run.
type RunState int

// Run lifecycle states.
const (
	// Created: run built, agents may register, clock not started.
	Created RunState = iota
	// Running: clock started, control loop live.
	Running
	// Done: every task completed; Result is final.
	Done
	// Failed: aborted by an internal error or the wall-time horizon.
	Failed
)

// String implements fmt.Stringer.
func (s RunState) String() string {
	switch s {
	case Created:
		return "created"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MarshalJSON encodes the state by name.
func (s RunState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a state name.
func (s *RunState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"created"`:
		*s = Created
	case `"running"`:
		*s = Running
	case `"done"`:
		*s = Done
	case `"failed"`:
		*s = Failed
	default:
		return fmt.Errorf("exec: unknown run state %s", b)
	}
	return nil
}

// Config parameterizes one live run.
type Config struct {
	// Workflow is the DAG to execute. Required.
	Workflow *dag.Workflow
	// Controller plans the pool each interval. Required.
	Controller sim.Controller

	// Cloud carries the billing/site parameters in simulated seconds:
	// slots per instance, lag time, charging unit, instance cap — the
	// same Config the simulator uses, metered here on the scaled wall
	// clock.
	Cloud cloud.Config

	// Interval is the MAPE period in simulated seconds (default: the
	// cloud lag time, as in §III-A).
	Interval simtime.Duration

	// InitialInstances is the pool size ordered at t=0 (default 1).
	InitialInstances int

	// Timescale compresses the run: one wall second is Timescale
	// simulated seconds (default 1). At 100×, a 3-minute lag passes in
	// 1.8 wall seconds and a 30 s task emulates in 0.3 s.
	Timescale float64

	// BusyFrac is the emulator hint sent in every lease: the fraction of
	// each scaled phase spent busy-spinning instead of sleeping
	// (default 0.2). Zero-cost tasks sleep only.
	BusyFrac float64

	// LeaseFactor and LeaseSlack bound a lease's wall-clock deadline:
	// grant + LeaseFactor × expected wall occupancy + LeaseSlack. An
	// agent that has not completed (or been reaped) by then is declared
	// failed and its tasks are reclaimed. Defaults: 4 and 2 s.
	LeaseFactor float64
	LeaseSlack  time.Duration

	// HeartbeatTTL declares an agent dead when it has not polled or
	// reported for this long (wall clock; default max(3×scaled interval,
	// 2 s)).
	HeartbeatTTL time.Duration

	// DOAGrace is how long past its nominal activation a launch order may
	// stay unbound to an agent before being written off dead-on-arrival
	// and canceled unbilled, in simulated seconds (default: one
	// interval).
	DOAGrace simtime.Duration

	// MaxWall aborts runs exceeding this wall-clock horizon (default
	// 15 min) — the live counterpart of sim.Config.MaxSimTime.
	MaxWall time.Duration

	// MaxTaskAttempts quarantines a task after this many failed attempts
	// (failed completion reports or reclaims of its lease). Zero disables
	// quarantine: a poison task is retried forever, the pre-self-healing
	// behaviour. With quarantine on, a run whose remaining tasks are all
	// quarantined (or unreachable behind one) finishes Done but Degraded.
	MaxTaskAttempts int

	// RequeueBase seeds the exponential requeue delay after a failed
	// attempt (wall clock, default 100ms, capped at 5 s): attempt n waits
	// RequeueBase·2^(n-1) before re-entering the ready queue, so a poison
	// task cannot monopolize the pool between failures.
	RequeueBase time.Duration

	// SpeculationFactor enables speculative straggler re-execution: when a
	// running lease's elapsed simulated time exceeds SpeculationFactor ×
	// the run's own online-predicted occupancy for the task, a duplicate
	// lease is issued to a different healthy agent; first completion wins
	// and the loser is superseded. Zero disables speculation.
	SpeculationFactor float64

	// HealthMinEvents, HealthFailureRatio, and HealthCooldown govern agent
	// health scoring: an agent whose failure events (failed reports,
	// deadline lapses, reclaims) reach HealthMinEvents with a failure
	// ratio ≥ HealthFailureRatio is blacklisted by name — no new leases —
	// until HealthCooldown elapses. Defaults: 3 events, ratio 0.5,
	// 15 s cooldown.
	HealthMinEvents    int
	HealthFailureRatio float64
	HealthCooldown     time.Duration

	// Journal, when set, receives every agent/lease lifecycle record (see
	// Record). Appends happen under the dispatcher lock, in order.
	Journal RecordSink

	// Spec, when set alongside Journal, is the marshaled CreateRunRequest
	// journaled as the run's first record (RecRunCreated) so a restarted
	// daemon can rebuild the dispatcher configuration from the journal
	// alone.
	Spec []byte

	// Observer, when set, receives the run's lifecycle events using the
	// simulator's event vocabulary (task starts/completions/kills,
	// instance lifecycle including failed/DOA, decisions).
	Observer func(sim.Event)

	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)

	// now overrides the wall clock (tests).
	now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Workflow == nil {
		return c, fmt.Errorf("exec: Workflow is required")
	}
	if c.Controller == nil {
		return c, fmt.Errorf("exec: Controller is required")
	}
	if err := c.Cloud.Validate(); err != nil {
		return c, err
	}
	if err := c.Workflow.Validate(); err != nil {
		return c, err
	}
	if c.Interval <= 0 {
		if c.Cloud.LagTime > 0 {
			c.Interval = c.Cloud.LagTime
		} else {
			c.Interval = 1
		}
	}
	if c.InitialInstances <= 0 {
		c.InitialInstances = 1
	}
	if c.Timescale <= 0 {
		c.Timescale = 1
	}
	if c.BusyFrac < 0 || c.BusyFrac > 1 {
		return c, fmt.Errorf("exec: BusyFrac %v outside [0,1]", c.BusyFrac)
	}
	if c.BusyFrac == 0 {
		c.BusyFrac = 0.2
	}
	if c.LeaseFactor <= 0 {
		c.LeaseFactor = 4
	}
	if c.LeaseSlack <= 0 {
		c.LeaseSlack = 2 * time.Second
	}
	if c.HeartbeatTTL <= 0 {
		scaled := time.Duration(c.Interval / c.Timescale * float64(time.Second))
		c.HeartbeatTTL = 3 * scaled
		if c.HeartbeatTTL < 2*time.Second {
			c.HeartbeatTTL = 2 * time.Second
		}
	}
	if c.DOAGrace <= 0 {
		c.DOAGrace = c.Interval
	}
	if c.MaxWall <= 0 {
		c.MaxWall = 15 * time.Minute
	}
	if c.MaxTaskAttempts < 0 {
		return c, fmt.Errorf("exec: negative MaxTaskAttempts %d", c.MaxTaskAttempts)
	}
	if c.RequeueBase <= 0 {
		c.RequeueBase = 100 * time.Millisecond
	}
	if c.SpeculationFactor < 0 {
		return c, fmt.Errorf("exec: negative SpeculationFactor %v", c.SpeculationFactor)
	}
	if c.HealthMinEvents <= 0 {
		c.HealthMinEvents = 3
	}
	if c.HealthFailureRatio <= 0 || c.HealthFailureRatio > 1 {
		c.HealthFailureRatio = 0.5
	}
	if c.HealthCooldown <= 0 {
		c.HealthCooldown = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c, nil
}

// Counters are the live plane's operational counters. The lease identity
// LeasesGranted == LeasesCompleted + LeasesReclaimed + LeasesSuperseded +
// outstanding holds at all times; LeasesLost counts violations (leases still
// outstanding when a run finished) and must stay zero.
type Counters struct {
	AgentsRegistered int64 `json:"agents_registered"`
	AgentsFailed     int64 `json:"agents_failed"`

	LeasesGranted   int64 `json:"leases_granted"`
	LeasesCompleted int64 `json:"leases_completed"`
	LeasesReclaimed int64 `json:"leases_reclaimed"`
	LeasesLost      int64 `json:"leases_lost"`

	// LeasesSuperseded counts leases retired because the task's duplicate
	// lease finished first (speculation) or because the losing copy's
	// agent went away while a healthy duplicate survived.
	LeasesSuperseded int64 `json:"leases_superseded"`

	// StaleReports counts transfer/complete reports for leases that were
	// already reclaimed or finished — late messages from failed agents,
	// acknowledged but ignored.
	StaleReports int64 `json:"stale_reports"`

	// DOAWriteoffs counts launch orders written off dead-on-arrival
	// because no agent bound within the grace window.
	DOAWriteoffs int64 `json:"doa_writeoffs"`

	// QuarantinedTasks counts tasks retired after exhausting their attempt
	// budget (Config.MaxTaskAttempts); any of these > 0 means the run
	// finished degraded.
	QuarantinedTasks int64 `json:"quarantined_tasks_total"`

	// Speculation outcome counters: duplicates launched for suspected
	// stragglers, duplicates that finished first, and duplicates whose
	// original finished first (wasted work).
	SpeculationsLaunched int64 `json:"speculations_launched_total"`
	SpeculationsWon      int64 `json:"speculations_won_total"`
	SpeculationsWasted   int64 `json:"speculations_wasted_total"`

	// AgentsBlacklisted counts health-score blacklist decisions (an agent
	// re-blacklisted after cooldown counts again).
	AgentsBlacklisted int64 `json:"blacklisted_agents"`
}

// Add accumulates another counter set (the registry aggregates across runs).
func (c *Counters) Add(o Counters) {
	c.AgentsRegistered += o.AgentsRegistered
	c.AgentsFailed += o.AgentsFailed
	c.LeasesGranted += o.LeasesGranted
	c.LeasesCompleted += o.LeasesCompleted
	c.LeasesReclaimed += o.LeasesReclaimed
	c.LeasesLost += o.LeasesLost
	c.LeasesSuperseded += o.LeasesSuperseded
	c.StaleReports += o.StaleReports
	c.DOAWriteoffs += o.DOAWriteoffs
	c.QuarantinedTasks += o.QuarantinedTasks
	c.SpeculationsLaunched += o.SpeculationsLaunched
	c.SpeculationsWon += o.SpeculationsWon
	c.SpeculationsWasted += o.SpeculationsWasted
	c.AgentsBlacklisted += o.AgentsBlacklisted
}
