package exec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/dag"
	"repro/internal/simtime"
)

// Journal record kinds. One record is appended per agent/lease/instance
// lifecycle transition, in dispatcher-lock order, so the journal is a total
// order over everything that happened to the run's assignment state.
const (
	RecRunStarted      = "run-started"
	RecRunDone         = "run-done"
	RecRunFailed       = "run-failed"
	RecAgentRegistered = "agent-registered"
	RecAgentBound      = "agent-bound"
	RecAgentParked     = "agent-parked"
	RecAgentFailed     = "agent-failed"
	RecInstanceLaunch  = "instance-launch"
	RecInstanceActive  = "instance-active"
	RecInstanceEnd     = "instance-terminated"
	RecInstanceDOA     = "instance-doa"
	RecLeaseGranted    = "lease-granted"
	RecLeaseCompleted  = "lease-completed"
	RecLeaseReclaimed  = "lease-reclaimed"
	RecDecision        = "decision"
)

// Record is one journal entry. Optional identifiers use pointers so the zero
// task/instance IDs survive the omitempty round trip.
type Record struct {
	Seq    int64        `json:"seq"`
	WallMs int64        `json:"wall_ms"`
	NowS   simtime.Time `json:"now_s"`
	Kind   string       `json:"kind"`

	Agent    string `json:"agent,omitempty"`
	Instance *int   `json:"instance,omitempty"`
	Lease    *int64 `json:"lease,omitempty"`
	Task     *int   `json:"task,omitempty"`
	Slots    int    `json:"slots,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// RecordSink receives journal records. Append is called under the dispatcher
// lock and must not block for long or call back into the dispatcher.
type RecordSink interface {
	Append(Record)
}

// MemorySink accumulates records in memory (tests, replay verification).
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// Append implements RecordSink.
func (m *MemorySink) Append(r Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, r)
}

// Records returns a copy of the accumulated records.
func (m *MemorySink) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.recs))
	copy(out, m.recs)
	return out
}

// FileSink appends records as JSON lines, one per record, flushed on every
// append (the same write-ahead discipline as the service session journal).
type FileSink struct {
	mu sync.Mutex
	w  *bufio.Writer
	f  *os.File
}

// NewFileSink creates (or truncates) path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, w: bufio.NewWriter(f)}, nil
}

// Append implements RecordSink. Encoding errors are impossible for Record;
// write errors are swallowed (journaling is best-effort observability, not a
// correctness dependency of the live run).
func (s *FileSink) Append(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	s.w.Write(b)
	s.w.WriteByte('\n')
	s.w.Flush()
}

// Close flushes and closes the file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Flush()
	return s.f.Close()
}

// ReadRecords decodes a JSONL journal stream. A torn trailing line (partial
// write at crash) is ignored, matching the service journal's replay rules.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail: stop here. A corrupt record mid-stream would
			// also stop the replay, surfacing as a shorter journal.
			break
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// AssignmentState is the task→agent assignment picture at one instant,
// either observed live (Dispatcher.Assignments) or rebuilt from a journal
// (ReplayAssignments). The reclaim tests assert the two are identical.
type AssignmentState struct {
	// Leased maps running tasks to the agent currently holding their lease.
	Leased map[dag.TaskID]string `json:"leased"`
	// Completed marks finished tasks.
	Completed map[dag.TaskID]bool `json:"completed"`
	// Reclaims counts how many times each task's lease was reclaimed.
	Reclaims map[dag.TaskID]int `json:"reclaims"`
	// LiveAgents holds registered agents not yet failed.
	LiveAgents map[string]bool `json:"live_agents"`
}

// NewAssignmentState returns an empty state.
func NewAssignmentState() *AssignmentState {
	return &AssignmentState{
		Leased:     make(map[dag.TaskID]string),
		Completed:  make(map[dag.TaskID]bool),
		Reclaims:   make(map[dag.TaskID]int),
		LiveAgents: make(map[string]bool),
	}
}

// Equal reports whether two assignment states match.
func (s *AssignmentState) Equal(o *AssignmentState) bool {
	if len(s.Leased) != len(o.Leased) || len(s.Completed) != len(o.Completed) ||
		len(s.Reclaims) != len(o.Reclaims) || len(s.LiveAgents) != len(o.LiveAgents) {
		return false
	}
	for k, v := range s.Leased {
		if o.Leased[k] != v {
			return false
		}
	}
	for k := range s.Completed {
		if !o.Completed[k] {
			return false
		}
	}
	for k, v := range s.Reclaims {
		if o.Reclaims[k] != v {
			return false
		}
	}
	for k := range s.LiveAgents {
		if !o.LiveAgents[k] {
			return false
		}
	}
	return true
}

// ReplayAssignments folds a journal into the assignment state it implies.
// It is the journal's correctness certificate: replaying the records of a
// live run (including agent failures and reclaims) must reproduce exactly
// the dispatcher's in-memory assignment state.
func ReplayAssignments(records []Record) (*AssignmentState, error) {
	st := NewAssignmentState()
	// Track lease→task/agent so reclaim/complete records need only the
	// lease ID to resolve.
	type leaseInfo struct {
		task  dag.TaskID
		agent string
	}
	leases := make(map[int64]leaseInfo)
	for i, r := range records {
		switch r.Kind {
		case RecAgentRegistered:
			st.LiveAgents[r.Agent] = true
		case RecAgentFailed:
			delete(st.LiveAgents, r.Agent)
		case RecLeaseGranted:
			if r.Lease == nil || r.Task == nil {
				return nil, fmt.Errorf("exec: journal record %d (%s) missing lease/task", i, r.Kind)
			}
			id := dag.TaskID(*r.Task)
			leases[*r.Lease] = leaseInfo{task: id, agent: r.Agent}
			st.Leased[id] = r.Agent
		case RecLeaseCompleted:
			if r.Lease == nil {
				return nil, fmt.Errorf("exec: journal record %d (%s) missing lease", i, r.Kind)
			}
			li, ok := leases[*r.Lease]
			if !ok {
				return nil, fmt.Errorf("exec: journal record %d completes unknown lease %d", i, *r.Lease)
			}
			delete(st.Leased, li.task)
			st.Completed[li.task] = true
		case RecLeaseReclaimed:
			if r.Lease == nil {
				return nil, fmt.Errorf("exec: journal record %d (%s) missing lease", i, r.Kind)
			}
			li, ok := leases[*r.Lease]
			if !ok {
				return nil, fmt.Errorf("exec: journal record %d reclaims unknown lease %d", i, *r.Lease)
			}
			delete(st.Leased, li.task)
			st.Reclaims[li.task]++
		}
	}
	return st, nil
}

func intPtr(v int) *int       { return &v }
func int64Ptr(v int64) *int64 { return &v }
