package exec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/dag"
	"repro/internal/simtime"
)

// Journal record kinds. One record is appended per agent/lease/instance
// lifecycle transition, in dispatcher-lock order, so the journal is a total
// order over everything that happened to the run's assignment state.
const (
	RecRunCreated       = "run-created"
	RecRunStarted       = "run-started"
	RecRunResumed       = "run-resumed"
	RecRunDone          = "run-done"
	RecRunFailed        = "run-failed"
	RecAgentRegistered  = "agent-registered"
	RecAgentReconnected = "agent-reconnected"
	RecAgentBound       = "agent-bound"
	RecAgentParked      = "agent-parked"
	RecAgentFailed      = "agent-failed"
	RecAgentBlacklisted = "agent-blacklisted"
	RecInstanceLaunch   = "instance-launch"
	RecInstanceActive   = "instance-active"
	RecInstanceEnd      = "instance-terminated"
	RecInstanceDOA      = "instance-doa"
	RecLeaseGranted     = "lease-granted"
	RecLeaseSpeculated  = "lease-speculated"
	RecLeaseCompleted   = "lease-completed"
	RecLeaseReclaimed   = "lease-reclaimed"
	RecLeaseSuperseded  = "lease-superseded"
	RecTaskRequeued     = "task-requeued"
	RecTaskQuarantined  = "task-quarantined"
	RecDecision         = "decision"
)

// Record is one journal entry. Optional identifiers use pointers so the zero
// task/instance IDs survive the omitempty round trip.
type Record struct {
	Seq    int64        `json:"seq"`
	WallMs int64        `json:"wall_ms"`
	NowS   simtime.Time `json:"now_s"`
	Kind   string       `json:"kind"`

	Agent    string `json:"agent,omitempty"`
	Instance *int   `json:"instance,omitempty"`
	Lease    *int64 `json:"lease,omitempty"`
	Task     *int   `json:"task,omitempty"`
	Slots    int    `json:"slots,omitempty"`
	Detail   string `json:"detail,omitempty"`

	// Attempt carries the task's failed-attempt count on lease-reclaimed
	// and task-quarantined records, so recovery restores retry budgets.
	Attempt int `json:"attempt,omitempty"`

	// ExecS/TransferS carry the measured times on lease-completed records:
	// recovery replays them into the snapshot state so the rebuilt
	// predictor and billing match the original run exactly.
	ExecS     simtime.Duration `json:"exec_s,omitempty"`
	TransferS simtime.Duration `json:"transfer_s,omitempty"`

	// Spec holds the marshaled CreateRunRequest on run-created records —
	// everything a restarted daemon needs to rebuild the dispatcher.
	Spec json.RawMessage `json:"run_spec,omitempty"`

	// Snapshot/Decision hold the full plan record on decision records, so
	// the TwinVerify parity certificate survives a daemon restart.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	Decision json.RawMessage `json:"decision,omitempty"`
}

// RecordSink receives journal records. Append is called under the dispatcher
// lock and must not block for long or call back into the dispatcher.
type RecordSink interface {
	Append(Record)
}

// MemorySink accumulates records in memory (tests, replay verification).
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// Append implements RecordSink.
func (m *MemorySink) Append(r Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, r)
}

// Records returns a copy of the accumulated records.
func (m *MemorySink) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.recs))
	copy(out, m.recs)
	return out
}

// FileSink appends records as JSON lines, one per record, flushed on every
// append (the same write-ahead discipline as the service session journal).
type FileSink struct {
	mu sync.Mutex
	w  *bufio.Writer
	f  *os.File
}

// NewFileSink creates (or truncates) path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, w: bufio.NewWriter(f)}, nil
}

// OpenFileSink opens an existing journal for appending, first truncating any
// torn trailing line (a partial write at crash). Without the truncation, new
// records appended after the torn fragment would be unreadable — ReadRecords
// stops at the first undecodable line — so a second crash would lose the
// entire recovered tail.
func OpenFileSink(path string) (*FileSink, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	valid := int64(0)
	for off := 0; off < len(data); {
		nl := off
		for nl < len(data) && data[nl] != '\n' {
			nl++
		}
		if nl == len(data) {
			break // unterminated tail, torn by definition
		}
		line := data[off:nl]
		if len(line) > 0 {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
		}
		valid = int64(nl + 1)
		off = nl + 1
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, w: bufio.NewWriter(f)}, nil
}

// Append implements RecordSink. Encoding errors are impossible for Record;
// write errors are swallowed (journaling is best-effort observability, not a
// correctness dependency of the live run).
func (s *FileSink) Append(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	s.w.Write(b)
	s.w.WriteByte('\n')
	s.w.Flush()
}

// Close flushes and closes the file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Flush()
	return s.f.Close()
}

// ReadRecords decodes a JSONL journal stream. A torn trailing line (partial
// write at crash) is ignored, matching the service journal's replay rules.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail: stop here. A corrupt record mid-stream would
			// also stop the replay, surfacing as a shorter journal.
			break
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// AssignmentState is the task→agent assignment picture at one instant,
// either observed live (Dispatcher.Assignments) or rebuilt from a journal
// (ReplayAssignments). The reclaim tests assert the two are identical.
type AssignmentState struct {
	// Leased maps running tasks to the agent currently holding their lease.
	Leased map[dag.TaskID]string `json:"leased"`
	// Completed marks finished tasks.
	Completed map[dag.TaskID]bool `json:"completed"`
	// Reclaims counts how many times each task's lease was reclaimed.
	Reclaims map[dag.TaskID]int `json:"reclaims"`
	// LiveAgents holds registered agents not yet failed.
	LiveAgents map[string]bool `json:"live_agents"`
}

// NewAssignmentState returns an empty state.
func NewAssignmentState() *AssignmentState {
	return &AssignmentState{
		Leased:     make(map[dag.TaskID]string),
		Completed:  make(map[dag.TaskID]bool),
		Reclaims:   make(map[dag.TaskID]int),
		LiveAgents: make(map[string]bool),
	}
}

// Equal reports whether two assignment states match.
func (s *AssignmentState) Equal(o *AssignmentState) bool {
	if len(s.Leased) != len(o.Leased) || len(s.Completed) != len(o.Completed) ||
		len(s.Reclaims) != len(o.Reclaims) || len(s.LiveAgents) != len(o.LiveAgents) {
		return false
	}
	for k, v := range s.Leased {
		if o.Leased[k] != v {
			return false
		}
	}
	for k := range s.Completed {
		if !o.Completed[k] {
			return false
		}
	}
	for k, v := range s.Reclaims {
		if o.Reclaims[k] != v {
			return false
		}
	}
	for k := range s.LiveAgents {
		if !o.LiveAgents[k] {
			return false
		}
	}
	return true
}

// ReplayAssignments folds a journal into the assignment state it implies.
// It is the journal's correctness certificate: replaying the records of a
// live run (including agent failures and reclaims) must reproduce exactly
// the dispatcher's in-memory assignment state.
func ReplayAssignments(records []Record) (*AssignmentState, error) {
	st := NewAssignmentState()
	// Track lease→task/agent so reclaim/complete/supersede records need
	// only the lease ID to resolve, plus the set of still-active leases per
	// task: a speculative duplicate means a task can hold two at once, and
	// Leased must follow the surviving copy when one is superseded.
	type leaseInfo struct {
		task   dag.TaskID
		agent  string
		active bool
	}
	leases := make(map[int64]*leaseInfo)
	activeFor := func(task dag.TaskID) *leaseInfo {
		var best *leaseInfo
		var bestID int64
		for id, li := range leases {
			if li.active && li.task == task && (best == nil || id < bestID) {
				best, bestID = li, id
			}
		}
		return best
	}
	for i, r := range records {
		switch r.Kind {
		case RecAgentRegistered, RecAgentReconnected:
			st.LiveAgents[r.Agent] = true
		case RecAgentFailed:
			delete(st.LiveAgents, r.Agent)
		case RecLeaseGranted, RecLeaseSpeculated:
			if r.Lease == nil || r.Task == nil {
				return nil, fmt.Errorf("exec: journal record %d (%s) missing lease/task", i, r.Kind)
			}
			id := dag.TaskID(*r.Task)
			leases[*r.Lease] = &leaseInfo{task: id, agent: r.Agent, active: true}
			if r.Kind == RecLeaseGranted {
				st.Leased[id] = r.Agent
			}
		case RecLeaseCompleted:
			if r.Lease == nil {
				return nil, fmt.Errorf("exec: journal record %d (%s) missing lease", i, r.Kind)
			}
			li, ok := leases[*r.Lease]
			if !ok {
				return nil, fmt.Errorf("exec: journal record %d completes unknown lease %d", i, *r.Lease)
			}
			li.active = false
			delete(st.Leased, li.task)
			st.Completed[li.task] = true
		case RecLeaseReclaimed:
			if r.Lease == nil {
				return nil, fmt.Errorf("exec: journal record %d (%s) missing lease", i, r.Kind)
			}
			li, ok := leases[*r.Lease]
			if !ok {
				return nil, fmt.Errorf("exec: journal record %d reclaims unknown lease %d", i, *r.Lease)
			}
			li.active = false
			delete(st.Leased, li.task)
			st.Reclaims[li.task]++
		case RecLeaseSuperseded:
			if r.Lease == nil {
				return nil, fmt.Errorf("exec: journal record %d (%s) missing lease", i, r.Kind)
			}
			li, ok := leases[*r.Lease]
			if !ok {
				return nil, fmt.Errorf("exec: journal record %d supersedes unknown lease %d", i, *r.Lease)
			}
			li.active = false
			// The surviving copy (if any) becomes the task's lease of
			// record, matching the dispatcher's promotion rule.
			if surv := activeFor(li.task); surv != nil {
				st.Leased[li.task] = surv.agent
			} else {
				delete(st.Leased, li.task)
			}
		}
	}
	return st, nil
}

func intPtr(v int) *int       { return &v }
func int64Ptr(v int64) *int64 { return &v }
