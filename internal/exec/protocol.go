package exec

import (
	"encoding/json"
	"time"

	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/simtime"
)

// The lease protocol's JSON wire types, shared by the dispatcher handlers,
// the agent client, and the examples/live-run driver. All simulated
// durations travel in seconds (snake_case `_s` suffix), wall durations in
// milliseconds (`_ms`), matching the service package's conventions.

// CreateRunRequest is the POST /v1/live/runs body. Exactly one workflow
// source must be set.
type CreateRunRequest struct {
	// Workflow is an inline workflow document (the dagio format).
	Workflow *dagio.Document `json:"workflow,omitempty"`
	// WorkflowKey names a Table I catalogue run ("genome-s", ...);
	// WorkflowSeed drives its generator (default 1).
	WorkflowKey  string `json:"workflow_key,omitempty"`
	WorkflowSeed int64  `json:"workflow_seed,omitempty"`

	// Policy selects the controller (default "wire"); Controller is the
	// opaque policy-specific tuning blob forwarded to the registry's
	// controller factory (the service's ControllerSpec).
	Policy     string          `json:"policy,omitempty"`
	Controller json.RawMessage `json:"controller,omitempty"`

	// Site/billing parameters, in simulated seconds.
	SlotsPerInstance int              `json:"slots_per_instance"`
	LagTimeS         simtime.Duration `json:"lag_time_s"`
	ChargingUnitS    simtime.Duration `json:"charging_unit_s"`
	MaxInstances     int              `json:"max_instances,omitempty"`
	IntervalS        simtime.Duration `json:"interval_s,omitempty"`
	InitialInstances int              `json:"initial_instances,omitempty"`

	// Timescale compresses simulated seconds onto the wall clock
	// (default 1).
	Timescale float64 `json:"timescale,omitempty"`
	// BusyFrac is the emulator busy-spin fraction hint (default 0.2).
	BusyFrac float64 `json:"busy_frac,omitempty"`

	// Lease/liveness tuning (wall milliseconds; zero = defaults).
	LeaseFactor    float64 `json:"lease_factor,omitempty"`
	LeaseSlackMs   int64   `json:"lease_slack_ms,omitempty"`
	HeartbeatTTLMs int64   `json:"heartbeat_ttl_ms,omitempty"`
	MaxWallMs      int64   `json:"max_wall_ms,omitempty"`

	// Self-healing knobs (see Config): attempt budget before quarantine
	// (0 = retry forever), requeue backoff seed, and the straggler
	// speculation threshold factor (0 = no speculation).
	MaxTaskAttempts   int     `json:"max_task_attempts,omitempty"`
	RequeueBaseMs     int64   `json:"requeue_base_ms,omitempty"`
	SpeculationFactor float64 `json:"speculation_factor,omitempty"`

	// Start launches the run clock immediately. Default false: the
	// caller registers agents first and POSTs …/start.
	Start bool `json:"start,omitempty"`
}

// RunInfo describes one live run in API responses.
type RunInfo struct {
	ID        string   `json:"id"`
	Workflow  string   `json:"workflow"`
	Tasks     int      `json:"tasks"`
	Stages    int      `json:"stages"`
	Policy    string   `json:"policy"`
	Timescale float64  `json:"timescale"`
	State     RunState `json:"state"`
}

// AgentStatus is one agent's row in a run status response.
type AgentStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Slots int    `json:"slots"`
	// Status is parked | pending | active | draining.
	Status string `json:"status"`
	// Instance is the bound logical instance (absent while parked).
	Instance     *int `json:"instance,omitempty"`
	ActiveLeases int  `json:"active_leases"`
	// Blacklisted is true while health scoring is withholding new leases
	// from this agent (by name), pending cooldown.
	Blacklisted bool `json:"blacklisted,omitempty"`
}

// RunStatusResponse is the GET /v1/live/runs/{id} body.
type RunStatusResponse struct {
	RunInfo
	NowS           simtime.Time `json:"now_s"`
	AgentsRequired int          `json:"agents_required"`
	Agents         []AgentStatus `json:"agents,omitempty"`
	TasksCompleted int          `json:"tasks_completed"`
	Decisions      int          `json:"decisions"`
	Counters       Counters     `json:"counters"`
	// Result is the final run summary, present once State is done. It
	// reuses the simulator's result type so live and simulated runs are
	// reported identically.
	Result *LiveResult `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// RegisterRequest is the POST /v1/live/runs/{id}/agents body.
type RegisterRequest struct {
	Name  string `json:"name,omitempty"`
	Slots int    `json:"slots"`
}

// RegisterResponse tells the agent its identity and cadence.
type RegisterResponse struct {
	AgentID string `json:"agent_id"`
	// HeartbeatTTLMs is how often the agent must be heard from; poll at
	// least twice per TTL.
	HeartbeatTTLMs int64 `json:"heartbeat_ttl_ms"`
}

// TaskSpec is what an agent emulates for one lease: the ground-truth task
// mix the dispatcher replays (standing in for the paper's emulated task mix
// on ExoGENI), scaled by Timescale. Measured times — wall-clock observations
// scaled back to simulated seconds — are what the monitoring plane sees; the
// spec itself never reaches the controller.
type TaskSpec struct {
	ExecS     simtime.Duration `json:"exec_s"`
	TransferS simtime.Duration `json:"transfer_s"`
	InputMB   float64          `json:"input_mb"`
	Timescale float64          `json:"timescale"`
	BusyFrac  float64          `json:"busy_frac"`
}

// Lease is one granted task execution.
type Lease struct {
	ID    int64       `json:"id"`
	Task  dag.TaskID  `json:"task"`
	Stage dag.StageID `json:"stage"`
	Spec  TaskSpec    `json:"spec"`
	// DeadlineMs is the wall-clock lease TTL from grant; agents that blow
	// it are declared failed and the task is reclaimed.
	DeadlineMs int64 `json:"deadline_ms"`
	// Attempt is the task's execution attempt number (1 for the first
	// try); deterministic chaos task-crash streams key off it.
	Attempt int `json:"attempt,omitempty"`
	// Speculative marks a straggler re-execution duplicate.
	Speculative bool `json:"speculative,omitempty"`
}

// PollRequest is the POST …/agents/{agent}/poll body. The poll doubles as
// the agent heartbeat.
type PollRequest struct {
	// WaitMs long-polls up to this long when no work is available
	// (default 0: return immediately; capped at 30 s).
	WaitMs int64 `json:"wait_ms,omitempty"`
}

// PollResponse carries new leases and the agent's admission status.
type PollResponse struct {
	Leases []Lease `json:"leases,omitempty"`
	// Status is parked | pending | active | draining.
	Status string `json:"status"`
	// Done tells the agent the run has finished; it should drain
	// in-flight work and exit.
	Done bool `json:"done,omitempty"`
}

// TransferReport is the POST …/leases/{lease}/transfer body: the measured
// input-transfer duration, sent when the emulated transfer phase completes
// (the kickstart record the transfer estimator consumes, §III-B1).
type TransferReport struct {
	TransferS simtime.Duration `json:"transfer_s"`
}

// CompleteReport is the POST …/leases/{lease}/complete body: the measured
// execution/transfer durations and input size for the finished task.
type CompleteReport struct {
	ExecS     simtime.Duration `json:"exec_s"`
	TransferS simtime.Duration `json:"transfer_s"`
	InputMB   float64          `json:"input_mb"`

	// Failed reports an unsuccessful attempt (task crash): the lease is
	// consumed, the agent's health score is debited, and the task is
	// requeued with backoff against its attempt budget.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Ack is the generic accepted/stale response to lease reports. Stale means
// the lease was already reclaimed or the run is over; the agent drops the
// work silently (the task has been requeued elsewhere).
type Ack struct {
	Stale bool `json:"stale,omitempty"`
}

// PlanStreamResponse is the GET /v1/live/runs/{id}/stream body: the recorded
// snapshot→decision pairs for the parity twin.
type PlanStreamResponse struct {
	Records []PlanRecord `json:"records"`
}

// wallMs converts a millisecond field to a duration.
func wallMs(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }
