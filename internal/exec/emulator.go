package exec

import (
	"context"
	"time"

	"repro/internal/simtime"
)

// Emulator executes one leased task as a busy/sleep hybrid: each phase
// (input transfer, then execution) occupies wall time equal to the spec's
// simulated duration divided by the timescale, spending BusyFrac of every
// tick spinning and the rest sleeping. It is the repo's stand-in for the
// paper's emulated task mix (§IV-B): the workload is synthetic but the
// concurrency, the clocks, and the measurement noise are real.
//
// The emulator reports *measured* durations — wall-clock elapsed scaled back
// to simulated seconds — never the spec values. That is the point: the
// monitoring plane downstream (and ultimately the predictor) sees noisy
// observations, exactly as with kickstart records from real workers.
type Emulator struct {
	Spec TaskSpec

	// now and sleep override the clock in tests; nil uses the real ones.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// emulatorTick bounds one busy+sleep cycle so context cancellation is
// observed promptly even inside long phases.
const emulatorTick = 10 * time.Millisecond

// Run emulates the task. onTransfer, when non-nil, is invoked between the
// transfer and execution phases with the measured transfer duration — the
// agent uses it to post the mid-task transfer report. The returned report
// carries the measured phase durations in simulated seconds.
func (e *Emulator) Run(ctx context.Context, onTransfer func(simtime.Duration)) (CompleteReport, error) {
	now := e.now
	if now == nil {
		now = time.Now
	}
	scale := e.Spec.Timescale
	if scale <= 0 {
		scale = 1
	}

	transfer, err := e.phase(ctx, now, e.Spec.TransferS/scale)
	if err != nil {
		return CompleteReport{}, err
	}
	measuredTransfer := transfer.Seconds() * scale
	if onTransfer != nil {
		onTransfer(measuredTransfer)
	}

	exec, err := e.phase(ctx, now, e.Spec.ExecS/scale)
	if err != nil {
		return CompleteReport{}, err
	}
	return CompleteReport{
		ExecS:     exec.Seconds() * scale,
		TransferS: measuredTransfer,
		InputMB:   e.Spec.InputMB,
	}, nil
}

// phase occupies wallSeconds of wall clock with the busy/sleep mix and
// returns the measured elapsed time.
func (e *Emulator) phase(ctx context.Context, now func() time.Time, wallSeconds simtime.Duration) (time.Duration, error) {
	start := now()
	if wallSeconds <= 0 {
		return now().Sub(start), nil
	}
	deadline := start.Add(time.Duration(wallSeconds * float64(time.Second)))
	busyFrac := e.Spec.BusyFrac
	if busyFrac < 0 {
		busyFrac = 0
	}
	if busyFrac > 1 {
		busyFrac = 1
	}
	for {
		remaining := deadline.Sub(now())
		if remaining <= 0 {
			break
		}
		tick := remaining
		if tick > emulatorTick {
			tick = emulatorTick
		}
		busy := time.Duration(float64(tick) * busyFrac)
		if busy > 0 {
			spinUntil := now().Add(busy)
			for now().Before(spinUntil) {
				// Busy-spin: emulate CPU occupancy.
			}
		}
		if rest := tick - busy; rest > 0 {
			if err := e.doSleep(ctx, rest); err != nil {
				return now().Sub(start), err
			}
		} else if err := ctx.Err(); err != nil {
			return now().Sub(start), err
		}
	}
	return now().Sub(start), nil
}

func (e *Emulator) doSleep(ctx context.Context, d time.Duration) error {
	if e.sleep != nil {
		return e.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
