package exec

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered-exponential retry delays: full jitter over an
// exponentially growing ceiling, the scheme the service client has used since
// the chaos PR. It is shared by the agent's measurement-report retry, the
// agent reconnect loop, and (via delegation) service.RetryPolicy, so every
// retry path in the repo backs off the same way.
type Backoff struct {
	// Base seeds the exponential ceiling (default 100ms).
	Base time.Duration
	// Max caps the ceiling (default 2s).
	Max time.Duration
}

// Delay returns the full-jitter sleep before the retry-th retry (retry ≥ 0):
// a uniform draw u ∈ [0,1) over a ceiling of Base·2^retry capped at Max.
func (b Backoff) Delay(retry int, u float64) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	ceil := base
	for i := 0; i < retry && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	return time.Duration(u * float64(ceil))
}

// jitterSeq derives independent, reproducible jitter streams for an agent's
// retry loops. rand.Rand is not goroutine-safe and lease completions retry
// concurrently, so each retry loop gets its own rand.Rand seeded from this
// shared sequence rather than sharing one (or mutating the global source,
// which any other package could reseed or drain).
type jitterSeq struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// newJitterSeq seeds the sequence; seed 0 falls back to the wall clock so
// independently started agents do not draw identical jitter and retry in
// lockstep (the thundering herd full jitter exists to break).
func newJitterSeq(seed int64) *jitterSeq {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &jitterSeq{rng: rand.New(rand.NewSource(seed))}
}

// next returns a fresh jitter stream for one retry loop.
func (q *jitterSeq) next() *rand.Rand {
	q.mu.Lock()
	defer q.mu.Unlock()
	return rand.New(rand.NewSource(q.rng.Int63()))
}

// retrySleeper tracks consecutive failures and sleeps the corresponding
// jittered-exponential delay, honouring context cancellation.
type retrySleeper struct {
	b     Backoff
	rng   *rand.Rand
	retry int
}

// Sleep blocks for the next backoff delay (at least 1ms, so a zero jitter
// draw cannot hot-spin) and advances the retry counter. It returns the
// context error if cancelled mid-sleep.
func (s *retrySleeper) Sleep(ctx context.Context) error {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d := s.b.Delay(s.retry, s.rng.Float64())
	if d < time.Millisecond {
		d = time.Millisecond
	}
	s.retry++
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Reset clears the failure streak after a success.
func (s *retrySleeper) Reset() { s.retry = 0 }
