package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestLeaksDetectsAndDrains pins the detection primitive: goroutines
// blocked inside matching code are reported with their stacks, and the
// report drains once they exit.
func TestLeaksDetectsAndDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	const n = 3
	for i := 0; i < n; i++ {
		go func() {
			started <- struct{}{}
			<-release
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}

	// Match on this test's own closure frames so the count is exact
	// regardless of what else the test binary is running.
	const match = "leakcheck.TestLeaksDetectsAndDrains"
	got := leaks(match, "")
	// The test goroutine itself matches too (it is running this function).
	if len(got) < n {
		t.Fatalf("leaks() found %d goroutine(s), want >= %d blocked workers", len(got), n)
	}
	if !strings.Contains(strings.Join(got, ""), "goroutine ") {
		t.Fatal("leak report lost the stack headers")
	}

	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Only the test goroutine itself should remain.
		if len(leaks(match, "")) <= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers released but still reported: %v", leaks(match, ""))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeaksExclude pins the self-exclusion used by Main: a matching
// goroutine disappears from the report when the exclude pattern also hits.
func TestLeaksExclude(t *testing.T) {
	const match = "leakcheck.TestLeaksExclude"
	if len(leaks(match, "")) == 0 {
		t.Fatal("test goroutine did not match its own frame")
	}
	if got := leaks(match, match); len(got) != 0 {
		t.Fatalf("exclude pattern ignored: %v", got)
	}
}
