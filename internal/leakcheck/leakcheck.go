// Package leakcheck is a dependency-free goroutine-leak harness for test
// mains. A control-plane package that passes its tests but leaves janitors,
// probe loops, or drain workers running has a shutdown bug that only shows
// up as flaky CI or a slowly fattening daemon; this package turns that into
// a hard test failure.
//
// Usage — one file per package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the package's tests pass, Main polls the runtime for goroutines
// still executing this module's code. Goroutines are given a grace window
// to drain (contexts cancel asynchronously; a Serve loop needs a few
// scheduler ticks to observe ctx.Done), after which any straggler's full
// stack is printed and the test binary exits non-zero.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies "our" frames in a goroutine stack. Runtime,
// testing-framework, and net/http service goroutines owned by the standard
// library are invisible to the check unless repro code appears somewhere in
// their stack.
const modulePrefix = "repro/internal/"

// selfPrefix excludes this package's own frames (the polling goroutine is
// itself running repro code).
const selfPrefix = "repro/internal/leakcheck"

// grace is how long stragglers get to drain after the last test finishes.
// It bounds the worst case; the poll returns as soon as the count hits
// zero, so clean packages pay only one 10ms tick.
const grace = 5 * time.Second

// Main runs the package's tests and then fails the binary if any goroutine
// spawned by module code outlives them. Leak checking only runs when the
// tests themselves passed — a failing test is allowed to abandon goroutines.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := poll(grace); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr,
				"leakcheck: %d goroutine(s) still running %s code %v after tests passed:\n\n%s\n",
				len(leaked), modulePrefix, grace, strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// poll samples the leak set every 10ms until it drains or the grace window
// closes, returning the final set of straggler stacks.
func poll(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := leaks(modulePrefix, selfPrefix)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leaks returns the stacks of live goroutines whose traces contain match,
// excluding those that also contain exclude (when non-empty).
func leaks(match, exclude string) []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, match) {
			continue
		}
		if exclude != "" && strings.Contains(g, exclude) {
			continue
		}
		out = append(out, g)
	}
	return out
}
