// Package metrics computes the evaluation metrics of §IV: task-prediction
// errors bucketed by stage class (Figure 4), resource cost in charging units
// (Figure 5), relative execution time (Figure 6), and controller overhead
// (§IV-F).
package metrics

import (
	"fmt"
	"time"

	"repro/internal/dag"
	"repro/internal/sim"
	"repro/internal/stats"
)

// StageClass buckets stages by average task execution time (§IV-D).
type StageClass int

// Stage classes.
const (
	// ShortStage: mean task execution ≤ 10 s.
	ShortStage StageClass = iota
	// MediumStage: 10 s < mean ≤ 30 s.
	MediumStage
	// LongStage: mean > 30 s.
	LongStage
)

// String implements fmt.Stringer.
func (c StageClass) String() string {
	switch c {
	case ShortStage:
		return "short"
	case MediumStage:
		return "medium"
	case LongStage:
		return "long"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify returns the stage class for a mean task execution time in
// seconds.
func Classify(meanExec float64) StageClass {
	switch {
	case meanExec <= 10:
		return ShortStage
	case meanExec <= 30:
		return MediumStage
	default:
		return LongStage
	}
}

// ErrorSample is one task's prediction error.
type ErrorSample struct {
	Task      dag.TaskID
	Stage     dag.StageID
	Class     StageClass
	Predicted float64
	Actual    float64
}

// TrueError returns predicted − actual in seconds (§IV-D footnote 3).
func (e ErrorSample) TrueError() float64 { return e.Predicted - e.Actual }

// RelTrueError returns (predicted − actual)/actual; it is the metric
// reported for long stages.
func (e ErrorSample) RelTrueError() float64 {
	if e.Actual == 0 {
		return 0
	}
	return (e.Predicted - e.Actual) / e.Actual
}

// ErrorSummary aggregates the samples of one stage class the way Figure 4
// and §IV-D report them.
type ErrorSummary struct {
	Class StageClass
	Count int

	// MeanAbsTrueError is the average |predicted − actual| in seconds
	// (the headline metric for short/medium stages).
	MeanAbsTrueError float64
	// MeanAbsRelError is the average |relative true error| (the headline
	// metric for long stages).
	MeanAbsRelError float64

	// FracWithin1s is the fraction of tasks with |true error| ≤ 1 s.
	FracWithin1s float64
	// FracWithin15pct is the fraction with |relative error| ≤ 15 %.
	FracWithin15pct float64

	// TrueErrCDF / RelErrCDF expose the full distributions for the
	// Figure 4 CDF plots.
	TrueErrCDF *stats.CDF
	RelErrCDF  *stats.CDF
}

// Summarize buckets samples by class and aggregates each bucket.
func Summarize(samples []ErrorSample) map[StageClass]ErrorSummary {
	byClass := map[StageClass][]ErrorSample{}
	for _, s := range samples {
		byClass[s.Class] = append(byClass[s.Class], s)
	}
	out := make(map[StageClass]ErrorSummary, len(byClass))
	for class, ss := range byClass {
		sum := ErrorSummary{Class: class, Count: len(ss)}
		trueErrs := make([]float64, len(ss))
		relErrs := make([]float64, len(ss))
		within1, within15 := 0, 0
		absT, absR := 0.0, 0.0
		for i, s := range ss {
			te, re := s.TrueError(), s.RelTrueError()
			trueErrs[i], relErrs[i] = te, re
			if te >= -1 && te <= 1 {
				within1++
			}
			if re >= -0.15 && re <= 0.15 {
				within15++
			}
			if te < 0 {
				te = -te
			}
			if re < 0 {
				re = -re
			}
			absT += te
			absR += re
		}
		n := float64(len(ss))
		sum.MeanAbsTrueError = absT / n
		sum.MeanAbsRelError = absR / n
		sum.FracWithin1s = float64(within1) / n
		sum.FracWithin15pct = float64(within15) / n
		sum.TrueErrCDF = stats.NewCDF(trueErrs)
		sum.RelErrCDF = stats.NewCDF(relErrs)
		out[class] = sum
	}
	return out
}

// CollectErrors pairs pre-start execution-time predictions with observed
// execution times. Only stages with at least minStageTasks tasks are kept
// (the paper analyzes the 45 stages with ≥ 2 tasks), and tasks without a
// recorded prediction are skipped. Stage classes come from the observed
// per-stage means of this run.
func CollectErrors(wf *dag.Workflow, predicted map[dag.TaskID]float64, runs []sim.TaskRun, minStageTasks int) []ErrorSample {
	stageExec := make(map[dag.StageID][]float64)
	actual := make(map[dag.TaskID]float64, len(runs))
	for _, tr := range runs {
		stageExec[tr.Stage] = append(stageExec[tr.Stage], tr.ObservedExec)
		actual[tr.Task] = tr.ObservedExec
	}
	class := make(map[dag.StageID]StageClass, len(stageExec))
	for sid, execs := range stageExec {
		m, _ := stats.Mean(execs)
		class[sid] = Classify(m)
	}
	var out []ErrorSample
	for _, st := range wf.Stages {
		if len(st.Tasks) < minStageTasks {
			continue
		}
		for _, tid := range st.Tasks {
			pred, ok := predicted[tid]
			if !ok {
				continue
			}
			act, ok := actual[tid]
			if !ok {
				continue
			}
			out = append(out, ErrorSample{
				Task:      tid,
				Stage:     st.ID,
				Class:     class[st.ID],
				Predicted: pred,
				Actual:    act,
			})
		}
	}
	return out
}

// CostSummary aggregates repeated runs of one (policy, charging unit)
// setting the way Figures 5/6 report them.
type CostSummary struct {
	Policy string
	Unit   float64 // charging unit, seconds

	Reps int

	CostMean float64 // charging units
	CostStd  float64

	MakespanMean float64 // seconds
	MakespanStd  float64

	UtilizationMean float64
	RestartsMean    float64

	// ControllerWallMean is the mean real time spent in Plan (§IV-F).
	ControllerWallMean time.Duration
}

// SummarizeRuns aggregates a setting's repetitions. It panics on an empty
// input: a setting with zero runs is an experiment-driver bug.
func SummarizeRuns(results []*sim.Result, unit float64) CostSummary {
	if len(results) == 0 {
		panic("metrics: SummarizeRuns with no results")
	}
	costs := make([]float64, len(results))
	spans := make([]float64, len(results))
	utils := make([]float64, len(results))
	restarts := make([]float64, len(results))
	var wall time.Duration
	for i, r := range results {
		costs[i] = float64(r.UnitsCharged)
		spans[i] = r.Makespan
		utils[i] = r.Utilization
		restarts[i] = float64(r.Restarts)
		wall += r.ControllerWall
	}
	cm, cs := stats.MeanStd(costs)
	mm, ms := stats.MeanStd(spans)
	um, _ := stats.Mean(utils)
	rm, _ := stats.Mean(restarts)
	return CostSummary{
		Policy:             results[0].Policy,
		Unit:               unit,
		Reps:               len(results),
		CostMean:           cm,
		CostStd:            cs,
		MakespanMean:       mm,
		MakespanStd:        ms,
		UtilizationMean:    um,
		RestartsMean:       rm,
		ControllerWallMean: wall / time.Duration(len(results)),
	}
}

// RelativeTimes normalizes each summary's mean makespan to the fastest
// setting in the group (Figure 6's relative execution time). It returns the
// multiplier per summary, aligned by index.
func RelativeTimes(summaries []CostSummary) []float64 {
	best := 0.0
	for _, s := range summaries {
		if best == 0 || s.MakespanMean < best {
			best = s.MakespanMean
		}
	}
	out := make([]float64, len(summaries))
	for i, s := range summaries {
		if best > 0 {
			out[i] = s.MakespanMean / best
		}
	}
	return out
}
