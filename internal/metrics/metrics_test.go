package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		mean float64
		want StageClass
	}{
		{1, ShortStage}, {10, ShortStage}, {10.1, MediumStage},
		{30, MediumStage}, {30.1, LongStage}, {500, LongStage},
	}
	for _, c := range cases {
		if got := Classify(c.mean); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.mean, got, c.want)
		}
	}
	if ShortStage.String() != "short" || MediumStage.String() != "medium" || LongStage.String() != "long" {
		t.Fatal("class names wrong")
	}
}

func TestErrorSampleMetrics(t *testing.T) {
	e := ErrorSample{Predicted: 12, Actual: 10}
	if e.TrueError() != 2 {
		t.Fatalf("TrueError = %v", e.TrueError())
	}
	if math.Abs(e.RelTrueError()-0.2) > 1e-12 {
		t.Fatalf("RelTrueError = %v", e.RelTrueError())
	}
	zero := ErrorSample{Predicted: 5, Actual: 0}
	if zero.RelTrueError() != 0 {
		t.Fatal("zero actual should yield zero relative error")
	}
}

func TestSummarize(t *testing.T) {
	samples := []ErrorSample{
		{Class: ShortStage, Predicted: 5, Actual: 5},    // err 0
		{Class: ShortStage, Predicted: 5.5, Actual: 5},  // err 0.5
		{Class: ShortStage, Predicted: 9, Actual: 5},    // err 4
		{Class: LongStage, Predicted: 110, Actual: 100}, // rel 0.1
		{Class: LongStage, Predicted: 150, Actual: 100}, // rel 0.5
	}
	sums := Summarize(samples)
	short := sums[ShortStage]
	if short.Count != 3 {
		t.Fatalf("short count = %d", short.Count)
	}
	if math.Abs(short.FracWithin1s-2.0/3) > 1e-12 {
		t.Fatalf("FracWithin1s = %v", short.FracWithin1s)
	}
	if math.Abs(short.MeanAbsTrueError-1.5) > 1e-12 {
		t.Fatalf("MeanAbsTrueError = %v", short.MeanAbsTrueError)
	}
	long := sums[LongStage]
	if math.Abs(long.FracWithin15pct-0.5) > 1e-12 {
		t.Fatalf("FracWithin15pct = %v", long.FracWithin15pct)
	}
	if math.Abs(long.MeanAbsRelError-0.3) > 1e-12 {
		t.Fatalf("MeanAbsRelError = %v", long.MeanAbsRelError)
	}
	if long.TrueErrCDF.Len() != 2 || long.RelErrCDF.Len() != 2 {
		t.Fatal("CDFs missing")
	}
}

func buildWF() *dag.Workflow {
	b := dag.NewBuilder("m")
	s0 := b.AddStage("solo")
	s1 := b.AddStage("wide")
	b.AddTask(s0, "solo", 5, 0, 1)
	for i := 0; i < 3; i++ {
		b.AddTask(s1, "w", 20, 0, 1)
	}
	return b.MustBuild()
}

func TestCollectErrors(t *testing.T) {
	wf := buildWF()
	runs := []sim.TaskRun{
		{Task: 0, Stage: 0, ObservedExec: 5},
		{Task: 1, Stage: 1, ObservedExec: 20},
		{Task: 2, Stage: 1, ObservedExec: 22},
		{Task: 3, Stage: 1, ObservedExec: 18},
	}
	preds := map[dag.TaskID]float64{0: 4, 1: 21, 2: 22, 3: 10}
	samples := CollectErrors(wf, preds, runs, 2)
	// Stage 0 has <2 tasks: excluded. All 3 wide-stage tasks included.
	if len(samples) != 3 {
		t.Fatalf("samples = %+v", samples)
	}
	for _, s := range samples {
		if s.Stage != 1 || s.Class != MediumStage {
			t.Fatalf("sample %+v", s)
		}
	}
	// A task without a prediction is skipped.
	delete(preds, 3)
	if got := len(CollectErrors(wf, preds, runs, 2)); got != 2 {
		t.Fatalf("samples = %d, want 2", got)
	}
}

func TestSummarizeRuns(t *testing.T) {
	results := []*sim.Result{
		{Policy: "wire", UnitsCharged: 10, Makespan: 100, Utilization: 0.8, Restarts: 1, ControllerWall: 2 * time.Millisecond},
		{Policy: "wire", UnitsCharged: 14, Makespan: 120, Utilization: 0.9, Restarts: 3, ControllerWall: 4 * time.Millisecond},
	}
	s := SummarizeRuns(results, 60)
	if s.Policy != "wire" || s.Reps != 2 || s.Unit != 60 {
		t.Fatalf("summary = %+v", s)
	}
	if s.CostMean != 12 || s.MakespanMean != 110 {
		t.Fatalf("means = %v/%v", s.CostMean, s.MakespanMean)
	}
	if s.CostStd != 2 {
		t.Fatalf("cost std = %v", s.CostStd)
	}
	if s.RestartsMean != 2 || math.Abs(s.UtilizationMean-0.85) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	if s.ControllerWallMean != 3*time.Millisecond {
		t.Fatalf("wall = %v", s.ControllerWallMean)
	}
}

func TestSummarizeRunsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SummarizeRuns(nil, 60)
}

func TestRelativeTimes(t *testing.T) {
	sums := []CostSummary{
		{MakespanMean: 100},
		{MakespanMean: 150},
		{MakespanMean: 300},
	}
	rel := RelativeTimes(sums)
	want := []float64{1, 1.5, 3}
	for i := range want {
		if math.Abs(rel[i]-want[i]) > 1e-12 {
			t.Fatalf("rel = %v", rel)
		}
	}
}
