package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/service"
)

// ShardCertConfig drives ShardCertify: the cluster certificate run behind
// `wire-serve loadgen -shards N -kill-shard`.
type ShardCertConfig struct {
	// Loadgen configures the sessions. Client is filled in by the harness
	// (a retrying client pointed at the router); Verify should be set — the
	// certificate is the twin comparison.
	Loadgen service.LoadgenConfig
	// Server is the per-shard daemon config; ShardMode and JournalDir are
	// overridden per shard.
	Server service.Config
	// Shards is the fleet size (default 3).
	Shards int
	// JournalRoot holds one journal directory per shard (default: a fresh
	// temp dir, removed afterwards).
	JournalRoot string

	// KillAfter SIGKILLs one shard this long (plus a seeded jitter) into the
	// run: its listener and every open connection die abruptly, no drain.
	// Zero skips the kill.
	KillAfter time.Duration
	// KillJitterMax bounds the seeded jitter added to KillAfter.
	KillJitterMax time.Duration
	// Seed feeds the chaos plan's shard-kill schedule (victim + jitter).
	Seed int64

	// HeartbeatInterval is the router's probe period (default 50ms — the
	// cert wants sub-second failover so the loadgen rides through it well
	// inside its retry budget).
	HeartbeatInterval time.Duration
	// FailThreshold is the router's consecutive-miss death threshold
	// (default 3).
	FailThreshold int
	// Retry overrides the loadgen client's retry policy (default
	// DefaultChaosRetry — persistent enough to ride out the failover).
	Retry *service.RetryPolicy

	// Logf receives harness and router log lines.
	Logf func(format string, args ...any)
}

// ShardCertResult is a cluster certificate run's outcome.
type ShardCertResult struct {
	*service.LoadgenResult
	// Killed reports whether the mid-run shard kill actually happened (the
	// run may finish first).
	Killed bool
	// Victim is the killed shard's name.
	Victim string
	// Failovers, HandoffSessions, ShardsUp, and Recovering503 are the
	// router's counters at the end of the run.
	Failovers       int64
	HandoffSessions int64
	ShardsUp        int
	Recovering503   int64
}

// inflightHandler counts in-flight requests so the harness can wait out the
// victim's already-running handlers after the abrupt kill: a real SIGKILL
// stops WAL appends instantly, but an in-process http.Server.Close leaves
// handler goroutines running, and the cert must not let one append to a WAL
// a peer is mid-replay on.
type inflightHandler struct {
	h http.Handler
	n atomic.Int64
}

func (ih *inflightHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ih.n.Add(1)
	defer ih.n.Add(-1)
	ih.h.ServeHTTP(w, r)
}

type certShard struct {
	shard    Shard
	srv      *service.Server
	hs       *http.Server
	inflight *inflightHandler
}

// ShardCertify hosts an N-shard wire-serve cluster in-process — N shard
// daemons with private journal directories behind one router — drives
// loadgen through the router, kills one shard abruptly mid-run, and returns
// the loadgen report plus the router's failover counters. The certificate
// passes when the kill happened, a failover completed, and no session
// failed or mismatched its in-process twin: every session the dead shard
// owned was resurrected on a peer by journal handoff with its exactly-once
// plan cache intact.
func ShardCertify(ctx context.Context, cfg ShardCertConfig) (*ShardCertResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 50 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.JournalRoot == "" {
		dir, err := os.MkdirTemp("", "wire-serve-cluster-*")
		if err != nil {
			return nil, fmt.Errorf("cluster cert: %w", err)
		}
		defer os.RemoveAll(dir)
		cfg.JournalRoot = dir
	}

	// Start the shard fleet.
	shards := make([]*certShard, cfg.Shards)
	defer func() {
		for _, cs := range shards {
			if cs != nil {
				_ = cs.hs.Close()
			}
		}
	}()
	shardList := make([]Shard, cfg.Shards)
	for i := range shards {
		name := "s" + strconv.Itoa(i)
		jdir := filepath.Join(cfg.JournalRoot, name)
		if err := os.MkdirAll(jdir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster cert: %w", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster cert: %w", err)
		}
		scfg := cfg.Server
		scfg.ShardMode = true
		scfg.JournalDir = jdir
		srv := service.New(scfg)
		ih := &inflightHandler{h: srv.Handler()}
		hs := &http.Server{Handler: ih}
		go func() { _ = hs.Serve(ln) }()
		sh := Shard{Name: name, URL: "http://" + ln.Addr().String(), JournalDir: jdir}
		shards[i] = &certShard{shard: sh, srv: srv, hs: hs, inflight: ih}
		shardList[i] = sh
	}

	// Start the router.
	rt, err := NewRouter(RouterConfig{
		Shards:            shardList,
		HeartbeatInterval: cfg.HeartbeatInterval,
		FailThreshold:     cfg.FailThreshold,
		Logf:              logf,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster cert: %w", err)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go rt.Run(rctx)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster cert: %w", err)
	}
	rhs := &http.Server{Handler: rt.Handler()}
	go func() { _ = rhs.Serve(rln) }()
	defer rhs.Close()

	retry := service.DefaultChaosRetry()
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	cfg.Loadgen.Client = service.NewClient("http://"+rln.Addr().String(), service.WithRetry(retry))

	resc := make(chan *service.LoadgenResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := service.Loadgen(ctx, cfg.Loadgen)
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()

	out := &ShardCertResult{}
	if cfg.KillAfter > 0 {
		victim, jitter := chaos.Plan{Seed: cfg.Seed}.ShardKillSchedule(cfg.Shards, cfg.KillJitterMax)
		select {
		case res := <-resc:
			// The run outpaced the kill; certify without it.
			out.LoadgenResult = res
		case err := <-errc:
			return nil, err
		case <-time.After(cfg.KillAfter + jitter):
			cs := shards[victim]
			out.Killed = true
			out.Victim = cs.shard.Name
			logf("cluster cert: killing shard %s at %s (abrupt, no drain)", cs.shard.Name, cs.shard.URL)
			_ = cs.hs.Close() // kills the listener and open connections mid-flight
			// Wait out already-running handlers (see inflightHandler) so no
			// WAL append races the peer's adoption replay.
			deadline := time.Now().Add(5 * time.Second)
			for cs.inflight.n.Load() > 0 && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	if out.LoadgenResult == nil {
		select {
		case res := <-resc:
			out.LoadgenResult = res
		case err := <-errc:
			return nil, err
		}
	}

	rc := rt.Counters()
	out.Failovers = rc.FailoversTotal
	out.HandoffSessions = rc.HandoffSessionsTotal
	out.ShardsUp = rc.ShardsUp
	out.Recovering503 = rc.Recovering503Total
	return out, nil
}
