package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/chaos"
	"repro/internal/service"
)

// ShardCertConfig drives ShardCertify: the cluster certificate run behind
// `wire-serve loadgen -shards N -kill-shard` and its elastic variants
// `-rolling-restart` and `-churn N`.
type ShardCertConfig struct {
	// Loadgen configures the sessions. Client is filled in by the harness
	// (a retrying client pointed at the router); Verify should be set — the
	// certificate is the twin comparison.
	Loadgen service.LoadgenConfig
	// Server is the per-shard daemon config; ShardMode and JournalDir are
	// overridden per shard.
	Server service.Config
	// Shards is the fleet size (default 3).
	Shards int
	// JournalRoot holds one journal directory per shard (default: a fresh
	// temp dir, removed afterwards).
	JournalRoot string

	// KillAfter SIGKILLs one shard this long (plus a seeded jitter) into the
	// run: its listener and every open connection die abruptly, no drain.
	// Zero skips the kill.
	KillAfter time.Duration
	// KillJitterMax bounds the seeded jitter added to KillAfter.
	KillJitterMax time.Duration
	// Seed feeds the chaos plan's shard-kill and churn schedules.
	Seed int64

	// RollingRestart drains, restarts, and rejoins every shard in sequence
	// while the loadgen runs: the rolling-restart certificate. The run ends
	// only after the full cycle completes and shards_up has returned to N.
	RollingRestart bool
	// RollingDelay is the pause between a shard's restart and the next
	// shard's drain (default 100ms).
	RollingDelay time.Duration

	// ChurnEvents, when positive, applies a seeded random schedule of
	// kill/drain/join events (chaos.Plan.ChurnSchedule) during the run,
	// then heals the fleet back to N shards. Exercises the nasty
	// interleavings: kill-during-drain, join-during-failover.
	ChurnEvents int
	// ChurnMinGap and ChurnMaxGap bound the gaps between churn events
	// (defaults 100ms and 400ms).
	ChurnMinGap time.Duration
	ChurnMaxGap time.Duration

	// HeartbeatInterval is the router's probe period (default 50ms — the
	// cert wants sub-second failover so the loadgen rides through it well
	// inside its retry budget).
	HeartbeatInterval time.Duration
	// FailThreshold is the router's consecutive-miss death threshold
	// (default 3).
	FailThreshold int
	// Retry overrides the loadgen client's retry policy (default
	// DefaultChaosRetry — persistent enough to ride out the failover).
	Retry *service.RetryPolicy

	// Partition, when non-nil, runs the partition nemesis: a seeded schedule
	// of link faults (symmetric splits, one-way router→shard drops, slow
	// links) realized by a chaos.Network wrapper that the router, every
	// shard's relay-probe client, and the loadgen client thread through.
	// Each event heals before the next; the run ends with the fleet at full
	// strength and the post-run journal audit attached to the result.
	// Incompatible with TenantBudget/TenantMaxActive: the audit needs
	// RetainSessions, and retained sessions never release their tenant
	// slots, so admission would starve.
	Partition *chaos.PartitionSpec
	// PartitionMinGap/PartitionMaxGap bound the gaps between partition
	// events (defaults 200ms and 500ms); PartitionMinDur/PartitionMaxDur
	// bound each event's hold time (defaults 700ms and 1.4s — long enough
	// to cross the router's confirmation threshold, short enough to heal
	// well inside the client retry budget).
	PartitionMinGap time.Duration
	PartitionMaxGap time.Duration
	PartitionMinDur time.Duration
	PartitionMaxDur time.Duration
	// SlowMaxDelay bounds the seeded per-request delay on slow-link events
	// (default 250ms — well under the router's 2s probe timeout, so a slow
	// link degrades latency without tripping failover).
	SlowMaxDelay time.Duration

	// Logf receives harness and router log lines.
	Logf func(format string, args ...any)
}

// ShardCertResult is a cluster certificate run's outcome.
type ShardCertResult struct {
	*service.LoadgenResult
	// Killed reports whether the mid-run shard kill actually happened (the
	// run may finish first).
	Killed bool
	// Victim is the killed shard's name.
	Victim string
	// Failovers, HandoffSessions, ShardsUp, and Recovering503 are the
	// router's counters at the end of the run.
	Failovers       int64
	HandoffSessions int64
	ShardsUp        int
	Recovering503   int64
	// Drains, Joins, and Migrated are the elastic-operation counters at the
	// end of the run (rolling-restart and churn certificates).
	Drains   int64
	Joins    int64
	Migrated int64
	// Restarted lists the shards the rolling-restart cycle completed, in
	// order.
	Restarted []string
	// ChurnApplied counts churn events that were actually applied.
	ChurnApplied int
	// PartitionsApplied counts nemesis events that ran to their heal.
	PartitionsApplied int
	// PartitionsSuspected, PartitionsHealed, and Partitioned503 are the
	// router's partition counters at the end of the run.
	PartitionsSuspected int64
	PartitionsHealed    int64
	Partitioned503      int64
	// Audit is the post-run journal consistency report (partition nemesis
	// runs only — they retain sessions so the WALs survive to be audited).
	Audit *audit.Report
}

// inflightHandler counts in-flight requests so the harness can wait out the
// victim's already-running handlers after the abrupt kill: a real SIGKILL
// stops WAL appends instantly, but an in-process http.Server.Close leaves
// handler goroutines running, and the cert must not let one append to a WAL
// a peer is mid-replay on.
type inflightHandler struct {
	h http.Handler
	n atomic.Int64
}

func (ih *inflightHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ih.n.Add(1)
	defer ih.n.Add(-1)
	ih.h.ServeHTTP(w, r)
}

// certShard is one restartable in-process shard daemon. stop tears down the
// listener abruptly (the in-process analogue of SIGKILL); start brings up a
// FRESH service.Server on the same journal directory and a new port —
// startup recovery skips fenced WALs, so a restarted shard whose sessions
// were adopted elsewhere comes back empty, exactly like a restarted real
// process would.
type certShard struct {
	name string
	jdir string
	scfg service.Config

	mu       sync.Mutex
	shard    Shard
	srv      *service.Server
	hs       *http.Server
	inflight *inflightHandler
	down     bool
}

func (cs *certShard) start() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := service.New(cs.scfg)
	ih := &inflightHandler{h: srv.Handler()}
	hs := &http.Server{Handler: ih, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	cs.shard = Shard{Name: cs.name, URL: "http://" + ln.Addr().String(), JournalDir: cs.jdir}
	cs.srv, cs.hs, cs.inflight = srv, hs, ih
	cs.down = false
	return nil
}

// stop kills the shard's listener and open connections, then waits out
// already-running handlers so no WAL append races a peer's adoption replay.
func (cs *certShard) stop() {
	cs.mu.Lock()
	hs, ih := cs.hs, cs.inflight
	cs.down = true
	cs.mu.Unlock()
	if hs != nil {
		_ = hs.Close()
	}
	if ih != nil {
		deadline := time.Now().Add(5 * time.Second)
		for ih.n.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func (cs *certShard) current() (Shard, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.shard, cs.down
}

// postAdmin POSTs one JSON body to a router admin endpoint.
func postAdmin(ctx context.Context, url string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rb, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, rb)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// joinWithRetry re-POSTs a join until it lands: a just-killed shard's
// membership entry passes through recovering (join refused, 409) before
// failover completes and rejoin-by-name becomes possible.
func joinWithRetry(ctx context.Context, routerURL string, sh Shard, logf func(string, ...any)) error {
	var last error
	for i := 0; i < 200; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = postAdmin(ctx, routerURL+"/v1/admin/join", map[string]string{
			"name": sh.Name, "url": sh.URL, "journal_dir": sh.JournalDir,
		})
		if last == nil {
			return nil
		}
		if strings.Contains(last.Error(), "is up;") {
			// A concurrent join (e.g. the churn schedule's own) beat us to it.
			return nil
		}
		logf("cluster cert: join %s: %v; retrying", sh.Name, last)
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("join %s: %w", sh.Name, last)
}

// drainWithRetry re-POSTs a drain until it lands. Transient 409s are part of
// normal operation — an auto-rejoin may hold the topology-op lock, or the
// target may momentarily be joining/recovering after a heartbeat flap — and
// resolve within a few probe rounds. A target already left the ring counts
// as drained.
func drainWithRetry(ctx context.Context, routerURL, name string, logf func(string, ...any)) error {
	var last error
	for i := 0; i < 200; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = postAdmin(ctx, routerURL+"/v1/admin/drain", map[string]string{"shard": name})
		if last == nil {
			return nil
		}
		if strings.Contains(last.Error(), "is left;") {
			return nil
		}
		logf("cluster cert: drain %s: %v; retrying", name, last)
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("drain %s: %w", name, last)
}

// waitShardsUp polls the router until shards_up reaches want.
func waitShardsUp(ctx context.Context, rt *Router, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if rt.members.shardsUp() >= want {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("shards_up did not reach %d within %v (at %d)", want, timeout, rt.members.shardsUp())
}

// ShardCertify hosts an N-shard wire-serve cluster in-process — N shard
// daemons with private journal directories behind one router — drives
// loadgen through the router while injecting the configured faults, and
// returns the loadgen report plus the router's counters. Fault modes:
//
//   - KillAfter: one abrupt shard kill mid-run; the certificate passes when
//     a failover completed and no session failed or mismatched its
//     in-process twin.
//   - RollingRestart: every shard in sequence is drained (graceful — its
//     sessions migrate while it serves), stopped, restarted fresh, and
//     rejoined; the fleet must end back at full strength with zero drops.
//   - ChurnEvents: a seeded random kill/drain/join schedule, then the fleet
//     is healed; the nasty interleavings (kill-during-drain,
//     join-during-failover) come free with the right seeds.
func ShardCertify(ctx context.Context, cfg ShardCertConfig) (*ShardCertResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 50 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.RollingDelay <= 0 {
		cfg.RollingDelay = 100 * time.Millisecond
	}
	if cfg.ChurnMinGap <= 0 {
		cfg.ChurnMinGap = 100 * time.Millisecond
	}
	if cfg.ChurnMaxGap <= 0 {
		cfg.ChurnMaxGap = 400 * time.Millisecond
	}
	if cfg.PartitionMinGap <= 0 {
		cfg.PartitionMinGap = 200 * time.Millisecond
	}
	if cfg.PartitionMaxGap <= 0 {
		cfg.PartitionMaxGap = 500 * time.Millisecond
	}
	if cfg.PartitionMinDur <= 0 {
		cfg.PartitionMinDur = 700 * time.Millisecond
	}
	if cfg.PartitionMaxDur <= 0 {
		cfg.PartitionMaxDur = 1400 * time.Millisecond
	}
	if cfg.SlowMaxDelay <= 0 {
		cfg.SlowMaxDelay = 250 * time.Millisecond
	}
	var network *chaos.Network
	if cfg.Partition != nil {
		if cfg.Loadgen.TenantBudget > 0 || cfg.Loadgen.TenantMaxActive > 0 {
			return nil, fmt.Errorf("cluster cert: -partition retains sessions for the post-run audit, which never releases tenant slots; it cannot run with tenant budgets or active caps")
		}
		network = chaos.NewNetwork(chaos.Plan{Seed: cfg.Seed})
		// Sessions must outlive the run so their WALs survive to be audited.
		cfg.Loadgen.RetainSessions = true
	}
	if cfg.JournalRoot == "" {
		dir, err := os.MkdirTemp("", "wire-serve-cluster-*")
		if err != nil {
			return nil, fmt.Errorf("cluster cert: %w", err)
		}
		defer os.RemoveAll(dir)
		cfg.JournalRoot = dir
	}

	// Start the shard fleet.
	shards := make([]*certShard, cfg.Shards)
	defer func() {
		for _, cs := range shards {
			if cs != nil {
				cs.mu.Lock()
				hs := cs.hs
				cs.mu.Unlock()
				if hs != nil {
					_ = hs.Close()
				}
			}
		}
	}()
	shardList := make([]Shard, cfg.Shards)
	for i := range shards {
		name := "s" + strconv.Itoa(i)
		jdir := filepath.Join(cfg.JournalRoot, name)
		if err := os.MkdirAll(jdir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster cert: %w", err)
		}
		scfg := cfg.Server
		scfg.ShardMode = true
		scfg.JournalDir = jdir
		if network != nil {
			// Peer relay probes traverse the same faulty links as everything
			// else: a peer on the victim's side of a split cannot vouch for it.
			scfg.ProbeClient = &http.Client{Transport: network.Transport(name, nil)}
		}
		cs := &certShard{name: name, jdir: jdir, scfg: scfg}
		if err := cs.start(); err != nil {
			return nil, fmt.Errorf("cluster cert: %w", err)
		}
		shards[i] = cs
		shardList[i], _ = cs.current()
		if network != nil {
			network.Register(name, shardList[i].URL)
		}
	}

	// Start the router.
	rcfg := RouterConfig{
		Shards:            shardList,
		HeartbeatInterval: cfg.HeartbeatInterval,
		// A dead listener refuses connections instantly, so a generous
		// probe timeout costs nothing for death detection — but it keeps a
		// merely-slow shard (fsync under load, race-detector scheduling)
		// from flapping into spurious failovers mid-certificate.
		HeartbeatTimeout: 2 * time.Second,
		FailThreshold:    cfg.FailThreshold,
		Logf:             logf,
	}
	if network != nil {
		// Every router-originated request (proxies, probes, adopts) rides
		// the router's side of the nemesis links.
		rcfg.Client = &http.Client{Transport: network.Transport("router", nil)}
	}
	rt, err := NewRouter(rcfg)
	if err != nil {
		return nil, fmt.Errorf("cluster cert: %w", err)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go rt.Run(rctx)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster cert: %w", err)
	}
	rhs := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = rhs.Serve(rln) }()
	defer rhs.Close()
	routerURL := "http://" + rln.Addr().String()
	if network != nil {
		network.Register("router", routerURL)
	}

	retry := service.DefaultChaosRetry()
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	copts := []service.ClientOption{service.WithRetry(retry)}
	if network != nil {
		// The client only talks to the router, but registering it gives the
		// nemesis a labeled edge should a schedule ever cut client↔router.
		copts = append(copts, service.WithTransport(network.Transport("client", nil)))
	}
	cfg.Loadgen.Client = service.NewClient(routerURL, copts...)

	resc := make(chan *service.LoadgenResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := service.Loadgen(ctx, cfg.Loadgen)
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()

	out := &ShardCertResult{}

	// Fault drivers run concurrently with the loadgen; faultc reports the
	// driver's completion (the rolling and churn certs require the full
	// cycle to finish even if the loadgen outpaces it).
	faultc := make(chan error, 1)
	switch {
	case cfg.Partition != nil:
		go func() {
			faultc <- partitionDriver(rctx, cfg, rt, network, shards, out, logf)
		}()
	case cfg.RollingRestart:
		go func() {
			faultc <- rollingRestartDriver(rctx, cfg, rt, routerURL, shards, out, logf)
		}()
	case cfg.ChurnEvents > 0:
		go func() {
			faultc <- churnDriver(rctx, cfg, rt, routerURL, shards, out, logf)
		}()
	case cfg.KillAfter > 0:
		victim, jitter := chaos.Plan{Seed: cfg.Seed}.ShardKillSchedule(cfg.Shards, cfg.KillJitterMax)
		timer := time.NewTimer(cfg.KillAfter + jitter)
		armed := false
		tick := time.NewTicker(5 * time.Millisecond)
	killLoop:
		for {
			select {
			case res := <-resc:
				// The run outpaced the kill; certify without it.
				out.LoadgenResult = res
				break killLoop
			case err := <-errc:
				timer.Stop()
				tick.Stop()
				return nil, err
			case <-timer.C:
				armed = true
			case <-tick.C:
				// Kill only once the victim actually hosts a session: a kill
				// landing on an empty shard exercises nothing (and on a slow
				// -race run the fixed delay can outpace session placement).
				if !armed {
					continue
				}
				cs := shards[victim]
				cs.mu.Lock()
				hosted := cs.srv.Store().Len()
				cs.mu.Unlock()
				if hosted == 0 {
					continue
				}
				sh, _ := cs.current()
				out.Killed = true
				out.Victim = sh.Name
				logf("cluster cert: killing shard %s at %s (abrupt, no drain; %d session(s) aboard)", sh.Name, sh.URL, hosted)
				cs.stop()
				break killLoop
			}
		}
		timer.Stop()
		tick.Stop()
		faultc <- nil
	default:
		faultc <- nil
	}

	var faultErr error
	needLoad := out.LoadgenResult == nil
	needFault := true
	for needLoad || needFault {
		select {
		case res := <-resc:
			out.LoadgenResult = res
			needLoad = false
		case err := <-errc:
			return nil, err
		case ferr := <-faultc:
			faultErr = ferr
			needFault = false
		}
	}
	if faultErr != nil {
		return nil, fmt.Errorf("cluster cert: fault driver: %w", faultErr)
	}

	rc := rt.Counters()
	out.Failovers = rc.FailoversTotal
	out.HandoffSessions = rc.HandoffSessionsTotal
	out.ShardsUp = rc.ShardsUp
	out.Recovering503 = rc.Recovering503Total
	out.Drains = rc.DrainsTotal
	out.Joins = rc.JoinsTotal
	out.Migrated = rc.MigratedSessionsTotal
	out.PartitionsSuspected = rc.PartitionsSuspectedTotal
	out.PartitionsHealed = rc.PartitionsHealedTotal
	out.Partitioned503 = rc.Partitioned503Total

	// Partition runs retain every session's WAL; audit the merged journals
	// before the harness (possibly) removes its temp root. The report — not
	// an error — carries any violations: the caller decides pass/fail.
	if cfg.Partition != nil {
		dirs := make([]string, len(shards))
		for i, cs := range shards {
			dirs[i] = cs.jdir
		}
		rep, err := audit.Run(audit.Config{Dirs: dirs})
		if err != nil {
			return nil, fmt.Errorf("cluster cert: post-run audit: %w", err)
		}
		out.Audit = rep
	}
	return out, nil
}

// partitionDriver realizes the nemesis schedule: per event it injects the
// link fault, holds it for the event's duration, heals, and moves on; after
// the last event it waits for the fleet to return to full strength (healed
// links re-answer probes; a split's fenced victim auto-rejoins).
func partitionDriver(ctx context.Context, cfg ShardCertConfig, rt *Router, network *chaos.Network, shards []*certShard, out *ShardCertResult, logf func(string, ...any)) error {
	plan := chaos.Plan{Seed: cfg.Seed}
	var events []chaos.PartitionEvent
	if len(cfg.Partition.Kinds) > 0 {
		events = plan.PartitionScheduleKinds(cfg.Partition.Kinds, len(shards), cfg.PartitionMinGap, cfg.PartitionMaxGap, cfg.PartitionMinDur, cfg.PartitionMaxDur)
	} else {
		n := cfg.Partition.Events
		if n <= 0 {
			n = 3
		}
		events = plan.PartitionSchedule(len(shards), n, cfg.PartitionMinGap, cfg.PartitionMaxGap, cfg.PartitionMinDur, cfg.PartitionMaxDur)
	}
	// Hold the schedule until the fleet actually hosts sessions: the event
	// offsets are relative to load being present, not to fleet boot, so the
	// first fault cannot outrun the loadgen's warm-up (mirrors the
	// hosted-session gate on the kill driver).
	gate := time.NewTicker(5 * time.Millisecond)
	for {
		hosted := 0
		for _, cs := range shards {
			cs.mu.Lock()
			if !cs.down && cs.srv != nil {
				hosted += cs.srv.Store().Len()
			}
			cs.mu.Unlock()
		}
		if hosted > 0 {
			break
		}
		select {
		case <-ctx.Done():
			gate.Stop()
			return ctx.Err()
		case <-gate.C:
		}
	}
	gate.Stop()
	start := time.Now()
	for _, ev := range events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		}
		victim, _ := shards[ev.Shard].current()
		switch ev.Kind {
		case chaos.PartitionSplit:
			// The victim alone on one side; router and every peer on the
			// other. Peers can't vouch for it → it is fenced and failed
			// over; after the heal it comes back fenced-stale and rejoins.
			others := []string{"router"}
			for i, cs := range shards {
				if i != ev.Shard {
					osh, _ := cs.current()
					others = append(others, osh.Name)
				}
			}
			logf("cluster cert: partition: splitting %s from {%s} for %v", victim.Name, strings.Join(others, ","), ev.Duration)
			network.Partition([]string{victim.Name}, others)
		case chaos.PartitionOneWay:
			// Router loses the victim but the peers still reach it → the
			// router suspects a partition, withholds failover, and answers
			// its sessions 503 shard_partitioned until the heal.
			logf("cluster cert: partition: cutting router->%s (one-way) for %v", victim.Name, ev.Duration)
			network.Cut("router", victim.Name)
		case chaos.PartitionSlow:
			logf("cluster cert: partition: slowing router->%s (<=%v/request) for %v", victim.Name, cfg.SlowMaxDelay, ev.Duration)
			network.Slow("router", victim.Name, cfg.SlowMaxDelay, 0.5)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(ev.Duration):
		}
		network.Heal()
		out.PartitionsApplied++
		logf("cluster cert: partition: healed %s (%s)", victim.Name, ev.Kind)
	}
	logf("cluster cert: partition: schedule applied; waiting for full strength")
	return waitShardsUp(ctx, rt, len(shards), 60*time.Second)
}

// rollingRestartDriver drains, restarts, and rejoins every shard in
// sequence: the in-process form of a rolling fleet upgrade. Each shard's
// sessions migrate off gracefully, the process is torn down and a fresh one
// started on the same journal directory (and a new port), and a join pulls
// its minimally-remapped key ranges back. The driver returns only when
// shards_up is back to the full fleet size.
func rollingRestartDriver(ctx context.Context, cfg ShardCertConfig, rt *Router, routerURL string, shards []*certShard, out *ShardCertResult, logf func(string, ...any)) error {
	for _, cs := range shards {
		if err := ctx.Err(); err != nil {
			return err
		}
		sh, _ := cs.current()
		logf("cluster cert: rolling restart: draining %s", sh.Name)
		if err := drainWithRetry(ctx, routerURL, sh.Name, logf); err != nil {
			return err
		}
		cs.stop()
		if err := cs.start(); err != nil {
			return fmt.Errorf("restart %s: %w", sh.Name, err)
		}
		nsh, _ := cs.current()
		logf("cluster cert: rolling restart: rejoining %s at %s", nsh.Name, nsh.URL)
		if err := joinWithRetry(ctx, routerURL, nsh, logf); err != nil {
			return err
		}
		if err := waitShardsUp(ctx, rt, len(shards), 30*time.Second); err != nil {
			return fmt.Errorf("after rejoining %s: %w", nsh.Name, err)
		}
		out.Restarted = append(out.Restarted, nsh.Name)
		time.Sleep(cfg.RollingDelay)
	}
	return nil
}

// churnDriver applies a seeded schedule of kill/drain/join events
// best-effort — a drain refused because the shard is already dead, or a
// join refused because it is still failing over, is itself a wanted
// interleaving — then heals the fleet (restart + rejoin every down shard)
// and waits for full strength.
func churnDriver(ctx context.Context, cfg ShardCertConfig, rt *Router, routerURL string, shards []*certShard, out *ShardCertResult, logf func(string, ...any)) error {
	schedule := chaos.Plan{Seed: cfg.Seed}.ChurnSchedule(len(shards), cfg.ChurnEvents, cfg.ChurnMinGap, cfg.ChurnMaxGap)
	start := time.Now()
	for _, ev := range schedule {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		}
		cs := shards[ev.Shard]
		sh, down := cs.current()
		out.ChurnApplied++
		switch ev.Action {
		case chaos.ChurnKill:
			if down {
				logf("cluster cert: churn: kill %s: already down", sh.Name)
				continue
			}
			logf("cluster cert: churn: killing %s", sh.Name)
			cs.stop()
		case chaos.ChurnDrain:
			logf("cluster cert: churn: draining %s", sh.Name)
			// Async on purpose: a kill landing mid-drain is one of the
			// interleavings this certificate exists to exercise.
			go func(name string) {
				if err := postAdmin(ctx, routerURL+"/v1/admin/drain", map[string]string{"shard": name}); err != nil {
					logf("cluster cert: churn: drain %s: %v", name, err)
				}
			}(sh.Name)
		case chaos.ChurnJoin:
			if !down {
				// Live shard: a join is a no-op interleaving unless it had
				// drained out, in which case rejoin it.
				go func(sh Shard) {
					if err := postAdmin(ctx, routerURL+"/v1/admin/join", map[string]string{
						"name": sh.Name, "url": sh.URL, "journal_dir": sh.JournalDir,
					}); err != nil {
						logf("cluster cert: churn: join %s: %v", sh.Name, err)
					}
				}(sh)
				continue
			}
			if err := cs.start(); err != nil {
				return fmt.Errorf("churn: restart %s: %w", sh.Name, err)
			}
			nsh, _ := cs.current()
			logf("cluster cert: churn: restarting and joining %s at %s", nsh.Name, nsh.URL)
			go func(sh Shard) {
				if err := joinWithRetry(ctx, routerURL, sh, logf); err != nil {
					logf("cluster cert: churn: %v", err)
				}
			}(nsh)
		}
	}
	// Heal: bring every down shard back and rejoin until full strength.
	logf("cluster cert: churn: schedule applied; healing the fleet")
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if rt.members.shardsUp() >= len(shards) {
			return nil
		}
		for _, cs := range shards {
			sh, down := cs.current()
			if down {
				if err := cs.start(); err != nil {
					return fmt.Errorf("churn heal: restart %s: %w", sh.Name, err)
				}
				sh, _ = cs.current()
			}
			// Rejoin is idempotent-ish: an up member answers 409, which is
			// fine; a left/failed one comes back.
			if err := postAdmin(ctx, routerURL+"/v1/admin/join", map[string]string{
				"name": sh.Name, "url": sh.URL, "journal_dir": sh.JournalDir,
			}); err != nil {
				logf("cluster cert: churn heal: join %s: %v", sh.Name, err)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("churn heal: shards_up stuck at %d < %d", rt.members.shardsUp(), len(shards))
}
