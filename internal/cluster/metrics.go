package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/service"
)

// RouterCounters are the router's own counters, separate from anything the
// shards report.
type RouterCounters struct {
	ShardsUp              int   `json:"shards_up"`
	FailoversTotal        int64 `json:"failovers_total"`
	HandoffSessionsTotal  int64 `json:"handoff_sessions_total"`
	DrainsTotal           int64 `json:"drains_total"`
	JoinsTotal            int64 `json:"joins_total"`
	MigratedSessionsTotal int64 `json:"migrated_sessions_total"`
	Epoch                 int64 `json:"epoch"`
	ProxiedTotal          int64 `json:"proxied_total"`
	ProxyErrorsTotal      int64 `json:"proxy_errors_total"`
	Recovering503Total    int64 `json:"recovering_503_total"`
	// PartitionsSuspectedTotal counts shards confirmed alive via a peer
	// while unreachable from the router; PartitionsHealedTotal counts
	// partitioned shards restored to up by a direct probe answering again.
	// Partitioned503Total counts requests refused with shard_partitioned.
	PartitionsSuspectedTotal int64 `json:"partitions_suspected_total"`
	PartitionsHealedTotal    int64 `json:"partitions_healed_total"`
	Partitioned503Total      int64 `json:"partitioned_503_total"`
	UptimeS                  int64 `json:"uptime_s"`
}

// ShardStatus is one membership-table row as exposed on /metrics.
type ShardStatus struct {
	URL     string `json:"url"`
	State   string `json:"state"`
	Adopter string `json:"adopter,omitempty"`
	// JournalDirs are the directories this shard currently owns (its own plus
	// adopted ones); empty once handed off.
	JournalDirs []string `json:"journal_dirs,omitempty"`
}

// ClusterMetricsDump is the router's /metrics payload: router counters, the
// membership table, and the fleet-wide aggregate of every live shard's
// MetricsDump (counter sums plus a true latency-sample merge).
type ClusterMetricsDump struct {
	Router  RouterCounters         `json:"router"`
	Shards  map[string]ShardStatus `json:"shards"`
	Cluster service.MetricsDump    `json:"cluster"`
}

// Counters snapshots the router-side counters (certificates, tests).
func (rt *Router) Counters() RouterCounters {
	rt.members.mu.Lock()
	epoch := rt.members.epoch
	rt.members.mu.Unlock()
	return RouterCounters{
		ShardsUp:              rt.members.shardsUp(),
		FailoversTotal:        rt.members.failovers.Load(),
		HandoffSessionsTotal:  rt.members.handoffSessions.Load(),
		DrainsTotal:           rt.members.drains.Load(),
		JoinsTotal:            rt.members.joins.Load(),
		MigratedSessionsTotal: rt.members.migrated.Load(),
		Epoch:                 epoch,
		ProxiedTotal:             rt.proxied.Load(),
		ProxyErrorsTotal:         rt.proxyErrors.Load(),
		Recovering503Total:       rt.recovering503.Load(),
		PartitionsSuspectedTotal: rt.members.partitionsSuspected.Load(),
		PartitionsHealedTotal:    rt.members.partitionsHealed.Load(),
		Partitioned503Total:      rt.partitioned503.Load(),
		UptimeS:                  int64(rt.cfg.Clock().Sub(rt.start) / time.Second),
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"shards_up": rt.members.shardsUp(),
	})
}

// handleMetrics aggregates the fleet: it fetches every live shard's
// /metrics?raw=1 (raw latency windows, so quantiles are recomputed over the
// merged samples rather than averaged across shards), sums the counters, and
// wraps the result with the router's own counters and the membership table.
// A shard that fails to answer is skipped — the membership table shows which
// rows are missing from the aggregate.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	shards := rt.members.upShards()
	dumps := make([]*service.MetricsDump, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			dumps[i] = rt.fetchShardMetrics(r.Context(), sh)
		}(i, sh)
	}
	wg.Wait()

	var agg service.MetricsDump
	first := true
	for _, d := range dumps {
		if d == nil {
			continue
		}
		if first {
			agg, first = *d, false
			continue
		}
		agg.Merge(*d)
	}
	// Raw windows did their job during the merge; keep the wire payload to
	// summaries like the single-node endpoint.
	for name, ep := range agg.Endpoints {
		ep.RawMs = nil
		agg.Endpoints[name] = ep
	}

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ClusterMetricsDump{
		Router:  rt.Counters(),
		Shards:  rt.members.status(),
		Cluster: agg,
	})
}

func (rt *Router) fetchShardMetrics(ctx context.Context, sh Shard) *service.MetricsDump {
	fctx, cancel := context.WithTimeout(ctx, rt.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, sh.URL+"/metrics?raw=1", nil)
	if err != nil {
		return nil
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	var d service.MetricsDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil
	}
	return &d
}
