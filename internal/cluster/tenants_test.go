package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/dagio"
	"repro/internal/service"
	"repro/internal/tenancy"
)

// TestRouterTenantFanout pins the router's tenant surface: POST broadcasts
// the spec to every shard (each enforces its own gate for the sessions it
// hosts), and GETs aggregate the per-shard registries into fleet-wide rows.
func TestRouterTenantFanout(t *testing.T) {
	_, rts, fleet := startFleet(t, 3, RouterConfig{})
	client := service.NewClient(rts.URL)
	ctx := context.Background()

	if _, err := client.CreateTenant(ctx, service.TenantSpec{Name: "acme", MaxActive: 40}); err != nil {
		t.Fatalf("create tenant via router: %v", err)
	}
	for _, f := range fleet {
		info, ok := f.srv.Tenants().Tenant("acme")
		if !ok || info.MaxActive != 40 {
			t.Fatalf("shard %s missed the broadcast: ok=%v info=%+v", f.shard.Name, ok, info)
		}
	}

	// Tenant-tagged sessions spread over the ring; the merged row must sum
	// the per-shard actives and arrivals back to the true totals.
	wf := dagio.Encode(smallWorkflow(3))
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := client.CreateSession(ctx, service.CreateSessionRequest{
			Workflow: wf, Policy: "wire", Tenant: "acme",
		}); err != nil {
			t.Fatalf("create session %d: %v", i, err)
		}
	}
	hosting := 0
	for _, f := range fleet {
		if info, ok := f.srv.Tenants().Tenant("acme"); ok && info.ActiveSessions > 0 {
			hosting++
		}
	}
	if hosting < 2 {
		t.Fatalf("only %d shard(s) host acme sessions; the ring should spread %d sessions wider", hosting, n)
	}
	merged, err := client.Tenant(ctx, "acme")
	if err != nil {
		t.Fatalf("tenant via router: %v", err)
	}
	if merged.ActiveSessions != n || merged.ArrivalsTotal != n {
		t.Fatalf("merged row = %d active / %d arrivals, want %d / %d", merged.ActiveSessions, merged.ArrivalsTotal, n, n)
	}
	if merged.MaxActive != 40 {
		t.Fatalf("merged MaxActive = %d, want the broadcast spec's 40", merged.MaxActive)
	}

	list, err := client.Tenants(ctx)
	if err != nil {
		t.Fatalf("tenant list via router: %v", err)
	}
	if len(list) != 1 || list[0].Name != "acme" || list[0].ActiveSessions != n {
		t.Fatalf("tenant list = %+v, want one acme row with %d active", list, n)
	}

	if _, err := client.Tenant(ctx, "ghost"); err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Fatalf("unknown tenant error = %v, want not_found", err)
	}
}

// TestShardCertifyStream runs the kill-shard cluster certificate under a
// heterogeneous multi-tenant arrival stream instead of the classic fixed-N
// loadgen: Poisson arrivals draw mixed workflows for three budget-capped
// tenants, the router broadcasts the tenant specs, one shard dies abruptly
// mid-run, and every arrival must still complete with a decision stream
// byte-identical to its in-process twin (throttled creates are retried, so
// the stream drops nothing).
func TestShardCertifyStream(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster certificate is slow")
	}
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    15,
			Concurrency: 3, // stretches the wall clock so the kill lands mid-run
			Policy:      "wire",
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          180,
				ChargingUnit:     900,
				MaxInstances:     6,
			},
			Noise:              0.05,
			SeedBase:           42,
			Verify:             true,
			Arrivals:           tenancy.Poisson,
			Tenants:            3,
			ArrivalRatePerHour: 60, // ~1 arrival/16ms at this compression: the stream outlives the kill
			TenantMaxActive:    2,
			TimeCompression:    3600,
			StreamKeys:         []string{"tpch6-s", "tpch1-s", "pagerank-s"},
		},
		Shards:    3,
		KillAfter: 60 * time.Millisecond,
		Seed:      11,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Fatal("run outpaced the kill; the failover path was not exercised")
	}
	if res.Failed != 0 || res.Completed != res.Sessions {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d decision streams diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if res.Failovers == 0 {
		t.Fatalf("shard %s was killed but the router never failed it over", res.Victim)
	}
	if res.TenantSpendUnits <= 0 {
		t.Errorf("tenant spend = %v units; the stream's sessions were never metered", res.TenantSpendUnits)
	}
}
