package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/service"
	"repro/internal/workloads"
)

// TestShardCertifyPartition is the partition certificate: a 3-shard fleet
// behind a router, hit with one symmetric split, one one-way router→shard
// drop, and one slow link in sequence under live load — each healed before
// the next — after which the fleet must be back at full strength, every
// session completed with its decision stream byte-identical to its
// in-process twin, and the post-run journal audit clean. With -race this is
// the concurrency certificate of the peer-confirmation, fencing, and
// partitioned-503 paths.
func TestShardCertifyPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster certificate is slow")
	}
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			// Low concurrency over many sessions stretches the load across
			// the full nemesis schedule, so every event lands under traffic.
			Sessions:    60,
			Concurrency: 2,
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(60+int(seed%5), 300)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			Noise:    0.08,
			SeedBase: 1300,
			Verify:   true,
		},
		Shards: 3,
		Seed:   23,
		Partition: &chaos.PartitionSpec{
			Kinds: []chaos.PartitionKind{chaos.PartitionSplit, chaos.PartitionOneWay, chaos.PartitionSlow},
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsApplied != 3 {
		t.Fatalf("applied %d of 3 partition events", res.PartitionsApplied)
	}
	if res.Failed != 0 || res.Completed != res.Sessions {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d decision streams diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if res.ShardsUp != 3 {
		t.Errorf("shards_up = %d at end, want 3 (fleet did not heal)", res.ShardsUp)
	}
	if res.Audit == nil {
		t.Fatal("partition run produced no journal audit")
	}
	if !res.Audit.Clean() {
		t.Fatalf("journal audit found %d violation(s): %+v", len(res.Audit.Violations), res.Audit.Violations)
	}
	if res.Audit.Sessions == 0 || res.Audit.Plans == 0 {
		t.Fatalf("audit saw an empty corpus (%d sessions, %d plans) — RetainSessions is not retaining", res.Audit.Sessions, res.Audit.Plans)
	}
	if res.Retries == 0 && res.Failovers == 0 && res.PartitionsSuspected == 0 {
		// Whether a given event surfaces as client retries, a fenced failover,
		// or a suspected partition depends on which sessions were in flight
		// when it hit; all three zero means the schedule ran against an idle
		// fleet and certified nothing.
		t.Error("no retries, failovers, or suspected partitions despite three partition events")
	}
}

// TestShardCertifyPartitionOneWay pins the partitioned-503 degradation
// contract in isolation: a one-way router→shard cut must be detected as a
// partition (peer confirmation succeeds), answered with shard_partitioned
// rather than a failover, and healed without ever fencing the victim.
func TestShardCertifyPartitionOneWay(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster certificate is slow")
	}
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    12,
			Concurrency: 3,
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(45, 300)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			SeedBase: 1400,
			Verify:   true,
		},
		Shards: 3,
		Seed:   7,
		Partition: &chaos.PartitionSpec{
			Kinds: []chaos.PartitionKind{chaos.PartitionOneWay},
		},
		// Hold the cut long enough for the router to cross its threshold and
		// confirm via a peer even on a slow -race run.
		PartitionMinDur: 1200 * time.Millisecond,
		PartitionMaxDur: 1800 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Mismatched != 0 {
		t.Fatalf("failed %d mismatched %d: %v", res.Failed, res.Mismatched, res.Errors)
	}
	if res.PartitionsSuspected == 0 {
		t.Error("one-way cut never became a suspected partition (peer confirmation path not exercised)")
	}
	if res.PartitionsHealed == 0 {
		t.Error("suspected partition never healed back to up")
	}
	if res.Failovers != 0 {
		t.Errorf("one-way cut triggered %d failover(s); a peer-confirmed-alive shard must not be fenced", res.Failovers)
	}
	if res.Audit == nil || !res.Audit.Clean() {
		t.Fatalf("audit: %+v", res.Audit)
	}
}

// TestPartitionRejectsTenantCaps pins the config guard: retained sessions
// never release tenant slots, so the partition nemesis refuses to run with
// tenant budgets or active caps rather than hang the stream.
func TestPartitionRejectsTenantCaps(t *testing.T) {
	_, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:     2,
			Policy:       "wire",
			Workflow:     func(seed int64) *dag.Workflow { return workloads.Linear(5, 60) },
			Cloud:        cloud.Config{SlotsPerInstance: 2, LagTime: 60, ChargingUnit: 300, MaxInstances: 2},
			TenantBudget: 10,
		},
		Partition: &chaos.PartitionSpec{Events: 1},
	})
	if err == nil {
		t.Fatal("partition nemesis accepted a tenant budget despite RetainSessions")
	}
}
