package cluster

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any cluster goroutine (heartbeat prober,
// confirmation relay, failover or drain worker, cert-harness shard, ...)
// outlives a passing test run.
func TestMain(m *testing.M) { leakcheck.Main(m) }
