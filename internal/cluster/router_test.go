package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/dagio"
	"repro/internal/monitor"
	"repro/internal/service"
)

func smallWorkflow(tasks int) *dag.Workflow {
	b := dag.NewBuilder("cluster-test")
	b.AddStage("only")
	for i := 0; i < tasks; i++ {
		b.AddTask(0, "", 30, 1, 4)
	}
	wf, err := b.Build()
	if err != nil {
		panic(err)
	}
	return wf
}

// readySnapshot builds a minimal valid first-tick snapshot for wf.
func readySnapshot(wf *dag.Workflow) *monitor.Snapshot {
	snap := &monitor.Snapshot{
		Now:              60,
		Interval:         60,
		ChargingUnit:     300,
		LagTime:          60,
		SlotsPerInstance: 2,
		MaxInstances:     8,
		Workflow:         wf,
		Tasks:            make([]monitor.TaskRecord, wf.NumTasks()),
		Instances: []monitor.InstanceRecord{
			{ID: 0, State: cloud.Active, Slots: 2, ActiveAt: 0, TimeToNextCharge: 240},
		},
	}
	for _, t := range wf.Tasks {
		snap.Tasks[t.ID] = monitor.TaskRecord{
			ID: t.ID, Stage: t.Stage, State: monitor.Ready, InputSize: t.InputSize,
		}
	}
	return snap
}

type testShard struct {
	shard Shard
	srv   *service.Server
	ts    *httptest.Server
}

// startFleet hosts n shard daemons and a router over them, all torn down
// with the test.
func startFleet(t *testing.T, n int, rcfg RouterConfig) (*Router, *httptest.Server, []*testShard) {
	t.Helper()
	fleet := make([]*testShard, n)
	rcfg.Shards = make([]Shard, n)
	for i := range fleet {
		name := "s" + string(rune('0'+i))
		jdir := filepath.Join(t.TempDir(), name)
		srv := service.New(service.Config{ShardMode: true, JournalDir: jdir})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		sh := Shard{Name: name, URL: ts.URL, JournalDir: jdir}
		fleet[i] = &testShard{shard: sh, srv: srv, ts: ts}
		rcfg.Shards[i] = sh
	}
	rt, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return rt, rts, fleet
}

func createSessions(t *testing.T, client *service.Client, n int) []string {
	t.Helper()
	wf := dagio.Encode(smallWorkflow(3))
	ids := make([]string, n)
	for i := range ids {
		info, err := client.CreateSession(context.Background(), service.CreateSessionRequest{
			Workflow: wf,
			Policy:   "wire",
		})
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids[i] = info.ID
	}
	return ids
}

// TestRouterPlacement pins that every session lands on its ring owner, that
// requests for it are routed there, and that an exactly-once retry through
// the router returns the cached decision.
func TestRouterPlacement(t *testing.T) {
	rt, rts, fleet := startFleet(t, 3, RouterConfig{})
	client := service.NewClient(rts.URL)
	ids := createSessions(t, client, 24)

	byShard := map[string]int{}
	for _, id := range ids {
		byShard[rt.Ring().Owner(id)]++
	}
	for _, f := range fleet {
		if got, want := f.srv.Store().Len(), byShard[f.shard.Name]; got != want {
			t.Errorf("shard %s holds %d sessions, ring assigns it %d", f.shard.Name, got, want)
		}
	}

	// State and delete route through the ring.
	if _, err := client.State(context.Background(), ids[0]); err != nil {
		t.Fatalf("state via router: %v", err)
	}

	// Exactly-once via the proxy: the same Wire-Plan-Seq twice yields the
	// identical decision without re-planning.
	snap := readySnapshot(smallWorkflow(3))
	first, err := client.Plan(context.Background(), ids[0], 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	again, err := client.Plan(context.Background(), ids[0], 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first.Decision)
	b, _ := json.Marshal(again.Decision)
	if string(a) != string(b) {
		t.Fatalf("retried seq returned a different decision: %s != %s", a, b)
	}

	if err := client.DeleteSession(context.Background(), ids[0]); err != nil {
		t.Fatalf("delete via router: %v", err)
	}
	if _, err := client.State(context.Background(), ids[0]); err == nil {
		t.Fatal("deleted session still answers")
	}
}

// TestRouterRecovering503 pins the satellite contract: requests for a shard
// that is declared dead but not yet handed off answer 503 with a Retry-After
// hint and the distinct shard_recovering code, and new sessions keep landing
// on live shards.
func TestRouterRecovering503(t *testing.T) {
	rt, rts, fleet := startFleet(t, 3, RouterConfig{RetryAfter: 2 * time.Second})
	client := service.NewClient(rts.URL)
	ids := createSessions(t, client, 12)

	down := fleet[0].shard.Name
	rt.members.mu.Lock()
	rt.members.members[down].state = memberRecovering
	rt.members.mu.Unlock()

	var onDead string
	for _, id := range ids {
		if rt.Ring().Owner(id) == down {
			onDead = id
			break
		}
	}
	if onDead == "" {
		t.Skipf("no session landed on %s", down)
	}

	resp, err := http.Get(rts.URL + "/v1/sessions/" + onDead)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("recovering shard answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want 2", ra)
	}
	var eb service.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != service.CodeShardRecovering {
		t.Errorf("error code %q, want %q", eb.Code, service.CodeShardRecovering)
	}

	// The retrying client surfaces the hint.
	one := service.NewClient(rts.URL, service.WithRetry(service.RetryPolicy{MaxAttempts: 1}))
	_, err = one.State(context.Background(), onDead)
	var ae *service.APIError
	if !errors.As(err, &ae) || ae.RetryAfter != 2*time.Second {
		t.Errorf("client did not parse Retry-After: %v", err)
	}

	// Creates redraw away from the recovering shard.
	more := createSessions(t, client, 8)
	for _, id := range more {
		if rt.Ring().Owner(id) == down {
			t.Errorf("new session %s placed on recovering shard %s", id, down)
		}
	}
	if rt.Counters().Recovering503Total == 0 {
		t.Error("recovering_503_total not counted")
	}
}

// TestRouterFailover is the handoff test: kill a shard's listener, let the
// heartbeat loop declare it dead, and require every one of its sessions to
// answer again from the adopter — with its exactly-once cache intact.
func TestRouterFailover(t *testing.T) {
	rt, rts, fleet := startFleet(t, 3, RouterConfig{
		HeartbeatInterval: 10 * time.Millisecond,
		FailThreshold:     2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	client := service.NewClient(rts.URL)
	ids := createSessions(t, client, 18)

	// Seed every session's exactly-once cache with one planned decision.
	snap := readySnapshot(smallWorkflow(3))
	firstDecisions := make(map[string]string, len(ids))
	for _, id := range ids {
		pr, err := client.Plan(context.Background(), id, 1, snap)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(pr.Decision)
		firstDecisions[id] = string(b)
	}

	// Pick a victim that owns at least one session.
	victim := -1
	for i, f := range fleet {
		if f.srv.Store().Len() > 0 {
			victim = i
			break
		}
	}
	if victim == -1 {
		t.Fatal("no shard owns a session")
	}
	victimName := fleet[victim].shard.Name
	victimSessions := fleet[victim].srv.Store().Len()

	go rt.Run(ctx)
	fleet[victim].ts.CloseClientConnections()
	fleet[victim].ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for rt.Counters().HandoffSessionsTotal == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c := rt.Counters()
	if c.FailoversTotal == 0 {
		t.Fatal("router never declared the dead shard")
	}
	if got := c.HandoffSessionsTotal; got != int64(victimSessions) {
		t.Errorf("handed off %d sessions, victim held %d", got, victimSessions)
	}
	if c.ShardsUp != 2 {
		t.Errorf("shards_up = %d, want 2", c.ShardsUp)
	}

	// Every session answers again, and a replayed seq returns the decision
	// the dead shard already released.
	retryClient := service.NewClient(rts.URL, service.WithRetry(service.DefaultChaosRetry()))
	for _, id := range ids {
		if _, err := retryClient.State(context.Background(), id); err != nil {
			t.Fatalf("session %s lost in failover: %v", id, err)
		}
		pr, err := retryClient.Plan(context.Background(), id, 1, snap)
		if err != nil {
			t.Fatalf("session %s: replayed plan: %v", id, err)
		}
		b, _ := json.Marshal(pr.Decision)
		if string(b) != firstDecisions[id] {
			t.Fatalf("session %s: decision changed across failover: %s != %s", id, b, firstDecisions[id])
		}
	}

	// The routing override points the victim's sessions at the adopter.
	sh, state := rt.members.follow(victimName)
	if state != routeOK || sh.Name == victimName {
		t.Errorf("victim routes to %s (state %v), want a live adopter", sh.Name, state)
	}

	// Aggregated metrics reflect the new topology.
	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump ClusterMetricsDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Router.ShardsUp != 2 || dump.Router.FailoversTotal != c.FailoversTotal {
		t.Errorf("metrics router counters %+v disagree with Counters() %+v", dump.Router, c)
	}
	if st := dump.Shards[victimName]; st.State != "failed" || st.Adopter == "" {
		t.Errorf("victim status %+v, want failed with an adopter", st)
	}
	var planCount int64
	for name, ep := range dump.Cluster.Endpoints {
		if len(ep.RawMs) != 0 {
			t.Errorf("endpoint %s: raw latency window leaked into aggregated output", name)
		}
		if strings.Contains(name, "plan") {
			planCount += ep.Count
		}
	}
	if planCount < int64(len(ids)) {
		t.Errorf("aggregated plan count %d < %d sessions planned", planCount, len(ids))
	}
}
