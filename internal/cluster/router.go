package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// RouterConfig tunes the routing front end.
type RouterConfig struct {
	// Shards is the initial shard map. Required, but no longer immutable:
	// POST /v1/admin/drain and /v1/admin/join reshape the fleet at runtime.
	Shards []Shard
	// VNodes is the ring's virtual-node count per shard (DefaultVNodes).
	VNodes int

	// HeartbeatInterval is the membership probe period (default 1s).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one /healthz probe (default: the interval).
	HeartbeatTimeout time.Duration
	// FailThreshold is how many consecutive probe failures (heartbeat misses
	// or proxy transport errors) declare a shard dead (default 3).
	FailThreshold int

	// RetryAfter is the Retry-After hint on 503 shard_recovering responses
	// (default 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// AdoptTimeout bounds one journal-handoff request to a surviving peer;
	// replay of a big shard takes real time (default 60s).
	AdoptTimeout time.Duration

	// Client issues proxied requests, heartbeats, and handoffs (default: a
	// pooled transport sized for the fleet).
	Client *http.Client
	// Clock overrides the wall clock (tests).
	Clock func() time.Time
	// Logf receives operational log lines.
	Logf func(format string, args ...any)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = c.HeartbeatInterval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.AdoptTimeout <= 0 {
		c.AdoptTimeout = 60 * time.Second
	}
	if c.Client == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConns = 256
		t.MaxIdleConnsPerHost = 256
		c.Client = &http.Client{Transport: t}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Router is the stateless routing front end: it owns no session state, only
// the membership table (which owns the ring) and counters — everything it
// serves is reconstructed by asking shards. Kill a router and start another
// on the same shard map and nothing is lost.
type Router struct {
	cfg     RouterConfig
	members *membership
	mux     *http.ServeMux
	start   time.Time

	proxied        atomic.Int64
	proxyErrors    atomic.Int64
	recovering503  atomic.Int64
	partitioned503 atomic.Int64
}

// NewRouter builds a router over the initial shard map.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := ValidateShards(cfg.Shards); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	names := make([]string, len(cfg.Shards))
	for i, sh := range cfg.Shards {
		names[i] = sh.Name
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:     cfg,
		members: newMembership(cfg, ring, names),
		start:   cfg.Clock(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("/v1/sessions/{id}", rt.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{verb}", rt.handleSession)
	mux.HandleFunc("POST /v1/tenants", rt.handleTenantCreate)
	mux.HandleFunc("GET /v1/tenants", rt.handleTenantList)
	mux.HandleFunc("GET /v1/tenants/{name}", rt.handleTenantGet)
	mux.HandleFunc("POST /v1/admin/drain", rt.handleDrain)
	mux.HandleFunc("POST /v1/admin/join", rt.handleJoin)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux = mux
	return rt, nil
}

// Handler returns the router's HTTP handler; safe for concurrent use.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Ring exposes the current placement ring (tests, startup logging). Drain
// and join swap it; take a fresh snapshot rather than caching the pointer.
func (rt *Router) Ring() *Ring { return rt.members.currentRing() }

// routeState is one resolution outcome.
type routeState int

const (
	routeOK routeState = iota
	// routeRecovering: the session's current host cannot answer yet — its
	// owning shard is dead with journals not yet replayed on a peer, or the
	// session itself is mid-migration. The caller must answer 503.
	routeRecovering
	// routePartitioned: the owning shard is alive (a peer confirmed it) but
	// unreachable from this router. Proxying would fail and misrouting would
	// split-brain; the caller must answer 503 shard_partitioned and let the
	// client's backoff ride out the link fault.
	routePartitioned
)

// resolve maps a session ID to the shard currently serving it: a migration
// override when one exists, else the ring owner, then across journal
// handoffs (a failed shard's sessions follow its adopter, transitively).
func (rt *Router) resolve(id string) (Shard, routeState) {
	return rt.members.resolveSession(id)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(service.ErrorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeRecovering is the satellite contract: while a failed shard's journals
// are replaying (or a session is mid-migration), clients get an explicit 503
// + Retry-After + a distinct error code instead of being routed into a
// half-recovered peer.
func (rt *Router) writeRecovering(w http.ResponseWriter, shard string) {
	rt.recovering503.Add(1)
	secs := int(rt.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	rt.writeError(w, http.StatusServiceUnavailable, service.CodeShardRecovering,
		"shard %s is failing over; its sessions are being recovered on a peer", shard)
}

// writePartitioned answers for a shard the router cannot reach but a peer
// confirmed alive: an explicit 503 + Retry-After + shard_partitioned rather
// than misrouting its sessions to a peer that doesn't own them (or fencing a
// live writer). The client retries until the link heals or the suspicion
// escalates to a real failover.
func (rt *Router) writePartitioned(w http.ResponseWriter, shard string) {
	rt.partitioned503.Add(1)
	secs := int(rt.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	rt.writeError(w, http.StatusServiceUnavailable, service.CodeShardPartitioned,
		"shard %s is partitioned from the router but alive; retry until the link heals", shard)
}

// handleCreate places a new session: the router draws the ID so it can
// consistent-hash placement before forwarding, and redraws (bounded) if the
// drawn owner is mid-failover, draining, or joining — new sessions should
// land on fully-up shards rather than wait out a transition they have no
// stake in.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	var (
		id    string
		shard Shard
		state routeState
	)
	state = routeRecovering
	for attempt := 0; attempt < 16; attempt++ {
		var err error
		if id, err = service.NewSessionID(); err != nil {
			rt.writeError(w, http.StatusInternalServerError, "internal", "%v", err)
			return
		}
		if shard, state = rt.members.resolveCreate(id); state == routeOK {
			break
		}
	}
	if state != routeOK {
		rt.writeRecovering(w, rt.members.ownerName(id))
		return
	}
	rt.proxy(w, r, shard, id, "")
}

func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	shard, state := rt.resolve(id)
	switch state {
	case routePartitioned:
		rt.writePartitioned(w, shard.Name)
		return
	case routeOK:
	default:
		rt.writeRecovering(w, rt.members.ownerName(id))
		return
	}
	rt.proxy(w, r, shard, "", id)
}

// drainRequest is the POST /v1/admin/drain body.
type drainRequest struct {
	Shard string `json:"shard"`
}

// joinRequest is the POST /v1/admin/join body.
type joinRequest struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	JournalDir string `json:"journal_dir"`
}

// handleDrain gracefully decommissions one shard: its sessions migrate to
// their post-drain owners while it keeps serving, then it leaves the ring.
// The request blocks until the drain commits (or fails retryably).
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req drainRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Shard == "" {
		rt.writeError(w, http.StatusBadRequest, "bad_request", `drain wants {"shard": "<name>"}`)
		return
	}
	res, err := rt.members.drain(rt.members.opCtx(), req.Shard)
	if err != nil {
		rt.writeOpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// handleJoin adds (or re-adds) a shard to the ring, migrating only the
// minimally-remapped key ranges onto it. Blocks until the join commits.
func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad_request", `join wants {"name", "url", "journal_dir"}`)
		return
	}
	res, err := rt.members.join(rt.members.opCtx(), Shard{Name: req.Name, URL: req.URL, JournalDir: req.JournalDir})
	if err != nil {
		rt.writeOpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

func (rt *Router) writeOpError(w http.ResponseWriter, err error) {
	if oe, ok := err.(*opError); ok {
		rt.writeError(w, oe.status, "topology_op_failed", "%s", oe.msg)
		return
	}
	rt.writeError(w, http.StatusInternalServerError, "topology_op_failed", "%v", err)
}

// hopHeaders are not forwarded in either direction.
var hopHeaders = []string{"Connection", "Keep-Alive", "Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade"}

// proxy forwards one request to a shard and relays the response verbatim,
// with two exceptions. A transport failure is reported as 502
// shard_unreachable (retryable — the client's backoff rides out the
// failover) and counted as a heartbeat miss, so a busy cluster detects death
// faster than the probe loop alone. And a 404 for a session that an elastic
// operation may still be moving is rewritten into a retryable 503: the
// session isn't gone, it just hasn't landed yet.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, shard Shard, assignID, sessionID string) {
	rt.proxied.Add(1)
	req, err := http.NewRequestWithContext(r.Context(), r.Method, shard.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	req.Header = r.Header.Clone()
	for _, h := range hopHeaders {
		req.Header.Del(h)
	}
	req.Header.Set(service.RouterIdentityHeader, "1")
	if assignID != "" {
		req.Header.Set(service.SessionIDHeader, assignID)
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.proxyErrors.Add(1)
		rt.members.noteFailure(shard.Name)
		rt.writeError(w, http.StatusBadGateway, "shard_unreachable",
			"shard %s: %v", shard.Name, err)
		return
	}
	defer resp.Body.Close()
	if sessionID != "" && resp.StatusCode == http.StatusNotFound {
		if rt.members.shouldRetry404(sessionID, shard.Name) {
			_, _ = io.Copy(io.Discard, resp.Body)
			rt.writeRecovering(w, shard.Name)
			return
		}
		// A firm 404: the session is genuinely gone; any migration
		// override pointing at it is stale.
		rt.members.dropOverride(sessionID)
	}
	if sessionID != "" && r.Method == http.MethodDelete && resp.StatusCode == http.StatusNoContent {
		rt.members.dropOverride(sessionID)
	}
	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	for _, h := range hopHeaders {
		hdr.Del(h)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
