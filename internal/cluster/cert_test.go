package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/service"
	"repro/internal/workloads"
)

// TestShardCertifyKill is the cluster certificate: a 3-shard fleet behind a
// router, one shard killed abruptly mid-run, and every session required to
// finish with a decision stream byte-identical to its in-process twin —
// sessions on the victim only survive if the journal handoff resurrected
// them with their exactly-once cache intact. With -race this doubles as the
// concurrency certificate of the router, membership, and adoption paths.
func TestShardCertifyKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster certificate is slow")
	}
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    18,
			Concurrency: 3, // stretches the wall clock so the kill lands mid-run
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(40+int(seed%5), 300)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			Noise:    0.08,
			SeedBase: 900,
			Verify:   true,
		},
		Shards:    3,
		KillAfter: 150 * time.Millisecond,
		Seed:      11,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Fatal("run outpaced the kill; the failover path was not exercised")
	}
	if res.Failed != 0 || res.Completed != res.Sessions {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d decision streams diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if res.Failovers == 0 {
		t.Fatalf("shard %s was killed but the router never failed it over", res.Victim)
	}
	if res.ShardsUp != 2 {
		t.Errorf("shards_up = %d at end, want 2", res.ShardsUp)
	}
	if res.Retries == 0 {
		t.Error("no client retries despite a mid-run shard kill")
	}
}

// TestShardCertifyNoKill pins the healthy-cluster baseline: the fleet with
// no fault injected must behave exactly like a single daemon — zero
// failures, zero mismatches, zero failovers.
func TestShardCertifyNoKill(t *testing.T) {
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    8,
			Concurrency: 4,
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(10, 120)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			SeedBase: 40,
			Verify:   true,
		},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed || res.Failovers != 0 {
		t.Fatalf("healthy run reported killed=%v failovers=%d", res.Killed, res.Failovers)
	}
	if res.Failed != 0 || res.Mismatched != 0 {
		t.Fatalf("failed %d mismatched %d: %v", res.Failed, res.Mismatched, res.Errors)
	}
	if res.ShardsUp != 3 {
		t.Errorf("shards_up = %d, want 3", res.ShardsUp)
	}
}

// TestShardCertifyRollingRestart is the elastic certificate: every shard in
// turn is drained, restarted as a fresh process on the same journal
// directory, and rejoined by name — all under live traffic. Zero sessions may
// drop and every decision stream must stay byte-identical to its in-process
// twin. With -race this certifies the drain/join/migrate paths end to end.
func TestShardCertifyRollingRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster certificate is slow")
	}
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    18,
			Concurrency: 3,
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(40+int(seed%5), 300)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			Noise:    0.08,
			SeedBase: 1200,
			Verify:   true,
		},
		Shards:         3,
		RollingRestart: true,
		Seed:           23,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Sessions {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d decision streams diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if len(res.Restarted) != 3 {
		t.Fatalf("rolled %d shards %v, want all 3", len(res.Restarted), res.Restarted)
	}
	if res.Drains < 3 || res.Joins < 3 {
		t.Errorf("drains=%d joins=%d, want at least 3 of each", res.Drains, res.Joins)
	}
	if res.ShardsUp != 3 {
		t.Errorf("shards_up = %d at end, want the full fleet back", res.ShardsUp)
	}
}

// TestShardCertifyChurn runs a seeded deterministic churn schedule — kills,
// drains, and joins interleaved at random offsets — against live traffic and
// requires the fleet to heal back to full strength with zero lost sessions
// and byte-identical twins.
func TestShardCertifyChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster certificate is slow")
	}
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    18,
			Concurrency: 3,
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(40+int(seed%5), 300)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			Noise:    0.08,
			SeedBase: 1500,
			Verify:   true,
		},
		Shards:      3,
		ChurnEvents: 6,
		Seed:        7, // interleaves a kill with a join mid-failover
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Sessions {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d decision streams diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if res.ChurnApplied != 6 {
		t.Errorf("applied %d churn events, want 6", res.ChurnApplied)
	}
	if res.ShardsUp != 3 {
		t.Errorf("shards_up = %d at end, want the fleet healed to 3", res.ShardsUp)
	}
}
