package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/service"
	"repro/internal/workloads"
)

// TestShardCertifyKill is the cluster certificate: a 3-shard fleet behind a
// router, one shard killed abruptly mid-run, and every session required to
// finish with a decision stream byte-identical to its in-process twin —
// sessions on the victim only survive if the journal handoff resurrected
// them with their exactly-once cache intact. With -race this doubles as the
// concurrency certificate of the router, membership, and adoption paths.
func TestShardCertifyKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster certificate is slow")
	}
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    18,
			Concurrency: 3, // stretches the wall clock so the kill lands mid-run
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(40+int(seed%5), 300)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			Noise:    0.08,
			SeedBase: 900,
			Verify:   true,
		},
		Shards:    3,
		KillAfter: 150 * time.Millisecond,
		Seed:      11,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Fatal("run outpaced the kill; the failover path was not exercised")
	}
	if res.Failed != 0 || res.Completed != res.Sessions {
		t.Fatalf("completed %d / failed %d of %d: %v", res.Completed, res.Failed, res.Sessions, res.Errors)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d decision streams diverged from in-process twins: %v", res.Mismatched, res.Errors)
	}
	if res.Failovers == 0 {
		t.Fatalf("shard %s was killed but the router never failed it over", res.Victim)
	}
	if res.ShardsUp != 2 {
		t.Errorf("shards_up = %d at end, want 2", res.ShardsUp)
	}
	if res.Retries == 0 {
		t.Error("no client retries despite a mid-run shard kill")
	}
}

// TestShardCertifyNoKill pins the healthy-cluster baseline: the fleet with
// no fault injected must behave exactly like a single daemon — zero
// failures, zero mismatches, zero failovers.
func TestShardCertifyNoKill(t *testing.T) {
	res, err := ShardCertify(context.Background(), ShardCertConfig{
		Loadgen: service.LoadgenConfig{
			Sessions:    8,
			Concurrency: 4,
			Policy:      "wire",
			Workflow: func(seed int64) *dag.Workflow {
				return workloads.Linear(10, 120)
			},
			Cloud: cloud.Config{
				SlotsPerInstance: 2,
				LagTime:          60,
				ChargingUnit:     300,
				MaxInstances:     6,
			},
			SeedBase: 40,
			Verify:   true,
		},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed || res.Failovers != 0 {
		t.Fatalf("healthy run reported killed=%v failovers=%d", res.Killed, res.Failovers)
	}
	if res.Failed != 0 || res.Mismatched != 0 {
		t.Fatalf("failed %d mismatched %d: %v", res.Failed, res.Mismatched, res.Errors)
	}
	if res.ShardsUp != 3 {
		t.Errorf("shards_up = %d, want 3", res.ShardsUp)
	}
}
